// Crash-recovery property harness (DESIGN.md §10.4): for every registered
// fault-injection point, interrupt a save of artifact v2 over a committed v1
// and assert that a reload sees exactly v1 or exactly v2 — never a hybrid,
// never a torn file accepted as valid.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "retention/ledger.hpp"
#include "trace/job_log.hpp"
#include "trace/snapshot.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace adr {
namespace {

namespace fsys = std::filesystem;

class CrashRecovery : public ::testing::Test {
 protected:
  // Per-process: ctest -j runs each discovered test in its own process, and
  // concurrent processes must not race on one scratch directory.
  std::string dir_ = ::testing::TempDir() + "/adr_crash_recovery_" +
                     std::to_string(::getpid());
  void SetUp() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
    fsys::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
  }
};

trace::JobLog make_jobs(int version, std::size_t rows) {
  trace::JobLog log;
  for (std::size_t i = 0; i < rows; ++i) {
    trace::JobRecord r;
    r.job_id = static_cast<std::uint64_t>(version) * 1000 + i;
    r.user = static_cast<trace::UserId>(i % 7);
    r.submit_time = static_cast<util::TimePoint>(100 * version + 10 * i);
    r.duration_seconds = 60;
    r.cores = static_cast<int>(1 + i);
    log.add(r);
  }
  return log;
}

std::string signature(const trace::JobLog& log) {
  std::string sig;
  for (const auto& r : log.records()) {
    sig += std::to_string(r.job_id) + "@" + std::to_string(r.submit_time) + ";";
  }
  return sig;
}

trace::Snapshot make_snapshot(int version, std::size_t files) {
  trace::Snapshot snap;
  for (std::size_t i = 0; i < files; ++i) {
    trace::SnapshotEntry e;
    e.path = "/scratch/u" + std::to_string(i) + "/v" + std::to_string(version);
    e.owner = static_cast<trace::UserId>(i % 5);
    e.stripe_count = 4;
    e.size_bytes = 1000 * (i + 1);
    e.atime = static_cast<util::TimePoint>(50 * version + i);
    snap.add(e);
  }
  return snap;
}

std::string signature(const trace::Snapshot& snap) {
  std::string sig;
  for (const auto& e : snap.entries()) {
    sig += e.path + "@" + std::to_string(e.atime) + ";";
  }
  return sig;
}

// The property: after an interrupted v2 save, the artifact reloads as exactly
// pre-write (v1) or exactly post-write (v2).
TEST_F(CrashRecovery, EveryAtomicFaultPointLeavesOldOrNewNeverHybrid) {
  const std::vector<std::string> specs = {
      "io.atomic.open:fail",
      "io.atomic.write:short@1",
      "io.atomic.write:short@40",
      "io.atomic.write:enospc@25",
      "io.atomic.pre_commit:crash",
      "io.atomic.pre_rename:crash",
      "io.atomic.post_rename:crash",
      "csv.row:crash@1",
      "csv.row:crash@3",
  };
  const trace::JobLog v1 = make_jobs(1, 6);
  const trace::JobLog v2 = make_jobs(2, 9);
  const std::string want_v1 = signature(v1);
  const std::string want_v2 = signature(v2);
  auto& inj = util::FaultInjector::global();

  for (const auto& spec : specs) {
    const std::string path = dir_ + "/jobs.csv";
    fsys::remove(path);
    fsys::remove(path + ".tmp");
    v1.save_csv(path);

    inj.configure(spec);
    bool interrupted = false;
    try {
      v2.save_csv(path);
    } catch (const std::exception&) {
      interrupted = true;
    }
    EXPECT_GE(inj.fired_count(), 1u) << spec << ": fault never exercised";
    EXPECT_TRUE(interrupted) << spec;
    inj.clear();

    // Recovery: the target must verify and equal one of the two versions.
    const auto artifact = util::io::read_artifact(path);
    EXPECT_NE(artifact.state, util::io::ArtifactState::kCorrupt)
        << spec << ": torn target visible after interrupted save";
    const std::string got = signature(trace::JobLog::load_csv(path));
    EXPECT_TRUE(got == want_v1 || got == want_v2)
        << spec << ": hybrid state " << got;
    if (spec == "io.atomic.post_rename:crash") {
      EXPECT_EQ(got, want_v2) << spec << ": rename already happened";
    } else {
      EXPECT_EQ(got, want_v1) << spec << ": commit never completed";
    }
  }
}

TEST_F(CrashRecovery, GzSnapshotFaultPointsLeaveOldOrNew) {
  const std::vector<std::string> specs = {
      "gz.open:fail",
      "gz.write:short@1",
      "gz.write:enospc@30",
      "gz.close:fail",
      "io.atomic.pre_rename:crash",
      "io.atomic.post_rename:crash",
  };
  const trace::Snapshot v1 = make_snapshot(1, 5);
  const trace::Snapshot v2 = make_snapshot(2, 8);
  const std::string want_v1 = signature(v1);
  const std::string want_v2 = signature(v2);
  auto& inj = util::FaultInjector::global();

  for (const auto& spec : specs) {
    const std::string path = dir_ + "/snapshot.csv.gz";
    fsys::remove(path);
    fsys::remove(path + ".tmp");
    v1.save_csv(path);

    inj.configure(spec);
    bool interrupted = false;
    try {
      v2.save_csv(path);
    } catch (const std::exception&) {
      interrupted = true;
    }
    EXPECT_TRUE(interrupted) << spec;
    inj.clear();

    const auto artifact = util::io::read_artifact(path);
    EXPECT_NE(artifact.state, util::io::ArtifactState::kCorrupt) << spec;
    const std::string got = signature(trace::Snapshot::load_csv(path));
    EXPECT_TRUE(got == want_v1 || got == want_v2)
        << spec << ": hybrid state " << got;
    if (spec == "io.atomic.post_rename:crash") {
      EXPECT_EQ(got, want_v2) << spec;
    } else {
      EXPECT_EQ(got, want_v1) << spec;
    }
  }
}

TEST_F(CrashRecovery, CrashedAppendSalvagesToPreWriteState) {
  const std::string path = dir_ + "/ledger.csv";
  retention::PurgeLedger ledger(path);
  retention::PurgeReport report;
  report.policy = "ActiveDR-90d";
  report.when = 111;
  report.purged_bytes = 42;
  ledger.append(report);
  const auto before = ledger.load();
  ASSERT_EQ(before.size(), 1u);

  auto& inj = util::FaultInjector::global();
  for (const char* spec :
       {"io.append.open:fail", "io.append.write:short@5",
        "io.append.write:enospc@20"}) {
    inj.configure(spec);
    retention::PurgeReport next;
    next.policy = "ActiveDR-90d";
    next.when = 222;
    EXPECT_THROW(ledger.append(next), std::runtime_error) << spec;
    inj.clear();

    // A torn appended row is dropped by salvage; the pre-append rows and
    // every later successful append must still read back.
    retention::SalvageReport salvage;
    const auto rows = ledger.load(&salvage);
    ASSERT_EQ(rows.size(), 1u) << spec;
    EXPECT_EQ(rows[0].when, 111) << spec;
    EXPECT_FALSE(salvage.rows_dropped > 0 && !salvage.torn_tail) << spec;
  }

  // The ledger stays appendable after salvage.
  retention::PurgeReport final_report;
  final_report.policy = "ActiveDR-90d";
  final_report.when = 333;
  ledger.append(final_report);
  retention::SalvageReport salvage;
  const auto rows = ledger.load(&salvage);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].when, 333);
}

TEST_F(CrashRecovery, CrashMidSaveThenRetryConverges) {
  // The operational recovery loop: crash, notice, rerun the save. The retry
  // must land v2 with no residue from the crashed attempt corrupting it.
  const std::string path = dir_ + "/jobs.csv";
  const trace::JobLog v1 = make_jobs(1, 4);
  const trace::JobLog v2 = make_jobs(2, 4);
  v1.save_csv(path);

  auto& inj = util::FaultInjector::global();
  inj.configure("io.atomic.pre_rename:crash");
  EXPECT_THROW(v2.save_csv(path), util::CrashInjected);
  EXPECT_TRUE(fsys::exists(path + ".tmp"));  // crash left the temp behind
  inj.clear();

  v2.save_csv(path);  // retry overwrites the stale temp and commits
  EXPECT_EQ(signature(trace::JobLog::load_csv(path)), signature(v2));
  EXPECT_FALSE(fsys::exists(path + ".tmp"));
}

}  // namespace
}  // namespace adr
