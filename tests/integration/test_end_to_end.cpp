// End-to-end integration: synthesize a Titan scenario, persist every trace
// artifact, reload, run the full FLT-vs-ActiveDR comparison, and check the
// paper's qualitative claims hold at test scale.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/engine.hpp"
#include "sim/experiment.hpp"

namespace adr {
namespace {

synth::TitanParams params() {
  synth::TitanParams p;
  p.users = 200;
  p.seed = 1234;
  return p;
}

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new synth::TitanScenario(synth::build_titan_scenario(params()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const synth::TitanScenario* scenario_;
};

const synth::TitanScenario* EndToEnd::scenario_ = nullptr;

TEST_F(EndToEnd, TracePersistenceRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string jobs_csv = dir + "/e2e_jobs.csv";
  const std::string pubs_csv = dir + "/e2e_pubs.csv";
  const std::string app_csv = dir + "/e2e_app.csv";
  const std::string snap_csv = dir + "/e2e_snap.csv";
  const std::string users_csv = dir + "/e2e_users.csv";

  scenario_->jobs.save_csv(jobs_csv);
  scenario_->pubs.save_csv(pubs_csv);
  scenario_->replay.save_csv(app_csv);
  scenario_->snapshot.save_csv(snap_csv);
  scenario_->registry.save_csv(users_csv);

  EXPECT_EQ(trace::JobLog::load_csv(jobs_csv).size(), scenario_->jobs.size());
  EXPECT_EQ(trace::PublicationLog::load_csv(pubs_csv).size(),
            scenario_->pubs.size());
  EXPECT_EQ(trace::AppLog::load_csv(app_csv).size(), scenario_->replay.size());
  const auto snap = trace::Snapshot::load_csv(snap_csv);
  EXPECT_EQ(snap.size(), scenario_->snapshot.size());
  EXPECT_EQ(snap.total_bytes(), scenario_->snapshot.total_bytes());
  EXPECT_EQ(trace::UserRegistry::load_csv(users_csv).size(),
            scenario_->registry.size());

  for (const auto& f : {jobs_csv, pubs_csv, app_csv, snap_csv, users_csv}) {
    std::remove(f.c_str());
  }
}

TEST_F(EndToEnd, PaperQualitativeClaimsAtTestScale) {
  sim::ExperimentConfig config;  // paper defaults: 90d, 7d trigger, 50%
  const sim::ComparisonResult result = sim::run_comparison(*scenario_, config);

  // 1. Both runs replayed the same accesses.
  EXPECT_EQ(result.flt.total_accesses, result.activedr.total_accesses);
  EXPECT_GT(result.flt.total_accesses, 0u);

  // 2. ActiveDR reduces (or at worst matches) total file misses.
  EXPECT_LE(result.activedr.total_misses, result.flt.total_misses);

  // 3. The both-active group loses no more files under ActiveDR than FLT.
  const auto ba = static_cast<std::size_t>(activeness::UserGroup::kBothActive);
  EXPECT_LE(result.activedr.groups[ba].unique_affected_users,
            result.flt.groups[ba].unique_affected_users);

  // 4. ActiveDR retains at least as much data for both-active users.
  EXPECT_GE(result.activedr.groups[ba].retained_bytes,
            result.flt.groups[ba].retained_bytes);

  // 5. Population is heavily skewed toward inactivity (Fig. 5's shape).
  const auto bi =
      static_cast<std::size_t>(activeness::UserGroup::kBothInactive);
  EXPECT_GT(result.final_group_counts[bi] * 10,
            scenario_->registry.size() * 7);
}

TEST_F(EndToEnd, EngineConsumesScenarioTraces) {
  // Drive the public Engine API with the synthesized traces — the
  // quickstart path a site operator would follow.
  core::Engine engine(scenario_->registry, core::Engine::Options{});
  const auto op = engine.register_operation_type("job_submission");
  const auto oc = engine.register_outcome_type("publication");
  engine.ingest_jobs(scenario_->jobs, op);
  engine.ingest_publications(scenario_->pubs, oc);
  engine.load_snapshot(scenario_->snapshot);

  const auto& ranks = engine.evaluate(scenario_->sim_begin);
  EXPECT_EQ(ranks.size(), scenario_->registry.size());

  const auto before = engine.vfs().total_bytes();
  const auto report = engine.purge(scenario_->sim_begin);
  EXPECT_TRUE(report.target_reached);
  EXPECT_LE(engine.vfs().total_bytes(), before / 2 + 1);
  // Purge order honoured: if any files were purged, inactive users bear
  // the brunt.
  const auto& groups = report.by_group;
  const auto bi = static_cast<std::size_t>(activeness::UserGroup::kBothInactive);
  std::uint64_t total_purged = 0;
  for (const auto& g : groups) total_purged += g.purged_bytes;
  EXPECT_GT(groups[bi].purged_bytes * 2, total_purged)
      << "both-inactive users should dominate the purge volume";
}

}  // namespace
}  // namespace adr
