#include "core/service.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/event_log.hpp"
#include "util/bundle.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"
#include "util/time.hpp"

namespace adr::core {
namespace {

namespace fsys = std::filesystem;

constexpr util::TimePoint kBase = 1'600'000'000;
constexpr std::size_t kUsers = 8;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// A deterministic mixed event history: file creates with distinct atimes
/// (PurgeIndex tie-breaks equal atimes by interning order, which differs
/// between replay and snapshot-import paths — distinct atimes keep the
/// identity contract about *state*, not interning accidents), job and
/// publication activity spread over ~60 days, accesses refreshing some
/// files.
std::vector<trace::Event> make_history() {
  std::vector<trace::Event> events;
  const auto day = util::days(1);
  for (std::size_t u = 0; u < kUsers; ++u) {
    for (std::size_t f = 0; f < 3; ++f) {
      trace::Event e;
      e.kind = trace::EventKind::kCreate;
      e.user = static_cast<trace::UserId>(u);
      e.timestamp = kBase + static_cast<util::Duration>(u * 3 + f) * day / 4;
      e.path = "/scratch/user_" + std::to_string(u) + "/f" +
               std::to_string(f) + ".dat";
      e.size_bytes = 1000 + u * 100 + f;
      e.stripe_count = 4;
      events.push_back(e);
    }
  }
  for (std::size_t u = 0; u < kUsers; ++u) {
    // Activity density falls with user id: user 0 very active, the tail
    // dormant — spreads users across the G1..G4 groups.
    const int bursts = static_cast<int>(kUsers - u);
    for (int b = 0; b < bursts; ++b) {
      trace::Event job;
      job.kind = trace::EventKind::kJob;
      job.user = static_cast<trace::UserId>(u);
      job.timestamp = kBase + static_cast<util::Duration>(b * 9 + 1) * day +
                      static_cast<util::Duration>(u);
      job.impact = 120.0 * (b + 1) + static_cast<double>(u) * 0.25;
      events.push_back(job);
    }
    if (u % 3 == 0) {
      trace::Event pub;
      pub.kind = trace::EventKind::kPublication;
      pub.user = static_cast<trace::UserId>(u);
      pub.timestamp = kBase + 20 * day + static_cast<util::Duration>(u);
      pub.impact = 8.0 + static_cast<double>(u);
      events.push_back(pub);
    }
    if (u % 2 == 0) {
      trace::Event access;
      access.kind = trace::EventKind::kAccess;
      access.user = static_cast<trace::UserId>(u);
      access.timestamp = kBase + 55 * day + static_cast<util::Duration>(u);
      access.path = "/scratch/user_" + std::to_string(u) + "/f0.dat";
      events.push_back(access);
    }
  }
  return events;
}

ServiceConfig test_config(std::size_t shards) {
  ServiceConfig config;
  config.lifetime_days = 30;
  config.eval_shards = shards;
  config.record_victims = true;
  return config;
}

std::unique_ptr<Service> make_service(std::size_t shards) {
  auto service = std::make_unique<Service>(
      trace::UserRegistry::with_synthetic_users(kUsers), test_config(shards));
  service->register_paper_types();
  return service;
}

class ServiceTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "/adr_service_test_" +
                     std::to_string(::getpid());
  std::string wal_ = dir_ + "/wal";
  util::TimePoint now_ = kBase + util::days(70);

  void SetUp() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
    fsys::create_directories(wal_);
    trace::EventLogWriter writer(wal_);
    for (const auto& event : make_history()) writer.append(event);
  }
  void TearDown() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
  }

  std::vector<trace::Event> all_events() {
    trace::EventLogReader reader(wal_);
    return reader.read_after(0);
  }

  /// Apply the whole WAL cold and purge; returns (ranks-file bytes,
  /// victims).
  std::pair<std::string, std::vector<std::string>> cold_run(
      std::size_t shards, const std::string& tag) {
    auto service = make_service(shards);
    for (const auto& event : all_events()) service->apply(event);
    const auto report = service->purge(now_, 0);
    const std::string ranks_path = dir_ + "/ranks_" + tag + ".csv";
    service->ranks().save_csv(ranks_path);
    return {slurp(ranks_path), report.victim_paths};
  }
};

TEST_F(ServiceTest, ApplyIsSeqGuardedAndIdempotent) {
  auto service = make_service(1);
  const auto events = all_events();
  for (const auto& event : events) EXPECT_TRUE(service->apply(event));
  const std::uint64_t seq = service->last_applied_seq();
  EXPECT_EQ(seq, events.size());

  // Replaying the same tail is a strict no-op.
  for (const auto& event : events) EXPECT_FALSE(service->apply(event));
  EXPECT_EQ(service->last_applied_seq(), seq);

  const auto once = cold_run(1, "once");
  auto twice_service = make_service(1);
  for (int round = 0; round < 2; ++round) {
    for (const auto& event : events) twice_service->apply(event);
  }
  const auto report = twice_service->purge(now_, 0);
  const std::string ranks_path = dir_ + "/ranks_twice.csv";
  twice_service->ranks().save_csv(ranks_path);
  EXPECT_EQ(slurp(ranks_path), once.first);
  EXPECT_EQ(report.victim_paths, once.second);
}

TEST_F(ServiceTest, WalReplayMatchesDirectRecordIngest) {
  // Feed the same history through record()/vfs calls directly (the bulk
  // path Engine users take) and through WAL apply; ranks must match
  // byte-for-byte.
  auto direct = make_service(1);
  for (const auto& event : make_history()) {
    trace::Event copy = event;
    copy.seq = 0;  // direct events carry no WAL seq
    direct->apply(copy);
  }
  const auto direct_report = direct->purge(now_, 0);
  const std::string direct_ranks = dir_ + "/ranks_direct.csv";
  direct->ranks().save_csv(direct_ranks);

  const auto wal = cold_run(1, "wal");
  EXPECT_EQ(slurp(direct_ranks), wal.first);
  EXPECT_EQ(direct_report.victim_paths, wal.second);
}

TEST_F(ServiceTest, EvaluateFoldsInPendingIngestAtRepeatedNow) {
  auto service = make_service(4);
  service->prepare_ingest();
  const auto events = all_events();
  for (const auto& event : events) service->apply(event);
  service->evaluate(now_);
  const auto before = service->activeness_of(kUsers - 1);

  // Enqueue (not append) a fresh burst for the most dormant user, then
  // re-evaluate at the *same* now: the pending-ingest guard must not serve
  // the cached result.
  auto& store = service->store();
  for (int i = 0; i < 5; ++i) {
    store.enqueue(kUsers - 1, kJobActivityType,
                  {now_ - util::days(2) + i, 50'000.0});
  }
  ASSERT_TRUE(store.has_pending_ingest());
  service->evaluate(now_);
  EXPECT_FALSE(store.has_pending_ingest());
  const auto after = service->activeness_of(kUsers - 1);
  EXPECT_GT(after.last_activity, before.last_activity);
}

TEST_F(ServiceTest, CheckpointPlusTailReplayMatchesColdRun) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const auto cold = cold_run(shards, "cold" + std::to_string(shards));

    // Warm path: apply half the history, checkpoint, restore into a fresh
    // service, replay the tail.
    const auto events = all_events();
    const std::size_t half = events.size() / 2;
    const std::string ckpt = dir_ + "/ckpt" + std::to_string(shards);
    {
      auto first = make_service(shards);
      for (std::size_t i = 0; i < half; ++i) first->apply(events[i]);
      first->save_checkpoint(ckpt);
    }
    auto second = make_service(shards);
    const auto status = second->restore_checkpoint(ckpt);
    ASSERT_TRUE(status.ok) << status.error;
    EXPECT_EQ(status.applied_seq, events[half - 1].seq);
    for (const auto& event : events) second->apply(event);  // idempotent tail
    const auto report = second->purge(now_, 0);
    const std::string ranks_path =
        dir_ + "/ranks_warm" + std::to_string(shards) + ".csv";
    second->ranks().save_csv(ranks_path);

    EXPECT_EQ(slurp(ranks_path), cold.first);
    EXPECT_EQ(report.victim_paths, cold.second);
  }
}

TEST_F(ServiceTest, ShardCountsAgreeByteForByte) {
  const auto one = cold_run(1, "s1");
  const auto four = cold_run(4, "s4");
  EXPECT_EQ(one.first, four.first);
  EXPECT_EQ(one.second, four.second);
}

TEST_F(ServiceTest, RestoreRefusesDamagedCheckpoints) {
  const auto events = all_events();
  const std::string ckpt = dir_ + "/ckpt";
  {
    auto service = make_service(1);
    for (const auto& event : events) service->apply(event);
    service->save_checkpoint(ckpt);
  }
  // Valid as written.
  {
    auto service = make_service(1);
    EXPECT_TRUE(service->restore_checkpoint(ckpt).ok);
  }
  // Unsealed (manifest gone) is refused.
  fsys::rename(ckpt + "/MANIFEST", ckpt + "/MANIFEST.hidden");
  {
    auto service = make_service(1);
    const auto status = service->restore_checkpoint(ckpt);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.error.find("unsealed"), std::string::npos);
    // The failed restore left the service clean and usable.
    for (const auto& event : events) service->apply(event);
    EXPECT_EQ(service->last_applied_seq(), events.size());
  }
  fsys::rename(ckpt + "/MANIFEST.hidden", ckpt + "/MANIFEST");
  // A member rewritten after sealing (half-bundle) is refused.
  {
    util::io::AtomicWriter writer(ckpt + "/activities.csv");
    writer.write_line("user,type,timestamp,impact");
    writer.commit();
  }
  {
    auto service = make_service(1);
    const auto status = service->restore_checkpoint(ckpt);
    EXPECT_FALSE(status.ok);
    EXPECT_NE(status.error.find("activities.csv"), std::string::npos);
  }
}

TEST_F(ServiceTest, CrashMidCheckpointNeverYieldsARestorableHalfBundle) {
  const auto events = all_events();
  const char* specs[] = {
      "io.atomic.pre_commit:crash@1", "io.atomic.pre_rename:crash@2",
      "csv.row:crash@5",              "bundle.member:crash@2",
      "bundle.pre_manifest:crash@1",
  };
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    const std::string ckpt =
        dir_ + "/ckpt_crash_" + std::to_string(&spec - specs);
    {
      auto service = make_service(1);
      for (const auto& event : events) service->apply(event);
      util::FaultInjector::global().configure(spec);
      EXPECT_THROW(service->save_checkpoint(ckpt), util::CrashInjected);
      EXPECT_GE(util::FaultInjector::global().fired_count(), 1u);
      util::FaultInjector::global().clear();
    }
    // Old-or-new at bundle granularity: the torn checkpoint refuses to
    // restore, and a cold replay of the full WAL still reproduces state.
    auto service = make_service(1);
    EXPECT_FALSE(service->restore_checkpoint(ckpt).ok);
    for (const auto& event : events) service->apply(event);
    EXPECT_EQ(service->last_applied_seq(), events.size());
  }
}

}  // namespace
}  // namespace adr::core
