#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace adr::core {
namespace {

constexpr util::TimePoint kNow = 1'600'000'000;

fs::FileMeta meta(trace::UserId owner, std::uint64_t size, double age_days) {
  fs::FileMeta m;
  m.owner = owner;
  m.size_bytes = size;
  m.atime = kNow - static_cast<util::Duration>(age_days * 86400);
  m.ctime = m.atime;
  return m;
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : engine_(trace::UserRegistry::with_synthetic_users(4),
                Engine::Options{}) {
    op_ = engine_.register_operation_type("job_submission");
    oc_ = engine_.register_outcome_type("publication");
  }

  Engine engine_;
  activeness::ActivityTypeId op_ = 0;
  activeness::ActivityTypeId oc_ = 0;
};

TEST_F(EngineTest, RecordAndEvaluate) {
  // user0: dense recent ops -> active; user1: nothing -> fresh/inactive.
  for (int p = 0; p < 4; ++p) {
    for (int k = 0; k < 3; ++k) {
      engine_.record(0, op_,
                     kNow - util::days(90 * p + 10 + k * 20), 100.0);
    }
  }
  const auto& ranks = engine_.evaluate(kNow);
  EXPECT_TRUE(ranks.get(0).op.has_data);
  EXPECT_TRUE(ranks.get(1).fresh());
  const auto counts = engine_.group_counts();
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], 4u);
}

TEST_F(EngineTest, RecordUnregisteredTypeThrows) {
  EXPECT_THROW(engine_.record(0, 99, kNow, 1.0), std::out_of_range);
}

TEST_F(EngineTest, WeightsScaleImpacts) {
  const auto heavy = engine_.register_operation_type("transfer", 10.0);
  engine_.record(0, heavy, kNow - util::days(1), 2.0);
  const auto& ranks = engine_.evaluate(kNow);
  // Single activity: rank 1.0 regardless of weight, but data present.
  EXPECT_TRUE(ranks.get(0).op.active());
}

TEST_F(EngineTest, PurgeUsesActiveness) {
  // user0 active (dense rising ops), user1 silent.
  for (int p = 0; p < 3; ++p) {
    for (int k = 0; k < 3; ++k) {
      // Periods (old->new) carry impacts 300/300/600: ratios
      // (0.75, 0.75, 1.5) -> Phi = 0.75 * 0.75^2 * 1.5^3 = 1.42 (active).
      engine_.record(0, op_, kNow - util::days(90 * p + 10 + k * 20),
                     p == 0 ? 200.0 : 100.0);
    }
  }
  engine_.vfs().create("/scratch/user_00000/stale", meta(0, 100, 120));
  engine_.vfs().create("/scratch/user_00001/stale", meta(1, 100, 120));
  engine_.vfs().set_capacity_bytes(200);

  const auto report = engine_.purge(kNow);
  EXPECT_EQ(report.policy, "ActiveDR-90d");
  // Target: reach 50% of 200 = 100 bytes -> purge 100 bytes, starting from
  // the inactive user.
  EXPECT_TRUE(report.target_reached);
  EXPECT_FALSE(engine_.vfs().exists("/scratch/user_00001/stale"));
  EXPECT_TRUE(engine_.vfs().exists("/scratch/user_00000/stale"));
}

TEST_F(EngineTest, ReserveProtectsFiles) {
  // The reserved file is the only purge candidate: it must survive even
  // though that leaves the 50% target unmet.
  engine_.vfs().create("/scratch/user_00001/keep.dat", meta(1, 100, 500));
  engine_.reserve("/scratch/user_00001/keep.dat");
  engine_.vfs().set_capacity_bytes(100);
  const auto report = engine_.purge(kNow);
  EXPECT_TRUE(engine_.vfs().exists("/scratch/user_00001/keep.dat"));
  EXPECT_FALSE(report.target_reached);
  EXPECT_GT(report.exempted_files, 0u);
}

TEST_F(EngineTest, IngestLogsMatchesRecord) {
  trace::JobLog jobs;
  trace::JobRecord j;
  j.user = 2;
  j.submit_time = kNow - util::days(5);
  j.duration_seconds = 3600;
  j.cores = 10;
  jobs.add(j);
  engine_.ingest_jobs(jobs, op_);

  trace::PublicationLog pubs;
  trace::PublicationRecord p;
  p.published = kNow - util::days(10);
  p.citations = 3;
  p.authors = {3};
  pubs.add(p);
  engine_.ingest_publications(pubs, oc_);

  const auto& ranks = engine_.evaluate(kNow);
  EXPECT_TRUE(ranks.get(2).op.active());   // single activity -> rank 1
  EXPECT_TRUE(ranks.get(3).oc.active());
  EXPECT_EQ(engine_.group_counts()[1], 1u);  // op-active-only
  EXPECT_EQ(engine_.group_counts()[2], 1u);  // oc-active-only
}

TEST_F(EngineTest, PurgeFltBaseline) {
  engine_.vfs().create("/scratch/user_00000/old", meta(0, 100, 120));
  engine_.vfs().create("/scratch/user_00000/new", meta(0, 100, 5));
  engine_.vfs().set_capacity_bytes(200);
  const auto report = engine_.purge_flt(kNow);
  EXPECT_EQ(report.policy, "FLT-90d");
  EXPECT_FALSE(engine_.vfs().exists("/scratch/user_00000/old"));
  EXPECT_TRUE(engine_.vfs().exists("/scratch/user_00000/new"));
}

TEST_F(EngineTest, SnapshotLoading) {
  trace::Snapshot snap;
  trace::SnapshotEntry e;
  e.path = "/scratch/user_00002/data.h5";
  e.owner = 2;
  e.size_bytes = 42;
  e.atime = kNow - util::days(1);
  snap.add(e);
  engine_.load_snapshot(snap);
  EXPECT_EQ(engine_.vfs().total_bytes(), 42u);
  EXPECT_TRUE(engine_.vfs().exists("/scratch/user_00002/data.h5"));
}

TEST_F(EngineTest, EffectiveLifetimeQueries) {
  // user0 active (the calibrated rising pattern: Phi = 1.42), user1 silent.
  for (int p = 0; p < 3; ++p) {
    for (int k = 0; k < 3; ++k) {
      engine_.record(0, op_, kNow - util::days(90 * p + 10 + k * 20),
                     p == 0 ? 200.0 : 100.0);
    }
  }
  engine_.evaluate(kNow);

  const auto active = engine_.activeness_of(0);
  EXPECT_TRUE(active.op.active());
  EXPECT_GT(engine_.effective_lifetime_of(0), util::days(90));
  EXPECT_NEAR(static_cast<double>(engine_.effective_lifetime_of(0)),
              static_cast<double>(util::days(90)) * active.op.value(), 1e6);

  // Silent users enjoy exactly the initial lifetime.
  EXPECT_TRUE(engine_.activeness_of(1).fresh());
  EXPECT_EQ(engine_.effective_lifetime_of(1), util::days(90));
}

TEST_F(EngineTest, EvaluationCachedUntilNewActivity) {
  engine_.record(0, op_, kNow - util::days(1), 1.0);
  const auto& r1 = engine_.evaluate(kNow);
  const auto& r2 = engine_.evaluate(kNow);
  EXPECT_EQ(&r1, &r2);
  engine_.record(0, op_, kNow - util::days(2), 1.0);
  const auto& r3 = engine_.evaluate(kNow);
  EXPECT_TRUE(r3.get(0).op.has_data);
}

TEST_F(EngineTest, IncrementalEvaluationTouchesOnlyTheDirtyUser) {
  // user0: stale history whose rank is provably pinned at zero (empty
  // newest periods, pigeonhole); users 1-3 fresh.
  engine_.record(0, op_, kNow - util::days(600), 5.0);
  engine_.record(0, op_, kNow - util::days(580), 5.0);
  engine_.evaluate(kNow);

  const auto before = obs::MetricsRegistry::global().snapshot();
  engine_.record(2, oc_, kNow + util::days(1), 3.0);
  engine_.evaluate(kNow + util::days(2));
  const auto after = obs::MetricsRegistry::global().snapshot();

  // Exactly one user re-ranked — the evaluator never even looked at the
  // other three (their streams were untouched and their cached evaluation
  // is provably unchanged).
  EXPECT_EQ(after.counters.at("incremental.users_reevaluated") -
                before.counters.at("incremental.users_reevaluated"),
            1u);
  EXPECT_EQ(after.counters.at("evaluator.users_evaluated") -
                before.counters.at("evaluator.users_evaluated"),
            1u);
  EXPECT_EQ(after.counters.at("incremental.users_skipped") -
                before.counters.at("incremental.users_skipped"),
            3u);
  EXPECT_TRUE(engine_.activeness_of(2).oc.has_data);
}

TEST_F(EngineTest, FullEvalModeMatchesIncremental) {
  Engine::Options full_options;
  full_options.eval_mode = activeness::EvalMode::kFull;
  Engine full_engine(trace::UserRegistry::with_synthetic_users(4),
                     full_options);
  const auto fop = full_engine.register_operation_type("job_submission");

  for (int p = 0; p < 3; ++p) {
    for (int k = 0; k < 3; ++k) {
      const util::TimePoint ts = kNow - util::days(90 * p + 10 + k * 20);
      const double impact = p == 0 ? 200.0 : 100.0;
      engine_.record(0, op_, ts, impact);
      full_engine.record(0, fop, ts, impact);
    }
  }
  for (const util::TimePoint t : {kNow, kNow + util::days(7)}) {
    engine_.evaluate(t);
    full_engine.evaluate(t);
    for (trace::UserId u = 0; u < 4; ++u) {
      const auto a = engine_.activeness_of(u);
      const auto b = full_engine.activeness_of(u);
      EXPECT_EQ(a.op.sort_key(), b.op.sort_key());
      EXPECT_EQ(a.oc.sort_key(), b.oc.sort_key());
      EXPECT_EQ(a.last_activity, b.last_activity);
    }
  }
}

}  // namespace
}  // namespace adr::core
