// Bounded ingest admission (DESIGN.md §14.1): the three backpressure
// policies and the invariant they all share — produced == admitted + shed,
// with shed exactly counted and recorded. The suite name matches the TSan
// CI filter ("Backpressure"): the blocking and shedding tests run real
// producer/consumer interleavings.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <thread>
#include <tuple>
#include <vector>

#include "activeness/evaluator.hpp"
#include "activeness/spill.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace adr::activeness {
namespace {

constexpr util::TimePoint kT0 = 1'700'000'000;
constexpr util::Duration kDay = 86'400;

struct Event {
  trace::UserId user;
  ActivityTypeId type;
  Activity activity;
};

std::vector<Event> make_events(std::uint64_t seed, std::size_t users,
                               std::size_t count) {
  util::Rng rng(seed);
  std::vector<Event> events(count);
  for (std::size_t i = 0; i < count; ++i) {
    events[i].user = static_cast<trace::UserId>(rng.bounded(users));
    events[i].type = rng.uniform() < 0.5 ? 0 : 1;
    events[i].activity.timestamp =
        kT0 + static_cast<util::Duration>(i) * 600;
    events[i].activity.impact = rng.uniform(0.1, 50.0);
  }
  return events;
}

/// Finalized empty store so per-shard drains are legal immediately.
ActivityStore empty_store(std::size_t users) {
  ActivityStore store(users, 2);
  store.sort_all();
  store.take_dirty();
  return store;
}

std::string fresh_dir(const char* tag) {
  static std::atomic<int> n{0};
  return ::testing::TempDir() + "/adr_backpressure_" + tag + "_" +
         std::to_string(n.fetch_add(1));
}

TEST(Backpressure, UnboundedByDefault) {
  ActivityStore store = empty_store(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(store.enqueue(0, 0, Activity{kT0 + i, 1.0}),
              EnqueueResult::kQueued);
  }
  EXPECT_EQ(store.pending_ingest(), 100u);
  EXPECT_EQ(store.shed_count(), 0u);
  EXPECT_GE(store.ingest_depth_high_water(), 100u);
}

TEST(Backpressure, BlockBoundsQueueDepthUnderFlood) {
  constexpr std::size_t kUsers = 32;
  constexpr std::size_t kCap = 8;
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 400;

  ActivityStore store = empty_store(kUsers);
  AdmissionConfig admission;
  admission.queue_cap = kCap;
  admission.policy = BackpressurePolicy::kBlock;
  store.set_admission(admission);

  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire) ||
           store.has_pending_ingest()) {
      if (store.drain_ingest() == 0) std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto events = make_events(100 + p, kUsers, kPerProducer);
      for (const Event& e : events) {
        EXPECT_EQ(store.enqueue(e.user, e.type, e.activity),
                  EnqueueResult::kQueued);
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  // Block admits everything (no loss) while the per-shard depth never
  // exceeds the cap — the memory bound the policy exists for.
  EXPECT_EQ(store.total_activities(), kProducers * kPerProducer);
  EXPECT_EQ(store.shed_count(), 0u);
  EXPECT_LE(store.ingest_depth_high_water(), kCap);
}

TEST(Backpressure, ShedAccountingIsExactWithinBudget) {
  constexpr std::size_t kCap = 4;
  constexpr std::size_t kBudget = 10;
  ActivityStore store = empty_store(1);  // one user → one shard, one queue
  AdmissionConfig admission;
  admission.queue_cap = kCap;
  admission.policy = BackpressurePolicy::kShed;
  admission.shed_budget = kBudget;
  store.set_admission(admission);

  const auto events = make_events(7, 1, kCap + kBudget);
  std::size_t queued = 0, shed = 0;
  for (const Event& e : events) {
    const EnqueueResult r = store.enqueue(e.user, e.type, e.activity);
    if (r == EnqueueResult::kQueued) ++queued;
    if (r == EnqueueResult::kShed) ++shed;
  }
  EXPECT_EQ(queued, kCap);
  EXPECT_EQ(shed, kBudget);
  EXPECT_EQ(store.shed_count(), kBudget);

  // Every shed event is recorded, in drop order: exact loss accounting.
  const auto recorded = store.shed_events();
  ASSERT_EQ(recorded.size(), kBudget);
  for (std::size_t i = 0; i < kBudget; ++i) {
    const Event& e = events[kCap + i];
    EXPECT_EQ(std::get<0>(recorded[i]), e.user);
    EXPECT_EQ(std::get<1>(recorded[i]), e.type);
    EXPECT_EQ(std::get<2>(recorded[i]).timestamp, e.activity.timestamp);
    EXPECT_EQ(std::get<2>(recorded[i]).impact, e.activity.impact);
  }

  // produced == admitted + shed.
  store.drain_ingest();
  EXPECT_EQ(store.total_activities() + store.shed_count(), events.size());
}

TEST(Backpressure, ShedDegradesToBlockOnceBudgetSpent) {
  ActivityStore store = empty_store(1);
  AdmissionConfig admission;
  admission.queue_cap = 2;
  admission.policy = BackpressurePolicy::kShed;
  admission.shed_budget = 1;
  store.set_admission(admission);

  EXPECT_EQ(store.enqueue(0, 0, Activity{kT0, 1.0}), EnqueueResult::kQueued);
  EXPECT_EQ(store.enqueue(0, 0, Activity{kT0 + 1, 1.0}),
            EnqueueResult::kQueued);
  EXPECT_EQ(store.enqueue(0, 0, Activity{kT0 + 2, 1.0}),
            EnqueueResult::kShed);  // budget spent here

  // The next over-cap enqueue must block (no silent loss) until a drain
  // makes room.
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(store.enqueue(0, 0, Activity{kT0 + 3, 1.0}),
              EnqueueResult::kQueued);
    admitted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load(std::memory_order_acquire));
  EXPECT_EQ(store.drain_ingest(), 2u);
  producer.join();
  EXPECT_TRUE(admitted.load(std::memory_order_acquire));
  store.drain_ingest();
  EXPECT_EQ(store.total_activities() + store.shed_count(), 4u);
}

TEST(Backpressure, SpillOverflowReplaysToRankIdentity) {
  constexpr std::size_t kUsers = 16;
  constexpr std::size_t kCap = 4;
  const auto events = make_events(42, kUsers, 200);

  // Reference: every event applied directly, in order.
  ActivityStore reference = empty_store(kUsers);
  for (const Event& e : events) {
    reference.append(e.user, e.type, e.activity);
  }

  // Overloaded path: a tiny queue, overflow diverted to the spill segment.
  SpillLog spill(fresh_dir("spill"));
  ActivityStore store = empty_store(kUsers);
  AdmissionConfig admission;
  admission.queue_cap = kCap;
  admission.policy = BackpressurePolicy::kSpill;
  admission.spill = &spill;
  store.set_admission(admission);

  std::size_t spilled = 0;
  for (const Event& e : events) {
    if (store.enqueue(e.user, e.type, e.activity) == EnqueueResult::kSpilled) {
      ++spilled;
    }
  }
  EXPECT_EQ(spilled, events.size() - kCap);
  EXPECT_EQ(store.spilled_count(), spilled);
  EXPECT_EQ(spill.pending(), spilled);

  // Pressure clears: drain the queue, then replay the spill segment.
  store.drain_ingest();
  const std::size_t replayed =
      spill.replay([&](trace::UserId u, ActivityTypeId t, Activity a) {
        store.append(u, t, a);
      });
  EXPECT_EQ(replayed, spilled);
  EXPECT_EQ(spill.pending(), 0u);
  EXPECT_EQ(store.total_activities(), events.size());

  // Replay preserves rank identity: evaluate both stores, compare exactly.
  EvaluationParams params;
  params.period_length_days = 30;
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const Evaluator eval(catalog, params);
  const auto want = eval.evaluate_all(reference);
  const auto got = eval.evaluate_all(store);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].user, got[i].user);
    EXPECT_EQ(want[i].op.zero, got[i].op.zero);
    EXPECT_EQ(want[i].op.log_phi, got[i].op.log_phi);
    EXPECT_EQ(want[i].oc.zero, got[i].oc.zero);
    EXPECT_EQ(want[i].oc.log_phi, got[i].oc.log_phi);
    EXPECT_EQ(want[i].last_activity, got[i].last_activity);
  }

  // The segment was consumed: a second replay is a no-op.
  EXPECT_EQ(spill.replay([](trace::UserId, ActivityTypeId, Activity) {}), 0u);
}

TEST(Backpressure, SpillSurvivesReopenAndSalvagesTornTail) {
  const std::string dir = fresh_dir("salvage");
  {
    SpillLog spill(dir);
    spill.append(3, 0, Activity{kT0, 1.5});
    spill.append(5, 1, Activity{kT0 + 60, 2.5});
    spill.append(7, 0, Activity{kT0 + 120, 3.5});
  }
  // A crashed append leaves a torn partial line.
  {
    std::ofstream out(dir + "/spill.log",
                      std::ios::binary | std::ios::app);
    out << "9,1,17000";
  }
  SpillLog reopened(dir);
  EXPECT_EQ(reopened.pending(), 3u);  // torn tail dropped on salvage
  std::vector<trace::UserId> users;
  reopened.replay([&](trace::UserId u, ActivityTypeId, Activity) {
    users.push_back(u);
  });
  EXPECT_EQ(users, (std::vector<trace::UserId>{3, 5, 7}));
}

TEST(Backpressure, SpillWriteFailureFallsBackToBlocking) {
  const std::string dir = fresh_dir("fault");
  SpillLog spill(dir);
  ActivityStore store = empty_store(1);
  AdmissionConfig admission;
  admission.queue_cap = 1;
  admission.policy = BackpressurePolicy::kSpill;
  admission.spill = &spill;
  store.set_admission(admission);

  EXPECT_EQ(store.enqueue(0, 0, Activity{kT0, 1.0}), EnqueueResult::kQueued);

  // The spill segment refuses all writes: the over-cap enqueue must fall
  // back to blocking instead of dropping the event.
  util::FaultInjector::global().configure("spill.append.write:enospc@0");
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(store.enqueue(0, 0, Activity{kT0 + 1, 1.0}),
              EnqueueResult::kQueued);
    admitted.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load(std::memory_order_acquire));
  store.drain_ingest();
  producer.join();
  util::FaultInjector::global().clear();

  EXPECT_TRUE(admitted.load(std::memory_order_acquire));
  EXPECT_EQ(store.spilled_count(), 0u);
  store.drain_ingest();
  EXPECT_EQ(store.total_activities(), 2u);
}

TEST(Backpressure, ConcurrentShedNeverLosesUnaccounted) {
  constexpr std::size_t kUsers = 32;
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 300;

  ActivityStore store = empty_store(kUsers);
  AdmissionConfig admission;
  admission.queue_cap = 6;
  admission.policy = BackpressurePolicy::kShed;
  admission.shed_budget = 100;
  store.set_admission(admission);

  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire) ||
           store.has_pending_ingest()) {
      if (store.drain_ingest() == 0) std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto events = make_events(900 + p, kUsers, kPerProducer);
      for (const Event& e : events) store.enqueue(e.user, e.type, e.activity);
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  // The one invariant every policy must keep, even under contention:
  // produced == admitted + shed, with shed within the declared budget.
  EXPECT_EQ(store.total_activities() + store.shed_count(),
            kProducers * kPerProducer);
  EXPECT_LE(store.shed_count(), admission.shed_budget);
  EXPECT_EQ(store.shed_events().size(), store.shed_count());
}

}  // namespace
}  // namespace adr::activeness
