// The tentpole guarantee of the incremental pipeline: full and incremental
// evaluation are *identical* — same ranks, same classifications, same scan
// plan order — across randomized populations, trigger cadences, streaming
// appends, and both stale-handling policies. Plus the delta bookkeeping:
// only users whose rank can have changed are re-evaluated.

#include "activeness/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace adr::activeness {
namespace {

constexpr util::TimePoint kT0 = 1'700'000'000;
constexpr util::Duration kDay = 86'400;

void expect_same_rank(const Rank& a, const Rank& b, const char* what) {
  EXPECT_EQ(a.has_data, b.has_data) << what;
  EXPECT_EQ(a.zero, b.zero) << what;
  EXPECT_EQ(a.log_phi, b.log_phi) << what;
}

void expect_same_activeness(const UserActiveness& a, const UserActiveness& b) {
  EXPECT_EQ(a.user, b.user);
  expect_same_rank(a.op, b.op, "op");
  expect_same_rank(a.oc, b.oc, "oc");
  EXPECT_EQ(a.last_activity, b.last_activity);
}

void expect_same_plan(const ScanPlan& a, const ScanPlan& b) {
  for (std::size_t g = 0; g < kGroupCount; ++g) {
    ASSERT_EQ(a.groups[g].size(), b.groups[g].size()) << "group " << g;
    for (std::size_t i = 0; i < a.groups[g].size(); ++i) {
      EXPECT_EQ(a.groups[g][i].user, b.groups[g][i].user)
          << "group " << g << " position " << i;
      expect_same_activeness(a.groups[g][i], b.groups[g][i]);
    }
  }
}

/// A random population: most users sparse (many end up at Φ = 0 or fresh),
/// a few dense enough to hold a positive rank.
ActivityStore random_store(std::uint64_t seed, std::size_t users) {
  ActivityStore store(users, 2);
  util::Rng rng(seed);
  for (trace::UserId u = 0; u < users; ++u) {
    const double archetype = rng.uniform();
    if (archetype < 0.15) continue;  // fresh: no activity at all
    const bool dense = archetype > 0.8;
    const int events = dense ? static_cast<int>(rng.uniform_int(30, 80))
                             : static_cast<int>(rng.uniform_int(1, 6));
    for (int e = 0; e < events; ++e) {
      const util::TimePoint ts =
          kT0 - static_cast<util::Duration>(rng.uniform(0, 700) * kDay);
      const ActivityTypeId type = rng.uniform() < 0.7 ? 0 : 1;
      store.add(u, type, Activity{ts, rng.uniform(0.1, 50.0)});
    }
  }
  store.sort_all();
  return store;
}

EvaluationParams params_for(int period_days, StaleHandling stale,
                            ExponentScheme scheme, int max_periods = 0) {
  EvaluationParams p;
  p.period_length_days = period_days;
  p.stale = stale;
  p.scheme = scheme;
  p.max_periods = max_periods;
  return p;
}

TEST(EvalMode, ParseAndFormat) {
  EvalMode mode = EvalMode::kFull;
  EXPECT_TRUE(parse_eval_mode("auto", mode));
  EXPECT_EQ(mode, EvalMode::kAuto);
  EXPECT_TRUE(parse_eval_mode("full", mode));
  EXPECT_EQ(mode, EvalMode::kFull);
  EXPECT_TRUE(parse_eval_mode("incremental", mode));
  EXPECT_EQ(mode, EvalMode::kIncremental);
  EXPECT_FALSE(parse_eval_mode("turbo", mode));
  EXPECT_STREQ(to_string(EvalMode::kAuto), "auto");
  EXPECT_STREQ(to_string(EvalMode::kFull), "full");
  EXPECT_STREQ(to_string(EvalMode::kIncremental), "incremental");
}

TEST(IncrementalEvaluator, MatchesFullAcrossRandomizedTriggerSweeps) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    for (const StaleHandling stale :
         {StaleHandling::kClampOldest, StaleHandling::kDrop}) {
      const EvaluationParams params =
          params_for(90, stale, ExponentScheme::kPaperExponent,
                     stale == StaleHandling::kDrop ? 4 : 0);
      ActivityStore store_full = random_store(seed, 120);
      ActivityStore store_inc = random_store(seed, 120);
      IncrementalEvaluator full(catalog, params, EvalMode::kFull);
      IncrementalEvaluator inc(catalog, params, EvalMode::kIncremental);
      util::Rng cadence(seed ^ 0xfeed);
      util::TimePoint t = kT0 - 400 * kDay;
      for (int trigger = 0; trigger < 12; ++trigger) {
        t += static_cast<util::Duration>(cadence.uniform_int(3, 40)) * kDay;
        full.advance(store_full, t);
        const AdvanceStats stats = inc.advance(store_inc, t);
        ASSERT_EQ(full.users().size(), inc.users().size());
        for (std::size_t u = 0; u < full.users().size(); ++u) {
          expect_same_activeness(full.users()[u], inc.users()[u]);
          EXPECT_EQ(full.groups()[u], inc.groups()[u]);
        }
        expect_same_plan(full.plan(), inc.plan());
        if (trigger > 0) {
          EXPECT_FALSE(stats.full_rebuild)
              << "forward advance must stay incremental";
        }
      }
    }
  }
}

TEST(IncrementalEvaluator, StreamingAppendsMatchFullEvaluation) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      30, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent);
  ActivityStore live(60, 2);  // starts empty; events stream in
  ActivityStore mirror(60, 2);
  IncrementalEvaluator inc(catalog, params, EvalMode::kIncremental);
  util::Rng rng(77);
  util::TimePoint t = kT0;
  for (int trigger = 0; trigger < 10; ++trigger) {
    // A burst of appends with timestamps at or before the next trigger.
    const util::TimePoint next = t + 7 * kDay;
    const int burst = static_cast<int>(rng.uniform_int(0, 25));
    for (int e = 0; e < burst; ++e) {
      const auto user = static_cast<trace::UserId>(rng.uniform_int(0, 59));
      const ActivityTypeId type = rng.uniform() < 0.6 ? 0 : 1;
      const Activity activity{
          t + static_cast<util::Duration>(rng.uniform_int(0, 7 * kDay)),
          rng.uniform(0.5, 20.0)};
      live.append(user, type, activity);
      mirror.add(user, type, activity);
    }
    t = next;
    inc.advance(live, t);

    // Reference: a from-scratch full evaluation over the same events.
    ActivityStore reference(60, 2);
    for (trace::UserId u = 0; u < 60; ++u) {
      for (ActivityTypeId ty = 0; ty < 2; ++ty) {
        for (const Activity& a : mirror.stream(u, ty)) {
          reference.add(u, ty, a);
        }
      }
    }
    IncrementalEvaluator full(catalog, params, EvalMode::kFull);
    full.advance(reference, t);
    expect_same_plan(full.plan(), inc.plan());
  }
}

TEST(IncrementalEvaluator, ReevaluatesOnlyTheDirtyUser) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      90, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent);
  ActivityStore store(10, 2);
  // user 0: two activities long ago -> rank 0 (empty newest periods),
  // last_activity far behind every trigger. Everyone else: fresh.
  store.add(0, 0, Activity{kT0 - 600 * kDay, 5.0});
  store.add(0, 0, Activity{kT0 - 580 * kDay, 5.0});
  store.sort_all();

  IncrementalEvaluator inc(catalog, params, EvalMode::kIncremental);
  const AdvanceStats first = inc.advance(store, kT0);
  EXPECT_TRUE(first.full_rebuild);

  // One streamed event for user 3; nobody else can have changed.
  store.append(3, 1, Activity{kT0 + kDay, 2.0});
  const AdvanceStats second = inc.advance(store, kT0 + 2 * kDay);
  EXPECT_FALSE(second.full_rebuild);
  EXPECT_EQ(second.users_dirty, 1u);
  EXPECT_EQ(second.users_reevaluated, 1u);
  EXPECT_EQ(second.users_skipped, 9u);
  EXPECT_TRUE(inc.users()[3].oc.has_data);

  // Quiet interval: nothing is dirty, nobody needs a re-rank.
  const AdvanceStats third = inc.advance(store, kT0 + 30 * kDay);
  EXPECT_EQ(third.users_dirty, 0u);
  // user 3's single recent activity holds a positive rank, so it cannot be
  // skipped (m grows with t_c); everyone else can.
  EXPECT_EQ(third.users_reevaluated, 1u);
  EXPECT_EQ(third.users_skipped, 9u);
}

TEST(IncrementalEvaluator, BackwardsTimeForcesFullRebuild) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      30, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent);
  ActivityStore store = random_store(5, 50);
  ActivityStore reference_store = random_store(5, 50);
  IncrementalEvaluator inc(catalog, params, EvalMode::kIncremental);
  inc.advance(store, kT0);
  const AdvanceStats back = inc.advance(store, kT0 - 100 * kDay);
  EXPECT_TRUE(back.full_rebuild);

  IncrementalEvaluator full(catalog, params, EvalMode::kFull);
  full.advance(reference_store, kT0 - 100 * kDay);
  expect_same_plan(full.plan(), inc.plan());
}

TEST(IncrementalEvaluator, PlanPatchingMovesUsersAcrossGroups) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      30, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent);
  // Random background population, except user 7 who starts fresh (so the
  // burst below provably flips their group).
  ActivityStore store(80, 2);
  ActivityStore mirror(80, 2);
  util::Rng rng(9);
  for (trace::UserId u = 0; u < 80; ++u) {
    if (u == 7) continue;
    const int events = static_cast<int>(rng.uniform_int(0, 8));
    for (int e = 0; e < events; ++e) {
      const Activity a{
          kT0 - static_cast<util::Duration>(rng.uniform(0, 700) * kDay),
          rng.uniform(0.1, 50.0)};
      const ActivityTypeId type = rng.uniform() < 0.7 ? 0 : 1;
      store.add(u, type, a);
      mirror.add(u, type, a);
    }
  }
  store.sort_all();
  IncrementalEvaluator inc(catalog, params, EvalMode::kIncremental);
  inc.advance(store, kT0);
  EXPECT_EQ(inc.group_of(7), UserGroup::kBothInactive);  // fresh

  // A dense recent burst flips user 7 to operation-active.
  std::vector<Activity> burst;
  for (int e = 0; e < 40; ++e) {
    burst.push_back(Activity{kT0 + e * (kDay / 2), 10.0 + e});
  }
  for (const Activity& a : burst) {
    store.append(7, 0, a);
    mirror.add(7, 0, a);
  }
  const AdvanceStats stats = inc.advance(store, kT0 + 25 * kDay);
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_TRUE(inc.users()[7].op.active());
  EXPECT_EQ(inc.group_of(7), UserGroup::kOperationActiveOnly);

  IncrementalEvaluator full(catalog, params, EvalMode::kFull);
  full.advance(mirror, kT0 + 25 * kDay);
  expect_same_plan(full.plan(), inc.plan());
}

TEST(IncrementalEvaluator, AutoModeBehavesIncrementally) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      90, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent);
  ActivityStore store = random_store(3, 40);
  IncrementalEvaluator pipeline(catalog, params);  // default: kAuto
  EXPECT_EQ(pipeline.mode(), EvalMode::kAuto);
  const AdvanceStats first = pipeline.advance(store, kT0);
  EXPECT_TRUE(first.full_rebuild);
  const AdvanceStats second = pipeline.advance(store, kT0 + 7 * kDay);
  EXPECT_FALSE(second.full_rebuild);
  EXPECT_GT(second.users_skipped, 0u);
}

TEST(IncrementalEvaluator, AutoModeFallsBackUnderSustainedChurnThenRecovers) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      90, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent);
  constexpr std::size_t kUsers = 8;
  ActivityStore store(kUsers, 2);
  for (trace::UserId u = 0; u < kUsers; ++u) {
    store.add(u, 0, Activity{kT0 - 30 * kDay, 5.0});
  }
  store.sort_all();

  IncrementalEvaluator pipeline(catalog, params);  // default: kAuto
  util::TimePoint t = kT0;
  AdvanceStats stats = pipeline.advance(store, t);
  EXPECT_TRUE(stats.full_rebuild);
  EXPECT_FALSE(stats.auto_full);

  // Storm: touch 6 of 8 users every trigger, holding the delta set at the
  // rebuild threshold for kFallbackAfter consecutive advances.
  for (int i = 0; i < IncrementalEvaluator::kFallbackAfter; ++i) {
    t += 7 * kDay;
    for (trace::UserId u = 0; u < 6; ++u) {
      store.append(u, 0, Activity{t - kDay, 3.0});
    }
    stats = pipeline.advance(store, t);
    EXPECT_FALSE(stats.full_rebuild) << "delta path during hot streak " << i;
  }
  EXPECT_TRUE(stats.auto_full) << "hysteresis should have tripped";
  EXPECT_TRUE(pipeline.auto_full());

  // Resolved to full: advances rebuild while the storm lasts, and a calm
  // streak (1 of 8 dirty, under the quarter threshold) flips it back.
  for (int i = 0; i < IncrementalEvaluator::kRecoverAfter; ++i) {
    t += 7 * kDay;
    store.append(0, 0, Activity{t - kDay, 1.0});
    stats = pipeline.advance(store, t);
    EXPECT_TRUE(stats.full_rebuild) << "resolved full during calm streak " << i;
    EXPECT_EQ(stats.users_dirty, 1u);
  }
  EXPECT_FALSE(stats.auto_full) << "calm streak should have recovered";
  EXPECT_FALSE(pipeline.auto_full());

  // Next trigger is back on the delta path.
  t += 7 * kDay;
  stats = pipeline.advance(store, t);
  EXPECT_FALSE(stats.full_rebuild);
}

TEST(IncrementalEvaluator, CappedWindowStaticGapFreezesUser) {
  // A max_periods cap used to disable the static-gap certificate outright
  // (the capped window can slide past an old gap), so this user was
  // re-ranked at every trigger forever. The capped variant proves the zero
  // durable when the gap ends at/after ts_{n-1} - (P-4)·d: here a 35-day
  // gap against d = 7 days and P = 6 — the gap's empty period stays inside
  // every future window until the newest activity itself goes stale.
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      7, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent, 6);
  ActivityStore store(1, 2);
  ActivityStore mirror(1, 2);
  for (const int age_days : {41, 40, 39, 38, 3, 2, 1}) {
    const Activity a{kT0 - age_days * kDay, 2.0};
    store.add(0, 0, a);
    mirror.add(0, 0, a);
  }
  store.sort_all();
  mirror.sort_all();

  IncrementalEvaluator inc(catalog, params, EvalMode::kIncremental);
  inc.advance(store, kT0);
  EXPECT_TRUE(inc.users()[0].op.zero);  // the gap's empty period zeroes op

  // The first delta advance runs the skip rules once — the newest activity
  // is still inside period 1, the totals are positive, and n >= m, so only
  // the gap certificate can fire — and memoizes the durable skip.
  AdvanceStats stats = inc.advance(store, kT0 + 3 * kDay);
  EXPECT_EQ(stats.users_reevaluated, 0u);
  EXPECT_EQ(stats.users_skipped, 1u);
  EXPECT_EQ(inc.frozen_users(), 1u);

  // The frozen skip holds at every later trigger (> 2·plen beyond the
  // last activity included) without diverging from a full evaluation.
  for (const int days : {7, 30, 200}) {
    const util::TimePoint t = kT0 + days * kDay;
    stats = inc.advance(store, t);
    EXPECT_EQ(stats.users_reevaluated, 0u) << "at +" << days << "d";
    IncrementalEvaluator full(catalog, params, EvalMode::kFull);
    full.advance(mirror, t);
    expect_same_plan(full.plan(), inc.plan());
  }
}

TEST(IncrementalEvaluator, SecondsAccumulatePerInstance) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      90, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent);
  ActivityStore a = random_store(1, 60);
  ActivityStore b = random_store(2, 60);
  IncrementalEvaluator first(catalog, params);
  IncrementalEvaluator second(catalog, params);
  first.advance(a, kT0);
  EXPECT_GT(first.seconds(), 0.0);
  EXPECT_EQ(second.seconds(), 0.0);  // untouched instance: no bleed-through
  second.advance(b, kT0);
  EXPECT_GT(second.seconds(), 0.0);
}

}  // namespace
}  // namespace adr::activeness
