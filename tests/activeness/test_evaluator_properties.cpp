// Property-based tests of the activeness evaluation (Eqs. 1-6): invariances
// and orderings that must hold for every period length and scheme.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "activeness/evaluator.hpp"
#include "util/rng.hpp"

namespace adr::activeness {
namespace {

constexpr util::TimePoint kT0 = 1'700'000'000;

struct Case {
  int period_days;
  ExponentScheme scheme;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const char* scheme = "";
  switch (info.param.scheme) {
    case ExponentScheme::kPaperExponent: scheme = "paper"; break;
    case ExponentScheme::kUniform: scheme = "uniform"; break;
    case ExponentScheme::kCappedLinear: scheme = "capped"; break;
  }
  return std::to_string(info.param.period_days) + "d_" + scheme;
}

class EvaluatorProperty : public ::testing::TestWithParam<Case> {
 protected:
  EvaluationParams params() const {
    EvaluationParams p;
    p.period_length_days = GetParam().period_days;
    p.scheme = GetParam().scheme;
    p.now = kT0;
    return p;
  }

  /// A reproducible random activity stream spanning up to two years.
  std::vector<Activity> random_stream(std::uint64_t seed, std::size_t n) {
    util::Rng rng(seed);
    std::vector<Activity> acts;
    for (std::size_t i = 0; i < n; ++i) {
      acts.push_back(Activity{
          kT0 - static_cast<util::Duration>(rng.uniform(0, 730) * 86400),
          rng.uniform(0.1, 100.0)});
    }
    std::sort(acts.begin(), acts.end(),
              [](const Activity& a, const Activity& b) {
                return a.timestamp < b.timestamp;
              });
    return acts;
  }
};

TEST_P(EvaluatorProperty, ImpactScaleInvariance) {
  // Eq. 3 normalizes per-period impact by the per-period average, so
  // multiplying every impact by a constant must not change the rank. This
  // also means per-type weights cancel out of Φλ entirely — documented in
  // DESIGN.md.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto acts = random_stream(seed, 40);
    const Rank base = evaluate_stream(acts, params());
    for (auto& a : acts) a.impact *= 1000.0;
    const Rank scaled = evaluate_stream(acts, params());
    EXPECT_EQ(base.zero, scaled.zero);
    if (!base.zero) {
      EXPECT_NEAR(static_cast<double>(base.log_phi),
                  static_cast<double>(scaled.log_phi), 1e-9);
    }
  }
}

TEST_P(EvaluatorProperty, TimeShiftInvariance) {
  // Shifting all timestamps and t_c by the same delta preserves the rank.
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const auto acts = random_stream(seed, 30);
    const Rank base = evaluate_stream(acts, params());

    const util::Duration delta = util::days(123) + 4567;
    std::vector<Activity> shifted = acts;
    for (auto& a : shifted) a.timestamp += delta;
    EvaluationParams p = params();
    p.now += delta;
    const Rank moved = evaluate_stream(shifted, p);

    EXPECT_EQ(base.zero, moved.zero);
    if (!base.zero) {
      EXPECT_NEAR(static_cast<double>(base.log_phi),
                  static_cast<double>(moved.log_phi), 1e-9);
    }
  }
}

TEST_P(EvaluatorProperty, WithinPeriodTimingIrrelevant) {
  // Only the period an activity falls in matters, not where inside it.
  const int d = GetParam().period_days;
  std::vector<Activity> early, late;
  for (int e = 0; e < 4; ++e) {
    const double base_age = (3 - e) * d;
    early.push_back(Activity{
        kT0 - static_cast<util::Duration>((base_age + 0.9 * d) * 86400),
        5.0 + e});
    late.push_back(Activity{
        kT0 - static_cast<util::Duration>((base_age + 0.1 * d) * 86400),
        5.0 + e});
  }
  std::sort(early.begin(), early.end(),
            [](const Activity& a, const Activity& b) {
              return a.timestamp < b.timestamp;
            });
  std::sort(late.begin(), late.end(),
            [](const Activity& a, const Activity& b) {
              return a.timestamp < b.timestamp;
            });
  const Rank a = evaluate_stream(early, params());
  const Rank b = evaluate_stream(late, params());
  // Both span the same number of periods with the same per-period impact.
  EXPECT_EQ(a.zero, b.zero);
  if (!a.zero) {
    EXPECT_NEAR(static_cast<double>(a.log_phi),
                static_cast<double>(b.log_phi), 1e-9);
  }
}

TEST_P(EvaluatorProperty, AscendingArrangementMaximizesPaperRank) {
  // Rearrangement inequality: with the paper exponent, assigning the larger
  // per-period impacts to the more recent periods maximizes log Φ over all
  // permutations of the same impact multiset.
  if (GetParam().scheme != ExponentScheme::kPaperExponent) {
    GTEST_SKIP() << "arrangement only matters for recency-weighted schemes";
  }
  const int d = GetParam().period_days;
  const std::vector<double> impacts{1.0, 3.0, 7.0, 20.0, 55.0};

  auto rank_for = [&](const std::vector<double>& per_period) {
    std::vector<Activity> acts;
    const int m = static_cast<int>(per_period.size());
    for (int e = 0; e < m; ++e) {
      // One activity per period; the oldest sits deeper into its period so
      // the span rounds up to exactly m periods (no bucket collisions).
      const double age_days =
          (m - 1 - e) * d + (e == 0 ? 0.7 : 0.5) * d;
      acts.push_back(Activity{
          kT0 - static_cast<util::Duration>(age_days * 86400),
          per_period[static_cast<std::size_t>(e)]});
    }
    std::sort(acts.begin(), acts.end(),
              [](const Activity& a, const Activity& b) {
                return a.timestamp < b.timestamp;
              });
    return evaluate_stream(acts, params());
  };

  const Rank best = rank_for(impacts);  // ascending = recent-heavy
  std::vector<double> perm = impacts;
  std::sort(perm.begin(), perm.end());
  int checked = 0;
  do {
    const Rank r = rank_for(perm);
    ASSERT_FALSE(r.zero);
    EXPECT_LE(r.log_phi, best.log_phi + 1e-9L);
    ++checked;
  } while (std::next_permutation(perm.begin(), perm.end()) && checked < 120);
}

TEST_P(EvaluatorProperty, EvaluateAllMatchesPerUser) {
  const auto catalog = ActivityCatalog::paper_default();
  ActivityStore store(40, catalog.size());
  util::Rng rng(99);
  for (trace::UserId u = 0; u < 40; ++u) {
    const std::int64_t n = rng.uniform_int(0, 20);
    for (std::int64_t i = 0; i < n; ++i) {
      store.add(u, rng.bounded(2),
                Activity{kT0 - static_cast<util::Duration>(
                                   rng.uniform(0, 500) * 86400),
                         rng.uniform(1.0, 50.0)});
    }
  }
  store.sort_all();
  const Evaluator ev(catalog, params());
  const auto all = ev.evaluate_all(store);
  for (trace::UserId u = 0; u < 40; ++u) {
    const auto single = ev.evaluate_user(store, u);
    EXPECT_EQ(all[u].op.zero, single.op.zero);
    EXPECT_EQ(all[u].op.has_data, single.op.has_data);
    EXPECT_EQ(static_cast<double>(all[u].op.log_phi),
              static_cast<double>(single.op.log_phi));
    EXPECT_EQ(all[u].last_activity, single.last_activity);
  }
}

TEST_P(EvaluatorProperty, ActivityAtNowCountsAsNewest) {
  // Boundary: an activity exactly at t_c lands in period m, not beyond it.
  std::vector<Activity> acts{
      Activity{kT0 - util::days(GetParam().period_days) - 10, 3.0},
      Activity{kT0, 3.0},
  };
  const Rank r = evaluate_stream(acts, params());
  EXPECT_TRUE(r.has_data);
  EXPECT_FALSE(r.zero);  // both periods populated
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EvaluatorProperty,
    ::testing::Values(Case{7, ExponentScheme::kPaperExponent},
                      Case{30, ExponentScheme::kPaperExponent},
                      Case{90, ExponentScheme::kPaperExponent},
                      Case{30, ExponentScheme::kUniform},
                      Case{30, ExponentScheme::kCappedLinear},
                      Case{90, ExponentScheme::kUniform}),
    case_name);

}  // namespace
}  // namespace adr::activeness
