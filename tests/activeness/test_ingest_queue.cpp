// Per-shard ingest queues (DESIGN.md §12): producers enqueue trace events
// concurrently with an advancing ShardedEvaluator; each shard's advance
// drains only its own queue, so the final ranks must be byte-identical to a
// serial replay of the same events. The suite name matches the TSan CI
// job's "Shard|ThreadPool" filter — these tests are where the
// producer/evaluator interleavings actually happen.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "activeness/sharded.hpp"
#include "util/rng.hpp"

namespace adr::activeness {
namespace {

constexpr util::TimePoint kT0 = 1'700'000'000;
constexpr util::Duration kDay = 86'400;

void expect_same_rank(const Rank& a, const Rank& b, const char* what) {
  EXPECT_EQ(a.has_data, b.has_data) << what;
  EXPECT_EQ(a.zero, b.zero) << what;
  EXPECT_EQ(a.log_phi, b.log_phi) << what;
}

void expect_same_activeness(const UserActiveness& a, const UserActiveness& b) {
  EXPECT_EQ(a.user, b.user);
  expect_same_rank(a.op, b.op, "op");
  expect_same_rank(a.oc, b.oc, "oc");
  EXPECT_EQ(a.last_activity, b.last_activity);
}

void expect_same_plan(const ScanPlan& a, const ScanPlan& b) {
  for (std::size_t g = 0; g < kGroupCount; ++g) {
    ASSERT_EQ(a.groups[g].size(), b.groups[g].size()) << "group " << g;
    for (std::size_t i = 0; i < a.groups[g].size(); ++i) {
      expect_same_activeness(a.groups[g][i], b.groups[g][i]);
    }
  }
}

/// Identical base population for the concurrent run and its serial replay.
ActivityStore base_store(std::uint64_t seed, std::size_t users) {
  ActivityStore store(users, 2);
  util::Rng rng(seed);
  for (trace::UserId u = 0; u < users; ++u) {
    if (rng.uniform() < 0.2) continue;  // fresh users stay empty
    const int events = static_cast<int>(rng.uniform_int(1, 20));
    for (int e = 0; e < events; ++e) {
      const util::TimePoint ts =
          kT0 - static_cast<util::Duration>(rng.uniform(0, 400) * kDay);
      store.add(u, rng.uniform() < 0.7 ? 0 : 1,
                Activity{ts, rng.uniform(0.1, 50.0)});
    }
  }
  store.sort_all();
  return store;
}

struct Event {
  trace::UserId user;
  ActivityTypeId type;
  Activity activity;
};

/// Deterministic ingest stream: timestamps march forward from kT0 so the
/// interleaved advances reveal them progressively.
std::vector<Event> make_events(std::uint64_t seed, std::size_t users,
                               std::size_t count) {
  util::Rng rng(seed);
  std::vector<Event> events(count);
  for (std::size_t i = 0; i < count; ++i) {
    events[i].user = static_cast<trace::UserId>(rng.bounded(users));
    events[i].type = rng.uniform() < 0.5 ? 0 : 1;
    events[i].activity.timestamp =
        kT0 + static_cast<util::Duration>(
                  30.0 * kDay * static_cast<double>(i) /
                  static_cast<double>(count));
    events[i].activity.impact = rng.uniform(0.1, 50.0);
  }
  return events;
}

EvaluationParams short_params() {
  EvaluationParams p;
  p.period_length_days = 30;
  return p;
}

TEST(ShardIngestQueues, EnqueueRoutesToOwnerShard) {
  constexpr std::size_t kUsers = 64;
  constexpr std::size_t kShards = 4;
  ActivityStore store = base_store(11, kUsers);
  store.set_dirty_shards(kShards);
  store.take_dirty(0), store.take_dirty(1), store.take_dirty(2),
      store.take_dirty(3);
  const ShardMap map(kUsers, kShards);

  const trace::UserId user = map.begin(2);  // definitely owned by shard 2
  store.enqueue(user, 0, Activity{kT0 + kDay, 1.0});
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(store.has_pending_ingest(s), s == 2) << "shard " << s;
  }
  EXPECT_TRUE(store.has_pending_ingest());

  EXPECT_EQ(store.drain_ingest(2), 1u);
  EXPECT_FALSE(store.has_pending_ingest());
  // The drain applied the event through append(): the owner shard is dirty
  // again and the stream grew.
  EXPECT_TRUE(store.has_dirty(2));
  EXPECT_EQ(store.stream(user, 0).back().timestamp, kT0 + kDay);
}

TEST(ShardIngestQueues, EnqueueValidatesUserAndType) {
  ActivityStore store(8, 2);
  EXPECT_THROW(store.enqueue(8, 0, Activity{kT0, 1.0}), std::out_of_range);
  EXPECT_THROW(store.enqueue(0, 2, Activity{kT0, 1.0}), std::out_of_range);
}

TEST(ShardIngestQueues, PerShardDrainRequiresFinalizedStore) {
  ActivityStore store(8, 2);  // never sorted: not finalized
  store.set_dirty_shards(2);
  store.enqueue(0, 0, Activity{kT0, 1.0});
  EXPECT_THROW(store.drain_ingest(0), std::logic_error);
  // The global drain finalizes first, then applies everything.
  EXPECT_EQ(store.drain_ingest(), 1u);
  EXPECT_TRUE(store.finalized());
  EXPECT_FALSE(store.has_pending_ingest());
}

TEST(ShardIngestQueues, WakeFilterSeesPendingIngest) {
  constexpr std::size_t kUsers = 64;
  constexpr std::size_t kShards = 4;
  ActivityStore store = base_store(22, kUsers);
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  ShardedEvaluator evaluator(catalog, short_params(), EvalMode::kAuto,
                             kShards);
  evaluator.advance(store, kT0);
  evaluator.advance(store, kT0 + kDay);

  const ShardMap map(kUsers, kShards);
  const trace::UserId user = map.begin(1);
  const util::TimePoint ts = kT0 + 2 * kDay;
  store.enqueue(user, 0, Activity{ts, 5.0});

  // The event sits only in shard 1's ingest queue — it is not in the
  // chronological index yet, so the wake filter can only see it through
  // has_pending_ingest. Its effect must be visible in the refreshed rank.
  evaluator.advance(store, kT0 + 3 * kDay);
  EXPECT_GE(evaluator.shards_advanced(), 1u);
  EXPECT_EQ(evaluator.users()[user].last_activity, ts);
}

// N producer threads enqueue a deterministic stream round-robin while the
// main thread keeps advancing the sharded evaluator mid-flight. After a
// final advance past the stream's last timestamp, every rank and the full
// scan plan must equal a single-threaded replay of the same events. Run
// under TSan in CI (filter "Shard|ThreadPool").
TEST(ShardIngestQueues, ConcurrentProducersMatchSerialReplay) {
  constexpr std::size_t kUsers = 96;
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kEvents = 4000;
  const std::vector<Event> events = make_events(33, kUsers, kEvents);
  const ActivityCatalog catalog = ActivityCatalog::paper_default();

  ActivityStore store = base_store(44, kUsers);
  ShardedEvaluator evaluator(catalog, short_params(), EvalMode::kAuto,
                             kShards);
  // Warm start before producers exist: ensure_shards() re-buckets the
  // store single-threaded.
  evaluator.advance(store, kT0);

  std::atomic<std::size_t> enqueued{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < events.size(); i += kProducers) {
        store.enqueue(events[i].user, events[i].type, events[i].activity);
        enqueued.fetch_add(1, std::memory_order_release);
      }
    });
  }

  util::TimePoint now = kT0;
  while (enqueued.load(std::memory_order_acquire) < events.size()) {
    now += kDay;
    evaluator.advance(store, now);
  }
  for (std::thread& t : producers) t.join();
  const util::TimePoint final_now = std::max(now, kT0 + 40 * kDay);
  evaluator.advance(store, final_now);

  ActivityStore serial = base_store(44, kUsers);
  for (const Event& e : events) serial.append(e.user, e.type, e.activity);
  ShardedEvaluator reference(catalog, short_params(), EvalMode::kFull, 1);
  reference.advance(serial, final_now);

  ASSERT_EQ(evaluator.users().size(), reference.users().size());
  for (std::size_t u = 0; u < reference.users().size(); ++u) {
    expect_same_activeness(evaluator.users()[u], reference.users()[u]);
  }
  expect_same_plan(evaluator.plan(), reference.plan());
}

}  // namespace
}  // namespace adr::activeness
