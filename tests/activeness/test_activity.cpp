#include "activeness/activity.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace adr::activeness {
namespace {

TEST(ActivityCatalog, RegistersAndQueries) {
  ActivityCatalog cat;
  const auto job = cat.add({"job", ActivityCategory::kOperation, 1.0});
  const auto xfer = cat.add({"transfer", ActivityCategory::kOperation, 0.5});
  const auto pub = cat.add({"pub", ActivityCategory::kOutcome, 2.0});
  EXPECT_EQ(cat.size(), 3u);
  EXPECT_EQ(cat.spec(job).name, "job");
  EXPECT_EQ(cat.spec(pub).weight, 2.0);
  EXPECT_EQ(cat.types_in(ActivityCategory::kOperation),
            (std::vector<ActivityTypeId>{job, xfer}));
  EXPECT_EQ(cat.types_in(ActivityCategory::kOutcome),
            (std::vector<ActivityTypeId>{pub}));
  EXPECT_THROW(cat.spec(99), std::out_of_range);
}

TEST(ActivityCatalog, PaperDefault) {
  const auto cat = ActivityCatalog::paper_default();
  ASSERT_EQ(cat.size(), 2u);
  EXPECT_EQ(cat.spec(0).category, ActivityCategory::kOperation);
  EXPECT_EQ(cat.spec(1).category, ActivityCategory::kOutcome);
}

TEST(ActivityStore, AddAndStream) {
  ActivityStore store(3, 2);
  store.add(1, 0, {100, 5.0});
  store.add(1, 0, {50, 3.0});
  store.add(2, 1, {70, 1.0});
  EXPECT_EQ(store.total_activities(), 3u);
  EXPECT_EQ(store.stream(1, 0).size(), 2u);
  EXPECT_EQ(store.stream(0, 0).size(), 0u);
  store.sort_all();
  EXPECT_EQ(store.stream(1, 0)[0].timestamp, 50);
  EXPECT_EQ(store.stream(1, 0)[1].timestamp, 100);
}

TEST(ActivityStore, BoundsChecked) {
  ActivityStore store(2, 1);
  EXPECT_THROW(store.add(2, 0, {0, 0}), std::out_of_range);
  EXPECT_THROW(store.add(0, 1, {0, 0}), std::out_of_range);
  EXPECT_THROW(store.stream(5, 0), std::out_of_range);
}

TEST(Ingest, JobsBecomeCoreHourActivities) {
  trace::JobLog jobs;
  trace::JobRecord j;
  j.user = 1;
  j.submit_time = 42;
  j.duration_seconds = 7200;
  j.cores = 10;  // 20 core-hours
  jobs.add(j);
  j.user = 99;  // out of range: skipped
  jobs.add(j);

  ActivityStore store(2, 1);
  ingest_jobs(store, 0, 2.0, jobs);
  ASSERT_EQ(store.stream(1, 0).size(), 1u);
  EXPECT_EQ(store.stream(1, 0)[0].timestamp, 42);
  EXPECT_DOUBLE_EQ(store.stream(1, 0)[0].impact, 40.0);  // weighted x2
  EXPECT_EQ(store.total_activities(), 1u);
}

TEST(Ingest, PublicationsFanOutPerAuthor) {
  trace::PublicationLog pubs;
  trace::PublicationRecord p;
  p.published = 7;
  p.citations = 4;     // phi = 5
  p.authors = {0, 1};  // theta: 2 for lead, 1 for second
  pubs.add(p);

  ActivityStore store(2, 1);
  ingest_publications(store, 0, 1.0, pubs);
  ASSERT_EQ(store.stream(0, 0).size(), 1u);
  ASSERT_EQ(store.stream(1, 0).size(), 1u);
  EXPECT_DOUBLE_EQ(store.stream(0, 0)[0].impact, 10.0);
  EXPECT_DOUBLE_EQ(store.stream(1, 0)[0].impact, 5.0);
}

TEST(IngestCsv, RoundTripAndSkipUnknownUsers) {
  const std::string path = ::testing::TempDir() + "/activities.csv";
  save_activities_csv(path, {{0, {100, 2.5}},
                             {1, {200, 1.0}},
                             {99, {300, 9.0}}});  // user 99 out of range
  ActivityStore store(2, 1);
  const std::size_t n = ingest_activities_csv(store, 0, 2.0, path);
  EXPECT_EQ(n, 2u);
  ASSERT_EQ(store.stream(0, 0).size(), 1u);
  EXPECT_EQ(store.stream(0, 0)[0].timestamp, 100);
  EXPECT_DOUBLE_EQ(store.stream(0, 0)[0].impact, 5.0);  // weighted x2
  EXPECT_EQ(store.stream(1, 0).size(), 1u);
  std::remove(path.c_str());
}

TEST(IngestCsv, MalformedRowThrows) {
  const std::string path = ::testing::TempDir() + "/bad_activities.csv";
  {
    std::ofstream out(path);
    out << "user,timestamp,impact\n1,2\n";
  }
  ActivityStore store(2, 1);
  EXPECT_THROW(ingest_activities_csv(store, 0, 1.0, path),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(IngestCsv, MissingFileThrows) {
  ActivityStore store(1, 1);
  EXPECT_THROW(ingest_activities_csv(store, 0, 1.0, "/nonexistent.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace adr::activeness
