// Sharding invariance: splitting the incremental pipeline into user-range
// shards must be invisible in every output — ranks, classifications, scan
// plans, purge victims — across randomized timelines with streaming appends
// and backwards-time rebuilds. Plus the sharded bookkeeping itself: the
// partition map, the wake filter, and per-shard kAuto hysteresis.

#include "activeness/sharded.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "retention/activedr_policy.hpp"
#include "util/rng.hpp"

namespace adr::activeness {
namespace {

constexpr util::TimePoint kT0 = 1'700'000'000;
constexpr util::Duration kDay = 86'400;

void expect_same_rank(const Rank& a, const Rank& b, const char* what) {
  EXPECT_EQ(a.has_data, b.has_data) << what;
  EXPECT_EQ(a.zero, b.zero) << what;
  EXPECT_EQ(a.log_phi, b.log_phi) << what;
}

void expect_same_activeness(const UserActiveness& a, const UserActiveness& b) {
  EXPECT_EQ(a.user, b.user);
  expect_same_rank(a.op, b.op, "op");
  expect_same_rank(a.oc, b.oc, "oc");
  EXPECT_EQ(a.last_activity, b.last_activity);
}

void expect_same_plan(const ScanPlan& a, const ScanPlan& b) {
  for (std::size_t g = 0; g < kGroupCount; ++g) {
    ASSERT_EQ(a.groups[g].size(), b.groups[g].size()) << "group " << g;
    for (std::size_t i = 0; i < a.groups[g].size(); ++i) {
      EXPECT_EQ(a.groups[g][i].user, b.groups[g][i].user)
          << "group " << g << " position " << i;
      expect_same_activeness(a.groups[g][i], b.groups[g][i]);
    }
  }
}

/// A random population: most users sparse (many end up at Φ = 0 or fresh),
/// a few dense enough to hold a positive rank.
ActivityStore random_store(std::uint64_t seed, std::size_t users) {
  ActivityStore store(users, 2);
  util::Rng rng(seed);
  for (trace::UserId u = 0; u < users; ++u) {
    const double archetype = rng.uniform();
    if (archetype < 0.15) continue;  // fresh: no activity at all
    const bool dense = archetype > 0.8;
    const int events = dense ? static_cast<int>(rng.uniform_int(30, 80))
                             : static_cast<int>(rng.uniform_int(1, 6));
    for (int e = 0; e < events; ++e) {
      const util::TimePoint ts =
          kT0 - static_cast<util::Duration>(rng.uniform(0, 700) * kDay);
      const ActivityTypeId type = rng.uniform() < 0.7 ? 0 : 1;
      store.add(u, type, Activity{ts, rng.uniform(0.1, 50.0)});
    }
  }
  store.sort_all();
  return store;
}

EvaluationParams params_for(int period_days, StaleHandling stale,
                            ExponentScheme scheme, int max_periods = 0) {
  EvaluationParams p;
  p.period_length_days = period_days;
  p.stale = stale;
  p.scheme = scheme;
  p.max_periods = max_periods;
  return p;
}

TEST(ShardMap, PartitionsEveryUserExactlyOnce) {
  for (const std::size_t users : {1u, 3u, 10u, 97u, 1000u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 7u, 16u, 150u}) {
      const ShardMap map(users, shards);
      EXPECT_EQ(map.users(), users);
      EXPECT_EQ(map.shards(), shards);
      EXPECT_EQ(map.begin(0), 0u);
      EXPECT_EQ(map.end(shards - 1), users);
      std::size_t covered = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        ASSERT_LE(map.begin(s), map.end(s)) << "users=" << users
                                            << " shards=" << shards;
        covered += map.end(s) - map.begin(s);
        for (trace::UserId u = map.begin(s); u < map.end(s); ++u) {
          ASSERT_EQ(map.shard_of(u), s)
              << "user " << u << " users=" << users << " shards=" << shards;
        }
      }
      EXPECT_EQ(covered, users);
    }
  }
  // Zero shards is clamped to one, never a division by zero.
  const ShardMap degenerate(5, 0);
  EXPECT_EQ(degenerate.shards(), 1u);
  EXPECT_EQ(degenerate.end(0), 5u);
}

TEST(ShardMap, EmptyMapRoutesEverythingToShardZero) {
  // users == 0 used to divide by zero in shard_of; an empty map owns no
  // users but still answers (default-constructed stores, zero-user synth).
  for (const std::size_t shards : {1u, 2u, 16u}) {
    const ShardMap empty(0, shards);
    EXPECT_EQ(empty.users(), 0u);
    EXPECT_EQ(empty.shard_of(0), 0u);
    EXPECT_EQ(empty.shard_of(41), 0u);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(empty.begin(s), 0u);
      EXPECT_EQ(empty.end(s), 0u);
    }
  }
  const ShardMap degenerate(0, 0);  // both axes degenerate at once
  EXPECT_EQ(degenerate.shards(), 1u);
  EXPECT_EQ(degenerate.shard_of(7), 0u);
}

TEST(ShardMap, MoreShardsThanUsersLeavesTrailingShardsEmpty) {
  for (const std::size_t users : {1u, 2u, 5u}) {
    for (const std::size_t shards : {7u, 16u, 64u}) {
      const ShardMap map(users, shards);
      std::size_t nonempty = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        ASSERT_LE(map.begin(s), map.end(s));
        if (map.begin(s) != map.end(s)) ++nonempty;
        for (trace::UserId u = map.begin(s); u < map.end(s); ++u) {
          ASSERT_EQ(map.shard_of(u), s) << "users=" << users
                                        << " shards=" << shards;
        }
      }
      EXPECT_EQ(nonempty, users);  // each owner shard holds exactly one user
      EXPECT_EQ(map.end(shards - 1), users);
    }
  }
}

// The tentpole guarantee: for every shard count, the sharded pipeline's
// users, groups, scan plan, and purge victims are element-for-element
// identical to the single pipeline's — across 200 randomized timelines
// mixing streaming appends, future-dated events, and backwards-time jumps.
TEST(ShardedEvaluator, MatchesSinglePipelineAcrossShardCountsAndTimelines) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  constexpr std::size_t kUsers = 80;
  const trace::UserRegistry registry =
      trace::UserRegistry::with_synthetic_users(kUsers);
  int timelines = 0;
  for (const std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      const EvaluationParams params = params_for(
          seed % 2 == 0 ? 30 : 90,
          seed % 3 == 0 ? StaleHandling::kDrop : StaleHandling::kClampOldest,
          ExponentScheme::kPaperExponent, seed % 3 == 0 ? 5 : 0);
      ActivityStore store = random_store(seed, kUsers);
      ActivityStore mirror = random_store(seed, kUsers);
      ShardedEvaluator sharded(catalog, params, EvalMode::kAuto, shards);
      IncrementalEvaluator single(catalog, params, EvalMode::kAuto);
      util::Rng rng(seed * 7919 + shards);
      util::TimePoint t = kT0 - 200 * kDay;
      for (int trigger = 0; trigger < 8; ++trigger) {
        if (trigger > 0 && rng.uniform() < 0.15) {
          // Backwards jump: every shard must rebuild, then stay identical.
          t -= static_cast<util::Duration>(rng.uniform_int(5, 60)) * kDay;
        } else {
          t += static_cast<util::Duration>(rng.uniform_int(3, 30)) * kDay;
        }
        const int burst = static_cast<int>(rng.uniform_int(0, 15));
        for (int e = 0; e < burst; ++e) {
          const auto user =
              static_cast<trace::UserId>(rng.uniform_int(0, kUsers - 1));
          const ActivityTypeId type = rng.uniform() < 0.7 ? 0 : 1;
          // Mostly at-or-before t; sometimes future-dated, so a later
          // trigger has to reveal it through the chrono window (and wake
          // the owning shard even though its dirty queue is empty by then).
          const util::Duration off =
              static_cast<util::Duration>(rng.uniform_int(0, 20 * kDay)) -
              10 * kDay;
          const Activity a{t + off, rng.uniform(0.5, 20.0)};
          store.append(user, type, a);
          mirror.append(user, type, a);
        }
        single.advance(mirror, t);
        sharded.advance(store, t);
        ASSERT_EQ(sharded.users().size(), kUsers);
        for (std::size_t u = 0; u < kUsers; ++u) {
          expect_same_activeness(single.users()[u], sharded.users()[u]);
          EXPECT_EQ(single.groups()[u], sharded.groups()[u]);
        }
        expect_same_plan(single.plan(), sharded.plan());
      }

      // Purge-victim identity at the final instant: a dry run with a byte
      // target makes the victim list depend on scan order, not just on the
      // victim set.
      fs::Vfs vfs_single, vfs_sharded;
      util::Rng files(seed ^ 0xabc);
      for (trace::UserId u = 0; u < kUsers; ++u) {
        for (int f = 0; f < 2; ++f) {
          fs::FileMeta meta;
          meta.owner = u;
          meta.size_bytes = 64 + static_cast<std::uint64_t>(
                                     files.uniform_int(0, 100));
          meta.atime =
              t - static_cast<util::Duration>(files.uniform_int(0, 400)) *
                      kDay;
          meta.ctime = meta.atime;
          const std::string path =
              registry.home_dir(u) + "/f" + std::to_string(f);
          vfs_single.create(path, meta);
          vfs_sharded.create(path, meta);
        }
      }
      retention::ActiveDrConfig config;
      config.dry_run = true;
      const retention::ActiveDrPolicy policy(config, registry);
      const std::uint64_t target = vfs_single.total_bytes() / 3;
      const retention::PurgeReport a =
          policy.run(vfs_single, t, target, single.plan());
      const retention::PurgeReport b =
          policy.run(vfs_sharded, t, target, sharded.plan());
      EXPECT_EQ(a.victim_paths, b.victim_paths)
          << "shards=" << shards << " seed=" << seed;
      ++timelines;
    }
  }
  EXPECT_EQ(timelines, 200);
}

TEST(ShardedEvaluator, WakesOnlyDirtyShards) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      90, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent);
  ActivityStore store(16, 2);  // everyone fresh: durable skips all around
  store.sort_all();
  ShardedEvaluator sharded(catalog, params, EvalMode::kAuto, 4);
  obs::Counter& advances =
      obs::MetricsRegistry::global().counter("shard.advances");

  sharded.advance(store, kT0);  // first advance: every shard rebuilds
  EXPECT_EQ(sharded.shards_advanced(), 4u);
  sharded.advance(store, kT0 + 7 * kDay);  // delta: every user freezes
  EXPECT_EQ(sharded.shards_advanced(), 4u);
  const std::uint64_t settled = advances.value();

  // Fully quiescent trigger: nothing dirty, no chrono events, everyone
  // frozen — no shard runs, and the cached plan stays served.
  sharded.advance(store, kT0 + 14 * kDay);
  EXPECT_EQ(sharded.shards_advanced(), 0u);
  EXPECT_EQ(advances.value(), settled);
  EXPECT_TRUE(sharded.evaluated());

  // One streamed event wakes exactly its owner's shard (user 9 -> shard 2).
  ASSERT_EQ(sharded.shard_map().shard_of(9), 2u);
  store.append(9, 0, Activity{kT0 + 15 * kDay, 4.0});
  sharded.advance(store, kT0 + 21 * kDay);
  EXPECT_EQ(sharded.shards_advanced(), 1u);
  EXPECT_EQ(advances.value(), settled + 1);
  EXPECT_EQ(sharded.shard_stats(2).users_reevaluated, 1u);
  EXPECT_EQ(sharded.shard_stats(0).users_skipped, 4u);  // slept through it
  EXPECT_TRUE(sharded.users()[9].op.has_data);
  EXPECT_EQ(sharded.group_of(9), UserGroup::kOperationActiveOnly);
}

TEST(ShardedEvaluator, PerShardAutoHysteresisIsolation) {
  const ActivityCatalog catalog = ActivityCatalog::paper_default();
  const EvaluationParams params = params_for(
      90, StaleHandling::kClampOldest, ExponentScheme::kPaperExponent);
  // Shard 0 = users 0..3 (seeded, positive ranks); shard 1 = users 4..7
  // (fresh, frozen after the first delta advance).
  ActivityStore store(8, 2);
  for (trace::UserId u = 0; u < 4; ++u) {
    store.add(u, 0, Activity{kT0 - 30 * kDay, 5.0});
  }
  store.sort_all();
  ShardedEvaluator sharded(catalog, params, EvalMode::kAuto, 2);
  obs::Counter& fallbacks =
      obs::MetricsRegistry::global().counter("incremental.auto_fallbacks");
  const std::uint64_t before = fallbacks.value();

  util::TimePoint t = kT0;
  AdvanceStats stats = sharded.advance(store, t);
  EXPECT_TRUE(stats.full_rebuild);

  // Storm confined to shard 0: 3 of its 4 users churn every trigger,
  // holding that shard at the rebuild threshold for kFallbackAfter
  // consecutive delta advances. Shard 1 sees none of it.
  for (int i = 0; i < IncrementalEvaluator::kFallbackAfter; ++i) {
    t += 7 * kDay;
    for (trace::UserId u = 0; u < 3; ++u) {
      store.append(u, 0, Activity{t - kDay, 3.0});
    }
    stats = sharded.advance(store, t);
  }
  EXPECT_TRUE(sharded.shard_auto_full(0)) << "hot shard should resolve full";
  EXPECT_FALSE(sharded.shard_auto_full(1)) << "calm shard must stay delta";
  EXPECT_TRUE(stats.auto_full);  // aggregate ORs the per-shard flags
  EXPECT_EQ(fallbacks.value(), before + 1);

  // While shard 0 rides out its storm in full mode, a trickle in shard 1
  // stays on the delta path — and the aggregate full_rebuild flag reports
  // that *not* every shard rebuilt.
  t += 7 * kDay;
  store.append(5, 1, Activity{t - kDay, 1.0});
  stats = sharded.advance(store, t);
  EXPECT_TRUE(sharded.shard_stats(0).full_rebuild);
  EXPECT_FALSE(sharded.shard_stats(1).full_rebuild);
  EXPECT_FALSE(stats.full_rebuild);

  // Calm streak (shard 0 sees zero dirty users) flips the hot shard back.
  for (int i = 1; i < IncrementalEvaluator::kRecoverAfter; ++i) {
    t += 7 * kDay;
    store.append(5, 1, Activity{t - kDay, 1.0});
    sharded.advance(store, t);
  }
  EXPECT_FALSE(sharded.shard_auto_full(0)) << "calm streak should recover";
}

TEST(ShardedEvaluator, DefaultShardCountTracksPoolAndCap) {
  const std::size_t n = ShardedEvaluator::default_shard_count();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

}  // namespace
}  // namespace adr::activeness
