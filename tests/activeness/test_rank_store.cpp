#include "activeness/rank_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace adr::activeness {
namespace {

UserActiveness ua(trace::UserId user, double op, double oc) {
  UserActiveness u;
  u.user = user;
  u.op = Rank::from_value(op);
  u.oc = Rank::from_value(oc);
  return u;
}

TEST(RankStore, SetAndGet) {
  RankStore store;
  store.set(ua(3, 2.0, 0.5));
  EXPECT_TRUE(store.contains(3));
  EXPECT_FALSE(store.contains(1));
  const auto got = store.get(3);
  EXPECT_TRUE(got.op.active());
  EXPECT_FALSE(got.oc.active());
}

TEST(RankStore, UnknownUserIsFresh) {
  const RankStore store;
  const auto got = store.get(42);
  EXPECT_EQ(got.user, 42u);
  EXPECT_TRUE(got.fresh());
}

TEST(RankStore, SetOverwrites) {
  RankStore store;
  store.set(ua(1, 0.5, 0.5));
  store.set(ua(1, 2.0, 2.0));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.get(1).op.active());
}

TEST(RankStore, InvalidUserRejected) {
  RankStore store;
  UserActiveness bad;
  EXPECT_THROW(store.set(bad), std::invalid_argument);
}

TEST(RankStore, GroupCounts) {
  RankStore store({ua(0, 2, 2), ua(1, 2, 0.1), ua(2, 0.1, 2), ua(3, 0, 0),
                   ua(4, 0, 0)});
  const auto counts = store.group_counts();
  EXPECT_EQ(counts[0], 1u);  // G1 both active
  EXPECT_EQ(counts[1], 1u);  // G2 op only
  EXPECT_EQ(counts[2], 1u);  // G3 oc only
  EXPECT_EQ(counts[3], 2u);  // G4 both inactive
}

TEST(RankStore, CsvRoundTripPreservesRankStructure) {
  RankStore store;
  store.set(ua(0, 123.456, 0.0));
  UserActiveness nodata;
  nodata.user = 1;
  store.set(nodata);

  const std::string path = ::testing::TempDir() + "/ranks.csv";
  store.save_csv(path);
  const RankStore loaded = RankStore::load_csv(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.size(), 2u);
  const auto u0 = loaded.get(0);
  EXPECT_TRUE(u0.op.active());
  EXPECT_NEAR(u0.op.value(), 123.456, 1e-3);
  EXPECT_TRUE(u0.oc.has_data);
  EXPECT_TRUE(u0.oc.zero);
  const auto u1 = loaded.get(1);
  EXPECT_TRUE(u1.fresh());
}

}  // namespace
}  // namespace adr::activeness
