#include "activeness/evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adr::activeness {
namespace {

constexpr util::TimePoint kT0 = 1'600'000'000;

EvaluationParams params_days(int d, util::TimePoint now) {
  EvaluationParams p;
  p.period_length_days = d;
  p.now = now;
  return p;
}

Activity at_days_ago(util::TimePoint now, double days_ago, double impact) {
  return Activity{now - static_cast<util::Duration>(days_ago * 86400.0),
                  impact};
}

TEST(Rank, NoDataIsNeutralInactive) {
  const Rank r = Rank::no_data();
  EXPECT_FALSE(r.active());
  EXPECT_DOUBLE_EQ(r.value(), 1.0);  // §3.4 initial rank
  EXPECT_EQ(r.sort_key(), 0.0L);
}

TEST(Rank, FromValueAndThreshold) {
  EXPECT_TRUE(Rank::from_value(1.0).active());
  EXPECT_TRUE(Rank::from_value(100.0).active());
  EXPECT_FALSE(Rank::from_value(0.99).active());
  EXPECT_FALSE(Rank::from_value(0.0).active());
}

TEST(Rank, ValueClamped) {
  EXPECT_DOUBLE_EQ(Rank::from_value(0.0).value(1e-3, 1e6), 1e-3);
  EXPECT_DOUBLE_EQ(Rank::from_value(1e9).value(0.0, 1e6), 1e6);
  EXPECT_NEAR(Rank::from_value(12.5).value(0.0, 1e6), 12.5, 1e-9);
}

TEST(Rank, ProductSemantics) {
  Rank r = Rank::no_data();
  r *= Rank::from_value(2.0);
  EXPECT_NEAR(r.value(), 2.0, 1e-12);  // neutral absorbed
  r *= Rank::from_value(3.0);
  EXPECT_NEAR(r.value(), 6.0, 1e-12);
  r *= Rank::from_value(0.0);  // zero absorbs
  EXPECT_FALSE(r.active());
  EXPECT_DOUBLE_EQ(r.value(0.0, 1e6), 0.0);
  r *= Rank::from_value(5.0);
  EXPECT_FALSE(r.active());
}

TEST(Rank, OrderingForScan) {
  const Rank zero = Rank::from_value(0.0);
  const Rank small = Rank::from_value(0.5);
  const Rank nodata = Rank::no_data();
  const Rank unit = Rank::from_value(1.0);
  const Rank big = Rank::from_value(10.0);
  EXPECT_LT(zero, small);
  EXPECT_LT(small, nodata);  // no-data sorts as Phi = 1
  EXPECT_LT(small, unit);
  EXPECT_LT(unit, big);
  EXPECT_FALSE(unit < nodata);
  EXPECT_FALSE(nodata < unit);
}

TEST(EvaluateStream, EmptyStreamHasNoData) {
  const Rank r = evaluate_stream({}, params_days(30, kT0));
  EXPECT_FALSE(r.has_data);
  EXPECT_FALSE(r.active());
}

// Hand-computed Eq. 1-5 example:
// d = 10 days, activities at now-29d (impact 3), now-15d (6), now-5d (9).
// m = ceil((t_c - a_0.ts)/d) = ceil(29d/10d) = 3, Avg = 18/3 = 6, periods:
// e=1 (b=0.5), e=2 (b=1), e=3 (b=1.5); Phi = 0.5^1 * 1^2 * 1.5^3 = 1.6875.
TEST(EvaluateStream, MatchesHandComputedExample) {
  const std::vector<Activity> acts{
      at_days_ago(kT0, 29, 3.0),
      at_days_ago(kT0, 15, 6.0),
      at_days_ago(kT0, 5, 9.0),
  };
  const Rank r = evaluate_stream(acts, params_days(10, kT0));
  ASSERT_TRUE(r.has_data);
  EXPECT_FALSE(r.zero);
  EXPECT_NEAR(r.value(), 1.6875, 1e-9);
  EXPECT_TRUE(r.active());
}

TEST(EvaluateStream, EmptyPeriodZeroesRank) {
  // Same as above but with the middle period empty.
  const std::vector<Activity> acts{
      at_days_ago(kT0, 29, 3.0),
      at_days_ago(kT0, 5, 9.0),
  };
  const Rank r = evaluate_stream(acts, params_days(10, kT0));
  ASSERT_TRUE(r.has_data);
  EXPECT_TRUE(r.zero);
  EXPECT_FALSE(r.active());
  EXPECT_DOUBLE_EQ(r.value(0.0, 1e6), 0.0);
}

TEST(EvaluateStream, SingleFreshActivityIsUnitRank) {
  // k = 1 inside the current period: m = 1, b = 1 -> Phi = 1 (active).
  const std::vector<Activity> acts{at_days_ago(kT0, 1.0, 7.0)};
  const Rank r = evaluate_stream(acts, params_days(30, kT0));
  EXPECT_TRUE(r.active());
  EXPECT_NEAR(r.value(), 1.0, 1e-12);
}

TEST(EvaluateStream, SingleStaleActivityIsZeroRank) {
  // Eq. 1 anchors the period count at t_c, so a lone activity several
  // periods back leaves the recent periods empty and the rank zeroes —
  // it must not keep the unit rank its history alone would earn.
  for (double age_days : {50.0, 400.0}) {
    const std::vector<Activity> acts{at_days_ago(kT0, age_days, 7.0)};
    const Rank r = evaluate_stream(acts, params_days(30, kT0));
    EXPECT_FALSE(r.active()) << age_days;
    EXPECT_TRUE(r.zero) << age_days;
  }
}

TEST(EvaluateStream, DropModeExpiresStaleSingletons) {
  EvaluationParams p = params_days(30, kT0);
  p.stale = StaleHandling::kDrop;
  const std::vector<Activity> fresh{at_days_ago(kT0, 10, 7.0)};
  EXPECT_TRUE(evaluate_stream(fresh, p).active());
  const std::vector<Activity> stale{at_days_ago(kT0, 100, 7.0)};
  const Rank r = evaluate_stream(stale, p);
  EXPECT_FALSE(r.active());
  EXPECT_TRUE(r.zero);
}

TEST(EvaluateStream, OldBurstInactiveWhenSpanCoversManyPeriods) {
  // Activities spread over 5 periods but all a year old: with
  // kClampOldest they collapse into period 1, leaving 2..5 empty -> 0.
  std::vector<Activity> acts;
  for (int i = 0; i < 5; ++i) {
    acts.push_back(at_days_ago(kT0, 400 - i * 10, 1.0));
  }
  const Rank r = evaluate_stream(acts, params_days(10, kT0));
  EXPECT_TRUE(r.zero);
  EXPECT_FALSE(r.active());
}

TEST(EvaluateStream, RecentPeriodsWeighMore) {
  // Rising activity (more impact recently) must outrank falling activity
  // with the same multiset of impacts.
  const std::vector<Activity> rising{
      at_days_ago(kT0, 25, 2.0),
      at_days_ago(kT0, 15, 6.0),
      at_days_ago(kT0, 5, 10.0),
  };
  const std::vector<Activity> falling{
      at_days_ago(kT0, 25, 10.0),
      at_days_ago(kT0, 15, 6.0),
      at_days_ago(kT0, 5, 2.0),
  };
  const auto p = params_days(10, kT0);
  const Rank up = evaluate_stream(rising, p);
  const Rank down = evaluate_stream(falling, p);
  EXPECT_GT(up.log_phi, down.log_phi);
  EXPECT_TRUE(up.active());
  EXPECT_FALSE(down.active());  // product < 1 when recent share shrinks
}

TEST(EvaluateStream, UniformSchemeIsOrderInsensitive) {
  // One activity per period (ages chosen so none collide or clamp).
  const std::vector<Activity> rising{
      at_days_ago(kT0, 29, 2.0),
      at_days_ago(kT0, 15, 6.0),
      at_days_ago(kT0, 5, 10.0),
  };
  const std::vector<Activity> falling{
      at_days_ago(kT0, 29, 10.0),
      at_days_ago(kT0, 15, 6.0),
      at_days_ago(kT0, 5, 2.0),
  };
  EvaluationParams p = params_days(10, kT0);
  p.scheme = ExponentScheme::kUniform;
  EXPECT_NEAR(static_cast<double>(evaluate_stream(rising, p).log_phi),
              static_cast<double>(evaluate_stream(falling, p).log_phi), 1e-12);
}

TEST(EvaluateStream, CappedSchemeBetweenUniformAndPaper) {
  std::vector<Activity> acts;
  for (int i = 0; i < 12; ++i) {
    acts.push_back(at_days_ago(kT0, 115 - i * 10, 1.0 + i));
  }
  EvaluationParams paper = params_days(10, kT0);
  EvaluationParams uniform = paper;
  uniform.scheme = ExponentScheme::kUniform;
  EvaluationParams capped = paper;
  capped.scheme = ExponentScheme::kCappedLinear;
  capped.exponent_cap = 4;
  const auto lp = evaluate_stream(acts, paper).log_phi;
  const auto lu = evaluate_stream(acts, uniform).log_phi;
  const auto lc = evaluate_stream(acts, capped).log_phi;
  EXPECT_GT(lp, lc);  // rising impacts: more recency weight, bigger rank
  EXPECT_GT(lc, lu);
}

TEST(EvaluateStream, ZeroTotalImpactIsZeroRank) {
  const std::vector<Activity> acts{at_days_ago(kT0, 5, 0.0),
                                   at_days_ago(kT0, 2, 0.0)};
  const Rank r = evaluate_stream(acts, params_days(10, kT0));
  EXPECT_TRUE(r.has_data);
  EXPECT_TRUE(r.zero);
}

TEST(EvaluateStream, MaxPeriodsCapsWindow) {
  // 100 periods of steady activity; cap at 5 keeps the rank finite and
  // anchored to the recent window.
  std::vector<Activity> acts;
  for (int i = 0; i < 100; ++i) {
    acts.push_back(at_days_ago(kT0, 995 - i * 10, 1.0));
  }
  EvaluationParams p = params_days(10, kT0);
  p.max_periods = 5;
  const Rank r = evaluate_stream(acts, p);
  ASSERT_TRUE(r.has_data);
  EXPECT_FALSE(r.zero);
}

// Builds a stream with exactly two unit-impact activities in each of m
// periods of length d: every b_p == 1, so Phi == 1 exactly.
std::vector<Activity> dense_steady(util::TimePoint now, int m, int d,
                                   double last_impact = 1.0) {
  std::vector<Activity> acts;
  for (int e = 1; e <= m; ++e) {
    const double base = static_cast<double>((m - e) * d);
    const double impact = e == m ? last_impact : 1.0;
    acts.push_back(at_days_ago(now, base + 7.5 * d / 10.0, impact));
    acts.push_back(at_days_ago(now, base + 2.5 * d / 10.0, impact));
  }
  return acts;
}

TEST(EvaluateStream, DenseSteadyActivityIsUnitRank) {
  const Rank r = evaluate_stream(dense_steady(kT0, 6, 10),
                                 params_days(10, kT0));
  EXPECT_TRUE(r.active());
  EXPECT_NEAR(static_cast<double>(r.log_phi), 0.0, 1e-9);
}

TEST(EvaluateStream, SparseSteadyActivityHoldsUnitRank) {
  // One activity per period, all the way up to t_c: with Eq. 1 anchored at
  // t_c the span covers exactly m = 6 periods, every ratio is 1, and the
  // user sits right at the activeness threshold.
  std::vector<Activity> acts;
  for (int i = 0; i < 6; ++i) {
    acts.push_back(at_days_ago(kT0, 55 - i * 10, 1.0));
  }
  const Rank r = evaluate_stream(acts, params_days(10, kT0));
  ASSERT_TRUE(r.has_data);
  EXPECT_TRUE(r.active());
  EXPECT_NEAR(static_cast<double>(r.log_phi), 0.0, 1e-9);
}

TEST(EvaluateStream, IdleTailDropsRankBelowUnit) {
  // Regression for the Eq. 1 anchoring fix: m counts periods back from
  // t_c, not from the user's newest activity. A user with a perfectly
  // steady history who then went idle must not keep the unit rank the
  // history alone would earn — the idle tail adds empty recent periods
  // and drags the rank below 1.
  std::vector<Activity> acts;
  for (int i = 0; i < 4; ++i) {
    acts.push_back(at_days_ago(kT0, 205.0 - i * 10.0, 1.0));
  }
  const Rank r = evaluate_stream(acts, params_days(10, kT0));
  ASSERT_TRUE(r.has_data);
  EXPECT_LT(r.value(0.0, 1e6), 1.0);
  EXPECT_FALSE(r.active());
}

TEST(EvaluateStream, HugeImpactRatiosStayFiniteInLogSpace) {
  // One gigantic recent burst inflates Avg by ~11 orders of magnitude, so
  // every other period's ratio collapses toward 0 and the literal product
  // spans hundreds of orders of magnitude. The log-space representation
  // must stay finite and keep the ordering (a plain double product would
  // underflow to 0 here).
  std::vector<Activity> acts;
  acts.push_back(at_days_ago(kT0, 395, 1.0));
  for (int i = 0; i < 39; ++i) {
    acts.push_back(at_days_ago(kT0, 385 - i * 10, 1.0));
  }
  acts.push_back(at_days_ago(kT0, 1, 1e12));
  const Rank r = evaluate_stream(acts, params_days(10, kT0));
  ASSERT_TRUE(r.has_data);
  EXPECT_FALSE(r.zero);
  EXPECT_TRUE(std::isfinite(static_cast<double>(r.log_phi)));
  // The historical-drag term dominates (Eq. 5 punishes the 40 starved
  // periods harder than it rewards the one huge one): inactive, but with a
  // finite log rank far below any plain-double representation.
  EXPECT_FALSE(r.active());
  EXPECT_LT(r.log_phi, -1000.0L);
  // The clamped linear view bottoms out at the requested floor.
  EXPECT_DOUBLE_EQ(r.value(1e-3, 1e12), 1e-3);

  // Ordering against an even more starved stream is still resolved.
  std::vector<Activity> worse = acts;
  worse.back().impact = 1e15;
  const Rank r2 = evaluate_stream(worse, params_days(10, kT0));
  EXPECT_LT(r2.log_phi, r.log_phi);
}

TEST(Evaluator, CombinesCategoriesPerEq6) {
  ActivityCatalog cat;
  const auto op_a = cat.add({"job", ActivityCategory::kOperation, 1.0});
  const auto op_b = cat.add({"login", ActivityCategory::kOperation, 1.0});
  cat.add({"pub", ActivityCategory::kOutcome, 1.0});

  ActivityStore store(1, cat.size());
  // op_a: steady over 2 periods (Phi = 1); op_b: single activity (Phi = 1);
  // oc: none.
  store.add(0, op_a, at_days_ago(kT0, 15, 2.0));
  store.add(0, op_a, at_days_ago(kT0, 5, 2.0));
  store.add(0, op_b, at_days_ago(kT0, 3, 1.0));
  store.sort_all();

  const Evaluator ev(cat, params_days(10, kT0));
  const UserActiveness ua = ev.evaluate_user(store, 0);
  EXPECT_TRUE(ua.op.active());
  EXPECT_NEAR(ua.op.value(), 1.0, 1e-9);
  EXPECT_FALSE(ua.oc.has_data);
  EXPECT_FALSE(ua.oc.active());
  EXPECT_FALSE(ua.fresh());
}

TEST(Evaluator, FreshUserHasNoData) {
  const auto cat = ActivityCatalog::paper_default();
  ActivityStore store(2, cat.size());
  const Evaluator ev(cat, params_days(30, kT0));
  const UserActiveness ua = ev.evaluate_user(store, 1);
  EXPECT_TRUE(ua.fresh());
  EXPECT_FALSE(ua.op.active());
  EXPECT_FALSE(ua.oc.active());
}

TEST(Evaluator, IgnoresActivitiesAfterNow) {
  const auto cat = ActivityCatalog::paper_default();
  ActivityStore store(1, cat.size());
  // Only activity is in the future relative to the evaluation instant.
  store.add(0, 0, Activity{kT0 + util::days(5), 10.0});
  store.sort_all();
  const Evaluator ev(cat, params_days(10, kT0));
  const UserActiveness ua = ev.evaluate_user(store, 0);
  EXPECT_FALSE(ua.op.has_data);  // trimmed to nothing
}

TEST(Evaluator, EvaluateAllCoversEveryUser) {
  const auto cat = ActivityCatalog::paper_default();
  ActivityStore store(50, cat.size());
  for (trace::UserId u = 0; u < 50; ++u) {
    if (u % 2 == 0) store.add(u, 0, at_days_ago(kT0, 5, 1.0));
  }
  store.sort_all();
  const Evaluator ev(cat, params_days(10, kT0));
  const auto all = ev.evaluate_all(store);
  ASSERT_EQ(all.size(), 50u);
  for (trace::UserId u = 0; u < 50; ++u) {
    EXPECT_EQ(all[u].user, u);
    EXPECT_EQ(all[u].op.has_data, u % 2 == 0);
  }
}

// Property sweep: for every period length, a steady activity stream is
// active and rank exactly 1; doubling recent impact makes it > 1.
class PeriodSweep : public ::testing::TestWithParam<int> {};

TEST_P(PeriodSweep, SteadyUnitAndRisingAboveUnit) {
  const int d = GetParam();
  const auto p = params_days(d, kT0);
  const Rank s = evaluate_stream(dense_steady(kT0, 6, d), p);
  EXPECT_TRUE(s.active());
  EXPECT_NEAR(static_cast<double>(s.log_phi), 0.0, 1e-9);
  // Doubling the newest period's impact lifts the rank above unity.
  const Rank r = evaluate_stream(dense_steady(kT0, 6, d, 2.0), p);
  EXPECT_GT(r.log_phi, s.log_phi);
  EXPECT_TRUE(r.active());
}

INSTANTIATE_TEST_SUITE_P(PaperPeriods, PeriodSweep,
                         ::testing::Values(7, 30, 60, 90));

}  // namespace
}  // namespace adr::activeness
