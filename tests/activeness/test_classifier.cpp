#include "activeness/classifier.hpp"

#include <gtest/gtest.h>

namespace adr::activeness {
namespace {

UserActiveness ua(trace::UserId user, double op, double oc) {
  UserActiveness u;
  u.user = user;
  u.op = Rank::from_value(op);
  u.oc = Rank::from_value(oc);
  return u;
}

TEST(Classify, FourQuadrants) {
  EXPECT_EQ(classify(ua(0, 2.0, 3.0)), UserGroup::kBothActive);
  EXPECT_EQ(classify(ua(0, 2.0, 0.5)), UserGroup::kOperationActiveOnly);
  EXPECT_EQ(classify(ua(0, 0.5, 2.0)), UserGroup::kOutcomeActiveOnly);
  EXPECT_EQ(classify(ua(0, 0.5, 0.5)), UserGroup::kBothInactive);
}

TEST(Classify, ThresholdIsExactlyOne) {
  EXPECT_EQ(classify(ua(0, 1.0, 1.0)), UserGroup::kBothActive);
  EXPECT_EQ(classify(ua(0, 0.999999, 1.0)), UserGroup::kOutcomeActiveOnly);
}

TEST(Classify, FreshUserIsBothInactive) {
  UserActiveness fresh;
  fresh.user = 3;
  EXPECT_TRUE(fresh.fresh());
  EXPECT_EQ(classify(fresh), UserGroup::kBothInactive);
}

TEST(Classify, ZeroRanksAreInactive) {
  EXPECT_EQ(classify(ua(0, 0.0, 0.0)), UserGroup::kBothInactive);
}

TEST(GroupName, AllNamed) {
  EXPECT_STREQ(group_name(UserGroup::kBothActive), "Both Active");
  EXPECT_STREQ(group_name(UserGroup::kBothInactive), "Both Inactive");
  EXPECT_STREQ(group_name(UserGroup::kOperationActiveOnly),
               "Operation Active Only");
  EXPECT_STREQ(group_name(UserGroup::kOutcomeActiveOnly),
               "Outcome Active Only");
}

TEST(ScanOrder, AscendingActiveness) {
  EXPECT_EQ(kScanOrder[0], UserGroup::kBothInactive);
  EXPECT_EQ(kScanOrder[1], UserGroup::kOutcomeActiveOnly);
  EXPECT_EQ(kScanOrder[2], UserGroup::kOperationActiveOnly);
  EXPECT_EQ(kScanOrder[3], UserGroup::kBothActive);
}

TEST(ScanPlan, BucketsAndCounts) {
  const std::vector<UserActiveness> users{
      ua(0, 2, 2), ua(1, 2, 0.5), ua(2, 0.5, 2), ua(3, 0.1, 0.1),
      ua(4, 0.2, 0.2),
  };
  const ScanPlan plan = build_scan_plan(users);
  EXPECT_EQ(plan.group(UserGroup::kBothActive).size(), 1u);
  EXPECT_EQ(plan.group(UserGroup::kOperationActiveOnly).size(), 1u);
  EXPECT_EQ(plan.group(UserGroup::kOutcomeActiveOnly).size(), 1u);
  EXPECT_EQ(plan.group(UserGroup::kBothInactive).size(), 2u);
  EXPECT_EQ(plan.total_users(), 5u);
}

TEST(ScanPlan, BothInactiveSortedByOpThenOc) {
  const std::vector<UserActiveness> users{
      ua(0, 0.5, 0.1), ua(1, 0.2, 0.9), ua(2, 0.2, 0.3),
  };
  const ScanPlan plan = build_scan_plan(users);
  const auto& g = plan.group(UserGroup::kBothInactive);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0].user, 2u);  // op 0.2, oc 0.3
  EXPECT_EQ(g[1].user, 1u);  // op 0.2, oc 0.9
  EXPECT_EQ(g[2].user, 0u);  // op 0.5
}

TEST(ScanPlan, OperationActiveSortedByOutcomeFirst) {
  // §3.4: the operation-active groups are visited in ascending *outcome*
  // activeness.
  const std::vector<UserActiveness> users{
      ua(0, 9.0, 0.8), ua(1, 2.0, 0.1), ua(2, 5.0, 0.5),
  };
  const ScanPlan plan = build_scan_plan(users);
  const auto& g = plan.group(UserGroup::kOperationActiveOnly);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0].user, 1u);
  EXPECT_EQ(g[1].user, 2u);
  EXPECT_EQ(g[2].user, 0u);
}

TEST(ScanPlan, TiesBrokenByUserId) {
  const std::vector<UserActiveness> users{
      ua(5, 0.5, 0.5), ua(1, 0.5, 0.5), ua(3, 0.5, 0.5),
  };
  const ScanPlan plan = build_scan_plan(users);
  const auto& g = plan.group(UserGroup::kBothInactive);
  EXPECT_EQ(g[0].user, 1u);
  EXPECT_EQ(g[1].user, 3u);
  EXPECT_EQ(g[2].user, 5u);
}

TEST(LifetimeMultiplier, ActiveCategoriesOnlyMode) {
  const auto mode = LifetimeMode::kActiveCategoriesOnly;
  // Both active: product of both ranks.
  EXPECT_NEAR(lifetime_multiplier(ua(0, 2.0, 3.0), mode), 6.0, 1e-9);
  // Inactive categories contribute a neutral 1.0.
  EXPECT_NEAR(lifetime_multiplier(ua(0, 2.0, 0.2), mode), 2.0, 1e-9);
  EXPECT_NEAR(lifetime_multiplier(ua(0, 0.0, 5.0), mode), 5.0, 1e-9);
  // Both inactive: the initial lifetime (multiplier 1).
  EXPECT_NEAR(lifetime_multiplier(ua(0, 0.3, 0.0), mode), 1.0, 1e-9);
}

TEST(LifetimeMultiplier, LiteralEq7Mode) {
  const auto mode = LifetimeMode::kLiteralEq7;
  EXPECT_NEAR(lifetime_multiplier(ua(0, 2.0, 3.0), mode), 6.0, 1e-9);
  // Sub-unit ranks shrink the lifetime.
  EXPECT_NEAR(lifetime_multiplier(ua(0, 2.0, 0.2), mode), 0.4, 1e-9);
  // Zero ranks bottom out at the floor.
  EXPECT_NEAR(lifetime_multiplier(ua(0, 0.0, 0.0), mode, 1e-3, 1e6), 1e-3,
              1e-12);
}

TEST(LifetimeMultiplier, FreshUserGetsInitialLifetimeInBothModes) {
  UserActiveness fresh;
  fresh.user = 0;
  for (auto mode :
       {LifetimeMode::kActiveCategoriesOnly, LifetimeMode::kLiteralEq7}) {
    EXPECT_NEAR(lifetime_multiplier(fresh, mode), 1.0, 1e-9);
  }
}

TEST(LifetimeMultiplier, ClampedToMax) {
  EXPECT_NEAR(lifetime_multiplier(ua(0, 1e9, 1e9),
                                  LifetimeMode::kActiveCategoriesOnly, 1e-3,
                                  1e6),
              1e6, 1e-3);
}

}  // namespace
}  // namespace adr::activeness
