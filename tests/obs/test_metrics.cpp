#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/span.hpp"

namespace adr::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketBoundsAreMonotonic) {
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_LT(Histogram::bucket_bound(i), Histogram::bucket_bound(i + 1));
  }
  EXPECT_TRUE(std::isinf(Histogram::bucket_bound(Histogram::kBuckets - 1)));
}

TEST(Histogram, ObserveFillsCountSumMax) {
  Histogram h;
  h.observe(0.001);
  h.observe(0.002);
  h.observe(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_NEAR(h.sum_seconds(), 0.503, 1e-6);
  EXPECT_NEAR(h.max_seconds(), 0.5, 1e-6);
}

TEST(Histogram, ObservationsLandInTheRightBucket) {
  Histogram h;
  h.observe(0.5e-6);  // 0.5us -> bucket 0 (le 1us)
  h.observe(2.0);     // 2s -> first bucket with bound >= 2s
  h.observe(1e6);     // way past the largest bound -> overflow bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
  std::size_t two_s_bucket = Histogram::kBuckets - 1;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (Histogram::bucket_bound(i) >= 2.0) {
      two_s_bucket = i;
      break;
    }
  }
  EXPECT_EQ(h.bucket_count(two_s_bucket), 1u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    total += h.bucket_count(i);
  }
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, NegativeAndNanClampToZero) {
  Histogram h;
  h.observe(-1.0);
  h.observe(std::nan(""));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 0.0);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileSingleBucketStaysInsideItsBounds) {
  Histogram h;
  // 100 observations of 2ms, all in the (1.024ms, 4.096ms] bucket.
  for (int i = 0; i < 100; ++i) h.observe(0.002);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GT(v, 0.001024) << "q=" << q;
    EXPECT_LE(v, 0.002) << "q=" << q;  // clamped at the observed maximum
  }
  // Log-linear interpolation moves with q inside the bucket.
  EXPECT_LT(h.quantile(0.1), h.quantile(0.9));
}

TEST(Histogram, QuantileUsesMaxAsOverflowAnchor) {
  Histogram h;
  h.observe(1e-6);
  for (int i = 0; i < 99; ++i) h.observe(500.0);  // overflow bucket (> 268s)
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p99, Histogram::bucket_bound(Histogram::kBuckets - 2));
  EXPECT_LE(p99, 500.0);
  EXPECT_NEAR(h.quantile(1.0), 500.0, 1e-6);
}

TEST(Histogram, QuantileIsMonotoneInQ) {
  Histogram h;
  // A spread that touches many buckets including both edge buckets.
  for (int i = 0; i < 1000; ++i) {
    h.observe(1e-7 * static_cast<double>((i * 37) % 1000 + 1) *
              static_cast<double>(1 + i % 13) * 100.0);
  }
  h.observe(400.0);  // one overflow observation
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.001) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(prev, h.max_seconds());
}

TEST(Histogram, QuantileMatchesExactRankAcrossBucketBoundary) {
  Histogram h;
  // 50 fast (bucket 0: <= 1us) + 50 slow (~2s bucket): the median must sit
  // at the bucket boundary region, p25 in the fast bucket, p75 in the slow.
  for (int i = 0; i < 50; ++i) h.observe(5e-7);
  for (int i = 0; i < 50; ++i) h.observe(2.0);
  EXPECT_LE(h.quantile(0.25), 1e-6);
  EXPECT_GT(h.quantile(0.75), 1.0);
}

TEST(Registry, SameNameYieldsSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&reg.counter("y"), &a);
  // Value histograms and span histograms are separate namespaces.
  EXPECT_NE(&reg.histogram("t"), &reg.span_histogram("t"));
}

TEST(Registry, ResetZeroesInPlaceAndKeepsReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(-2);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&reg.counter("c"), &c);  // reference stability across reset
  c.add();
  EXPECT_EQ(reg.snapshot().counters.at("c"), 1u);
}

TEST(Registry, SnapshotReflectsAllSections) {
  MetricsRegistry reg;
  reg.counter("a.count").add(3);
  reg.gauge("a.level").set(-7);
  reg.histogram("a.size").observe(2.0);
  reg.span_histogram("a.phase").observe(0.25);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 3u);
  EXPECT_EQ(snap.gauges.at("a.level"), -7);
  EXPECT_EQ(snap.histograms.at("a.size").count, 1u);
  EXPECT_NEAR(snap.spans.at("a.phase").sum_seconds, 0.25, 1e-6);
}

TEST(Registry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hot");
  Histogram& h = reg.histogram("lat");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(1e-6);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

// Minimal structural JSON check: balanced braces/brackets outside strings,
// and the expected section keys present. (No JSON parser in the toolchain —
// the CLI test drives a real consumer.)
void expect_balanced_json(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
      continue;
    }
    if (ch == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Registry, ToJsonHasAllSectionsAndBalances) {
  MetricsRegistry reg;
  reg.counter("vfs.creates").add(2);
  reg.gauge("pool.depth").set(1);
  reg.span_histogram("policy.scan").observe(0.125);
  const std::string json = reg.to_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"vfs.creates\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"policy.scan\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
  // Quantiles and the shared bucket layout ride along with every export.
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket_bounds\""), std::string::npos);
}

TEST(Registry, ToJsonEscapesAwkwardNames) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\with\nstuff").add(1);
  const std::string json = reg.to_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nstuff"), std::string::npos);
}

TEST(TimerSpan, RecordsIntoSpanHistogram) {
  MetricsRegistry reg;
  {
    TimerSpan span(reg, "unit.phase");
    EXPECT_GE(span.elapsed_seconds(), 0.0);
  }
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.spans.at("unit.phase").count, 1u);
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(TimerSpan, StopIsIdempotent) {
  MetricsRegistry reg;
  TimerSpan span(reg, "unit.once");
  const double first = span.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(span.stop(), first);  // reports elapsed but records nothing
  EXPECT_EQ(reg.snapshot().spans.at("unit.once").count, 1u);
}

TEST(TimerSpan, StackTracksNesting) {
  MetricsRegistry reg;
  EXPECT_EQ(TimerSpan::current_path(), "");
  {
    TimerSpan outer(reg, "policy.run");
    EXPECT_EQ(TimerSpan::current_path(), "policy.run");
    {
      TimerSpan inner(reg, "policy.scan");
      EXPECT_EQ(TimerSpan::current_path(), "policy.run/policy.scan");
      const auto stack = TimerSpan::current_stack();
      ASSERT_EQ(stack.size(), 2u);
      EXPECT_EQ(stack[0], "policy.run");
      EXPECT_EQ(stack[1], "policy.scan");
    }
    EXPECT_EQ(TimerSpan::current_path(), "policy.run");
  }
  EXPECT_EQ(TimerSpan::current_path(), "");
}

TEST(TimerSpan, StackIsPerThread) {
  MetricsRegistry reg;
  TimerSpan outer(reg, "main.phase");
  std::string other_thread_path = "unset";
  std::thread t([&] { other_thread_path = TimerSpan::current_path(); });
  t.join();
  EXPECT_EQ(other_thread_path, "");  // sibling thread sees no open spans
  EXPECT_EQ(TimerSpan::current_path(), "main.phase");
}

}  // namespace
}  // namespace adr::obs
