#include "sched/batch_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "synth/job_synth.hpp"
#include "util/rng.hpp"

namespace adr::sched {
namespace {

trace::JobRecord job(std::uint64_t id, util::TimePoint submit,
                     std::int64_t duration, std::int32_t cores,
                     trace::UserId user = 0) {
  trace::JobRecord j;
  j.job_id = id;
  j.user = user;
  j.submit_time = submit;
  j.duration_seconds = duration;
  j.cores = cores;
  return j;
}

SchedulerConfig tiny(std::int64_t nodes) {
  SchedulerConfig c;
  c.nodes = nodes;
  c.cores_per_node = 16;
  c.failure_rate = 0.0;
  return c;
}

TEST(Scheduler, EmptyInput) {
  const auto result = schedule(std::vector<trace::JobRecord>{}, tiny(4));
  EXPECT_TRUE(result.empty());
  const auto stats = summarize(result, tiny(4));
  EXPECT_EQ(stats.jobs, 0u);
}

TEST(Scheduler, SingleJobStartsImmediately) {
  const auto result = schedule({job(1, 1000, 600, 16)}, tiny(4));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].start_time, 1000);
  EXPECT_EQ(result[0].end_time, 1600);
  EXPECT_EQ(result[0].nodes, 1);
  EXPECT_EQ(result[0].wait(), 0);
  EXPECT_TRUE(result[0].completed);
}

TEST(Scheduler, CoreToNodeConversionCeils) {
  const auto result = schedule({job(1, 0, 60, 17)}, tiny(4));
  EXPECT_EQ(result[0].nodes, 2);  // 17 cores / 16 per node -> 2 nodes
}

TEST(Scheduler, OversizedRequestClampedToMachine) {
  const auto result = schedule({job(1, 0, 60, 16 * 100)}, tiny(4));
  EXPECT_EQ(result[0].nodes, 4);
  EXPECT_EQ(result[0].start_time, 0);
}

TEST(Scheduler, FcfsQueuesWhenFull) {
  // Machine of 2 nodes; two 2-node jobs -> strictly sequential.
  const auto result = schedule(
      {job(1, 0, 100, 32), job(2, 10, 100, 32)}, tiny(2));
  EXPECT_EQ(result[0].start_time, 0);
  EXPECT_EQ(result[1].start_time, 100);  // waits for job 1
  EXPECT_EQ(result[1].wait(), 90);
}

TEST(Scheduler, BackfillFillsHoleWithoutDelayingHead) {
  // 4 nodes. j1 takes 3 for 1000s, leaving a 1-node hole. j2 (the blocked
  // head) wants all 4, reserved for t=1000. j3 wants 1 node for 100s: it
  // fits the hole now and its padded walltime (150s) ends before the
  // reservation -> backfill.
  SchedulerConfig c = tiny(4);
  const auto result = schedule(
      {job(1, 0, 1000, 48), job(2, 10, 500, 64), job(3, 20, 100, 16)}, c);
  EXPECT_EQ(result[0].start_time, 0);
  EXPECT_EQ(result[2].start_time, 20) << "backfill should start j3 at once";
  EXPECT_TRUE(result[2].backfilled);
  EXPECT_EQ(result[1].start_time, 1000) << "head must not be delayed";
  EXPECT_FALSE(result[1].backfilled);
}

TEST(Scheduler, BackfillNeverDelaysReservedHead) {
  // j3's padded walltime would overrun the head's shadow start and it
  // needs more nodes than the shadow spare -> must NOT backfill.
  SchedulerConfig c = tiny(4);
  const auto result = schedule(
      {job(1, 0, 1000, 64), job(2, 10, 500, 64), job(3, 20, 900, 16)}, c);
  // shadow = 1000, spare = 0; j3 padded ends at 20+1350 > 1000.
  EXPECT_EQ(result[2].start_time, 1500)
      << "j3 must wait for the head to start and finish its slice";
  EXPECT_FALSE(result[2].backfilled);
}

TEST(Scheduler, SpareNodeBackfillAllowed) {
  // Head needs 3 of 4 nodes; a long 1-node job may still backfill because
  // even at the head's shadow start there is a spare node for it.
  SchedulerConfig c = tiny(4);
  const auto result = schedule(
      {job(1, 0, 1000, 64),          // all 4 nodes
       job(2, 10, 500, 48),          // 3 nodes: head, shadow t=1000
       job(3, 20, 5000, 16)},        // 1 node, very long
      c);
  EXPECT_EQ(result[2].start_time, 1000)
      << "no free nodes until t=1000; then j3 fits the spare node";
  // At t=1000: 4 free; head j2 takes 3; j3 fits the spare immediately.
  EXPECT_EQ(result[1].start_time, 1000);
}

TEST(Scheduler, RejectsUnsortedInput) {
  EXPECT_THROW(
      schedule({job(1, 100, 10, 1), job(2, 50, 10, 1)}, tiny(2)),
      std::invalid_argument);
}

TEST(Scheduler, RejectsBadConfig) {
  SchedulerConfig c = tiny(0);
  EXPECT_THROW(schedule({job(1, 0, 10, 1)}, c), std::invalid_argument);
}

TEST(Scheduler, FailureModelDeterministicAndBounded) {
  std::vector<trace::JobRecord> jobs;
  for (int i = 0; i < 2000; ++i) {
    jobs.push_back(job(static_cast<std::uint64_t>(i), i * 10, 3600, 16));
  }
  SchedulerConfig c = tiny(1024);
  c.failure_rate = 0.2;
  const auto a = schedule(jobs, c);
  const auto b = schedule(jobs, c);
  std::size_t failed = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].end_time, b[i].end_time);
    if (!a[i].completed) {
      ++failed;
      EXPECT_LT(a[i].runtime(), 3600);
      EXPECT_GE(a[i].runtime(), 1);
    } else {
      EXPECT_EQ(a[i].runtime(), 3600);
    }
  }
  EXPECT_NEAR(static_cast<double>(failed), 400.0, 120.0);
}

TEST(Scheduler, ConservationOfNodes) {
  // Sweep a random stream and verify that at no event do concurrent jobs
  // exceed the machine size.
  util::Rng rng(3);
  std::vector<trace::JobRecord> jobs;
  util::TimePoint t = 0;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<util::TimePoint>(rng.uniform_int(0, 600));
    jobs.push_back(job(static_cast<std::uint64_t>(i), t,
                       rng.uniform_int(60, 7200),
                       static_cast<std::int32_t>(rng.uniform_int(1, 256))));
  }
  SchedulerConfig c = tiny(8);
  const auto result = schedule(jobs, c);

  std::map<util::TimePoint, std::int64_t> delta;
  for (const auto& s : result) {
    delta[s.start_time] += s.nodes;
    delta[s.end_time] -= s.nodes;
  }
  std::int64_t in_use = 0;
  for (const auto& [when, d] : delta) {
    in_use += d;
    EXPECT_LE(in_use, c.nodes) << "over-subscribed at t=" << when;
    EXPECT_GE(in_use, 0);
  }
}

TEST(Scheduler, NoJobStartsBeforeSubmission) {
  util::Rng rng(4);
  std::vector<trace::JobRecord> jobs;
  util::TimePoint t = 0;
  for (int i = 0; i < 300; ++i) {
    t += static_cast<util::TimePoint>(rng.uniform_int(1, 300));
    jobs.push_back(job(static_cast<std::uint64_t>(i), t,
                       rng.uniform_int(60, 3600), 16));
  }
  const auto result = schedule(jobs, tiny(4));
  for (const auto& s : result) {
    EXPECT_GE(s.start_time, s.submit_time);
    EXPECT_GT(s.end_time, s.start_time);
  }
}

TEST(Scheduler, SummarizeStats) {
  SchedulerConfig c = tiny(2);
  const auto result = schedule(
      {job(1, 0, 100, 32), job(2, 0, 100, 32)}, c);
  const auto stats = summarize(result, c);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_DOUBLE_EQ(stats.max_wait_seconds, 100.0);
  EXPECT_DOUBLE_EQ(stats.mean_wait_seconds, 50.0);
  // 2 jobs x 2 nodes x 100 s over a 200 s span on 2 nodes = 100%.
  EXPECT_NEAR(stats.utilization, 1.0, 1e-9);
}

TEST(Scheduler, SyntheticStreamUtilizationSane) {
  // A realistic synthetic user stream through a small machine.
  util::Rng rng(5);
  synth::UserProfile prof;
  prof.user = 0;
  prof.job_rate_per_day = 2.0;
  prof.episode_days_mean = 200;
  prof.gap_days_mean = 2;
  prof.gap_days_sigma = 0.2;
  auto jobs = synth::synthesize_user_jobs(prof, 0, util::days(120), rng);
  trace::JobLog log;
  for (auto& j : jobs) log.add(std::move(j));
  log.sort_by_time();
  SchedulerConfig c = tiny(64);
  const auto result = schedule(log, c);
  const auto stats = summarize(result, c);
  EXPECT_EQ(stats.jobs, result.size());
  EXPECT_GT(stats.utilization, 0.0);
  EXPECT_LE(stats.utilization, 1.0 + 1e-9);
}

}  // namespace
}  // namespace adr::sched
