#include "fs/striping.hpp"

#include <gtest/gtest.h>

namespace adr::fs {
namespace {

TEST(Striping, BandsAreContiguousAndOrdered) {
  std::size_t n = 0;
  const StripeBand* bands = stripe_bands(&n);
  ASSERT_GE(n, 3u);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(bands[i].min_bytes, bands[i - 1].max_bytes);
    EXPECT_GT(bands[i].max_stripes, bands[i - 1].max_stripes);
  }
}

TEST(Striping, BandForStripes) {
  EXPECT_EQ(band_for_stripes(1).max_stripes, 1);
  EXPECT_EQ(band_for_stripes(3).max_stripes, 4);
  EXPECT_EQ(band_for_stripes(16).max_stripes, 16);
  EXPECT_EQ(band_for_stripes(17).max_stripes, 64);
  // Beyond the table clamps to the widest band.
  EXPECT_EQ(band_for_stripes(100000).max_stripes, 1024);
}

TEST(Striping, SynthesizedSizeWithinBand) {
  util::Rng rng(1);
  for (std::int32_t stripes : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const StripeBand band = band_for_stripes(stripes);
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t size = synthesize_size(stripes, rng);
      EXPECT_GE(size, band.min_bytes) << "stripes=" << stripes;
      EXPECT_LE(size, band.max_bytes) << "stripes=" << stripes;
    }
  }
}

TEST(Striping, SampleStripeCountSkewsToOne) {
  util::Rng rng(2);
  int singles = 0;
  const int n = 20000;
  std::int32_t widest = 0;
  for (int i = 0; i < n; ++i) {
    const std::int32_t s = sample_stripe_count(rng);
    EXPECT_GE(s, 1);
    if (s == 1) ++singles;
    widest = std::max(widest, s);
  }
  // ~85% single stripe, with a wide tail present.
  EXPECT_NEAR(singles, static_cast<int>(n * 0.85), n / 20);
  EXPECT_GT(widest, 16);
}

TEST(Striping, RecommendationInvertsBands) {
  // A size synthesized for stripe count s should be assigned a
  // recommendation whose band contains it.
  util::Rng rng(3);
  for (std::int32_t stripes : {1, 4, 16, 64}) {
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t size = synthesize_size(stripes, rng);
      EXPECT_EQ(recommended_stripes(size), band_for_stripes(stripes).max_stripes);
    }
  }
}

}  // namespace
}  // namespace adr::fs
