#include "fs/purge_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fs/vfs.hpp"
#include "util/rng.hpp"

namespace adr::fs {
namespace {

FileMeta meta(trace::UserId owner, std::uint64_t size,
              util::TimePoint atime = 0) {
  FileMeta m;
  m.owner = owner;
  m.size_bytes = size;
  m.atime = atime;
  m.ctime = atime;
  return m;
}

// -- PurgeIndex unit tests ---------------------------------------------------

FileMeta indexed(PurgeIndex& index, const std::string& path,
                 trace::UserId owner, std::uint64_t size,
                 util::TimePoint atime) {
  FileMeta m = meta(owner, size, atime);
  m.path_id = index.intern(path);
  index.add(m);
  return m;
}

TEST(PurgeIndex, EntriesOrderedByAtimeThenId) {
  PurgeIndex index;
  indexed(index, "/s/u0/b", 0, 1, 300);
  indexed(index, "/s/u0/a", 0, 1, 100);
  const FileMeta tie1 = indexed(index, "/s/u0/c", 0, 1, 200);
  const FileMeta tie2 = indexed(index, "/s/u0/d", 0, 1, 200);

  const auto set = index.entries(0);
  ASSERT_EQ(set.size(), 4u);
  std::vector<util::TimePoint> atimes;
  for (const auto& e : set) atimes.push_back(e.atime);
  EXPECT_EQ(atimes, (std::vector<util::TimePoint>{100, 200, 200, 300}));
  // Equal atimes break ties by ascending path id (deterministic order).
  EXPECT_EQ(set[1].id, std::min(tie1.path_id, tie2.path_id));
}

TEST(PurgeIndex, CollectExpiredIsStrictPrefix) {
  PurgeIndex index;
  indexed(index, "/s/u0/a", 0, 1, 100);
  indexed(index, "/s/u0/b", 0, 1, 200);
  indexed(index, "/s/u0/c", 0, 1, 300);

  std::vector<PurgeIndex::Entry> out;
  index.collect_expired(0, 200, out);  // strict: atime < 200
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].atime, 100);
  EXPECT_EQ(index.path(out[0].id), "/s/u0/a");

  out.clear();
  index.collect_expired(7, 1000, out);  // unknown owner
  EXPECT_TRUE(out.empty());
}

TEST(PurgeIndex, CollectExpiredAllGloballySorted) {
  PurgeIndex index;
  indexed(index, "/s/u1/x", 1, 1, 250);
  indexed(index, "/s/u0/y", 0, 1, 150);
  indexed(index, "/s/u2/z", 2, 1, 50);

  const auto all = index.collect_expired_all(300);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].owner, 2u);
  EXPECT_EQ(all[1].owner, 0u);
  EXPECT_EQ(all[2].owner, 1u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const auto& a, const auto& b) {
                               return a.entry.atime < b.entry.atime;
                             }));
}

TEST(PurgeIndex, TouchRekeysEntry) {
  PurgeIndex index;
  const FileMeta a = indexed(index, "/s/u0/a", 0, 1, 100);
  indexed(index, "/s/u0/b", 0, 1, 200);

  index.touch(a, 500);  // /a moves from front to back
  const auto set = index.entries(0);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.front().atime, 200);
  EXPECT_EQ(set.back().atime, 500);
  EXPECT_EQ(set.back().id, a.path_id);
}

TEST(PurgeIndex, UpdateMovesEntryAcrossOwners) {
  PurgeIndex index;
  const FileMeta before = indexed(index, "/s/shared/f", 0, 10, 100);
  FileMeta after = before;
  after.owner = 1;
  after.size_bytes = 20;
  after.atime = 400;
  index.update(before, after);

  EXPECT_FALSE(index.has_entries(0));  // old owner emptied out
  EXPECT_TRUE(index.entries(0).empty());
  const auto set = index.entries(1);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.front().size_bytes, 20u);
  EXPECT_EQ(set.front().atime, 400);
  EXPECT_TRUE(index.contains(after));
  EXPECT_FALSE(index.contains(before));
}

TEST(PurgeIndex, RemoveRecyclesIds) {
  PurgeIndex index;
  const FileMeta a = indexed(index, "/s/u0/a", 0, 1, 100);
  index.remove(a);
  EXPECT_EQ(index.entry_count(), 0u);
  // The released id must be handed back to the next intern.
  const PathId recycled = index.intern("/s/u0/b");
  EXPECT_EQ(recycled, a.path_id);
  EXPECT_EQ(index.path(recycled), "/s/u0/b");
}

TEST(PurgeIndex, ContainsDetectsMismatches) {
  PurgeIndex index;
  const FileMeta a = indexed(index, "/s/u0/a", 0, 10, 100);
  EXPECT_TRUE(index.contains(a));

  FileMeta wrong = a;
  wrong.size_bytes = 11;
  EXPECT_FALSE(index.contains(wrong));
  wrong = a;
  wrong.atime = 101;
  EXPECT_FALSE(index.contains(wrong));
  wrong = a;
  wrong.owner = 1;
  EXPECT_FALSE(index.contains(wrong));
  wrong = a;
  wrong.path_id = kInvalidPathId;
  EXPECT_FALSE(index.contains(wrong));
}

// Drive enough churn through one owner to cross the deferred-merge buffer
// caps many times, checking every query shape against a std::set reference.
TEST(PurgeIndex, RandomizedChurnMatchesSetReference) {
  struct RefOrder {
    bool operator()(const PurgeIndex::Entry& a,
                    const PurgeIndex::Entry& b) const {
      return PurgeIndex::EntryOrder{}(a, b);
    }
  };
  util::Rng rng(20260809);
  PurgeIndex index;
  std::set<PurgeIndex::Entry, RefOrder> ref[3];
  std::vector<FileMeta> live;

  for (int step = 0; step < 6000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (live.empty() || op < 5) {  // add
      const auto owner = static_cast<trace::UserId>(rng.uniform_int(0, 2));
      FileMeta m = meta(owner, static_cast<std::uint64_t>(
                                   rng.uniform_int(1, 1000)),
                        rng.uniform_int(0, 1'000'000));
      m.path_id = index.intern("/s/f" + std::to_string(step));
      index.add(m);
      ref[owner].insert({m.atime, m.path_id, m.size_bytes});
      live.push_back(m);
    } else if (op < 7) {  // touch
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, 1'000'000)) %
          live.size();
      FileMeta& m = live[pick];
      const util::TimePoint t = rng.uniform_int(0, 1'000'000);
      index.touch(m, t);
      ref[m.owner].erase({m.atime, m.path_id, 0});
      m.atime = t;
      ref[m.owner].insert({m.atime, m.path_id, m.size_bytes});
    } else {  // remove
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniform_int(0, 1'000'000)) %
          live.size();
      const FileMeta m = live[pick];
      index.remove(m);
      ref[m.owner].erase({m.atime, m.path_id, 0});
      live[pick] = live.back();
      live.pop_back();
    }

    if (step % 251 != 0) continue;
    std::size_t total = 0;
    for (trace::UserId owner = 0; owner < 3; ++owner) {
      const std::vector<PurgeIndex::Entry> expect(ref[owner].begin(),
                                                  ref[owner].end());
      const auto got = index.entries(owner);
      ASSERT_EQ(got.size(), expect.size()) << "step " << step;
      for (std::size_t k = 0; k < got.size(); ++k) {
        EXPECT_EQ(got[k].atime, expect[k].atime);
        EXPECT_EQ(got[k].id, expect[k].id);
        EXPECT_EQ(got[k].size_bytes, expect[k].size_bytes);
      }
      EXPECT_EQ(index.has_entries(owner), !expect.empty());
      std::vector<PurgeIndex::Entry> expired;
      index.collect_expired(owner, 500'000, expired);
      std::size_t want = 0;
      while (want < expect.size() && expect[want].atime < 500'000) ++want;
      EXPECT_EQ(expired.size(), want) << "step " << step;
      total += expect.size();
    }
    EXPECT_EQ(index.entry_count(), total);
    EXPECT_EQ(index.owner_count(),
              static_cast<std::size_t>(!ref[0].empty()) +
                  static_cast<std::size_t>(!ref[1].empty()) +
                  static_cast<std::size_t>(!ref[2].empty()));
  }
}

// -- Vfs maintenance integration --------------------------------------------

TEST(VfsPurgeIndex, CreateAccessRemoveKeepIndexConsistent) {
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 100, 10));
  vfs.create("/s/u0/b", meta(0, 50, 20));
  vfs.create("/s/u1/c", meta(1, 25, 30));
  EXPECT_EQ(vfs.purge_index().entry_count(), 3u);
  EXPECT_TRUE(vfs.verify_purge_index());

  vfs.access("/s/u0/a", 500);
  EXPECT_TRUE(vfs.verify_purge_index());
  const auto set = vfs.purge_index().entries(0);
  ASSERT_FALSE(set.empty());
  EXPECT_EQ(set.back().atime, 500);

  vfs.remove("/s/u0/b");
  EXPECT_EQ(vfs.purge_index().entry_count(), 2u);
  EXPECT_TRUE(vfs.verify_purge_index());

  vfs.clear();
  EXPECT_EQ(vfs.purge_index().entry_count(), 0u);
  EXPECT_TRUE(vfs.verify_purge_index());
}

TEST(VfsPurgeIndex, OverwritePreservesIdAndReindexes) {
  Vfs vfs;
  // Overwrites must route the displaced version through the removal sink
  // while the index keeps exactly one entry under the same interned id.
  std::vector<std::string> displaced;
  vfs.set_removal_sink([&](const std::string& path, const FileMeta&) {
    displaced.push_back(path);
  });
  vfs.create("/s/shared/f", meta(0, 100, 10));
  const PathId original_id = vfs.stat("/s/shared/f")->path_id;
  vfs.create("/s/shared/f", meta(1, 40, 99));  // owner + size + atime change

  EXPECT_EQ(displaced, std::vector<std::string>{"/s/shared/f"});
  EXPECT_EQ(vfs.stat("/s/shared/f")->path_id, original_id);
  EXPECT_EQ(vfs.purge_index().entry_count(), 1u);
  EXPECT_FALSE(vfs.purge_index().has_entries(0));
  EXPECT_TRUE(vfs.purge_index().has_entries(1));
  EXPECT_TRUE(vfs.verify_purge_index());
}

TEST(VfsPurgeIndex, RemoveViaAliasedIndexPathIsSafe) {
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 100, 10));
  // Policies pass vfs.remove() a reference into the index's own interned
  // storage; the id release must not invalidate it mid-call.
  const std::string& interned =
      vfs.purge_index().path(vfs.stat("/s/u0/a")->path_id);
  EXPECT_TRUE(vfs.remove(interned));
  EXPECT_FALSE(vfs.exists("/s/u0/a"));
  EXPECT_TRUE(vfs.verify_purge_index());
}

TEST(VfsPurgeIndex, ImportSnapshotIndexesEverything) {
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 100, 10));
  vfs.create("/s/u1/b", meta(1, 50, 20));
  const trace::Snapshot snap = vfs.export_snapshot();

  Vfs fresh;
  fresh.import_snapshot(snap);
  EXPECT_EQ(fresh.purge_index().entry_count(), 2u);
  EXPECT_TRUE(fresh.verify_purge_index());
}

// -- Randomized property: the index always mirrors the trie ------------------

TEST(VfsPurgeIndex, RandomizedOpsStayConsistent) {
  util::Rng rng(20260807);
  Vfs vfs;
  vfs.set_removal_sink([](const std::string&, const FileMeta&) {});
  std::vector<std::string> paths;
  for (int i = 0; i < 64; ++i) {
    paths.push_back("/s/u" + std::to_string(i % 8) + "/f" + std::to_string(i));
  }

  for (int step = 0; step < 4000; ++step) {
    const std::string& path =
        paths[static_cast<std::size_t>(rng.uniform_int(0, 63))];
    const auto op = rng.uniform_int(0, 3);
    const auto t = rng.uniform_int(0, 1'000'000);
    if (op == 0 || op == 1) {
      // create or overwrite (owner may differ from the path's usual one)
      const auto owner = static_cast<trace::UserId>(rng.uniform_int(0, 9));
      vfs.create(path, meta(owner, static_cast<std::uint64_t>(
                                       rng.uniform_int(1, 1000)),
                            t));
    } else if (op == 2) {
      vfs.access(path, t);
    } else {
      vfs.remove(path);
    }
    if (step % 257 == 0) {
      std::string error;
      ASSERT_TRUE(vfs.verify_purge_index(&error)) << "step " << step << ": "
                                                  << error;
    }
  }
  std::string error;
  EXPECT_TRUE(vfs.verify_purge_index(&error)) << error;

  // Cross-check a range query against a brute-force walk.
  constexpr util::TimePoint kCutoff = 500'000;
  for (trace::UserId owner = 0; owner < 10; ++owner) {
    std::vector<std::string> walked;
    vfs.for_each([&](const std::string& path, const FileMeta& m) {
      if (m.owner == owner && m.atime < kCutoff) walked.push_back(path);
    });
    std::vector<PurgeIndex::Entry> collected;
    vfs.purge_index().collect_expired(owner, kCutoff, collected);
    std::vector<std::string> from_index;
    for (const auto& e : collected) {
      from_index.push_back(vfs.purge_index().path(e.id));
    }
    std::sort(walked.begin(), walked.end());
    std::sort(from_index.begin(), from_index.end());
    EXPECT_EQ(from_index, walked) << "owner " << owner;
  }
}

}  // namespace
}  // namespace adr::fs
