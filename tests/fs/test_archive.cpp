#include "fs/archive.hpp"

#include "fs/vfs.hpp"

#include <gtest/gtest.h>

namespace adr::fs {
namespace {

FileMeta meta(std::uint64_t size) {
  FileMeta m;
  m.size_bytes = size;
  m.owner = 1;
  return m;
}

TEST(Archive, ArchiveAndRestore) {
  ArchiveTier tier;
  tier.archive("/s/u1/a.dat", meta(1000));
  EXPECT_EQ(tier.size(), 1u);
  EXPECT_EQ(tier.stats().archived_bytes, 1000u);

  const FileMeta* restored = tier.restore("/s/u1/a.dat");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->size_bytes, 1000u);
  EXPECT_EQ(tier.stats().restore_count, 1u);
  EXPECT_EQ(tier.stats().restored_bytes, 1000u);
  EXPECT_GT(tier.stats().restore_hours, 0.0);
  // Restores are copies: the archive still holds the file.
  EXPECT_EQ(tier.size(), 1u);
}

TEST(Archive, RestoreMissCounted) {
  ArchiveTier tier;
  EXPECT_EQ(tier.restore("/never/archived"), nullptr);
  EXPECT_EQ(tier.stats().restore_misses, 1u);
  EXPECT_EQ(tier.stats().restore_count, 0u);
}

TEST(Archive, ReArchiveReplacesAccounting) {
  ArchiveTier tier;
  tier.archive("/s/a", meta(1000));
  tier.archive("/s/a", meta(4000));  // newer version
  EXPECT_EQ(tier.size(), 1u);
  EXPECT_EQ(tier.stats().archived_bytes, 4000u);
  EXPECT_EQ(tier.stats().archived_files, 1u);
  EXPECT_EQ(tier.restore("/s/a")->size_bytes, 4000u);
}

TEST(Archive, RestoreCostModel) {
  ArchiveConfig config;
  config.restore_bandwidth_bytes_per_s = 100.0;  // 100 B/s
  config.restore_latency_s = 50.0;
  ArchiveTier tier(config);
  tier.archive("/s/a", meta(1000));
  tier.restore("/s/a");
  // 50 s latency + 1000/100 = 10 s transfer = 60 s = 1/60 h.
  EXPECT_NEAR(tier.stats().restore_hours, 60.0 / 3600.0, 1e-9);
}

TEST(Archive, PeekHasNoCost) {
  ArchiveTier tier;
  tier.archive("/s/a", meta(10));
  EXPECT_NE(tier.peek("/s/a"), nullptr);
  EXPECT_EQ(tier.peek("/s/b"), nullptr);
  EXPECT_EQ(tier.stats().restore_count, 0u);
  EXPECT_EQ(tier.stats().restore_misses, 0u);
}

TEST(Archive, ClearResets) {
  ArchiveTier tier;
  tier.archive("/s/a", meta(10));
  tier.restore("/s/a");
  tier.clear();
  EXPECT_EQ(tier.size(), 0u);
  EXPECT_EQ(tier.stats().archived_bytes, 0u);
  EXPECT_EQ(tier.stats().restore_count, 0u);
}

TEST(Archive, VfsRemovalSinkFlow) {
  // The emulator wiring: every Vfs::remove lands in the archive.
  Vfs vfs;
  ArchiveTier tier;
  vfs.set_removal_sink([&tier](const std::string& path, const FileMeta& m) {
    tier.archive(path, m);
  });
  FileMeta m = meta(500);
  vfs.create("/s/u1/x", m);
  vfs.remove("/s/u1/x");
  EXPECT_EQ(tier.size(), 1u);
  ASSERT_NE(tier.peek("/s/u1/x"), nullptr);
  EXPECT_EQ(tier.peek("/s/u1/x")->size_bytes, 500u);

  // Overwrites displace the old version through the sink too, so the
  // archive tier never silently loses a byte.
  vfs.create("/s/u1/y", meta(1));
  vfs.create("/s/u1/y", meta(2));
  EXPECT_EQ(tier.size(), 2u);
  ASSERT_NE(tier.peek("/s/u1/y"), nullptr);
  EXPECT_EQ(tier.peek("/s/u1/y")->size_bytes, 1u);
}

}  // namespace
}  // namespace adr::fs
