#include "fs/vfs.hpp"

#include <gtest/gtest.h>

namespace adr::fs {
namespace {

FileMeta meta(trace::UserId owner, std::uint64_t size,
              util::TimePoint atime = 0) {
  FileMeta m;
  m.owner = owner;
  m.size_bytes = size;
  m.atime = atime;
  m.ctime = atime;
  return m;
}

TEST(Vfs, CreateAccountsTotals) {
  Vfs vfs;
  EXPECT_TRUE(vfs.create("/s/u0/a", meta(0, 100)));
  EXPECT_TRUE(vfs.create("/s/u0/b", meta(0, 50)));
  EXPECT_TRUE(vfs.create("/s/u1/c", meta(1, 25)));
  EXPECT_EQ(vfs.total_bytes(), 175u);
  EXPECT_EQ(vfs.file_count(), 3u);
  EXPECT_EQ(vfs.usage(0).bytes, 150u);
  EXPECT_EQ(vfs.usage(0).files, 2u);
  EXPECT_EQ(vfs.usage(1).bytes, 25u);
  EXPECT_EQ(vfs.usage(9).files, 0u);
}

TEST(Vfs, OverwriteAdjustsAccounting) {
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 100));
  EXPECT_FALSE(vfs.create("/s/u0/a", meta(0, 40)));
  EXPECT_EQ(vfs.total_bytes(), 40u);
  EXPECT_EQ(vfs.file_count(), 1u);
  EXPECT_EQ(vfs.usage(0).files, 1u);
}

TEST(Vfs, OverwriteCanChangeOwner) {
  Vfs vfs;
  vfs.create("/s/shared/a", meta(0, 100));
  vfs.create("/s/shared/a", meta(1, 100));
  EXPECT_EQ(vfs.usage(0).files, 0u);
  EXPECT_EQ(vfs.usage(1).files, 1u);
}

TEST(Vfs, AccessBumpsAtimeMonotonically) {
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 1, 100));
  EXPECT_TRUE(vfs.access("/s/u0/a", 500));
  EXPECT_EQ(vfs.stat("/s/u0/a")->atime, 500);
  // Late-arriving earlier access must not rewind atime.
  EXPECT_TRUE(vfs.access("/s/u0/a", 300));
  EXPECT_EQ(vfs.stat("/s/u0/a")->atime, 500);
}

TEST(Vfs, AccessMissingIsMiss) {
  Vfs vfs;
  EXPECT_FALSE(vfs.access("/s/u0/gone", 100));
}

TEST(Vfs, RemoveUpdatesAccounting) {
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 100));
  vfs.create("/s/u0/b", meta(0, 60));
  EXPECT_TRUE(vfs.remove("/s/u0/a"));
  EXPECT_FALSE(vfs.remove("/s/u0/a"));
  EXPECT_EQ(vfs.total_bytes(), 60u);
  EXPECT_EQ(vfs.usage(0).bytes, 60u);
  EXPECT_EQ(vfs.usage(0).files, 1u);
}

TEST(Vfs, CapacityDefaultsToTotal) {
  Vfs vfs;
  vfs.create("/a/b", meta(0, 500));
  EXPECT_EQ(vfs.capacity_bytes(), 500u);
  vfs.set_capacity_bytes(1000);
  EXPECT_EQ(vfs.capacity_bytes(), 1000u);
}

TEST(Vfs, SnapshotRoundTrip) {
  Vfs vfs;
  vfs.create("/s/u0/p/a.h5", meta(0, 100, 11));
  vfs.create("/s/u1/p/b.h5", meta(1, 200, 22));

  const trace::Snapshot snap = vfs.export_snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.total_bytes(), 300u);

  Vfs restored;
  restored.import_snapshot(snap);
  EXPECT_EQ(restored.total_bytes(), 300u);
  EXPECT_EQ(restored.file_count(), 2u);
  ASSERT_NE(restored.stat("/s/u1/p/b.h5"), nullptr);
  EXPECT_EQ(restored.stat("/s/u1/p/b.h5")->atime, 22);
  EXPECT_EQ(restored.stat("/s/u1/p/b.h5")->owner, 1u);
}

TEST(Vfs, ForEachUnderScopesToUser) {
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 1));
  vfs.create("/s/u0/b", meta(0, 1));
  vfs.create("/s/u1/c", meta(1, 1));
  int count = 0;
  vfs.for_each_under("/s/u0", [&](const std::string&, const FileMeta& m) {
    EXPECT_EQ(m.owner, 0u);
    ++count;
  });
  EXPECT_EQ(count, 2);
}

TEST(Vfs, OverwriteRoutesDisplacedVersionThroughRemovalSink) {
  // Regression: an overwriting create() must hand the old version to the
  // removal sink — otherwise the displaced bytes silently vanish instead of
  // reaching the archive tier.
  Vfs vfs;
  std::vector<std::pair<std::string, std::uint64_t>> displaced;
  vfs.set_removal_sink([&](const std::string& path, const FileMeta& m) {
    displaced.emplace_back(path, m.size_bytes);
  });
  vfs.create("/s/u0/a", meta(0, 100));
  EXPECT_TRUE(displaced.empty());  // fresh create displaces nothing
  vfs.create("/s/u0/a", meta(0, 40));
  ASSERT_EQ(displaced.size(), 1u);
  EXPECT_EQ(displaced[0].first, "/s/u0/a");
  EXPECT_EQ(displaced[0].second, 100u);  // old version, not the new one
  vfs.remove("/s/u0/a");
  ASSERT_EQ(displaced.size(), 2u);
  EXPECT_EQ(displaced[1].second, 40u);
}

TEST(Vfs, UsageEntryErasedWhenUserHasNoFilesLeft) {
  // Regression: per-user accounting entries must disappear when the last
  // file goes, so usage_by_user() iteration (final-state aggregation in the
  // emulator) does not see ghost users with zeroed rows.
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 10));
  vfs.create("/s/u1/b", meta(1, 20));
  EXPECT_EQ(vfs.usage_by_user().size(), 2u);
  vfs.remove("/s/u0/a");
  EXPECT_EQ(vfs.usage_by_user().count(0), 0u);
  EXPECT_EQ(vfs.usage_by_user().size(), 1u);
  // Owner change on overwrite releases the previous owner's entry too.
  vfs.create("/s/u1/b", meta(2, 20));
  EXPECT_EQ(vfs.usage_by_user().count(1), 0u);
  EXPECT_EQ(vfs.usage(2).files, 1u);
}

TEST(Vfs, ClearResetsEverything) {
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 10));
  vfs.set_capacity_bytes(999);
  vfs.clear();
  EXPECT_EQ(vfs.total_bytes(), 0u);
  EXPECT_EQ(vfs.file_count(), 0u);
  EXPECT_EQ(vfs.capacity_bytes(), 0u);
  EXPECT_EQ(vfs.usage(0).files, 0u);
}

}  // namespace
}  // namespace adr::fs
