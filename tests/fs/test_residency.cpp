// Tests for the Vfs residency layer (DESIGN.md §15): explicit evict/fault
// round-trips, budget-driven eviction of cold users, owner-hint faulting on
// access/remove/create, and the purge-index / snapshot guarantees that hold
// while subtrees are spilled.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fs/vfs.hpp"
#include "util/time.hpp"

namespace adr::fs {
namespace {

FileMeta meta(trace::UserId owner, std::uint64_t size, util::TimePoint atime,
              std::int32_t stripes = 1) {
  FileMeta m;
  m.owner = owner;
  m.size_bytes = size;
  m.atime = atime;
  m.ctime = atime;
  m.stripe_count = stripes;
  return m;
}

std::string path_of(trace::UserId user, int i) {
  return "/s/u" + std::to_string(user) + "/f" + std::to_string(i);
}

/// Three users, `files` files each, atimes staggered so collect_expired has
/// structure to chew on.
Vfs make_vfs(int files = 4) {
  Vfs vfs;
  for (trace::UserId u = 0; u < 3; ++u) {
    for (int i = 0; i < files; ++i) {
      vfs.create(path_of(u, i),
                 meta(u, static_cast<std::uint64_t>(1000 + 10 * i),
                      100 + 7 * i + u, 2 + i));
    }
  }
  return vfs;
}

TEST(VfsResidency, EvictDropsTrieButKeepsAccounting) {
  Vfs vfs = make_vfs();
  const std::size_t files_before = vfs.file_count();
  const std::uint64_t bytes_before = vfs.total_bytes();
  const UserUsage u0 = vfs.usage(0);

  vfs.evict_user(0);

  EXPECT_FALSE(vfs.user_resident(0));
  EXPECT_TRUE(vfs.user_resident(1));
  EXPECT_EQ(vfs.evicted_user_count(), 1u);
  EXPECT_EQ(vfs.spilled_file_count(), 4u);
  EXPECT_GT(vfs.spilled_bytes(), 0u);

  // Evicted files stat as absent (resident view), but totals, usage, and
  // file_count still cover them.
  EXPECT_EQ(vfs.stat(path_of(0, 0)), nullptr);
  EXPECT_FALSE(vfs.exists(path_of(0, 1)));
  EXPECT_EQ(vfs.file_count(), files_before);
  EXPECT_EQ(vfs.total_bytes(), bytes_before);
  EXPECT_EQ(vfs.usage(0).bytes, u0.bytes);
  EXPECT_EQ(vfs.usage(0).files, u0.files);

  // The purge index never sheds evicted entries: victim selection must not
  // fault.
  EXPECT_EQ(vfs.purge_index().entries(0).size(), 4u);
  std::string error;
  EXPECT_TRUE(vfs.verify_purge_index(&error)) << error;
}

TEST(VfsResidency, FaultRestoresExactMetadata) {
  Vfs vfs = make_vfs();
  std::vector<FileMeta> before;
  for (int i = 0; i < 4; ++i) {
    const FileMeta* m = vfs.stat(path_of(0, i));
    ASSERT_NE(m, nullptr);
    before.push_back(*m);
  }
  // Bump one access count so the spill record carries a non-default value.
  vfs.access(path_of(0, 2), 900);
  before[2] = *vfs.stat(path_of(0, 2));

  vfs.evict_user(0);
  vfs.fault_user(0);

  EXPECT_TRUE(vfs.user_resident(0));
  EXPECT_EQ(vfs.evicted_user_count(), 0u);
  EXPECT_EQ(vfs.spilled_file_count(), 0u);
  EXPECT_EQ(vfs.spilled_bytes(), 0u);
  for (int i = 0; i < 4; ++i) {
    const FileMeta* m = vfs.stat(path_of(0, i));
    ASSERT_NE(m, nullptr) << "file " << i;
    const FileMeta& want = before[static_cast<std::size_t>(i)];
    EXPECT_EQ(m->owner, want.owner);
    EXPECT_EQ(m->size_bytes, want.size_bytes);
    EXPECT_EQ(m->atime, want.atime);
    EXPECT_EQ(m->ctime, want.ctime);
    EXPECT_EQ(m->stripe_count, want.stripe_count);
    EXPECT_EQ(m->access_count, want.access_count);
    EXPECT_EQ(m->path_id, want.path_id);
  }
  std::string error;
  EXPECT_TRUE(vfs.verify_purge_index(&error)) << error;
}

TEST(VfsResidency, AccessWithOwnerHintFaultsBack) {
  Vfs vfs = make_vfs();
  vfs.evict_user(1);
  ASSERT_FALSE(vfs.user_resident(1));

  // Without a hint the access is a miss — const-resident view.
  EXPECT_FALSE(vfs.access(path_of(1, 0), 5000));
  ASSERT_FALSE(vfs.user_resident(1));

  // With the owner hint the subtree faults back and the access lands.
  EXPECT_TRUE(vfs.access(path_of(1, 0), 5000, 1));
  EXPECT_TRUE(vfs.user_resident(1));
  ASSERT_NE(vfs.stat(path_of(1, 0)), nullptr);
  EXPECT_EQ(vfs.stat(path_of(1, 0))->atime, 5000);
}

TEST(VfsResidency, RemoveWithOwnerHintFaultsAndRemoves) {
  Vfs vfs = make_vfs();
  std::vector<std::string> sunk;
  vfs.set_removal_sink(
      [&](const std::string& path, const FileMeta&) { sunk.push_back(path); });
  const std::size_t files_before = vfs.file_count();
  const std::uint64_t bytes_before = vfs.total_bytes();

  vfs.evict_user(2);
  EXPECT_FALSE(vfs.remove(path_of(2, 3)));  // no hint: resident view only
  EXPECT_TRUE(vfs.remove(path_of(2, 3), 2));

  EXPECT_TRUE(vfs.user_resident(2));
  EXPECT_EQ(vfs.file_count(), files_before - 1);
  EXPECT_LT(vfs.total_bytes(), bytes_before);
  EXPECT_EQ(vfs.usage(2).files, 3u);
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0], path_of(2, 3));
  std::string error;
  EXPECT_TRUE(vfs.verify_purge_index(&error)) << error;
}

TEST(VfsResidency, CreateByEvictedOwnerFaultsFirst) {
  Vfs vfs = make_vfs();
  vfs.evict_user(0);

  // Brand-new file by the evicted owner.
  EXPECT_TRUE(vfs.create(path_of(0, 9), meta(0, 77, 2000)));
  EXPECT_TRUE(vfs.user_resident(0));
  EXPECT_EQ(vfs.usage(0).files, 5u);

  // Overwrite of one's own (previously evicted, now resident) file re-keys.
  vfs.evict_user(0);
  EXPECT_FALSE(vfs.create(path_of(0, 1), meta(0, 5, 3000)));
  EXPECT_TRUE(vfs.user_resident(0));
  ASSERT_NE(vfs.stat(path_of(0, 1)), nullptr);
  EXPECT_EQ(vfs.stat(path_of(0, 1))->size_bytes, 5u);
  std::string error;
  EXPECT_TRUE(vfs.verify_purge_index(&error)) << error;
}

TEST(VfsResidency, BudgetEvictsColdestUsersFirst) {
  Vfs vfs;
  // 8 users x 20 files; touch order makes user 0 coldest, user 7 hottest.
  for (trace::UserId u = 0; u < 8; ++u) {
    for (int i = 0; i < 20; ++i) {
      vfs.create(path_of(u, i), meta(u, 100, 100 + i));
    }
  }
  ASSERT_EQ(vfs.evicted_user_count(), 0u);
  const std::uint64_t full_cost = vfs.resident_bytes_estimate();
  ASSERT_GT(full_cost, 0u);

  // Budget for roughly half the users: enforcement evicts from the cold end.
  vfs.set_memory_budget_bytes(full_cost / 2);
  EXPECT_GT(vfs.evicted_user_count(), 0u);
  EXPECT_LE(vfs.resident_bytes_estimate(), full_cost / 2);
  EXPECT_FALSE(vfs.user_resident(0));   // coldest: created first
  EXPECT_TRUE(vfs.user_resident(7));    // hottest: created last

  // Faulting a cold user back must never push the estimate over the budget.
  EXPECT_TRUE(vfs.access(path_of(0, 0), 9000, 0));
  EXPECT_TRUE(vfs.user_resident(0));
  EXPECT_LE(vfs.resident_bytes_estimate(), full_cost / 2);

  // All files remain reachable with hints, none were lost.
  EXPECT_EQ(vfs.file_count(), 160u);
  std::string error;
  EXPECT_TRUE(vfs.verify_purge_index(&error)) << error;
}

TEST(VfsResidency, BudgetZeroDisablesEviction) {
  Vfs vfs = make_vfs();
  vfs.set_memory_budget_bytes(1);  // absurdly tight: everyone cold goes out
  EXPECT_GT(vfs.evicted_user_count(), 0u);
  vfs.set_memory_budget_bytes(0);  // disable: nothing new gets evicted
  const std::size_t evicted = vfs.evicted_user_count();
  vfs.create("/s/u9/fresh", meta(9, 10, 4000));
  EXPECT_EQ(vfs.evicted_user_count(), evicted);
  // Explicit faults still work with the budget off.
  vfs.fault_user(0);
  vfs.fault_user(1);
  vfs.fault_user(2);
  EXPECT_EQ(vfs.evicted_user_count(), 0u);
}

TEST(VfsResidency, SnapshotExportCoversEvictedFiles) {
  Vfs vfs = make_vfs(3);
  vfs.evict_user(1);
  const trace::Snapshot snap = vfs.export_snapshot();
  EXPECT_EQ(snap.entries().size(), vfs.file_count());

  // Re-import into a fresh Vfs: identical shape.
  Vfs replay;
  replay.import_snapshot(snap);
  EXPECT_EQ(replay.file_count(), vfs.file_count());
  EXPECT_EQ(replay.total_bytes(), vfs.total_bytes());
  for (trace::UserId u = 0; u < 3; ++u) {
    EXPECT_EQ(replay.usage(u).bytes, vfs.usage(u).bytes) << "user " << u;
    EXPECT_EQ(replay.usage(u).files, vfs.usage(u).files) << "user " << u;
  }
  const FileMeta* m = replay.stat(path_of(1, 2));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->owner, 1u);
}

TEST(VfsResidency, UsageViewSkipsEmptySlots) {
  Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 10, 1));
  vfs.create("/s/u5/b", meta(5, 20, 2));
  vfs.create("/s/u5/c", meta(5, 30, 3));

  UserUsageView view = vfs.usage_by_user();
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(view.count(0), 1u);
  EXPECT_EQ(view.count(3), 0u);
  EXPECT_EQ(view.count(5), 1u);
  EXPECT_EQ(view.count(trace::kInvalidUser), 0u);

  std::vector<std::pair<trace::UserId, UserUsage>> seen;
  for (const auto& [user, usage] : view) seen.emplace_back(user, usage);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 0u);
  EXPECT_EQ(seen[0].second.bytes, 10u);
  EXPECT_EQ(seen[1].first, 5u);
  EXPECT_EQ(seen[1].second.files, 2u);

  // Removing the last file empties the slot and shrinks the view.
  vfs.remove("/s/u0/a");
  view = vfs.usage_by_user();
  EXPECT_EQ(view.size(), 1u);
  EXPECT_EQ(view.count(0), 0u);
  EXPECT_TRUE(view.begin() != view.end());
}

TEST(VfsResidency, ClearResetsResidencyState) {
  Vfs vfs = make_vfs();
  vfs.set_memory_budget_bytes(1);
  ASSERT_GT(vfs.evicted_user_count(), 0u);
  vfs.clear();
  EXPECT_EQ(vfs.file_count(), 0u);
  EXPECT_EQ(vfs.evicted_user_count(), 0u);
  EXPECT_EQ(vfs.spilled_file_count(), 0u);
  EXPECT_EQ(vfs.spilled_bytes(), 0u);
  EXPECT_EQ(vfs.resident_bytes_estimate(), 0u);
  EXPECT_TRUE(vfs.usage_by_user().empty());
  // clear() also drops the budget back to disabled; fresh creates stay
  // resident.
  EXPECT_TRUE(vfs.create("/s/u0/a", meta(0, 10, 1)));
  EXPECT_TRUE(vfs.user_resident(0));
}

}  // namespace
}  // namespace adr::fs
