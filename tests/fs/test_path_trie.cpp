#include "fs/path_trie.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.hpp"

namespace adr::fs {
namespace {

FileMeta meta(std::uint64_t size = 1, util::TimePoint atime = 0) {
  FileMeta m;
  m.size_bytes = size;
  m.atime = atime;
  return m;
}

TEST(SplitPath, Basics) {
  EXPECT_EQ(split_path("/a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_path("a/b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split_path("//x//y/"), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(split_path("/").empty());
  EXPECT_TRUE(split_path("").empty());
}

TEST(JoinPath, Canonical) {
  EXPECT_EQ(join_path({"a", "b"}), "/a/b");
  EXPECT_EQ(join_path({}), "/");
}

TEST(PathTrie, InsertFindErase) {
  PathTrie t;
  EXPECT_TRUE(t.insert("/scratch/u1/a.dat", meta(10)));
  EXPECT_TRUE(t.insert("/scratch/u1/b.dat", meta(20)));
  EXPECT_EQ(t.file_count(), 2u);
  ASSERT_NE(t.find("/scratch/u1/a.dat"), nullptr);
  EXPECT_EQ(t.find("/scratch/u1/a.dat")->size_bytes, 10u);
  EXPECT_EQ(t.find("/scratch/u1/c.dat"), nullptr);
  EXPECT_TRUE(t.erase("/scratch/u1/a.dat"));
  EXPECT_EQ(t.find("/scratch/u1/a.dat"), nullptr);
  EXPECT_FALSE(t.erase("/scratch/u1/a.dat"));
  EXPECT_EQ(t.file_count(), 1u);
}

TEST(PathTrie, InsertOverwriteKeepsCount) {
  PathTrie t;
  EXPECT_TRUE(t.insert("/x/y", meta(1)));
  EXPECT_FALSE(t.insert("/x/y", meta(2)));
  EXPECT_EQ(t.file_count(), 1u);
  EXPECT_EQ(t.find("/x/y")->size_bytes, 2u);
}

TEST(PathTrie, DirectoryIsNotAFile) {
  PathTrie t;
  t.insert("/a/b/c.dat", meta());
  EXPECT_EQ(t.find("/a/b"), nullptr);
  EXPECT_EQ(t.find("/a"), nullptr);
  EXPECT_FALSE(t.contains("/a/b"));
  EXPECT_TRUE(t.contains_under("/a/b"));
}

TEST(PathTrie, InteriorFileAndDescendant) {
  PathTrie t;
  t.insert("/a/b", meta(1));
  t.insert("/a/b/c", meta(2));
  EXPECT_EQ(t.file_count(), 2u);
  EXPECT_EQ(t.find("/a/b")->size_bytes, 1u);
  EXPECT_EQ(t.find("/a/b/c")->size_bytes, 2u);
  EXPECT_TRUE(t.erase("/a/b"));
  EXPECT_NE(t.find("/a/b/c"), nullptr);
}

TEST(PathTrie, EdgeCompressionKeepsNodeCountSmall) {
  PathTrie t;
  // One deep path: root + a single compressed chain node.
  t.insert("/very/deep/directory/chain/with/many/levels/file.dat", meta());
  EXPECT_EQ(t.node_count(), 2u);
  // A second file splits the chain once: root + shared prefix + 2 leaves.
  t.insert("/very/deep/directory/other/file.dat", meta());
  EXPECT_EQ(t.node_count(), 4u);
}

TEST(PathTrie, EraseRemergesChains) {
  PathTrie t;
  t.insert("/a/b/c/d/e1", meta());
  t.insert("/a/b/c/d/e2", meta());
  const std::size_t with_both = t.node_count();
  t.erase("/a/b/c/d/e2");
  // The split point can merge back into a single chain.
  EXPECT_LT(t.node_count(), with_both);
  EXPECT_NE(t.find("/a/b/c/d/e1"), nullptr);
}

TEST(PathTrie, ContainsUnder) {
  PathTrie t;
  t.insert("/scratch/u1/p/a.dat", meta());
  EXPECT_TRUE(t.contains_under("/scratch"));
  EXPECT_TRUE(t.contains_under("/scratch/u1"));
  EXPECT_TRUE(t.contains_under("/scratch/u1/p/a.dat"));
  EXPECT_FALSE(t.contains_under("/scratch/u2"));
  EXPECT_FALSE(t.contains_under("/other"));
}

TEST(PathTrie, ContainsPrefixOf) {
  PathTrie t;
  t.insert("/scratch/u1/keep", meta());
  EXPECT_TRUE(t.contains_prefix_of("/scratch/u1/keep"));
  EXPECT_TRUE(t.contains_prefix_of("/scratch/u1/keep/sub/file.dat"));
  EXPECT_FALSE(t.contains_prefix_of("/scratch/u1/keepx"));
  EXPECT_FALSE(t.contains_prefix_of("/scratch/u1"));
  EXPECT_FALSE(t.contains_prefix_of("/scratch/u2/keep"));
}

TEST(PathTrie, ForEachUnderVisitsExactSubtree) {
  PathTrie t;
  t.insert("/s/u1/a", meta());
  t.insert("/s/u1/sub/b", meta());
  t.insert("/s/u2/c", meta());
  std::set<std::string> seen;
  t.for_each_under("/s/u1", [&](const std::string& p, const FileMeta&) {
    seen.insert(p);
  });
  EXPECT_EQ(seen, (std::set<std::string>{"/s/u1/a", "/s/u1/sub/b"}));
}

TEST(PathTrie, ForEachUnderMissingPrefixVisitsNothing) {
  PathTrie t;
  t.insert("/s/u1/a", meta());
  int n = 0;
  t.for_each_under("/nope", [&](const std::string&, const FileMeta&) { ++n; });
  EXPECT_EQ(n, 0);
}

TEST(PathTrie, ForEachReportsCanonicalPaths) {
  PathTrie t;
  t.insert("//s///u1//a.dat", meta());
  std::string got;
  t.for_each([&](const std::string& p, const FileMeta&) { got = p; });
  EXPECT_EQ(got, "/s/u1/a.dat");
  EXPECT_NE(t.find("/s/u1/a.dat"), nullptr);  // normalized lookup
}

TEST(PathTrie, ClearResets) {
  PathTrie t;
  t.insert("/a/b", meta());
  t.clear();
  EXPECT_EQ(t.file_count(), 0u);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find("/a/b"), nullptr);
}

TEST(PathTrie, MemoryBytesGrowsWithContent) {
  PathTrie t;
  const std::size_t base = t.memory_bytes();
  for (int i = 0; i < 100; ++i) {
    t.insert("/s/u/" + std::to_string(i) + "/f.dat", meta());
  }
  EXPECT_GT(t.memory_bytes(), base);
}

TEST(PathTrie, MoveSemantics) {
  PathTrie t;
  t.insert("/a/b", meta(5));
  PathTrie moved = std::move(t);
  ASSERT_NE(moved.find("/a/b"), nullptr);
  EXPECT_EQ(moved.find("/a/b")->size_bytes, 5u);
}

// Property test: a trie behaves exactly like a map<path, meta> under a
// random insert/erase/find workload.
TEST(PathTrieProperty, MatchesReferenceMap) {
  util::Rng rng(99);
  PathTrie t;
  std::map<std::string, std::uint64_t> ref;
  const char* comps[] = {"u1", "u2", "proj", "run", "data", "f1", "f2", "f3"};

  for (int step = 0; step < 5000; ++step) {
    // Random path of depth 1..5 over a small component alphabet (forces
    // heavy sharing, splitting and merging).
    std::string path;
    const int depth = 1 + static_cast<int>(rng.bounded(5));
    for (int d = 0; d < depth; ++d) {
      path += "/";
      path += comps[rng.bounded(std::size(comps))];
    }
    const auto action = rng.bounded(3);
    if (action == 0) {
      const std::uint64_t size = rng.bounded(1000);
      const bool was_new = ref.emplace(path, size).second;
      if (!was_new) ref[path] = size;
      EXPECT_EQ(t.insert(path, meta(size)), was_new);
    } else if (action == 1) {
      EXPECT_EQ(t.erase(path), ref.erase(path) > 0);
    } else {
      const auto it = ref.find(path);
      const FileMeta* m = t.find(path);
      if (it == ref.end()) {
        EXPECT_EQ(m, nullptr) << path;
      } else {
        ASSERT_NE(m, nullptr) << path;
        EXPECT_EQ(m->size_bytes, it->second);
      }
    }
    EXPECT_EQ(t.file_count(), ref.size());
  }

  // Full enumeration agrees with the reference (paths and order).
  std::vector<std::string> trie_paths;
  t.for_each([&](const std::string& p, const FileMeta&) {
    trie_paths.push_back(p);
  });
  EXPECT_EQ(trie_paths.size(), ref.size());
  for (const auto& p : trie_paths) EXPECT_TRUE(ref.count(p)) << p;
}

}  // namespace
}  // namespace adr::fs
