#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace adr::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10 + i * 0.1;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Quantile, EmptyAndSingle) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
  EXPECT_EQ(quantile({7.0}, 0.0), 7.0);
  EXPECT_EQ(quantile({7.0}, 1.0), 7.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(Quantile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(quantile({9, 1, 5}, 0.5), 5.0);
}

TEST(FiveNumber, MatchesHandComputation) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto s = five_number_summary(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_EQ(s.count, 9u);
}

TEST(FiveNumber, Empty) {
  const auto s = five_number_summary({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.median, 0.0);
}

TEST(RangeHistogram, BinsAreLeftOpenRightClosed) {
  RangeHistogram h;
  h.add_bin("a", 0.0, 1.0);
  h.add_bin("b", 1.0, 2.0);
  h.add(0.0);  // at/below first lo -> underflow
  h.add(1.0);  // boundary belongs to the lower bin
  h.add(1.5);
  h.add(2.0);
  h.add(3.0);  // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.bins()[0].count, 1u);
  EXPECT_EQ(h.bins()[1].count, 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(RangeHistogram, PaperBinsMatchAxisLabels) {
  const auto h = RangeHistogram::paper_miss_ratio_bins();
  ASSERT_EQ(h.bins().size(), 11u);
  EXPECT_EQ(h.bins().front().label, "1%-5%");
  EXPECT_EQ(h.bins().back().label, "90%-100%");
}

TEST(RangeHistogram, PaperBinsClassifyRatios) {
  auto h = RangeHistogram::paper_miss_ratio_bins();
  h.add(0.0);    // a zero-miss day is not in any range
  h.add(0.004);  // <1% ditto
  h.add(0.03);
  h.add(0.07);
  h.add(0.95);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.bins()[0].count, 1u);
  EXPECT_EQ(h.bins()[1].count, 1u);
  EXPECT_EQ(h.bins()[10].count, 1u);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1024.0), "1.00 KiB");
  EXPECT_EQ(format_bytes(1024.0 * 1024 * 1024 * 1024 * 1024 * 3), "3.00 PiB");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.1234), "12.34%");
  EXPECT_EQ(format_percent(0.5, 0), "50%");
  EXPECT_EQ(format_percent(-0.405, 2), "-40.50%");
}

}  // namespace
}  // namespace adr::util
