#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace adr::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentAndStable) {
  Rng root1(7), root2(7);
  Rng childa = root1.fork(42);
  Rng childb = root2.fork(42);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(childa(), childb());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(6);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(8);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    lo |= v == 3;
    hi |= v == 7;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, BoundedIsUnbiasedEnough) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMedian) {
  Rng rng(11);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.lognormal(std::log(50.0), 0.8);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 50.0, 5.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ParetoSupport) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(14);
  for (double mean : {0.5, 4.0, 80.0}) {
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.08 + 0.05);
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(15);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Zipf, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
}

TEST(Zipf, RanksWithinDomain) {
  Rng rng(17);
  ZipfDistribution zipf(100, 1.2);
  for (int i = 0; i < 1000; ++i) {
    const auto r = zipf(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(Zipf, RankOneMostPopular) {
  Rng rng(18);
  ZipfDistribution zipf(50, 1.0);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[1], counts[10] * 5);
}

TEST(Zipf, DegenerateSingleton) {
  Rng rng(19);
  ZipfDistribution zipf(1, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 1u);
}

}  // namespace
}  // namespace adr::util
