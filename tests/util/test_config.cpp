#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace adr::util {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ArgsKeyValuePairs) {
  const Config c = parse({"--users", "500", "--seed=7"});
  EXPECT_EQ(c.get_int("users", 0), 500);
  EXPECT_EQ(c.get_int("seed", 0), 7);
}

TEST(Config, BareFlagIsTrue) {
  const Config c = parse({"--verbose", "--count", "3"});
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_EQ(c.get_int("count", 0), 3);
}

TEST(Config, Positional) {
  const Config c = parse({"input.csv", "--x", "1", "more"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "input.csv");
  EXPECT_EQ(c.positional()[1], "more");
}

TEST(Config, Defaults) {
  const Config c = parse({});
  EXPECT_EQ(c.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(c.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(c.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(c.get_bool("missing", true));
  EXPECT_FALSE(c.contains("missing"));
}

TEST(Config, BoolParsing) {
  const Config c = parse({"--a=yes", "--b=0", "--c=TRUE", "--d=off"});
  EXPECT_TRUE(c.get_bool("a", false));
  EXPECT_FALSE(c.get_bool("b", true));
  EXPECT_TRUE(c.get_bool("c", false));
  EXPECT_FALSE(c.get_bool("d", true));
}

TEST(Config, TypeErrorsThrow) {
  const Config c = parse({"--n=abc", "--f=xyz", "--b=maybe"});
  EXPECT_THROW(c.get_int("n", 0), std::runtime_error);
  EXPECT_THROW(c.get_double("f", 0), std::runtime_error);
  EXPECT_THROW(c.get_bool("b", false), std::runtime_error);
}

TEST(Config, MergeOverrides) {
  Config base = parse({"--a=1", "--b=2"});
  const Config over = parse({"--b=3", "--c=4"});
  base.merge(over);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

class ConfigFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/adr_config_test.conf";
  void write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(ConfigFileTest, ParsesKeyValues) {
  write("# comment\nlifetime_days = 90\ntarget=0.5  # trailing\n\n");
  const Config c = Config::from_file(path_);
  EXPECT_EQ(c.get_int("lifetime_days", 0), 90);
  EXPECT_DOUBLE_EQ(c.get_double("target", 0), 0.5);
}

TEST_F(ConfigFileTest, MalformedLineThrows) {
  write("this line has no equals\n");
  EXPECT_THROW(Config::from_file(path_), std::runtime_error);
}

TEST_F(ConfigFileTest, MissingFileThrows) {
  EXPECT_THROW(Config::from_file("/nonexistent/nowhere.conf"),
               std::runtime_error);
}

}  // namespace
}  // namespace adr::util
