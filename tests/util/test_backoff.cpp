// Retry-with-backoff (DESIGN.md §14): delay schedule determinism, the
// retryable/fatal classification split, and retry_io's contract — transient
// faults succeed within the budget, fatal faults and injected crashes
// surface immediately so the crash-recovery path stays in charge of them.

#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/fault.hpp"

namespace adr::util {
namespace {

TEST(Backoff, ScheduleIsExponentialAndCapped) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 1.0;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 5.0;
  policy.jitter = 0.0;  // deterministic
  Backoff backoff(policy);
  EXPECT_DOUBLE_EQ(backoff.delay_ms(0), 1.0);
  EXPECT_DOUBLE_EQ(backoff.delay_ms(1), 2.0);
  EXPECT_DOUBLE_EQ(backoff.delay_ms(2), 4.0);
  EXPECT_DOUBLE_EQ(backoff.delay_ms(3), 5.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.delay_ms(9), 5.0);
}

TEST(Backoff, JitterIsSeededAndBounded) {
  BackoffPolicy policy;
  policy.initial_delay_ms = 100.0;
  policy.jitter = 0.5;
  std::vector<double> a, b;
  Backoff first(policy), second(policy);
  for (int i = 0; i < 4; ++i) {
    a.push_back(first.delay_ms(0));
    b.push_back(second.delay_ms(0));
  }
  EXPECT_EQ(a, b);  // same seed → same stream
  for (const double d : a) {
    EXPECT_GT(d, 50.0 - 1e-9);  // at most `jitter` shaved off
    EXPECT_LE(d, 100.0);
  }
}

TEST(Backoff, ClassifierSplitsTransientFromFatal) {
  EXPECT_TRUE(is_retryable_io_error("write: No space left on device"));
  EXPECT_TRUE(is_retryable_io_error("SpillLog: short write"));
  EXPECT_TRUE(is_retryable_io_error("read: Interrupted system call"));
  EXPECT_TRUE(is_retryable_io_error("socket: Resource temporarily unavailable"));
  EXPECT_FALSE(is_retryable_io_error("artifact corrupt: bad CRC"));
  EXPECT_FALSE(is_retryable_io_error("No such file or directory"));
  EXPECT_FALSE(is_retryable_io_error("injected crash at io.atomic.pre_rename"));
}

BackoffPolicy fast_policy() {
  BackoffPolicy policy;
  policy.max_attempts = 4;
  policy.initial_delay_ms = 0.0;  // tests must not sleep
  policy.max_delay_ms = 0.0;
  return policy;
}

TEST(Backoff, RetryIoSucceedsWithinBudget) {
  int runs = 0;
  const RetryStats stats = retry_io("op", fast_policy(), [&] {
    if (++runs < 3) throw std::runtime_error("flaky: short write");
  });
  EXPECT_TRUE(stats.succeeded);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(runs, 3);
}

TEST(Backoff, RetryIoExhaustsBudgetAndRethrows) {
  int runs = 0;
  EXPECT_THROW(retry_io("op", fast_policy(),
                        [&] {
                          ++runs;
                          throw std::runtime_error("enospc forever");
                        }),
               std::runtime_error);
  EXPECT_EQ(runs, 4);  // max_attempts
}

TEST(Backoff, RetryIoSurfacesFatalErrorsImmediately) {
  int runs = 0;
  EXPECT_THROW(retry_io("op", fast_policy(),
                        [&] {
                          ++runs;
                          throw std::runtime_error("manifest missing");
                        }),
               std::runtime_error);
  EXPECT_EQ(runs, 1);  // not retried
}

TEST(Backoff, RetryIoNeverRetriesInjectedCrashes) {
  int runs = 0;
  EXPECT_THROW(retry_io("op", fast_policy(),
                        [&] {
                          ++runs;
                          throw CrashInjected("io.atomic.pre_rename");
                        }),
               CrashInjected);
  EXPECT_EQ(runs, 1);
}

TEST(Backoff, SingleAttemptPolicyDisablesRetry) {
  BackoffPolicy policy = fast_policy();
  policy.max_attempts = 1;
  int runs = 0;
  EXPECT_THROW(retry_io("op", policy,
                        [&] {
                          ++runs;
                          throw std::runtime_error("eintr");
                        }),
               std::runtime_error);
  EXPECT_EQ(runs, 1);
}

}  // namespace
}  // namespace adr::util
