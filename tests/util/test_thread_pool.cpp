#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"

namespace adr::util {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleThreadPool) {
  // Single-core machines get a pool with zero workers; the caller must
  // still drain everything.
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 100, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ParallelForCustomGrain) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; },
                    /*grain=*/7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelShardsPartitionIdsAreSane) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> seen;
  pool.parallel_shards([&](std::size_t shard, std::size_t count) {
    std::lock_guard<std::mutex> lock(m);
    seen.emplace_back(shard, count);
  });
  ASSERT_EQ(seen.size(), pool.size() + 1);
  for (const auto& [shard, count] : seen) {
    EXPECT_EQ(count, pool.size() + 1);
    EXPECT_LT(shard, count);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

TEST(ThreadPool, ExceptionAbortsRemainingChunks) {
  // Once a chunk throws, the shared cursor jumps to the end: chunks not yet
  // claimed never run. With grain 1 on a big range, far fewer than n items
  // must have executed by the time the exception surfaces.
  ThreadPool pool(2);
  std::atomic<std::size_t> executed{0};
  std::atomic<bool> threw{false};
  constexpr std::size_t kN = 100'000;
  EXPECT_THROW(
      pool.parallel_for(0, kN,
                        [&](std::size_t) {
                          // The first item run anywhere throws, so the abort
                          // happens at the very start no matter which thread
                          // claims which chunk.
                          if (!threw.exchange(true)) {
                            throw std::runtime_error("boom");
                          }
                          executed.fetch_add(1, std::memory_order_relaxed);
                        },
                        /*grain=*/1),
      std::runtime_error);
  // The sibling thread can race a few chunks through before it observes the
  // aborted cursor, but nowhere near the full range.
  EXPECT_LT(executed.load(), kN / 2);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A task that itself calls parallel_for must not deadlock even when every
  // worker is occupied by an outer task: waiters help-drain the queue.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 16, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    }, /*grain=*/1);
  }, /*grain=*/1);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, DispatchCountersMatchGrainMath) {
  // The registry is process-global and shared across tests, so assert on
  // before/after deltas.
  auto& reg = adr::obs::MetricsRegistry::global();
  const auto before = reg.snapshot();
  const auto count_of = [](const adr::obs::MetricsSnapshot& s,
                           const char* name) -> std::uint64_t {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second;
  };

  ThreadPool pool(3);
  std::atomic<int> n{0};
  pool.parallel_for(0, 64, [&](std::size_t) { n++; }, /*grain=*/7);

  const auto after = reg.snapshot();
  EXPECT_EQ(count_of(after, "threadpool.parallel_for.calls") -
                count_of(before, "threadpool.parallel_for.calls"),
            1u);
  EXPECT_EQ(count_of(after, "threadpool.parallel_for.items") -
                count_of(before, "threadpool.parallel_for.items"),
            64u);
  // ceil(64 / 7) = 10 chunks, regardless of which thread claims them.
  EXPECT_EQ(count_of(after, "threadpool.parallel_for.chunks") -
                count_of(before, "threadpool.parallel_for.chunks"),
            10u);
  EXPECT_EQ(n.load(), 64);
}

TEST(ThreadPool, QueueWaitHistogramObservesSubmittedTasks) {
  auto& reg = adr::obs::MetricsRegistry::global();
  const auto hist_count = [&]() {
    const auto snap = reg.snapshot();
    const auto it = snap.histograms.find("threadpool.queue_wait");
    return it == snap.histograms.end() ? std::uint64_t{0} : it->second.count;
  };
  const std::uint64_t before = hist_count();
  ThreadPool pool(2);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 10; ++i) futs.push_back(pool.submit([] {}));
  for (auto& f : futs) f.get();
  EXPECT_GE(hist_count() - before, 10u);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&] { n++; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(n.load(), 200);
}

}  // namespace
}  // namespace adr::util
