#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace adr::util {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleThreadPool) {
  // Single-core machines get a pool with zero workers; the caller must
  // still drain everything.
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 100, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ParallelForCustomGrain) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; },
                    /*grain=*/7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelShardsPartitionIdsAreSane) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> seen;
  pool.parallel_shards([&](std::size_t shard, std::size_t count) {
    std::lock_guard<std::mutex> lock(m);
    seen.emplace_back(shard, count);
  });
  ASSERT_EQ(seen.size(), pool.size() + 1);
  for (const auto& [shard, count] : seen) {
    EXPECT_EQ(count, pool.size() + 1);
    EXPECT_LT(shard, count);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&] { n++; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(n.load(), 200);
}

}  // namespace
}  // namespace adr::util
