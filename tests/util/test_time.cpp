#include "util/time.hpp"

#include <gtest/gtest.h>

namespace adr::util {
namespace {

TEST(Time, EpochIsDayZero) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(from_civil(1970, 1, 1), 0);
}

TEST(Time, KnownDates) {
  EXPECT_EQ(from_civil(2016, 1, 1), 1451606400);
  EXPECT_EQ(from_civil(2000, 3, 1), 951868800);
  EXPECT_EQ(from_civil(1969, 12, 31), -86400);
}

TEST(Time, CivilRoundTripAcrossYears) {
  for (int year : {1900, 1970, 1999, 2000, 2015, 2016, 2100}) {
    for (int month = 1; month <= 12; ++month) {
      const TimePoint tp = from_civil(year, month, 15);
      const CivilDate c = to_civil(tp);
      EXPECT_EQ(c.year, year);
      EXPECT_EQ(c.month, month);
      EXPECT_EQ(c.day, 15);
    }
  }
}

TEST(Time, RoundTripEveryDayOf2016) {
  // 2016 is the paper's replay year and a leap year.
  std::int64_t d0 = days_from_civil(2016, 1, 1);
  for (int i = 0; i < 366; ++i) {
    const CivilDate c = civil_from_days(d0 + i);
    EXPECT_EQ(days_from_civil(c.year, c.month, c.day), d0 + i);
  }
  EXPECT_EQ(civil_from_days(d0 + 365), (CivilDate{2016, 12, 31}));
  EXPECT_EQ(civil_from_days(d0 + 366), (CivilDate{2017, 1, 1}));
}

TEST(Time, LeapYears) {
  EXPECT_TRUE(is_leap_year(2016));
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_FALSE(is_leap_year(2015));
  EXPECT_EQ(days_in_year(2016), 366);
  EXPECT_EQ(days_in_year(2015), 365);
}

TEST(Time, DayOfYear) {
  EXPECT_EQ(day_of_year(from_civil(2016, 1, 1)), 1);
  EXPECT_EQ(day_of_year(from_civil(2016, 12, 31)), 366);
  EXPECT_EQ(day_of_year(from_civil(2016, 3, 1)), 61);  // leap year
  EXPECT_EQ(day_of_year(from_civil(2015, 3, 1)), 60);
}

TEST(Time, FloorToDay) {
  const TimePoint noon = from_civil(2016, 6, 1) + 12 * kSecondsPerHour;
  EXPECT_EQ(floor_to_day(noon), from_civil(2016, 6, 1));
  EXPECT_EQ(floor_to_day(from_civil(2016, 6, 1)), from_civil(2016, 6, 1));
  // Negative timestamps floor toward -inf, not zero.
  EXPECT_EQ(floor_to_day(-1), -kSecondsPerDay);
}

TEST(Time, CeilDaysBetween) {
  const TimePoint a = from_civil(2016, 1, 1);
  EXPECT_EQ(ceil_days_between(a, a), 0);
  EXPECT_EQ(ceil_days_between(a, a + 1), 1);
  EXPECT_EQ(ceil_days_between(a, a + kSecondsPerDay), 1);
  EXPECT_EQ(ceil_days_between(a, a + kSecondsPerDay + 1), 2);
  EXPECT_EQ(ceil_days_between(a + 100, a), 0);  // reversed clamps to 0
}

TEST(Time, Formatting) {
  const TimePoint tp = from_civil(2016, 8, 23) + 3661;
  EXPECT_EQ(format_date(tp), "2016-08-23");
  EXPECT_EQ(format_datetime(tp), "2016-08-23 01:01:01");
  EXPECT_EQ(format_month(tp), "2016-08");
}

TEST(Time, ParseDateValid) {
  TimePoint tp = 0;
  ASSERT_TRUE(parse_date("2016-02-29", tp));
  EXPECT_EQ(tp, from_civil(2016, 2, 29));
}

TEST(Time, ParseDateRejectsBadInput) {
  TimePoint tp = 0;
  EXPECT_FALSE(parse_date("2015-02-29", tp));  // not a leap year
  EXPECT_FALSE(parse_date("2015-13-01", tp));
  EXPECT_FALSE(parse_date("2015-00-10", tp));
  EXPECT_FALSE(parse_date("garbage", tp));
  EXPECT_FALSE(parse_date("", tp));
}

TEST(Time, FormatDuration) {
  EXPECT_EQ(format_duration_seconds(0.5), "500ms");
  EXPECT_EQ(format_duration_seconds(12.34), "12.3s");
  EXPECT_EQ(format_duration_seconds(125), "2m 05s");
  EXPECT_EQ(format_duration_seconds(3725), "1h 02m 05s");
}

TEST(Time, DurationHelpers) {
  EXPECT_EQ(days(90), 90 * kSecondsPerDay);
  EXPECT_EQ(hours(2), 7200);
}

}  // namespace
}  // namespace adr::util
