#include "util/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/fault.hpp"
#include "util/gzfile.hpp"

namespace adr::util::io {
namespace {

namespace fsys = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class AtomicIoTest : public ::testing::Test {
 protected:
  // Per-process: ctest -j runs each discovered test in its own process, and
  // concurrent processes must not race on one scratch directory.
  std::string dir_ = ::testing::TempDir() + "/adr_io_test_" +
                     std::to_string(::getpid());
  std::string path_ = dir_ + "/artifact.csv";
  void SetUp() override {
    FaultInjector::global().clear();
    fsys::remove_all(dir_);
    fsys::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::global().clear();
    fsys::remove_all(dir_);
  }
};

TEST_F(AtomicIoTest, CommitWritesFooterAndRoundTrips) {
  {
    AtomicWriter writer(path_);
    writer.write_line("a,b,c");
    writer.write_line("1,2,3");
    writer.commit();
  }
  const std::string raw = slurp(path_);
  EXPECT_NE(raw.find(kFooterPrefix), std::string::npos);

  const Artifact artifact = read_artifact(path_);
  EXPECT_EQ(artifact.state, ArtifactState::kVerified);
  EXPECT_EQ(artifact.content, "a,b,c\n1,2,3\n");  // footer stripped
  EXPECT_EQ(load_verified(path_), "a,b,c\n1,2,3\n");
}

TEST_F(AtomicIoTest, UncommittedWriterLeavesNoTrace) {
  {
    AtomicWriter writer(path_);
    writer.write_line("doomed");
  }
  EXPECT_FALSE(fsys::exists(path_));
  EXPECT_FALSE(fsys::exists(path_ + ".tmp"));
}

TEST_F(AtomicIoTest, CommitReplacesExistingAtomically) {
  {
    AtomicWriter writer(path_);
    writer.write_line("v1");
    writer.commit();
  }
  {
    AtomicWriter writer(path_);
    writer.write_line("v2");
    writer.commit();
  }
  EXPECT_EQ(load_verified(path_), "v2\n");
}

TEST_F(AtomicIoTest, LegacyFileWithoutFooterLoads) {
  {
    std::ofstream out(path_);
    out << "hand,written\nfixture,row\n";
  }
  const Artifact artifact = read_artifact(path_);
  EXPECT_EQ(artifact.state, ArtifactState::kLegacy);
  EXPECT_EQ(artifact.content, "hand,written\nfixture,row\n");
  EXPECT_NO_THROW(load_verified(path_));

  ReadOptions strict;
  strict.require_footer = true;
  EXPECT_EQ(read_artifact(path_, strict).state, ArtifactState::kCorrupt);
}

TEST_F(AtomicIoTest, FlippedByteFailsCrcAndQuarantines) {
  {
    AtomicWriter writer(path_);
    writer.write_line("payload,line,one");
    writer.commit();
  }
  std::string raw = slurp(path_);
  raw[2] ^= 0x01;  // bit rot inside the payload
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << raw;
  }
  EXPECT_EQ(read_artifact(path_).state, ArtifactState::kCorrupt);
  EXPECT_THROW(load_verified(path_), ArtifactCorrupt);
  EXPECT_FALSE(fsys::exists(path_));  // moved aside, not acted on
  EXPECT_TRUE(fsys::exists(path_ + ".corrupt"));
}

TEST_F(AtomicIoTest, TruncatedFileFailsVerification) {
  {
    AtomicWriter writer(path_);
    for (int i = 0; i < 100; ++i) writer.write_line("row," + std::to_string(i));
    writer.commit();
  }
  const std::string raw = slurp(path_);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << raw.substr(0, raw.size() / 2);  // torn mid-file
  }
  // Torn halfway: the footer is gone too, so it parses as legacy — but a
  // tear that keeps the footer (drops payload) must be caught by `bytes=`.
  {
    AtomicWriter writer(path_);
    writer.write_line("abcdefgh");
    writer.write_line("ijklmnop");
    writer.commit();
  }
  const std::string full = slurp(path_);
  const std::size_t footer_at = full.rfind(kFooterPrefix);
  const std::string torn =
      full.substr(0, 9) + full.substr(footer_at);  // one payload line missing
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << torn;
  }
  EXPECT_EQ(read_artifact(path_).state, ArtifactState::kCorrupt);
}

TEST_F(AtomicIoTest, QuarantinePicksFreeSuffix) {
  const auto write_corrupt = [&] {
    AtomicWriter writer(path_);
    writer.write_line("x");
    writer.commit();
    std::string raw = slurp(path_);
    raw[0] ^= 0x01;
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << raw;
  };
  write_corrupt();
  EXPECT_THROW(load_verified(path_), ArtifactCorrupt);
  write_corrupt();
  EXPECT_THROW(load_verified(path_), ArtifactCorrupt);
  EXPECT_TRUE(fsys::exists(path_ + ".corrupt"));
  EXPECT_TRUE(fsys::exists(path_ + ".corrupt.1"));
}

TEST_F(AtomicIoTest, GzArtifactCarriesFooterInsideStream) {
  const std::string gz = dir_ + "/artifact.csv.gz";
  const std::string tmp = gz + ".tmp";
  Crc32 crc;
  std::uint64_t bytes = 0;
  {
    GzWriter out(tmp);
    const std::string line = "a,b\n";
    crc.update(line);
    bytes += line.size();
    out.write_line("a,b");
    out.write_line(make_footer(crc.value(), bytes));
    out.close();
  }
  commit_tmp(tmp, gz, false);
  const Artifact artifact = read_artifact(gz);
  EXPECT_EQ(artifact.state, ArtifactState::kVerified);
  EXPECT_EQ(artifact.content, "a,b\n");
}

TEST_F(AtomicIoTest, FooterParsesItsOwnOutput) {
  Crc32 crc;
  crc.update("hello");
  const std::string footer = make_footer(crc.value(), 5);
  std::uint32_t parsed_crc = 0;
  std::uint64_t parsed_bytes = 0;
  ASSERT_TRUE(parse_footer(footer, parsed_crc, parsed_bytes));
  EXPECT_EQ(parsed_crc, crc.value());
  EXPECT_EQ(parsed_bytes, 5u);
  EXPECT_FALSE(parse_footer("#ADRCRC vX nonsense", parsed_crc, parsed_bytes));
  EXPECT_FALSE(parse_footer("1,2,3", parsed_crc, parsed_bytes));
}

// ---- fault injection through the writer ------------------------------------

TEST_F(AtomicIoTest, InjectedOpenFailureThrows) {
  FaultInjector::global().configure("io.atomic.open:fail");
  EXPECT_THROW(AtomicWriter writer(path_), std::runtime_error);
  EXPECT_FALSE(fsys::exists(path_ + ".tmp"));
}

TEST_F(AtomicIoTest, InjectedEnospcFailsCommitAndPreservesTarget) {
  {
    AtomicWriter writer(path_);
    writer.write_line("old,intact");
    writer.commit();
  }
  FaultInjector::global().configure("io.atomic.write:enospc@6");
  {
    EXPECT_THROW(
        [&] {
          AtomicWriter writer(path_);
          writer.write_line("new,version,that,will,not,fit");
          writer.commit();
        }(),
        std::runtime_error);
  }
  FaultInjector::global().clear();
  EXPECT_EQ(load_verified(path_), "old,intact\n");  // target untouched
}

TEST_F(AtomicIoTest, InjectedCrashLeavesTmpBehind) {
  FaultInjector::global().configure("io.atomic.pre_rename:crash");
  try {
    AtomicWriter writer(path_);
    writer.write_line("half,done");
    writer.commit();
    FAIL() << "expected CrashInjected";
  } catch (const CrashInjected&) {
  }
  // A real crash leaves the temp file; the writer must not tidy it away.
  EXPECT_TRUE(fsys::exists(path_ + ".tmp"));
  EXPECT_FALSE(fsys::exists(path_));
}

TEST_F(AtomicIoTest, PostRenameCrashStillCommits) {
  FaultInjector::global().configure("io.atomic.post_rename:crash");
  try {
    AtomicWriter writer(path_);
    writer.write_line("made,it");
    writer.commit();
    FAIL() << "expected CrashInjected";
  } catch (const CrashInjected&) {
  }
  FaultInjector::global().clear();
  EXPECT_EQ(load_verified(path_), "made,it\n");  // rename happened first
}

}  // namespace
}  // namespace adr::util::io
