#include "util/memory.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace adr::util {
namespace {

TEST(Memory, RssIsPositiveOnLinux) {
  // /proc/self/status exists on any Linux box this suite runs on.
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GT(peak_rss_bytes(), 0u);
}

TEST(Memory, PeakIsAtLeastCurrent) {
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

TEST(Memory, DeltaSeesLargeAllocation) {
  RssDelta delta;
  // Touch 64 MiB so the pages are actually resident.
  std::vector<char> block(64 * 1024 * 1024, 1);
  // Some allocators may not grow RSS deterministically, so only check the
  // delta is not absurd.
  EXPECT_LT(delta.bytes(), 1024ull * 1024 * 1024);
  EXPECT_GT(block.size(), 0u);
}

}  // namespace
}  // namespace adr::util
