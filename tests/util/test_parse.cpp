#include "util/parse.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace adr::util {
namespace {

const std::string kFile = "jobs.csv";
const RowContext kCtx{&kFile, 7};

TEST(CheckedParse, AcceptsCleanNumbers) {
  EXPECT_EQ(parse_u64("18446744073709551615", kCtx, "c"),
            18446744073709551615ull);
  EXPECT_EQ(parse_i64("-42", kCtx, "c"), -42);
  EXPECT_EQ(parse_u32("4294967295", kCtx, "c"), 4294967295u);
  EXPECT_EQ(parse_i32("-7", kCtx, "c"), -7);
  EXPECT_DOUBLE_EQ(parse_f64("2.5e3", kCtx, "c"), 2500.0);
}

TEST(CheckedParse, RejectsJunk) {
  EXPECT_THROW(parse_u64("", kCtx, "c"), ParseError);
  EXPECT_THROW(parse_u64("12x", kCtx, "c"), ParseError);      // trailing junk
  EXPECT_THROW(parse_u64(" 12", kCtx, "c"), ParseError);      // leading space
  EXPECT_THROW(parse_u64("-1", kCtx, "c"), ParseError);       // sign mismatch
  EXPECT_THROW(parse_i64("1e3", kCtx, "c"), ParseError);      // not an int
  EXPECT_THROW(parse_u32("4294967296", kCtx, "c"), ParseError);  // overflow
  EXPECT_THROW(parse_f64("nope", kCtx, "c"), ParseError);
  EXPECT_THROW(parse_f64("1.5zz", kCtx, "c"), ParseError);
}

TEST(CheckedParse, ErrorsNameFileLineAndColumn) {
  try {
    parse_u64("bogus", kCtx, "submit_time");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("jobs.csv"), std::string::npos) << msg;
    EXPECT_NE(msg.find("7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("submit_time"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
  }
}

TEST(CheckedParse, ParseErrorIsARuntimeError) {
  // Existing strict-mode callers catch std::runtime_error; keep that true.
  EXPECT_THROW(parse_u64("x", kCtx, "c"), std::runtime_error);
}

TEST(ParsePolicyTest, RoundTripsNames) {
  ParsePolicy policy = ParsePolicy::kStrict;
  EXPECT_TRUE(parse_parse_policy("permissive", policy));
  EXPECT_EQ(policy, ParsePolicy::kPermissive);
  EXPECT_TRUE(parse_parse_policy("strict", policy));
  EXPECT_EQ(policy, ParsePolicy::kStrict);
  EXPECT_FALSE(parse_parse_policy("lenient", policy));
  EXPECT_STREQ(to_string(ParsePolicy::kStrict), "strict");
  EXPECT_STREQ(to_string(ParsePolicy::kPermissive), "permissive");
}

TEST(LoadStatsTest, AccumulatesAcrossLoads) {
  LoadStats a;
  a.rows_ok = 10;
  a.malformed = 1;
  LoadStats b;
  b.rows_ok = 5;
  b.out_of_order = 2;
  b.duplicates = 3;
  b.quarantine_path = "x.quarantine";
  a += b;
  EXPECT_EQ(a.rows_ok, 15u);
  EXPECT_EQ(a.malformed, 1u);
  EXPECT_EQ(a.out_of_order, 2u);
  EXPECT_EQ(a.duplicates, 3u);
  EXPECT_EQ(a.quarantined(), 6u);
  EXPECT_EQ(a.quarantine_path, "x.quarantine");
}

TEST(RowQuarantineTest, WritesSidecarLazily) {
  const std::string input = ::testing::TempDir() + "/adr_q_input.csv";
  const std::string sidecar = input + ".quarantine";
  std::remove(sidecar.c_str());
  {
    RowQuarantine q(input, "");
    EXPECT_EQ(q.count(), 0u);
    EXPECT_EQ(q.sidecar_path(), "");
    q.add(3, RowQuarantine::kMalformed, "bad number", "1,2,x");
    q.add(9, RowQuarantine::kDuplicate, "seen before", "1,2,3");
    EXPECT_EQ(q.count(), 2u);
    EXPECT_EQ(q.sidecar_path(), sidecar);
    LoadStats stats;
    q.finish(&stats);
    EXPECT_EQ(stats.malformed, 1u);
    EXPECT_EQ(stats.duplicates, 1u);
    EXPECT_EQ(stats.quarantine_path, sidecar);
  }
  std::ifstream in(sidecar);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("line"), std::string::npos);  // header
  std::getline(in, line);
  EXPECT_NE(line.find("malformed"), std::string::npos);
  EXPECT_NE(line.find("bad number"), std::string::npos);
  std::remove(sidecar.c_str());
}

}  // namespace
}  // namespace adr::util
