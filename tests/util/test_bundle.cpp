#include "util/bundle.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "util/fault.hpp"
#include "util/io.hpp"

namespace adr::util::io {
namespace {

namespace fsys = std::filesystem;

class BundleTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "/adr_bundle_test_" +
                     std::to_string(::getpid());
  void SetUp() override {
    FaultInjector::global().clear();
    fsys::remove_all(dir_);
    fsys::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::global().clear();
    fsys::remove_all(dir_);
  }

  void write_member(const std::string& name, const std::string& content) {
    AtomicWriter writer(dir_ + "/" + name);
    writer.write(content);
    writer.commit();
  }
};

TEST_F(BundleTest, CommitThenVerifyIsValid) {
  write_member("a.csv", "x,y\n1,2\n");
  write_member("b.csv", "hello\n");
  commit_bundle(dir_, {"a.csv", "b.csv"});

  const BundleCheck check = verify_bundle(dir_);
  ASSERT_TRUE(check.valid()) << check.error;
  ASSERT_EQ(check.members.size(), 2u);
  EXPECT_EQ(check.members[0].name, "a.csv");
  EXPECT_EQ(check.members[0].bytes, 8u);  // payload bytes, footer stripped
  EXPECT_EQ(check.members[1].name, "b.csv");
}

TEST_F(BundleTest, NoManifestIsUnsealed) {
  write_member("a.csv", "x\n");
  const BundleCheck check = verify_bundle(dir_);
  EXPECT_EQ(check.state, BundleState::kUnsealed);
  EXPECT_TRUE(check.members.empty());
}

TEST_F(BundleTest, MissingMemberFailsCommit) {
  write_member("a.csv", "x\n");
  EXPECT_THROW(commit_bundle(dir_, {"a.csv", "ghost.csv"}),
               std::runtime_error);
  // The failed commit already dropped any manifest: visibly unsealed.
  EXPECT_EQ(verify_bundle(dir_).state, BundleState::kUnsealed);
}

TEST_F(BundleTest, RewrittenMemberInvalidatesBundle) {
  write_member("a.csv", "x,y\n1,2\n");
  commit_bundle(dir_, {"a.csv"});
  ASSERT_TRUE(verify_bundle(dir_).valid());

  write_member("a.csv", "x,y\n9,9\n");  // verifies alone, mismatches manifest
  const BundleCheck check = verify_bundle(dir_);
  EXPECT_EQ(check.state, BundleState::kInvalid);
  EXPECT_NE(check.error.find("a.csv"), std::string::npos);
}

TEST_F(BundleTest, DeletedMemberInvalidatesBundle) {
  write_member("a.csv", "x\n");
  write_member("b.csv", "y\n");
  commit_bundle(dir_, {"a.csv", "b.csv"});
  fsys::remove(dir_ + "/b.csv");
  const BundleCheck check = verify_bundle(dir_);
  EXPECT_EQ(check.state, BundleState::kInvalid);
  EXPECT_NE(check.error.find("b.csv"), std::string::npos);
}

TEST_F(BundleTest, TruncatedManifestInvalidatesBundle) {
  write_member("a.csv", "x\n");
  commit_bundle(dir_, {"a.csv"});
  // Tear the manifest's tail (footer gone -> fails require_footer).
  const std::string manifest = dir_ + "/" + kBundleManifestName;
  fsys::resize_file(manifest, fsys::file_size(manifest) / 2);
  EXPECT_EQ(verify_bundle(dir_).state, BundleState::kInvalid);
}

TEST_F(BundleTest, ResealAfterMemberChangeRestoresValidity) {
  write_member("a.csv", "v1\n");
  commit_bundle(dir_, {"a.csv"});
  write_member("a.csv", "v2\n");
  EXPECT_EQ(verify_bundle(dir_).state, BundleState::kInvalid);
  commit_bundle(dir_, {"a.csv"});
  EXPECT_TRUE(verify_bundle(dir_).valid());
}

// Old-or-new, never half: crash the commit at every registered point and
// assert the bundle is either still sealed at the OLD contents or visibly
// not-valid — a reader can never be handed a silent mix.
TEST_F(BundleTest, CrashMidCommitLeavesOldOrUnsealed) {
  const char* specs[] = {
      "bundle.member:crash@1",   "bundle.member:crash@2",
      "bundle.pre_manifest:crash@1", "io.atomic.pre_commit:crash@1",
      "io.atomic.pre_rename:crash@1",
  };
  for (const char* spec : specs) {
    SCOPED_TRACE(spec);
    SetUp();  // fresh dir per spec
    write_member("a.csv", "old-a\n");
    write_member("b.csv", "old-b\n");
    commit_bundle(dir_, {"a.csv", "b.csv"});
    ASSERT_TRUE(verify_bundle(dir_).valid());

    // "New generation": rewrite members, re-seal — crash somewhere inside.
    write_member("a.csv", "new-a\n");
    write_member("b.csv", "new-b\n");
    FaultInjector::global().configure(spec);
    EXPECT_THROW(commit_bundle(dir_, {"a.csv", "b.csv"}), CrashInjected);
    EXPECT_GE(FaultInjector::global().fired_count(), 1u);
    FaultInjector::global().clear();

    // The old manifest was dropped before any member was hashed, so the
    // crash can only leave kUnsealed (or kInvalid if a torn manifest temp
    // got renamed — not possible under the §10 protocol).
    const BundleCheck check = verify_bundle(dir_);
    EXPECT_NE(check.state, BundleState::kValid);

    // And recovery is one re-commit away.
    commit_bundle(dir_, {"a.csv", "b.csv"});
    EXPECT_TRUE(verify_bundle(dir_).valid());
  }
}

// A crash after the manifest rename is a *completed* commit.
TEST_F(BundleTest, CrashAfterRenameIsCommitted) {
  write_member("a.csv", "a\n");
  FaultInjector::global().configure("io.atomic.post_rename:crash@1");
  EXPECT_THROW(commit_bundle(dir_, {"a.csv"}), CrashInjected);
  FaultInjector::global().clear();
  EXPECT_TRUE(verify_bundle(dir_).valid());
}

}  // namespace
}  // namespace adr::util::io
