#include "util/gzfile.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace adr::util {
namespace {

class GzFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/adr_gz_test.txt.gz";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST(GzSuffix, Detection) {
  EXPECT_TRUE(has_gz_suffix("snapshot.csv.gz"));
  EXPECT_TRUE(has_gz_suffix(".gz"));
  EXPECT_FALSE(has_gz_suffix("snapshot.csv"));
  EXPECT_FALSE(has_gz_suffix("gz"));
  EXPECT_FALSE(has_gz_suffix(""));
}

TEST_F(GzFileTest, RoundTripLines) {
  {
    GzWriter w(path_);
    w.write_line("first");
    w.write_line("second,with,commas");
    w.write_line("");
    w.close();
  }
  GzReader r(path_);
  EXPECT_EQ(r.next_line(), "first");
  EXPECT_EQ(r.next_line(), "second,with,commas");
  EXPECT_EQ(r.next_line(), "");
  EXPECT_FALSE(r.next_line());
}

TEST_F(GzFileTest, OutputIsActuallyCompressed) {
  {
    GzWriter w(path_);
    // Highly repetitive content compresses well below its raw size.
    for (int i = 0; i < 1000; ++i) {
      w.write_line("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
    }
    w.close();
  }
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in);
  EXPECT_LT(in.tellg(), 5000);  // raw would be ~51000 bytes
  // And starts with the gzip magic bytes.
  in.seekg(0);
  unsigned char magic[2] = {0, 0};
  in.read(reinterpret_cast<char*>(magic), 2);
  EXPECT_EQ(magic[0], 0x1f);
  EXPECT_EQ(magic[1], 0x8b);
}

TEST_F(GzFileTest, LongLinesSpanBuffers) {
  const std::string long_line(10000, 'x');
  {
    GzWriter w(path_);
    w.write_line(long_line);
    w.write_line("tail");
    w.close();
  }
  GzReader r(path_);
  EXPECT_EQ(r.next_line(), long_line);
  EXPECT_EQ(r.next_line(), "tail");
}

TEST_F(GzFileTest, ReaderAcceptsPlainText) {
  // zlib's gzopen transparently reads uncompressed files.
  {
    std::ofstream out(path_);
    out << "plain\ntext\n";
  }
  GzReader r(path_);
  EXPECT_EQ(r.next_line(), "plain");
  EXPECT_EQ(r.next_line(), "text");
  EXPECT_FALSE(r.next_line());
}

TEST(GzFile, MissingFileThrows) {
  EXPECT_THROW(GzReader("/nonexistent/nope.gz"), std::runtime_error);
  EXPECT_THROW(GzWriter("/nonexistent/dir/nope.gz"), std::runtime_error);
}

TEST_F(GzFileTest, WriteAfterCloseThrows) {
  GzWriter w(path_);
  w.write_line("x");
  w.close();
  EXPECT_THROW(w.write_line("y"), std::runtime_error);
}

}  // namespace
}  // namespace adr::util
