#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adr::util {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t("Demo");
  t.set_headers({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumericCellsRightAligned) {
  Table t;
  t.set_headers({"k", "v"});
  t.add_row({"x", "5"});
  t.add_row({"y", "500"});
  std::ostringstream out;
  t.print(out);
  // The short number must be padded on the left to align with "500".
  EXPECT_NE(out.str().find("|   5 |"), std::string::npos);
}

TEST(Table, EmptyTablePrintsNothing) {
  Table t;
  std::ostringstream out;
  t.print(out);
  EXPECT_TRUE(out.str().empty());
}

TEST(Table, RaggedRowsPadded) {
  Table t;
  t.set_headers({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

TEST(Fmt, Double) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
}

TEST(Fmt, IntThousands) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(999), "999");
  EXPECT_EQ(fmt_int(1000), "1,000");
  EXPECT_EQ(fmt_int(1234567), "1,234,567");
  EXPECT_EQ(fmt_int(-45678), "-45,678");
}

}  // namespace
}  // namespace adr::util
