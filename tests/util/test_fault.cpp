#include "util/fault.hpp"

#include <gtest/gtest.h>

namespace adr::util {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().clear(); }
  void TearDown() override { FaultInjector::global().clear(); }
};

TEST_F(FaultInjectorTest, UnarmedByDefault) {
  auto& inj = FaultInjector::global();
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.should_fail("io.atomic.open"));
  EXPECT_NO_THROW(inj.crash_point("io.atomic.pre_rename"));
  const auto d = inj.on_write("io.atomic.write", 0, 100);
  EXPECT_EQ(d.allow, 100u);
  EXPECT_FALSE(d.fail);
}

TEST_F(FaultInjectorTest, FailFiresFromNthHitOn) {
  auto& inj = FaultInjector::global();
  inj.configure("gz.open:fail@3");
  EXPECT_FALSE(inj.should_fail("gz.open"));
  EXPECT_FALSE(inj.should_fail("gz.open"));
  EXPECT_TRUE(inj.should_fail("gz.open"));   // 3rd call
  EXPECT_TRUE(inj.should_fail("gz.open"));   // stays broken
  EXPECT_FALSE(inj.should_fail("gz.close")); // other points untouched
  EXPECT_EQ(inj.fired_count(), 1u);
}

TEST_F(FaultInjectorTest, CrashThrowsAndLatchesCrashedFlag) {
  auto& inj = FaultInjector::global();
  inj.configure("io.atomic.pre_rename:crash");
  EXPECT_FALSE(inj.crashed());
  EXPECT_THROW(inj.crash_point("io.atomic.pre_rename"), CrashInjected);
  EXPECT_TRUE(inj.crashed());
  try {
    inj.configure("io.atomic.pre_rename:crash");
    inj.crash_point("io.atomic.pre_rename");
  } catch (const CrashInjected& e) {
    EXPECT_EQ(e.point(), "io.atomic.pre_rename");
  }
}

TEST_F(FaultInjectorTest, ShortWriteTruncatesAtByteBudget) {
  auto& inj = FaultInjector::global();
  inj.configure("io.atomic.write:short@10");
  auto d = inj.on_write("io.atomic.write", 0, 8);
  EXPECT_EQ(d.allow, 8u);   // under budget
  EXPECT_FALSE(d.fail);
  d = inj.on_write("io.atomic.write", 8, 8);  // crosses byte 10
  EXPECT_EQ(d.allow, 2u);
  EXPECT_TRUE(d.fail);
  EXPECT_FALSE(d.enospc);
  d = inj.on_write("io.atomic.write", 16, 8);  // keeps failing
  EXPECT_EQ(d.allow, 0u);
  EXPECT_TRUE(d.fail);
}

TEST_F(FaultInjectorTest, EnospcIsSurfacedAsSuch) {
  auto& inj = FaultInjector::global();
  inj.configure("gz.write:enospc@4");
  const auto d = inj.on_write("gz.write", 0, 10);
  EXPECT_EQ(d.allow, 4u);
  EXPECT_TRUE(d.fail);
  EXPECT_TRUE(d.enospc);
}

TEST_F(FaultInjectorTest, MultipleDirectivesParse) {
  auto& inj = FaultInjector::global();
  inj.configure("io.atomic.open:fail; csv.row:crash@5 ;gz.write:short@100");
  EXPECT_TRUE(inj.armed());
  EXPECT_TRUE(inj.should_fail("io.atomic.open"));
}

TEST_F(FaultInjectorTest, ClearDisarms) {
  auto& inj = FaultInjector::global();
  inj.configure("io.atomic.open:fail");
  EXPECT_TRUE(inj.armed());
  inj.clear();
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.should_fail("io.atomic.open"));
}

TEST_F(FaultInjectorTest, BadSpecsThrowInvalidArgument) {
  auto& inj = FaultInjector::global();
  EXPECT_THROW(inj.configure("no-colon"), std::invalid_argument);
  EXPECT_THROW(inj.configure("p:badaction"), std::invalid_argument);
  EXPECT_THROW(inj.configure("p:fail@x"), std::invalid_argument);
  EXPECT_THROW(inj.configure("p:fail?1.5"), std::invalid_argument);
  EXPECT_THROW(inj.configure("p:fail@0"), std::invalid_argument);
  EXPECT_FALSE(inj.armed());  // a failed configure leaves it disarmed
}

TEST_F(FaultInjectorTest, ProbabilityIsDeterministicGivenSeed) {
  auto& inj = FaultInjector::global();
  const auto run = [&](std::uint64_t seed) {
    inj.configure("p:fail?0.5", seed);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      // Re-arm each trial: a fired fail directive stays failed.
      inj.configure("p:fail?0.5", seed + static_cast<std::uint64_t>(i));
      pattern.push_back(inj.should_fail("p") ? '1' : '0');
    }
    return pattern;
  };
  const std::string a = run(1234);
  const std::string b = run(1234);
  EXPECT_EQ(a, b);                       // deterministic replay
  EXPECT_NE(a.find('1'), std::string::npos);  // both outcomes occur
  EXPECT_NE(a.find('0'), std::string::npos);
  inj.clear();
}

}  // namespace
}  // namespace adr::util
