#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adr::util {
namespace {

TEST(CsvSplit, Plain) {
  const auto f = csv_split("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvSplit, EmptyFields) {
  const auto f = csv_split(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& s : f) EXPECT_TRUE(s.empty());
}

TEST(CsvSplit, QuotedWithSeparator) {
  const auto f = csv_split("\"a,b\",c");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
}

TEST(CsvSplit, EscapedQuotes) {
  const auto f = csv_split("\"he said \"\"hi\"\"\",x");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "he said \"hi\"");
}

TEST(CsvSplit, ToleratesTrailingCarriageReturn) {
  const auto f = csv_split("a,b\r");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "b");
}

TEST(CsvJoin, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_join({"a", "b"}), "a,b");
  EXPECT_EQ(csv_join({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(csv_join({"say \"hi\""}), "\"say \"\"hi\"\"\"");
}

TEST(CsvRoundTrip, SplitInvertsJoin) {
  const std::vector<std::string> fields{"plain", "with,comma", "with\"quote",
                                        "", "path/with/slashes"};
  EXPECT_EQ(csv_split(csv_join(fields)), fields);
}

TEST(CsvReader, HeaderAndRows) {
  std::istringstream in("user,name\n0,alice\n1,bob\n");
  CsvReader r(in);
  ASSERT_TRUE(r.read_header());
  EXPECT_EQ(r.column("user"), 0u);
  EXPECT_EQ(r.column("name"), 1u);
  EXPECT_EQ(r.column("missing"), CsvReader::npos);
  auto row = r.next();
  ASSERT_TRUE(row);
  EXPECT_EQ((*row)[1], "alice");
  row = r.next();
  ASSERT_TRUE(row);
  EXPECT_EQ((*row)[1], "bob");
  EXPECT_FALSE(r.next());
}

TEST(CsvReader, SkipsBlankLines) {
  std::istringstream in("a\n\n\nb\n");
  CsvReader r(in);
  EXPECT_EQ((*r.next())[0], "a");
  EXPECT_EQ((*r.next())[0], "b");
  EXPECT_FALSE(r.next());
}

TEST(CsvReader, EmptyInput) {
  std::istringstream in("");
  CsvReader r(in);
  EXPECT_FALSE(r.read_header());
}

TEST(CsvWriter, WritesRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"x", "y"});
  w.write_row({"1", "hello,world"});
  EXPECT_EQ(out.str(), "x,y\n1,\"hello,world\"\n");
}

TEST(Csv, CustomSeparator) {
  const auto f = csv_split("a|b|c", '|');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(csv_join({"a", "b"}, '|'), "a|b");
}

}  // namespace
}  // namespace adr::util
