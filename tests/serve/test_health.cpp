// Watchdog + degradation ladder tests (DESIGN.md §14.2): the HealthMonitor
// unit contract, and the Daemon-level behaviours — a slow phase degrades
// the daemon (which keeps answering with byte-identical output), persistent
// breaches defer triggers instead of killing the loop, recovery steps back
// down one rung per quiet streak, and `ctl status` exposes it all.

#include "serve/health.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/service.hpp"
#include "serve/daemon.hpp"
#include "trace/event_log.hpp"
#include "util/config.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace adr::serve {
namespace {

namespace fsys = std::filesystem;

constexpr util::TimePoint kBase = 1'600'000'000;
constexpr std::size_t kUsers = 6;

// ---- HealthMonitor unit contract ------------------------------------------

WatchdogConfig ladder_config() {
  WatchdogConfig config;
  config.trigger_deadline_ms = 10;
  config.degrade_after = 1;
  config.overload_after = 2;
  config.recover_after = 2;
  config.defer_backoff = {.max_attempts = 1 << 20,
                          .initial_delay_ms = 50.0,
                          .multiplier = 2.0,
                          .max_delay_ms = 2000.0,
                          .jitter = 0.0};
  return config;
}

TEST(HealthMonitorTest, LadderStepsUpUnderConsecutiveBreaches) {
  HealthMonitor health(ladder_config());
  EXPECT_EQ(health.state(), HealthState::kOk);

  EXPECT_TRUE(health.observe_phase("evaluate", 50.0));
  EXPECT_EQ(health.state(), HealthState::kDegraded);  // degrade_after = 1

  // overload_after = 2 *consecutive* breaches while degraded.
  EXPECT_TRUE(health.observe_phase("evaluate", 50.0));
  EXPECT_EQ(health.state(), HealthState::kDegraded);
  EXPECT_TRUE(health.observe_phase("purge", 50.0));
  EXPECT_EQ(health.state(), HealthState::kOverloaded);
  EXPECT_EQ(health.breaches(), 3u);
}

TEST(HealthMonitorTest, RecoversOneRungPerQuietStreak) {
  HealthMonitor health(ladder_config());
  for (int i = 0; i < 3; ++i) health.observe_phase("evaluate", 50.0);
  ASSERT_EQ(health.state(), HealthState::kOverloaded);

  // recover_after = 2 consecutive in-deadline phases per rung.
  health.observe_phase("evaluate", 1.0);
  EXPECT_EQ(health.state(), HealthState::kOverloaded);
  health.observe_phase("evaluate", 1.0);
  EXPECT_EQ(health.state(), HealthState::kDegraded);
  health.observe_phase("purge", 1.0);
  health.observe_phase("purge", 1.0);
  EXPECT_EQ(health.state(), HealthState::kOk);

  // A breach mid-streak resets the quiet counter.
  for (int i = 0; i < 1; ++i) health.observe_phase("evaluate", 50.0);
  ASSERT_EQ(health.state(), HealthState::kDegraded);
  health.observe_phase("evaluate", 1.0);
  health.observe_phase("evaluate", 50.0);  // breach resets the streak
  health.observe_phase("evaluate", 1.0);
  EXPECT_EQ(health.state(), HealthState::kDegraded);
  health.observe_phase("evaluate", 1.0);
  EXPECT_EQ(health.state(), HealthState::kOk);
}

TEST(HealthMonitorTest, DisabledDeadlineObservesWithoutTransitions) {
  WatchdogConfig config;  // trigger_deadline_ms = 0: watchdog off
  HealthMonitor health(config);
  EXPECT_FALSE(health.observe_phase("evaluate", 1e9));
  EXPECT_EQ(health.state(), HealthState::kOk);
  EXPECT_EQ(health.breaches(), 0u);
  EXPECT_EQ(health.transitions(), 0u);
}

TEST(HealthMonitorTest, DrainingIsTerminal) {
  HealthMonitor health(ladder_config());
  health.begin_drain();
  ASSERT_EQ(health.state(), HealthState::kDraining);
  // Breaches and quiet phases are still recorded, but the state is final.
  EXPECT_TRUE(health.observe_phase("checkpoint", 50.0));
  EXPECT_EQ(health.state(), HealthState::kDraining);
  for (int i = 0; i < 4; ++i) health.observe_phase("checkpoint", 1.0);
  EXPECT_EQ(health.state(), HealthState::kDraining);
}

TEST(HealthMonitorTest, DeferDelayGrowsExponentiallyAndResetsOnRecovery) {
  HealthMonitor health(ladder_config());  // jitter 0: exact schedule
  EXPECT_DOUBLE_EQ(health.defer_delay_ms(), 50.0);
  EXPECT_DOUBLE_EQ(health.defer_delay_ms(), 100.0);
  EXPECT_DOUBLE_EQ(health.defer_delay_ms(), 200.0);

  // A completed recovery streak resets the deferral run.
  for (int i = 0; i < 3; ++i) health.observe_phase("evaluate", 50.0);
  for (int i = 0; i < 6; ++i) health.observe_phase("evaluate", 1.0);
  ASSERT_EQ(health.state(), HealthState::kOk);
  EXPECT_DOUBLE_EQ(health.defer_delay_ms(), 50.0);
}

// ---- Daemon-level behaviour ------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Small mixed history: per-user job bursts plus a few files so triggers
/// have something to rank and purge.
std::vector<trace::Event> make_history() {
  std::vector<trace::Event> events;
  const auto day = util::days(1);
  for (std::size_t u = 0; u < kUsers; ++u) {
    for (std::size_t f = 0; f < 2; ++f) {
      trace::Event e;
      e.kind = trace::EventKind::kCreate;
      e.user = static_cast<trace::UserId>(u);
      e.timestamp = kBase + static_cast<util::Duration>(u * 2 + f) * day / 4;
      e.path = "/scratch/user_" + std::to_string(u) + "/f" +
               std::to_string(f) + ".dat";
      e.size_bytes = 1000 + u * 100 + f;
      e.stripe_count = 4;
      events.push_back(e);
    }
    const int bursts = static_cast<int>(kUsers - u);
    for (int b = 0; b < bursts; ++b) {
      trace::Event job;
      job.kind = trace::EventKind::kJob;
      job.user = static_cast<trace::UserId>(u);
      job.timestamp = kBase + static_cast<util::Duration>(b * 9 + 1) * day +
                      static_cast<util::Duration>(u);
      job.impact = 120.0 * (b + 1) + static_cast<double>(u) * 0.25;
      events.push_back(job);
    }
  }
  return events;
}

core::ServiceConfig service_config() {
  core::ServiceConfig config;
  config.lifetime_days = 30;
  config.eval_shards = 1;
  config.record_victims = true;
  return config;
}

class DaemonHealthTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "/adr_health_test_" +
                     std::to_string(::getpid());
  util::TimePoint now_ = kBase + util::days(70);

  void SetUp() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
    fsys::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
  }

  std::string wal(const std::string& tag) { return dir_ + "/" + tag + "/wal"; }
  std::string state(const std::string& tag) {
    return dir_ + "/" + tag + "/state";
  }

  void write_wal(const std::string& tag,
                 const std::vector<trace::Event>& events) {
    fsys::create_directories(wal(tag));
    trace::EventLogWriter writer(wal(tag));
    for (const auto& event : events) writer.append(event);
  }

  DaemonOptions daemon_options(const std::string& tag) {
    DaemonOptions options;
    options.wal_dir = wal(tag);
    options.state_dir = state(tag);
    options.service = service_config();
    options.checkpoint_every_events = 0;
    options.metrics_every_ticks = 0;
    return options;
  }

  /// Drop a .cmd, run one tick, return the reply (asserts it arrived).
  util::Config ctl(Daemon& daemon, const std::string& name,
                   const std::vector<std::pair<std::string, std::string>>&
                       entries) {
    drop_cmd(daemon, name, entries);
    daemon.tick();
    const std::string out_path = daemon.ctl_dir() + "/" + name + ".out";
    EXPECT_TRUE(fsys::exists(out_path)) << name << ": no reply";
    util::Config reply = util::Config::from_file(out_path);
    fsys::remove(out_path);
    return reply;
  }

  void drop_cmd(Daemon& daemon, const std::string& name,
                const std::vector<std::pair<std::string, std::string>>&
                    entries) {
    if (!daemon.started()) daemon.start();
    const std::string cmd_path = daemon.ctl_dir() + "/" + name + ".cmd";
    util::io::AtomicWriter writer(cmd_path, {.fsync = false, .footer = false});
    for (const auto& [key, value] : entries) {
      writer.write_line(key + " = " + value);
    }
    writer.commit();
  }
};

TEST_F(DaemonHealthTest, SlowPhaseDegradesDaemonButOutputStaysIdentical) {
  const std::string tag = "degrade";
  write_wal(tag, make_history());

  // Cold reference: same WAL, same trigger arithmetic, no watchdog.
  std::string cold_ranks, cold_victims;
  {
    core::Service service(trace::UserRegistry::with_synthetic_users(kUsers),
                          service_config());
    service.register_paper_types();
    trace::EventLogReader reader(wal(tag));
    for (const auto& event : reader.read_after(0)) service.apply(event);
    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(service.vfs().total_bytes()) * 0.5);
    const auto report = service.purge(now_, target);
    const std::string path = dir_ + "/cold_ranks.csv";
    service.ranks().save_csv(path);
    cold_ranks = slurp(path);
    for (const auto& p : report.victim_paths) cold_victims += p + "\n";
    ASSERT_FALSE(cold_victims.empty());
  }

  DaemonOptions options = daemon_options(tag);
  options.watchdog.trigger_deadline_ms = 1;
  options.watchdog.degrade_after = 1;
  options.watchdog.overload_after = 1000;  // stay on the first rung
  options.watchdog.recover_after = 1000;
  Daemon daemon(trace::UserRegistry::with_synthetic_users(kUsers), options);
  daemon.start();

  // A stalled evaluate phase breaches the 1 ms deadline -> degraded.
  util::FaultInjector::global().configure("service.evaluate:stall@15");
  const util::Config eval = ctl(daemon, "slow_eval",
                                {{"cmd", "evaluate"},
                                 {"now", std::to_string(now_ - 1)}});
  EXPECT_EQ(eval.get_string("ok", ""), "true");
  EXPECT_EQ(daemon.health().state(), HealthState::kDegraded);
  EXPECT_TRUE(daemon.service().degraded());
  util::FaultInjector::global().clear();

  const util::Config status = ctl(daemon, "st", {{"cmd", "status"}});
  EXPECT_EQ(status.get_string("health", ""), "degraded");
  EXPECT_GE(status.get_int("watchdog_breaches", 0), 1);

  // Degraded = incremental evaluation pinned; the trigger still answers
  // with byte-identical ranks and victims.
  const std::string ranks_path = dir_ + "/warm_ranks.csv";
  const std::string victims_path = dir_ + "/warm_victims.txt";
  const util::Config reply = ctl(daemon, "trig",
                                 {{"cmd", "trigger"},
                                  {"now", std::to_string(now_)},
                                  {"retain", "0.5"},
                                  {"ranks_out", ranks_path},
                                  {"victims_out", victims_path}});
  EXPECT_EQ(reply.get_string("ok", ""), "true");
  EXPECT_EQ(slurp(ranks_path), cold_ranks);
  EXPECT_EQ(slurp(victims_path), cold_victims);
}

TEST_F(DaemonHealthTest, OverloadedDaemonDefersTriggersThenRecovers) {
  const std::string tag = "defer";
  write_wal(tag, make_history());

  DaemonOptions options = daemon_options(tag);
  options.watchdog.trigger_deadline_ms = 1;
  options.watchdog.degrade_after = 1;
  options.watchdog.overload_after = 1;
  options.watchdog.recover_after = 1;
  options.watchdog.defer_backoff = {.max_attempts = 1 << 20,
                                    .initial_delay_ms = 30.0,
                                    .multiplier = 1.0,
                                    .max_delay_ms = 30.0,
                                    .jitter = 0.0};
  Daemon daemon(trace::UserRegistry::with_synthetic_users(kUsers), options);
  daemon.start();

  // Two stalled phases (distinct `now`s so the eval cache doesn't absorb
  // the second one): degraded, then overloaded.
  util::FaultInjector::global().configure("service.evaluate:stall@10");
  ctl(daemon, "s1", {{"cmd", "evaluate"}, {"now", std::to_string(now_ - 2)}});
  EXPECT_EQ(daemon.health().state(), HealthState::kDegraded);
  ctl(daemon, "s2", {{"cmd", "evaluate"}, {"now", std::to_string(now_ - 1)}});
  EXPECT_EQ(daemon.health().state(), HealthState::kOverloaded);
  util::FaultInjector::global().clear();

  // While the deferral window is armed, a trigger command is left in
  // place: no reply, no work, and the daemon keeps ticking.
  drop_cmd(daemon, "deferred",
           {{"cmd", "evaluate"}, {"now", std::to_string(now_)}});
  daemon.tick();
  const std::string cmd_path = daemon.ctl_dir() + "/deferred.cmd";
  const std::string out_path = daemon.ctl_dir() + "/deferred.out";
  EXPECT_TRUE(fsys::exists(cmd_path)) << "deferred command was consumed";
  EXPECT_FALSE(fsys::exists(out_path));

  // status/stop verbs are never deferred.
  const util::Config status = ctl(daemon, "st", {{"cmd", "status"}});
  EXPECT_EQ(status.get_string("health", ""), "overloaded");

  // Once the window passes (30 ms, jitter 0) the command runs; the phase
  // is fast now, so each quiet phase steps the ladder down one rung.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  daemon.tick();
  ASSERT_TRUE(fsys::exists(out_path)) << "deferred command never ran";
  const util::Config reply = util::Config::from_file(out_path);
  EXPECT_EQ(reply.get_string("ok", ""), "true");
  EXPECT_EQ(daemon.health().state(), HealthState::kDegraded);

  ctl(daemon, "s3", {{"cmd", "evaluate"}, {"now", std::to_string(now_ + 1)}});
  EXPECT_EQ(daemon.health().state(), HealthState::kOk);
  EXPECT_FALSE(daemon.service().degraded());
}

TEST_F(DaemonHealthTest, StatusReportsQueueDepthAndSpillReplayLandsEverything) {
  const std::string tag = "spill";
  write_wal(tag, make_history());

  DaemonOptions options = daemon_options(tag);
  options.ingest_queue_cap = 2;
  options.backpressure = activeness::BackpressurePolicy::kSpill;
  Daemon daemon(trace::UserRegistry::with_synthetic_users(kUsers), options);
  daemon.start();

  // Flood past the cap: 2 queued, the rest spilled to the WAL-backed
  // overflow segment.
  auto& store = daemon.service().store();
  for (int i = 0; i < 6; ++i) {
    store.enqueue(static_cast<trace::UserId>(i % kUsers),
                  core::kJobActivityType,
                  activeness::Activity{now_ - 100 + i, 10.0 * (i + 1)});
  }
  EXPECT_EQ(store.pending_ingest(), 2u);
  EXPECT_EQ(store.spilled_count(), 4u);

  const util::Config status = ctl(daemon, "st", {{"cmd", "status"}});
  EXPECT_EQ(status.get_string("health", ""), "ok");
  EXPECT_GE(status.get_int("wal_segments", 0), 1);
  EXPECT_EQ(status.get_int("shed_events", -1), 0);
  EXPECT_GE(status.get_int("spilled_events", 0), 4);
  EXPECT_GE(status.get_int("ingest_depth_high_water", 0), 2);
  EXPECT_FALSE(status.get_string("ingest_pending_per_shard", "").empty());

  // Evaluate rounds drain the queues; tick() replays the spill segment
  // once pressure clears. A few rounds land every spilled event.
  for (int round = 0; round < 6; ++round) {
    ctl(daemon, "ev" + std::to_string(round),
        {{"cmd", "evaluate"}, {"now", std::to_string(now_ - 5 + round)}});
    daemon.tick();
  }
  EXPECT_EQ(store.pending_ingest(), 0u);

  // Identity check: a reference service fed the same six events directly
  // ranks identically — nothing was lost or duplicated in the spill loop.
  const std::string warm_path = dir_ + "/spill_ranks.csv";
  const util::Config reply = ctl(daemon, "final",
                                 {{"cmd", "evaluate"},
                                  {"now", std::to_string(now_)},
                                  {"ranks_out", warm_path}});
  EXPECT_EQ(reply.get_string("ok", ""), "true");

  core::Service reference(trace::UserRegistry::with_synthetic_users(kUsers),
                          service_config());
  reference.register_paper_types();
  trace::EventLogReader reader(wal(tag));
  for (const auto& event : reader.read_after(0)) reference.apply(event);
  for (int i = 0; i < 6; ++i) {
    reference.store().append(static_cast<trace::UserId>(i % kUsers),
                             core::kJobActivityType,
                             activeness::Activity{now_ - 100 + i,
                                                  10.0 * (i + 1)});
  }
  reference.evaluate(now_);
  const std::string ref_path = dir_ + "/ref_ranks.csv";
  reference.ranks().save_csv(ref_path);
  EXPECT_EQ(slurp(warm_path), slurp(ref_path));
}

TEST_F(DaemonHealthTest, TransientCheckpointFaultIsAbsorbedWithoutDowngrade) {
  const std::string tag = "retry";
  write_wal(tag, make_history());

  DaemonOptions options = daemon_options(tag);
  options.watchdog.trigger_deadline_ms = 5000;  // watchdog armed, generous
  options.io_retry = {.max_attempts = 3,
                      .initial_delay_ms = 0.0,
                      .max_delay_ms = 0.0};
  Daemon daemon(trace::UserRegistry::with_synthetic_users(kUsers), options);
  daemon.start();
  daemon.tick();

  // The first two temp-file opens fail (a transient burst), then clear:
  // the §14.3 retry wrapper absorbs it inside the checkpoint command. The
  // fault is armed only after the .cmd drop (the drop itself is IO too).
  drop_cmd(daemon, "ckpt", {{"cmd", "checkpoint"}});
  util::FaultInjector::global().configure("io.atomic.open:flaky@2");
  daemon.tick();
  util::FaultInjector::global().clear();
  const std::string out_path = daemon.ctl_dir() + "/ckpt.out";
  ASSERT_TRUE(fsys::exists(out_path));
  const util::Config reply = util::Config::from_file(out_path);
  EXPECT_EQ(reply.get_string("ok", ""), "true");
  EXPECT_FALSE(reply.get_string("dir", "").empty());
  EXPECT_EQ(daemon.health().state(), HealthState::kOk);

  // The retried checkpoint is a valid bundle: a fresh daemon restores it.
  Daemon restarted(trace::UserRegistry::with_synthetic_users(kUsers),
                   daemon_options(tag));
  restarted.start();
  EXPECT_EQ(restarted.service().last_applied_seq(),
            daemon.service().last_applied_seq());
}

TEST_F(DaemonHealthTest, TornCommandFileNeverAbortsTheServeLoop) {
  const std::string tag = "torn";
  write_wal(tag, make_history());
  Daemon daemon(trace::UserRegistry::with_synthetic_users(kUsers),
                daemon_options(tag));
  daemon.start();

  // A half-written command drop: no "cmd =" line, trailing garbage — the
  // daemon must answer ok = false and keep serving.
  const std::string cmd_path = daemon.ctl_dir() + "/halfwrite.cmd";
  {
    std::ofstream out(cmd_path, std::ios::binary);
    out << "cm";  // torn mid-key
  }
  EXPECT_TRUE(daemon.tick());
  const std::string out_path = daemon.ctl_dir() + "/halfwrite.out";
  ASSERT_TRUE(fsys::exists(out_path));
  EXPECT_FALSE(fsys::exists(cmd_path)) << "torn command not consumed";
  const util::Config reply = util::Config::from_file(out_path);
  EXPECT_EQ(reply.get_string("ok", ""), "false");
  fsys::remove(out_path);

  // An unknown verb likewise: error reply, loop alive.
  const util::Config unknown = ctl(daemon, "nope", {{"cmd", "frobnicate"}});
  EXPECT_EQ(unknown.get_string("ok", ""), "false");
  EXPECT_FALSE(unknown.get_string("error", "").empty());

  // And the next valid command still answers.
  const util::Config status = ctl(daemon, "after", {{"cmd", "status"}});
  EXPECT_EQ(status.get_string("ok", ""), "true");
}

TEST_F(DaemonHealthTest, StopFlagMidStreamFinishesPhaseSealsWalAndCheckpoints) {
  const std::string tag = "sigstop";
  write_wal(tag, make_history());

  std::atomic<bool> stop{false};
  DaemonOptions options = daemon_options(tag);
  options.stop_flag = &stop;
  options.checkpoint_every_events = 0;  // only the shutdown checkpoint
  Daemon daemon(trace::UserRegistry::with_synthetic_users(kUsers), options);
  daemon.start();
  daemon.tick();

  // The flag is raised mid-stream (as the SIGINT/SIGTERM handler would):
  // run() must finish the in-flight tick, seal the WAL, write the final
  // checkpoint, and exit 0 — never abandon in-flight work.
  stop.store(true);
  EXPECT_EQ(daemon.run(), 0);
  EXPECT_EQ(daemon.health().state(), HealthState::kDraining);

  // WAL sealed: no .open segment remains.
  std::size_t open_segments = 0, sealed_segments = 0;
  for (const auto& entry : fsys::directory_iterator(wal(tag))) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".open")) ++open_segments;
    if (name.ends_with(".seg")) ++sealed_segments;
  }
  EXPECT_EQ(open_segments, 0u);
  EXPECT_GE(sealed_segments, 1u);

  // Final checkpoint restores to the exact same applied seq.
  Daemon restarted(trace::UserRegistry::with_synthetic_users(kUsers),
                   daemon_options(tag));
  restarted.start();
  EXPECT_EQ(restarted.service().last_applied_seq(),
            daemon.service().last_applied_seq());
  EXPECT_GT(restarted.service().last_applied_seq(), 0u);
}

}  // namespace
}  // namespace adr::serve
