#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/service.hpp"
#include "trace/event_log.hpp"
#include "util/bundle.hpp"
#include "util/config.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace adr::serve {
namespace {

namespace fsys = std::filesystem;

constexpr util::TimePoint kBase = 1'600'000'000;
constexpr std::size_t kUsers = 6;
constexpr double kRetain = 0.5;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Mixed history: creates with distinct atimes (PurgeIndex breaks equal-atime
/// ties by interning order, which is not part of the identity contract), job
/// activity falling off with user id, a couple of publications and accesses.
std::vector<trace::Event> make_history() {
  std::vector<trace::Event> events;
  const auto day = util::days(1);
  for (std::size_t u = 0; u < kUsers; ++u) {
    for (std::size_t f = 0; f < 3; ++f) {
      trace::Event e;
      e.kind = trace::EventKind::kCreate;
      e.user = static_cast<trace::UserId>(u);
      e.timestamp = kBase + static_cast<util::Duration>(u * 3 + f) * day / 4;
      e.path = "/scratch/user_" + std::to_string(u) + "/f" +
               std::to_string(f) + ".dat";
      e.size_bytes = 1000 + u * 100 + f;
      e.stripe_count = 4;
      events.push_back(e);
    }
  }
  for (std::size_t u = 0; u < kUsers; ++u) {
    const int bursts = static_cast<int>(kUsers - u);
    for (int b = 0; b < bursts; ++b) {
      trace::Event job;
      job.kind = trace::EventKind::kJob;
      job.user = static_cast<trace::UserId>(u);
      job.timestamp = kBase + static_cast<util::Duration>(b * 9 + 1) * day +
                      static_cast<util::Duration>(u);
      job.impact = 120.0 * (b + 1) + static_cast<double>(u) * 0.25;
      events.push_back(job);
    }
    if (u % 3 == 0) {
      trace::Event pub;
      pub.kind = trace::EventKind::kPublication;
      pub.user = static_cast<trace::UserId>(u);
      pub.timestamp = kBase + 20 * day + static_cast<util::Duration>(u);
      pub.impact = 8.0 + static_cast<double>(u);
      events.push_back(pub);
    }
    if (u % 2 == 0) {
      trace::Event access;
      access.kind = trace::EventKind::kAccess;
      access.user = static_cast<trace::UserId>(u);
      access.timestamp = kBase + 55 * day + static_cast<util::Duration>(u);
      access.path = "/scratch/user_" + std::to_string(u) + "/f0.dat";
      events.push_back(access);
    }
  }
  return events;
}

core::ServiceConfig service_config(std::size_t shards) {
  core::ServiceConfig config;
  config.lifetime_days = 30;
  config.eval_shards = shards;
  config.record_victims = true;
  return config;
}

struct ColdResult {
  std::string ranks;         // rank CSV bytes
  std::string victims;       // one path per line, as the daemon writes them
  std::uint64_t purged_bytes = 0;
};

class DaemonTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "/adr_daemon_test_" +
                     std::to_string(::getpid());
  util::TimePoint now_ = kBase + util::days(70);

  void SetUp() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
    fsys::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
  }

  std::string wal(const std::string& tag) { return dir_ + "/" + tag + "/wal"; }
  std::string state(const std::string& tag) {
    return dir_ + "/" + tag + "/state";
  }

  void write_wal(const std::string& tag,
                 const std::vector<trace::Event>& events) {
    fsys::create_directories(wal(tag));
    trace::EventLogWriter writer(wal(tag));
    for (const auto& event : events) writer.append(event);
  }

  DaemonOptions daemon_options(const std::string& tag, std::size_t shards) {
    DaemonOptions options;
    options.wal_dir = wal(tag);
    options.state_dir = state(tag);
    options.service = service_config(shards);
    options.checkpoint_every_events = 0;  // tests drive cadence explicitly
    options.metrics_every_ticks = 0;
    return options;
  }

  Daemon make_daemon(const std::string& tag, std::size_t shards) {
    return Daemon(trace::UserRegistry::with_synthetic_users(kUsers),
                  daemon_options(tag, shards));
  }

  /// A cold one-shot run over the tag's full WAL with the daemon's exact
  /// trigger arithmetic — the identity reference.
  ColdResult cold_reference(const std::string& tag, std::size_t shards) {
    core::Service service(trace::UserRegistry::with_synthetic_users(kUsers),
                          service_config(shards));
    service.register_paper_types();
    trace::EventLogReader reader(wal(tag));
    for (const auto& event : reader.read_after(0)) service.apply(event);
    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(service.vfs().total_bytes()) * (1.0 - kRetain));
    const auto report = service.purge(now_, target);
    const std::string ranks_path = dir_ + "/cold_ranks_" + tag + ".csv";
    service.ranks().save_csv(ranks_path);
    ColdResult cold;
    cold.ranks = slurp(ranks_path);
    for (const auto& path : report.victim_paths) cold.victims += path + "\n";
    cold.purged_bytes = report.purged_bytes;
    return cold;
  }

  /// Drop a .cmd into the daemon's ctl dir, run one tick, read the reply.
  util::Config ctl(Daemon& daemon, const std::string& name,
                   const std::vector<std::pair<std::string, std::string>>&
                       entries) {
    if (!daemon.started()) daemon.start();  // ctl dir exists after start()
    const std::string cmd_path = daemon.ctl_dir() + "/" + name + ".cmd";
    util::io::AtomicWriter writer(cmd_path, {.fsync = false, .footer = false});
    for (const auto& [key, value] : entries) {
      writer.write_line(key + " = " + value);
    }
    writer.commit();
    daemon.tick();
    const std::string out_path = daemon.ctl_dir() + "/" + name + ".out";
    EXPECT_TRUE(fsys::exists(out_path)) << name << ": no reply";
    EXPECT_FALSE(fsys::exists(cmd_path)) << name << ": .cmd not consumed";
    util::Config reply = util::Config::from_file(out_path);
    fsys::remove(out_path);
    return reply;
  }

  /// Trigger a purge through the control interface; returns the on-disk
  /// ranks/victims bytes plus the reply.
  std::tuple<std::string, std::string, util::Config> trigger(
      Daemon& daemon, const std::string& tag) {
    const std::string ranks_path = dir_ + "/warm_ranks_" + tag + ".csv";
    const std::string victims_path = dir_ + "/warm_victims_" + tag + ".txt";
    util::Config reply = ctl(daemon, "trig_" + tag,
                             {{"cmd", "trigger"},
                              {"now", std::to_string(now_)},
                              {"retain", std::to_string(kRetain)},
                              {"ranks_out", ranks_path},
                              {"victims_out", victims_path}});
    return {slurp(ranks_path), slurp(victims_path), std::move(reply)};
  }
};

TEST_F(DaemonTest, WarmTriggerMatchesColdOneShot) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const std::string tag = "warm" + std::to_string(shards);
    SCOPED_TRACE(tag);
    write_wal(tag, make_history());
    const ColdResult cold = cold_reference(tag, shards);
    ASSERT_FALSE(cold.victims.empty());

    Daemon daemon = make_daemon(tag, shards);
    daemon.start();
    const auto [ranks, victims, reply] = trigger(daemon, tag);
    EXPECT_EQ(reply.get_string("ok", ""), "true");
    EXPECT_EQ(reply.get_int("purged_bytes", 0),
              static_cast<std::int64_t>(cold.purged_bytes));
    EXPECT_EQ(ranks, cold.ranks);
    EXPECT_EQ(victims, cold.victims);
  }
}

TEST_F(DaemonTest, EvaluateStatusAndErrorReplies) {
  const std::string tag = "ctl";
  const auto events = make_history();
  write_wal(tag, events);
  Daemon daemon = make_daemon(tag, 2);

  const util::Config eval = ctl(daemon, "a_eval",
                                {{"cmd", "evaluate"},
                                 {"now", std::to_string(now_)}});
  EXPECT_EQ(eval.get_string("ok", ""), "true");
  std::int64_t grouped = 0;
  for (int g = 1; g <= 4; ++g) {
    grouped += eval.get_int("g" + std::to_string(g), 0);
  }
  EXPECT_EQ(grouped, static_cast<std::int64_t>(kUsers));

  const util::Config status = ctl(daemon, "b_status", {{"cmd", "status"}});
  EXPECT_EQ(status.get_string("ok", ""), "true");
  EXPECT_EQ(status.get_int("events_applied", -1),
            static_cast<std::int64_t>(events.size()));
  EXPECT_EQ(status.get_int("applied_seq", -1),
            static_cast<std::int64_t>(events.size()));

  const util::Config bogus = ctl(daemon, "c_bogus", {{"cmd", "frobnicate"}});
  EXPECT_EQ(bogus.get_string("ok", ""), "false");
  EXPECT_NE(bogus.get_string("error", "").find("frobnicate"),
            std::string::npos);

  const util::Config missing_now = ctl(daemon, "d_nonow", {{"cmd", "trigger"}});
  EXPECT_EQ(missing_now.get_string("ok", ""), "false");

  const util::Config stop = ctl(daemon, "e_stop", {{"cmd", "stop"}});
  EXPECT_EQ(stop.get_string("ok", ""), "true");
  EXPECT_FALSE(daemon.tick());
}

TEST_F(DaemonTest, CommandIsNotRerunWhenReplyAlreadyExists) {
  // Crash between writing the reply and removing the command: on restart
  // both files exist, and re-running the (non-idempotent) trigger would
  // purge twice. The daemon must just clear the command.
  const std::string tag = "rerun";
  write_wal(tag, make_history());
  Daemon daemon = make_daemon(tag, 1);
  daemon.start();

  const std::string victims_path = dir_ + "/rerun_victims.txt";
  const std::string cmd_path = daemon.ctl_dir() + "/x.cmd";
  const std::string out_path = daemon.ctl_dir() + "/x.out";
  {
    util::io::AtomicWriter out(out_path, {.fsync = false, .footer = false});
    out.write_line("ok = true");
    out.commit();
  }
  {
    util::io::AtomicWriter cmd(cmd_path, {.fsync = false, .footer = false});
    cmd.write_line("cmd = trigger");
    cmd.write_line("now = " + std::to_string(now_));
    cmd.write_line("victims_out = " + victims_path);
    cmd.commit();
  }
  daemon.tick();
  EXPECT_FALSE(fsys::exists(cmd_path));
  EXPECT_TRUE(fsys::exists(out_path));           // reply is left for the client
  EXPECT_FALSE(fsys::exists(victims_path));      // trigger did NOT run
}

TEST_F(DaemonTest, CleanRestartPreservesIdentity) {
  const std::string tag = "restart";
  const auto events = make_history();
  write_wal(tag, events);
  {
    Daemon first = make_daemon(tag, 4);
    first.start();
    first.tick();
    EXPECT_EQ(first.service().last_applied_seq(), events.size());
    first.shutdown();  // seals the WAL + final checkpoint
  }
  // More activity arrives while the daemon is down (writer resumes seq
  // across the sealed segments).
  {
    trace::EventLogWriter writer(wal(tag));
    trace::Event job;
    job.kind = trace::EventKind::kJob;
    job.user = 3;
    job.timestamp = kBase + util::days(65);
    job.impact = 4321.0;
    writer.append(job);
    trace::Event access;
    access.kind = trace::EventKind::kAccess;
    access.user = 4;
    access.timestamp = kBase + util::days(66);
    access.path = "/scratch/user_4/f1.dat";
    writer.append(access);
  }
  const ColdResult cold = cold_reference(tag, 4);

  Daemon second = make_daemon(tag, 4);
  second.start();
  // Recovery came from the checkpoint, not a rescan.
  EXPECT_EQ(second.service().last_applied_seq(), events.size());
  second.tick();
  EXPECT_EQ(second.service().last_applied_seq(), events.size() + 2);
  const auto [ranks, victims, reply] = trigger(second, tag);
  EXPECT_EQ(reply.get_string("ok", ""), "true");
  EXPECT_EQ(ranks, cold.ranks);
  EXPECT_EQ(victims, cold.victims);
}

// kill -9 at every registered daemon-path fault point: recovery must land
// byte-identical ranks and victims versus a cold one-shot over the full log.
TEST_F(DaemonTest, CrashRecoveryIsByteIdenticalAtEveryFaultPoint) {
  struct Case {
    const char* spec;
    bool in_shutdown;  // arm during graceful shutdown instead of a tick
  };
  const Case cases[] = {
      {"serve.post_apply:crash@1", false},
      {"io.atomic.pre_commit:crash@1", false},
      {"io.atomic.pre_rename:crash@1", false},
      {"bundle.member:crash@1", false},
      {"bundle.pre_manifest:crash@1", false},
      {"serve.checkpoint.prune:crash@1", false},
      {"wal.seal.pre_remove:crash@1", true},
  };
  const auto events = make_history();
  const std::size_t half = events.size() / 2;
  for (std::size_t c = 0; c < std::size(cases); ++c) {
    const std::string tag = "crash" + std::to_string(c);
    SCOPED_TRACE(std::string(cases[c].spec) + " tag=" + tag);
    write_wal(tag, {events.begin(), events.begin() + static_cast<std::ptrdiff_t>(half)});
    DaemonOptions options = daemon_options(tag, 1);
    options.checkpoint_every_events = 1;  // checkpoint on every applying tick
    options.keep_checkpoints = 1;
    {
      Daemon victim(trace::UserRegistry::with_synthetic_users(kUsers),
                    options);
      victim.start();
      victim.tick();  // applies the first half, checkpoints it
      {
        trace::EventLogWriter writer(wal(tag));
        for (std::size_t i = half; i < events.size(); ++i) {
          writer.append(events[i]);
        }
      }
      util::FaultInjector::global().configure(cases[c].spec);
      if (cases[c].in_shutdown) {
        victim.tick();  // apply the tail cleanly first
        EXPECT_THROW(victim.shutdown(), util::CrashInjected);
      } else {
        EXPECT_THROW(victim.tick(), util::CrashInjected);
      }
      EXPECT_GE(util::FaultInjector::global().fired_count(), 1u);
      util::FaultInjector::global().clear();
      // The Daemon object goes out of scope with no shutdown — the on-disk
      // state is exactly what a kill -9 would leave.
    }
    const ColdResult cold = cold_reference(tag, 1);
    Daemon recovered = make_daemon(tag, 1);
    recovered.start();
    recovered.tick();
    EXPECT_EQ(recovered.service().last_applied_seq(), events.size());
    const auto [ranks, victims, reply] = trigger(recovered, tag);
    EXPECT_EQ(reply.get_string("ok", ""), "true");
    EXPECT_EQ(ranks, cold.ranks);
    EXPECT_EQ(victims, cold.victims);
  }
}

// Crash mid-checkpoint leaves a half bundle: recovery must skip it, restore
// the previous checkpoint, and replay the longer WAL tail.
TEST_F(DaemonTest, HalfBundleCheckpointDegradesToOlderOne) {
  const std::string tag = "halfbundle";
  const auto events = make_history();
  const std::size_t half = events.size() / 2;
  write_wal(tag, {events.begin(), events.begin() + static_cast<std::ptrdiff_t>(half)});
  DaemonOptions options = daemon_options(tag, 1);
  options.checkpoint_every_events = 1;
  options.keep_checkpoints = 4;  // keep the older checkpoint around
  std::string checkpoints;
  {
    Daemon victim(trace::UserRegistry::with_synthetic_users(kUsers), options);
    victim.start();
    victim.tick();
    checkpoints = victim.checkpoints_dir();
    {
      trace::EventLogWriter writer(wal(tag));
      for (std::size_t i = half; i < events.size(); ++i) {
        writer.append(events[i]);
      }
    }
    util::FaultInjector::global().configure("bundle.pre_manifest:crash@1");
    EXPECT_THROW(victim.tick(), util::CrashInjected);
    util::FaultInjector::global().clear();
  }
  // Two checkpoint dirs: the old sealed one and the new torn one.
  std::vector<std::string> dirs;
  for (const auto& entry : fsys::directory_iterator(checkpoints)) {
    dirs.push_back(entry.path().string());
  }
  std::sort(dirs.begin(), dirs.end());
  ASSERT_EQ(dirs.size(), 2u);
  EXPECT_TRUE(util::io::verify_bundle(dirs[0]).valid());
  EXPECT_FALSE(util::io::verify_bundle(dirs[1]).valid());

  Daemon recovered = make_daemon(tag, 1);
  recovered.start();
  EXPECT_EQ(recovered.service().last_applied_seq(), half);  // older checkpoint
  recovered.tick();
  EXPECT_EQ(recovered.service().last_applied_seq(), events.size());
  const ColdResult cold = cold_reference(tag, 1);
  const auto [ranks, victims, reply] = trigger(recovered, tag);
  EXPECT_EQ(ranks, cold.ranks);
  EXPECT_EQ(victims, cold.victims);
}

TEST_F(DaemonTest, TornWalTailIsSalvagedAndReappliedAfterRefeed) {
  const std::string tag = "torn";
  const auto events = make_history();
  write_wal(tag, events);
  // Tear the open segment: a crashed feeder left a partial final line.
  std::string open_path;
  for (const auto& entry : fsys::directory_iterator(wal(tag))) {
    if (entry.path().extension() == ".open") open_path = entry.path().string();
  }
  ASSERT_FALSE(open_path.empty());
  fsys::resize_file(open_path, fsys::file_size(open_path) - 7);

  Daemon daemon = make_daemon(tag, 1);
  daemon.start();
  daemon.tick();
  EXPECT_EQ(daemon.service().last_applied_seq(), events.size() - 1);

  // The restarted feeder truncates the torn suffix and re-appends the lost
  // record at the same seq; the tailer picks it up.
  {
    trace::EventLogWriter writer(wal(tag));
    EXPECT_EQ(writer.next_seq(), events.size());
    writer.append(events.back());
  }
  daemon.tick();
  EXPECT_EQ(daemon.service().last_applied_seq(), events.size());

  const ColdResult cold = cold_reference(tag, 1);
  const auto [ranks, victims, reply] = trigger(daemon, tag);
  EXPECT_EQ(ranks, cold.ranks);
  EXPECT_EQ(victims, cold.victims);
}

TEST_F(DaemonTest, GracefulRunSealsWalAndCheckpoints) {
  const std::string tag = "run";
  const auto events = make_history();
  write_wal(tag, events);
  DaemonOptions options = daemon_options(tag, 1);
  options.max_ticks = 1;
  options.poll_interval_ms = 1;
  options.metrics_out = dir_ + "/metrics.json";
  Daemon daemon(trace::UserRegistry::with_synthetic_users(kUsers), options);
  EXPECT_EQ(daemon.run(), 0);

  // The WAL was sealed: no .open segment remains, the sealed one verifies.
  std::size_t open_count = 0, seg_count = 0;
  for (const auto& entry : fsys::directory_iterator(wal(tag))) {
    if (entry.path().extension() == ".open") ++open_count;
    if (entry.path().extension() == ".seg") ++seg_count;
  }
  EXPECT_EQ(open_count, 0u);
  EXPECT_GE(seg_count, 1u);

  // A final checkpoint at the full applied seq exists and restores.
  Daemon reopened = make_daemon(tag, 1);
  reopened.start();
  EXPECT_EQ(reopened.service().last_applied_seq(), events.size());

  // Metrics were exported on shutdown.
  const std::string metrics = slurp(options.metrics_out);
  EXPECT_NE(metrics.find("serve.events_applied"), std::string::npos);
  EXPECT_NE(metrics.find("serve.graceful_stops"), std::string::npos);
}

TEST_F(DaemonTest, PeriodicMetricsExport) {
  const std::string tag = "metrics";
  write_wal(tag, make_history());
  DaemonOptions options = daemon_options(tag, 1);
  options.metrics_out = dir_ + "/metrics_periodic.json";
  options.metrics_every_ticks = 1;
  Daemon daemon(trace::UserRegistry::with_synthetic_users(kUsers), options);
  daemon.start();
  daemon.tick();
  const std::string metrics = slurp(options.metrics_out);
  EXPECT_NE(metrics.find("serve.events_applied"), std::string::npos);
  EXPECT_NE(metrics.find("serve.wal_lag"), std::string::npos);
}

}  // namespace
}  // namespace adr::serve
