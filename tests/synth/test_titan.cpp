#include "synth/titan_model.hpp"

#include <gtest/gtest.h>

namespace adr::synth {
namespace {

TitanParams small_params() {
  TitanParams p;
  p.users = 150;
  p.seed = 11;
  return p;
}

class TitanScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new TitanScenario(build_titan_scenario(small_params()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const TitanScenario* scenario_;
};

const TitanScenario* TitanScenarioTest::scenario_ = nullptr;

TEST_F(TitanScenarioTest, WindowsAreCalendarAligned) {
  EXPECT_EQ(scenario_->trace_begin, util::from_civil(2013, 1, 1));
  EXPECT_EQ(scenario_->sim_begin, util::from_civil(2016, 1, 1));
  EXPECT_EQ(scenario_->sim_end, util::from_civil(2017, 1, 1));
}

TEST_F(TitanScenarioTest, PopulationMatchesRegistry) {
  EXPECT_EQ(scenario_->registry.size(), 150u);
  EXPECT_EQ(scenario_->population.size(), 150u);
}

TEST_F(TitanScenarioTest, JobsSortedWithIdsAssigned) {
  ASSERT_FALSE(scenario_->jobs.empty());
  EXPECT_TRUE(scenario_->jobs.is_sorted_by_time());
  EXPECT_EQ(scenario_->jobs.records().front().job_id, 1u);
  EXPECT_EQ(scenario_->jobs.records().back().job_id, scenario_->jobs.size());
}

TEST_F(TitanScenarioTest, SnapshotIsFltPrepurged) {
  ASSERT_FALSE(scenario_->snapshot.empty());
  const util::Duration lifetime = util::days(90);
  for (const auto& e : scenario_->snapshot.entries()) {
    EXPECT_LE(e.atime, scenario_->sim_begin);
    EXPECT_LE(scenario_->sim_begin - e.atime, lifetime)
        << "snapshot contains a file the facility FLT would have purged";
    EXPECT_LT(e.owner, 150u);
    EXPECT_GT(e.size_bytes, 0u);
  }
}

TEST_F(TitanScenarioTest, CapacityHasHeadroomOverSnapshot) {
  EXPECT_GT(scenario_->capacity_bytes, 0u);
  // capacity = snapshot bytes x headroom (default 2.0).
  const double ratio = static_cast<double>(scenario_->capacity_bytes) /
                       static_cast<double>(scenario_->snapshot.total_bytes());
  EXPECT_NEAR(ratio, small_params().capacity_headroom, 0.01);
}

TEST_F(TitanScenarioTest, ReplayConfinedToSimYearAndSorted) {
  ASSERT_FALSE(scenario_->replay.empty());
  EXPECT_TRUE(scenario_->replay.is_sorted_by_time());
  for (const auto& e : scenario_->replay.entries()) {
    EXPECT_GT(e.timestamp, scenario_->sim_begin);
    EXPECT_LT(e.timestamp, scenario_->sim_end);
  }
}

TEST_F(TitanScenarioTest, SnapshotPathsBelongToOwnersHome) {
  for (const auto& e : scenario_->snapshot.entries()) {
    const std::string home = scenario_->registry.home_dir(e.owner) + "/";
    EXPECT_EQ(e.path.rfind(home, 0), 0u) << e.path;
  }
}

TEST_F(TitanScenarioTest, PublicationsExist) {
  EXPECT_GT(scenario_->pubs.size(), 0u);
}

TEST_F(TitanScenarioTest, ScheduleAlignsWithJobs) {
  ASSERT_EQ(scenario_->schedule.size(), scenario_->jobs.size());
  for (std::size_t i = 0; i < scenario_->schedule.size(); ++i) {
    const auto& s = scenario_->schedule[i];
    const auto& j = scenario_->jobs.records()[i];
    EXPECT_EQ(s.job_id, j.job_id);
    EXPECT_EQ(s.user, j.user);
    EXPECT_GE(s.start_time, s.submit_time);
    EXPECT_GT(s.end_time, s.start_time);
    if (s.completed) {
      EXPECT_EQ(s.runtime(), j.duration_seconds);
    } else {
      EXPECT_LT(s.runtime(), j.duration_seconds);
    }
  }
}

TEST(TitanScenario, SchedulingIsOptional) {
  synth::TitanParams p = small_params();
  p.schedule_jobs = false;
  const auto scenario = build_titan_scenario(p);
  EXPECT_TRUE(scenario.schedule.empty());
  EXPECT_FALSE(scenario.jobs.empty());
}

TEST(TitanScenario, DeterministicAcrossBuilds) {
  const auto a = build_titan_scenario(small_params());
  const auto b = build_titan_scenario(small_params());
  EXPECT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(a.snapshot.size(), b.snapshot.size());
  EXPECT_EQ(a.replay.size(), b.replay.size());
  EXPECT_EQ(a.capacity_bytes, b.capacity_bytes);
  ASSERT_FALSE(a.snapshot.empty());
  EXPECT_EQ(a.snapshot.entries()[0].path, b.snapshot.entries()[0].path);
}

TEST(TitanScenario, SeedChangesContent) {
  TitanParams p = small_params();
  const auto a = build_titan_scenario(p);
  p.seed = 999;
  const auto b = build_titan_scenario(p);
  EXPECT_NE(a.capacity_bytes, b.capacity_bytes);
}

}  // namespace
}  // namespace adr::synth
