// Job-stream, publication and app-log synthesis behaviour.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>

#include "synth/app_log_synth.hpp"
#include "synth/job_synth.hpp"
#include "synth/pub_synth.hpp"
#include "synth/titan_model.hpp"

namespace adr::synth {
namespace {

constexpr util::TimePoint kBegin = 1'356'998'400;  // 2013-01-01
constexpr util::TimePoint kEnd = 1'483'228'800;    // 2017-01-01

UserProfile heavy_profile() {
  UserProfile p;
  p.user = 0;
  p.archetype = Archetype::kHeavyBoth;
  p.job_rate_per_day = 0.5;
  p.episode_days_mean = 60;
  p.gap_days_mean = 5;
  p.gap_days_sigma = 0.3;
  p.file_count = 40;
  p.working_set_fraction = 0.2;
  p.pubs_total_mean = 2.0;
  return p;
}

UserProfile dormant_profile() {
  UserProfile p;
  p.user = 0;
  p.archetype = Archetype::kDormant;
  p.job_rate_per_day = 0.05;
  p.episode_days_mean = 5;
  p.gap_days_mean = 400;
  p.gap_days_sigma = 0.5;
  p.file_count = 10;
  p.working_set_fraction = 0.4;
  return p;
}

TEST(JobSynth, JobsSortedWithinWindow) {
  util::Rng rng(1);
  const auto jobs = synthesize_user_jobs(heavy_profile(), kBegin, kEnd, rng);
  ASSERT_GT(jobs.size(), 50u);
  util::TimePoint prev = kBegin;
  for (const auto& j : jobs) {
    EXPECT_GE(j.submit_time, prev);
    EXPECT_LT(j.submit_time, kEnd);
    EXPECT_GE(j.duration_seconds, 60);
    EXPECT_LE(j.duration_seconds, 86400);
    EXPECT_GE(j.cores, 1);
    prev = j.submit_time;
  }
}

TEST(JobSynth, HeavyUsersSubmitFarMoreThanDormant) {
  util::Rng r1(2), r2(2);
  const auto heavy = synthesize_user_jobs(heavy_profile(), kBegin, kEnd, r1);
  const auto dormant =
      synthesize_user_jobs(dormant_profile(), kBegin, kEnd, r2);
  EXPECT_GT(heavy.size(), dormant.size() * 10);
}

TEST(JobSynth, DormantUsersHaveLongGaps) {
  util::Rng rng(3);
  const auto jobs = synthesize_user_jobs(dormant_profile(), kBegin, kEnd, rng);
  util::Duration max_gap = 0;
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    max_gap = std::max(max_gap, jobs[i].submit_time - jobs[i - 1].submit_time);
  }
  if (jobs.size() >= 2) {
    EXPECT_GT(max_gap, util::days(90));  // the FLT-miss-inducing gap
  }
}

TEST(PubSynth, OnlyPublishingProfilesLeadPublications) {
  util::Rng rng(4);
  PopulationMix mix{};
  mix.fraction[static_cast<std::size_t>(Archetype::kHeavyBoth)] = 0.5;
  mix.fraction[static_cast<std::size_t>(Archetype::kToucher)] = 0.5;
  const auto pop = UserPopulation::generate(200, mix, rng);
  PubSynthParams params;
  params.begin = kBegin;
  params.end = kEnd;
  const auto pubs = synthesize_publications(pop, params, rng);
  ASSERT_GT(pubs.size(), 10u);
  for (const auto& p : pubs.records()) {
    ASSERT_FALSE(p.authors.empty());
    EXPECT_NE(pop.profile(p.authors[0]).archetype, Archetype::kToucher);
    EXPECT_GE(p.published, kBegin);
    EXPECT_LT(p.published, kEnd);
    EXPECT_GE(p.citations, 0);
    EXPECT_LE(p.citations, 500);
    EXPECT_LE(p.authors.size(), 7u);
    // No duplicate authors.
    std::set<trace::UserId> uniq(p.authors.begin(), p.authors.end());
    EXPECT_EQ(uniq.size(), p.authors.size());
  }
}

TEST(AppSynth, EntriesSortedAndCreateBeforeAccess) {
  util::Rng rng(5);
  const UserProfile prof = heavy_profile();
  UserTree tree = synthesize_user_tree(prof, "/scratch/u0", rng);
  const auto jobs = synthesize_user_jobs(prof, kBegin, kEnd, rng);
  AppSynthParams params;
  params.begin = kBegin;
  params.end = kEnd;
  params.snapshot_time = (kBegin + kEnd) / 2;
  const auto trace = synthesize_user_activity(prof, "/scratch/u0",
                                              std::move(tree), jobs, params,
                                              rng);

  ASSERT_FALSE(trace.entries.empty());
  std::map<std::string, bool> created;
  util::TimePoint prev = 0;
  for (const auto& e : trace.entries) {
    EXPECT_GE(e.timestamp, prev);
    prev = e.timestamp;
    EXPECT_EQ(e.user, prof.user);
    if (e.op == trace::FileOp::kCreate) {
      EXPECT_FALSE(created[e.path]) << "double create: " << e.path;
      created[e.path] = true;
      EXPECT_GT(e.size_bytes, 0u);
    } else {
      EXPECT_TRUE(created[e.path]) << "access before create: " << e.path;
    }
  }
}

TEST(AppSynth, SnapshotAtimesConsistent) {
  util::Rng rng(6);
  const UserProfile prof = heavy_profile();
  UserTree tree = synthesize_user_tree(prof, "/scratch/u0", rng);
  const auto jobs = synthesize_user_jobs(prof, kBegin, kEnd, rng);
  AppSynthParams params;
  params.begin = kBegin;
  params.end = kEnd;
  params.snapshot_time = (kBegin + kEnd) / 2;
  const auto trace = synthesize_user_activity(prof, "/scratch/u0",
                                              std::move(tree), jobs, params,
                                              rng);
  ASSERT_EQ(trace.created_at.size(), trace.all_files.size());
  ASSERT_EQ(trace.atime_at_snapshot.size(), trace.all_files.size());
  for (std::size_t i = 0; i < trace.all_files.size(); ++i) {
    const auto created = trace.created_at[i];
    const auto atime = trace.atime_at_snapshot[i];
    if (atime >= 0) {
      EXPECT_LE(atime, params.snapshot_time);
      ASSERT_GE(created, 0);
      EXPECT_GE(atime, created);
    }
    if (created >= 0 && created <= params.snapshot_time) {
      EXPECT_GE(atime, 0) << "file created before snapshot must have atime";
    }
  }
}

TEST(AppSynth, MostInitialFilesIntroducedForActiveUsers) {
  util::Rng rng(7);
  const UserProfile prof = heavy_profile();
  UserTree tree = synthesize_user_tree(prof, "/scratch/u0", rng);
  const std::size_t initial = tree.files.size();
  const auto jobs = synthesize_user_jobs(prof, kBegin, kEnd, rng);
  AppSynthParams params;
  params.begin = kBegin;
  params.end = kEnd;
  params.snapshot_time = kEnd;
  const auto trace = synthesize_user_activity(prof, "/scratch/u0",
                                              std::move(tree), jobs, params,
                                              rng);
  std::size_t introduced = 0;
  for (std::size_t i = 0; i < initial; ++i) {
    if (trace.created_at[i] >= 0) ++introduced;
  }
  EXPECT_GT(introduced, initial * 8 / 10);
}

TEST(AppSynth, ToucherEmitsPeriodicTouches) {
  util::Rng rng(8);
  UserProfile prof = dormant_profile();
  prof.archetype = Archetype::kToucher;
  prof.touch_interval_days = 60;
  prof.file_count = 20;
  UserTree tree = synthesize_user_tree(prof, "/scratch/u0", rng);
  const auto jobs = synthesize_user_jobs(prof, kBegin, kEnd, rng);
  AppSynthParams params;
  params.begin = kBegin;
  params.end = kEnd;
  params.snapshot_time = kEnd;
  const auto trace = synthesize_user_activity(prof, "/scratch/u0",
                                              std::move(tree), jobs, params,
                                              rng);
  // Touch-all events dominate the entry count for touchers: expect far more
  // accesses than a dormant user's job stream alone would produce.
  std::size_t accesses = 0;
  for (const auto& e : trace.entries) {
    if (e.op == trace::FileOp::kAccess) ++accesses;
  }
  // ~4 years / 60 days = ~24 sweeps over the introduced subset of 20 files.
  EXPECT_GT(accesses, 100u);
}

TEST(AppSynth, DeadFilesNeverReAccessed) {
  util::Rng rng(9);
  UserProfile prof = heavy_profile();
  prof.dead_file_fraction = 1.0;  // everything is a write-once dump
  prof.touch_interval_days = 0;
  UserTree tree = synthesize_user_tree(prof, "/scratch/u0", rng);
  const auto jobs = synthesize_user_jobs(prof, kBegin, kEnd, rng);
  AppSynthParams params;
  params.begin = kBegin;
  params.end = kEnd;
  params.snapshot_time = kEnd;
  params.extra_files_per_job = 0.0;
  const auto trace = synthesize_user_activity(prof, "/scratch/u0",
                                              std::move(tree), jobs, params,
                                              rng);
  for (const auto& e : trace.entries) {
    EXPECT_EQ(e.op, trace::FileOp::kCreate)
        << "write-once file re-accessed: " << e.path;
  }
}

TEST(AppSynth, DumpRotationBoundsFileUniverse) {
  util::Rng rng(10);
  UserProfile prof = heavy_profile();
  prof.file_count = 10;
  prof.dump_rotation_depth = 5;
  UserTree tree = synthesize_user_tree(prof, "/scratch/u0", rng);
  const std::size_t projects = tree.project_count;
  const auto jobs = synthesize_user_jobs(prof, kBegin, kEnd, rng);
  ASSERT_GT(jobs.size(), 100u);  // plenty of dump opportunities
  AppSynthParams params;
  params.begin = kBegin;
  params.end = kEnd;
  params.snapshot_time = kEnd;
  params.extra_files_per_job = 1.0;  // a dump per job
  const auto trace = synthesize_user_activity(prof, "/scratch/u0",
                                              std::move(tree), jobs, params,
                                              rng);
  // Universe = 10 initial files + at most depth x projects dump slots,
  // despite hundreds of dump events.
  EXPECT_LE(trace.all_files.size(), 10u + 5u * projects);
}

TEST(TitanModel, TenureDelaysFirstJob) {
  TitanParams p;
  p.users = 300;
  p.seed = 33;
  const auto scenario = build_titan_scenario(p);
  std::vector<util::TimePoint> first_job(p.users,
                                         std::numeric_limits<
                                             util::TimePoint>::max());
  for (const auto& j : scenario.jobs.records()) {
    first_job[j.user] = std::min(first_job[j.user], j.submit_time);
  }
  std::size_t late_joiners = 0;
  for (trace::UserId u = 0; u < p.users; ++u) {
    const auto& prof = scenario.population.profile(u);
    if (prof.tenure_fraction > 0.0 &&
        first_job[u] != std::numeric_limits<util::TimePoint>::max()) {
      const util::TimePoint latest_join =
          scenario.sim_begin - util::days(120);
      const util::TimePoint expected_start =
          scenario.trace_begin +
          static_cast<util::Duration>(
              prof.tenure_fraction *
              static_cast<double>(latest_join - scenario.trace_begin));
      EXPECT_GE(first_job[u], expected_start) << u;
      ++late_joiners;
    }
  }
  // Roughly half the population joined late.
  EXPECT_GT(late_joiners, p.users / 5);
}

TEST(PubSynth, CoauthorshipConcentratesInPublishingPool) {
  util::Rng rng(12);
  const auto pop =
      UserPopulation::generate(2000, PopulationMix::titan_default(), rng);
  PubSynthParams params;
  params.begin = kBegin;
  params.end = kEnd;
  const auto pubs = synthesize_publications(pop, params, rng);
  std::set<trace::UserId> authors;
  for (const auto& p : pubs.records()) {
    authors.insert(p.authors.begin(), p.authors.end());
  }
  // Unique authors stay a small share of the population — this is what
  // keeps Fig. 5's outcome-active share in the low percent range.
  EXPECT_LT(authors.size(), 2000u * 12 / 100);
  EXPECT_GT(authors.size(), 10u);
}

TEST(AppSynth, HotTrafficScalesWithProfile) {
  auto count_accesses = [](double hot, std::uint64_t seed) {
    util::Rng rng(seed);
    UserProfile prof;
    prof.user = 0;
    prof.archetype = Archetype::kHeavyBoth;
    prof.job_rate_per_day = 0.3;
    prof.episode_days_mean = 60;
    prof.gap_days_mean = 5;
    prof.gap_days_sigma = 0.3;
    prof.file_count = 40;
    prof.working_set_fraction = 0.1;
    prof.dead_file_fraction = 0.3;
    prof.hot_accesses_per_job = hot;
    util::Rng tree_rng(1);  // identical trees
    UserTree tree = synthesize_user_tree(prof, "/scratch/u0", tree_rng);
    util::Rng jobs_rng(2);  // identical job streams
    const auto jobs = synthesize_user_jobs(prof, kBegin, kEnd, jobs_rng);
    AppSynthParams params;
    params.begin = kBegin;
    params.end = kEnd;
    params.snapshot_time = kEnd;
    const auto trace = synthesize_user_activity(prof, "/scratch/u0",
                                                std::move(tree), jobs, params,
                                                rng);
    std::size_t accesses = 0;
    for (const auto& e : trace.entries) {
      if (e.op == trace::FileOp::kAccess) ++accesses;
    }
    return accesses;
  };
  EXPECT_GT(count_accesses(12.0, 7), count_accesses(0.5, 7) * 2);
}

}  // namespace
}  // namespace adr::synth
