#include "synth/fs_synth.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fs/striping.hpp"

namespace adr::synth {
namespace {

UserProfile profile_with_files(std::size_t n) {
  UserProfile p;
  p.user = 1;
  p.file_count = n;
  return p;
}

TEST(FsSynth, GeneratesRequestedFileCount) {
  util::Rng rng(1);
  const UserTree tree =
      synthesize_user_tree(profile_with_files(120), "/scratch/u1", rng);
  EXPECT_EQ(tree.files.size(), 120u);
  EXPECT_GE(tree.project_count, 1u);
  EXPECT_LE(tree.project_count, 5u);
}

TEST(FsSynth, PathsLiveUnderHomeAndAreUnique) {
  util::Rng rng(2);
  const UserTree tree =
      synthesize_user_tree(profile_with_files(200), "/scratch/u1", rng);
  std::set<std::string> paths;
  for (const auto& f : tree.files) {
    EXPECT_EQ(f.path.rfind("/scratch/u1/", 0), 0u) << f.path;
    paths.insert(f.path);
  }
  EXPECT_EQ(paths.size(), tree.files.size());  // no duplicates
}

TEST(FsSynth, SizesConsistentWithStripeBands) {
  util::Rng rng(3);
  const UserTree tree =
      synthesize_user_tree(profile_with_files(300), "/scratch/u1", rng);
  for (const auto& f : tree.files) {
    const fs::StripeBand band = fs::band_for_stripes(f.stripe_count);
    EXPECT_GE(f.size_bytes, band.min_bytes);
    EXPECT_LE(f.size_bytes, band.max_bytes);
  }
}

TEST(FsSynth, ProjectIndicesWithinRange) {
  util::Rng rng(4);
  const UserTree tree =
      synthesize_user_tree(profile_with_files(150), "/scratch/u1", rng);
  for (const auto& f : tree.files) {
    EXPECT_LT(f.project, tree.project_count);
    // Path embeds the project directory.
    char expected[16];
    std::snprintf(expected, sizeof(expected), "/proj%02zu/", f.project);
    EXPECT_NE(f.path.find(expected), std::string::npos) << f.path;
  }
}

TEST(FsSynth, Deterministic) {
  util::Rng a(9), b(9);
  const auto t1 = synthesize_user_tree(profile_with_files(50), "/s/u", a);
  const auto t2 = synthesize_user_tree(profile_with_files(50), "/s/u", b);
  ASSERT_EQ(t1.files.size(), t2.files.size());
  for (std::size_t i = 0; i < t1.files.size(); ++i) {
    EXPECT_EQ(t1.files[i].path, t2.files[i].path);
    EXPECT_EQ(t1.files[i].size_bytes, t2.files[i].size_bytes);
  }
}

TEST(FsSynth, ExtraFileUnique) {
  util::Rng rng(5);
  const FileSpec a = synthesize_extra_file("/s/u", 0, 1, rng);
  const FileSpec b = synthesize_extra_file("/s/u", 0, 2, rng);
  EXPECT_NE(a.path, b.path);
  EXPECT_EQ(a.path.rfind("/s/u/proj00/", 0), 0u);
  EXPECT_GT(a.size_bytes, 0u);
}

}  // namespace
}  // namespace adr::synth
