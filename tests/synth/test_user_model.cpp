#include "synth/user_model.hpp"

#include <gtest/gtest.h>

namespace adr::synth {
namespace {

TEST(PopulationMix, TitanDefaultSumsToOne) {
  const auto mix = PopulationMix::titan_default();
  double total = 0;
  for (double f : mix.fraction) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The dominant archetype must be dormant (>92% of users are inactive in
  // Fig. 5).
  EXPECT_GT(mix.fraction[static_cast<std::size_t>(Archetype::kDormant)], 0.6);
}

TEST(UserPopulation, GeneratesRequestedCount) {
  util::Rng rng(1);
  const auto pop =
      UserPopulation::generate(500, PopulationMix::titan_default(), rng);
  EXPECT_EQ(pop.size(), 500u);
  for (trace::UserId u = 0; u < 500; ++u) {
    EXPECT_EQ(pop.profile(u).user, u);
  }
  EXPECT_THROW(pop.profile(500), std::out_of_range);
}

TEST(UserPopulation, Deterministic) {
  util::Rng a(7), b(7);
  const auto mix = PopulationMix::titan_default();
  const auto p1 = UserPopulation::generate(100, mix, a);
  const auto p2 = UserPopulation::generate(100, mix, b);
  for (trace::UserId u = 0; u < 100; ++u) {
    EXPECT_EQ(p1.profile(u).archetype, p2.profile(u).archetype);
    EXPECT_DOUBLE_EQ(p1.profile(u).job_rate_per_day,
                     p2.profile(u).job_rate_per_day);
  }
}

TEST(UserPopulation, MixFractionsRoughlyRespected) {
  util::Rng rng(3);
  const auto mix = PopulationMix::titan_default();
  const auto pop = UserPopulation::generate(5000, mix, rng);
  const auto counts = pop.archetype_counts();
  for (std::size_t a = 0; a < kArchetypeCount; ++a) {
    const double expected = mix.fraction[a] * 5000;
    EXPECT_NEAR(counts[a], expected, expected * 0.35 + 25) << archetype_name(
        static_cast<Archetype>(a));
  }
}

TEST(UserPopulation, OnlyTouchersTouch) {
  util::Rng rng(4);
  const auto pop =
      UserPopulation::generate(2000, PopulationMix::titan_default(), rng);
  for (const auto& p : pop.profiles()) {
    if (p.archetype == Archetype::kToucher) {
      EXPECT_GT(p.touch_interval_days, 0);
      EXPECT_LT(p.touch_interval_days, 90);  // under the facility lifetime
    } else {
      EXPECT_EQ(p.touch_interval_days, 0);
    }
  }
}

TEST(UserPopulation, ArchetypeRatesOrdered) {
  util::Rng rng(5);
  const auto pop =
      UserPopulation::generate(3000, PopulationMix::titan_default(), rng);
  // Heavy/operation users must have much shorter revisit gaps than dormant
  // ones — that separation is what drives the Fig. 5 split.
  double heavy_gap = 0, dormant_gap = 0;
  std::size_t heavy_n = 0, dormant_n = 0;
  for (const auto& p : pop.profiles()) {
    if (p.archetype == Archetype::kHeavyBoth ||
        p.archetype == Archetype::kOperationHeavy) {
      heavy_gap += p.gap_days_mean;
      ++heavy_n;
    } else if (p.archetype == Archetype::kDormant) {
      dormant_gap += p.gap_days_mean;
      ++dormant_n;
    }
  }
  ASSERT_GT(heavy_n, 0u);
  ASSERT_GT(dormant_n, 0u);
  EXPECT_LT(heavy_gap / static_cast<double>(heavy_n),
            0.2 * dormant_gap / static_cast<double>(dormant_n));
}

TEST(UserPopulation, EmptyMixThrows) {
  util::Rng rng(6);
  PopulationMix empty{};
  EXPECT_THROW(UserPopulation::generate(10, empty, rng),
               std::invalid_argument);
}

TEST(ArchetypeName, AllDistinct) {
  std::set<std::string> names;
  for (std::size_t a = 0; a < kArchetypeCount; ++a) {
    names.insert(archetype_name(static_cast<Archetype>(a)));
  }
  EXPECT_EQ(names.size(), kArchetypeCount);
}

}  // namespace
}  // namespace adr::synth
