#include "synth/stream_synth.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/time.hpp"

namespace adr::synth {
namespace {

StreamSynthConfig small_config() {
  StreamSynthConfig c;
  c.users = 40;
  c.seed = 1234;
  c.sim_span_days = 10;
  c.initial_files_per_user = 5;
  c.backfill_days = 100;
  c.events_per_user_day = 1.5;
  return c;
}

bool same_event(const StreamEvent& a, const StreamEvent& b) {
  return a.timestamp == b.timestamp && a.user == b.user && a.kind == b.kind &&
         a.ordinal == b.ordinal && a.impact == b.impact &&
         a.size_bytes == b.size_bytes;
}

std::vector<StreamEvent> drain(StreamSynth& s) {
  std::vector<StreamEvent> out;
  StreamEvent e;
  while (s.next(e)) out.push_back(e);
  return out;
}

TEST(StreamSynth, SameSeedSameStream) {
  const StreamSynthConfig config = small_config();
  StreamSynth a(config);
  StreamSynth b(config);
  const auto ea = drain(a);
  const auto eb = drain(b);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_TRUE(same_event(ea[i], eb[i])) << "event " << i;
  }
  EXPECT_EQ(a.emitted(), ea.size());
  EXPECT_EQ(a.total_events(), ea.size());
}

TEST(StreamSynth, StreamedMatchesMaterializedExactly) {
  const StreamSynthConfig config = small_config();
  StreamSynth stream(config);
  const auto streamed = drain(stream);
  const auto materialized = StreamSynth::materialize(config);
  ASSERT_EQ(streamed.size(), materialized.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_TRUE(same_event(streamed[i], materialized[i])) << "event " << i;
  }
}

TEST(StreamSynth, GlobalOrderIsTimeThenUser) {
  const StreamSynthConfig config = small_config();
  StreamSynth stream(config);
  const auto events = drain(stream);
  ASSERT_FALSE(events.empty());
  std::map<trace::UserId, util::TimePoint> last_per_user;
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto& prev = events[i - 1];
    const auto& cur = events[i];
    ASSERT_LE(prev.timestamp, cur.timestamp) << "event " << i;
    if (prev.timestamp == cur.timestamp) {
      ASSERT_LT(prev.user, cur.user) << "tie at event " << i;
    }
  }
  // Per-user times strictly increase — the property that makes the global
  // (time, user) order total.
  for (const auto& e : events) {
    const auto it = last_per_user.find(e.user);
    if (it != last_per_user.end()) {
      ASSERT_LT(it->second, e.timestamp) << "user " << e.user;
    }
    last_per_user[e.user] = e.timestamp;
  }
}

TEST(StreamSynth, UserSequenceRegeneratesFromSeedAlone) {
  const StreamSynthConfig config = small_config();
  const auto all = StreamSynth::materialize(config);
  for (trace::UserId user = 0; user < 5; ++user) {
    std::vector<StreamEvent> expected;
    for (const auto& e : all) {
      if (e.user == user) expected.push_back(e);
    }
    const auto regenerated = StreamSynth::user_sequence(config, user);
    ASSERT_EQ(regenerated.size(), expected.size()) << "user " << user;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(same_event(regenerated[i], expected[i]))
          << "user " << user << " event " << i;
    }
  }
}

TEST(StreamSynth, BackfillCreatesLandBeforeSimBegin) {
  const StreamSynthConfig config = small_config();
  const auto all = StreamSynth::materialize(config);
  std::vector<std::size_t> backfill_creates(config.users, 0);
  std::size_t past_span_end = 0;
  for (const auto& e : all) {
    if (e.timestamp < config.sim_begin) {
      // Everything before sim_begin is backfill, and backfill is only
      // creates inside the backfill window.
      ASSERT_EQ(e.kind, StreamEventKind::kFileCreate);
      ++backfill_creates[e.user];
      EXPECT_GE(e.timestamp, config.sim_begin - util::days(config.backfill_days));
    } else if (e.timestamp >
               config.sim_begin + util::days(config.sim_span_days)) {
      // The in-span count is Poisson over the span but the gaps are
      // exponential, so a per-user tail can drift past the end; it must
      // stay a small minority of the stream.
      ++past_span_end;
    }
  }
  for (std::size_t u = 0; u < config.users; ++u) {
    EXPECT_EQ(backfill_creates[u], config.initial_files_per_user)
        << "user " << u;
  }
  EXPECT_LT(past_span_end, all.size() / 10)
      << "activity tail past sim_end should be a small minority";
}

TEST(StreamSynth, OrdinalsAreDenseAndAccessesTargetExistingFiles) {
  const StreamSynthConfig config = small_config();
  const auto all = StreamSynth::materialize(config);
  std::vector<std::uint32_t> created(config.users, 0);
  for (const auto& e : all) {
    if (e.kind == StreamEventKind::kFileCreate) {
      EXPECT_EQ(e.ordinal, created[e.user]) << "create out of order";
      ++created[e.user];
      EXPECT_EQ(e.size_bytes,
                StreamSynth::size_of(config.seed, e.user, e.ordinal));
    } else if (e.kind == StreamEventKind::kFileAccess) {
      EXPECT_LT(e.ordinal, created[e.user]) << "access before create";
    }
  }
}

TEST(StreamSynth, PathAndSizeArePureFunctions) {
  EXPECT_EQ(StreamSynth::path_of(7, 3), "/scratch/user_00007/f3");
  EXPECT_EQ(StreamSynth::path_of(12345, 0), "/scratch/user_12345/f0");
  const std::uint64_t s1 = StreamSynth::size_of(42, 7, 3);
  EXPECT_EQ(s1, StreamSynth::size_of(42, 7, 3));
  EXPECT_GE(s1, std::uint64_t{4096});
  EXPECT_NE(StreamSynth::size_of(42, 7, 4), 0u);
}

TEST(StreamSynth, DifferentSeedsDiverge) {
  StreamSynthConfig a = small_config();
  StreamSynthConfig b = small_config();
  b.seed = a.seed + 1;
  const auto ea = StreamSynth::materialize(a);
  const auto eb = StreamSynth::materialize(b);
  bool diverged = ea.size() != eb.size();
  for (std::size_t i = 0; !diverged && i < ea.size(); ++i) {
    diverged = !same_event(ea[i], eb[i]);
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace adr::synth
