#include "trace/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace adr::trace {
namespace {

SnapshotEntry entry(const std::string& path, UserId owner, std::uint64_t size,
                    util::TimePoint atime) {
  SnapshotEntry e;
  e.path = path;
  e.owner = owner;
  e.size_bytes = size;
  e.atime = atime;
  e.stripe_count = 2;
  return e;
}

TEST(Snapshot, TotalBytes) {
  Snapshot s;
  s.add(entry("/a", 0, 100, 1));
  s.add(entry("/b", 1, 250, 2));
  EXPECT_EQ(s.total_bytes(), 350u);
  EXPECT_EQ(s.size(), 2u);
}

TEST(Snapshot, EmptyTotalIsZero) {
  Snapshot s;
  EXPECT_EQ(s.total_bytes(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Snapshot, CsvRoundTrip) {
  Snapshot s;
  s.add(entry("/scratch/u0/proj00/run_001/out_0001.h5", 7, 1ull << 40,
              1451606400));
  const std::string path = ::testing::TempDir() + "/snap.csv";
  s.save_csv(path);
  const Snapshot loaded = Snapshot::load_csv(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.entries()[0].path, s.entries()[0].path);
  EXPECT_EQ(loaded.entries()[0].owner, 7u);
  EXPECT_EQ(loaded.entries()[0].size_bytes, 1ull << 40);
  EXPECT_EQ(loaded.entries()[0].atime, 1451606400);
  EXPECT_EQ(loaded.entries()[0].stripe_count, 2);
  std::remove(path.c_str());
}

TEST(Snapshot, LoadMissingThrows) {
  EXPECT_THROW(Snapshot::load_csv("/nonexistent/snap.csv"),
               std::runtime_error);
}

TEST(Snapshot, GzipRoundTrip) {
  Snapshot s;
  for (int i = 0; i < 50; ++i) {
    s.add(entry("/scratch/u/proj/file_" + std::to_string(i) + ".h5",
                static_cast<UserId>(i % 5), 1000u + static_cast<unsigned>(i),
                1451606400 + i));
  }
  const std::string path = ::testing::TempDir() + "/snap_roundtrip.csv.gz";
  s.save_csv(path);
  const Snapshot loaded = Snapshot::load_csv(path);
  ASSERT_EQ(loaded.size(), s.size());
  EXPECT_EQ(loaded.total_bytes(), s.total_bytes());
  EXPECT_EQ(loaded.entries()[49].path, s.entries()[49].path);
  EXPECT_EQ(loaded.entries()[49].atime, s.entries()[49].atime);
  std::remove(path.c_str());
}

TEST(Snapshot, ShardedSaveAndLoad) {
  Snapshot s;
  for (int i = 0; i < 103; ++i) {
    s.add(entry("/scratch/u/f" + std::to_string(i), 0, 10, i));
  }
  const std::string dir = ::testing::TempDir() + "/adr_shards";
  const auto files = save_sharded_snapshot(s, dir, 7, /*gzip=*/true);
  ASSERT_EQ(files.size(), 7u);
  EXPECT_EQ(sharded_snapshot_files(dir), files);

  const Snapshot merged = load_sharded_snapshot(dir);
  EXPECT_EQ(merged.size(), s.size());
  EXPECT_EQ(merged.total_bytes(), s.total_bytes());

  for (const auto& f : files) std::remove(f.c_str());
}

TEST(Snapshot, ShardedRejectsZeroShards) {
  Snapshot s;
  EXPECT_THROW(save_sharded_snapshot(s, ::testing::TempDir(), 0),
               std::invalid_argument);
}

TEST(Snapshot, ShardedFilesOfMissingDirIsEmpty) {
  EXPECT_TRUE(sharded_snapshot_files("/nonexistent/dir").empty());
}

}  // namespace
}  // namespace adr::trace
