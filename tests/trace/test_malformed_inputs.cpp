// Failure injection: every trace loader must reject malformed input with a
// clear error instead of silently mis-parsing an operator's export.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "activeness/rank_store.hpp"
#include "trace/app_log.hpp"
#include "trace/job_log.hpp"
#include "trace/publication_log.hpp"
#include "trace/snapshot.hpp"
#include "trace/user_registry.hpp"

namespace adr {
namespace {

class MalformedInput : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/adr_malformed_" +
                      std::to_string(::getpid()) + ".csv";
  void write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(MalformedInput, JobLogWrongColumnCount) {
  write("job_id,user,submit_time,duration_s,cores\n1,2,3\n");
  EXPECT_THROW(trace::JobLog::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, JobLogNonNumeric) {
  write("job_id,user,submit_time,duration_s,cores\n1,2,not-a-time,4,5\n");
  EXPECT_THROW(trace::JobLog::load_csv(path_), std::exception);
}

TEST_F(MalformedInput, JobLogEmptyFile) {
  write("");
  EXPECT_THROW(trace::JobLog::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, PublicationLogWrongColumnCount) {
  write("pub_id,published,citations,authors\n1,2\n");
  EXPECT_THROW(trace::PublicationLog::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, PublicationLogBadAuthorList) {
  write("pub_id,published,citations,authors\n1,2,3,abc;def\n");
  EXPECT_THROW(trace::PublicationLog::load_csv(path_), std::exception);
}

TEST_F(MalformedInput, AppLogWrongColumnCount) {
  write("user,timestamp,op,path,size,stripes\n1,2,access\n");
  EXPECT_THROW(trace::AppLog::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, SnapshotWrongColumnCount) {
  write("path,owner,stripes,size,atime\n/a,1\n");
  EXPECT_THROW(trace::Snapshot::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, SnapshotNonNumericSize) {
  write("path,owner,stripes,size,atime\n/a,1,1,huge,5\n");
  EXPECT_THROW(trace::Snapshot::load_csv(path_), std::exception);
}

TEST_F(MalformedInput, UserRegistryNonDenseIds) {
  write("user,name\n0,alice\n5,bob\n");
  EXPECT_THROW(trace::UserRegistry::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, UserRegistryWrongColumnCount) {
  write("user,name\n0\n");
  EXPECT_THROW(trace::UserRegistry::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, RankStoreWrongColumnCount) {
  write("user,op_has_data,op_zero,op_log_phi,oc_has_data,oc_zero,oc_log_phi,"
        "last_activity\n0,1,0\n");
  EXPECT_THROW(activeness::RankStore::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, EveryLoaderRejectsMissingFile) {
  const std::string missing = "/nonexistent/never/there.csv";
  EXPECT_THROW(trace::JobLog::load_csv(missing), std::runtime_error);
  EXPECT_THROW(trace::PublicationLog::load_csv(missing), std::runtime_error);
  EXPECT_THROW(trace::AppLog::load_csv(missing), std::runtime_error);
  EXPECT_THROW(trace::Snapshot::load_csv(missing), std::runtime_error);
  EXPECT_THROW(trace::UserRegistry::load_csv(missing), std::runtime_error);
  EXPECT_THROW(activeness::RankStore::load_csv(missing), std::runtime_error);
}

TEST_F(MalformedInput, StrictErrorsCarryFileLineAndColumn) {
  write("job_id,user,submit_time,duration_s,cores\n1,2,3,4,5\n9,8,bad,6,5\n");
  try {
    trace::JobLog::load_csv(path_);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path_), std::string::npos) << msg;
    EXPECT_NE(msg.find(":3"), std::string::npos) << msg;  // physical line
    EXPECT_NE(msg.find("submit_time"), std::string::npos) << msg;
  }
}

// ---- permissive mode: quarantine instead of throw --------------------------

class PermissiveInput : public MalformedInput {
 protected:
  util::LoadStats stats_;
  util::ParseOptions opts_{util::ParsePolicy::kPermissive, "", &stats_};
  std::string sidecar_ = path_ + ".quarantine";
  void TearDown() override {
    std::remove(sidecar_.c_str());
    MalformedInput::TearDown();
  }
};

TEST_F(PermissiveInput, MalformedRowsGoToSidecar) {
  write("job_id,user,submit_time,duration_s,cores\n"
        "1,2,100,4,5\n"
        "2,2,bogus,4,5\n"
        "3,2,300,4,5\n");
  const auto jobs = trace::JobLog::load_csv(path_, opts_);
  EXPECT_EQ(jobs.size(), 2u);
  EXPECT_EQ(stats_.rows_ok, 2u);
  EXPECT_EQ(stats_.malformed, 1u);
  EXPECT_EQ(stats_.quarantined(), 1u);
  EXPECT_EQ(stats_.quarantine_path, sidecar_);

  std::ifstream sidecar(sidecar_);
  ASSERT_TRUE(sidecar.good());
  std::string header, row;
  std::getline(sidecar, header);
  std::getline(sidecar, row);
  EXPECT_NE(header.find("reason"), std::string::npos);
  EXPECT_NE(row.find("malformed"), std::string::npos);
  EXPECT_NE(row.find("bogus"), std::string::npos);  // raw row preserved
}

TEST_F(PermissiveInput, OutOfOrderAndDuplicateRowsQuarantined) {
  write("job_id,user,submit_time,duration_s,cores\n"
        "1,2,100,4,5\n"
        "1,2,200,4,5\n"   // duplicate job id
        "3,2,50,4,5\n"    // submit_time regressed
        "4,2,300,4,5\n");
  const auto jobs = trace::JobLog::load_csv(path_, opts_);
  EXPECT_EQ(jobs.size(), 2u);
  EXPECT_EQ(stats_.duplicates, 1u);
  EXPECT_EQ(stats_.out_of_order, 1u);
  EXPECT_EQ(stats_.malformed, 0u);
}

TEST_F(PermissiveInput, CleanFileWritesNoSidecar) {
  write("job_id,user,submit_time,duration_s,cores\n1,2,100,4,5\n");
  const auto jobs = trace::JobLog::load_csv(path_, opts_);
  EXPECT_EQ(jobs.size(), 1u);
  EXPECT_EQ(stats_.quarantined(), 0u);
  std::ifstream sidecar(sidecar_);
  EXPECT_FALSE(sidecar.good());  // lazily created only on first bad row
}

TEST_F(PermissiveInput, SnapshotDuplicatePathQuarantined) {
  write("path,owner,stripes,size,atime\n"
        "/a/f1,1,1,10,5\n"
        "/a/f1,1,1,20,6\n"
        "/a/f2,1,1,30,7\n");
  const auto snap = trace::Snapshot::load_csv(path_, opts_);
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(stats_.duplicates, 1u);
}

TEST_F(PermissiveInput, UserRegistrySkipsBadRowsKeepsDensity) {
  write("user,name\n0,alice\n1,\n1,bob\n");
  const auto reg = trace::UserRegistry::load_csv(path_, opts_);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.name(1), "bob");
  EXPECT_GE(stats_.quarantined(), 1u);
}

}  // namespace
}  // namespace adr
