// Failure injection: every trace loader must reject malformed input with a
// clear error instead of silently mis-parsing an operator's export.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "activeness/rank_store.hpp"
#include "trace/app_log.hpp"
#include "trace/job_log.hpp"
#include "trace/publication_log.hpp"
#include "trace/snapshot.hpp"
#include "trace/user_registry.hpp"

namespace adr {
namespace {

class MalformedInput : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/adr_malformed.csv";
  void write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(MalformedInput, JobLogWrongColumnCount) {
  write("job_id,user,submit_time,duration_s,cores\n1,2,3\n");
  EXPECT_THROW(trace::JobLog::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, JobLogNonNumeric) {
  write("job_id,user,submit_time,duration_s,cores\n1,2,not-a-time,4,5\n");
  EXPECT_THROW(trace::JobLog::load_csv(path_), std::exception);
}

TEST_F(MalformedInput, JobLogEmptyFile) {
  write("");
  EXPECT_THROW(trace::JobLog::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, PublicationLogWrongColumnCount) {
  write("pub_id,published,citations,authors\n1,2\n");
  EXPECT_THROW(trace::PublicationLog::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, PublicationLogBadAuthorList) {
  write("pub_id,published,citations,authors\n1,2,3,abc;def\n");
  EXPECT_THROW(trace::PublicationLog::load_csv(path_), std::exception);
}

TEST_F(MalformedInput, AppLogWrongColumnCount) {
  write("user,timestamp,op,path,size,stripes\n1,2,access\n");
  EXPECT_THROW(trace::AppLog::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, SnapshotWrongColumnCount) {
  write("path,owner,stripes,size,atime\n/a,1\n");
  EXPECT_THROW(trace::Snapshot::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, SnapshotNonNumericSize) {
  write("path,owner,stripes,size,atime\n/a,1,1,huge,5\n");
  EXPECT_THROW(trace::Snapshot::load_csv(path_), std::exception);
}

TEST_F(MalformedInput, UserRegistryNonDenseIds) {
  write("user,name\n0,alice\n5,bob\n");
  EXPECT_THROW(trace::UserRegistry::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, UserRegistryWrongColumnCount) {
  write("user,name\n0\n");
  EXPECT_THROW(trace::UserRegistry::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, RankStoreWrongColumnCount) {
  write("user,op_has_data,op_zero,op_log_phi,oc_has_data,oc_zero,oc_log_phi,"
        "last_activity\n0,1,0\n");
  EXPECT_THROW(activeness::RankStore::load_csv(path_), std::runtime_error);
}

TEST_F(MalformedInput, EveryLoaderRejectsMissingFile) {
  const std::string missing = "/nonexistent/never/there.csv";
  EXPECT_THROW(trace::JobLog::load_csv(missing), std::runtime_error);
  EXPECT_THROW(trace::PublicationLog::load_csv(missing), std::runtime_error);
  EXPECT_THROW(trace::AppLog::load_csv(missing), std::runtime_error);
  EXPECT_THROW(trace::Snapshot::load_csv(missing), std::runtime_error);
  EXPECT_THROW(trace::UserRegistry::load_csv(missing), std::runtime_error);
  EXPECT_THROW(activeness::RankStore::load_csv(missing), std::runtime_error);
}

}  // namespace
}  // namespace adr
