#include <gtest/gtest.h>

#include <cstdio>

#include "trace/app_log.hpp"
#include "trace/job_log.hpp"
#include "trace/publication_log.hpp"

namespace adr::trace {
namespace {

class TempFile {
 public:
  explicit TempFile(const char* stem)
      : path_(::testing::TempDir() + "/" + stem) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

JobRecord make_job(UserId user, util::TimePoint t, std::int64_t dur,
                   std::int32_t cores) {
  JobRecord j;
  j.user = user;
  j.submit_time = t;
  j.duration_seconds = dur;
  j.cores = cores;
  return j;
}

TEST(JobRecord, CoreHours) {
  const JobRecord j = make_job(0, 0, 7200, 16);
  EXPECT_DOUBLE_EQ(j.core_hours(), 32.0);
}

TEST(JobLog, SortAndIds) {
  JobLog log;
  log.add(make_job(1, 300, 60, 1));
  log.add(make_job(2, 100, 60, 1));
  log.add(make_job(3, 200, 60, 1));
  EXPECT_FALSE(log.is_sorted_by_time());
  log.sort_by_time();
  EXPECT_TRUE(log.is_sorted_by_time());
  log.assign_ids();
  EXPECT_EQ(log.records()[0].job_id, 1u);
  EXPECT_EQ(log.records()[0].user, 2u);
  EXPECT_EQ(log.records()[2].job_id, 3u);
}

TEST(JobLog, Slice) {
  JobLog log;
  for (int i = 0; i < 10; ++i) log.add(make_job(0, i * 100, 60, 1));
  const auto slice = log.slice(200, 500);
  ASSERT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice.front().submit_time, 200);
  EXPECT_EQ(slice.back().submit_time, 400);
}

TEST(JobLog, CsvRoundTrip) {
  JobLog log;
  log.add(make_job(5, 1451606400, 3600, 128));
  log.add(make_job(7, 1451692800, 60, 1));
  log.assign_ids();
  TempFile f("jobs.csv");
  log.save_csv(f.path());
  const JobLog loaded = JobLog::load_csv(f.path());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.records()[0].user, 5u);
  EXPECT_EQ(loaded.records()[0].cores, 128);
  EXPECT_EQ(loaded.records()[1].submit_time, 1451692800);
}

TEST(JobLog, LoadMissingFileThrows) {
  EXPECT_THROW(JobLog::load_csv("/nonexistent/jobs.csv"), std::runtime_error);
}

TEST(Publication, Eq8Impact) {
  PublicationRecord p;
  p.citations = 9;
  p.authors = {1, 2, 3, 4};
  // D = (c+1) * (n-i+1); lead author of 4 with 9 citations: 10 * 4 = 40.
  EXPECT_DOUBLE_EQ(p.impact_for_author(1), 40.0);
  EXPECT_DOUBLE_EQ(p.impact_for_author(4), 10.0);
}

TEST(Publication, ZeroCitationsStillCount) {
  PublicationRecord p;
  p.citations = 0;
  p.authors = {1};
  EXPECT_DOUBLE_EQ(p.impact_for_author(1), 1.0);
}

TEST(PublicationLog, CsvRoundTripPreservesAuthorOrder) {
  PublicationLog log;
  PublicationRecord p;
  p.pub_id = 3;
  p.published = 1400000000;
  p.citations = 12;
  p.authors = {9, 2, 5};
  log.add(p);
  TempFile f("pubs.csv");
  log.save_csv(f.path());
  const PublicationLog loaded = PublicationLog::load_csv(f.path());
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.records()[0].authors, (std::vector<UserId>{9, 2, 5}));
  EXPECT_EQ(loaded.records()[0].citations, 12);
}

TEST(PublicationLog, SortByTime) {
  PublicationLog log;
  PublicationRecord a, b;
  a.published = 200;
  b.published = 100;
  log.add(a);
  log.add(b);
  log.sort_by_time();
  EXPECT_EQ(log.records()[0].published, 100);
}

TEST(AppLog, RangeBinarySearch) {
  AppLog log;
  for (int i = 0; i < 10; ++i) {
    AppLogEntry e;
    e.user = 0;
    e.timestamp = i * 10;
    e.path = "/f";
    log.add(e);
  }
  const auto [lo, hi] = log.range(25, 65);
  EXPECT_EQ(lo, 3u);
  EXPECT_EQ(hi, 7u);
}

TEST(AppLog, CsvRoundTripWithOps) {
  AppLog log;
  AppLogEntry a;
  a.user = 1;
  a.timestamp = 100;
  a.op = FileOp::kAccess;
  a.path = "/scratch/u/file,with,commas.dat";
  AppLogEntry c;
  c.user = 2;
  c.timestamp = 200;
  c.op = FileOp::kCreate;
  c.path = "/scratch/u/new.h5";
  c.size_bytes = 123456789;
  c.stripe_count = 4;
  log.add(a);
  log.add(c);
  TempFile f("applog.csv");
  log.save_csv(f.path());
  const AppLog loaded = AppLog::load_csv(f.path());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.entries()[0].path, a.path);
  EXPECT_EQ(loaded.entries()[0].op, FileOp::kAccess);
  EXPECT_EQ(loaded.entries()[1].op, FileOp::kCreate);
  EXPECT_EQ(loaded.entries()[1].size_bytes, 123456789u);
  EXPECT_EQ(loaded.entries()[1].stripe_count, 4);
}

TEST(AppLog, SortStable) {
  AppLog log;
  AppLogEntry e1{1, 100, FileOp::kAccess, "/a", 0, 1};
  AppLogEntry e2{2, 100, FileOp::kAccess, "/b", 0, 1};
  AppLogEntry e0{3, 50, FileOp::kAccess, "/c", 0, 1};
  log.add(e1);
  log.add(e2);
  log.add(e0);
  log.sort_by_time();
  EXPECT_EQ(log.entries()[0].path, "/c");
  EXPECT_EQ(log.entries()[1].path, "/a");  // stable: e1 before e2
  EXPECT_EQ(log.entries()[2].path, "/b");
}

}  // namespace
}  // namespace adr::trace
