#include "trace/event_log.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "util/fault.hpp"
#include "util/io.hpp"

namespace adr::trace {
namespace {

namespace fsys = std::filesystem;

Event job_event(UserId user, util::TimePoint t, double impact) {
  Event e;
  e.kind = EventKind::kJob;
  e.user = user;
  e.timestamp = t;
  e.impact = impact;
  return e;
}

Event create_event(UserId user, util::TimePoint t, const std::string& path,
                   std::uint64_t bytes, std::int32_t stripes) {
  Event e;
  e.kind = EventKind::kCreate;
  e.user = user;
  e.timestamp = t;
  e.path = path;
  e.size_bytes = bytes;
  e.stripe_count = stripes;
  return e;
}

class EventLogTest : public ::testing::Test {
 protected:
  std::string dir_ = ::testing::TempDir() + "/adr_wal_test_" +
                     std::to_string(::getpid());
  void SetUp() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
    fsys::create_directories(dir_);
  }
  void TearDown() override {
    util::FaultInjector::global().clear();
    fsys::remove_all(dir_);
  }

  std::string open_segment_path() const {
    for (const auto& entry : fsys::directory_iterator(dir_)) {
      if (entry.path().extension() == ".open") return entry.path().string();
    }
    return {};
  }
  std::size_t count_ext(const char* ext) const {
    std::size_t n = 0;
    for (const auto& entry : fsys::directory_iterator(dir_)) {
      if (entry.path().extension() == ext) ++n;
    }
    return n;
  }
};

TEST_F(EventLogTest, FormatParseRoundTripsEveryKind) {
  std::vector<Event> events;
  events.push_back(job_event(7, 1'600'000'000, 123.456789012345678));
  {
    Event e;
    e.kind = EventKind::kPublication;
    e.user = 3;
    e.timestamp = 1'600'000'500;
    e.impact = 42.0;
    events.push_back(e);
  }
  events.push_back(create_event(9, 1'600'001'000,
                                "/scratch/u9/messy, \"quoted\" path.dat",
                                4096, 4));
  {
    Event e;
    e.kind = EventKind::kAccess;
    e.user = 9;
    e.timestamp = 1'600'002'000;
    e.path = "/scratch/u9/data.h5";
    events.push_back(e);
  }
  {
    Event e;
    e.kind = EventKind::kRemove;
    e.timestamp = 1'600'003'000;
    e.path = "/scratch/u9/tmp";
    events.push_back(e);
  }
  std::uint64_t seq = 1;
  for (Event& e : events) {
    e.seq = seq++;
    Event parsed;
    ASSERT_TRUE(parse_event(format_event(e), parsed)) << format_event(e);
    EXPECT_EQ(parsed, e);
  }
}

TEST_F(EventLogTest, ParseRejectsTamperedLine) {
  std::string line = format_event(job_event(1, 1'600'000'000, 10.0));
  Event parsed;
  ASSERT_TRUE(parse_event(line, parsed));
  line[5] = line[5] == '9' ? '8' : '9';  // flip one payload byte
  EXPECT_FALSE(parse_event(line, parsed));
  EXPECT_FALSE(parse_event("not,a,record", parsed));
  EXPECT_FALSE(parse_event("", parsed));
}

TEST_F(EventLogTest, FeedConversionsMatchBulkIngestImpacts) {
  JobRecord job;
  job.user = 4;
  job.submit_time = 1'600'000'000;
  job.cores = 1000;
  job.duration_seconds = 5400;
  const Event je = make_job_event(job, 2.0);
  EXPECT_EQ(je.kind, EventKind::kJob);
  EXPECT_EQ(je.user, 4u);
  EXPECT_EQ(je.timestamp, job.submit_time);
  EXPECT_DOUBLE_EQ(je.impact, 2.0 * job.core_hours());

  PublicationRecord pub;
  pub.published = 1'600'000'111;
  pub.citations = 3;
  pub.authors = {10, 11, 12};
  const auto events = make_publication_events(pub);
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].user, pub.authors[i]);
    EXPECT_DOUBLE_EQ(events[i].impact, pub.impact_for_author(i + 1));
  }

  AppLogEntry entry;
  entry.user = 2;
  entry.timestamp = 1'600'000'222;
  entry.op = FileOp::kCreate;
  entry.path = "/scratch/u2/a.dat";
  entry.size_bytes = 1024;
  entry.stripe_count = 8;
  const Event ae = make_app_event(entry);
  EXPECT_EQ(ae.kind, EventKind::kCreate);
  EXPECT_EQ(ae.size_bytes, 1024u);
  EXPECT_EQ(ae.stripe_count, 8);
}

TEST_F(EventLogTest, AppendAssignsContiguousSeqsAndReadsBack) {
  std::vector<Event> written;
  {
    EventLogWriter writer(dir_);
    for (int i = 0; i < 10; ++i) {
      Event e = job_event(static_cast<UserId>(i), 1'600'000'000 + i, i * 1.5);
      const std::uint64_t seq = writer.append(e);
      EXPECT_EQ(seq, static_cast<std::uint64_t>(i + 1));
      e.seq = seq;
      written.push_back(e);
    }
  }
  EventLogReader reader(dir_);
  WalSalvage salvage;
  const auto events = reader.read_after(0, &salvage);
  EXPECT_EQ(events, written);
  EXPECT_FALSE(salvage.torn_tail);
  EXPECT_EQ(salvage.dropped_lines, 0u);

  const auto tail = reader.read_after(7);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().seq, 8u);
}

TEST_F(EventLogTest, RotationSealsSegmentsAndPreservesOrder) {
  EventLogOptions opts;
  opts.rotate_events = 4;
  {
    EventLogWriter writer(dir_, opts);
    for (int i = 0; i < 11; ++i) {
      writer.append(job_event(1, 1'600'000'000 + i, 1.0));
    }
  }
  EXPECT_EQ(count_ext(".seg"), 2u);   // two full segments sealed
  EXPECT_EQ(count_ext(".open"), 1u);  // 3 records still open

  EventLogReader reader(dir_);
  const auto events = reader.read_after(0);
  ASSERT_EQ(events.size(), 11u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);
  }

  // Sealed segments carry a verifying §10 footer.
  for (const auto& entry : fsys::directory_iterator(dir_)) {
    if (entry.path().extension() != ".seg") continue;
    const auto artifact = util::io::read_artifact(entry.path().string());
    EXPECT_EQ(artifact.state, util::io::ArtifactState::kVerified);
  }
}

TEST_F(EventLogTest, TornTailIsSalvagedAsStrictSuffixDrop) {
  {
    EventLogWriter writer(dir_);
    for (int i = 0; i < 5; ++i) {
      writer.append(job_event(1, 1'600'000'000 + i, 1.0));
    }
  }
  // Tear the open segment mid-line, as a crashed append would.
  const std::string open_path = open_segment_path();
  ASSERT_FALSE(open_path.empty());
  fsys::resize_file(open_path, fsys::file_size(open_path) - 7);

  EventLogReader reader(dir_);
  WalSalvage salvage;
  const auto events = reader.read_after(0, &salvage);
  ASSERT_EQ(events.size(), 4u);  // record 5 torn, 1..4 intact
  EXPECT_EQ(events.back().seq, 4u);
  EXPECT_TRUE(salvage.torn_tail);
  EXPECT_EQ(salvage.dropped_lines, 1u);

  // A restarting writer truncates the torn suffix and reuses seq 5.
  {
    EventLogWriter writer(dir_);
    EXPECT_EQ(writer.next_seq(), 5u);
    writer.append(job_event(2, 1'600'000'100, 9.0));
  }
  EventLogReader reread(dir_);
  WalSalvage clean;
  const auto all = reread.read_after(0, &clean);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all.back().seq, 5u);
  EXPECT_EQ(all.back().user, 2u);
  EXPECT_FALSE(clean.torn_tail);
}

TEST_F(EventLogTest, WriterRestartResumesSeqAcrossSealedSegments) {
  EventLogOptions opts;
  opts.rotate_events = 3;
  {
    EventLogWriter writer(dir_, opts);
    for (int i = 0; i < 7; ++i) {
      writer.append(job_event(1, 1'600'000'000 + i, 1.0));
    }
  }
  {
    EventLogWriter writer(dir_, opts);
    EXPECT_EQ(writer.next_seq(), 8u);
    writer.append(job_event(1, 1'600'000'100, 2.0));
  }
  EventLogReader reader(dir_);
  EXPECT_EQ(reader.read_after(0).size(), 8u);
}

TEST_F(EventLogTest, CrashBetweenSealCommitAndRemoveRecovers) {
  {
    EventLogWriter writer(dir_);
    for (int i = 0; i < 3; ++i) {
      writer.append(job_event(1, 1'600'000'000 + i, 1.0));
    }
    util::FaultInjector::global().configure("wal.seal.pre_remove:crash@1");
    EXPECT_THROW(writer.seal(), util::CrashInjected);
    EXPECT_GE(util::FaultInjector::global().fired_count(), 1u);
    util::FaultInjector::global().clear();
  }
  // Both files exist — the .seg is authoritative, the .open a leftover.
  EXPECT_EQ(count_ext(".seg"), 1u);
  EXPECT_EQ(count_ext(".open"), 1u);

  // The reader prefers the sealed twin: no duplicate delivery.
  EventLogReader reader(dir_);
  EXPECT_EQ(reader.read_after(0).size(), 3u);

  // A restarted writer removes the leftover and continues.
  {
    EventLogWriter writer(dir_);
    EXPECT_EQ(writer.next_seq(), 4u);
    writer.append(job_event(2, 1'600'000'100, 1.0));
  }
  EXPECT_EQ(count_ext(".open"), 1u);  // fresh segment, old leftover gone
  EventLogReader reread(dir_);
  const auto all = reread.read_after(0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.back().seq, 4u);
}

TEST_F(EventLogTest, AppendIoFaultsLeaveSalvageableLog) {
  {
    EventLogWriter writer(dir_);
    writer.append(job_event(1, 1'600'000'000, 1.0));
    writer.append(job_event(1, 1'600'000'001, 1.0));
    // Tear the third append a few bytes in — torn line on disk. The short
    // directive's byte offset is cumulative over the writer's stream, so
    // anchor it past what the first two appends already wrote.
    const auto written = fsys::file_size(open_segment_path());
    util::FaultInjector::global().configure("wal.append.write:short@" +
                                            std::to_string(written + 5));
    EXPECT_THROW(writer.append(job_event(1, 1'600'000'002, 1.0)),
                 std::exception);
    util::FaultInjector::global().clear();
  }
  EventLogReader reader(dir_);
  WalSalvage salvage;
  const auto events = reader.read_after(0, &salvage);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_TRUE(salvage.torn_tail);
}

TEST_F(EventLogTest, AppendRetriesTransientOpenFailureWithinBudget) {
  // A flaky segment open (the transient fault: a burst that clears) is
  // absorbed by the writer's §14.3 retry budget — the caller never sees it.
  util::FaultInjector::global().configure("wal.append.open:flaky@2");
  EventLogOptions opts;
  opts.retry = {.max_attempts = 3, .initial_delay_ms = 0.0,
                .max_delay_ms = 0.0};
  EventLogWriter writer(dir_, opts);
  EXPECT_EQ(writer.append(job_event(1, 1'600'000'000, 1.0)), 1u);
  EXPECT_EQ(writer.append(job_event(2, 1'600'000'001, 2.0)), 2u);
  util::FaultInjector::global().clear();

  EventLogReader reader(dir_);
  WalSalvage salvage;
  const auto events = reader.read_after(0, &salvage);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_FALSE(salvage.torn_tail);
  EXPECT_EQ(salvage.dropped_lines, 0u);
}

TEST_F(EventLogTest, AppendRetryRestoresTornTailBetweenAttempts) {
  // A *persistent* short-write fault exhausts the budget — but each
  // re-attempt must first truncate the previous attempt's torn line, so
  // the failed append leaves exactly one torn suffix, never a pile-up,
  // and a restarted writer resumes at the right seq with no duplicates.
  EventLogOptions opts;
  opts.retry = {.max_attempts = 3, .initial_delay_ms = 0.0,
                .max_delay_ms = 0.0};
  std::uint64_t tear_at = 0;
  {
    EventLogWriter writer(dir_, opts);
    writer.append(job_event(1, 1'600'000'000, 1.0));
    writer.append(job_event(1, 1'600'000'001, 1.0));
    tear_at = fsys::file_size(open_segment_path()) + 5;
    util::FaultInjector::global().configure("wal.append.write:short@" +
                                            std::to_string(tear_at));
    EXPECT_THROW(writer.append(job_event(1, 1'600'000'002, 1.0)),
                 std::exception);
    util::FaultInjector::global().clear();
  }
  // One torn partial line on disk — the tail was restored between
  // attempts, so the file ends exactly at the short-write boundary.
  EXPECT_EQ(fsys::file_size(open_segment_path()), tear_at);

  EventLogWriter writer(dir_, opts);  // restart: truncates the torn suffix
  EXPECT_EQ(writer.append(job_event(1, 1'600'000'002, 1.0)), 3u);
  EventLogReader reader(dir_);
  const auto events = reader.read_after(0);
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);
  }
}

TEST_F(EventLogTest, PollTailsAcrossAppendsAndSeals) {
  EventLogOptions opts;
  opts.rotate_events = 1000;  // manual seal below
  EventLogWriter writer(dir_, opts);
  EventLogReader reader(dir_);

  std::vector<Event> seen;
  const auto sink = [&seen](const Event& e) { seen.push_back(e); };

  EXPECT_EQ(reader.poll(sink), 0u);
  writer.append(job_event(1, 1'600'000'000, 1.0));
  writer.append(job_event(2, 1'600'000'001, 2.0));
  EXPECT_EQ(reader.poll(sink), 2u);
  EXPECT_EQ(reader.poll(sink), 0u);  // idle poll delivers nothing

  // Seal keeps payload bytes at identical offsets; tailer carries over.
  writer.seal();
  EXPECT_EQ(reader.poll(sink), 0u);
  writer.append(job_event(3, 1'600'000'002, 3.0));
  writer.append(job_event(4, 1'600'000'003, 4.0));
  EXPECT_EQ(reader.poll(sink), 2u);

  ASSERT_EQ(seen.size(), 4u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].seq, i + 1);
  }

  // A torn in-flight line is retried, not half-delivered.
  writer.append(job_event(5, 1'600'000'004, 5.0));
  writer.flush();
  const std::string open_path = open_segment_path();
  std::ofstream torn(open_path, std::ios::app | std::ios::binary);
  torn << "6,job,99,160";  // partial line, no newline
  torn.flush();
  EXPECT_EQ(reader.poll(sink), 1u);  // seq 5 only
  EXPECT_EQ(seen.back().seq, 5u);
}

TEST_F(EventLogTest, SeekPositionsTailAfterCheckpointSeq) {
  {
    EventLogWriter writer(dir_);
    for (int i = 0; i < 6; ++i) {
      writer.append(job_event(1, 1'600'000'000 + i, 1.0));
    }
  }
  EventLogReader reader(dir_);
  reader.seek(4);
  std::vector<Event> seen;
  EXPECT_EQ(reader.poll([&seen](const Event& e) { seen.push_back(e); }), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.front().seq, 5u);
  EXPECT_EQ(seen.back().seq, 6u);
}

}  // namespace
}  // namespace adr::trace
