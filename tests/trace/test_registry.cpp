#include "trace/user_registry.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace adr::trace {
namespace {

TEST(UserRegistry, DenseIds) {
  UserRegistry reg;
  EXPECT_EQ(reg.add("alice"), 0u);
  EXPECT_EQ(reg.add("bob"), 1u);
  EXPECT_EQ(reg.add("alice"), 0u);  // idempotent
  EXPECT_EQ(reg.size(), 2u);
}

TEST(UserRegistry, Lookup) {
  UserRegistry reg;
  reg.add("alice");
  EXPECT_EQ(reg.name(0), "alice");
  EXPECT_EQ(reg.find("alice"), 0u);
  EXPECT_EQ(reg.find("nobody"), kInvalidUser);
  EXPECT_FALSE(reg.contains(5));
  EXPECT_THROW(reg.name(5), std::out_of_range);
}

TEST(UserRegistry, HomeDir) {
  UserRegistry reg;
  reg.add("u123");
  EXPECT_EQ(reg.home_dir(0), "/scratch/u123");
}

TEST(UserRegistry, SyntheticUsers) {
  const auto reg = UserRegistry::with_synthetic_users(3, "t_");
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.name(0), "t_00000");
  EXPECT_EQ(reg.name(2), "t_00002");
}

TEST(UserRegistry, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/users.csv";
  auto reg = UserRegistry::with_synthetic_users(5);
  reg.save_csv(path);
  const auto loaded = UserRegistry::load_csv(path);
  EXPECT_EQ(loaded.size(), 5u);
  EXPECT_EQ(loaded.name(3), reg.name(3));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adr::trace
