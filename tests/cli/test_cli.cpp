// End-to-end tests of the `activedr` command-line tool, driven in-process.

#include "cli/commands.hpp"

#include "retention/ledger.hpp"
#include "trace/snapshot.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/time.hpp"

namespace adr::cli {
namespace {

namespace fsys = std::filesystem;

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"activedr"};
  argv.insert(argv.end(), args.begin(), args.end());
  std::ostringstream out, err;
  const int code =
      run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  return {code, out.str(), err.str()};
}

/// Shared fixture: synthesize one small bundle once, reuse across tests.
class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process directory: ctest -j runs each discovered test in its own
    // process, and concurrent processes must not race on one bundle dir.
    dir_ = new std::string(::testing::TempDir() + "/adr_cli_bundle_" +
                           std::to_string(::getpid()));
    fsys::remove_all(*dir_);
    const CliResult r = run(
        {"synth", "--out", dir_->c_str(), "--users", "120", "--seed", "5"});
    ASSERT_EQ(r.code, 0) << r.err;
  }
  static void TearDownTestSuite() {
    fsys::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }
  static std::string path(const std::string& leaf) { return *dir_ + "/" + leaf; }

  static std::string* dir_;
};

std::string* CliTest::dir_ = nullptr;

TEST(Cli, NoArgsPrintsUsage) {
  const CliResult r = run({});
  EXPECT_EQ(r.code, 64);
  EXPECT_NE(r.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliResult r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("synth"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliResult r = run({"frobnicate"});
  EXPECT_EQ(r.code, 64);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, MissingArgumentReportsKey) {
  const CliResult r = run({"evaluate", "--jobs", "/nonexistent"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--users"), std::string::npos);
}

TEST_F(CliTest, SynthWroteAllArtifacts) {
  for (const char* leaf : {"users.csv", "jobs.csv", "pubs.csv", "applog.csv",
                           "snapshot.csv", "scenario.conf"}) {
    EXPECT_TRUE(fsys::exists(path(leaf))) << leaf;
  }
}

TEST_F(CliTest, EvaluateProducesRanks) {
  const std::string ranks = path("ranks.csv");
  const CliResult r =
      run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
           path("jobs.csv").c_str(), "--pubs", path("pubs.csv").c_str(),
           "--now", "2016-01-01", "--period-days", "90", "--out",
           ranks.c_str()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Both Inactive"), std::string::npos);
  EXPECT_TRUE(fsys::exists(ranks));

  const CliResult c = run({"classify", "--ranks", ranks.c_str()});
  ASSERT_EQ(c.code, 0) << c.err;
  EXPECT_NE(c.out.find("activeness matrix"), std::string::npos);
}

TEST_F(CliTest, PurgeActiveDrRoundTrip) {
  // evaluate -> purge -> surviving snapshot is smaller.
  const std::string ranks = path("ranks2.csv");
  ASSERT_EQ(run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
                 path("jobs.csv").c_str(), "--now", "2016-01-01", "--out",
                 ranks.c_str()})
                .code,
            0);
  const std::string survivors = path("survivors.csv");
  const CliResult r =
      run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
           path("users.csv").c_str(), "--ranks", ranks.c_str(), "--now",
           "2016-01-01", "--target", "0.5", "--out-snapshot",
           survivors.c_str()});
  EXPECT_TRUE(r.code == 0 || r.code == 2) << r.err;  // 2 = target unmet
  EXPECT_NE(r.out.find("Purge report"), std::string::npos);
  ASSERT_TRUE(fsys::exists(survivors));
  const auto before = trace::Snapshot::load_csv(path("snapshot.csv"));
  const auto after = trace::Snapshot::load_csv(survivors);
  EXPECT_LE(after.total_bytes(), before.total_bytes());
}

TEST_F(CliTest, PurgeFltDoesNotNeedRanks) {
  const CliResult r =
      run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
           path("users.csv").c_str(), "--now", "2016-06-01", "--policy",
           "flt", "--lifetime", "30", "--target", "0"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("FLT-30d"), std::string::npos);
}

TEST_F(CliTest, PurgeCheckIndexVerifiesConsistency) {
  const CliResult r =
      run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
           path("users.csv").c_str(), "--now", "2016-06-01", "--policy",
           "flt", "--lifetime", "30", "--target", "0", "--check-index"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Purge index verified"), std::string::npos);
}

TEST_F(CliTest, PurgeScanModesSelectIdenticalVictims) {
  // The same FLT purge under --scan-mode walk and indexed must write the
  // same victim list (modulo order; strict runs purge the full expired set).
  std::vector<std::string> victims[2];
  int i = 0;
  for (const char* mode : {"walk", "indexed"}) {
    const std::string list = path(std::string("victims_") + mode + ".txt");
    const CliResult r =
        run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
             path("users.csv").c_str(), "--now", "2016-06-01", "--policy",
             "flt", "--lifetime", "30", "--target", "0", "--dry-run",
             "--scan-mode", mode, "--victims", list.c_str()});
    ASSERT_EQ(r.code, 0) << r.err;
    std::ifstream in(list);
    for (std::string line; std::getline(in, line);) {
      victims[i].push_back(line);
    }
    std::sort(victims[i].begin(), victims[i].end());
    ++i;
  }
  EXPECT_FALSE(victims[0].empty());
  EXPECT_EQ(victims[0], victims[1]);
}

TEST_F(CliTest, PurgeRejectsUnknownScanMode) {
  const CliResult r =
      run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
           path("users.csv").c_str(), "--now", "2016-06-01", "--policy",
           "flt", "--scan-mode", "psychic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --scan-mode"), std::string::npos);
}

TEST_F(CliTest, PurgeRejectsUnknownEvalMode) {
  const CliResult r =
      run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
           path("users.csv").c_str(), "--now", "2016-06-01", "--policy",
           "flt", "--eval-mode", "psychic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --eval-mode"), std::string::npos);
}

TEST_F(CliTest, EvaluateModesProduceIdenticalRanks) {
  // The same evaluation under --eval-mode full and incremental must write
  // byte-identical rank stores.
  std::string contents[2];
  int i = 0;
  for (const char* mode : {"full", "incremental"}) {
    const std::string ranks = path(std::string("ranks_") + mode + ".csv");
    const CliResult r =
        run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
             path("jobs.csv").c_str(), "--pubs", path("pubs.csv").c_str(),
             "--now", "2016-01-01", "--eval-mode", mode, "--out",
             ranks.c_str()});
    ASSERT_EQ(r.code, 0) << r.err;
    std::ifstream in(ranks);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents[i++] = buffer.str();
  }
  EXPECT_FALSE(contents[0].empty());
  EXPECT_EQ(contents[0], contents[1]);
}

TEST_F(CliTest, PurgeActiveDrEvaluatesInlineFromLogs) {
  // No --ranks: the purge command evaluates activeness itself from the
  // job/publication logs before scanning.
  const CliResult r =
      run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
           path("users.csv").c_str(), "--jobs", path("jobs.csv").c_str(),
           "--pubs", path("pubs.csv").c_str(), "--now", "2016-01-01",
           "--eval-mode", "incremental", "--target", "0.5", "--dry-run"});
  EXPECT_TRUE(r.code == 0 || r.code == 2) << r.err;
  EXPECT_NE(r.out.find("Purge report"), std::string::npos);
}

TEST_F(CliTest, PurgeActiveDrWithoutRanksOrJobsFails) {
  const CliResult r =
      run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
           path("users.csv").c_str(), "--now", "2016-01-01"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("needs --ranks or --jobs"), std::string::npos);
}

TEST_F(CliTest, PurgeRejectsUnknownPolicy) {
  const CliResult r =
      run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
           path("users.csv").c_str(), "--now", "2016-06-01", "--policy",
           "lru"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --policy"), std::string::npos);
}

TEST_F(CliTest, ReplayComparesPolicies) {
  const CliResult r = run({"replay", "--dir", dir_->c_str()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Replay summary"), std::string::npos);
  EXPECT_NE(r.out.find("File misses"), std::string::npos);
}

TEST_F(CliTest, CompareRunsOneShotRetention) {
  const CliResult r =
      run({"compare", "--dir", dir_->c_str(), "--as-of", "2016-08-23"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Per-group outcome"), std::string::npos);
  EXPECT_NE(r.out.find("Shared target"), std::string::npos);
}

TEST_F(CliTest, CompareRejectsOutOfWindowDate) {
  const CliResult r =
      run({"compare", "--dir", dir_->c_str(), "--as-of", "2030-01-01"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("replay window"), std::string::npos);
}

TEST_F(CliTest, PurgeAppendsToLedger) {
  const std::string ledger = path("ledger.csv");
  for (int i = 0; i < 2; ++i) {
    const CliResult r =
        run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
             path("users.csv").c_str(), "--now", "2016-06-01", "--policy",
             "flt", "--target", "0", "--ledger", ledger.c_str()});
    ASSERT_EQ(r.code, 0) << r.err;
  }
  EXPECT_TRUE(fsys::exists(ledger));
  const retention::PurgeLedger loaded(ledger);
  EXPECT_EQ(loaded.load().size(), 2u);
}

TEST_F(CliTest, EvaluateWithExtraActivityCsvs) {
  // Hand-written data-transfer activity file: user 0 transfers recently.
  const std::string xfers = path("transfers.csv");
  {
    std::ofstream out(xfers);
    out << "user,timestamp,impact\n";
    out << "0," << util::from_civil(2015, 12, 20) << ",500\n";
  }
  const CliResult r =
      run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
           path("jobs.csv").c_str(), "--now", "2016-01-01",
           "--op-activities", xfers.c_str()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Ingested 1 activities"), std::string::npos);
}

TEST_F(CliTest, DryRunPurgeLeavesSnapshotIntact) {
  const std::string victims = path("victims.txt");
  const CliResult r =
      run({"purge", "--snapshot", path("snapshot.csv").c_str(), "--users",
           path("users.csv").c_str(), "--now", "2016-06-01", "--policy",
           "flt", "--lifetime", "30", "--target", "0", "--dry-run",
           "--victims", victims.c_str()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("DRY RUN"), std::string::npos);
  ASSERT_TRUE(fsys::exists(victims));
  // Victim file lists absolute scratch paths.
  std::ifstream in(victims);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first.rfind("/scratch/", 0), 0u);
}

TEST_F(CliTest, InfoSummarizesSnapshot) {
  const CliResult r =
      run({"info", "--snapshot", path("snapshot.csv").c_str()});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Snapshot summary"), std::string::npos);
  EXPECT_NE(r.out.find("Largest owners"), std::string::npos);
}

TEST_F(CliTest, MetricsOutDumpsRegistryJson) {
  // `replay` exercises every instrumented subsystem: evaluator, policy
  // scan/apply, vfs, thread pool, emulator.
  const std::string metrics = path("metrics.json");
  const CliResult r = run(
      {"replay", "--dir", dir_->c_str(), "--metrics-out", metrics.c_str()});
  ASSERT_EQ(r.code, 0) << r.err;
  ASSERT_TRUE(fsys::exists(metrics));

  std::ifstream in(metrics);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  // Structural validity: balanced braces/brackets outside strings.
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char ch : json) {
    if (escaped) { escaped = false; continue; }
    if (ch == '\\') { escaped = true; continue; }
    if (ch == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);

  for (const char* section :
       {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"spans\""}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
  // All instrumented components reported through the shared registry.
  for (const char* metric :
       {"\"evaluator.evaluate_all\"", "\"evaluator.users_evaluated\"",
        "\"policy.scan\"", "\"policy.apply\"", "\"vfs.accesses\"",
        "\"threadpool.parallel_for\"", "\"threadpool.queue_wait\"",
        "\"emulator.replay\""}) {
    EXPECT_NE(json.find(metric), std::string::npos) << metric;
  }
}

TEST_F(CliTest, BadFaultSpecIsUsageError) {
  const CliResult r =
      run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
           path("jobs.csv").c_str(), "--now", "2016-01-01", "--fault-spec",
           "nonsense"});
  EXPECT_EQ(r.code, 64);
  EXPECT_NE(r.err.find("bad --fault-spec"), std::string::npos);
}

TEST_F(CliTest, InjectedCrashExitsWithCrashCodeAndLeavesNoArtifact) {
  const std::string ranks = path("ranks_crash.csv");
  const CliResult r =
      run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
           path("jobs.csv").c_str(), "--now", "2016-01-01", "--out",
           ranks.c_str(), "--fault-spec", "io.atomic.pre_rename:crash"});
  EXPECT_EQ(r.code, 9);
  EXPECT_NE(r.err.find("crash"), std::string::npos);
  EXPECT_FALSE(fsys::exists(ranks));  // commit never happened

  // Recovery is a plain rerun: no residue from the crash blocks it.
  const CliResult retry =
      run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
           path("jobs.csv").c_str(), "--now", "2016-01-01", "--out",
           ranks.c_str()});
  EXPECT_EQ(retry.code, 0) << retry.err;
  EXPECT_TRUE(fsys::exists(ranks));
}

TEST_F(CliTest, UnknownParsePolicyRejected) {
  const CliResult r =
      run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
           path("jobs.csv").c_str(), "--now", "2016-01-01", "--parse-policy",
           "lenient"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown --parse-policy"), std::string::npos);
}

TEST_F(CliTest, PermissiveParsePolicySurvivesBadRowsAndReports) {
  // A jobs log with one malformed row: strict must fail with context,
  // permissive must finish and report the quarantine.
  const std::string bad_jobs = path("jobs_damaged.csv");
  {
    std::ifstream in(path("jobs.csv"));
    std::ofstream out(bad_jobs);
    std::string line;
    int n = 0;
    while (std::getline(in, line) && n < 40) {
      out << line << "\n";
      if (++n == 5) out << "9999,0,not-a-time,60,16\n";
    }
  }
  const CliResult strict =
      run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
           bad_jobs.c_str(), "--now", "2016-01-01"});
  EXPECT_EQ(strict.code, 1);
  EXPECT_NE(strict.err.find("submit_time"), std::string::npos);

  const CliResult permissive =
      run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
           bad_jobs.c_str(), "--now", "2016-01-01", "--parse-policy",
           "permissive"});
  ASSERT_EQ(permissive.code, 0) << permissive.err;
  EXPECT_NE(permissive.out.find("Permissive ingest: quarantined"),
            std::string::npos);
  EXPECT_TRUE(fsys::exists(bad_jobs + ".quarantine"));
}

TEST_F(CliTest, CorruptRankStoreFallsBackAndMatchesCleanInlineRun) {
  // The §10 acceptance path: a CRC-corrupted rank store is quarantined and
  // the purge degrades to inline re-evaluation — with the same victims a
  // clean inline run selects.
  const std::string ranks = path("ranks_corruptible.csv");
  ASSERT_EQ(run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
                 path("jobs.csv").c_str(), "--pubs", path("pubs.csv").c_str(),
                 "--now", "2016-01-01", "--out", ranks.c_str()})
                .code,
            0);

  const std::string snapshot = path("snapshot.csv");
  const std::string users = path("users.csv");
  const std::string jobs = path("jobs.csv");
  const std::string pubs = path("pubs.csv");
  const auto purge = [&](const std::string& victims, bool with_ranks) {
    std::vector<const char*> argv{
        "activedr",  "purge",      "--snapshot", snapshot.c_str(),
        "--users",   users.c_str(), "--jobs",    jobs.c_str(),
        "--pubs",    pubs.c_str(),  "--now",     "2016-01-01",
        "--target",  "0.5",         "--dry-run", "--victims",
        victims.c_str()};
    if (with_ranks) {
      argv.push_back("--ranks");
      argv.push_back(ranks.c_str());
    }
    std::ostringstream out, err;
    const int code =
        run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
    return CliResult{code, out.str(), err.str()};
  };

  const std::string clean_victims = path("victims_clean_inline.txt");
  const CliResult clean = purge(clean_victims, /*with_ranks=*/false);
  ASSERT_TRUE(clean.code == 0 || clean.code == 2) << clean.err;

  // Flip one payload byte: the CRC footer must catch it.
  {
    std::fstream f(ranks, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(10);
    char c = 0;
    f.get(c);
    f.seekp(10);
    f.put(static_cast<char>(c ^ 0x01));
  }
  const std::string fallback_victims = path("victims_fallback.txt");
  const CliResult fallback = purge(fallback_victims, /*with_ranks=*/true);
  ASSERT_EQ(fallback.code, clean.code) << fallback.err;
  EXPECT_NE(fallback.out.find("WARNING: rank store"), std::string::npos);
  EXPECT_NE(fallback.out.find("falling back to inline re-evaluation"),
            std::string::npos);
  EXPECT_FALSE(fsys::exists(ranks));  // moved aside, not acted on
  EXPECT_TRUE(fsys::exists(ranks + ".corrupt"));

  const auto slurp_lines = [](const std::string& p) {
    std::ifstream in(p);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    return lines;
  };
  const auto clean_list = slurp_lines(clean_victims);
  const auto fallback_list = slurp_lines(fallback_victims);
  EXPECT_FALSE(clean_list.empty());
  EXPECT_EQ(clean_list, fallback_list);  // identical purge output
}

TEST_F(CliTest, BadDateRejected) {
  const CliResult r =
      run({"evaluate", "--users", path("users.csv").c_str(), "--jobs",
           path("jobs.csv").c_str(), "--now", "not-a-date"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("YYYY-MM-DD"), std::string::npos);
}

}  // namespace
}  // namespace adr::cli
