// The paper-experiment harnesses: year-replay comparison semantics,
// restore-on-miss, state reconstruction, and the §4.4 one-shot snapshot
// retention.

#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace adr::sim {
namespace {

synth::TitanParams tiny_params() {
  synth::TitanParams p;
  p.users = 150;
  p.seed = 77;
  return p;
}

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new synth::TitanScenario(
        synth::build_titan_scenario(tiny_params()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const synth::TitanScenario* scenario_;
};

const synth::TitanScenario* ExperimentTest::scenario_ = nullptr;

TEST_F(ExperimentTest, StrictFltPurgesAtLeastAsMuchAsTargeted) {
  ExperimentConfig strict;
  strict.flt_strict = true;
  ExperimentConfig merciful = strict;
  merciful.flt_strict = false;
  const ComparisonResult a = run_comparison(*scenario_, strict);
  const ComparisonResult b = run_comparison(*scenario_, merciful);
  std::uint64_t purged_strict = 0, purged_merciful = 0;
  for (const auto& g : a.flt.groups) purged_strict += g.purged_bytes;
  for (const auto& g : b.flt.groups) purged_merciful += g.purged_bytes;
  EXPECT_GE(purged_strict, purged_merciful);
  // The ActiveDR side is unaffected by the FLT mode.
  EXPECT_EQ(a.activedr.total_misses, b.activedr.total_misses);
}

TEST_F(ExperimentTest, RestoreOnMissBoundsRepeatMisses) {
  ExperimentConfig config;
  ActivenessTimeline t1 = ActivenessTimeline::for_scenario(
      *scenario_, evaluation_params(config));
  EmulatorConfig with, without;
  with.restore_on_miss = true;
  without.restore_on_miss = false;

  FltDriver flt1(retention::FltConfig{90}, t1);
  Emulator e1(*scenario_, with, t1);
  const EmulationResult restored = e1.run(flt1, 0.0);

  ActivenessTimeline t2 = ActivenessTimeline::for_scenario(
      *scenario_, evaluation_params(config));
  FltDriver flt2(retention::FltConfig{90}, t2);
  Emulator e2(*scenario_, without, t2);
  const EmulationResult unrestored = e2.run(flt2, 0.0);

  EXPECT_EQ(restored.total_accesses, unrestored.total_accesses);
  EXPECT_LT(restored.total_misses, unrestored.total_misses);
  // Restores keep data around.
  EXPECT_GE(restored.final_files, unrestored.final_files);
}

TEST_F(ExperimentTest, BuildStateAtIsMonotonicInTime) {
  const util::TimePoint mid = scenario_->sim_begin + util::days(60);
  const fs::Vfs early = build_state_at(*scenario_, mid);
  const fs::Vfs late =
      build_state_at(*scenario_, scenario_->sim_begin + util::days(200));
  EXPECT_GT(early.file_count(), 0u);
  EXPECT_GT(late.file_count(), 0u);
  // No file in the state may look newer than the probe instant.
  early.for_each([&](const std::string&, const fs::FileMeta& meta) {
    EXPECT_LE(meta.atime, mid);
  });
  // The facility FLT keeps running: nothing older than ~90 days +
  // trigger interval survives.
  early.for_each([&](const std::string&, const fs::FileMeta& meta) {
    EXPECT_LE(mid - meta.atime, util::days(98));
  });
}

TEST_F(ExperimentTest, SnapshotRetentionMeetsSharedTarget) {
  ExperimentConfig config;
  const util::TimePoint as_of = util::from_civil(2016, 8, 23);
  const SnapshotRetentionResult result =
      run_snapshot_retention(*scenario_, config, as_of);

  // Both policies chased the same target.
  EXPECT_EQ(result.flt.target_purge_bytes, result.activedr.target_purge_bytes);
  EXPECT_GT(result.flt.target_purge_bytes, 0u);

  std::size_t total = 0;
  for (const auto n : result.group_counts) total += n;
  EXPECT_EQ(total, scenario_->registry.size());
}

TEST_F(ExperimentTest, SnapshotRetentionSelectionProperties) {
  // The defining selection behaviour, independent of whether the (very
  // aggressive) 50%-of-usage target is reachable at this scale:
  //  * ActiveDR's retrospective passes dig at least as deep as FLT's
  //    expired-only scan;
  //  * the extra digging lands on Both-Inactive, never reducing its share;
  //  * the active groups keep at least as much data as under FLT.
  ExperimentConfig config;
  const util::TimePoint as_of = util::from_civil(2016, 8, 23);
  const SnapshotRetentionResult result =
      run_snapshot_retention(*scenario_, config, as_of);

  EXPECT_GE(result.activedr.purged_bytes, result.flt.purged_bytes);
  EXPECT_GE(result.activedr.group(activeness::UserGroup::kBothInactive)
                .purged_bytes,
            result.flt.group(activeness::UserGroup::kBothInactive)
                .purged_bytes);
  // Active-group protection holds whenever the target was servable from
  // the inactive side; with an unreachable target §3.4 decays *every*
  // group, so the guarantee is conditional by design.
  if (result.activedr.target_reached) {
    std::uint64_t adr_active_retained = 0, flt_active_retained = 0;
    for (std::size_t g = 0; g < 3; ++g) {
      adr_active_retained += result.activedr.by_group[g].retained_bytes;
      flt_active_retained += result.flt.by_group[g].retained_bytes;
    }
    EXPECT_GE(adr_active_retained, flt_active_retained);
  }
}

TEST_F(ExperimentTest, SnapshotRetentionIsDeterministic) {
  ExperimentConfig config;
  const util::TimePoint as_of = util::from_civil(2016, 8, 23);
  const auto a = run_snapshot_retention(*scenario_, config, as_of);
  const auto b = run_snapshot_retention(*scenario_, config, as_of);
  EXPECT_EQ(a.flt.purged_bytes, b.flt.purged_bytes);
  EXPECT_EQ(a.activedr.purged_bytes, b.activedr.purged_bytes);
}

TEST_F(ExperimentTest, EvaluationParamsMirrorConfig) {
  ExperimentConfig config;
  config.lifetime_days = 30;
  config.scheme = activeness::ExponentScheme::kUniform;
  config.max_periods = 12;
  const auto params = evaluation_params(config);
  EXPECT_EQ(params.period_length_days, 30);
  EXPECT_EQ(params.scheme, activeness::ExponentScheme::kUniform);
  EXPECT_EQ(params.max_periods, 12);
}

TEST_F(ExperimentTest, ExemptPathsSurviveActiveDrReplay) {
  // Reserve one specific snapshot file; after a year of ActiveDR purges it
  // must still exist.
  ASSERT_FALSE(scenario_->snapshot.empty());
  const std::string& precious = scenario_->snapshot.entries().front().path;
  ExperimentConfig config;
  config.exempt_paths.push_back(precious);
  const EmulationResult result = run_activedr(*scenario_, config);
  std::size_t exempted = 0;
  for (const auto& report : result.purges) exempted += report.exempted_files;
  EXPECT_GT(exempted, 0u);
}

}  // namespace
}  // namespace adr::sim
