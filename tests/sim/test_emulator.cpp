#include "sim/emulator.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace adr::sim {
namespace {

synth::TitanParams tiny_params() {
  synth::TitanParams p;
  p.users = 120;
  p.seed = 21;
  return p;
}

class EmulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new synth::TitanScenario(
        synth::build_titan_scenario(tiny_params()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const synth::TitanScenario* scenario_;
};

const synth::TitanScenario* EmulatorTest::scenario_ = nullptr;

TEST_F(EmulatorTest, TimelineEvaluatesAndCaches) {
  ActivenessTimeline timeline = ActivenessTimeline::for_scenario(
      *scenario_, activeness::EvaluationParams{90, scenario_->sim_begin});
  const auto& plan1 = timeline.plan_at(scenario_->sim_begin);
  const auto& plan2 = timeline.plan_at(scenario_->sim_begin);
  EXPECT_EQ(&plan1, &plan2);  // cached
  EXPECT_EQ(plan1.total_users(), scenario_->registry.size());
}

TEST_F(EmulatorTest, TimelineGroupLookupUsesLatestEval) {
  ActivenessTimeline timeline = ActivenessTimeline::for_scenario(
      *scenario_, activeness::EvaluationParams{90, 0});
  // Before any evaluation: everything is Both-Inactive.
  EXPECT_EQ(timeline.group_at(0, scenario_->sim_begin),
            activeness::UserGroup::kBothInactive);
  timeline.plan_at(scenario_->sim_begin);
  // Lookups before the eval instant still fall back to Both-Inactive.
  EXPECT_EQ(timeline.group_at(0, scenario_->sim_begin - 1),
            activeness::UserGroup::kBothInactive);
}

TEST_F(EmulatorTest, StrictFltReplayProducesMisses) {
  ExperimentConfig config;
  config.lifetime_days = 90;
  const EmulationResult r = run_flt_strict(*scenario_, config);
  EXPECT_GT(r.total_accesses, 0u);
  EXPECT_GT(r.total_misses, 0u);
  EXPECT_LT(r.total_misses, r.total_accesses);
  EXPECT_EQ(r.daily.size(), 366u);
  EXPECT_FALSE(r.purges.empty());
  // ~52 weekly triggers in a year.
  EXPECT_GE(r.purges.size(), 50u);
  EXPECT_LE(r.purges.size(), 53u);
}

TEST_F(EmulatorTest, ComparisonSharesClassifications) {
  ExperimentConfig config;
  const ComparisonResult result = run_comparison(*scenario_, config);
  std::size_t total = 0;
  for (const auto n : result.final_group_counts) total += n;
  EXPECT_EQ(total, scenario_->registry.size());
  // The inactive group dominates (Fig. 5's skew).
  EXPECT_GT(result.final_group_counts[static_cast<std::size_t>(
                activeness::UserGroup::kBothInactive)],
            scenario_->registry.size() / 2);
  EXPECT_EQ(result.flt.daily.size(), result.activedr.daily.size());
}

TEST_F(EmulatorTest, PurgeTargetHoldsUtilization) {
  ExperimentConfig config;
  config.purge_target_utilization = 0.5;
  const EmulationResult r = run_activedr(*scenario_, config);
  // After the year of weekly purges, usage must sit at/below ~50% of
  // capacity plus whatever was created since the last trigger.
  const double util =
      static_cast<double>(r.final_bytes) /
      static_cast<double>(scenario_->capacity_bytes);
  EXPECT_LT(util, 0.75);
  for (const auto& report : r.purges) {
    if (report.target_purge_bytes > 0 && report.target_reached) {
      EXPECT_GE(report.purged_bytes, report.target_purge_bytes);
    }
  }
}

TEST_F(EmulatorTest, AggregatesAreConsistent) {
  ExperimentConfig config;
  const EmulationResult r = run_activedr(*scenario_, config);
  std::uint64_t purged_from_groups = 0;
  std::uint64_t purged_from_reports = 0;
  for (const auto& g : r.groups) purged_from_groups += g.purged_bytes;
  for (const auto& report : r.purges) purged_from_reports += report.purged_bytes;
  EXPECT_EQ(purged_from_groups, purged_from_reports);

  std::uint64_t retained = 0;
  for (const auto& g : r.groups) retained += g.retained_bytes;
  EXPECT_EQ(retained, r.final_bytes);

  std::size_t users = 0;
  for (const auto& g : r.groups) users += g.users_in_group;
  EXPECT_EQ(users, scenario_->registry.size());
}

TEST_F(EmulatorTest, DeterministicAcrossRuns) {
  ExperimentConfig config;
  const EmulationResult a = run_activedr(*scenario_, config);
  const EmulationResult b = run_activedr(*scenario_, config);
  EXPECT_EQ(a.total_misses, b.total_misses);
  EXPECT_EQ(a.final_bytes, b.final_bytes);
  EXPECT_EQ(a.purges.size(), b.purges.size());
}

TEST_F(EmulatorTest, AuditModeFindsIndexConsistentAllYear) {
  // audit_purge_index cross-verifies the purge index against a trie walk
  // after every trigger; a year of replay with ~52 purges must log zero
  // failures.
  ActivenessTimeline timeline = ActivenessTimeline::for_scenario(
      *scenario_, activeness::EvaluationParams{90, scenario_->sim_begin});
  EmulatorConfig config;
  config.audit_purge_index = true;
  Emulator emulator(*scenario_, config, timeline);
  ActiveDrDriver driver(retention::ActiveDrConfig{}, scenario_->registry,
                        timeline);
  obs::Counter& failures =
      obs::MetricsRegistry::global().counter("purge_index.audit_failures");
  const std::uint64_t before = failures.value();
  const EmulationResult r = emulator.run(driver);
  EXPECT_FALSE(r.purges.empty());
  EXPECT_EQ(failures.value(), before);
}

void expect_same_report(const retention::PurgeReport& a,
                        const retention::PurgeReport& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.when, b.when);
  EXPECT_EQ(a.target_purge_bytes, b.target_purge_bytes);
  EXPECT_EQ(a.purged_bytes, b.purged_bytes);
  EXPECT_EQ(a.purged_files, b.purged_files);
  EXPECT_EQ(a.target_reached, b.target_reached);
  EXPECT_EQ(a.retrospective_passes_used, b.retrospective_passes_used);
  EXPECT_EQ(a.exempted_files, b.exempted_files);
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    EXPECT_EQ(a.by_group[g].purged_bytes, b.by_group[g].purged_bytes);
    EXPECT_EQ(a.by_group[g].retained_bytes, b.by_group[g].retained_bytes);
    EXPECT_EQ(a.by_group[g].purged_files, b.by_group[g].purged_files);
    EXPECT_EQ(a.by_group[g].retained_files, b.by_group[g].retained_files);
    EXPECT_EQ(a.by_group[g].users_affected, b.by_group[g].users_affected);
    EXPECT_EQ(a.by_group[g].users_total, b.by_group[g].users_total);
  }
  EXPECT_EQ(a.affected_users, b.affected_users);
  EXPECT_EQ(a.dry_run, b.dry_run);
  EXPECT_EQ(a.victim_paths, b.victim_paths);
}

TEST_F(EmulatorTest, EvalModesProduceIdenticalReportsForBothPolicies) {
  // The pipeline's headline guarantee, end to end: a year of replay under
  // full re-evaluation and under delta-aware evaluation yields the same
  // PurgeReport at every trigger, for FLT and ActiveDR alike.
  ExperimentConfig full_config;
  full_config.eval_mode = activeness::EvalMode::kFull;
  ExperimentConfig inc_config;
  inc_config.eval_mode = activeness::EvalMode::kIncremental;
  const ComparisonResult full = run_comparison(*scenario_, full_config);
  const ComparisonResult inc = run_comparison(*scenario_, inc_config);

  ASSERT_EQ(full.flt.purges.size(), inc.flt.purges.size());
  for (std::size_t i = 0; i < full.flt.purges.size(); ++i) {
    expect_same_report(full.flt.purges[i], inc.flt.purges[i]);
  }
  ASSERT_EQ(full.activedr.purges.size(), inc.activedr.purges.size());
  for (std::size_t i = 0; i < full.activedr.purges.size(); ++i) {
    expect_same_report(full.activedr.purges[i], inc.activedr.purges[i]);
  }
  EXPECT_EQ(full.final_group_counts, inc.final_group_counts);
  EXPECT_EQ(full.flt.total_misses, inc.flt.total_misses);
  EXPECT_EQ(full.activedr.total_misses, inc.activedr.total_misses);
  EXPECT_EQ(full.flt.final_bytes, inc.flt.final_bytes);
  EXPECT_EQ(full.activedr.final_bytes, inc.activedr.final_bytes);
}

TEST_F(EmulatorTest, EvalSecondsAreScopedPerTimeline) {
  // Two live timelines: work done by one must not leak into the other's
  // Fig. 12b probe (the old implementation read a process-global span).
  ActivenessTimeline worked = ActivenessTimeline::for_scenario(
      *scenario_, activeness::EvaluationParams{90, 0});
  ActivenessTimeline idle = ActivenessTimeline::for_scenario(
      *scenario_, activeness::EvaluationParams{90, 0});
  worked.plan_at(scenario_->sim_begin);
  worked.plan_at(scenario_->sim_begin + util::days(7));
  EXPECT_GT(worked.eval_seconds(), 0.0);
  EXPECT_EQ(idle.eval_seconds(), 0.0);
}

TEST_F(EmulatorTest, GroupHistoryDeduplicatesUnchangedClassifications) {
  // All activity sits far in the past: every trigger re-evaluates to the
  // same classification, so the attribution history must stay at one entry
  // no matter how many triggers fire (the satellite memory bound).
  const activeness::ActivityCatalog& catalog =
      activeness::ActivityCatalog::paper_default();
  activeness::ActivityStore store(20, catalog.size());
  const util::TimePoint t0 = scenario_->sim_begin;
  store.add(0, 0, activeness::Activity{t0 - util::days(700), 10.0});
  store.add(0, 0, activeness::Activity{t0 - util::days(650), 10.0});
  store.add(1, 1, activeness::Activity{t0 - util::days(500), 5.0});
  ActivenessTimeline timeline(catalog, std::move(store),
                              activeness::EvaluationParams{90, 0});
  for (int week = 0; week < 10; ++week) {
    timeline.plan_at(t0 + util::days(7 * week));
  }
  EXPECT_EQ(timeline.group_history_size(), 1u);
  EXPECT_EQ(timeline.group_at(0, t0 + util::days(70)),
            activeness::UserGroup::kBothInactive);
}

TEST_F(EmulatorTest, ActiveDrReducesMissesForActiveUsers) {
  // The headline claim, at test scale: ActiveDR must not miss *more* than
  // FLT overall for the active groups combined.
  ExperimentConfig config;
  const ComparisonResult result = run_comparison(*scenario_, config);
  auto active_misses = [](const EmulationResult& r) {
    std::size_t n = 0;
    for (const auto& d : r.daily) {
      n += d.misses_by_group[0] + d.misses_by_group[1] + d.misses_by_group[2];
    }
    return n;
  };
  EXPECT_LE(active_misses(result.activedr), active_misses(result.flt));
}

}  // namespace
}  // namespace adr::sim
