#include "sim/emulator.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace adr::sim {
namespace {

synth::TitanParams tiny_params() {
  synth::TitanParams p;
  p.users = 120;
  p.seed = 21;
  return p;
}

class EmulatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new synth::TitanScenario(
        synth::build_titan_scenario(tiny_params()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const synth::TitanScenario* scenario_;
};

const synth::TitanScenario* EmulatorTest::scenario_ = nullptr;

TEST_F(EmulatorTest, TimelineEvaluatesAndCaches) {
  ActivenessTimeline timeline = ActivenessTimeline::for_scenario(
      *scenario_, activeness::EvaluationParams{90, scenario_->sim_begin});
  const auto& plan1 = timeline.plan_at(scenario_->sim_begin);
  const auto& plan2 = timeline.plan_at(scenario_->sim_begin);
  EXPECT_EQ(&plan1, &plan2);  // cached
  EXPECT_EQ(plan1.total_users(), scenario_->registry.size());
}

TEST_F(EmulatorTest, TimelineGroupLookupUsesLatestEval) {
  ActivenessTimeline timeline = ActivenessTimeline::for_scenario(
      *scenario_, activeness::EvaluationParams{90, 0});
  // Before any evaluation: everything is Both-Inactive.
  EXPECT_EQ(timeline.group_at(0, scenario_->sim_begin),
            activeness::UserGroup::kBothInactive);
  timeline.plan_at(scenario_->sim_begin);
  // Lookups before the eval instant still fall back to Both-Inactive.
  EXPECT_EQ(timeline.group_at(0, scenario_->sim_begin - 1),
            activeness::UserGroup::kBothInactive);
}

TEST_F(EmulatorTest, StrictFltReplayProducesMisses) {
  ExperimentConfig config;
  config.lifetime_days = 90;
  const EmulationResult r = run_flt_strict(*scenario_, config);
  EXPECT_GT(r.total_accesses, 0u);
  EXPECT_GT(r.total_misses, 0u);
  EXPECT_LT(r.total_misses, r.total_accesses);
  EXPECT_EQ(r.daily.size(), 366u);
  EXPECT_FALSE(r.purges.empty());
  // ~52 weekly triggers in a year.
  EXPECT_GE(r.purges.size(), 50u);
  EXPECT_LE(r.purges.size(), 53u);
}

TEST_F(EmulatorTest, ComparisonSharesClassifications) {
  ExperimentConfig config;
  const ComparisonResult result = run_comparison(*scenario_, config);
  std::size_t total = 0;
  for (const auto n : result.final_group_counts) total += n;
  EXPECT_EQ(total, scenario_->registry.size());
  // The inactive group dominates (Fig. 5's skew).
  EXPECT_GT(result.final_group_counts[static_cast<std::size_t>(
                activeness::UserGroup::kBothInactive)],
            scenario_->registry.size() / 2);
  EXPECT_EQ(result.flt.daily.size(), result.activedr.daily.size());
}

TEST_F(EmulatorTest, PurgeTargetHoldsUtilization) {
  ExperimentConfig config;
  config.purge_target_utilization = 0.5;
  const EmulationResult r = run_activedr(*scenario_, config);
  // After the year of weekly purges, usage must sit at/below ~50% of
  // capacity plus whatever was created since the last trigger.
  const double util =
      static_cast<double>(r.final_bytes) /
      static_cast<double>(scenario_->capacity_bytes);
  EXPECT_LT(util, 0.75);
  for (const auto& report : r.purges) {
    if (report.target_purge_bytes > 0 && report.target_reached) {
      EXPECT_GE(report.purged_bytes, report.target_purge_bytes);
    }
  }
}

TEST_F(EmulatorTest, AggregatesAreConsistent) {
  ExperimentConfig config;
  const EmulationResult r = run_activedr(*scenario_, config);
  std::uint64_t purged_from_groups = 0;
  std::uint64_t purged_from_reports = 0;
  for (const auto& g : r.groups) purged_from_groups += g.purged_bytes;
  for (const auto& report : r.purges) purged_from_reports += report.purged_bytes;
  EXPECT_EQ(purged_from_groups, purged_from_reports);

  std::uint64_t retained = 0;
  for (const auto& g : r.groups) retained += g.retained_bytes;
  EXPECT_EQ(retained, r.final_bytes);

  std::size_t users = 0;
  for (const auto& g : r.groups) users += g.users_in_group;
  EXPECT_EQ(users, scenario_->registry.size());
}

TEST_F(EmulatorTest, DeterministicAcrossRuns) {
  ExperimentConfig config;
  const EmulationResult a = run_activedr(*scenario_, config);
  const EmulationResult b = run_activedr(*scenario_, config);
  EXPECT_EQ(a.total_misses, b.total_misses);
  EXPECT_EQ(a.final_bytes, b.final_bytes);
  EXPECT_EQ(a.purges.size(), b.purges.size());
}

TEST_F(EmulatorTest, AuditModeFindsIndexConsistentAllYear) {
  // audit_purge_index cross-verifies the purge index against a trie walk
  // after every trigger; a year of replay with ~52 purges must log zero
  // failures.
  ActivenessTimeline timeline = ActivenessTimeline::for_scenario(
      *scenario_, activeness::EvaluationParams{90, scenario_->sim_begin});
  EmulatorConfig config;
  config.audit_purge_index = true;
  Emulator emulator(*scenario_, config, timeline);
  ActiveDrDriver driver(retention::ActiveDrConfig{}, scenario_->registry,
                        timeline);
  obs::Counter& failures =
      obs::MetricsRegistry::global().counter("purge_index.audit_failures");
  const std::uint64_t before = failures.value();
  const EmulationResult r = emulator.run(driver);
  EXPECT_FALSE(r.purges.empty());
  EXPECT_EQ(failures.value(), before);
}

TEST_F(EmulatorTest, ActiveDrReducesMissesForActiveUsers) {
  // The headline claim, at test scale: ActiveDR must not miss *more* than
  // FLT overall for the active groups combined.
  ExperimentConfig config;
  const ComparisonResult result = run_comparison(*scenario_, config);
  auto active_misses = [](const EmulationResult& r) {
    std::size_t n = 0;
    for (const auto& d : r.daily) {
      n += d.misses_by_group[0] + d.misses_by_group[1] + d.misses_by_group[2];
    }
    return n;
  };
  EXPECT_LE(active_misses(result.activedr), active_misses(result.flt));
}

}  // namespace
}  // namespace adr::sim
