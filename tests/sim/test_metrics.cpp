#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace adr::sim {
namespace {

using activeness::UserGroup;

constexpr util::TimePoint kBegin = 1'451'606'400;  // 2016-01-01
constexpr util::TimePoint kEnd = 1'483'228'800;    // 2017-01-01

TEST(MetricsCollector, SizesWindowByDays) {
  const MetricsCollector m(kBegin, kEnd);
  EXPECT_EQ(m.daily().size(), 366u);  // leap year
  EXPECT_EQ(m.daily().front().day, kBegin);
}

TEST(MetricsCollector, RecordsIntoCorrectDay) {
  MetricsCollector m(kBegin, kEnd);
  m.record_access(kBegin + 3600, UserGroup::kBothActive, false);
  m.record_access(kBegin + util::days(1) + 10, UserGroup::kBothActive, true);
  m.record_access(kBegin + util::days(1) + 20, UserGroup::kBothInactive, true);
  const auto& d0 = m.daily()[0];
  const auto& d1 = m.daily()[1];
  EXPECT_EQ(d0.accesses, 1u);
  EXPECT_EQ(d0.misses, 0u);
  EXPECT_EQ(d1.accesses, 2u);
  EXPECT_EQ(d1.misses, 2u);
  EXPECT_EQ(d1.misses_by_group[static_cast<std::size_t>(
                UserGroup::kBothActive)],
            1u);
  EXPECT_DOUBLE_EQ(d1.miss_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(d0.miss_ratio(), 0.0);
  EXPECT_EQ(m.total_accesses(), 3u);
  EXPECT_EQ(m.total_misses(), 2u);
  EXPECT_EQ(m.misses_in_group(UserGroup::kBothActive), 1u);
}

TEST(MetricsCollector, OutOfWindowIgnored) {
  MetricsCollector m(kBegin, kEnd);
  m.record_access(kBegin - 10, UserGroup::kBothActive, true);
  m.record_access(kEnd + 10, UserGroup::kBothActive, true);
  EXPECT_EQ(m.total_accesses(), 0u);
}

TEST(MetricsCollector, EmptyWindowThrows) {
  EXPECT_THROW(MetricsCollector(kBegin, kBegin), std::invalid_argument);
}

TEST(Metrics, DayHistogramMatchesPaperBins) {
  MetricsCollector m(kBegin, kBegin + util::days(3));
  // Day 0: 50% misses. Day 1: 3% misses. Day 2: idle.
  for (int i = 0; i < 10; ++i) {
    m.record_access(kBegin + i, UserGroup::kBothActive, i < 5);
  }
  for (int i = 0; i < 100; ++i) {
    m.record_access(kBegin + util::days(1) + i, UserGroup::kBothActive, i < 3);
  }
  const auto h = miss_ratio_day_histogram(m.daily());
  EXPECT_EQ(h.total(), 3u);
  // 50% lands in the 40%-50% bin (right-closed).
  std::size_t in_40_50 = 0, in_1_5 = 0;
  for (const auto& bin : h.bins()) {
    if (bin.label == "40%-50%") in_40_50 = bin.count;
    if (bin.label == "1%-5%") in_1_5 = bin.count;
  }
  EXPECT_EQ(in_40_50, 1u);
  EXPECT_EQ(in_1_5, 1u);
  EXPECT_EQ(h.underflow(), 1u);  // the idle day
}

TEST(Metrics, DaysAbove) {
  MetricsCollector m(kBegin, kBegin + util::days(2));
  for (int i = 0; i < 10; ++i) {
    m.record_access(kBegin + i, UserGroup::kBothActive, i == 0);  // 10%
  }
  EXPECT_EQ(days_above(m.daily(), 0.05), 1u);
  EXPECT_EQ(days_above(m.daily(), 0.10), 0u);  // strictly greater
}

TEST(Metrics, MonthlyAggregation) {
  MetricsCollector m(kBegin, kEnd);
  m.record_access(util::from_civil(2016, 1, 15), UserGroup::kBothActive, true);
  m.record_access(util::from_civil(2016, 1, 20), UserGroup::kBothActive, true);
  m.record_access(util::from_civil(2016, 3, 2), UserGroup::kBothInactive,
                  true);
  const auto monthly = monthly_group_misses(m.daily());
  ASSERT_EQ(monthly.size(), 12u);
  EXPECT_EQ(monthly[0].month, "2016-01");
  EXPECT_EQ(monthly[0].misses[static_cast<std::size_t>(
                UserGroup::kBothActive)],
            2u);
  EXPECT_EQ(monthly[2].misses[static_cast<std::size_t>(
                UserGroup::kBothInactive)],
            1u);
  EXPECT_EQ(monthly[1].misses[0] + monthly[1].misses[1] +
                monthly[1].misses[2] + monthly[1].misses[3],
            0u);
}

TEST(Metrics, ReductionRatios) {
  MetricsCollector base(kBegin, kBegin + util::days(3));
  MetricsCollector treat(kBegin, kBegin + util::days(3));
  // Day 0: 4 -> 1 misses (75% reduction). Day 1: baseline 0 (skipped).
  // Day 2: 2 -> 3 (negative reduction).
  for (int i = 0; i < 4; ++i)
    base.record_access(kBegin + i, UserGroup::kBothActive, true);
  treat.record_access(kBegin, UserGroup::kBothActive, true);
  for (int i = 0; i < 2; ++i)
    base.record_access(kBegin + util::days(2) + i, UserGroup::kBothActive,
                       true);
  for (int i = 0; i < 3; ++i)
    treat.record_access(kBegin + util::days(2) + i, UserGroup::kBothActive,
                        true);
  const auto ratios = daily_miss_reduction_ratios(base.daily(), treat.daily(),
                                                  UserGroup::kBothActive);
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_DOUBLE_EQ(ratios[0], 0.75);
  EXPECT_DOUBLE_EQ(ratios[1], -0.5);
}

}  // namespace
}  // namespace adr::sim
