// Tier-1 slice of the chaos-soak harness (DESIGN.md §14.4). The nightly
// soak (tools/chaos_soak.sh) runs minutes per seed; here we run a few short
// deterministic epochs per class mix so every fault path stays covered on
// each push without stretching the suite.

#include "sim/chaos.hpp"

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "util/fault.hpp"

namespace adr::sim {
namespace {

namespace fsys = std::filesystem;

class ChaosSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::FaultInjector::global().clear();
    dir_ = fsys::temp_directory_path() /
           ("adr_chaos_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
  }

  void TearDown() override {
    util::FaultInjector::global().clear();
    std::error_code ec;
    fsys::remove_all(dir_, ec);
  }

  ChaosConfig small_config() {
    ChaosConfig config;
    config.dir = dir_.string();
    config.users = 8;
    config.events_per_epoch = 48;
    return config;
  }

  fsys::path dir_;
};

TEST_F(ChaosSoakTest, MixedFaultEpochsHoldEveryInvariant) {
  ChaosConfig config = small_config();
  config.seed = 7;
  config.epochs = 5;
  std::ostringstream narration;

  const ChaosReport report = run_chaos(config, narration);

  EXPECT_TRUE(report.ok) << report.error << "\n" << narration.str();
  EXPECT_EQ(report.error, "");
  EXPECT_EQ(report.epochs_run, 5);
  // One identity check per epoch plus the final probe.
  EXPECT_EQ(report.identity_checks, 6);
  EXPECT_TRUE(report.final_health_ok);
  EXPECT_GT(report.wal_events, 0u);
}

TEST_F(ChaosSoakTest, KillEpochsRecoverFromCheckpointPlusWalTail) {
  ChaosConfig config = small_config();
  config.seed = 2;
  config.epochs = 3;
  config.classes = {"kill"};
  std::ostringstream narration;

  const ChaosReport report = run_chaos(config, narration);

  EXPECT_TRUE(report.ok) << report.error << "\n" << narration.str();
  EXPECT_EQ(report.recoveries, 3);
  EXPECT_EQ(report.faults_injected.at("kill"), 3);
}

TEST_F(ChaosSoakTest, FloodEpochsAccountForEveryProducedEvent) {
  ChaosConfig config = small_config();
  config.seed = 4;
  config.epochs = 2;
  config.classes = {"flood"};
  std::ostringstream narration;

  const ChaosReport report = run_chaos(config, narration);

  EXPECT_TRUE(report.ok) << report.error << "\n" << narration.str();
  EXPECT_GT(report.flood_produced, 0u);
  // The cap is tiny relative to the flood, so some shedding must occur —
  // and run_chaos itself asserts produced == admitted + shed exactly.
  EXPECT_GT(report.flood_shed, 0u);
  EXPECT_LT(report.flood_shed, report.flood_produced);
}

TEST_F(ChaosSoakTest, UnknownFaultClassThrows) {
  ChaosConfig config = small_config();
  config.classes = {"gremlins"};
  std::ostringstream narration;
  EXPECT_THROW(run_chaos(config, narration), std::invalid_argument);
}

}  // namespace
}  // namespace adr::sim
