// Streamed-vs-materialized identity at the 600-user tier (DESIGN.md §15).
//
// The million-user path is only trusted because this small tier proves it
// exact: the streaming synthesizer drained event-by-event into the service
// under a deliberately tiny Vfs residency budget (forcing evictions and
// faults on the hot path) must produce byte-identical activeness ranks and
// per-trigger purge victims to the materialized replay with residency off.

#include "sim/scale.hpp"

#include <gtest/gtest.h>

namespace adr::sim {
namespace {

ScaleConfig tier600() {
  ScaleConfig c;
  c.users = 600;
  c.seed = 20260809;
  c.initial_files_per_user = 5;
  c.events_per_user_day = 1.0;
  c.sim_span_days = 10;
  c.backfill_days = 200;
  c.lifetime_days = 20;
  c.trigger_every_days = 3.0;
  return c;
}

// Small enough that only a fraction of the 600 users fit resident, so the
// streamed run exercises eviction + fault on access/create/remove paths.
constexpr std::uint64_t kTinyBudget = 128 * 1024;

class ScaleIdentityBySharding : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScaleIdentityBySharding, StreamedMatchesMaterialized) {
  ScaleConfig config = tier600();
  config.shards = GetParam();
  const ScaleIdentityResult r = check_scale_identity(config, kTinyBudget);
  EXPECT_TRUE(r.events_identical) << "event streams diverged";
  EXPECT_TRUE(r.ranks_identical) << "activeness ranks diverged";
  EXPECT_TRUE(r.victims_identical) << "purge victims diverged";
  EXPECT_GT(r.triggers, 1u);
  EXPECT_TRUE(r.ok());
}

INSTANTIATE_TEST_SUITE_P(Shards, ScaleIdentityBySharding,
                         ::testing::Values(1u, 2u, 4u));

TEST(Scale, StreamedRunUnderBudgetReportsResidencyChurn) {
  ScaleConfig config = tier600();
  config.users = 300;
  config.memory_budget_bytes = kTinyBudget;
  config.streamed = true;
  const ScaleResult r = run_scale(config);
  EXPECT_EQ(r.users, 300u);
  EXPECT_GT(r.events, 300u * config.initial_files_per_user);
  // Backfill plus whatever in-span activity created on top.
  EXPECT_GE(r.files_created, 300u * config.initial_files_per_user);
  EXPECT_GT(r.triggers, 1u);
  EXPECT_GT(r.residency_faults, 0u) << "tiny budget should force faults";
  EXPECT_GT(r.vfs_spilled_bytes, 0u);
  EXPECT_GT(r.rss_peak_bytes, 0u);
  EXPECT_GT(r.events_per_sec, 0.0);
  EXPECT_EQ(r.rank_fingerprint.size(), 300u);
  // Real purges under the paper's policy reclaim expired backfill.
  EXPECT_GT(r.purged_files, 0u);
}

TEST(Scale, MaterializedRunMatchesEventCount) {
  ScaleConfig config = tier600();
  config.users = 200;
  ScaleConfig materialized = config;
  materialized.streamed = false;
  const ScaleResult a = run_scale(config);
  const ScaleResult b = run_scale(materialized);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.files_created, b.files_created);
  EXPECT_EQ(a.triggers, b.triggers);
  EXPECT_EQ(a.rank_fingerprint, b.rank_fingerprint);
}

}  // namespace
}  // namespace adr::sim
