#include "retention/value_policy.hpp"

#include <gtest/gtest.h>

namespace adr::retention {
namespace {

constexpr util::TimePoint kNow = 1'600'000'000;

fs::FileMeta meta(trace::UserId owner, std::uint64_t size, double age_days,
                  std::uint32_t accesses = 0) {
  fs::FileMeta m;
  m.owner = owner;
  m.size_bytes = size;
  m.atime = kNow - static_cast<util::Duration>(age_days * 86400);
  m.ctime = m.atime;
  m.access_count = accesses;
  return m;
}

TEST(ValuePolicy, RecencyDominatesWithDefaultWeights) {
  const ValuePolicy policy(ValueConfig{});
  const double fresh = policy.value_of("/a/x.dat", meta(0, 100, 1), kNow);
  const double stale = policy.value_of("/a/y.dat", meta(0, 100, 300), kNow);
  EXPECT_GT(fresh, stale);
}

TEST(ValuePolicy, FrequencyRaisesValue) {
  const ValuePolicy policy(ValueConfig{});
  const double cold = policy.value_of("/a/x.dat", meta(0, 100, 50, 0), kNow);
  const double hot = policy.value_of("/a/x.dat", meta(0, 100, 50, 50), kNow);
  EXPECT_GT(hot, cold);
}

TEST(ValuePolicy, TypeScoresApply) {
  ValueConfig config;
  config.type_scores[".h5"] = 1.0;
  config.type_scores[".tmp"] = 0.0;
  const ValuePolicy policy(config);
  const double dataset = policy.value_of("/a/run.h5", meta(0, 1, 10), kNow);
  const double scratch = policy.value_of("/a/run.tmp", meta(0, 1, 10), kNow);
  const double unknown = policy.value_of("/a/run.xyz", meta(0, 1, 10), kNow);
  EXPECT_GT(dataset, unknown);
  EXPECT_GT(unknown, scratch);
}

TEST(ValuePolicy, ExtensionParsingIgnoresDirectoryDots) {
  ValueConfig config;
  config.type_scores[".dat"] = 1.0;
  config.default_type_score = 0.0;
  config.w_recency = config.w_size = config.w_freq = 0.0;
  config.w_type = 1.0;
  const ValuePolicy policy(config);
  EXPECT_DOUBLE_EQ(
      policy.value_of("/a.b/file.dat", meta(0, 1, 0), kNow), 1.0);
  EXPECT_DOUBLE_EQ(policy.value_of("/a.b/file", meta(0, 1, 0), kNow), 0.0);
}

TEST(ValuePolicy, SmallFilesOutValueHuge) {
  ValueConfig config;
  config.w_recency = config.w_freq = config.w_type = 0.0;
  config.w_size = 1.0;
  const ValuePolicy policy(config);
  const double small = policy.value_of("/a", meta(0, 1 << 20, 0), kNow);
  const double huge =
      policy.value_of("/b", meta(0, 2'000'000'000'000ull, 0), kNow);
  EXPECT_GT(small, huge);
  EXPECT_GE(huge, 0.0);  // clamped, never negative
}

TEST(ValuePolicy, PurgesAscendingValueUntilTarget) {
  fs::Vfs vfs;
  vfs.create("/s/u0/stale", meta(0, 100, 300));   // lowest value
  vfs.create("/s/u0/mid", meta(0, 100, 60));
  vfs.create("/s/u0/fresh", meta(0, 100, 1, 20));  // highest value
  const ValuePolicy policy(ValueConfig{});
  const PurgeReport report = policy.run(vfs, kNow, 150);
  EXPECT_TRUE(report.target_reached);
  EXPECT_EQ(report.purged_files, 2u);
  EXPECT_FALSE(vfs.exists("/s/u0/stale"));
  EXPECT_FALSE(vfs.exists("/s/u0/mid"));
  EXPECT_TRUE(vfs.exists("/s/u0/fresh"));
}

TEST(ValuePolicy, NoTargetUsesValueFloor) {
  fs::Vfs vfs;
  vfs.create("/s/u0/worthless", meta(0, 100, 500, 0));
  vfs.create("/s/u0/precious", meta(0, 100, 1, 50));
  ValueConfig config;
  config.value_floor = 0.3;
  const ValuePolicy policy(config);
  const PurgeReport report = policy.run(vfs, kNow, 0);
  EXPECT_TRUE(report.target_reached);
  EXPECT_FALSE(vfs.exists("/s/u0/worthless"));
  EXPECT_TRUE(vfs.exists("/s/u0/precious"));
  EXPECT_EQ(report.purged_files, 1u);
}

TEST(ValuePolicy, ReportAttribution) {
  fs::Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 100, 400));
  vfs.create("/s/u1/b", meta(1, 100, 400));
  ValuePolicy policy{ValueConfig{}};
  policy.set_group_of([](trace::UserId u) {
    return u == 0 ? activeness::UserGroup::kBothActive
                  : activeness::UserGroup::kBothInactive;
  });
  const PurgeReport report = policy.run(vfs, kNow, 0);
  EXPECT_EQ(report.group(activeness::UserGroup::kBothActive).purged_files, 1u);
  EXPECT_EQ(report.group(activeness::UserGroup::kBothInactive).purged_files,
            1u);
  EXPECT_EQ(report.affected_users.size(), 2u);
  EXPECT_EQ(report.policy, "ValueBased");
}

}  // namespace
}  // namespace adr::retention
