#include "retention/ledger.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace adr::retention {
namespace {

PurgeReport sample_report(util::TimePoint when, std::uint64_t purged) {
  PurgeReport r;
  r.policy = "ActiveDR-90d";
  r.when = when;
  r.target_purge_bytes = purged;
  r.purged_bytes = purged;
  r.purged_files = 3;
  r.target_reached = true;
  r.retrospective_passes_used = 2;
  r.exempted_files = 1;
  r.group(activeness::UserGroup::kBothInactive).purged_bytes = purged;
  r.group(activeness::UserGroup::kBothInactive).purged_files = 3;
  r.group(activeness::UserGroup::kBothInactive).users_affected = 2;
  return r;
}

class LedgerTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/adr_ledger_" +
                      std::to_string(::getpid()) + ".csv";
  void SetUp() override { std::remove(path_.c_str()); }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(LedgerTest, LoadMissingFileIsEmpty) {
  const PurgeLedger ledger(path_);
  EXPECT_TRUE(ledger.load().empty());
}

TEST_F(LedgerTest, AppendAndReload) {
  PurgeLedger ledger(path_);
  ledger.append(sample_report(1000, 512));
  ledger.append(sample_report(2000, 1024));

  const auto rows = ledger.load();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].when, 1000);
  EXPECT_EQ(rows[0].purged_bytes, 512u);
  EXPECT_EQ(rows[0].policy, "ActiveDR-90d");
  EXPECT_TRUE(rows[0].target_reached);
  EXPECT_EQ(rows[0].retrospective_passes_used, 2);
  EXPECT_EQ(rows[0].exempted_files, 1u);
  EXPECT_EQ(rows[1].when, 2000);
  EXPECT_EQ(
      rows[1].group_purged_bytes[static_cast<std::size_t>(
          activeness::UserGroup::kBothInactive)],
      1024u);
  EXPECT_EQ(
      rows[1].group_users_affected[static_cast<std::size_t>(
          activeness::UserGroup::kBothInactive)],
      2u);
}

TEST_F(LedgerTest, AppendAcrossInstances) {
  {
    PurgeLedger ledger(path_);
    ledger.append(sample_report(1, 1));
  }
  {
    PurgeLedger ledger(path_);
    ledger.append(sample_report(2, 2));
    EXPECT_EQ(ledger.load().size(), 2u);  // no duplicate header rows
  }
}

TEST_F(LedgerTest, TruncatedFinalRowIsSalvagedNotThrown) {
  // A crash mid-append legitimately truncates the last row; load() must
  // recover every intact row and *report* the torn tail, never throw.
  {
    PurgeLedger ledger(path_);
    ledger.append(sample_report(1, 11));
    ledger.append(sample_report(2, 22));
  }
  {
    std::ofstream out(path_, std::ios::app);
    out << "3,ActiveDR-90d,333";  // torn: no newline, most columns missing
  }
  const PurgeLedger ledger(path_);
  SalvageReport salvage;
  const auto rows = ledger.load(&salvage);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].purged_bytes, 11u);
  EXPECT_EQ(rows[1].purged_bytes, 22u);
  EXPECT_EQ(salvage.rows_loaded, 2u);
  EXPECT_EQ(salvage.rows_dropped, 1u);
  EXPECT_TRUE(salvage.torn_tail);
  EXPECT_TRUE(salvage.damaged());
  ASSERT_EQ(salvage.notes.size(), 1u);
}

TEST_F(LedgerTest, InteriorDamageIsDroppedWithoutTornTail) {
  {
    PurgeLedger ledger(path_);
    ledger.append(sample_report(1, 11));
  }
  {
    std::ofstream out(path_, std::ios::app);
    out << "not,a,valid,row\n";
  }
  {
    PurgeLedger ledger(path_);
    ledger.append(sample_report(2, 22));
  }
  const PurgeLedger ledger(path_);
  SalvageReport salvage;
  const auto rows = ledger.load(&salvage);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(salvage.rows_dropped, 1u);
  EXPECT_FALSE(salvage.torn_tail);  // damage was not the final row
}

TEST_F(LedgerTest, CleanFileReportsNoDamage) {
  {
    PurgeLedger ledger(path_);
    ledger.append(sample_report(1, 1));
  }
  const PurgeLedger ledger(path_);
  SalvageReport salvage;
  EXPECT_EQ(ledger.load(&salvage).size(), 1u);
  EXPECT_FALSE(salvage.damaged());
  EXPECT_FALSE(salvage.torn_tail);
  EXPECT_EQ(salvage.rows_loaded, 1u);
}

TEST(LedgerRowTest, FromReportCopiesEverything) {
  const PurgeReport report = sample_report(42, 99);
  const LedgerRow row = LedgerRow::from_report(report);
  EXPECT_EQ(row.when, 42);
  EXPECT_EQ(row.purged_bytes, 99u);
  EXPECT_EQ(row.purged_files, 3u);
  EXPECT_EQ(
      row.group_purged_files[static_cast<std::size_t>(
          activeness::UserGroup::kBothInactive)],
      3u);
}

}  // namespace
}  // namespace adr::retention
