// Walk vs indexed scan equivalence (DESIGN.md "Purge index"): both modes of
// ActiveDrPolicy must produce byte-identical PurgeReports — same victims, in
// the same order, with the same accounting, and the same exempted_files
// count (an exempt file counts once per scanned group, only when expired at
// the group's widest fully-decayed cutoff) — across targets, retrospective
// passes, and randomized file populations. The only sanctioned difference
// is the phase wall times.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "activeness/classifier.hpp"
#include "retention/activedr_policy.hpp"
#include "retention/flt.hpp"
#include "trace/user_registry.hpp"
#include "util/rng.hpp"

namespace adr::retention {
namespace {

using activeness::Rank;
using activeness::ScanPlan;
using activeness::UserActiveness;

constexpr util::TimePoint kNow = 1'600'000'000;
constexpr std::size_t kUsers = 12;

fs::FileMeta meta(trace::UserId owner, std::uint64_t size, double age_days) {
  fs::FileMeta m;
  m.owner = owner;
  m.size_bytes = size;
  m.atime = kNow - static_cast<util::Duration>(age_days * 86400);
  m.ctime = m.atime;
  return m;
}

UserActiveness ua(trace::UserId user, double op, double oc) {
  UserActiveness u;
  u.user = user;
  u.op = Rank::from_value(op);
  u.oc = Rank::from_value(oc);
  return u;
}

/// Randomized population: files of mixed ages/sizes per user, some users in
/// every activeness group, plus a stream of overwrites and removes so the
/// index has seen every maintenance path before the policies run.
void populate(fs::Vfs& vfs, const trace::UserRegistry& registry,
              util::Rng& rng) {
  vfs.set_removal_sink([](const std::string&, const fs::FileMeta&) {});
  for (trace::UserId u = 0; u < kUsers; ++u) {
    const std::string home = registry.home_dir(u);
    const int files = static_cast<int>(rng.uniform_int(5, 40));
    for (int i = 0; i < files; ++i) {
      vfs.create(home + "/f" + std::to_string(i),
                 meta(u, static_cast<std::uint64_t>(rng.uniform_int(1, 500)),
                      rng.uniform(0.0, 400.0)));
    }
    // Overwrites (atime/size churn) and removes on a random sample.
    for (int i = 0; i < files / 4; ++i) {
      const std::string path =
          home + "/f" + std::to_string(rng.uniform_int(0, files - 1));
      if (rng.uniform() < 0.5) {
        vfs.create(path,
                   meta(u, static_cast<std::uint64_t>(rng.uniform_int(1, 500)),
                        rng.uniform(0.0, 400.0)));
      } else {
        vfs.remove(path);
      }
    }
  }
  ASSERT_TRUE(vfs.verify_purge_index());
}

ScanPlan make_plan(util::Rng& rng) {
  std::vector<UserActiveness> users;
  for (trace::UserId u = 0; u < kUsers; ++u) {
    users.push_back(
        ua(u, rng.uniform() < 0.5 ? 0.0 : rng.uniform(0.5, 4.0),
           rng.uniform() < 0.5 ? 0.0 : rng.uniform(0.5, 4.0)));
  }
  return activeness::build_scan_plan(std::move(users));
}

/// Byte-identical modulo wall times (see header comment).
void expect_reports_equal(const PurgeReport& walk, const PurgeReport& indexed,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(walk.target_purge_bytes, indexed.target_purge_bytes);
  EXPECT_EQ(walk.exempted_files, indexed.exempted_files);
  EXPECT_EQ(walk.purged_bytes, indexed.purged_bytes);
  EXPECT_EQ(walk.purged_files, indexed.purged_files);
  EXPECT_EQ(walk.target_reached, indexed.target_reached);
  EXPECT_EQ(walk.retrospective_passes_used, indexed.retrospective_passes_used);
  EXPECT_EQ(walk.victim_paths, indexed.victim_paths);  // order included
  EXPECT_EQ(walk.affected_users, indexed.affected_users);
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    SCOPED_TRACE("group " + std::to_string(g));
    EXPECT_EQ(walk.by_group[g].purged_bytes, indexed.by_group[g].purged_bytes);
    EXPECT_EQ(walk.by_group[g].purged_files, indexed.by_group[g].purged_files);
    EXPECT_EQ(walk.by_group[g].retained_bytes,
              indexed.by_group[g].retained_bytes);
    EXPECT_EQ(walk.by_group[g].retained_files,
              indexed.by_group[g].retained_files);
    EXPECT_EQ(walk.by_group[g].users_affected,
              indexed.by_group[g].users_affected);
    EXPECT_EQ(walk.by_group[g].users_total, indexed.by_group[g].users_total);
  }
}

PurgeReport run_mode(const fs::Vfs& initial,
                     const trace::UserRegistry& registry,
                     const ScanPlan& plan, std::uint64_t target, bool dry_run,
                     ScanMode mode, fs::Vfs* out_vfs = nullptr) {
  fs::Vfs vfs;
  vfs.import_snapshot(initial.export_snapshot());
  ActiveDrConfig config;
  config.dry_run = dry_run;
  config.record_victims = true;
  config.scan_mode = mode;
  const ActiveDrPolicy policy(config, registry);
  PurgeReport report = policy.run(vfs, kNow, target, plan);
  EXPECT_TRUE(vfs.verify_purge_index());
  if (out_vfs != nullptr) *out_vfs = std::move(vfs);
  return report;
}

TEST(ScanModes, WetRunsProduceIdenticalReportsAcrossTargets) {
  util::Rng rng(42);
  const auto registry = trace::UserRegistry::with_synthetic_users(kUsers);
  fs::Vfs vfs;
  populate(vfs, registry, rng);
  const ScanPlan plan = make_plan(rng);
  const std::uint64_t total = vfs.total_bytes();

  // From trivially-reachable through pass-exhausting to unreachable.
  for (const std::uint64_t target :
       {std::uint64_t{0}, total / 100, total / 10, total / 2, total}) {
    fs::Vfs after_walk, after_indexed;
    const PurgeReport walk = run_mode(vfs, registry, plan, target,
                                      /*dry_run=*/false, ScanMode::kWalk,
                                      &after_walk);
    const PurgeReport indexed = run_mode(vfs, registry, plan, target,
                                         /*dry_run=*/false, ScanMode::kIndexed,
                                         &after_indexed);
    expect_reports_equal(walk, indexed,
                         "wet target=" + std::to_string(target));
    EXPECT_EQ(after_walk.total_bytes(), after_indexed.total_bytes());
    EXPECT_EQ(after_walk.file_count(), after_indexed.file_count());
  }
}

TEST(ScanModes, DryRunsProduceIdenticalReportsAcrossTargets) {
  util::Rng rng(1337);
  const auto registry = trace::UserRegistry::with_synthetic_users(kUsers);
  fs::Vfs vfs;
  populate(vfs, registry, rng);
  const ScanPlan plan = make_plan(rng);
  const std::uint64_t total = vfs.total_bytes();

  for (const std::uint64_t target :
       {std::uint64_t{0}, total / 100, total / 10, total / 2, total}) {
    const PurgeReport walk = run_mode(vfs, registry, plan, target,
                                      /*dry_run=*/true, ScanMode::kWalk);
    const PurgeReport indexed = run_mode(vfs, registry, plan, target,
                                         /*dry_run=*/true, ScanMode::kIndexed);
    expect_reports_equal(walk, indexed,
                         "dry target=" + std::to_string(target));
  }
}

TEST(ScanModes, RandomizedPopulationsAgreeOverManySeeds) {
  const auto registry = trace::UserRegistry::with_synthetic_users(kUsers);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    fs::Vfs vfs;
    populate(vfs, registry, rng);
    const ScanPlan plan = make_plan(rng);
    const std::uint64_t target = static_cast<std::uint64_t>(
        static_cast<double>(vfs.total_bytes()) * rng.uniform(0.05, 0.9));
    const PurgeReport walk = run_mode(vfs, registry, plan, target,
                                      /*dry_run=*/false, ScanMode::kWalk);
    const PurgeReport indexed = run_mode(vfs, registry, plan, target,
                                         /*dry_run=*/false, ScanMode::kIndexed);
    expect_reports_equal(walk, indexed, "seed " + std::to_string(seed));
  }
}

TEST(ScanModes, ExemptionsRespectedInBothModes) {
  util::Rng rng(7);
  const auto registry = trace::UserRegistry::with_synthetic_users(kUsers);
  fs::Vfs vfs;
  populate(vfs, registry, rng);
  const ScanPlan plan = make_plan(rng);

  std::size_t exempted_by_mode[2] = {0, 0};
  int i = 0;
  for (const ScanMode mode : {ScanMode::kWalk, ScanMode::kIndexed}) {
    fs::Vfs run;
    run.import_snapshot(vfs.export_snapshot());
    ActiveDrConfig config;
    config.record_victims = true;
    config.scan_mode = mode;
    ActiveDrPolicy policy(config, registry);
    ExemptionList exemptions;
    exemptions.reserve(registry.home_dir(0));  // user 0 fully reserved
    policy.set_exemptions(std::move(exemptions));
    const PurgeReport report = policy.run(run, kNow, vfs.total_bytes(), plan);
    for (const auto& path : report.victim_paths) {
      EXPECT_EQ(path.rfind(registry.home_dir(0) + "/", 0), std::string::npos)
          << "exempt file purged in mode " << static_cast<int>(mode) << ": "
          << path;
    }
    EXPECT_GT(report.exempted_files, 0u);
    exempted_by_mode[i++] = report.exempted_files;
  }
  EXPECT_EQ(exempted_by_mode[0], exempted_by_mode[1]);
}

TEST(ScanModes, FltStrictModesSelectIdenticalVictimSets) {
  util::Rng rng(99);
  const auto registry = trace::UserRegistry::with_synthetic_users(kUsers);
  fs::Vfs vfs;
  populate(vfs, registry, rng);

  std::vector<std::string> victims_by_mode[2];
  std::uint64_t purged_by_mode[2] = {0, 0};
  int i = 0;
  for (const ScanMode mode : {ScanMode::kWalk, ScanMode::kIndexed}) {
    fs::Vfs run;
    run.import_snapshot(vfs.export_snapshot());
    FltConfig config;
    config.record_victims = true;
    config.scan_mode = mode;
    const FltPolicy policy(config);
    const PurgeReport report = policy.run(run, kNow, /*target=*/0);
    victims_by_mode[i] = report.victim_paths;
    std::sort(victims_by_mode[i].begin(), victims_by_mode[i].end());
    purged_by_mode[i] = report.purged_bytes;
    EXPECT_TRUE(run.verify_purge_index());
    ++i;
  }
  EXPECT_EQ(victims_by_mode[0], victims_by_mode[1]);
  EXPECT_EQ(purged_by_mode[0], purged_by_mode[1]);
}

}  // namespace
}  // namespace adr::retention
