#include "retention/flt.hpp"

#include <gtest/gtest.h>

#include "retention/policy.hpp"

namespace adr::retention {
namespace {

constexpr util::TimePoint kNow = 1'600'000'000;

fs::FileMeta meta(trace::UserId owner, std::uint64_t size, double age_days) {
  fs::FileMeta m;
  m.owner = owner;
  m.size_bytes = size;
  m.atime = kNow - static_cast<util::Duration>(age_days * 86400);
  m.ctime = m.atime;
  return m;
}

TEST(PurgeTarget, ComputesDeficit) {
  fs::Vfs vfs;
  vfs.create("/a/x", meta(0, 1000, 1));
  vfs.set_capacity_bytes(1000);
  EXPECT_EQ(purge_target_bytes(vfs, 0.5), 500u);
  EXPECT_EQ(purge_target_bytes(vfs, 1.0), 0u);
  EXPECT_EQ(purge_target_bytes(vfs, 0.0), 1000u);
}

TEST(PurgeTarget, ZeroWhenUnderTarget) {
  fs::Vfs vfs;
  vfs.create("/a/x", meta(0, 100, 1));
  vfs.set_capacity_bytes(1000);
  EXPECT_EQ(purge_target_bytes(vfs, 0.5), 0u);
}

TEST(Flt, StrictPurgesAllExpired) {
  fs::Vfs vfs;
  vfs.create("/s/u0/old1", meta(0, 10, 100));
  vfs.create("/s/u0/old2", meta(0, 20, 91));
  vfs.create("/s/u0/fresh", meta(0, 30, 89));
  const FltPolicy flt(FltConfig{90});
  const PurgeReport report = flt.run(vfs, kNow, 0);
  EXPECT_EQ(report.purged_files, 2u);
  EXPECT_EQ(report.purged_bytes, 30u);
  EXPECT_TRUE(report.target_reached);
  EXPECT_TRUE(vfs.exists("/s/u0/fresh"));
  EXPECT_FALSE(vfs.exists("/s/u0/old1"));
}

TEST(Flt, LifetimeBoundaryIsStrictlyGreater) {
  fs::Vfs vfs;
  vfs.create("/s/u0/edge", meta(0, 10, 90));  // age == lifetime: retained
  const FltPolicy flt(FltConfig{90});
  flt.run(vfs, kNow, 0);
  EXPECT_TRUE(vfs.exists("/s/u0/edge"));
}

TEST(Flt, StopsAtTarget) {
  fs::Vfs vfs;
  for (int i = 0; i < 10; ++i) {
    vfs.create("/s/u0/f" + std::to_string(i), meta(0, 100, 200));
  }
  const FltPolicy flt(FltConfig{90});
  const PurgeReport report = flt.run(vfs, kNow, 250);
  EXPECT_EQ(report.purged_files, 3u);  // 100+100+100 >= 250
  EXPECT_EQ(report.purged_bytes, 300u);
  EXPECT_TRUE(report.target_reached);
  EXPECT_EQ(vfs.file_count(), 7u);
}

TEST(Flt, TargetUnreachableWhenNothingExpired) {
  fs::Vfs vfs;
  vfs.create("/s/u0/fresh1", meta(0, 100, 1));
  vfs.create("/s/u0/fresh2", meta(0, 100, 2));
  const FltPolicy flt(FltConfig{90});
  const PurgeReport report = flt.run(vfs, kNow, 150);
  EXPECT_FALSE(report.target_reached);
  EXPECT_EQ(report.purged_files, 0u);
  EXPECT_EQ(vfs.file_count(), 2u);  // FLT never touches unexpired files
}

TEST(Flt, ReportGroupsViaCallback) {
  fs::Vfs vfs;
  vfs.create("/s/u0/old", meta(0, 10, 100));
  vfs.create("/s/u1/old", meta(1, 20, 100));
  vfs.create("/s/u1/fresh", meta(1, 40, 1));
  FltPolicy flt(FltConfig{90});
  flt.set_group_of([](trace::UserId u) {
    return u == 0 ? activeness::UserGroup::kBothActive
                  : activeness::UserGroup::kBothInactive;
  });
  const PurgeReport report = flt.run(vfs, kNow, 0);
  EXPECT_EQ(report.group(activeness::UserGroup::kBothActive).purged_bytes,
            10u);
  EXPECT_EQ(report.group(activeness::UserGroup::kBothInactive).purged_bytes,
            20u);
  EXPECT_EQ(report.group(activeness::UserGroup::kBothInactive).retained_bytes,
            40u);
  EXPECT_EQ(report.group(activeness::UserGroup::kBothActive).users_affected,
            1u);
  EXPECT_EQ(report.group(activeness::UserGroup::kBothActive).users_total, 1u);
  EXPECT_EQ(report.total_users_affected(), 2u);
  ASSERT_EQ(report.affected_users.size(), 2u);
}

TEST(Flt, DryRunSelectsWithoutDeleting) {
  fs::Vfs vfs;
  vfs.create("/s/u0/old", meta(0, 10, 100));
  vfs.create("/s/u0/fresh", meta(0, 30, 1));
  FltConfig config;
  config.lifetime_days = 90;
  config.dry_run = true;
  const FltPolicy flt(config);
  const PurgeReport report = flt.run(vfs, kNow, 0);
  EXPECT_TRUE(report.dry_run);
  EXPECT_EQ(report.purged_files, 1u);
  ASSERT_EQ(report.victim_paths.size(), 1u);
  EXPECT_EQ(report.victim_paths[0], "/s/u0/old");
  EXPECT_EQ(vfs.file_count(), 2u);  // untouched
}

TEST(Flt, RecordVictimsOnRealRun) {
  fs::Vfs vfs;
  vfs.create("/s/u0/old", meta(0, 10, 100));
  FltConfig config;
  config.record_victims = true;
  const FltPolicy flt(config);
  const PurgeReport report = flt.run(vfs, kNow, 0);
  EXPECT_FALSE(report.dry_run);
  ASSERT_EQ(report.victim_paths.size(), 1u);
  EXPECT_FALSE(vfs.exists("/s/u0/old"));
}

TEST(Flt, FacilityPresets) {
  EXPECT_EQ(FltConfig::ncar().lifetime_days, 120);
  EXPECT_EQ(FltConfig::olcf().lifetime_days, 90);
  EXPECT_EQ(FltConfig::tacc().lifetime_days, 30);
  EXPECT_EQ(FltConfig::nersc().lifetime_days, 84);
}

TEST(Flt, NameEncodesLifetime) {
  EXPECT_EQ(FltPolicy(FltConfig{30}).name(), "FLT-30d");
}

TEST(FillStats, RetainedByGroup) {
  fs::Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 10, 1));
  vfs.create("/s/u1/b", meta(1, 20, 1));
  PurgeReport report;
  fill_retained_stats(report, vfs, [](trace::UserId u) {
    return u == 0 ? activeness::UserGroup::kBothActive
                  : activeness::UserGroup::kOutcomeActiveOnly;
  });
  EXPECT_EQ(report.group(activeness::UserGroup::kBothActive).retained_bytes,
            10u);
  EXPECT_EQ(
      report.group(activeness::UserGroup::kOutcomeActiveOnly).retained_files,
      1u);
  EXPECT_EQ(report.total_retained_bytes(), 30u);
}

}  // namespace
}  // namespace adr::retention
