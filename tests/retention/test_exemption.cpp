#include "retention/exemption.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace adr::retention {
namespace {

TEST(ExemptionList, ExactMatch) {
  ExemptionList list;
  list.reserve("/scratch/u1/keep.dat");
  EXPECT_TRUE(list.is_exempt("/scratch/u1/keep.dat"));
  EXPECT_FALSE(list.is_exempt("/scratch/u1/other.dat"));
  EXPECT_FALSE(list.is_exempt("/scratch/u1"));
  EXPECT_EQ(list.size(), 1u);
}

TEST(ExemptionList, DirectoryReservationCoversSubtree) {
  ExemptionList list;
  list.reserve("/scratch/u1/project");
  EXPECT_TRUE(list.is_exempt("/scratch/u1/project"));
  EXPECT_TRUE(list.is_exempt("/scratch/u1/project/deep/file.h5"));
  EXPECT_FALSE(list.is_exempt("/scratch/u1/projectx/file.h5"));
  EXPECT_FALSE(list.is_exempt("/scratch/u1"));
}

TEST(ExemptionList, RenamedPathLapses) {
  // The paper's contract: moving a reserved file cancels the reservation.
  ExemptionList list;
  list.reserve("/scratch/u1/old_name.dat");
  EXPECT_FALSE(list.is_exempt("/scratch/u1/new_name.dat"));
}

TEST(ExemptionList, EmptyListExemptsNothing) {
  const ExemptionList list;
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.is_exempt("/anything"));
}

TEST(ExemptionList, ReservedPathsCanonicalSorted) {
  ExemptionList list;
  list.reserve("/b//x");
  list.reserve("/a/y/");
  const auto paths = list.reserved_paths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/a/y");
  EXPECT_EQ(paths[1], "/b/x");
}

TEST(ExemptionList, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/reserved.txt";
  {
    std::ofstream out(path);
    out << "# reservation list\n";
    out << "/scratch/u1/keep.dat\n";
    out << "   /scratch/u2/dir   # inline comment\n";
    out << "\n";
  }
  const ExemptionList list = ExemptionList::load(path);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_TRUE(list.is_exempt("/scratch/u1/keep.dat"));
  EXPECT_TRUE(list.is_exempt("/scratch/u2/dir/file"));

  const std::string out_path = ::testing::TempDir() + "/reserved_out.txt";
  list.save(out_path);
  const ExemptionList reloaded = ExemptionList::load(out_path);
  EXPECT_EQ(reloaded.size(), 2u);
  std::remove(path.c_str());
  std::remove(out_path.c_str());
}

TEST(ExemptionList, LoadMissingThrows) {
  EXPECT_THROW(ExemptionList::load("/nonexistent/list.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace adr::retention
