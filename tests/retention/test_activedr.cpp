#include "retention/activedr_policy.hpp"

#include <gtest/gtest.h>

#include "retention/flt.hpp"
#include "retention/policy.hpp"

namespace adr::retention {
namespace {

using activeness::Rank;
using activeness::ScanPlan;
using activeness::UserActiveness;
using activeness::UserGroup;

constexpr util::TimePoint kNow = 1'600'000'000;

fs::FileMeta meta(trace::UserId owner, std::uint64_t size, double age_days) {
  fs::FileMeta m;
  m.owner = owner;
  m.size_bytes = size;
  m.atime = kNow - static_cast<util::Duration>(age_days * 86400);
  m.ctime = m.atime;
  return m;
}

UserActiveness ua(trace::UserId user, double op, double oc) {
  UserActiveness u;
  u.user = user;
  u.op = Rank::from_value(op);
  u.oc = Rank::from_value(oc);
  return u;
}

/// Fixture: 4 users, one per activeness group, each owning files of
/// controlled ages under /scratch/user_0000N.
class ActiveDrTest : public ::testing::Test {
 protected:
  ActiveDrTest() : registry_(trace::UserRegistry::with_synthetic_users(4)) {}

  ScanPlan plan(std::vector<UserActiveness> users) {
    return activeness::build_scan_plan(std::move(users));
  }

  std::string file(trace::UserId u, const std::string& leaf) {
    return registry_.home_dir(u) + "/" + leaf;
  }

  trace::UserRegistry registry_;
  fs::Vfs vfs_;
};

TEST_F(ActiveDrTest, NoTargetPurgesExpiredPerAdjustedLifetime) {
  // user0: both-active with rank 2 -> lifetime 180d; user3: inactive -> 90d.
  vfs_.create(file(0, "old_150d"), meta(0, 10, 150));   // kept (eps 180)
  vfs_.create(file(0, "old_200d"), meta(0, 10, 200));   // purged
  vfs_.create(file(3, "old_150d"), meta(3, 10, 150));   // purged (eps 90)
  vfs_.create(file(3, "old_80d"), meta(3, 10, 80));     // kept

  ActiveDrConfig config;
  config.initial_lifetime_days = 90;
  const ActiveDrPolicy policy(config, registry_);
  const PurgeReport report = policy.run(
      vfs_, kNow, 0, plan({ua(0, 2.0, 1.0), ua(3, 0.0, 0.0)}));

  EXPECT_TRUE(vfs_.exists(file(0, "old_150d")));
  EXPECT_FALSE(vfs_.exists(file(0, "old_200d")));
  EXPECT_FALSE(vfs_.exists(file(3, "old_150d")));
  EXPECT_TRUE(vfs_.exists(file(3, "old_80d")));
  EXPECT_EQ(report.purged_files, 2u);
  EXPECT_EQ(report.retrospective_passes_used, 0);  // no target, single pass
}

TEST_F(ActiveDrTest, ScansInactiveUsersFirst) {
  // All files same age/size; the byte target only covers one file, so the
  // inactive user's file must be the casualty.
  vfs_.create(file(0, "f"), meta(0, 100, 120));  // both-active
  vfs_.create(file(3, "f"), meta(3, 100, 120));  // both-inactive
  const ActiveDrPolicy policy(ActiveDrConfig{}, registry_);
  const PurgeReport report =
      policy.run(vfs_, kNow, 100, plan({ua(0, 5.0, 5.0), ua(3, 0.0, 0.0)}));
  EXPECT_TRUE(report.target_reached);
  EXPECT_TRUE(vfs_.exists(file(0, "f")));
  EXPECT_FALSE(vfs_.exists(file(3, "f")));
  EXPECT_EQ(report.group(UserGroup::kBothInactive).purged_files, 1u);
  EXPECT_EQ(report.group(UserGroup::kBothActive).purged_files, 0u);
}

TEST_F(ActiveDrTest, AscendingRankWithinGroup) {
  // Two inactive users; the lower-ranked one is scanned (and purged) first.
  vfs_.create(file(2, "f"), meta(2, 100, 120));
  vfs_.create(file(3, "f"), meta(3, 100, 120));
  const ActiveDrPolicy policy(ActiveDrConfig{}, registry_);
  // user3 rank 0 < user2 rank 0.5 -> user3 purged first.
  const PurgeReport report = policy.run(
      vfs_, kNow, 100, plan({ua(2, 0.5, 0.5), ua(3, 0.0, 0.0)}));
  EXPECT_TRUE(report.target_reached);
  EXPECT_FALSE(vfs_.exists(file(3, "f")));
  EXPECT_TRUE(vfs_.exists(file(2, "f")));
}

TEST_F(ActiveDrTest, RetrospectivePassesDecayLifetimes) {
  // Inactive user's file at 50 days: survives the normal 90d pass; decayed
  // passes (90 * 0.8^k) cross below 50d at k=3 (46.08d).
  vfs_.create(file(3, "f"), meta(3, 100, 50));
  const ActiveDrPolicy policy(ActiveDrConfig{}, registry_);
  const PurgeReport report =
      policy.run(vfs_, kNow, 100, plan({ua(3, 0.0, 0.0)}));
  EXPECT_TRUE(report.target_reached);
  EXPECT_FALSE(vfs_.exists(file(3, "f")));
  EXPECT_GE(report.retrospective_passes_used, 3);
}

TEST_F(ActiveDrTest, RetrospectiveDecayContinuesPastBottomedOutUsers) {
  // Regression: the early-exit after a fruitless decayed pass must check
  // the whole group's lifetimes, not only the lowest-ranked user's. Here
  // user3 (rank 0 under literal Eq. 7 with no multiplier floor) bottoms
  // out at lifetime 0 immediately and sorts first in the group; user2's
  // 60d lifetime still has decay room and crosses the file's 35d age at
  // pass 3 (60 * 0.8^3 = 30.72d). Probing only the front user would stop
  // the whole group's decay after the first fruitless pass.
  vfs_.create(file(2, "f"), meta(2, 100, 35));
  ActiveDrConfig config;
  config.initial_lifetime_days = 100;
  config.lifetime_mode = activeness::LifetimeMode::kLiteralEq7;
  config.min_multiplier = 0.0;
  const ActiveDrPolicy policy(config, registry_);
  UserActiveness weak;  // op 0.6, oc no-data (neutral) -> multiplier 0.6
  weak.user = 2;
  weak.op = Rank::from_value(0.6);
  const PurgeReport report =
      policy.run(vfs_, kNow, 100, plan({ua(3, 0.0, 0.0), weak}));
  EXPECT_TRUE(report.target_reached);
  EXPECT_FALSE(vfs_.exists(file(2, "f")));
  EXPECT_GE(report.retrospective_passes_used, 3);
}

TEST_F(ActiveDrTest, PhaseTimingsAccumulatePerPass) {
  vfs_.create(file(3, "old"), meta(3, 100, 200));
  const ActiveDrPolicy policy(ActiveDrConfig{}, registry_);
  const PurgeReport report =
      policy.run(vfs_, kNow, 0, plan({ua(3, 0.0, 0.0)}));
  EXPECT_EQ(report.purged_files, 1u);
  // Wall clocks are coarse but both phases ran, so both timers advanced.
  EXPECT_GT(report.phases.scan_seconds, 0.0);
  EXPECT_GT(report.phases.apply_seconds, 0.0);
  EXPECT_GT(report.phases.total_seconds(), 0.0);
}

TEST_F(ActiveDrTest, TargetUnreachableReported) {
  // A single very fresh file: even 5 decayed passes (min 90*0.33 = 29.5d)
  // cannot free it.
  vfs_.create(file(3, "f"), meta(3, 100, 10));
  const ActiveDrPolicy policy(ActiveDrConfig{}, registry_);
  const PurgeReport report =
      policy.run(vfs_, kNow, 100, plan({ua(3, 0.0, 0.0)}));
  EXPECT_FALSE(report.target_reached);
  EXPECT_TRUE(vfs_.exists(file(3, "f")));
  EXPECT_EQ(report.purged_files, 0u);
}

TEST_F(ActiveDrTest, EffectiveLifetimeFormula) {
  ActiveDrConfig config;
  config.initial_lifetime_days = 100;
  config.retrospective_decay = 0.2;
  const ActiveDrPolicy policy(config, registry_);
  const UserActiveness active = ua(0, 3.0, 2.0);
  // Eq. 7: 100d * 3 * 2 = 600d.
  EXPECT_EQ(policy.effective_lifetime(active, 0), util::days(600));
  // Pass 1 decays by 20%.
  EXPECT_EQ(policy.effective_lifetime(active, 1),
            static_cast<util::Duration>(util::days(600) * 0.8));
  // Inactive user in default mode: initial lifetime.
  EXPECT_EQ(policy.effective_lifetime(ua(3, 0.0, 0.0), 0), util::days(100));
}

TEST_F(ActiveDrTest, LiteralEq7ModeShrinksInactiveLifetimes) {
  ActiveDrConfig config;
  config.lifetime_mode = activeness::LifetimeMode::kLiteralEq7;
  const ActiveDrPolicy policy(config, registry_);
  // op = 0.5 with outcome no-data (neutral 1.0): eps = 90 * 0.5 = 45 days.
  UserActiveness half;
  half.user = 3;
  half.op = Rank::from_value(0.5);
  EXPECT_EQ(policy.effective_lifetime(half, 0), util::days(45));
}

TEST_F(ActiveDrTest, ExemptFilesAreNeverPurged) {
  vfs_.create(file(3, "keep/precious.dat"), meta(3, 100, 500));
  vfs_.create(file(3, "junk.dat"), meta(3, 100, 500));
  ActiveDrConfig config;
  ActiveDrPolicy policy(config, registry_);
  ExemptionList exemptions;
  exemptions.reserve(file(3, "keep"));
  policy.set_exemptions(std::move(exemptions));
  const PurgeReport report =
      policy.run(vfs_, kNow, 0, plan({ua(3, 0.0, 0.0)}));
  EXPECT_TRUE(vfs_.exists(file(3, "keep/precious.dat")));
  EXPECT_FALSE(vfs_.exists(file(3, "junk.dat")));
  EXPECT_GE(report.exempted_files, 1u);
}

TEST_F(ActiveDrTest, StopsExactlyAtTargetAcrossUsers) {
  for (int i = 0; i < 5; ++i) {
    vfs_.create(file(3, "f" + std::to_string(i)), meta(3, 100, 200));
  }
  const ActiveDrPolicy policy(ActiveDrConfig{}, registry_);
  const PurgeReport report =
      policy.run(vfs_, kNow, 250, plan({ua(3, 0.0, 0.0)}));
  EXPECT_TRUE(report.target_reached);
  EXPECT_EQ(report.purged_files, 3u);
  EXPECT_EQ(vfs_.file_count(), 2u);
}

TEST_F(ActiveDrTest, ActiveUserRewardedOverFlt) {
  // Head-to-head with FLT at the same target: the active user's stale file
  // survives under ActiveDR but dies under FLT's path-order scan.
  auto build = [&](fs::Vfs& v) {
    v.create(file(0, "stale_120d"), meta(0, 100, 120));  // active user
    v.create(file(3, "stale_120d"), meta(3, 100, 120));  // inactive user
  };
  fs::Vfs flt_vfs, adr_vfs;
  build(flt_vfs);
  build(adr_vfs);

  const FltPolicy flt(FltConfig{90});
  flt.run(flt_vfs, kNow, 100);
  // FLT scans in path order: user_00000 comes first and is purged.
  EXPECT_FALSE(flt_vfs.exists(file(0, "stale_120d")));

  const ActiveDrPolicy adr(ActiveDrConfig{}, registry_);
  adr.run(adr_vfs, kNow, 100, plan({ua(0, 4.0, 4.0), ua(3, 0.0, 0.0)}));
  EXPECT_TRUE(adr_vfs.exists(file(0, "stale_120d")));
  EXPECT_FALSE(adr_vfs.exists(file(3, "stale_120d")));
}

TEST_F(ActiveDrTest, ReportAccounting) {
  vfs_.create(file(1, "a"), meta(1, 10, 200));
  vfs_.create(file(1, "b"), meta(1, 30, 200));
  vfs_.create(file(2, "c"), meta(2, 50, 10));
  const ActiveDrPolicy policy(ActiveDrConfig{}, registry_);
  const PurgeReport report = policy.run(
      vfs_, kNow, 0, plan({ua(1, 2.0, 0.0), ua(2, 0.0, 2.0)}));
  // user1 (op rank 2): eps = 180d < 200d age -> both files purged.
  const auto& op_only = report.group(UserGroup::kOperationActiveOnly);
  EXPECT_EQ(op_only.purged_bytes, 40u);
  EXPECT_EQ(report.purged_files, 2u);
  EXPECT_EQ(op_only.purged_files, 2u);
  EXPECT_EQ(op_only.users_affected, 1u);
  EXPECT_EQ(report.group(UserGroup::kOutcomeActiveOnly).retained_bytes, 50u);
  EXPECT_EQ(report.policy, "ActiveDR-90d");
}

TEST_F(ActiveDrTest, DryRunSelectsWithoutDeleting) {
  vfs_.create(file(3, "old1"), meta(3, 100, 200));
  vfs_.create(file(3, "old2"), meta(3, 100, 200));
  vfs_.create(file(3, "fresh"), meta(3, 100, 1));
  ActiveDrConfig config;
  config.dry_run = true;
  const ActiveDrPolicy policy(config, registry_);
  const PurgeReport report =
      policy.run(vfs_, kNow, 150, plan({ua(3, 0.0, 0.0)}));

  EXPECT_TRUE(report.dry_run);
  EXPECT_TRUE(report.target_reached);
  EXPECT_EQ(report.purged_files, 2u);
  EXPECT_EQ(report.victim_paths.size(), 2u);
  // Nothing actually deleted.
  EXPECT_EQ(vfs_.file_count(), 3u);
  EXPECT_TRUE(vfs_.exists(file(3, "old1")));

  // A real run selects exactly the same victims.
  ActiveDrConfig wet = config;
  wet.dry_run = false;
  wet.record_victims = true;
  const PurgeReport real = ActiveDrPolicy(wet, registry_)
                               .run(vfs_, kNow, 150, plan({ua(3, 0.0, 0.0)}));
  EXPECT_EQ(real.victim_paths, report.victim_paths);
  EXPECT_EQ(vfs_.file_count(), 1u);
}

TEST_F(ActiveDrTest, DryRunRetrospectivePassesDoNotDoubleCount) {
  // A file eligible at pass 0 is re-seen by every decayed pass; the dry run
  // must count it once.
  vfs_.create(file(3, "old"), meta(3, 100, 500));
  ActiveDrConfig config;
  config.dry_run = true;
  const ActiveDrPolicy policy(config, registry_);
  const PurgeReport report =
      policy.run(vfs_, kNow, 10'000, plan({ua(3, 0.0, 0.0)}));
  EXPECT_EQ(report.purged_files, 1u);
  EXPECT_FALSE(report.target_reached);
}

}  // namespace
}  // namespace adr::retention
