#include "retention/cache_policy.hpp"

#include <gtest/gtest.h>

namespace adr::retention {
namespace {

constexpr util::TimePoint kNow = 1'600'000'000;

fs::FileMeta meta(trace::UserId owner, std::uint64_t size, double age_days) {
  fs::FileMeta m;
  m.owner = owner;
  m.size_bytes = size;
  m.atime = kNow - static_cast<util::Duration>(age_days * 86400);
  m.ctime = m.atime;
  return m;
}

TEST(ScratchCache, EvictsEverythingBeyondHorizon) {
  fs::Vfs vfs;
  vfs.create("/s/u0/in_use", meta(0, 100, 1));
  vfs.create("/s/u0/idle_3d", meta(0, 100, 3));
  vfs.create("/s/u0/idle_90d", meta(0, 100, 90));
  const ScratchCachePolicy policy(ScratchCacheConfig{2});
  const PurgeReport report = policy.run(vfs, kNow);
  EXPECT_EQ(report.purged_files, 2u);
  EXPECT_TRUE(vfs.exists("/s/u0/in_use"));
  EXPECT_FALSE(vfs.exists("/s/u0/idle_3d"));
  EXPECT_FALSE(vfs.exists("/s/u0/idle_90d"));
}

TEST(ScratchCache, IgnoresByteTargets) {
  // A cache holds exactly the working set — a generous target changes
  // nothing.
  fs::Vfs vfs;
  vfs.create("/s/u0/idle", meta(0, 100, 10));
  vfs.create("/s/u0/fresh", meta(0, 100, 0));
  const ScratchCachePolicy policy(ScratchCacheConfig{2});
  const PurgeReport report = policy.run(vfs, kNow, /*target=*/1'000'000);
  EXPECT_EQ(report.target_purge_bytes, 0u);
  EXPECT_TRUE(report.target_reached);
  EXPECT_EQ(report.purged_files, 1u);
  EXPECT_TRUE(vfs.exists("/s/u0/fresh"));
}

TEST(ScratchCache, NameEncodesHorizon) {
  EXPECT_EQ(ScratchCachePolicy(ScratchCacheConfig{1}).name(),
            "ScratchCache-1d");
}

TEST(ScratchCache, ReportGroupsAndAffectedUsers) {
  fs::Vfs vfs;
  vfs.create("/s/u0/a", meta(0, 10, 5));
  vfs.create("/s/u0/b", meta(0, 20, 7));
  vfs.create("/s/u1/c", meta(1, 30, 9));
  ScratchCachePolicy policy(ScratchCacheConfig{2});
  policy.set_group_of([](trace::UserId u) {
    return u == 0 ? activeness::UserGroup::kOperationActiveOnly
                  : activeness::UserGroup::kBothInactive;
  });
  const PurgeReport report = policy.run(vfs, kNow);
  EXPECT_EQ(report.group(activeness::UserGroup::kOperationActiveOnly)
                .purged_bytes,
            30u);
  EXPECT_EQ(report.group(activeness::UserGroup::kOperationActiveOnly)
                .users_affected,
            1u);
  EXPECT_EQ(report.group(activeness::UserGroup::kBothInactive).purged_bytes,
            30u);
  EXPECT_EQ(report.total_users_affected(), 2u);
}

}  // namespace
}  // namespace adr::retention
