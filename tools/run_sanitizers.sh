#!/usr/bin/env bash
# Build and run the test suite under ASan+UBSan and TSan.
#
# Usage: tools/run_sanitizers.sh [asan-ubsan|tsan] [ctest -R regex]
#   tools/run_sanitizers.sh                 # both sanitizers, full suite
#   tools/run_sanitizers.sh tsan            # TSan only
#   tools/run_sanitizers.sh tsan ThreadPool # TSan, tests matching ThreadPool
#
# Uses the CMakePresets.json presets of the same names; build trees land in
# build-asan/ and build-tsan/ next to build/.

set -euo pipefail
cd "$(dirname "$0")/.."

presets=(asan-ubsan tsan)
if [[ $# -ge 1 ]]; then
  presets=("$1")
  shift
fi
filter=("$@")

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

jobs="$(nproc 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure"
  cmake --preset "$preset" >/dev/null
  echo "==> [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==> [$preset] test"
  if [[ ${#filter[@]} -gt 0 ]]; then
    ctest --preset "$preset" -R "${filter[@]}"
  else
    ctest --preset "$preset"
  fi
  echo "==> [$preset] OK"
done
