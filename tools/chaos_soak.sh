#!/usr/bin/env bash
# Chaos soak for the resident daemon (`activedr chaos`, DESIGN.md §14.4).
#
# Runs the deterministic fault-epoch harness across a seed matrix: each
# epoch draws one fault class (kill / enospc / torn / flood / stall) from a
# seeded stream and asserts the §14 invariants — post-fault ranks and
# victims byte-identical to a cold replay, exact-loss accounting under
# floods, health back to `ok` before the epoch closes. A failing seed
# replays byte-for-byte: rerun with SEEDS=<seed> DURATION=0 EPOCHS=<n>.
#
# Usage: tools/chaos_soak.sh [build-dir]   (default: build)
#   SEEDS="1 2 3"    seed matrix (default: 1 2 3)
#   EPOCHS=20        minimum fault epochs per seed (default: 20)
#   DURATION=60      wall-clock budget per seed in seconds; epochs keep
#                    cycling until it is spent (default: 60, 0 = epochs only)
#   USERS=12 EVENTS=120   workload size per epoch

set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
if [[ ! -x "$build_dir/tools/activedr" ]]; then
  cmake -B "$build_dir" -S . >/dev/null
  cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" --target activedr_tool
fi
adr="$PWD/$build_dir/tools/activedr"

seeds="${SEEDS:-1 2 3}"
epochs="${EPOCHS:-20}"
duration="${DURATION:-60}"
users="${USERS:-12}"
events="${EVENTS:-120}"

work="$(mktemp -d "${TMPDIR:-/tmp}/adr_chaos_soak.XXXXXX")"
trap 'rm -rf "$work"' EXIT

failed=0
for seed in $seeds; do
  echo "==> chaos soak seed=$seed epochs>=$epochs duration=${duration}s"
  log="$work/soak_$seed.log"
  if "$adr" chaos --dir "$work/run_$seed" --seed "$seed" \
      --epochs "$epochs" --duration "$duration" \
      --users "$users" --events-per-epoch "$events" >"$log" 2>&1 \
      && grep -q "chaos: PASS" "$log"; then
    grep "chaos: PASS" "$log"
  else
    echo "FAIL: seed $seed — replay with:"
    echo "  $adr chaos --dir /tmp/chaos_repro --seed $seed --epochs $epochs" \
         "--users $users --events-per-epoch $events"
    tail -n 25 "$log"
    failed=1
  fi
done

if [[ "$failed" -ne 0 ]]; then
  echo "==> chaos soak FAILED"
  exit 1
fi
echo "==> chaos soak OK"
