// The `activedr` command-line tool. All logic lives in src/cli so the test
// suite can drive it in-process; this is just the entry point.

#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return adr::cli::run_cli(argc, argv, std::cout, std::cerr);
}
