#!/usr/bin/env bash
# End-to-end smoke for the resident daemon (`activedr serve`, DESIGN.md §13):
#
#   1. synth a scenario bundle, feed its job/publication traces into a WAL
#   2. start the daemon (snapshot-seeded), trigger a warm purge via ctl
#   3. compare the warm victims + ranks byte-for-byte against a cold
#      one-shot `purge` over the same inputs
#   4. kill -9 the daemon, restart it, trigger again -> identical artifacts
#   5. stop gracefully with SIGTERM (seal WAL + final checkpoint, exit 0)
#      and verify a third daemon recovers from the checkpoint
#
# Usage: tools/serve_smoke.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
if [[ ! -x "$build_dir/tools/activedr" ]]; then
  cmake -B "$build_dir" -S . >/dev/null
  cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" --target activedr_tool
fi
adr="$PWD/$build_dir/tools/activedr"

work="$(mktemp -d "${TMPDIR:-/tmp}/adr_serve_smoke.XXXXXX")"
daemon_pid=""
cleanup() {
  [[ -n "$daemon_pid" ]] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT
cd "$work"

now=2017-01-01
retain=0.5

# Poll a condition with a deadline instead of waiting unboundedly — a hung
# daemon fails the smoke in seconds, not a CI-job timeout.
poll_until() {  # poll_until <timeout-s> <what> <cmd...>
  local deadline=$((SECONDS + $1)) what="$2"
  shift 2
  until "$@"; do
    if ((SECONDS >= deadline)); then
      echo "FAIL: timed out waiting for $what"
      exit 1
    fi
    sleep 0.1
  done
}

wait_pid_bounded() {  # wait_pid_bounded <timeout-s> <what> [expected-rc]
  local timeout="$1" what="$2" expect="${3:-}"
  poll_until "$timeout" "$what" bash -c "! kill -0 $daemon_pid 2>/dev/null"
  local rc=0
  wait "$daemon_pid" 2>/dev/null || rc=$?
  daemon_pid=""
  if [[ -n "$expect" && "$rc" -ne "$expect" ]]; then
    echo "FAIL: $what exited rc=$rc (expected $expect)"
    exit 1
  fi
}

echo "==> synth + feed"
"$adr" synth --out bundle --users 40 --seed 7 >/dev/null
"$adr" feed --wal wal --jobs bundle/jobs.csv --pubs bundle/pubs.csv

echo "==> cold one-shot reference"
"$adr" purge --snapshot bundle/snapshot.csv --users bundle/users.csv \
  --jobs bundle/jobs.csv --pubs bundle/pubs.csv --now "$now" \
  --target "$retain" --dry-run --scan-mode indexed \
  --victims cold_victims.txt >/dev/null

start_daemon() {
  "$adr" serve --wal wal --state state --users bundle/users.csv \
    --snapshot bundle/snapshot.csv --poll-ms 5 \
    --metrics-out state/metrics.json --metrics-interval 10 \
    &>"$1" &
  daemon_pid=$!
}

warm_trigger() {
  "$adr" ctl --state state --cmd trigger --now "$now" --retain "$retain" \
    --victims-out "$1" --timeout-ms 30000 >/dev/null
}

echo "==> warm trigger vs cold"
start_daemon serve1.log
warm_trigger warm1.txt
cmp cold_victims.txt warm1.txt

echo "==> kill -9, restart, trigger again"
kill -9 "$daemon_pid"
wait_pid_bounded 30 "killed daemon to reap"
start_daemon serve2.log
warm_trigger warm2.txt
cmp cold_victims.txt warm2.txt

echo "==> graceful stop (SIGTERM)"
kill -TERM "$daemon_pid"
wait_pid_bounded 60 "graceful SIGTERM stop" 0
ls wal/*.open >/dev/null 2>&1 && { echo "FAIL: WAL not sealed"; exit 1; }
ls state/checkpoints/checkpoint-* >/dev/null

echo "==> recovery from the final checkpoint"
start_daemon serve3.log
"$adr" ctl --state state --cmd status --timeout-ms 30000 | grep -q "ok = true"
"$adr" ctl --state state --cmd stop --timeout-ms 30000 >/dev/null
wait_pid_bounded 60 "ctl stop shutdown" 0
poll_until 30 "final metrics export" grep -q serve.graceful_stops state/metrics.json

echo "==> serve smoke OK"
