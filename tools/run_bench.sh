#!/usr/bin/env bash
# Perf regression harness for the purge-index scan path and the sustained-
# load harness.
#
# Builds the Release bench tree, runs the Fig. 12 walk-vs-indexed purge
# trigger comparison and the bench_load ramp, and diffs the emitted
# BENCH_fig12.json / BENCH_load.json against the committed baselines
# (bench/baselines/).
#
# Fails when:
#   * the two scan modes select different victim sets (correctness), or
#   * the indexed/walk speedup drops below MIN_SPEEDUP (default 3.0), or
#   * indexed_seconds regresses more than TOLERANCE x the baseline, or
#   * full and incremental eval modes produce different ranks/plans, or
#   * the incremental eval-phase speedup over full re-evaluation drops
#     below MIN_EVAL_SPEEDUP (default 3.0), or
#   * the sharded pipeline diverges from the single pipeline (plans or
#     purge victims), or
#   * this machine has >= 4 cores but the shard comparison ran at < 4
#     shards (the speedup gate would be silently skipped — loud failure,
#     not a skip), or
#   * the run used >= 4 shards and the sharded advance's speedup over the
#     single pipeline drops below MIN_SHARD_SPEEDUP (default 2.0; on hosts
#     with < 4 cores the floor is skipped with an explicit note), or
#   * bench_load's concurrent ingest diverged from the serial replay at any
#     shard count (ranks must be byte-identical), or
#   * bench_load's max sustainable rate drops below MIN_LOAD_RATE (default:
#     baseline max_sustainable_rate / TOLERANCE), or
#   * bench_scale's 600-user streamed-vs-materialized identity anchor
#     diverges (events, ranks, or purge victims), or
#   * any bench_scale tier's peak RSS exceeds SCALE_RSS_GB (default 4.0).
#
# Usage: tools/run_bench.sh [extra bench_fig12 flags, e.g. --users 600]
#        LOAD_FLAGS overrides the bench_load invocation (default:
#        "--load-rate 1000 --load-duration 0.5 --ramp-levels 4").
#        SCALE_USERS overrides the bench_scale tier list (default 100000).
#        The full 1M-user tier (SCALE_USERS=1000000) is wall-clock-bound on
#        the single driver thread: budget minutes on a multi-core machine
#        (shard fan-out soaks up the evaluate/purge side) and tens of
#        minutes on a 1-core container — it is deliberately NOT part of the
#        default gate. The RSS budget is the interesting axis and 100k
#        already exercises eviction; run 1M manually before a release.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/bench-build}"
BASELINE="$REPO_ROOT/bench/baselines/BENCH_fig12.json"
LOAD_BASELINE="$REPO_ROOT/bench/baselines/BENCH_load.json"
OUT_JSON="$BUILD_DIR/BENCH_fig12.json"
LOAD_JSON="$BUILD_DIR/BENCH_load.json"
MIN_SPEEDUP="${MIN_SPEEDUP:-3.0}"
MIN_EVAL_SPEEDUP="${MIN_EVAL_SPEEDUP:-3.0}"
MIN_SHARD_SPEEDUP="${MIN_SHARD_SPEEDUP:-2.0}"
MIN_LOAD_RATE="${MIN_LOAD_RATE:-0}"
TOLERANCE="${TOLERANCE:-1.5}"
LOAD_FLAGS="${LOAD_FLAGS:---load-rate 1000 --load-duration 0.5 --ramp-levels 4}"
SCALE_USERS="${SCALE_USERS:-100000}"
SCALE_RSS_GB="${SCALE_RSS_GB:-4.0}"
SCALE_JSON="$BUILD_DIR/BENCH_scale.json"
CORES="$(nproc)"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench_fig12_performance bench_load \
    bench_scale -j "$CORES"

# The google-benchmark suites are not part of the regression gate; the
# comparison section runs before them, so cut the run short via filter-less
# environment (benchmark still runs, but it is cheap at bench scale).
"$BUILD_DIR/bench/bench_fig12_performance" --bench-json "$OUT_JSON" "$@"

# Sustained-load ramp. bench_load itself exits nonzero when the concurrent
# ranks diverge from the serial replay, so a correctness failure stops the
# harness before the gate even runs.
# shellcheck disable=SC2086  # LOAD_FLAGS is intentionally word-split
"$BUILD_DIR/bench/bench_load" --bench-json "$LOAD_JSON" $LOAD_FLAGS

# Scale tier (DESIGN.md §15). bench_scale self-gates: it exits nonzero when
# the 600-user streamed-vs-materialized identity anchor diverges or when a
# tier's peak RSS exceeds the budget, so no post-processing is needed here.
"$BUILD_DIR/bench/bench_scale" --users "$SCALE_USERS" \
    --rss-budget-gb "$SCALE_RSS_GB" --bench-json "$SCALE_JSON"

python3 - "$OUT_JSON" "$BASELINE" "$MIN_SPEEDUP" "$TOLERANCE" \
    "$MIN_EVAL_SPEEDUP" "$MIN_SHARD_SPEEDUP" "$CORES" \
    "$LOAD_JSON" "$LOAD_BASELINE" "$MIN_LOAD_RATE" <<'PY'
import json, sys

(out_path, base_path, min_speedup, tolerance, min_eval_speedup,
 min_shard_speedup, cores, load_path, load_base_path,
 min_load_rate) = sys.argv[1:11]
min_speedup, tolerance = float(min_speedup), float(tolerance)
min_eval_speedup = float(min_eval_speedup)
min_shard_speedup = float(min_shard_speedup)
min_load_rate = float(min_load_rate)
cores = int(cores)
out = json.load(open(out_path))
base = json.load(open(base_path))
load = json.load(open(load_path))
load_base = json.load(open(load_base_path))

failures = []
if not out["victim_sets_identical"]:
    failures.append("walk and indexed scans selected DIFFERENT victim sets")
if out["speedup"] < min_speedup:
    failures.append(
        f"indexed speedup {out['speedup']:.2f}x below floor {min_speedup}x")
if not out["eval_ranks_identical"]:
    failures.append(
        "full and incremental eval modes produced DIFFERENT ranks/plans")
if out["eval_speedup"] < min_eval_speedup:
    failures.append(
        f"incremental eval speedup {out['eval_speedup']:.2f}x below floor "
        f"{min_eval_speedup}x")
if not out.get("shard_ranks_identical", True):
    failures.append(
        "sharded and single pipelines produced DIFFERENT ranks/plans")
if not out.get("shard_victims_identical", True):
    failures.append(
        "sharded and single pipelines selected DIFFERENT purge victims")
# The wall-clock floor only means something with real parallelism under it;
# identity is enforced at every shard count above. A >= 4-core machine that
# somehow ran < 4 shards is a broken configuration, not a skip — that is
# exactly the state in which the floor silently stops gating anything.
shards = out.get("shards", 1)
if cores >= 4 and shards < 4:
    failures.append(
        f"shard comparison ran at {shards} shard(s) on a {cores}-core "
        f"machine: the >= 4-shard speedup gate was silently skipped "
        f"(check ACTIVEDR_THREADS / --shards)")
elif shards >= 4 and out["shard_speedup"] < min_shard_speedup:
    failures.append(
        f"shard speedup {out['shard_speedup']:.2f}x at {shards} "
        f"shards below floor {min_shard_speedup}x")
elif cores < 4:
    print(f"note: {cores} core(s) < 4 — shard speedup floor "
          f"{min_shard_speedup}x NOT enforced on this host "
          f"(identity still gated at {shards} shard(s))")

# Sustained-load gate: identity is absolute; the sustainable-rate floor is
# baseline-relative unless MIN_LOAD_RATE pins it.
if not load.get("ranks_identical", False):
    failures.append(
        "bench_load: concurrent ranks diverged from serial replay")
if not load.get("identity_all_identical", False):
    failures.append(
        "bench_load: identity matrix (1/2/4 shards) found a divergence")
load_floor = min_load_rate
if load_floor <= 0:
    load_floor = load_base.get("max_sustainable_rate", 0.0) / tolerance
if load["max_sustainable_rate"] < load_floor:
    failures.append(
        f"max sustainable rate {load['max_sustainable_rate']:.0f} ev/s "
        f"below floor {load_floor:.0f} ev/s")

# Cross-run comparisons only make sense on the baseline's scenario.
same_scenario = all(out[k] == base[k] for k in ("users", "seed", "files"))
if same_scenario:
    if out["victims"] != base["victims"]:
        failures.append(
            f"victim count changed: {out['victims']} vs baseline "
            f"{base['victims']}")
    if out["purged_bytes"] != base["purged_bytes"]:
        failures.append(
            f"purged bytes changed: {out['purged_bytes']} vs baseline "
            f"{base['purged_bytes']}")
    if out["indexed_seconds"] > base["indexed_seconds"] * tolerance:
        failures.append(
            f"indexed scan regressed: {out['indexed_seconds']:.4f}s vs "
            f"baseline {base['indexed_seconds']:.4f}s "
            f"(tolerance {tolerance}x)")
    if "eval_incremental_seconds" in base and (
            out["eval_incremental_seconds"]
            > base["eval_incremental_seconds"] * tolerance):
        failures.append(
            f"incremental eval regressed: "
            f"{out['eval_incremental_seconds']:.4f}s vs baseline "
            f"{base['eval_incremental_seconds']:.4f}s "
            f"(tolerance {tolerance}x)")
else:
    print(f"note: scenario differs from baseline "
          f"({out['users']} users / seed {out['seed']} vs "
          f"{base['users']} / {base['seed']}); timing diff skipped")

print(f"walk {out['walk_seconds']:.4f}s, indexed "
      f"{out['indexed_seconds']:.4f}s, speedup {out['speedup']:.2f}x, "
      f"{out['victims']} victims")
print(f"eval full {out['eval_full_seconds']:.4f}s, incremental "
      f"{out['eval_incremental_seconds']:.4f}s, speedup "
      f"{out['eval_speedup']:.2f}x over {out['eval_triggers']} triggers")
print(f"shards {shards}: 1-shard "
      f"{out.get('shard_1_seconds', 0):.4f}s, n-shard "
      f"{out.get('shard_n_seconds', 0):.4f}s, speedup "
      f"{out.get('shard_speedup', 0):.2f}x")
levels = load.get("levels", [])
tail = levels[-1] if levels else {}
print(f"load: max sustainable {load['max_sustainable_rate']:.0f} ev/s over "
      f"{len(levels)} level(s) at {load.get('shards', 1)} shard(s), last "
      f"level p50 {tail.get('p50_ms', 0):.2f}ms p99 "
      f"{tail.get('p99_ms', 0):.2f}ms p999 {tail.get('p999_ms', 0):.2f}ms, "
      f"ranks identical: {load.get('ranks_identical', False)}")
if failures:
    for f in failures:
        print("FAIL:", f, file=sys.stderr)
    sys.exit(1)
print("PASS")
PY
