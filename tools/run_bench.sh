#!/usr/bin/env bash
# Perf regression harness for the purge-index scan path.
#
# Builds the Release bench tree, runs the Fig. 12 walk-vs-indexed purge
# trigger comparison, and diffs the emitted BENCH_fig12.json against the
# committed baseline (bench/baselines/BENCH_fig12.json).
#
# Fails when:
#   * the two scan modes select different victim sets (correctness), or
#   * the indexed/walk speedup drops below MIN_SPEEDUP (default 3.0), or
#   * indexed_seconds regresses more than TOLERANCE x the baseline, or
#   * full and incremental eval modes produce different ranks/plans, or
#   * the incremental eval-phase speedup over full re-evaluation drops
#     below MIN_EVAL_SPEEDUP (default 3.0), or
#   * the sharded pipeline diverges from the single pipeline (plans or
#     purge victims), or
#   * the run used >= 4 shards and the sharded advance's speedup over the
#     single pipeline drops below MIN_SHARD_SPEEDUP (default 2.0; the floor
#     is skipped on hosts whose core count collapses the shard count).
#
# Usage: tools/run_bench.sh [extra bench flags, e.g. --users 600 --seed 42]

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/bench-build}"
BASELINE="$REPO_ROOT/bench/baselines/BENCH_fig12.json"
OUT_JSON="$BUILD_DIR/BENCH_fig12.json"
MIN_SPEEDUP="${MIN_SPEEDUP:-3.0}"
MIN_EVAL_SPEEDUP="${MIN_EVAL_SPEEDUP:-3.0}"
MIN_SHARD_SPEEDUP="${MIN_SHARD_SPEEDUP:-2.0}"
TOLERANCE="${TOLERANCE:-1.5}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench_fig12_performance -j "$(nproc)"

# The google-benchmark suites are not part of the regression gate; the
# comparison section runs before them, so cut the run short via filter-less
# environment (benchmark still runs, but it is cheap at bench scale).
"$BUILD_DIR/bench/bench_fig12_performance" --bench-json "$OUT_JSON" "$@"

python3 - "$OUT_JSON" "$BASELINE" "$MIN_SPEEDUP" "$TOLERANCE" \
    "$MIN_EVAL_SPEEDUP" "$MIN_SHARD_SPEEDUP" <<'PY'
import json, sys

(out_path, base_path, min_speedup, tolerance, min_eval_speedup,
 min_shard_speedup) = sys.argv[1:7]
min_speedup, tolerance = float(min_speedup), float(tolerance)
min_eval_speedup = float(min_eval_speedup)
min_shard_speedup = float(min_shard_speedup)
out = json.load(open(out_path))
base = json.load(open(base_path))

failures = []
if not out["victim_sets_identical"]:
    failures.append("walk and indexed scans selected DIFFERENT victim sets")
if out["speedup"] < min_speedup:
    failures.append(
        f"indexed speedup {out['speedup']:.2f}x below floor {min_speedup}x")
if not out["eval_ranks_identical"]:
    failures.append(
        "full and incremental eval modes produced DIFFERENT ranks/plans")
if out["eval_speedup"] < min_eval_speedup:
    failures.append(
        f"incremental eval speedup {out['eval_speedup']:.2f}x below floor "
        f"{min_eval_speedup}x")
if not out.get("shard_ranks_identical", True):
    failures.append(
        "sharded and single pipelines produced DIFFERENT ranks/plans")
if not out.get("shard_victims_identical", True):
    failures.append(
        "sharded and single pipelines selected DIFFERENT purge victims")
# The wall-clock floor only means something with real parallelism under it;
# identity is enforced at every shard count above.
if out.get("shards", 1) >= 4 and out["shard_speedup"] < min_shard_speedup:
    failures.append(
        f"shard speedup {out['shard_speedup']:.2f}x at {out['shards']} "
        f"shards below floor {min_shard_speedup}x")

# Cross-run comparisons only make sense on the baseline's scenario.
same_scenario = all(out[k] == base[k] for k in ("users", "seed", "files"))
if same_scenario:
    if out["victims"] != base["victims"]:
        failures.append(
            f"victim count changed: {out['victims']} vs baseline "
            f"{base['victims']}")
    if out["purged_bytes"] != base["purged_bytes"]:
        failures.append(
            f"purged bytes changed: {out['purged_bytes']} vs baseline "
            f"{base['purged_bytes']}")
    if out["indexed_seconds"] > base["indexed_seconds"] * tolerance:
        failures.append(
            f"indexed scan regressed: {out['indexed_seconds']:.4f}s vs "
            f"baseline {base['indexed_seconds']:.4f}s "
            f"(tolerance {tolerance}x)")
    if "eval_incremental_seconds" in base and (
            out["eval_incremental_seconds"]
            > base["eval_incremental_seconds"] * tolerance):
        failures.append(
            f"incremental eval regressed: "
            f"{out['eval_incremental_seconds']:.4f}s vs baseline "
            f"{base['eval_incremental_seconds']:.4f}s "
            f"(tolerance {tolerance}x)")
else:
    print(f"note: scenario differs from baseline "
          f"({out['users']} users / seed {out['seed']} vs "
          f"{base['users']} / {base['seed']}); timing diff skipped")

print(f"walk {out['walk_seconds']:.4f}s, indexed "
      f"{out['indexed_seconds']:.4f}s, speedup {out['speedup']:.2f}x, "
      f"{out['victims']} victims")
print(f"eval full {out['eval_full_seconds']:.4f}s, incremental "
      f"{out['eval_incremental_seconds']:.4f}s, speedup "
      f"{out['eval_speedup']:.2f}x over {out['eval_triggers']} triggers")
print(f"shards {out.get('shards', 1)}: 1-shard "
      f"{out.get('shard_1_seconds', 0):.4f}s, n-shard "
      f"{out.get('shard_n_seconds', 0):.4f}s, speedup "
      f"{out.get('shard_speedup', 0):.2f}x")
if failures:
    for f in failures:
        print("FAIL:", f, file=sys.stderr)
    sys.exit(1)
print("PASS")
PY
