# Empty compiler generated dependencies file for adr_retention.
# This may be replaced when dependencies are built.
