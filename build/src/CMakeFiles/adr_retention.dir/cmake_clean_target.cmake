file(REMOVE_RECURSE
  "libadr_retention.a"
)
