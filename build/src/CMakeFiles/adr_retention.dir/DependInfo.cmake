
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/retention/activedr_policy.cpp" "src/CMakeFiles/adr_retention.dir/retention/activedr_policy.cpp.o" "gcc" "src/CMakeFiles/adr_retention.dir/retention/activedr_policy.cpp.o.d"
  "/root/repo/src/retention/cache_policy.cpp" "src/CMakeFiles/adr_retention.dir/retention/cache_policy.cpp.o" "gcc" "src/CMakeFiles/adr_retention.dir/retention/cache_policy.cpp.o.d"
  "/root/repo/src/retention/exemption.cpp" "src/CMakeFiles/adr_retention.dir/retention/exemption.cpp.o" "gcc" "src/CMakeFiles/adr_retention.dir/retention/exemption.cpp.o.d"
  "/root/repo/src/retention/flt.cpp" "src/CMakeFiles/adr_retention.dir/retention/flt.cpp.o" "gcc" "src/CMakeFiles/adr_retention.dir/retention/flt.cpp.o.d"
  "/root/repo/src/retention/ledger.cpp" "src/CMakeFiles/adr_retention.dir/retention/ledger.cpp.o" "gcc" "src/CMakeFiles/adr_retention.dir/retention/ledger.cpp.o.d"
  "/root/repo/src/retention/policy.cpp" "src/CMakeFiles/adr_retention.dir/retention/policy.cpp.o" "gcc" "src/CMakeFiles/adr_retention.dir/retention/policy.cpp.o.d"
  "/root/repo/src/retention/report.cpp" "src/CMakeFiles/adr_retention.dir/retention/report.cpp.o" "gcc" "src/CMakeFiles/adr_retention.dir/retention/report.cpp.o.d"
  "/root/repo/src/retention/value_policy.cpp" "src/CMakeFiles/adr_retention.dir/retention/value_policy.cpp.o" "gcc" "src/CMakeFiles/adr_retention.dir/retention/value_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adr_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_activeness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
