file(REMOVE_RECURSE
  "CMakeFiles/adr_retention.dir/retention/activedr_policy.cpp.o"
  "CMakeFiles/adr_retention.dir/retention/activedr_policy.cpp.o.d"
  "CMakeFiles/adr_retention.dir/retention/cache_policy.cpp.o"
  "CMakeFiles/adr_retention.dir/retention/cache_policy.cpp.o.d"
  "CMakeFiles/adr_retention.dir/retention/exemption.cpp.o"
  "CMakeFiles/adr_retention.dir/retention/exemption.cpp.o.d"
  "CMakeFiles/adr_retention.dir/retention/flt.cpp.o"
  "CMakeFiles/adr_retention.dir/retention/flt.cpp.o.d"
  "CMakeFiles/adr_retention.dir/retention/ledger.cpp.o"
  "CMakeFiles/adr_retention.dir/retention/ledger.cpp.o.d"
  "CMakeFiles/adr_retention.dir/retention/policy.cpp.o"
  "CMakeFiles/adr_retention.dir/retention/policy.cpp.o.d"
  "CMakeFiles/adr_retention.dir/retention/report.cpp.o"
  "CMakeFiles/adr_retention.dir/retention/report.cpp.o.d"
  "CMakeFiles/adr_retention.dir/retention/value_policy.cpp.o"
  "CMakeFiles/adr_retention.dir/retention/value_policy.cpp.o.d"
  "libadr_retention.a"
  "libadr_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
