file(REMOVE_RECURSE
  "libadr_sim.a"
)
