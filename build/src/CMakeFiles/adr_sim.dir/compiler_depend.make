# Empty compiler generated dependencies file for adr_sim.
# This may be replaced when dependencies are built.
