file(REMOVE_RECURSE
  "CMakeFiles/adr_sim.dir/sim/emulator.cpp.o"
  "CMakeFiles/adr_sim.dir/sim/emulator.cpp.o.d"
  "CMakeFiles/adr_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/adr_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/adr_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/adr_sim.dir/sim/metrics.cpp.o.d"
  "libadr_sim.a"
  "libadr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
