
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/archive.cpp" "src/CMakeFiles/adr_fs.dir/fs/archive.cpp.o" "gcc" "src/CMakeFiles/adr_fs.dir/fs/archive.cpp.o.d"
  "/root/repo/src/fs/path_trie.cpp" "src/CMakeFiles/adr_fs.dir/fs/path_trie.cpp.o" "gcc" "src/CMakeFiles/adr_fs.dir/fs/path_trie.cpp.o.d"
  "/root/repo/src/fs/striping.cpp" "src/CMakeFiles/adr_fs.dir/fs/striping.cpp.o" "gcc" "src/CMakeFiles/adr_fs.dir/fs/striping.cpp.o.d"
  "/root/repo/src/fs/vfs.cpp" "src/CMakeFiles/adr_fs.dir/fs/vfs.cpp.o" "gcc" "src/CMakeFiles/adr_fs.dir/fs/vfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
