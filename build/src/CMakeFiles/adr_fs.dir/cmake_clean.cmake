file(REMOVE_RECURSE
  "CMakeFiles/adr_fs.dir/fs/archive.cpp.o"
  "CMakeFiles/adr_fs.dir/fs/archive.cpp.o.d"
  "CMakeFiles/adr_fs.dir/fs/path_trie.cpp.o"
  "CMakeFiles/adr_fs.dir/fs/path_trie.cpp.o.d"
  "CMakeFiles/adr_fs.dir/fs/striping.cpp.o"
  "CMakeFiles/adr_fs.dir/fs/striping.cpp.o.d"
  "CMakeFiles/adr_fs.dir/fs/vfs.cpp.o"
  "CMakeFiles/adr_fs.dir/fs/vfs.cpp.o.d"
  "libadr_fs.a"
  "libadr_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
