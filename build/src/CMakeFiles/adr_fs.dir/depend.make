# Empty dependencies file for adr_fs.
# This may be replaced when dependencies are built.
