file(REMOVE_RECURSE
  "libadr_fs.a"
)
