
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/activeness/activity.cpp" "src/CMakeFiles/adr_activeness.dir/activeness/activity.cpp.o" "gcc" "src/CMakeFiles/adr_activeness.dir/activeness/activity.cpp.o.d"
  "/root/repo/src/activeness/classifier.cpp" "src/CMakeFiles/adr_activeness.dir/activeness/classifier.cpp.o" "gcc" "src/CMakeFiles/adr_activeness.dir/activeness/classifier.cpp.o.d"
  "/root/repo/src/activeness/evaluator.cpp" "src/CMakeFiles/adr_activeness.dir/activeness/evaluator.cpp.o" "gcc" "src/CMakeFiles/adr_activeness.dir/activeness/evaluator.cpp.o.d"
  "/root/repo/src/activeness/rank_store.cpp" "src/CMakeFiles/adr_activeness.dir/activeness/rank_store.cpp.o" "gcc" "src/CMakeFiles/adr_activeness.dir/activeness/rank_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
