# Empty dependencies file for adr_activeness.
# This may be replaced when dependencies are built.
