file(REMOVE_RECURSE
  "libadr_activeness.a"
)
