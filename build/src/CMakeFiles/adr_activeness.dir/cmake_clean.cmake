file(REMOVE_RECURSE
  "CMakeFiles/adr_activeness.dir/activeness/activity.cpp.o"
  "CMakeFiles/adr_activeness.dir/activeness/activity.cpp.o.d"
  "CMakeFiles/adr_activeness.dir/activeness/classifier.cpp.o"
  "CMakeFiles/adr_activeness.dir/activeness/classifier.cpp.o.d"
  "CMakeFiles/adr_activeness.dir/activeness/evaluator.cpp.o"
  "CMakeFiles/adr_activeness.dir/activeness/evaluator.cpp.o.d"
  "CMakeFiles/adr_activeness.dir/activeness/rank_store.cpp.o"
  "CMakeFiles/adr_activeness.dir/activeness/rank_store.cpp.o.d"
  "libadr_activeness.a"
  "libadr_activeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_activeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
