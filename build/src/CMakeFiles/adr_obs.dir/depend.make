# Empty dependencies file for adr_obs.
# This may be replaced when dependencies are built.
