file(REMOVE_RECURSE
  "CMakeFiles/adr_obs.dir/obs/metrics.cpp.o"
  "CMakeFiles/adr_obs.dir/obs/metrics.cpp.o.d"
  "CMakeFiles/adr_obs.dir/obs/span.cpp.o"
  "CMakeFiles/adr_obs.dir/obs/span.cpp.o.d"
  "libadr_obs.a"
  "libadr_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
