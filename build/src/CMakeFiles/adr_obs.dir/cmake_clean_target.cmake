file(REMOVE_RECURSE
  "libadr_obs.a"
)
