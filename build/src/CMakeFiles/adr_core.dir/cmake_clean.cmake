file(REMOVE_RECURSE
  "CMakeFiles/adr_core.dir/core/engine.cpp.o"
  "CMakeFiles/adr_core.dir/core/engine.cpp.o.d"
  "libadr_core.a"
  "libadr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
