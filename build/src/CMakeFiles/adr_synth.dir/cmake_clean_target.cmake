file(REMOVE_RECURSE
  "libadr_synth.a"
)
