
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/app_log_synth.cpp" "src/CMakeFiles/adr_synth.dir/synth/app_log_synth.cpp.o" "gcc" "src/CMakeFiles/adr_synth.dir/synth/app_log_synth.cpp.o.d"
  "/root/repo/src/synth/fs_synth.cpp" "src/CMakeFiles/adr_synth.dir/synth/fs_synth.cpp.o" "gcc" "src/CMakeFiles/adr_synth.dir/synth/fs_synth.cpp.o.d"
  "/root/repo/src/synth/job_synth.cpp" "src/CMakeFiles/adr_synth.dir/synth/job_synth.cpp.o" "gcc" "src/CMakeFiles/adr_synth.dir/synth/job_synth.cpp.o.d"
  "/root/repo/src/synth/pub_synth.cpp" "src/CMakeFiles/adr_synth.dir/synth/pub_synth.cpp.o" "gcc" "src/CMakeFiles/adr_synth.dir/synth/pub_synth.cpp.o.d"
  "/root/repo/src/synth/titan_model.cpp" "src/CMakeFiles/adr_synth.dir/synth/titan_model.cpp.o" "gcc" "src/CMakeFiles/adr_synth.dir/synth/titan_model.cpp.o.d"
  "/root/repo/src/synth/user_model.cpp" "src/CMakeFiles/adr_synth.dir/synth/user_model.cpp.o" "gcc" "src/CMakeFiles/adr_synth.dir/synth/user_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
