# Empty dependencies file for adr_synth.
# This may be replaced when dependencies are built.
