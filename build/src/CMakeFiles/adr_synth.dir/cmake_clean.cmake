file(REMOVE_RECURSE
  "CMakeFiles/adr_synth.dir/synth/app_log_synth.cpp.o"
  "CMakeFiles/adr_synth.dir/synth/app_log_synth.cpp.o.d"
  "CMakeFiles/adr_synth.dir/synth/fs_synth.cpp.o"
  "CMakeFiles/adr_synth.dir/synth/fs_synth.cpp.o.d"
  "CMakeFiles/adr_synth.dir/synth/job_synth.cpp.o"
  "CMakeFiles/adr_synth.dir/synth/job_synth.cpp.o.d"
  "CMakeFiles/adr_synth.dir/synth/pub_synth.cpp.o"
  "CMakeFiles/adr_synth.dir/synth/pub_synth.cpp.o.d"
  "CMakeFiles/adr_synth.dir/synth/titan_model.cpp.o"
  "CMakeFiles/adr_synth.dir/synth/titan_model.cpp.o.d"
  "CMakeFiles/adr_synth.dir/synth/user_model.cpp.o"
  "CMakeFiles/adr_synth.dir/synth/user_model.cpp.o.d"
  "libadr_synth.a"
  "libadr_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
