file(REMOVE_RECURSE
  "libadr_trace.a"
)
