
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/app_log.cpp" "src/CMakeFiles/adr_trace.dir/trace/app_log.cpp.o" "gcc" "src/CMakeFiles/adr_trace.dir/trace/app_log.cpp.o.d"
  "/root/repo/src/trace/job_log.cpp" "src/CMakeFiles/adr_trace.dir/trace/job_log.cpp.o" "gcc" "src/CMakeFiles/adr_trace.dir/trace/job_log.cpp.o.d"
  "/root/repo/src/trace/publication_log.cpp" "src/CMakeFiles/adr_trace.dir/trace/publication_log.cpp.o" "gcc" "src/CMakeFiles/adr_trace.dir/trace/publication_log.cpp.o.d"
  "/root/repo/src/trace/snapshot.cpp" "src/CMakeFiles/adr_trace.dir/trace/snapshot.cpp.o" "gcc" "src/CMakeFiles/adr_trace.dir/trace/snapshot.cpp.o.d"
  "/root/repo/src/trace/user_registry.cpp" "src/CMakeFiles/adr_trace.dir/trace/user_registry.cpp.o" "gcc" "src/CMakeFiles/adr_trace.dir/trace/user_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
