# Empty compiler generated dependencies file for adr_trace.
# This may be replaced when dependencies are built.
