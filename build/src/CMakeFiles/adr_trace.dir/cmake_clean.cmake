file(REMOVE_RECURSE
  "CMakeFiles/adr_trace.dir/trace/app_log.cpp.o"
  "CMakeFiles/adr_trace.dir/trace/app_log.cpp.o.d"
  "CMakeFiles/adr_trace.dir/trace/job_log.cpp.o"
  "CMakeFiles/adr_trace.dir/trace/job_log.cpp.o.d"
  "CMakeFiles/adr_trace.dir/trace/publication_log.cpp.o"
  "CMakeFiles/adr_trace.dir/trace/publication_log.cpp.o.d"
  "CMakeFiles/adr_trace.dir/trace/snapshot.cpp.o"
  "CMakeFiles/adr_trace.dir/trace/snapshot.cpp.o.d"
  "CMakeFiles/adr_trace.dir/trace/user_registry.cpp.o"
  "CMakeFiles/adr_trace.dir/trace/user_registry.cpp.o.d"
  "libadr_trace.a"
  "libadr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
