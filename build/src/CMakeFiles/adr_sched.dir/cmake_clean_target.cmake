file(REMOVE_RECURSE
  "libadr_sched.a"
)
