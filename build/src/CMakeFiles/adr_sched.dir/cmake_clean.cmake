file(REMOVE_RECURSE
  "CMakeFiles/adr_sched.dir/sched/batch_scheduler.cpp.o"
  "CMakeFiles/adr_sched.dir/sched/batch_scheduler.cpp.o.d"
  "libadr_sched.a"
  "libadr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
