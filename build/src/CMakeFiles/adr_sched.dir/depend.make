# Empty dependencies file for adr_sched.
# This may be replaced when dependencies are built.
