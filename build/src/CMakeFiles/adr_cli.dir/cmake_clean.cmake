file(REMOVE_RECURSE
  "CMakeFiles/adr_cli.dir/cli/commands.cpp.o"
  "CMakeFiles/adr_cli.dir/cli/commands.cpp.o.d"
  "libadr_cli.a"
  "libadr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
