file(REMOVE_RECURSE
  "libadr_cli.a"
)
