file(REMOVE_RECURSE
  "CMakeFiles/adr_util.dir/util/config.cpp.o"
  "CMakeFiles/adr_util.dir/util/config.cpp.o.d"
  "CMakeFiles/adr_util.dir/util/csv.cpp.o"
  "CMakeFiles/adr_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/adr_util.dir/util/gzfile.cpp.o"
  "CMakeFiles/adr_util.dir/util/gzfile.cpp.o.d"
  "CMakeFiles/adr_util.dir/util/logging.cpp.o"
  "CMakeFiles/adr_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/adr_util.dir/util/memory.cpp.o"
  "CMakeFiles/adr_util.dir/util/memory.cpp.o.d"
  "CMakeFiles/adr_util.dir/util/rng.cpp.o"
  "CMakeFiles/adr_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/adr_util.dir/util/stats.cpp.o"
  "CMakeFiles/adr_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/adr_util.dir/util/table.cpp.o"
  "CMakeFiles/adr_util.dir/util/table.cpp.o.d"
  "CMakeFiles/adr_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/adr_util.dir/util/thread_pool.cpp.o.d"
  "CMakeFiles/adr_util.dir/util/time.cpp.o"
  "CMakeFiles/adr_util.dir/util/time.cpp.o.d"
  "libadr_util.a"
  "libadr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
