file(REMOVE_RECURSE
  "libadr_util.a"
)
