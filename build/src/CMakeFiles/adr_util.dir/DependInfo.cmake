
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/adr_util.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/config.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/adr_util.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/gzfile.cpp" "src/CMakeFiles/adr_util.dir/util/gzfile.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/gzfile.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/adr_util.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/memory.cpp" "src/CMakeFiles/adr_util.dir/util/memory.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/memory.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/adr_util.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/adr_util.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/adr_util.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/adr_util.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/CMakeFiles/adr_util.dir/util/time.cpp.o" "gcc" "src/CMakeFiles/adr_util.dir/util/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adr_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
