file(REMOVE_RECURSE
  "CMakeFiles/activedr_tool.dir/main.cpp.o"
  "CMakeFiles/activedr_tool.dir/main.cpp.o.d"
  "activedr"
  "activedr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activedr_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
