# Empty dependencies file for activedr_tool.
# This may be replaced when dependencies are built.
