file(REMOVE_RECURSE
  "../bench/bench_fig01_flt_miss"
  "../bench/bench_fig01_flt_miss.pdb"
  "CMakeFiles/bench_fig01_flt_miss.dir/bench_fig01_flt_miss.cpp.o"
  "CMakeFiles/bench_fig01_flt_miss.dir/bench_fig01_flt_miss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_flt_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
