# Empty compiler generated dependencies file for bench_fig01_flt_miss.
# This may be replaced when dependencies are built.
