file(REMOVE_RECURSE
  "../bench/bench_fig08_miss_reduction"
  "../bench/bench_fig08_miss_reduction.pdb"
  "CMakeFiles/bench_fig08_miss_reduction.dir/bench_fig08_miss_reduction.cpp.o"
  "CMakeFiles/bench_fig08_miss_reduction.dir/bench_fig08_miss_reduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_miss_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
