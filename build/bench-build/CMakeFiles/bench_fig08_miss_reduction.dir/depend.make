# Empty dependencies file for bench_fig08_miss_reduction.
# This may be replaced when dependencies are built.
