# Empty compiler generated dependencies file for bench_fig05_activeness_matrix.
# This may be replaced when dependencies are built.
