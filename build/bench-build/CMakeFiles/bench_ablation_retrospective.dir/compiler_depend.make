# Empty compiler generated dependencies file for bench_ablation_retrospective.
# This may be replaced when dependencies are built.
