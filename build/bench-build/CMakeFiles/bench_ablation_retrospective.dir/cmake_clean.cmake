file(REMOVE_RECURSE
  "../bench/bench_ablation_retrospective"
  "../bench/bench_ablation_retrospective.pdb"
  "CMakeFiles/bench_ablation_retrospective.dir/bench_ablation_retrospective.cpp.o"
  "CMakeFiles/bench_ablation_retrospective.dir/bench_ablation_retrospective.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_retrospective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
