file(REMOVE_RECURSE
  "../bench/bench_table1_flt_presets"
  "../bench/bench_table1_flt_presets.pdb"
  "CMakeFiles/bench_table1_flt_presets.dir/bench_table1_flt_presets.cpp.o"
  "CMakeFiles/bench_table1_flt_presets.dir/bench_table1_flt_presets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_flt_presets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
