# Empty dependencies file for bench_table1_flt_presets.
# This may be replaced when dependencies are built.
