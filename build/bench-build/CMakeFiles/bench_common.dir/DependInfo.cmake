
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/common/scenario_cache.cpp" "bench-build/CMakeFiles/bench_common.dir/common/scenario_cache.cpp.o" "gcc" "bench-build/CMakeFiles/bench_common.dir/common/scenario_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adr_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_retention.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_activeness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adr_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
