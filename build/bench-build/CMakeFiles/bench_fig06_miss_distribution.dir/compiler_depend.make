# Empty compiler generated dependencies file for bench_fig06_miss_distribution.
# This may be replaced when dependencies are built.
