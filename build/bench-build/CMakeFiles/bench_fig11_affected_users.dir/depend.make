# Empty dependencies file for bench_fig11_affected_users.
# This may be replaced when dependencies are built.
