file(REMOVE_RECURSE
  "../bench/bench_ablation_exponent"
  "../bench/bench_ablation_exponent.pdb"
  "CMakeFiles/bench_ablation_exponent.dir/bench_ablation_exponent.cpp.o"
  "CMakeFiles/bench_ablation_exponent.dir/bench_ablation_exponent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_exponent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
