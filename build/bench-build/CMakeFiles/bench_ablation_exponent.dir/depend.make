# Empty dependencies file for bench_ablation_exponent.
# This may be replaced when dependencies are built.
