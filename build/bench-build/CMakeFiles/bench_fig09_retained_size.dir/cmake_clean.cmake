file(REMOVE_RECURSE
  "../bench/bench_fig09_retained_size"
  "../bench/bench_fig09_retained_size.pdb"
  "CMakeFiles/bench_fig09_retained_size.dir/bench_fig09_retained_size.cpp.o"
  "CMakeFiles/bench_fig09_retained_size.dir/bench_fig09_retained_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_retained_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
