# Empty compiler generated dependencies file for bench_fig09_retained_size.
# This may be replaced when dependencies are built.
