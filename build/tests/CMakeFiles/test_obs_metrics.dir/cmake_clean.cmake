file(REMOVE_RECURSE
  "CMakeFiles/test_obs_metrics.dir/obs/test_metrics.cpp.o"
  "CMakeFiles/test_obs_metrics.dir/obs/test_metrics.cpp.o.d"
  "test_obs_metrics"
  "test_obs_metrics.pdb"
  "test_obs_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
