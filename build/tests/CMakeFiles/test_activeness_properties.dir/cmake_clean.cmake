file(REMOVE_RECURSE
  "CMakeFiles/test_activeness_properties.dir/activeness/test_evaluator_properties.cpp.o"
  "CMakeFiles/test_activeness_properties.dir/activeness/test_evaluator_properties.cpp.o.d"
  "test_activeness_properties"
  "test_activeness_properties.pdb"
  "test_activeness_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activeness_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
