# Empty dependencies file for test_activeness_properties.
# This may be replaced when dependencies are built.
