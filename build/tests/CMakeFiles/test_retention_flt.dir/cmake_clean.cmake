file(REMOVE_RECURSE
  "CMakeFiles/test_retention_flt.dir/retention/test_flt.cpp.o"
  "CMakeFiles/test_retention_flt.dir/retention/test_flt.cpp.o.d"
  "test_retention_flt"
  "test_retention_flt.pdb"
  "test_retention_flt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_flt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
