# Empty dependencies file for test_retention_flt.
# This may be replaced when dependencies are built.
