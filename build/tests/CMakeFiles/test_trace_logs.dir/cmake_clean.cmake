file(REMOVE_RECURSE
  "CMakeFiles/test_trace_logs.dir/trace/test_logs.cpp.o"
  "CMakeFiles/test_trace_logs.dir/trace/test_logs.cpp.o.d"
  "test_trace_logs"
  "test_trace_logs.pdb"
  "test_trace_logs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
