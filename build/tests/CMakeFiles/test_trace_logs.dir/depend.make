# Empty dependencies file for test_trace_logs.
# This may be replaced when dependencies are built.
