file(REMOVE_RECURSE
  "CMakeFiles/test_sched_batch.dir/sched/test_batch_scheduler.cpp.o"
  "CMakeFiles/test_sched_batch.dir/sched/test_batch_scheduler.cpp.o.d"
  "test_sched_batch"
  "test_sched_batch.pdb"
  "test_sched_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
