# Empty compiler generated dependencies file for test_util_time.
# This may be replaced when dependencies are built.
