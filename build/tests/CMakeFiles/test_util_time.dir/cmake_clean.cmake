file(REMOVE_RECURSE
  "CMakeFiles/test_util_time.dir/util/test_time.cpp.o"
  "CMakeFiles/test_util_time.dir/util/test_time.cpp.o.d"
  "test_util_time"
  "test_util_time.pdb"
  "test_util_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
