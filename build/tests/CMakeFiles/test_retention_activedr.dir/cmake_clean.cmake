file(REMOVE_RECURSE
  "CMakeFiles/test_retention_activedr.dir/retention/test_activedr.cpp.o"
  "CMakeFiles/test_retention_activedr.dir/retention/test_activedr.cpp.o.d"
  "test_retention_activedr"
  "test_retention_activedr.pdb"
  "test_retention_activedr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_activedr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
