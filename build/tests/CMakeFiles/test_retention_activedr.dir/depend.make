# Empty dependencies file for test_retention_activedr.
# This may be replaced when dependencies are built.
