# Empty compiler generated dependencies file for test_activeness_rank_store.
# This may be replaced when dependencies are built.
