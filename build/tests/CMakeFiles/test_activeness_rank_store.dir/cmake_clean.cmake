file(REMOVE_RECURSE
  "CMakeFiles/test_activeness_rank_store.dir/activeness/test_rank_store.cpp.o"
  "CMakeFiles/test_activeness_rank_store.dir/activeness/test_rank_store.cpp.o.d"
  "test_activeness_rank_store"
  "test_activeness_rank_store.pdb"
  "test_activeness_rank_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activeness_rank_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
