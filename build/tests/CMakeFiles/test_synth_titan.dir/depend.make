# Empty dependencies file for test_synth_titan.
# This may be replaced when dependencies are built.
