file(REMOVE_RECURSE
  "CMakeFiles/test_synth_titan.dir/synth/test_titan.cpp.o"
  "CMakeFiles/test_synth_titan.dir/synth/test_titan.cpp.o.d"
  "test_synth_titan"
  "test_synth_titan.pdb"
  "test_synth_titan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_titan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
