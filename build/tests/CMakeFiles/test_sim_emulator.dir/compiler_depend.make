# Empty compiler generated dependencies file for test_sim_emulator.
# This may be replaced when dependencies are built.
