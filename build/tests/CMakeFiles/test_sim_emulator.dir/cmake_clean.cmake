file(REMOVE_RECURSE
  "CMakeFiles/test_sim_emulator.dir/sim/test_emulator.cpp.o"
  "CMakeFiles/test_sim_emulator.dir/sim/test_emulator.cpp.o.d"
  "test_sim_emulator"
  "test_sim_emulator.pdb"
  "test_sim_emulator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_emulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
