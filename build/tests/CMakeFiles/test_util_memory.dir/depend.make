# Empty dependencies file for test_util_memory.
# This may be replaced when dependencies are built.
