file(REMOVE_RECURSE
  "CMakeFiles/test_util_memory.dir/util/test_memory.cpp.o"
  "CMakeFiles/test_util_memory.dir/util/test_memory.cpp.o.d"
  "test_util_memory"
  "test_util_memory.pdb"
  "test_util_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
