file(REMOVE_RECURSE
  "CMakeFiles/test_retention_value.dir/retention/test_value_policy.cpp.o"
  "CMakeFiles/test_retention_value.dir/retention/test_value_policy.cpp.o.d"
  "test_retention_value"
  "test_retention_value.pdb"
  "test_retention_value[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
