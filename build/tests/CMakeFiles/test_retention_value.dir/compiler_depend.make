# Empty compiler generated dependencies file for test_retention_value.
# This may be replaced when dependencies are built.
