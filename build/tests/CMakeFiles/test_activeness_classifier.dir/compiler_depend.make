# Empty compiler generated dependencies file for test_activeness_classifier.
# This may be replaced when dependencies are built.
