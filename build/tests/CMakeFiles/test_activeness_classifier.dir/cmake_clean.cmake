file(REMOVE_RECURSE
  "CMakeFiles/test_activeness_classifier.dir/activeness/test_classifier.cpp.o"
  "CMakeFiles/test_activeness_classifier.dir/activeness/test_classifier.cpp.o.d"
  "test_activeness_classifier"
  "test_activeness_classifier.pdb"
  "test_activeness_classifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activeness_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
