# Empty dependencies file for test_trace_snapshot.
# This may be replaced when dependencies are built.
