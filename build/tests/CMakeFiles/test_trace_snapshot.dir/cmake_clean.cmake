file(REMOVE_RECURSE
  "CMakeFiles/test_trace_snapshot.dir/trace/test_snapshot.cpp.o"
  "CMakeFiles/test_trace_snapshot.dir/trace/test_snapshot.cpp.o.d"
  "test_trace_snapshot"
  "test_trace_snapshot.pdb"
  "test_trace_snapshot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
