file(REMOVE_RECURSE
  "CMakeFiles/test_fs_path_trie.dir/fs/test_path_trie.cpp.o"
  "CMakeFiles/test_fs_path_trie.dir/fs/test_path_trie.cpp.o.d"
  "test_fs_path_trie"
  "test_fs_path_trie.pdb"
  "test_fs_path_trie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_path_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
