# Empty compiler generated dependencies file for test_fs_path_trie.
# This may be replaced when dependencies are built.
