file(REMOVE_RECURSE
  "CMakeFiles/test_retention_cache.dir/retention/test_cache_policy.cpp.o"
  "CMakeFiles/test_retention_cache.dir/retention/test_cache_policy.cpp.o.d"
  "test_retention_cache"
  "test_retention_cache.pdb"
  "test_retention_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
