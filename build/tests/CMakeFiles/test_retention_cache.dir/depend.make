# Empty dependencies file for test_retention_cache.
# This may be replaced when dependencies are built.
