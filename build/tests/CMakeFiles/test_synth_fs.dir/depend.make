# Empty dependencies file for test_synth_fs.
# This may be replaced when dependencies are built.
