file(REMOVE_RECURSE
  "CMakeFiles/test_synth_fs.dir/synth/test_fs_synth.cpp.o"
  "CMakeFiles/test_synth_fs.dir/synth/test_fs_synth.cpp.o.d"
  "test_synth_fs"
  "test_synth_fs.pdb"
  "test_synth_fs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
