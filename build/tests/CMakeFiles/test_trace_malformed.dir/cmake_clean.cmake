file(REMOVE_RECURSE
  "CMakeFiles/test_trace_malformed.dir/trace/test_malformed_inputs.cpp.o"
  "CMakeFiles/test_trace_malformed.dir/trace/test_malformed_inputs.cpp.o.d"
  "test_trace_malformed"
  "test_trace_malformed.pdb"
  "test_trace_malformed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_malformed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
