# Empty compiler generated dependencies file for test_trace_malformed.
# This may be replaced when dependencies are built.
