file(REMOVE_RECURSE
  "CMakeFiles/test_retention_ledger.dir/retention/test_ledger.cpp.o"
  "CMakeFiles/test_retention_ledger.dir/retention/test_ledger.cpp.o.d"
  "test_retention_ledger"
  "test_retention_ledger.pdb"
  "test_retention_ledger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
