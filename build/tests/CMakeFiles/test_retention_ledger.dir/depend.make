# Empty dependencies file for test_retention_ledger.
# This may be replaced when dependencies are built.
