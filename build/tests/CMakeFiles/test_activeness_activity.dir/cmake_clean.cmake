file(REMOVE_RECURSE
  "CMakeFiles/test_activeness_activity.dir/activeness/test_activity.cpp.o"
  "CMakeFiles/test_activeness_activity.dir/activeness/test_activity.cpp.o.d"
  "test_activeness_activity"
  "test_activeness_activity.pdb"
  "test_activeness_activity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activeness_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
