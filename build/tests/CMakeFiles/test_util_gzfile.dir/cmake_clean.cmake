file(REMOVE_RECURSE
  "CMakeFiles/test_util_gzfile.dir/util/test_gzfile.cpp.o"
  "CMakeFiles/test_util_gzfile.dir/util/test_gzfile.cpp.o.d"
  "test_util_gzfile"
  "test_util_gzfile.pdb"
  "test_util_gzfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_gzfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
