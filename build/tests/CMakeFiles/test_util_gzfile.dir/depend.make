# Empty dependencies file for test_util_gzfile.
# This may be replaced when dependencies are built.
