file(REMOVE_RECURSE
  "CMakeFiles/test_fs_vfs.dir/fs/test_vfs.cpp.o"
  "CMakeFiles/test_fs_vfs.dir/fs/test_vfs.cpp.o.d"
  "test_fs_vfs"
  "test_fs_vfs.pdb"
  "test_fs_vfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
