# Empty compiler generated dependencies file for test_fs_vfs.
# This may be replaced when dependencies are built.
