file(REMOVE_RECURSE
  "CMakeFiles/test_synth_user_model.dir/synth/test_user_model.cpp.o"
  "CMakeFiles/test_synth_user_model.dir/synth/test_user_model.cpp.o.d"
  "test_synth_user_model"
  "test_synth_user_model.pdb"
  "test_synth_user_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_user_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
