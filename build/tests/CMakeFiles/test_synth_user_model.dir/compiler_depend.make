# Empty compiler generated dependencies file for test_synth_user_model.
# This may be replaced when dependencies are built.
