file(REMOVE_RECURSE
  "CMakeFiles/test_synth_traces.dir/synth/test_traces.cpp.o"
  "CMakeFiles/test_synth_traces.dir/synth/test_traces.cpp.o.d"
  "test_synth_traces"
  "test_synth_traces.pdb"
  "test_synth_traces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
