file(REMOVE_RECURSE
  "CMakeFiles/test_retention_exemption.dir/retention/test_exemption.cpp.o"
  "CMakeFiles/test_retention_exemption.dir/retention/test_exemption.cpp.o.d"
  "test_retention_exemption"
  "test_retention_exemption.pdb"
  "test_retention_exemption[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retention_exemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
