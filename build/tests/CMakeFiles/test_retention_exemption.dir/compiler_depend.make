# Empty compiler generated dependencies file for test_retention_exemption.
# This may be replaced when dependencies are built.
