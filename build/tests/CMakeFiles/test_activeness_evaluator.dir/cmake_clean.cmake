file(REMOVE_RECURSE
  "CMakeFiles/test_activeness_evaluator.dir/activeness/test_evaluator.cpp.o"
  "CMakeFiles/test_activeness_evaluator.dir/activeness/test_evaluator.cpp.o.d"
  "test_activeness_evaluator"
  "test_activeness_evaluator.pdb"
  "test_activeness_evaluator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activeness_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
