# Empty dependencies file for test_activeness_evaluator.
# This may be replaced when dependencies are built.
