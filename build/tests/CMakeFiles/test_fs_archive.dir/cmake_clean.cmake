file(REMOVE_RECURSE
  "CMakeFiles/test_fs_archive.dir/fs/test_archive.cpp.o"
  "CMakeFiles/test_fs_archive.dir/fs/test_archive.cpp.o.d"
  "test_fs_archive"
  "test_fs_archive.pdb"
  "test_fs_archive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
