file(REMOVE_RECURSE
  "CMakeFiles/test_fs_striping.dir/fs/test_striping.cpp.o"
  "CMakeFiles/test_fs_striping.dir/fs/test_striping.cpp.o.d"
  "test_fs_striping"
  "test_fs_striping.pdb"
  "test_fs_striping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs_striping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
