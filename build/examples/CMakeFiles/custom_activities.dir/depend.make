# Empty dependencies file for custom_activities.
# This may be replaced when dependencies are built.
