file(REMOVE_RECURSE
  "CMakeFiles/custom_activities.dir/custom_activities.cpp.o"
  "CMakeFiles/custom_activities.dir/custom_activities.cpp.o.d"
  "custom_activities"
  "custom_activities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_activities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
