file(REMOVE_RECURSE
  "CMakeFiles/purge_exemption.dir/purge_exemption.cpp.o"
  "CMakeFiles/purge_exemption.dir/purge_exemption.cpp.o.d"
  "purge_exemption"
  "purge_exemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purge_exemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
