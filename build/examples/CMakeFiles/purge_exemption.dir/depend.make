# Empty dependencies file for purge_exemption.
# This may be replaced when dependencies are built.
