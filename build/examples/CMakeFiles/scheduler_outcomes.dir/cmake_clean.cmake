file(REMOVE_RECURSE
  "CMakeFiles/scheduler_outcomes.dir/scheduler_outcomes.cpp.o"
  "CMakeFiles/scheduler_outcomes.dir/scheduler_outcomes.cpp.o.d"
  "scheduler_outcomes"
  "scheduler_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
