# Empty compiler generated dependencies file for scheduler_outcomes.
# This may be replaced when dependencies are built.
