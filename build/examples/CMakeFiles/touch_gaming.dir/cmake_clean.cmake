file(REMOVE_RECURSE
  "CMakeFiles/touch_gaming.dir/touch_gaming.cpp.o"
  "CMakeFiles/touch_gaming.dir/touch_gaming.cpp.o.d"
  "touch_gaming"
  "touch_gaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/touch_gaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
