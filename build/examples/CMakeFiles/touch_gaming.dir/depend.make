# Empty dependencies file for touch_gaming.
# This may be replaced when dependencies are built.
