// Figure 5: user activeness matrix — the share of users in each activeness
// group G(1)..G(4) when the evaluation period length d is 7/30/60/90 days.
//
// Paper shape: G(1) 0.4%..0.9% (growing with d), G(2) 1.1%..3.5% (growing),
// G(3) 3.4%..2.9% (slightly shrinking), G(4) 95.0%..92.7%.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "sim/emulator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner("Figure 5: user activeness matrix vs period length",
                      "Fig. 5", options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const double n = static_cast<double>(scenario.registry.size());

  util::Table table("Users per activeness group (evaluated at replay start)");
  table.set_headers({"Period length", "G(1) Both Active", "G(2) Op Only",
                     "G(3) Outcome Only", "G(4) Both Inactive"});
  for (const int d : {7, 30, 60, 90}) {
    activeness::EvaluationParams params;
    params.period_length_days = d;
    sim::ActivenessTimeline timeline =
        sim::ActivenessTimeline::for_scenario(scenario, params);
    const activeness::ScanPlan& plan = timeline.plan_at(scenario.sim_begin);
    std::vector<std::string> row{std::to_string(d) + " days"};
    for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
      const std::size_t count =
          plan.group(static_cast<activeness::UserGroup>(g)).size();
      row.push_back(util::fmt_int(static_cast<std::int64_t>(count)) + " (" +
                    util::format_percent(static_cast<double>(count) / n, 1) +
                    ")");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "Paper reference: G(1) 0.4-0.9%, G(2) 1.1-3.5%, "
               "G(3) 3.4-2.9%, G(4) 95.0-92.7%\n";
  return 0;
}
