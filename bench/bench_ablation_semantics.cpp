// Ablation C: the two places the paper's spec is ambiguous and our defaults
// are a documented choice (DESIGN.md §5):
//   * StaleHandling — what Eq. 4 does with activities older than the
//     m-period window (clamp into the oldest period vs drop);
//   * LifetimeMode  — whether Eq. 7 multiplies inactive categories' Φ < 1
//     into the lifetime (literal) or treats them as neutral (default).
// Reports the classification and the year-replay outcome under each.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "sim/emulator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner(
      "Ablation: stale-activity handling and Eq. 7 lifetime semantics",
      "§3.2/§3.4 ambiguities", options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const double n = static_cast<double>(scenario.registry.size());

  // --- StaleHandling: its effect on the Fig. 5 matrix -----------------------
  util::Table matrix("Group shares under each stale-activity rule");
  matrix.set_headers({"Rule", "Period", "G(1)", "G(2)", "G(3)", "G(4)"});
  const std::pair<activeness::StaleHandling, const char*> rules[] = {
      {activeness::StaleHandling::kClampOldest, "clamp-oldest (default)"},
      {activeness::StaleHandling::kDrop, "drop"},
  };
  for (const auto& [rule, label] : rules) {
    for (const int d : {7, 90}) {
      activeness::EvaluationParams params;
      params.period_length_days = d;
      params.stale = rule;
      sim::ActivenessTimeline timeline =
          sim::ActivenessTimeline::for_scenario(scenario, params);
      const auto& plan = timeline.plan_at(scenario.sim_begin);
      std::vector<std::string> row{label, std::to_string(d) + "d"};
      for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
        row.push_back(util::format_percent(
            static_cast<double>(
                plan.group(static_cast<activeness::UserGroup>(g)).size()) /
                n,
            1));
      }
      matrix.add_row(std::move(row));
    }
  }
  matrix.print(std::cout);
  std::cout << "Shape check: with `drop`, the outcome-active share collapses "
               "at short periods (a months-old publication no longer "
               "counts), diverging from Fig. 5's stable ~3%\n\n";

  // --- LifetimeMode: its effect on the year replay ---------------------------
  util::Table replay("Year replay under each Eq. 7 reading (ActiveDR)");
  replay.set_headers({"Lifetime mode", "Total misses",
                      "Both-Inactive misses", "Active-group misses",
                      "Affected inactive users"});
  const std::pair<activeness::LifetimeMode, const char*> modes[] = {
      {activeness::LifetimeMode::kActiveCategoriesOnly,
       "active-categories-only (default)"},
      {activeness::LifetimeMode::kLiteralEq7, "literal Eq. 7"},
  };
  for (const auto& [mode, label] : modes) {
    sim::ExperimentConfig config = options.experiment;
    config.lifetime_mode = mode;
    const sim::EmulationResult r = sim::run_activedr(scenario, config);
    std::size_t bi = 0, active = 0;
    for (const auto& d : r.daily) {
      bi += d.misses_by_group[static_cast<std::size_t>(
          activeness::UserGroup::kBothInactive)];
      active += d.misses_by_group[0] + d.misses_by_group[1] +
                d.misses_by_group[2];
    }
    replay.add_row(
        {label, util::fmt_int(static_cast<std::int64_t>(r.total_misses)),
         util::fmt_int(static_cast<std::int64_t>(bi)),
         util::fmt_int(static_cast<std::int64_t>(active)),
         util::fmt_int(static_cast<std::int64_t>(
             r.groups[static_cast<std::size_t>(
                          activeness::UserGroup::kBothInactive)]
                 .unique_affected_users))});
  }
  replay.print(std::cout);
  std::cout << "Shape check: the literal reading slashes inactive users' "
               "lifetimes outright, so their misses rise\n";
  return 0;
}
