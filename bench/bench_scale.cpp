// Million-user scale tier bench (DESIGN.md §15).
//
// Drives sim::run_scale — streaming synthesis into the live service, purge
// triggers at a simulated cadence, Vfs residency budget on — across a list
// of user-count tiers, and writes BENCH_scale.json (peak RSS, events/sec,
// trigger p50/p99 per tier) for tools/run_bench.sh to gate.
//
// Exit status is nonzero when the streamed-vs-materialized identity anchor
// fails or any tier's peak RSS exceeds the budget, so CI can use the binary
// directly as a gate.
//
// Flags (util::Config style, all optional):
//   --users LIST           comma-separated tiers     (default 10000,100000,1000000)
//   --files-per-user N     backfill files per user   (default 10)
//   --events-per-user-day X                          (default 2.0)
//   --span-days N / --trigger-days X / --shards N / --seed N
//   --vfs-budget-mb N      residency budget          (default 512, 0 = off)
//   --rss-budget-gb X      peak-RSS assert per tier  (default 4.0, 0 = off)
//   --skip-identity        skip the 600-user identity anchor
//   --bench-json PATH      output path (default BENCH_scale.json)
//
// The 1M tier is single-thread-bound on the driver; on a multi-core runner
// it completes in minutes, on a 1-core container expect tens of minutes.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/scale.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::size_t> parse_tiers(const std::string& list) {
  std::vector<std::size_t> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoull(item));
  }
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string mib(std::uint64_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adr;
  const util::Config raw = util::Config::from_args(argc, argv);

  const std::vector<std::size_t> tiers =
      parse_tiers(raw.get_string("users", "10000,100000,1000000"));

  sim::ScaleConfig base;
  base.initial_files_per_user = static_cast<std::size_t>(raw.get_int(
      "files-per-user", static_cast<std::int64_t>(base.initial_files_per_user)));
  base.events_per_user_day =
      raw.get_double("events-per-user-day", base.events_per_user_day);
  base.sim_span_days =
      static_cast<int>(raw.get_int("span-days", base.sim_span_days));
  base.trigger_every_days =
      raw.get_double("trigger-days", base.trigger_every_days);
  base.shards = static_cast<std::size_t>(raw.get_int("shards", 0));
  base.seed = static_cast<std::uint64_t>(
      raw.get_int("seed", static_cast<std::int64_t>(base.seed)));
  base.memory_budget_bytes =
      static_cast<std::uint64_t>(raw.get_int("vfs-budget-mb", 512)) * 1024 *
      1024;

  const double rss_budget_gb = raw.get_double("rss-budget-gb", 4.0);
  const auto rss_budget_bytes = static_cast<std::uint64_t>(
      rss_budget_gb * 1024.0 * 1024.0 * 1024.0);

  // The correctness anchor first: streamed ingest under a deliberately tiny
  // budget (forcing evictions and faults) must match the materialized,
  // residency-off replay event for event, rank for rank, victim for victim.
  sim::ScaleIdentityResult identity;
  bool identity_ran = false;
  if (!raw.get_bool("skip-identity", false)) {
    sim::ScaleConfig small = base;
    small.users = 600;
    small.initial_files_per_user = 20;
    const std::uint64_t tiny_budget = 256 * 1024;  // ~tens of users resident
    identity = sim::check_scale_identity(small, tiny_budget);
    identity_ran = true;
    std::printf(
        "identity @ 600 users: events %s, ranks %s, victims %s (%zu "
        "triggers)\n",
        identity.events_identical ? "identical" : "DIVERGED",
        identity.ranks_identical ? "identical" : "DIVERGED",
        identity.victims_identical ? "identical" : "DIVERGED",
        identity.triggers);
  }

  util::Table table("Scale tiers (vfs budget " +
                    mib(base.memory_budget_bytes) + " MiB)");
  table.set_headers({"Users", "Events", "Files", "ev/s", "Triggers", "p50 ms",
                     "p99 ms", "RSS peak MiB", "Evicted", "Faults"});

  std::vector<sim::ScaleResult> results;
  bool rss_ok = true;
  for (const std::size_t users : tiers) {
    sim::ScaleConfig config = base;
    config.users = users;
    std::printf("tier %zu users...\n", users);
    const sim::ScaleResult r = sim::run_scale(config);
    results.push_back(r);
    if (rss_budget_bytes != 0 && r.rss_peak_bytes > rss_budget_bytes) {
      rss_ok = false;
    }
    table.add_row({std::to_string(r.users), std::to_string(r.events),
                   std::to_string(r.files_created),
                   fmt(r.events_per_sec), std::to_string(r.triggers),
                   fmt(r.trigger_p50_ms), fmt(r.trigger_p99_ms),
                   mib(r.rss_peak_bytes), std::to_string(r.evicted_users),
                   std::to_string(r.residency_faults)});
  }
  table.print(std::cout);

  const std::string json_path =
      raw.get_string("bench-json", "BENCH_scale.json");
  std::ofstream out(json_path);
  out << "{\n"
      << "  \"bench\": \"scale\",\n"
      << "  \"seed\": " << base.seed << ",\n"
      << "  \"files_per_user\": " << base.initial_files_per_user << ",\n"
      << "  \"span_days\": " << base.sim_span_days << ",\n"
      << "  \"vfs_budget_bytes\": " << base.memory_budget_bytes << ",\n"
      << "  \"rss_budget_bytes\": " << rss_budget_bytes << ",\n"
      << "  \"tiers\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const sim::ScaleResult& r = results[i];
    out << "    {\"users\": " << r.users << ", \"shards\": " << r.shards
        << ", \"events\": " << r.events
        << ", \"files_created\": " << r.files_created
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"triggers\": " << r.triggers
        << ", \"trigger_p50_ms\": " << r.trigger_p50_ms
        << ", \"trigger_p99_ms\": " << r.trigger_p99_ms
        << ", \"trigger_max_ms\": " << r.trigger_max_ms
        << ", \"rss_peak_bytes\": " << r.rss_peak_bytes
        << ", \"vfs_resident_bytes\": " << r.vfs_resident_bytes
        << ", \"vfs_spilled_bytes\": " << r.vfs_spilled_bytes
        << ", \"evicted_users\": " << r.evicted_users
        << ", \"residency_faults\": " << r.residency_faults
        << ", \"purged_files\": " << r.purged_files
        << ", \"purged_bytes\": " << r.purged_bytes << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"rss_within_budget\": " << (rss_ok ? "true" : "false") << ",\n"
      << "  \"identity_ran\": " << (identity_ran ? "true" : "false") << ",\n"
      << "  \"identity_events\": "
      << (!identity_ran || identity.events_identical ? "true" : "false")
      << ",\n"
      << "  \"identity_ranks\": "
      << (!identity_ran || identity.ranks_identical ? "true" : "false")
      << ",\n"
      << "  \"identity_victims\": "
      << (!identity_ran || identity.victims_identical ? "true" : "false")
      << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (identity_ran && !identity.ok()) {
    std::fprintf(stderr,
                 "bench_scale: FAIL — streamed and materialized modes "
                 "diverged\n");
    return 1;
  }
  if (!rss_ok) {
    std::fprintf(stderr,
                 "bench_scale: FAIL — peak RSS exceeded the %.2f GiB "
                 "budget\n",
                 rss_budget_gb);
    return 1;
  }
  return 0;
}
