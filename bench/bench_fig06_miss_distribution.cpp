// Figure 6: file-miss-ratio distribution by number of days, FLT vs ActiveDR
// at the same 50% purge target (90-day lifetime, 7-day trigger).
//
// Paper shape: ActiveDR cuts the 1%-5% days by ~10% (124 -> 112), halves the
// 5%-10% days (59 -> 29), and reduces days with >5% misses by 31%
// (138 -> 95).

#include <cstdio>
#include <iostream>

#include "common/scenario_cache.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner(
      "Figure 6: days per miss-ratio range, FLT vs ActiveDR", "Fig. 6",
      options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const sim::ComparisonResult result =
      sim::run_comparison(scenario, options.experiment);

  const auto flt_hist = sim::miss_ratio_day_histogram(result.flt.daily);
  const auto adr_hist = sim::miss_ratio_day_histogram(result.activedr.daily);

  util::Table table("Number of days per daily miss-ratio range");
  table.set_headers({"Miss ratio range", "FLT", "ActiveDR"});
  for (std::size_t i = 0; i < flt_hist.bins().size(); ++i) {
    table.add_row(
        {flt_hist.bins()[i].label,
         util::fmt_int(static_cast<std::int64_t>(flt_hist.bins()[i].count)),
         util::fmt_int(static_cast<std::int64_t>(adr_hist.bins()[i].count))});
  }
  table.print(std::cout);

  const auto flt5 = static_cast<double>(sim::days_above(result.flt.daily, 0.05));
  const auto adr5 =
      static_cast<double>(sim::days_above(result.activedr.daily, 0.05));
  std::printf("Days with >5%% misses: FLT %.0f, ActiveDR %.0f (reduction "
              "%.0f%%; paper: 138 -> 95, a 31%% reduction)\n",
              flt5, adr5, flt5 > 0 ? 100.0 * (flt5 - adr5) / flt5 : 0.0);
  const auto fm = static_cast<double>(result.flt.total_misses);
  const auto am = static_cast<double>(result.activedr.total_misses);
  std::printf("Total misses: FLT %.0f, ActiveDR %.0f (reduction %.1f%%)\n",
              fm, am, fm > 0 ? 100.0 * (fm - am) / fm : 0.0);
  return 0;
}
