// Figure 1: file misses introduced by the FLT retention method.
//
// Replays the 2016 application log against the initial snapshot under strict
// FLT (90-day lifetime, 7-day trigger, no byte target — purge everything
// expired) and prints (a) the monthly miss-ratio series and (b) the number
// of days falling in each daily miss-ratio range.
//
// Paper shape to compare against: miss ratio fluctuates around ~5%
// (0%..95.66%); >120 days in the 1%-5% range; 5%-30% for 99 days; >30% on
// 39 days; days with >5% misses: 138.

#include <cstdio>
#include <iostream>

#include "common/scenario_cache.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner("Figure 1: FLT file-miss profile over the replay year",
                      "Fig. 1", options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const sim::EmulationResult flt = sim::run_flt_strict(scenario, options.experiment);

  util::Table monthly("Monthly daily-miss-ratio summary (FLT, strict)");
  monthly.set_headers({"Month", "Accesses", "Misses", "Min ratio",
                       "Mean ratio", "Max ratio"});
  std::string month;
  std::size_t acc = 0, miss = 0;
  util::OnlineStats ratio;
  auto flush = [&] {
    if (month.empty()) return;
    monthly.add_row({month, util::fmt_int(static_cast<std::int64_t>(acc)),
                     util::fmt_int(static_cast<std::int64_t>(miss)),
                     util::format_percent(ratio.min()),
                     util::format_percent(ratio.mean()),
                     util::format_percent(ratio.max())});
    acc = miss = 0;
    ratio = util::OnlineStats();
  };
  for (const auto& d : flt.daily) {
    const std::string m = util::format_month(d.day);
    if (m != month) {
      flush();
      month = m;
    }
    acc += d.accesses;
    miss += d.misses;
    ratio.add(d.miss_ratio());
  }
  flush();
  monthly.print(std::cout);

  const auto hist = sim::miss_ratio_day_histogram(flt.daily);
  util::Table ranges("Number of days per daily miss-ratio range");
  ranges.set_headers({"Miss ratio range", "Days"});
  for (const auto& bin : hist.bins()) {
    ranges.add_row({bin.label,
                    util::fmt_int(static_cast<std::int64_t>(bin.count))});
  }
  ranges.print(std::cout);

  double peak = 0;
  for (const auto& d : flt.daily) peak = std::max(peak, d.miss_ratio());
  std::printf("Total: %zu misses / %zu accesses (%.2f%%), peak daily ratio "
              "%.2f%%\n",
              flt.total_misses, flt.total_accesses,
              flt.total_accesses
                  ? 100.0 * static_cast<double>(flt.total_misses) /
                        static_cast<double>(flt.total_accesses)
                  : 0.0,
              peak * 100.0);
  std::printf("Days with >5%% miss ratio: %zu of %zu (paper: 138 of 366)\n",
              sim::days_above(flt.daily, 0.05), flt.daily.size());
  return 0;
}
