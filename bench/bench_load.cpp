// Sustained-load latency harness (DESIGN.md §12).
//
// Drives the sim::run_load ramp — concurrent producers enqueueing trace
// events into ActivityStore's per-shard ingest queues while the main thread
// fires evaluate/purge triggers — then runs a short identity matrix (the
// same fixed-rate level at 1, 2, and 4 shards) and writes BENCH_load.json
// for tools/run_bench.sh to gate.
//
// Exit status is nonzero when any level or identity-matrix run diverges
// from the serial replay, so the per-push CI smoke can use this binary
// directly as a correctness gate.
//
// Flags (util::Config style, all optional):
//   --load-rate N          first ramp level, events/sec      (default 4000)
//   --load-duration S      wall seconds per level            (default 1.0)
//   --trigger-interval S   seconds between triggers          (default 0.1)
//   --p99-budget-ms MS     sustainability budget             (default 50)
//   --ramp-levels N / --ramp-factor X
//   --users N / --files-per-user N / --producers N / --shards N / --seed N
//   --skip-identity-matrix  (timing-only runs)
//   --bench-json PATH      output path (default BENCH_load.json)

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/loadgen.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

namespace {

adr::sim::LoadGenConfig config_from(const adr::util::Config& raw) {
  adr::sim::LoadGenConfig c;
  c.users = static_cast<std::size_t>(
      raw.get_int("users", static_cast<std::int64_t>(c.users)));
  c.files_per_user = static_cast<std::size_t>(raw.get_int(
      "files-per-user", static_cast<std::int64_t>(c.files_per_user)));
  c.seed = static_cast<std::uint64_t>(
      raw.get_int("seed", static_cast<std::int64_t>(c.seed)));
  c.producers = static_cast<std::size_t>(
      raw.get_int("producers", static_cast<std::int64_t>(c.producers)));
  c.shards = static_cast<std::size_t>(raw.get_int("shards", 0));
  c.events_per_sec = raw.get_double("load-rate", c.events_per_sec);
  c.duration_seconds = raw.get_double("load-duration", c.duration_seconds);
  c.trigger_interval_seconds =
      raw.get_double("trigger-interval", c.trigger_interval_seconds);
  c.p99_budget_ms = raw.get_double("p99-budget-ms", c.p99_budget_ms);
  c.ramp_levels = static_cast<std::size_t>(
      raw.get_int("ramp-levels", static_cast<std::int64_t>(c.ramp_levels)));
  c.ramp_factor = raw.get_double("ramp-factor", c.ramp_factor);
  return c;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adr;
  const util::Config raw = util::Config::from_args(argc, argv);
  const sim::LoadGenConfig config = config_from(raw);

  std::printf(
      "bench_load: %zu users, %zu producers, start rate %.0f ev/s, "
      "%.2fs/level, trigger every %.2fs, p99 budget %.1fms\n",
      config.users, config.producers, config.events_per_sec,
      config.duration_seconds, config.trigger_interval_seconds,
      config.p99_budget_ms);

  const sim::LoadResult result = sim::run_load(config);

  util::Table table("Sustained load ramp (" + std::to_string(result.shards) +
                    " shards)");
  table.set_headers({"Target ev/s", "Achieved", "Triggers", "p50 ms", "p99 ms",
                     "p999 ms", "Identical", "Sustainable"});
  for (const sim::LoadLevelResult& level : result.levels) {
    table.add_row({fmt(level.target_rate), fmt(level.achieved_rate),
                   std::to_string(level.triggers), fmt(level.p50_ms),
                   fmt(level.p99_ms), fmt(level.p999_ms),
                   level.ranks_identical ? "yes" : "NO (BUG)",
                   level.sustainable ? "yes" : "no"});
  }
  table.print(std::cout);
  std::printf("max sustainable rate: %.0f ev/s, ranks identical: %s\n",
              result.max_sustainable_rate,
              result.ranks_identical ? "yes" : "NO (BUG)");

  // Identity matrix: the concurrent-vs-serial contract must hold at every
  // shard count, not just the ramp's. Short fixed-rate levels keep this
  // cheap enough for the per-push smoke.
  const std::vector<std::size_t> matrix_shards = {1, 2, 4};
  std::vector<bool> matrix_identical;
  bool identity_ok = result.ranks_identical;
  if (!raw.get_bool("skip-identity-matrix", false)) {
    for (const std::size_t shards : matrix_shards) {
      sim::LoadGenConfig check = config;
      check.shards = shards;
      check.duration_seconds = std::min(config.duration_seconds, 0.5);
      check.ramp_levels = 1;
      const sim::LoadLevelResult level =
          sim::run_load_level(check, config.events_per_sec);
      matrix_identical.push_back(level.ranks_identical);
      identity_ok = identity_ok && level.ranks_identical;
      std::printf("identity @ %zu shards: %s\n", shards,
                  level.ranks_identical ? "yes" : "NO (BUG)");
    }
  }

  const std::string json_path =
      raw.get_string("bench-json", "BENCH_load.json");
  std::ofstream out(json_path);
  out << "{\n"
      << "  \"bench\": \"load_harness\",\n"
      << "  \"users\": " << config.users << ",\n"
      << "  \"seed\": " << config.seed << ",\n"
      << "  \"producers\": " << config.producers << ",\n"
      << "  \"shards\": " << result.shards << ",\n"
      << "  \"start_rate\": " << config.events_per_sec << ",\n"
      << "  \"duration_seconds\": " << config.duration_seconds << ",\n"
      << "  \"trigger_interval_seconds\": " << config.trigger_interval_seconds
      << ",\n"
      << "  \"p99_budget_ms\": " << config.p99_budget_ms << ",\n"
      << "  \"levels\": [\n";
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    const sim::LoadLevelResult& level = result.levels[i];
    out << "    {\"target_rate\": " << level.target_rate
        << ", \"achieved_rate\": " << level.achieved_rate
        << ", \"events\": " << level.events
        << ", \"triggers\": " << level.triggers
        << ", \"p50_ms\": " << level.p50_ms
        << ", \"p99_ms\": " << level.p99_ms
        << ", \"p999_ms\": " << level.p999_ms
        << ", \"max_ms\": " << level.max_ms
        << ", \"wall_seconds\": " << level.wall_seconds
        << ", \"ranks_identical\": "
        << (level.ranks_identical ? "true" : "false")
        << ", \"sustainable\": " << (level.sustainable ? "true" : "false")
        << "}" << (i + 1 < result.levels.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"max_sustainable_rate\": " << result.max_sustainable_rate
      << ",\n"
      << "  \"ranks_identical\": "
      << (result.ranks_identical ? "true" : "false") << ",\n"
      << "  \"identity_shard_counts\": [";
  for (std::size_t i = 0; i < matrix_identical.size(); ++i) {
    out << matrix_shards[i] << (i + 1 < matrix_identical.size() ? ", " : "");
  }
  out << "],\n"
      << "  \"identity_all_identical\": " << (identity_ok ? "true" : "false")
      << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  if (!identity_ok) {
    std::fprintf(stderr,
                 "bench_load: FAIL — concurrent ranks diverged from serial "
                 "replay\n");
    return 1;
  }
  return 0;
}
