// Figure 12: performance evaluation.
//  (a) memory consumption and loading time of the activity traces,
//  (b) activeness-evaluation and purge-decision time,
//  (c/d) snapshot-scanning time, sequential vs parallel shards.
//
// Paper shape: trace loading is hundreds of MB / ~1.5 min at full Titan
// scale; activeness evaluation is sub-second; purge decisions for ~1M files
// take seconds; the snapshot scan parallelizes across ranks.
//
// Part (a) prints a table from real RSS probes; parts (b)-(d) are
// google-benchmark micro/macro benches.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <fstream>
#include <iostream>

#include "common/scenario_cache.hpp"
#include "obs/metrics.hpp"
#include "sim/emulator.hpp"
#include "util/memory.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

adr::bench::BenchOptions g_options;

const adr::synth::TitanScenario& scenario() {
  return adr::bench::shared_scenario(g_options.titan);
}

adr::activeness::ActivityStore build_store(
    const adr::synth::TitanScenario& s) {
  adr::activeness::ActivityStore store(s.registry.size(), 2);
  adr::activeness::ingest_jobs(store, 0, 1.0, s.jobs);
  adr::activeness::ingest_publications(store, 1, 1.0, s.pubs);
  store.sort_all();
  return store;
}

// ---- Fig. 12a: trace loading memory/time (printed, not benchmarked) ------
void print_fig12a() {
  using namespace adr;
  util::Table table("Fig. 12a: trace loading memory and time");
  table.set_headers({"Trace", "Records", "Memory", "Load time"});

  const auto t0 = std::chrono::steady_clock::now();
  util::RssDelta scenario_delta;
  const synth::TitanScenario& s = scenario();
  const double synth_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  table.add_row({"scenario (all traces)",
                 util::fmt_int(static_cast<std::int64_t>(
                     s.jobs.size() + s.pubs.size() + s.replay.size() +
                     s.snapshot.size())),
                 util::format_bytes(static_cast<double>(scenario_delta.bytes())),
                 util::format_duration_seconds(synth_seconds)});

  {
    util::RssDelta delta;
    const auto t1 = std::chrono::steady_clock::now();
    auto store = build_store(s);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();
    // Small stores fit in already-resident heap pages (RSS delta 0);
    // report the logical footprint in that case.
    const double bytes = std::max<double>(
        static_cast<double>(delta.bytes()),
        static_cast<double>(store.total_activities() *
                            sizeof(adr::activeness::Activity)));
    table.add_row({"activity store (jobs+pubs)",
                   util::fmt_int(static_cast<std::int64_t>(
                       store.total_activities())),
                   util::format_bytes(bytes),
                   util::format_duration_seconds(secs)});
  }
  {
    util::RssDelta delta;
    const auto t1 = std::chrono::steady_clock::now();
    fs::Vfs vfs;
    vfs.import_snapshot(s.snapshot);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();
    table.add_row(
        {"snapshot -> prefix tree (" +
             util::fmt_int(static_cast<std::int64_t>(vfs.index().node_count())) +
             " nodes)",
         util::fmt_int(static_cast<std::int64_t>(vfs.file_count())),
         util::format_bytes(static_cast<double>(vfs.index().memory_bytes())),
         util::format_duration_seconds(secs)});
  }
  table.print(std::cout);
}

// ---- Fig. 12b: activeness evaluation + purge decision --------------------
void BM_ActivenessEvaluation(benchmark::State& state) {
  const auto& s = scenario();
  const auto store = build_store(s);
  const adr::activeness::ActivityCatalog catalog =
      adr::activeness::ActivityCatalog::paper_default();
  adr::activeness::EvaluationParams params;
  params.period_length_days = static_cast<int>(state.range(0));
  params.now = s.sim_begin;
  const adr::activeness::Evaluator evaluator(catalog, params);
  for (auto _ : state) {
    auto users = evaluator.evaluate_all(store);
    benchmark::DoNotOptimize(users);
  }
  state.counters["users"] = static_cast<double>(s.registry.size());
}
BENCHMARK(BM_ActivenessEvaluation)->Arg(7)->Arg(90)->Unit(benchmark::kMillisecond);

void BM_PurgeDecision(benchmark::State& state) {
  // Decision phase cost: one full ActiveDR run (no target -> single pass
  // over every user directory) on a freshly imported snapshot. Arg 0 scans
  // via the atime-ordered purge index, arg 1 via the legacy trie walk.
  const auto& s = scenario();
  const auto store = build_store(s);
  adr::activeness::EvaluationParams params;
  params.period_length_days = 90;
  params.now = s.sim_begin;
  const adr::activeness::ActivityCatalog catalog =
      adr::activeness::ActivityCatalog::paper_default();
  const adr::activeness::Evaluator evaluator(catalog, params);
  const auto plan = adr::activeness::build_scan_plan(evaluator.evaluate_all(store));
  adr::retention::ActiveDrConfig config;
  config.scan_mode = state.range(0) == 0 ? adr::retention::ScanMode::kIndexed
                                         : adr::retention::ScanMode::kWalk;
  const adr::retention::ActiveDrPolicy policy(config, s.registry);
  for (auto _ : state) {
    state.PauseTiming();
    adr::fs::Vfs vfs;
    vfs.import_snapshot(s.snapshot);
    state.ResumeTiming();
    auto report = policy.run(vfs, s.sim_begin, 0, plan);
    benchmark::DoNotOptimize(report);
  }
  state.counters["files"] = static_cast<double>(s.snapshot.size());
}
BENCHMARK(BM_PurgeDecision)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"walk"})
    ->Unit(benchmark::kMillisecond);

// ---- Eval-phase regression harness: full vs incremental pipeline ----------
// A replay year of daily evaluation triggers driven through the
// ActivenessTimeline under both eval modes. The incremental pipeline must
// produce the exact same ranks and scan-plan orderings as full
// re-evaluation at every trigger, and its cumulative eval-phase wall time
// must beat full mode by >= MIN_EVAL_SPEEDUP (the delta-aware pipeline only
// re-ranks users whose streams changed or whose rank is live).
//
// Cadence and period length are where the delta pipeline's premise lives:
//  * daily triggers — utilization-triggered purges fire often relative to
//    how often any one user acts, so only a few dozen of the hundred-plus
//    weekly-active users show up in each single-day delta window;
//  * monthly activeness periods (d = 30) — with Fig. 5's skew the bulk of
//    the population is then *provably frozen* between triggers: zero ranks
//    pinned by pigeonhole, a stale newest period, or a static inter-
//    activity gap wider than two periods, exactly the certificates the
//    skip rule monetizes. (At d = 90 most synthetic users stay rank-live
//    inside every window and both modes must re-rank them; the comparison
//    still runs, it just measures mostly-shared work.)
struct EvalModeComparison {
  double full_seconds = 0.0;
  double incremental_seconds = 0.0;
  double speedup = 0.0;
  std::size_t triggers = 0;
  bool ranks_identical = true;
};

bool same_plans(const adr::activeness::ScanPlan& a,
                const adr::activeness::ScanPlan& b) {
  for (std::size_t g = 0; g < adr::activeness::kGroupCount; ++g) {
    if (a.groups[g].size() != b.groups[g].size()) return false;
    for (std::size_t i = 0; i < a.groups[g].size(); ++i) {
      const auto& x = a.groups[g][i];
      const auto& y = b.groups[g][i];
      if (x.user != y.user || x.op.sort_key() != y.op.sort_key() ||
          x.oc.sort_key() != y.oc.sort_key() ||
          x.last_activity != y.last_activity) {
        return false;
      }
    }
  }
  return true;
}

EvalModeComparison run_eval_mode_comparison(int reps) {
  using namespace adr;
  const auto& s = scenario();
  const activeness::ActivityCatalog catalog =
      activeness::ActivityCatalog::paper_default();
  activeness::EvaluationParams params;
  // Monthly activeness periods (see the header comment): short periods are
  // where the frozen-zero certificates bite on this population.
  params.period_length_days = 30;

  EvalModeComparison cmp;

  // Identity pass (untimed): advance both modes in lockstep and compare
  // every plan. Kept separate from the timed reps — the lockstep walk and
  // the per-trigger plan comparison thrash both pipelines' working sets,
  // which would bias the timing of whichever mode runs second.
  {
    sim::ActivenessTimeline full(catalog, build_store(s), params,
                                 activeness::EvalMode::kFull);
    sim::ActivenessTimeline inc(catalog, build_store(s), params,
                                activeness::EvalMode::kIncremental);
    std::size_t triggers = 0;
    for (util::TimePoint t = s.sim_begin; t <= s.sim_end;
         t += util::days(1)) {
      const auto& full_plan = full.plan_at(t);
      const auto& inc_plan = inc.plan_at(t);
      ++triggers;
      if (!same_plans(full_plan, inc_plan)) cmp.ranks_identical = false;
    }
    cmp.triggers = triggers;
  }

  // Timed reps: each mode drives its own fresh timeline through the whole
  // replay year; best-of-reps per mode.
  const auto run_mode = [&](activeness::EvalMode mode) {
    sim::ActivenessTimeline timeline(catalog, build_store(s), params, mode);
    for (util::TimePoint t = s.sim_begin; t <= s.sim_end;
         t += util::days(1)) {
      benchmark::DoNotOptimize(timeline.plan_at(t));
    }
    return timeline.eval_seconds();
  };
  for (int rep = 0; rep < reps; ++rep) {
    const double full_secs = run_mode(activeness::EvalMode::kFull);
    const double inc_secs = run_mode(activeness::EvalMode::kIncremental);
    if (rep == 0 || full_secs < cmp.full_seconds) cmp.full_seconds = full_secs;
    if (rep == 0 || inc_secs < cmp.incremental_seconds) {
      cmp.incremental_seconds = inc_secs;
    }
  }
  cmp.speedup = cmp.incremental_seconds > 0.0
                    ? cmp.full_seconds / cmp.incremental_seconds
                    : 0.0;

  util::Table table("Eval phase: full vs incremental pipeline (daily triggers)");
  table.set_headers({"Mode", "Best time (year)", "Triggers"});
  table.add_row({"full (re-evaluate everyone)",
                 util::format_duration_seconds(cmp.full_seconds),
                 util::fmt_int(static_cast<std::int64_t>(cmp.triggers))});
  table.add_row({"incremental (delta-aware)",
                 util::format_duration_seconds(cmp.incremental_seconds),
                 util::fmt_int(static_cast<std::int64_t>(cmp.triggers))});
  table.print(std::cout);
  std::printf("eval speedup: %.2fx, rank/plan identity: %s\n", cmp.speedup,
              cmp.ranks_identical ? "yes" : "NO (BUG)");
  return cmp;
}

// ---- Shard-scaling harness: 1 shard vs N shards ---------------------------
// The same daily-trigger replay year driven through the sharded pipeline
// (activeness/sharded.hpp) at S = 1 and S = N. Sharding must be invisible in
// the results — identical plans at every trigger and identical purge victims
// off the final plan — and at S >= 4 the concurrent advance must beat the
// single pipeline by >= MIN_SHARD_SPEEDUP (gated in tools/run_bench.sh,
// which fails loudly if this harness reports S < 4 on a machine with >= 4
// cores). N is --shards if given; otherwise at least 4 whenever the
// hardware has >= 4 cores, even if ACTIVEDR_THREADS shrank the pool — the
// gate exists to exercise the parallel advance, so it must not silently
// collapse to a configuration the gate then skips. Only on < 4-core boxes
// does N fall back to the (small) default shard count, and the floor is
// informational only.
struct ShardComparison {
  std::size_t shards = 1;
  double shard_1_seconds = 0.0;
  double shard_n_seconds = 0.0;
  double speedup = 0.0;
  std::size_t triggers = 0;
  bool ranks_identical = true;
  bool victims_identical = true;
};

ShardComparison run_shard_comparison(int reps, std::size_t shards_override) {
  using namespace adr;
  const auto& s = scenario();
  const activeness::ActivityCatalog catalog =
      activeness::ActivityCatalog::paper_default();
  activeness::EvaluationParams params;
  params.period_length_days = 30;  // same cadence premise as the eval bench

  ShardComparison cmp;
  if (shards_override != 0) {
    cmp.shards = shards_override;
  } else {
    cmp.shards = activeness::ShardedEvaluator::default_shard_count();
    if (std::thread::hardware_concurrency() >= 4) {
      cmp.shards = std::max<std::size_t>(cmp.shards, 4);
    }
  }

  // Identity pass (untimed): lockstep daily triggers, every plan compared;
  // then a dry-run purge off each final plan must pick the same victims.
  {
    sim::ActivenessTimeline one(catalog, build_store(s), params,
                                activeness::EvalMode::kAuto, 1);
    sim::ActivenessTimeline many(catalog, build_store(s), params,
                                 activeness::EvalMode::kAuto, cmp.shards);
    std::size_t triggers = 0;
    for (util::TimePoint t = s.sim_begin; t <= s.sim_end;
         t += util::days(1)) {
      const auto& plan_1 = one.plan_at(t);
      const auto& plan_n = many.plan_at(t);
      ++triggers;
      if (!same_plans(plan_1, plan_n)) cmp.ranks_identical = false;
    }
    cmp.triggers = triggers;

    fs::Vfs vfs_1, vfs_n;
    vfs_1.import_snapshot(s.snapshot);
    vfs_n.import_snapshot(s.snapshot);
    retention::ActiveDrConfig config;
    config.dry_run = true;
    const retention::ActiveDrPolicy policy(config, s.registry);
    const std::uint64_t target = retention::purge_target_bytes(vfs_1, 0.25);
    auto report_1 = policy.run(vfs_1, s.sim_end, target, one.plan_at(s.sim_end));
    auto report_n = policy.run(vfs_n, s.sim_end, target, many.plan_at(s.sim_end));
    cmp.victims_identical =
        report_1.victim_paths == report_n.victim_paths &&
        report_1.purged_bytes == report_n.purged_bytes;
  }

  // Timed reps: each shard count drives its own fresh timeline through the
  // replay year; best-of-reps. eval_seconds() counts only this timeline's
  // advance() wall time (wake filter + segment advances + plan merge).
  const auto run_shards = [&](std::size_t shards) {
    sim::ActivenessTimeline timeline(catalog, build_store(s), params,
                                     activeness::EvalMode::kAuto, shards);
    for (util::TimePoint t = s.sim_begin; t <= s.sim_end;
         t += util::days(1)) {
      benchmark::DoNotOptimize(timeline.plan_at(t));
    }
    return timeline.eval_seconds();
  };
  for (int rep = 0; rep < reps; ++rep) {
    const double one_secs = run_shards(1);
    const double many_secs = run_shards(cmp.shards);
    if (rep == 0 || one_secs < cmp.shard_1_seconds) {
      cmp.shard_1_seconds = one_secs;
    }
    if (rep == 0 || many_secs < cmp.shard_n_seconds) {
      cmp.shard_n_seconds = many_secs;
    }
  }
  cmp.speedup = cmp.shard_n_seconds > 0.0
                    ? cmp.shard_1_seconds / cmp.shard_n_seconds
                    : 0.0;

  util::Table table("Eval phase: 1 shard vs " + std::to_string(cmp.shards) +
                    " shards (daily triggers)");
  table.set_headers({"Shards", "Best time (year)", "Triggers"});
  table.add_row({"1 (single pipeline)",
                 util::format_duration_seconds(cmp.shard_1_seconds),
                 util::fmt_int(static_cast<std::int64_t>(cmp.triggers))});
  table.add_row({std::to_string(cmp.shards) + " (parallel advance)",
                 util::format_duration_seconds(cmp.shard_n_seconds),
                 util::fmt_int(static_cast<std::int64_t>(cmp.triggers))});
  table.print(std::cout);
  std::printf(
      "shard speedup: %.2fx at %zu shards, plan identity: %s, "
      "victim identity: %s\n",
      cmp.speedup, cmp.shards, cmp.ranks_identical ? "yes" : "NO (BUG)",
      cmp.victims_identical ? "yes" : "NO (BUG)");
  return cmp;
}

// ---- Perf regression harness: walk vs indexed purge trigger ---------------
// A realistic purge trigger timed under both scan modes against identical
// state: the initial snapshot plus half a replay year of accesses (so
// atimes are mixed — recently-touched files survive, stale ones expire),
// purging toward an aggressive utilization target that drives the policy
// through its groups and retrospective passes. Emits machine-readable JSON
// that tools/run_bench.sh diffs against the committed baseline; the indexed
// mode must select the exact same victims >= 3x faster than the per-pass
// walk.
struct ScanModeRun {
  double best_seconds = 0.0;
  std::vector<std::string> victims;  // sorted
  std::uint64_t purged_bytes = 0;
};

ScanModeRun run_purge_trigger(adr::fs::Vfs& vfs,
                              const adr::activeness::ScanPlan& plan,
                              adr::util::TimePoint now, std::uint64_t target,
                              adr::retention::ScanMode mode, int reps) {
  using namespace adr;
  const auto& s = scenario();
  retention::ActiveDrConfig config;
  config.dry_run = true;  // selection cost only; both modes see equal state
  config.scan_mode = mode;
  const retention::ActiveDrPolicy policy(config, s.registry);

  // Dry runs never mutate, so every rep (and both modes) share this vfs.
  ScanModeRun run;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    auto report = policy.run(vfs, now, target, plan);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (rep == 0 || secs < run.best_seconds) run.best_seconds = secs;
    if (rep == 0) {
      run.victims = std::move(report.victim_paths);
      std::sort(run.victims.begin(), run.victims.end());
      run.purged_bytes = report.purged_bytes;
    }
  }
  return run;
}

void run_scan_mode_comparison(const std::string& json_path,
                              const EvalModeComparison& eval_cmp,
                              const ShardComparison& shard_cmp) {
  using namespace adr;
  const auto& s = scenario();

  // Shared purge-trigger state: snapshot + the first half-year of replayed
  // accesses (no purges in between — both modes must see identical atimes).
  const util::TimePoint mid = s.sim_begin + (s.sim_end - s.sim_begin) / 2;
  fs::Vfs vfs;
  vfs.import_snapshot(s.snapshot);
  vfs.set_capacity_bytes(s.capacity_bytes);
  for (const auto& entry : s.replay.entries()) {
    if (entry.timestamp >= mid) break;
    if (entry.op == trace::FileOp::kCreate) {
      fs::FileMeta meta;
      meta.owner = entry.user;
      meta.stripe_count = entry.stripe_count;
      meta.size_bytes = entry.size_bytes;
      meta.atime = entry.timestamp;
      meta.ctime = entry.timestamp;
      vfs.create(entry.path, meta);
    } else {
      vfs.access(entry.path, entry.timestamp);
    }
  }

  const auto store = build_store(s);
  activeness::EvaluationParams params;
  params.period_length_days = 90;
  params.now = mid;
  const activeness::ActivityCatalog catalog =
      activeness::ActivityCatalog::paper_default();
  const activeness::Evaluator evaluator(catalog, params);
  const auto plan = activeness::build_scan_plan(evaluator.evaluate_all(store));

  // Purge down to 25% utilization: demanding enough that the run descends
  // into retrospective passes (where the walk re-scans and scan-once pays).
  const std::uint64_t target = retention::purge_target_bytes(vfs, 0.25);

  const ScanModeRun walk =
      run_purge_trigger(vfs, plan, mid, target, retention::ScanMode::kWalk, 3);
  const ScanModeRun indexed = run_purge_trigger(
      vfs, plan, mid, target, retention::ScanMode::kIndexed, 3);
  const bool identical = walk.victims == indexed.victims &&
                         walk.purged_bytes == indexed.purged_bytes;
  const double speedup =
      indexed.best_seconds > 0.0 ? walk.best_seconds / indexed.best_seconds
                                 : 0.0;

  util::Table table("Purge trigger: walk vs indexed scan (25% target)");
  table.set_headers({"Mode", "Best time", "Victims", "Purged"});
  table.add_row({"walk (per-pass re-scan)",
                 util::format_duration_seconds(walk.best_seconds),
                 util::fmt_int(static_cast<std::int64_t>(walk.victims.size())),
                 util::format_bytes(static_cast<double>(walk.purged_bytes))});
  table.add_row(
      {"indexed (scan-once)",
       util::format_duration_seconds(indexed.best_seconds),
       util::fmt_int(static_cast<std::int64_t>(indexed.victims.size())),
       util::format_bytes(static_cast<double>(indexed.purged_bytes))});
  table.print(std::cout);
  std::printf("speedup: %.2fx, victim sets identical: %s\n", speedup,
              identical ? "yes" : "NO (BUG)");

  std::ofstream out(json_path);
  out << "{\n"
      << "  \"bench\": \"fig12_purge_trigger\",\n"
      << "  \"users\": " << s.registry.size() << ",\n"
      << "  \"seed\": " << g_options.titan.seed << ",\n"
      << "  \"files\": " << vfs.file_count() << ",\n"
      << "  \"walk_seconds\": " << walk.best_seconds << ",\n"
      << "  \"indexed_seconds\": " << indexed.best_seconds << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"victims\": " << indexed.victims.size() << ",\n"
      << "  \"purged_bytes\": " << indexed.purged_bytes << ",\n"
      << "  \"victim_sets_identical\": " << (identical ? "true" : "false")
      << ",\n"
      << "  \"eval_triggers\": " << eval_cmp.triggers << ",\n"
      << "  \"eval_full_seconds\": " << eval_cmp.full_seconds << ",\n"
      << "  \"eval_incremental_seconds\": " << eval_cmp.incremental_seconds
      << ",\n"
      << "  \"eval_speedup\": " << eval_cmp.speedup << ",\n"
      << "  \"eval_ranks_identical\": "
      << (eval_cmp.ranks_identical ? "true" : "false") << ",\n"
      << "  \"shards\": " << shard_cmp.shards << ",\n"
      << "  \"shard_1_seconds\": " << shard_cmp.shard_1_seconds << ",\n"
      << "  \"shard_n_seconds\": " << shard_cmp.shard_n_seconds << ",\n"
      << "  \"shard_speedup\": " << shard_cmp.speedup << ",\n"
      << "  \"shard_ranks_identical\": "
      << (shard_cmp.ranks_identical ? "true" : "false") << ",\n"
      << "  \"shard_victims_identical\": "
      << (shard_cmp.victims_identical ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
}

// ---- Fig. 12c/d: snapshot scanning, sequential vs sharded ----------------
void BM_SnapshotScanSequential(benchmark::State& state) {
  const auto& s = scenario();
  adr::fs::Vfs vfs;
  vfs.import_snapshot(s.snapshot);
  for (auto _ : state) {
    std::uint64_t bytes = 0;
    vfs.for_each([&](const std::string&, const adr::fs::FileMeta& meta) {
      bytes += meta.size_bytes;
    });
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_SnapshotScanSequential)->Unit(benchmark::kMillisecond);

void BM_SnapshotScanSharded(benchmark::State& state) {
  // The mpi4py-style decomposition: each shard scans the user directories
  // it owns (users are disjoint subtrees, so shards never contend).
  const auto& s = scenario();
  adr::fs::Vfs vfs;
  vfs.import_snapshot(s.snapshot);
  for (auto _ : state) {
    std::atomic<std::uint64_t> bytes{0};
    adr::util::global_pool().parallel_for(
        0, s.registry.size(), [&](std::size_t u) {
          std::uint64_t mine = 0;
          vfs.for_each_under(
              s.registry.home_dir(static_cast<adr::trace::UserId>(u)),
              [&](const std::string&, const adr::fs::FileMeta& meta) {
                mine += meta.size_bytes;
              });
          bytes.fetch_add(mine, std::memory_order_relaxed);
        });
    benchmark::DoNotOptimize(bytes.load());
  }
  state.counters["shards"] =
      static_cast<double>(adr::util::global_pool().size() + 1);
}
BENCHMARK(BM_SnapshotScanSharded)->Unit(benchmark::kMillisecond);

// ---- supporting microbenches: the prefix tree -----------------------------
void BM_TrieLookup(benchmark::State& state) {
  const auto& s = scenario();
  adr::fs::Vfs vfs;
  vfs.import_snapshot(s.snapshot);
  const auto& entries = s.snapshot.entries();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto* meta = vfs.stat(entries[i % entries.size()].path);
    benchmark::DoNotOptimize(meta);
    ++i;
  }
}
BENCHMARK(BM_TrieLookup);

void BM_TrieInsertErase(benchmark::State& state) {
  adr::fs::PathTrie trie;
  adr::fs::FileMeta meta;
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string path =
        "/scratch/u/p/r/file_" + std::to_string(i++ % 4096) + ".dat";
    trie.insert(path, meta);
    trie.erase(path);
  }
}
BENCHMARK(BM_TrieInsertErase);

// ---- Fig. 12b companion: registry-driven phase breakdown ------------------
// Every evaluator/policy/vfs/thread-pool call above reported into the global
// metrics registry; a single snapshot at the end attributes where the
// benchmark's wall time actually went, per `component.phase` span, with the
// matching work counters alongside.
void print_phase_breakdown() {
  using namespace adr;
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();

  util::Table spans("Phase breakdown (timer spans, whole bench run)");
  spans.set_headers({"Span", "Count", "Total", "Mean", "Max"});
  for (const auto& [name, h] : snap.spans) {
    if (h.count == 0) continue;
    spans.add_row(
        {name, util::fmt_int(static_cast<std::int64_t>(h.count)),
         util::format_duration_seconds(h.sum_seconds),
         util::format_duration_seconds(h.sum_seconds /
                                       static_cast<double>(h.count)),
         util::format_duration_seconds(h.max_seconds)});
  }
  spans.print(std::cout);

  util::Table counters("Work counters");
  counters.set_headers({"Counter", "Value"});
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;
    counters.add_row({name, util::fmt_int(static_cast<std::int64_t>(value))});
  }
  counters.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  g_options = adr::bench::BenchOptions::from_args(argc, argv);
  const adr::util::Config raw = adr::util::Config::from_args(argc, argv);
  adr::bench::print_banner(
      "Figure 12: ActiveDR performance (memory, evaluation, scan)", "Fig. 12",
      g_options);
  print_fig12a();
  const EvalModeComparison eval_cmp = run_eval_mode_comparison(3);
  const ShardComparison shard_cmp = run_shard_comparison(
      3, static_cast<std::size_t>(raw.get_int("shards", 0)));
  run_scan_mode_comparison(raw.get_string("bench-json", "BENCH_fig12.json"),
                           eval_cmp, shard_cmp);

  // Hand benchmark only the flags it understands.
  int bench_argc = 1;
  benchmark::Initialize(&bench_argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_phase_breakdown();
  return 0;
}
