#include "common/scenario_cache.hpp"

#include <cstdio>
#include <map>
#include <memory>

#include "util/logging.hpp"

namespace adr::bench {

BenchOptions BenchOptions::from_args(int argc, char** argv) {
  const util::Config config = util::Config::from_args(argc, argv);
  BenchOptions opts;
  opts.titan.users = static_cast<std::size_t>(config.get_int("users", 600));
  const double scale = config.get_double("scale", 1.0);
  opts.titan.users = static_cast<std::size_t>(
      static_cast<double>(opts.titan.users) * scale);
  if (opts.titan.users < 8) opts.titan.users = 8;
  opts.titan.seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  opts.experiment.lifetime_days =
      static_cast<int>(config.get_int("lifetime", 90));
  opts.experiment.purge_interval_days =
      static_cast<int>(config.get_int("interval", 7));
  opts.experiment.purge_target_utilization = config.get_double("target", 0.5);
  return opts;
}

const synth::TitanScenario& shared_scenario(
    const synth::TitanParams& params) {
  static std::map<std::pair<std::size_t, std::uint64_t>,
                  std::unique_ptr<synth::TitanScenario>>
      cache;
  const auto key = std::make_pair(params.users, params.seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, std::make_unique<synth::TitanScenario>(
                               synth::build_titan_scenario(params)))
             .first;
  }
  return *it->second;
}

void print_banner(const std::string& title, const std::string& paper_ref,
                  const BenchOptions& options) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s (SC '21, Zhang et al.)\n", paper_ref.c_str());
  std::printf(
      "Scenario: %zu users, seed %llu, lifetime %dd, trigger every %dd, "
      "purge target %.0f%%\n",
      options.titan.users,
      static_cast<unsigned long long>(options.titan.seed),
      options.experiment.lifetime_days, options.experiment.purge_interval_days,
      options.experiment.purge_target_utilization * 100.0);
  std::printf("================================================================\n");
}

const char* group_label(std::size_t group_index) {
  static const char* labels[] = {"Both Active", "Operation Active Only",
                                 "Outcome Active Only", "Both Inactive"};
  return group_index < 4 ? labels[group_index] : "?";
}

}  // namespace adr::bench
