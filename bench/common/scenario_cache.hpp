#pragma once
// Shared plumbing for the bench binaries: CLI options (--users, --seed,
// --lifetime, ...), a per-process scenario cache (lifetime sweeps reuse one
// synthesized scenario), and the standard header every bench prints so
// bench_output.txt records the run's provenance.

#include <string>

#include "sim/experiment.hpp"
#include "synth/titan_model.hpp"
#include "util/config.hpp"

namespace adr::bench {

struct BenchOptions {
  synth::TitanParams titan;
  sim::ExperimentConfig experiment;

  /// Parse standard flags: --users N --seed S --lifetime D --interval D
  /// --target F --scale F (scale multiplies the user count).
  static BenchOptions from_args(int argc, char** argv);
};

/// Build (or fetch the cached) scenario for the given parameters. Cached by
/// (users, seed) within the process.
const synth::TitanScenario& shared_scenario(const synth::TitanParams& params);

/// Print the standard bench banner.
void print_banner(const std::string& title, const std::string& paper_ref,
                  const BenchOptions& options);

/// "G(1)".."G(4)" labels in paper order for table headers.
const char* group_label(std::size_t group_index);

}  // namespace adr::bench
