// Ablation B: the recency exponent in Eq. 5 — (b_e)^e vs no recency
// weighting vs a capped exponent. Shows how the weighting shifts the user
// classification and the resulting miss profile.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "sim/emulator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner("Ablation: Eq. 5 exponent scheme", "§3.2 design choice",
                      options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const double n = static_cast<double>(scenario.registry.size());

  const std::pair<activeness::ExponentScheme, const char*> schemes[] = {
      {activeness::ExponentScheme::kPaperExponent, "paper (b_e)^e"},
      {activeness::ExponentScheme::kCappedLinear, "capped (b_e)^min(e,8)"},
      {activeness::ExponentScheme::kUniform, "uniform (b_e)^1"},
  };

  util::Table matrix("Group shares at replay start (90-day periods)");
  matrix.set_headers({"Scheme", "G(1)", "G(2)", "G(3)", "G(4)"});
  for (const auto& [scheme, label] : schemes) {
    activeness::EvaluationParams params;
    params.period_length_days = options.experiment.lifetime_days;
    params.scheme = scheme;
    sim::ActivenessTimeline timeline =
        sim::ActivenessTimeline::for_scenario(scenario, params);
    const auto& plan = timeline.plan_at(scenario.sim_begin);
    std::vector<std::string> row{label};
    for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
      row.push_back(util::format_percent(
          static_cast<double>(
              plan.group(static_cast<activeness::UserGroup>(g)).size()) /
              n,
          1));
    }
    matrix.add_row(std::move(row));
  }
  matrix.print(std::cout);

  util::Table misses("Year-replay misses per scheme (ActiveDR, 50% target)");
  misses.set_headers({"Scheme", "Total misses", "Active-group misses"});
  for (const auto& [scheme, label] : schemes) {
    sim::ExperimentConfig config = options.experiment;
    config.scheme = scheme;
    const sim::EmulationResult r = sim::run_activedr(scenario, config);
    std::size_t active = 0;
    for (const auto& d : r.daily) {
      active += d.misses_by_group[0] + d.misses_by_group[1] +
                d.misses_by_group[2];
    }
    misses.add_row({label,
                    util::fmt_int(static_cast<std::int64_t>(r.total_misses)),
                    util::fmt_int(static_cast<std::int64_t>(active))});
  }
  misses.print(std::cout);
  return 0;
}
