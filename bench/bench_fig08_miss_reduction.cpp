// Figure 8: statistics on the file-miss reduction ratio — per-day
// (FLT − ActiveDR) / FLT samples per user group, summarized as box-plot
// statistics.
//
// Paper shape (means, the "green triangles"): Both Active 37%, Operation
// Active Only 7.5%, Outcome Active Only 11.2%, Both Inactive 27.5%; maxima
// reach 100% for Both Inactive.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner(
      "Figure 8: file-miss reduction ratio statistics per group", "Fig. 8",
      options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const sim::ComparisonResult result =
      sim::run_comparison(scenario, options.experiment);

  util::Table table(
      "Daily miss-reduction ratio (FLT - ActiveDR) / FLT, per group");
  table.set_headers(
      {"Group", "Days", "Min", "Q1", "Median", "Q3", "Max", "Mean"});
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    const auto ratios = sim::daily_miss_reduction_ratios(
        result.flt.daily, result.activedr.daily,
        static_cast<activeness::UserGroup>(g));
    const auto s = util::five_number_summary(ratios);
    table.add_row({bench::group_label(g),
                   util::fmt_int(static_cast<std::int64_t>(s.count)),
                   util::format_percent(s.min, 1),
                   util::format_percent(s.q1, 1),
                   util::format_percent(s.median, 1),
                   util::format_percent(s.q3, 1),
                   util::format_percent(s.max, 1),
                   util::format_percent(s.mean, 1)});
  }
  table.print(std::cout);
  std::cout << "Paper reference means: Both Active 37%, Op Only 7.5%, "
               "Outcome Only 11.2%, Both Inactive 27.5%\n";
  return 0;
}
