// Figure 7: file-miss reduction in the user activeness matrix — the monthly
// file-miss series per user group, FLT vs ActiveDR.
//
// Paper shape: misses rise through the year for both policies (the snapshot
// starts FLT-clean, then purges accumulate); the FLT-ActiveDR gap widens
// over time in every group.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "sim/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner(
      "Figure 7: monthly file misses per activeness group, FLT vs ActiveDR",
      "Fig. 7", options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const sim::ComparisonResult result =
      sim::run_comparison(scenario, options.experiment);

  const auto flt_monthly = sim::monthly_group_misses(result.flt.daily);
  const auto adr_monthly = sim::monthly_group_misses(result.activedr.daily);

  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    util::Table table(std::string("Monthly misses: ") + bench::group_label(g));
    table.set_headers({"Month", "FLT", "ActiveDR", "Cumulative FLT",
                       "Cumulative ActiveDR"});
    std::size_t cum_flt = 0, cum_adr = 0;
    for (std::size_t m = 0; m < flt_monthly.size(); ++m) {
      cum_flt += flt_monthly[m].misses[g];
      cum_adr += adr_monthly[m].misses[g];
      table.add_row(
          {flt_monthly[m].month,
           util::fmt_int(static_cast<std::int64_t>(flt_monthly[m].misses[g])),
           util::fmt_int(static_cast<std::int64_t>(adr_monthly[m].misses[g])),
           util::fmt_int(static_cast<std::int64_t>(cum_flt)),
           util::fmt_int(static_cast<std::int64_t>(cum_adr))});
    }
    table.print(std::cout);
  }
  return 0;
}
