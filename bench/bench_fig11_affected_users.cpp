// Figure 11: number of users affected by the file purge, per activeness
// group and lifetime setting — from the same §4.4 one-shot retention run on
// the 2016-08-23 state as Figs. 9/10.
//
// Paper shape: far fewer active users are touched by ActiveDR — fewer than
// 60 Both-Active users affected vs over 700 under FLT at d = 7.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner(
      "Figure 11: users affected by purge, per group and lifetime "
      "(one-shot retention on the 2016-08-23 state)",
      "Fig. 11", options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const util::TimePoint as_of = util::from_civil(2016, 8, 23);

  util::Table table("Users who lost >= 1 file in the retention run");
  table.set_headers({"Lifetime", "Group", "Users in group", "FLT affected",
                     "ActiveDR affected"});
  for (const int d : {7, 30, 60, 90}) {
    sim::ExperimentConfig config = options.experiment;
    config.lifetime_days = d;
    const sim::SnapshotRetentionResult result =
        sim::run_snapshot_retention(scenario, config, as_of);
    for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
      const auto group = static_cast<activeness::UserGroup>(g);
      table.add_row(
          {std::to_string(d) + " days", bench::group_label(g),
           util::fmt_int(static_cast<std::int64_t>(result.group_counts[g])),
           util::fmt_int(static_cast<std::int64_t>(
               result.flt.group(group).users_affected)),
           util::fmt_int(static_cast<std::int64_t>(
               result.activedr.group(group).users_affected))});
    }
  }
  table.print(std::cout);
  std::cout << "Paper reference: <60 Both-Active users affected by ActiveDR "
               "vs >700 by FLT at d = 7\n";
  return 0;
}
