// Table 1: the FLT retention settings deployed at four HPC facilities
// (NCAR 120d, OLCF 90d, TACC 30d, NERSC 12 weeks), replayed as strict FLT
// over the same scenario so the lifetime's effect on file misses is visible.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "sim/metrics.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner("Table 1: facility FLT presets head-to-head", "Tab. 1",
                      options);

  struct Facility {
    const char* name;
    const char* policy;
    retention::FltConfig config;
  };
  const Facility facilities[] = {
      {"NCAR", "purge any 120-day old", retention::FltConfig::ncar()},
      {"OLCF", "purge any 90-day old", retention::FltConfig::olcf()},
      {"TACC", "purge any 30-day old", retention::FltConfig::tacc()},
      {"NERSC", "purge any 12-week old", retention::FltConfig::nersc()},
  };

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);

  util::Table table("Strict FLT replay under each facility's lifetime");
  table.set_headers({"Facility", "Policy", "Lifetime", "Misses",
                     "Miss ratio", "Days >5% misses", "Final utilization"});
  for (const auto& f : facilities) {
    sim::ExperimentConfig config = options.experiment;
    config.lifetime_days = f.config.lifetime_days;
    const sim::EmulationResult r = sim::run_flt_strict(scenario, config);
    table.add_row(
        {f.name, f.policy, std::to_string(f.config.lifetime_days) + "d",
         util::fmt_int(static_cast<std::int64_t>(r.total_misses)),
         util::format_percent(
             r.total_accesses
                 ? static_cast<double>(r.total_misses) /
                       static_cast<double>(r.total_accesses)
                 : 0.0),
         util::fmt_int(static_cast<std::int64_t>(
             sim::days_above(r.daily, 0.05))),
         util::format_percent(static_cast<double>(r.final_bytes) /
                              static_cast<double>(scenario.capacity_bytes))});
  }
  table.print(std::cout);
  std::cout << "Shape check: shorter lifetimes purge harder -> more misses, "
               "lower utilization\n";
  return 0;
}
