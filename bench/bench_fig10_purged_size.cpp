// Figure 10 + Table 6: total size of purged files per activeness group, per
// lifetime setting — the purge-side view of the same §4.4 one-shot retention
// run on the 2016-08-23 state as Fig. 9.
//
// Paper shape: ActiveDR purges less from every active group; for Both
// Inactive it purges more at short lifetimes and converges to FLT's volume
// at 60/90 days (the state is already a product of the facility's 90-day
// FLT, so there is little extra to find).

#include <iostream>

#include "common/scenario_cache.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner(
      "Figure 10 / Table 6: purged bytes per group vs lifetime "
      "(one-shot retention on the 2016-08-23 state)",
      "Fig. 10, Tab. 6", options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const util::TimePoint as_of = util::from_civil(2016, 8, 23);

  util::Table fig10("Total purged bytes (Fig. 10)");
  fig10.set_headers({"Lifetime", "Group", "FLT", "ActiveDR"});
  util::Table tab6("Purged-size difference FLT - ActiveDR (Table 6)");
  tab6.set_headers({"Lifetime", "Both Active", "Op Only", "Outcome Only",
                    "Both Inactive"});

  for (const int d : {7, 30, 60, 90}) {
    sim::ExperimentConfig config = options.experiment;
    config.lifetime_days = d;
    const sim::SnapshotRetentionResult result =
        sim::run_snapshot_retention(scenario, config, as_of);

    std::vector<std::string> diff_row{std::to_string(d) + " days"};
    for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
      const auto group = static_cast<activeness::UserGroup>(g);
      const double flt_bytes =
          static_cast<double>(result.flt.group(group).purged_bytes);
      const double adr_bytes =
          static_cast<double>(result.activedr.group(group).purged_bytes);
      fig10.add_row({std::to_string(d) + " days", bench::group_label(g),
                     util::format_bytes(flt_bytes),
                     util::format_bytes(adr_bytes)});
      diff_row.push_back(util::format_bytes(flt_bytes - adr_bytes));
    }
    tab6.add_row(std::move(diff_row));
  }
  fig10.print(std::cout);
  tab6.print(std::cout);
  std::cout << "Paper reference (Table 6): positive for active groups, "
               "negative (ActiveDR purges more) for Both Inactive at short "
               "lifetimes, ~0 at 60/90 days\n";
  return 0;
}
