// Related-work shootout (§2): all four retention strategy families on the
// same year replay —
//   * FLT (strict, the deployed baseline),
//   * value-based (Wijnhoven/Turczyk-style weighted file scoring — the
//     family the paper excludes for lacking a value consensus),
//   * scratch-as-a-cache (Monti et al. — excluded for its load/offload
//     burden),
//   * ActiveDR.
// Columns quantify the paper's exclusion arguments: the cache approach's
// restore traffic and modeled user wait, and how each policy distributes
// pain across the activeness groups.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner(
      "Related work: the four retention families head-to-head", "§2",
      options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  sim::ActivenessTimeline timeline = sim::ActivenessTimeline::for_scenario(
      scenario, sim::evaluation_params(options.experiment));
  sim::EmulatorConfig emu;
  emu.purge_interval_days = options.experiment.purge_interval_days;
  emu.purge_target_utilization = options.experiment.purge_target_utilization;
  sim::Emulator emulator(scenario, emu, timeline);

  std::vector<sim::EmulationResult> results;
  {
    sim::FltDriver flt(retention::FltConfig{options.experiment.lifetime_days},
                       timeline);
    results.push_back(emulator.run(flt, 0.0));  // strict, no target
  }
  {
    sim::ValueDriver value(retention::ValueConfig{}, timeline);
    results.push_back(
        emulator.run(value, options.experiment.purge_target_utilization));
  }
  {
    sim::ScratchCacheDriver cache(retention::ScratchCacheConfig{}, timeline);
    results.push_back(emulator.run(cache, 0.0));  // cache ignores targets
  }
  {
    retention::ActiveDrConfig adr_config;
    adr_config.initial_lifetime_days = options.experiment.lifetime_days;
    sim::ActiveDrDriver adr(adr_config, scenario.registry, timeline);
    results.push_back(
        emulator.run(adr, options.experiment.purge_target_utilization));
  }

  util::Table table("Year replay, one row per strategy");
  table.set_headers({"Policy", "Misses", "Days >5%", "Final util",
                     "Restored", "Restore wait (h)", "Active users hit"});
  for (const auto& r : results) {
    std::size_t active_hit = 0;
    for (std::size_t g = 0; g < 3; ++g) {
      active_hit += r.groups[g].unique_affected_users;
    }
    table.add_row(
        {r.policy, util::fmt_int(static_cast<std::int64_t>(r.total_misses)),
         util::fmt_int(static_cast<std::int64_t>(
             sim::days_above(r.daily, 0.05))),
         util::format_percent(static_cast<double>(r.final_bytes) /
                              static_cast<double>(scenario.capacity_bytes)),
         util::format_bytes(static_cast<double>(r.archive.restored_bytes)),
         util::fmt_double(r.archive.restore_hours, 1),
         util::fmt_int(static_cast<std::int64_t>(active_hit))});
  }
  table.print(std::cout);
  std::cout
      << "Shape check (the paper's §2 arguments, quantified):\n"
         "  * scratch-as-a-cache restores orders of magnitude more bytes —\n"
         "    the load/offload burden that got it excluded;\n"
         "  * value-based lands between FLT and ActiveDR but needs the\n"
         "    weight/threshold configuration the paper calls impractical;\n"
         "  * ActiveDR minimizes misses for active users at the same "
         "target.\n";
  return 0;
}
