// Figure 9 + Tables 4 and 5: total size of retained files per activeness
// group, per lifetime setting (7/30/60/90 days).
//
// Per §4.4, these come from ONE retention run on the last available weekly
// metadata snapshot (2016-08-23): both policies are driven to the same 50%
// purge target from identical states; what differs is which files each
// selects. Paper shape: ActiveDR retains more for every active group (up to
// +213.47% at d = 30 for Both Active) and substantially less for Both
// Inactive; deltas shrink as d grows toward the facility's own 90-day FLT.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner(
      "Figure 9 / Tables 4-5: retained bytes per group vs lifetime "
      "(one-shot retention on the 2016-08-23 state)",
      "Fig. 9, Tab. 4, Tab. 5", options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const util::TimePoint as_of = util::from_civil(2016, 8, 23);

  util::Table fig9("Total retained bytes (Fig. 9)");
  fig9.set_headers({"Lifetime", "Group", "FLT", "ActiveDR"});
  util::Table tab4(
      "Percentage of file size ActiveDR retains more than FLT (Table 4)");
  tab4.set_headers({"Lifetime", "Both Active", "Op Only", "Outcome Only",
                    "Both Inactive"});
  util::Table tab5("Retained-size difference ActiveDR - FLT (Table 5)");
  tab5.set_headers({"Lifetime", "Both Active", "Op Only", "Outcome Only",
                    "Both Inactive"});

  for (const int d : {7, 30, 60, 90}) {
    sim::ExperimentConfig config = options.experiment;
    config.lifetime_days = d;
    const sim::SnapshotRetentionResult result =
        sim::run_snapshot_retention(scenario, config, as_of);

    std::vector<std::string> pct_row{std::to_string(d) + " days"};
    std::vector<std::string> diff_row{std::to_string(d) + " days"};
    for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
      const auto group = static_cast<activeness::UserGroup>(g);
      const double flt_bytes =
          static_cast<double>(result.flt.group(group).retained_bytes);
      const double adr_bytes =
          static_cast<double>(result.activedr.group(group).retained_bytes);
      fig9.add_row({std::to_string(d) + " days", bench::group_label(g),
                    util::format_bytes(flt_bytes),
                    util::format_bytes(adr_bytes)});
      pct_row.push_back(flt_bytes > 0
                            ? util::format_percent(
                                  (adr_bytes - flt_bytes) / flt_bytes, 2)
                            : "n/a");
      diff_row.push_back(util::format_bytes(adr_bytes - flt_bytes));
    }
    tab4.add_row(std::move(pct_row));
    tab5.add_row(std::move(diff_row));
  }
  fig9.print(std::cout);
  tab4.print(std::cout);
  tab5.print(std::cout);
  std::cout << "Paper reference (Table 4): Both Active +71%/+213%/+36%/+34%; "
               "Both Inactive -76%/-49%/-42%/-40% across 7/30/60/90 days\n";
  return 0;
}
