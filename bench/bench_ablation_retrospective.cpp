// Ablation A: the retrospective-pass mechanism (§3.4: 5 passes, 20% decay).
//
// The mechanism binds when the purge target is deeper than the expired-file
// pool — the §4.4 one-shot retention (purge half of current usage) is such a
// case. Sweeps the pass count and decay rate and reports how close each
// configuration gets to the target and who pays for the extra digging.

#include <iostream>

#include "common/scenario_cache.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace adr;
  bench::BenchOptions options = bench::BenchOptions::from_args(argc, argv);
  bench::print_banner(
      "Ablation: retrospective passes and rank decay (one-shot retention)",
      "§3.4 design choice", options);

  const synth::TitanScenario& scenario = bench::shared_scenario(options.titan);
  const util::TimePoint as_of = util::from_civil(2016, 8, 23);

  auto run = [&](int passes, double decay) {
    sim::ExperimentConfig config = options.experiment;
    config.retrospective_passes = passes;
    config.retrospective_decay = decay;
    return sim::run_snapshot_retention(scenario, config, as_of);
  };

  auto row = [&](const std::string& label,
                 const sim::SnapshotRetentionResult& r) {
    const auto& adr_report = r.activedr;
    const double coverage =
        adr_report.target_purge_bytes
            ? static_cast<double>(adr_report.purged_bytes) /
                  static_cast<double>(adr_report.target_purge_bytes)
            : 1.0;
    std::uint64_t active_purged = 0;
    for (std::size_t g = 0; g < 3; ++g) {
      active_purged += adr_report.by_group[g].purged_bytes;
    }
    return std::vector<std::string>{
        label,
        util::format_percent(std::min(coverage, 1.0), 1),
        adr_report.target_reached ? "yes" : "no",
        std::to_string(adr_report.retrospective_passes_used),
        util::format_bytes(static_cast<double>(
            adr_report.group(activeness::UserGroup::kBothInactive)
                .purged_bytes)),
        util::format_bytes(static_cast<double>(active_purged))};
  };

  util::Table passes_table("Pass-count sweep (decay fixed at 20%)");
  passes_table.set_headers({"Passes", "Target coverage", "Reached",
                            "Retro passes used", "Purged from Both Inactive",
                            "Purged from active groups"});
  for (const int passes : {0, 1, 2, 3, 5, 8}) {
    passes_table.add_row(row(std::to_string(passes), run(passes, 0.20)));
  }
  passes_table.print(std::cout);

  util::Table decay_table("Decay sweep (passes fixed at 5)");
  decay_table.set_headers({"Decay", "Target coverage", "Reached",
                           "Retro passes used", "Purged from Both Inactive",
                           "Purged from active groups"});
  for (const double decay : {0.05, 0.10, 0.20, 0.40}) {
    decay_table.add_row(row(util::format_percent(decay, 0), run(5, decay)));
  }
  decay_table.print(std::cout);

  std::cout << "Shape check: more passes / faster decay push coverage toward "
               "100% by digging deeper into Both Inactive before touching "
               "any active group\n";
  return 0;
}
