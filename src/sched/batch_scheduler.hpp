#pragma once
// Batch-scheduler substrate.
//
// The paper's operation trace is a job-scheduler log (Moab on Titan). This
// module simulates the scheduler that would produce such a log: an
// event-driven FCFS queue with EASY backfill over a fixed node pool,
// yielding start times, waits, and completion status for a stream of
// submissions. The synthesizer can run its job streams through it so that
// core-hour impacts reflect *scheduled* executions, and "successful job
// completion" (a Table 2 outcome example) becomes derivable.
//
// Scope: space-shared nodes (no co-scheduling), exclusive node counts, EASY
// backfill — jobs may jump the queue only if they cannot delay the reserved
// start of the queue head. Classic, deterministic, and enough to reproduce
// realistic wait-time and utilization dynamics.

#include <cstdint>
#include <vector>

#include "trace/job_log.hpp"

namespace adr::sched {

struct SchedulerConfig {
  /// Number of compute nodes (Titan had 18,688; scale with the population).
  std::int64_t nodes = 512;
  /// Cores per node — converts a job's core request to nodes (ceil).
  std::int32_t cores_per_node = 16;
  /// Fraction of jobs that die before finishing (node failure, bad input).
  double failure_rate = 0.03;
  /// Users pad their walltime request by this factor over the actual
  /// runtime (affects backfill reservations only).
  double walltime_padding = 1.5;
  /// RNG seed for the failure draw.
  std::uint64_t seed = 1;
};

/// One job's scheduling outcome.
struct ScheduledJob {
  std::uint64_t job_id = 0;
  trace::UserId user = trace::kInvalidUser;
  util::TimePoint submit_time = 0;
  util::TimePoint start_time = 0;
  util::TimePoint end_time = 0;
  std::int64_t nodes = 0;
  bool completed = true;   ///< false: failed partway
  bool backfilled = false; ///< started ahead of its queue position

  util::Duration wait() const { return start_time - submit_time; }
  util::Duration runtime() const { return end_time - start_time; }
};

/// Aggregate statistics over one schedule.
struct ScheduleStats {
  std::size_t jobs = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t backfilled = 0;      ///< jobs started ahead of queue order
  double mean_wait_seconds = 0.0;
  double max_wait_seconds = 0.0;
  /// Node-seconds used / node-seconds available over the makespan.
  double utilization = 0.0;
};

/// Schedule a submission stream (must be sorted by submit time). Returns
/// one outcome per input job, in input order.
std::vector<ScheduledJob> schedule(const std::vector<trace::JobRecord>& jobs,
                                   const SchedulerConfig& config);

/// Convenience overload over a JobLog.
std::vector<ScheduledJob> schedule(const trace::JobLog& log,
                                   const SchedulerConfig& config);

ScheduleStats summarize(const std::vector<ScheduledJob>& schedule,
                        const SchedulerConfig& config);

}  // namespace adr::sched
