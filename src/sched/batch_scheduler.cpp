#include "sched/batch_scheduler.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace adr::sched {

namespace {

struct Running {
  util::TimePoint release_time;  ///< when its nodes free up
  std::int64_t nodes;
  bool operator>(const Running& other) const {
    return release_time > other.release_time;
  }
};

struct Pending {
  std::size_t index;            ///< into the input/output arrays
  std::int64_t nodes;
  util::Duration walltime_req;  ///< padded request (backfill reservations)
  util::Duration actual;        ///< real runtime (with failure applied)
  bool completes;
};

}  // namespace

std::vector<ScheduledJob> schedule(const std::vector<trace::JobRecord>& jobs,
                                   const SchedulerConfig& config) {
  if (config.nodes <= 0 || config.cores_per_node <= 0) {
    throw std::invalid_argument("SchedulerConfig: nodes and cores_per_node "
                                "must be positive");
  }
  if (!std::is_sorted(jobs.begin(), jobs.end(),
                      [](const trace::JobRecord& a, const trace::JobRecord& b) {
                        return a.submit_time < b.submit_time;
                      })) {
    throw std::invalid_argument("schedule: jobs must be sorted by submit time");
  }

  std::vector<ScheduledJob> out(jobs.size());
  util::Rng rng(config.seed);

  // Pre-draw per-job failure outcomes so they are independent of schedule
  // order (deterministic given the seed and the input order).
  std::vector<Pending> prepared(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& j = jobs[i];
    Pending p;
    p.index = i;
    p.nodes = std::clamp<std::int64_t>(
        (static_cast<std::int64_t>(j.cores) + config.cores_per_node - 1) /
            config.cores_per_node,
        1, config.nodes);
    const util::Duration runtime = std::max<util::Duration>(j.duration_seconds, 1);
    p.completes = !rng.bernoulli(config.failure_rate);
    p.actual = p.completes
                   ? runtime
                   : std::max<util::Duration>(
                         1, static_cast<util::Duration>(
                                rng.uniform(0.05, 0.95) *
                                static_cast<double>(runtime)));
    p.walltime_req = static_cast<util::Duration>(
        config.walltime_padding * static_cast<double>(runtime));
    prepared[i] = p;

    out[i].job_id = j.job_id;
    out[i].user = j.user;
    out[i].submit_time = j.submit_time;
    out[i].nodes = p.nodes;
    out[i].completed = p.completes;
  }

  std::int64_t free_nodes = config.nodes;
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  std::deque<Pending> queue;
  std::size_t next_submission = 0;

  auto start_job = [&](const Pending& p, util::TimePoint now) {
    free_nodes -= p.nodes;
    running.push(Running{now + p.actual, p.nodes});
    out[p.index].start_time = now;
    out[p.index].end_time = now + p.actual;
  };

  // Attempt FCFS starts + EASY backfill at time `now`.
  auto try_start = [&](util::TimePoint now) {
    // FCFS: start from the head while it fits.
    while (!queue.empty() && queue.front().nodes <= free_nodes) {
      start_job(queue.front(), now);
      queue.pop_front();
    }
    if (queue.empty()) return;

    // Head blocked: compute its shadow start from the running set.
    const Pending& head = queue.front();
    std::int64_t free_at_shadow = free_nodes;
    util::TimePoint shadow = now;
    {
      auto copy = running;  // heap walk in release order
      while (!copy.empty() && free_at_shadow < head.nodes) {
        shadow = copy.top().release_time;
        free_at_shadow += copy.top().nodes;
        copy.pop();
      }
    }
    const std::int64_t spare_at_shadow = free_at_shadow - head.nodes;

    // Backfill: later jobs may start now if they fit and cannot delay the
    // head's reservation.
    for (auto it = queue.begin() + 1; it != queue.end();) {
      const bool fits_now = it->nodes <= free_nodes;
      const bool ends_before_shadow = now + it->walltime_req <= shadow;
      const bool fits_spare = it->nodes <= spare_at_shadow;
      if (fits_now && (ends_before_shadow || fits_spare)) {
        out[it->index].backfilled = true;
        start_job(*it, now);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (next_submission < prepared.size() || !running.empty()) {
    // Next event: the earlier of next submission and next completion.
    const util::TimePoint next_submit =
        next_submission < prepared.size()
            ? jobs[next_submission].submit_time
            : std::numeric_limits<util::TimePoint>::max();
    const util::TimePoint next_release =
        !running.empty() ? running.top().release_time
                         : std::numeric_limits<util::TimePoint>::max();

    if (next_submit <= next_release) {
      const util::TimePoint now = next_submit;
      while (next_submission < prepared.size() &&
             jobs[next_submission].submit_time == now) {
        queue.push_back(prepared[next_submission]);
        ++next_submission;
      }
      try_start(now);
    } else {
      const util::TimePoint now = next_release;
      while (!running.empty() && running.top().release_time == now) {
        free_nodes += running.top().nodes;
        running.pop();
      }
      try_start(now);
    }
  }

  return out;
}

std::vector<ScheduledJob> schedule(const trace::JobLog& log,
                                   const SchedulerConfig& config) {
  return schedule(log.records(), config);
}

ScheduleStats summarize(const std::vector<ScheduledJob>& schedule,
                        const SchedulerConfig& config) {
  ScheduleStats stats;
  stats.jobs = schedule.size();
  if (schedule.empty()) return stats;

  util::TimePoint begin = std::numeric_limits<util::TimePoint>::max();
  util::TimePoint end = std::numeric_limits<util::TimePoint>::min();
  double wait_sum = 0.0;
  double node_seconds = 0.0;
  for (const auto& s : schedule) {
    if (s.completed) ++stats.completed;
    else ++stats.failed;
    wait_sum += static_cast<double>(s.wait());
    stats.max_wait_seconds =
        std::max(stats.max_wait_seconds, static_cast<double>(s.wait()));
    node_seconds +=
        static_cast<double>(s.nodes) * static_cast<double>(s.runtime());
    begin = std::min(begin, s.submit_time);
    end = std::max(end, s.end_time);
  }
  stats.mean_wait_seconds = wait_sum / static_cast<double>(schedule.size());

  for (const auto& s : schedule) {
    if (s.backfilled) ++stats.backfilled;
  }

  const double span = static_cast<double>(end - begin);
  if (span > 0) {
    stats.utilization =
        node_seconds / (span * static_cast<double>(config.nodes));
  }
  return stats;
}

}  // namespace adr::sched
