#include "core/engine.hpp"

namespace adr::core {

ServiceConfig Engine::to_service_config(const Options& options) {
  ServiceConfig config;
  config.lifetime_days = options.lifetime_days;
  config.purge_target_utilization = options.purge_target_utilization;
  config.retrospective_passes = options.retrospective_passes;
  config.retrospective_decay = options.retrospective_decay;
  config.lifetime_mode = options.lifetime_mode;
  config.scheme = options.scheme;
  config.max_periods = options.max_periods;
  config.eval_mode = options.eval_mode;
  config.eval_shards = options.eval_shards;
  return config;
}

Engine::Engine(trace::UserRegistry registry, Options options)
    : options_(options),
      service_(std::move(registry), to_service_config(options)) {}

}  // namespace adr::core
