#include "core/engine.hpp"

#include "retention/policy.hpp"

namespace adr::core {

Engine::Engine(trace::UserRegistry registry, Options options)
    : registry_(std::move(registry)), options_(options) {
  activeness::EvaluationParams params;
  params.period_length_days = options_.lifetime_days;
  params.scheme = options_.scheme;
  params.max_periods = options_.max_periods;
  pipeline_.emplace(catalog_, params, options_.eval_mode,
                    options_.eval_shards);
}

activeness::ActivityStore& Engine::ensure_store() {
  if (!store_) {
    store_.emplace(registry_.size(), catalog_.size());
  }
  return *store_;
}

activeness::ActivityTypeId Engine::register_operation_type(
    const std::string& name, double weight) {
  const auto id =
      catalog_.add({name, activeness::ActivityCategory::kOperation, weight});
  if (store_) store_->add_types(1);
  return id;
}

activeness::ActivityTypeId Engine::register_outcome_type(
    const std::string& name, double weight) {
  const auto id =
      catalog_.add({name, activeness::ActivityCategory::kOutcome, weight});
  if (store_) store_->add_types(1);
  return id;
}

void Engine::reserve(const std::string& path) {
  exemptions_.reserve(path);
  exemptions_dirty_ = true;
}

void Engine::record(trace::UserId user, activeness::ActivityTypeId type,
                    util::TimePoint t, double impact) {
  if (type >= catalog_.size())
    throw std::out_of_range("Engine::record: unregistered activity type");
  const double weight = catalog_.spec(type).weight;
  // Streaming insert: keeps the store's aggregates live and marks exactly
  // this user dirty, so the next evaluate() re-ranks only them.
  ensure_store().append(user, type, activeness::Activity{t, weight * impact});
}

void Engine::ingest_jobs(const trace::JobLog& jobs,
                         activeness::ActivityTypeId type, double weight) {
  activeness::ingest_jobs(ensure_store(), type, weight, jobs);
}

void Engine::ingest_publications(const trace::PublicationLog& pubs,
                                 activeness::ActivityTypeId type,
                                 double weight) {
  activeness::ingest_publications(ensure_store(), type, weight, pubs);
}

void Engine::load_snapshot(const trace::Snapshot& snapshot) {
  vfs_.import_snapshot(snapshot);
}

const activeness::RankStore& Engine::evaluate(util::TimePoint now) {
  activeness::ActivityStore& store = ensure_store();
  if (last_eval_time_ && *last_eval_time_ == now && !store.has_dirty()) {
    return ranks_;
  }
  pipeline_->advance(store, now);
  ranks_ = activeness::RankStore(pipeline_->users());
  last_eval_time_ = now;
  return ranks_;
}

std::array<std::size_t, activeness::kGroupCount> Engine::group_counts() const {
  return ranks_.group_counts();
}

activeness::UserActiveness Engine::activeness_of(trace::UserId user) const {
  return ranks_.get(user);
}

util::Duration Engine::effective_lifetime_of(trace::UserId user) const {
  const double mult = activeness::lifetime_multiplier(
      ranks_.get(user), options_.lifetime_mode);
  return static_cast<util::Duration>(
      static_cast<double>(util::days(options_.lifetime_days)) * mult);
}

retention::PurgeReport Engine::purge(util::TimePoint now) {
  evaluate(now);
  retention::ActiveDrConfig config;
  config.initial_lifetime_days = options_.lifetime_days;
  config.retrospective_passes = options_.retrospective_passes;
  config.retrospective_decay = options_.retrospective_decay;
  config.lifetime_mode = options_.lifetime_mode;
  retention::ActiveDrPolicy policy(config, registry_);
  if (!exemptions_.empty()) {
    retention::ExemptionList copy;
    for (const auto& p : exemptions_.reserved_paths()) copy.reserve(p);
    policy.set_exemptions(std::move(copy));
  }
  const std::uint64_t target =
      options_.purge_target_utilization > 0.0
          ? retention::purge_target_bytes(vfs_,
                                          options_.purge_target_utilization)
          : 0;
  return policy.run(vfs_, now, target, pipeline_->plan());
}

retention::PurgeReport Engine::purge_flt(util::TimePoint now) {
  retention::FltPolicy policy(retention::FltConfig{options_.lifetime_days});
  const std::uint64_t target =
      options_.purge_target_utilization > 0.0
          ? retention::purge_target_bytes(vfs_,
                                          options_.purge_target_utilization)
          : 0;
  return policy.run(vfs_, now, target);
}

}  // namespace adr::core
