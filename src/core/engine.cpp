#include "core/engine.hpp"

#include "retention/policy.hpp"

namespace adr::core {

Engine::Engine(trace::UserRegistry registry, Options options)
    : registry_(std::move(registry)), options_(options) {}

activeness::ActivityTypeId Engine::register_operation_type(
    const std::string& name, double weight) {
  store_.reset();
  return catalog_.add({name, activeness::ActivityCategory::kOperation, weight});
}

activeness::ActivityTypeId Engine::register_outcome_type(
    const std::string& name, double weight) {
  store_.reset();
  return catalog_.add({name, activeness::ActivityCategory::kOutcome, weight});
}

void Engine::reserve(const std::string& path) {
  exemptions_.reserve(path);
  exemptions_dirty_ = true;
}

void Engine::record(trace::UserId user, activeness::ActivityTypeId type,
                    util::TimePoint t, double impact) {
  if (type >= catalog_.size())
    throw std::out_of_range("Engine::record: unregistered activity type");
  const double weight = catalog_.spec(type).weight;
  pending_activities_.emplace_back(user, type,
                                   activeness::Activity{t, weight * impact});
  store_.reset();
  last_eval_time_.reset();
}

void Engine::ingest_jobs(const trace::JobLog& jobs,
                         activeness::ActivityTypeId type, double weight) {
  for (const auto& job : jobs.records()) {
    if (job.user == trace::kInvalidUser || job.user >= registry_.size())
      continue;
    pending_activities_.emplace_back(
        job.user, type,
        activeness::Activity{job.submit_time, weight * job.core_hours()});
  }
  store_.reset();
  last_eval_time_.reset();
}

void Engine::ingest_publications(const trace::PublicationLog& pubs,
                                 activeness::ActivityTypeId type,
                                 double weight) {
  for (const auto& pub : pubs.records()) {
    for (std::size_t i = 0; i < pub.authors.size(); ++i) {
      const trace::UserId author = pub.authors[i];
      if (author == trace::kInvalidUser || author >= registry_.size()) continue;
      pending_activities_.emplace_back(
          author, type,
          activeness::Activity{pub.published,
                               weight * pub.impact_for_author(i + 1)});
    }
  }
  store_.reset();
  last_eval_time_.reset();
}

void Engine::load_snapshot(const trace::Snapshot& snapshot) {
  vfs_.import_snapshot(snapshot);
}

const activeness::ActivityStore& Engine::store() {
  if (!store_) {
    activeness::ActivityStore built(registry_.size(), catalog_.size());
    for (const auto& [user, type, activity] : pending_activities_) {
      built.add(user, type, activity);
    }
    built.sort_all();
    store_.emplace(std::move(built));
  }
  return *store_;
}

const activeness::RankStore& Engine::evaluate(util::TimePoint now) {
  if (last_eval_time_ && *last_eval_time_ == now) return ranks_;
  activeness::EvaluationParams params;
  params.period_length_days = options_.lifetime_days;
  params.now = now;
  params.scheme = options_.scheme;
  params.max_periods = options_.max_periods;
  activeness::Evaluator evaluator(catalog_, params);
  std::vector<activeness::UserActiveness> users =
      evaluator.evaluate_all(store());
  plan_ = activeness::build_scan_plan(users);
  ranks_ = activeness::RankStore(std::move(users));
  last_eval_time_ = now;
  return ranks_;
}

std::array<std::size_t, activeness::kGroupCount> Engine::group_counts() const {
  return ranks_.group_counts();
}

activeness::UserActiveness Engine::activeness_of(trace::UserId user) const {
  return ranks_.get(user);
}

util::Duration Engine::effective_lifetime_of(trace::UserId user) const {
  const double mult = activeness::lifetime_multiplier(
      ranks_.get(user), options_.lifetime_mode);
  return static_cast<util::Duration>(
      static_cast<double>(util::days(options_.lifetime_days)) * mult);
}

retention::PurgeReport Engine::purge(util::TimePoint now) {
  evaluate(now);
  retention::ActiveDrConfig config;
  config.initial_lifetime_days = options_.lifetime_days;
  config.retrospective_passes = options_.retrospective_passes;
  config.retrospective_decay = options_.retrospective_decay;
  config.lifetime_mode = options_.lifetime_mode;
  retention::ActiveDrPolicy policy(config, registry_);
  if (!exemptions_.empty()) {
    retention::ExemptionList copy;
    for (const auto& p : exemptions_.reserved_paths()) copy.reserve(p);
    policy.set_exemptions(std::move(copy));
  }
  const std::uint64_t target =
      options_.purge_target_utilization > 0.0
          ? retention::purge_target_bytes(vfs_,
                                          options_.purge_target_utilization)
          : 0;
  return policy.run(vfs_, now, target, plan_);
}

retention::PurgeReport Engine::purge_flt(util::TimePoint now) {
  retention::FltPolicy policy(retention::FltConfig{options_.lifetime_days});
  const std::uint64_t target =
      options_.purge_target_utilization > 0.0
          ? retention::purge_target_bytes(vfs_,
                                          options_.purge_target_utilization)
          : 0;
  return policy.run(vfs_, now, target);
}

}  // namespace adr::core
