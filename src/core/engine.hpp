#pragma once
// activedr::Engine — the library's public entry point.
//
// An Engine owns the pieces a deployment needs: the user registry, the
// activity catalog and recorded activities, the virtual file system (or, in
// a real deployment, the snapshot index of the scratch space), and the
// reservation list. Typical administrator flow (see examples/quickstart.cpp):
//
//   adr::core::Engine engine(registry, options);            // one-time setup
//   auto jobs = engine.register_operation_type("job", 1.0);
//   auto pubs = engine.register_outcome_type("publication", 1.0);
//   engine.record(user, jobs, t, core_hours);               // keep tracing
//   engine.load_snapshot(snapshot);                          // scratch state
//   engine.reserve("/scratch/u1/keep.dat");                  // exemptions
//   auto report = engine.purge(now);                         // per trigger
//
// Eq. 7's knobs, the retrospective-pass policy, and the purge target all sit
// in Engine::Options.
//
// Engine is a thin adapter over core::Service — the orchestration layer
// that the one-shot CLI and the `activedr serve` daemon also consume (see
// core/service.hpp). It keeps the historical API shape; new code that needs
// WAL apply or checkpointing should hold a Service directly.

#include <array>
#include <string>

#include "core/service.hpp"

namespace adr::core {

class Engine {
 public:
  struct Options {
    /// Initial file lifetime d (days); doubles as the activeness period
    /// length, as in the paper's evaluation.
    int lifetime_days = 90;
    /// Utilization the purge drives the scratch space down to (fraction of
    /// capacity). <= 0: no target — purge everything expired.
    double purge_target_utilization = 0.5;

    int retrospective_passes = 5;
    double retrospective_decay = 0.20;
    activeness::LifetimeMode lifetime_mode =
        activeness::LifetimeMode::kActiveCategoriesOnly;
    activeness::ExponentScheme scheme =
        activeness::ExponentScheme::kPaperExponent;
    int max_periods = 0;
    /// How evaluate() re-ranks at each trigger: delta-aware by default,
    /// kFull pins the re-evaluate-everyone baseline (see
    /// activeness/incremental.hpp).
    activeness::EvalMode eval_mode = activeness::EvalMode::kAuto;
    /// User-range shards the evaluation fans out over (see
    /// activeness/sharded.hpp). 0 = one per available thread (max 16);
    /// 1 pins the single-pipeline path.
    std::size_t eval_shards = 0;
  };

  Engine(trace::UserRegistry registry, Options options);

  // -- one-time configuration -------------------------------------------
  activeness::ActivityTypeId register_operation_type(const std::string& name,
                                                     double weight = 1.0) {
    return service_.register_operation_type(name, weight);
  }
  activeness::ActivityTypeId register_outcome_type(const std::string& name,
                                                   double weight = 1.0) {
    return service_.register_outcome_type(name, weight);
  }

  /// Reserve a path (file or directory subtree) against purging.
  void reserve(const std::string& path) { service_.reserve(path); }

  // -- activity tracing ---------------------------------------------------
  void record(trace::UserId user, activeness::ActivityTypeId type,
              util::TimePoint t, double impact) {
    service_.record(user, type, t, impact);
  }
  void ingest_jobs(const trace::JobLog& jobs, activeness::ActivityTypeId type,
                   double weight = 1.0) {
    service_.ingest_jobs(jobs, type, weight);
  }
  void ingest_publications(const trace::PublicationLog& pubs,
                           activeness::ActivityTypeId type,
                           double weight = 1.0) {
    service_.ingest_publications(pubs, type, weight);
  }

  // -- scratch state ------------------------------------------------------
  fs::Vfs& vfs() { return service_.vfs(); }
  const fs::Vfs& vfs() const { return service_.vfs(); }
  void load_snapshot(const trace::Snapshot& snapshot) {
    service_.load_snapshot(snapshot);
  }

  // -- evaluation ---------------------------------------------------------
  /// Evaluate every registered user at `now` (Eqs. 1–6) and cache the
  /// result; returns the rank store for inspection.
  const activeness::RankStore& evaluate(util::TimePoint now) {
    return service_.evaluate(now);
  }

  /// Classification counts G1..G4 from the latest evaluation.
  std::array<std::size_t, activeness::kGroupCount> group_counts() const {
    return service_.group_counts();
  }

  /// The activeness of one user per the latest evaluation (fresh defaults
  /// if the user was never evaluated).
  activeness::UserActiveness activeness_of(trace::UserId user) const {
    return service_.activeness_of(user);
  }

  /// The file lifetime this user's files currently enjoy (Eq. 7 with the
  /// engine's options), per the latest evaluation — the answer to the
  /// operator question "how long do user X's files live right now?".
  util::Duration effective_lifetime_of(trace::UserId user) const {
    return service_.effective_lifetime_of(user);
  }

  // -- retention ----------------------------------------------------------
  /// One ActiveDR purge trigger at `now` (evaluates first if needed).
  retention::PurgeReport purge(util::TimePoint now) {
    return service_.purge(now);
  }

  /// The FLT baseline on the same state (for operator A/B comparisons).
  /// Mutates the vfs just like purge().
  retention::PurgeReport purge_flt(util::TimePoint now) {
    return service_.purge_flt(now);
  }

  const trace::UserRegistry& registry() const { return service_.registry(); }
  const Options& options() const { return options_; }

  /// The underlying orchestration layer (checkpointing, WAL apply).
  Service& service() { return service_; }
  const Service& service() const { return service_; }

 private:
  static ServiceConfig to_service_config(const Options& options);

  Options options_;
  Service service_;
};

}  // namespace adr::core
