#pragma once
// core::Service — the shared trigger/evaluate/purge orchestration layer
// (DESIGN.md §13).
//
// Before this layer existed, three call sites each rebuilt the same wiring
// by hand: Engine (the library entry point), cli/commands.cpp (one-shot
// `evaluate`/`purge`), and sim/loadgen.cpp (the sustained-load harness).
// Service owns that wiring once — registry, activity catalog + store,
// ShardedEvaluator pipeline, Vfs, exemptions — and everything above it is a
// thin adapter: Engine forwards its public API here, the CLI builds a
// Service per invocation, and `activedr serve` keeps one resident and feeds
// it from the WAL.
//
// Three capabilities are new at this layer (the daemon needs them, the
// one-shot paths get them for free):
//
//  * apply(Event): a WAL record mutates exactly the state the bulk loaders
//    would have built — kJob/kPublication stream into the ActivityStore
//    (same type ids and impacts as ingest_jobs/ingest_publications),
//    kCreate/kAccess/kRemove hit the Vfs. Replay is idempotent: records at
//    or below last_applied_seq() are skipped, so a tail replayed twice is
//    a no-op.
//  * save_checkpoint()/restore_checkpoint(): full activity streams + Vfs
//    snapshot + applied-seq meta, sealed as a §10.5 bundle (MANIFEST
//    committed last). Restore + WAL-tail replay reproduces cold-replay
//    state byte-identically: activities.csv preserves per-stream order and
//    a stable sort_all() keeps equal-timestamp arrival order, so streams,
//    ranks, scan plans, and victims all match.
//  * an evaluate() cache guard that also checks pending ingest, so a
//    repeated-`now` trigger with events still queued in the per-shard
//    ingest queues is never skipped.

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "activeness/rank_store.hpp"
#include "activeness/sharded.hpp"
#include "fs/vfs.hpp"
#include "retention/activedr_policy.hpp"
#include "retention/flt.hpp"
#include "trace/event_log.hpp"
#include "trace/user_registry.hpp"

namespace adr::core {

/// Everything a deployment configures once. The first block mirrors
/// Engine::Options (Eq. 7 knobs, retrospective policy, purge target, eval
/// fan-out); the second block carries the execution knobs the CLI used to
/// thread by hand into each policy run.
struct ServiceConfig {
  int lifetime_days = 90;
  double purge_target_utilization = 0.5;
  int retrospective_passes = 5;
  double retrospective_decay = 0.20;
  activeness::LifetimeMode lifetime_mode =
      activeness::LifetimeMode::kActiveCategoriesOnly;
  activeness::ExponentScheme scheme =
      activeness::ExponentScheme::kPaperExponent;
  int max_periods = 0;
  activeness::EvalMode eval_mode = activeness::EvalMode::kAuto;
  std::size_t eval_shards = 0;

  retention::ScanMode scan_mode = retention::ScanMode::kAuto;
  bool dry_run = false;
  bool record_victims = false;
};

/// WAL events carry no catalog ids, only kinds; these are the fixed type
/// ids kJob/kPublication map to — the paper_default() registration order
/// ("job_submission" first, "publication" second), which every trace-file
/// ingest path in the CLI also follows.
inline constexpr activeness::ActivityTypeId kJobActivityType = 0;
inline constexpr activeness::ActivityTypeId kPublicationActivityType = 1;

class Service {
 public:
  Service(trace::UserRegistry registry, ServiceConfig config);

  // -- one-time configuration -------------------------------------------
  activeness::ActivityTypeId register_operation_type(const std::string& name,
                                                     double weight = 1.0);
  activeness::ActivityTypeId register_outcome_type(const std::string& name,
                                                   double weight = 1.0);
  /// Register the paper's two types at their fixed ids (job_submission = 0,
  /// publication = 1) — required before apply() sees kJob/kPublication.
  /// Throws if types were already registered.
  void register_paper_types();

  /// Reserve a path (file or directory subtree) against purging.
  void reserve(const std::string& path);
  void set_exemptions(retention::ExemptionList exemptions);

  // -- activity tracing ---------------------------------------------------
  void record(trace::UserId user, activeness::ActivityTypeId type,
              util::TimePoint t, double impact);
  void ingest_jobs(const trace::JobLog& jobs, activeness::ActivityTypeId type,
                   double weight = 1.0);
  void ingest_publications(const trace::PublicationLog& pubs,
                           activeness::ActivityTypeId type,
                           double weight = 1.0);

  // -- WAL ingestion ------------------------------------------------------
  /// Apply one event log record. Returns false (and mutates nothing) when
  /// event.seq is non-zero and <= last_applied_seq() — the replay-
  /// idempotence guard. Events with seq 0 (direct, not from a log) always
  /// apply. kJob/kPublication impacts are applied as carried (the feed side
  /// already weighted them; see trace::make_job_event).
  bool apply(const trace::Event& event);
  std::uint64_t last_applied_seq() const { return last_applied_seq_; }

  /// Size the store's ingest/dirty sharding to the evaluator fan-out so
  /// producer threads can enqueue() concurrently with per-shard drains.
  /// Call before starting producers; idempotent.
  void prepare_ingest();

  // -- scratch state ------------------------------------------------------
  fs::Vfs& vfs() { return vfs_; }
  const fs::Vfs& vfs() const { return vfs_; }
  void load_snapshot(const trace::Snapshot& snapshot);

  // -- evaluation ---------------------------------------------------------
  /// Evaluate every registered user at `now` (Eqs. 1–6) and cache the
  /// result. The cache is bypassed whenever the store has dirty users *or*
  /// pending ingest-queue events, so a warm daemon trigger at an unchanged
  /// `now` still folds in everything fed since the last trigger.
  const activeness::RankStore& evaluate(util::TimePoint now);

  std::array<std::size_t, activeness::kGroupCount> group_counts() const;
  activeness::UserActiveness activeness_of(trace::UserId user) const;
  util::Duration effective_lifetime_of(trace::UserId user) const;
  const activeness::RankStore& ranks() const { return ranks_; }

  // -- retention ----------------------------------------------------------
  /// One ActiveDR purge trigger at `now` (evaluates first if needed). The
  /// no-target overload derives the byte target from
  /// config().purge_target_utilization and the Vfs capacity; the explicit
  /// overload takes the target in bytes (0 = no target, purge all expired)
  /// — the daemon computes cmd_purge-compatible retain-fraction targets
  /// through it.
  retention::PurgeReport purge(util::TimePoint now);
  retention::PurgeReport purge(util::TimePoint now,
                               std::uint64_t target_bytes);
  /// The FLT baseline on the same state (mutates the vfs just like purge).
  retention::PurgeReport purge_flt(util::TimePoint now);
  retention::PurgeReport purge_flt(util::TimePoint now,
                                   std::uint64_t target_bytes);

  // -- checkpointing ------------------------------------------------------
  /// Write a recovery checkpoint into `dir` (created if needed) and seal it
  /// as a bundle: activities.csv (every stream, in stream order),
  /// snapshot.csv (Vfs export), meta.conf (applied seq, shape), MANIFEST
  /// last. A crash at any point leaves `dir` unsealed or stale — recovery
  /// skips it and falls back to an older checkpoint plus a longer WAL tail.
  void save_checkpoint(const std::string& dir);

  struct RestoreStatus {
    bool ok = false;
    std::uint64_t applied_seq = 0;
    std::string error;
  };
  /// Load a checkpoint bundle into this (fresh) service: refuses unsealed
  /// or invalid bundles and shape mismatches via the returned status (the
  /// caller degrades to an older checkpoint or a full replay — damage is a
  /// result here, not an exception). On ok, last_applied_seq() is the
  /// checkpoint's applied seq; replay the WAL tail after it.
  RestoreStatus restore_checkpoint(const std::string& dir);

  // -- degradation (DESIGN.md §14.2) --------------------------------------
  /// Pin the evaluator pipeline to kIncremental (true) or restore the
  /// configured eval mode (false). Degraded evaluation bounds per-trigger
  /// work by the dirty set — no advance can decide to pay a full-rebuild
  /// latency spike — while computing byte-identical ranks, so a degraded
  /// daemon still answers triggers exactly. Idempotent.
  void set_degraded(bool degraded);
  bool degraded() const { return degraded_; }

  // -- introspection -------------------------------------------------------
  activeness::ActivityStore& store() { return ensure_store(); }
  const activeness::ShardedEvaluator& pipeline() const { return *pipeline_; }
  const trace::UserRegistry& registry() const { return registry_; }
  const activeness::ActivityCatalog& catalog() const { return catalog_; }
  const ServiceConfig& config() const { return config_; }

 private:
  activeness::ActivityStore& ensure_store();

  trace::UserRegistry registry_;
  ServiceConfig config_;
  activeness::ActivityCatalog catalog_;
  std::optional<activeness::ActivityStore> store_;
  std::optional<activeness::ShardedEvaluator> pipeline_;

  fs::Vfs vfs_;
  retention::ExemptionList exemptions_;

  std::uint64_t last_applied_seq_ = 0;
  std::optional<util::TimePoint> last_eval_time_;
  activeness::RankStore ranks_;
  bool degraded_ = false;
};

}  // namespace adr::core
