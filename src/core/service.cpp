#include "core/service.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "retention/policy.hpp"
#include "trace/snapshot.hpp"
#include "util/bundle.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace adr::core {

namespace {

namespace fsys = std::filesystem;

constexpr char kCheckpointFormat[] = "adr-checkpoint-v1";
constexpr char kMetaName[] = "meta.conf";
constexpr char kActivitiesName[] = "activities.csv";
constexpr char kSnapshotName[] = "snapshot.csv";

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Service::Service(trace::UserRegistry registry, ServiceConfig config)
    : registry_(std::move(registry)), config_(config) {
  activeness::EvaluationParams params;
  params.period_length_days = config_.lifetime_days;
  params.scheme = config_.scheme;
  params.max_periods = config_.max_periods;
  pipeline_.emplace(catalog_, params, config_.eval_mode, config_.eval_shards);
}

activeness::ActivityStore& Service::ensure_store() {
  if (!store_) {
    store_.emplace(registry_.size(), catalog_.size());
  }
  return *store_;
}

activeness::ActivityTypeId Service::register_operation_type(
    const std::string& name, double weight) {
  const auto id =
      catalog_.add({name, activeness::ActivityCategory::kOperation, weight});
  if (store_) store_->add_types(1);
  return id;
}

activeness::ActivityTypeId Service::register_outcome_type(
    const std::string& name, double weight) {
  const auto id =
      catalog_.add({name, activeness::ActivityCategory::kOutcome, weight});
  if (store_) store_->add_types(1);
  return id;
}

void Service::register_paper_types() {
  if (catalog_.size() != 0) {
    throw std::logic_error(
        "Service::register_paper_types: catalog already populated");
  }
  register_operation_type("job_submission", 1.0);
  register_outcome_type("publication", 1.0);
}

void Service::reserve(const std::string& path) { exemptions_.reserve(path); }

void Service::set_exemptions(retention::ExemptionList exemptions) {
  exemptions_ = std::move(exemptions);
}

void Service::record(trace::UserId user, activeness::ActivityTypeId type,
                     util::TimePoint t, double impact) {
  if (type >= catalog_.size())
    throw std::out_of_range("Service::record: unregistered activity type");
  const double weight = catalog_.spec(type).weight;
  ensure_store().append(user, type, activeness::Activity{t, weight * impact});
}

void Service::ingest_jobs(const trace::JobLog& jobs,
                          activeness::ActivityTypeId type, double weight) {
  activeness::ingest_jobs(ensure_store(), type, weight, jobs);
}

void Service::ingest_publications(const trace::PublicationLog& pubs,
                                  activeness::ActivityTypeId type,
                                  double weight) {
  activeness::ingest_publications(ensure_store(), type, weight, pubs);
}

bool Service::apply(const trace::Event& event) {
  auto& metrics = obs::MetricsRegistry::global();
  if (event.seq != 0 && event.seq <= last_applied_seq_) {
    metrics.counter("service.events_skipped").add();
    return false;
  }
  switch (event.kind) {
    case trace::EventKind::kJob:
    case trace::EventKind::kPublication: {
      const activeness::ActivityTypeId type =
          event.kind == trace::EventKind::kJob ? kJobActivityType
                                               : kPublicationActivityType;
      if (type >= catalog_.size()) {
        throw std::runtime_error(
            "Service::apply: activity types not registered (call "
            "register_paper_types first)");
      }
      // Impacts arrive pre-weighted from the feed side so a WAL replay and
      // a bulk trace ingest agree bit-for-bit.
      ensure_store().append(event.user, type,
                            activeness::Activity{event.timestamp,
                                                 event.impact});
      break;
    }
    case trace::EventKind::kAccess:
      // The acting user doubles as the residency owner hint: an access to
      // an evicted subtree faults it back instead of counting a miss.
      if (!vfs_.access(event.path, event.timestamp, event.user)) {
        metrics.counter("service.access_misses").add();
      }
      break;
    case trace::EventKind::kCreate: {
      fs::FileMeta meta;
      meta.owner = event.user;
      meta.size_bytes = event.size_bytes;
      meta.stripe_count = event.stripe_count;
      meta.atime = event.timestamp;
      meta.ctime = event.timestamp;
      vfs_.create(event.path, meta);
      break;
    }
    case trace::EventKind::kRemove:
      vfs_.remove(event.path, event.user);
      break;
  }
  if (event.seq != 0) {
    last_applied_seq_ = event.seq;
    metrics.gauge("service.applied_seq")
        .set(static_cast<std::int64_t>(event.seq));
  }
  metrics.counter("service.events_applied").add();
  return true;
}

void Service::prepare_ingest() {
  ensure_store().set_dirty_shards(pipeline_->shard_count());
}

void Service::load_snapshot(const trace::Snapshot& snapshot) {
  vfs_.import_snapshot(snapshot);
}

void Service::set_degraded(bool degraded) {
  if (degraded_ == degraded) return;
  degraded_ = degraded;
  pipeline_->set_mode(degraded ? activeness::EvalMode::kIncremental
                               : config_.eval_mode);
  obs::MetricsRegistry::global().counter("service.degrade_transitions").add();
}

const activeness::RankStore& Service::evaluate(util::TimePoint now) {
  activeness::ActivityStore& store = ensure_store();
  // Unlike the pre-refactor Engine guard this also checks the ingest
  // queues: a daemon trigger repeated at the same `now` must still fold in
  // events producers enqueued since the last advance.
  if (last_eval_time_ && *last_eval_time_ == now && !store.has_dirty() &&
      !store.has_pending_ingest()) {
    return ranks_;
  }
  util::FaultInjector::global().crash_point("service.evaluate");
  pipeline_->advance(store, now);
  ranks_ = activeness::RankStore(pipeline_->users());
  last_eval_time_ = now;
  return ranks_;
}

std::array<std::size_t, activeness::kGroupCount> Service::group_counts()
    const {
  return ranks_.group_counts();
}

activeness::UserActiveness Service::activeness_of(trace::UserId user) const {
  return ranks_.get(user);
}

util::Duration Service::effective_lifetime_of(trace::UserId user) const {
  const double mult = activeness::lifetime_multiplier(ranks_.get(user),
                                                      config_.lifetime_mode);
  return static_cast<util::Duration>(
      static_cast<double>(util::days(config_.lifetime_days)) * mult);
}

retention::PurgeReport Service::purge(util::TimePoint now) {
  const std::uint64_t target =
      config_.purge_target_utilization > 0.0
          ? retention::purge_target_bytes(vfs_,
                                          config_.purge_target_utilization)
          : 0;
  return purge(now, target);
}

retention::PurgeReport Service::purge(util::TimePoint now,
                                      std::uint64_t target_bytes) {
  evaluate(now);
  util::FaultInjector::global().crash_point("service.purge");
  retention::ActiveDrConfig config;
  config.initial_lifetime_days = config_.lifetime_days;
  config.retrospective_passes = config_.retrospective_passes;
  config.retrospective_decay = config_.retrospective_decay;
  config.lifetime_mode = config_.lifetime_mode;
  config.dry_run = config_.dry_run;
  config.record_victims = config_.record_victims;
  config.scan_mode = config_.scan_mode;
  retention::ActiveDrPolicy policy(config, registry_);
  if (!exemptions_.empty()) {
    retention::ExemptionList copy;
    for (const auto& p : exemptions_.reserved_paths()) copy.reserve(p);
    policy.set_exemptions(std::move(copy));
  }
  return policy.run(vfs_, now, target_bytes, pipeline_->plan());
}

retention::PurgeReport Service::purge_flt(util::TimePoint now) {
  const std::uint64_t target =
      config_.purge_target_utilization > 0.0
          ? retention::purge_target_bytes(vfs_,
                                          config_.purge_target_utilization)
          : 0;
  return purge_flt(now, target);
}

retention::PurgeReport Service::purge_flt(util::TimePoint now,
                                          std::uint64_t target_bytes) {
  retention::FltConfig config;
  config.lifetime_days = config_.lifetime_days;
  config.dry_run = config_.dry_run;
  config.record_victims = config_.record_victims;
  config.scan_mode = config_.scan_mode;
  retention::FltPolicy policy(config);
  return policy.run(vfs_, now, target_bytes);
}

void Service::save_checkpoint(const std::string& dir) {
  util::FaultInjector::global().crash_point("service.checkpoint");
  fsys::create_directories(dir);
  activeness::ActivityStore& store = ensure_store();
  // Fold queued events in first — a checkpoint must cover everything the
  // applied-seq watermark claims it covers.
  store.drain_ingest();

  {
    util::io::AtomicWriter writer(dir + "/" + kActivitiesName,
                                  {.fsync = util::io::default_fsync()});
    util::CsvWriter csv(writer.stream());
    csv.write_row({"user", "type", "timestamp", "impact"});
    for (trace::UserId user = 0;
         user < static_cast<trace::UserId>(store.user_count()); ++user) {
      for (activeness::ActivityTypeId type = 0; type < store.type_count();
           ++type) {
        for (const auto& activity : store.stream(user, type)) {
          csv.write_row({std::to_string(user), std::to_string(type),
                         std::to_string(activity.timestamp),
                         format_double(activity.impact)});
        }
      }
    }
    writer.commit();
  }

  vfs_.export_snapshot().save_csv(dir + "/" + kSnapshotName);

  {
    util::io::AtomicWriter writer(dir + "/" + kMetaName,
                                  {.fsync = util::io::default_fsync()});
    writer.write_line(std::string("format = ") + kCheckpointFormat);
    writer.write_line("applied_seq = " + std::to_string(last_applied_seq_));
    writer.write_line("users = " + std::to_string(registry_.size()));
    writer.write_line("types = " + std::to_string(catalog_.size()));
    writer.commit();
  }

  util::io::commit_bundle(dir, {kMetaName, kActivitiesName, kSnapshotName});
  obs::MetricsRegistry::global().counter("service.checkpoints").add();
}

Service::RestoreStatus Service::restore_checkpoint(const std::string& dir) {
  RestoreStatus status;
  if (store_ && store_->total_activities() > 0) {
    throw std::logic_error(
        "Service::restore_checkpoint: service already holds state");
  }

  const util::io::BundleCheck bundle = util::io::verify_bundle(dir);
  if (!bundle.valid()) {
    status.error = bundle.state == util::io::BundleState::kUnsealed
                       ? "checkpoint bundle unsealed (crash mid-write?)"
                       : "checkpoint bundle invalid: " + bundle.error;
    return status;
  }

  // Parse everything before mutating anything: a failure below must leave
  // the service clean for a retry against an older checkpoint.
  util::Config meta;
  try {
    meta = util::Config::from_file(dir + "/" + kMetaName);
  } catch (const std::exception& e) {
    status.error = std::string("meta.conf unreadable: ") + e.what();
    return status;
  }
  if (meta.get_string("format", "") != kCheckpointFormat) {
    status.error = "meta.conf format is not " + std::string(kCheckpointFormat);
    return status;
  }
  const auto users = static_cast<std::size_t>(meta.get_int("users", -1));
  const auto types = static_cast<std::size_t>(meta.get_int("types", -1));
  if (users != registry_.size()) {
    status.error = "checkpoint has " + std::to_string(users) +
                   " users, registry has " + std::to_string(registry_.size());
    return status;
  }
  if (types > catalog_.size()) {
    status.error = "checkpoint references " + std::to_string(types) +
                   " activity types, only " + std::to_string(catalog_.size()) +
                   " registered";
    return status;
  }

  struct Row {
    trace::UserId user;
    activeness::ActivityTypeId type;
    activeness::Activity activity;
  };
  std::vector<Row> rows;
  try {
    const util::io::Artifact artifact =
        util::io::read_artifact(dir + "/" + kActivitiesName);
    if (artifact.state == util::io::ArtifactState::kCorrupt) {
      status.error = "activities.csv failed verification: " + artifact.error;
      return status;
    }
    std::istringstream in(artifact.content);
    util::CsvReader reader(in);
    if (!reader.read_header() || reader.column("user") == util::CsvReader::npos ||
        reader.column("type") == util::CsvReader::npos ||
        reader.column("timestamp") == util::CsvReader::npos ||
        reader.column("impact") == util::CsvReader::npos) {
      status.error = "activities.csv has no user/type/timestamp/impact header";
      return status;
    }
    while (auto row = reader.next()) {
      if (row->size() != 4) {
        status.error = "activities.csv row " + std::to_string(reader.line()) +
                       " malformed";
        return status;
      }
      Row r;
      r.user = static_cast<trace::UserId>(std::stoull((*row)[0]));
      r.type = static_cast<activeness::ActivityTypeId>(std::stoull((*row)[1]));
      r.activity.timestamp =
          static_cast<util::TimePoint>(std::stoll((*row)[2]));
      r.activity.impact = std::stod((*row)[3]);
      if (r.user >= registry_.size() || r.type >= catalog_.size()) {
        status.error = "activities.csv row " + std::to_string(reader.line()) +
                       " out of range";
        return status;
      }
      rows.push_back(r);
    }
  } catch (const std::exception& e) {
    status.error = std::string("activities.csv unreadable: ") + e.what();
    return status;
  }

  trace::Snapshot snapshot;
  try {
    snapshot = trace::Snapshot::load_csv(dir + "/" + kSnapshotName);
  } catch (const std::exception& e) {
    status.error = std::string("snapshot.csv unreadable: ") + e.what();
    return status;
  }

  // Commit point: everything parsed, mutate in one pass. File order is
  // per-stream order, and sort_all() is stable, so equal-timestamp arrival
  // order — and with it rank/plan byte-identity — survives the round trip.
  activeness::ActivityStore& store = ensure_store();
  for (const Row& r : rows) store.add(r.user, r.type, r.activity);
  store.sort_all();
  vfs_.import_snapshot(snapshot);
  last_applied_seq_ =
      static_cast<std::uint64_t>(meta.get_int("applied_seq", 0));
  last_eval_time_.reset();

  status.ok = true;
  status.applied_seq = last_applied_seq_;
  obs::MetricsRegistry::global().counter("service.restores").add();
  return status;
}

}  // namespace adr::core
