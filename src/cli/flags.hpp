#pragma once
// Shared flag parsing for the `activedr` subcommands. These used to live as
// file-local helpers in commands.cpp; the serve/feed/ctl commands (their
// own translation unit) read the same flags, so the parsers live here once.

#include <stdexcept>
#include <string>

#include "activeness/activity.hpp"
#include "activeness/incremental.hpp"
#include "retention/flt.hpp"
#include "util/config.hpp"
#include "util/time.hpp"

namespace adr::cli {

inline std::string require_str(const util::Config& config, const char* key) {
  const auto value = config.get(key);
  if (!value) throw std::runtime_error(std::string("missing --") + key);
  return *value;
}

inline util::TimePoint require_date(const util::Config& config,
                                    const char* key) {
  const auto value = config.get(key);
  if (!value) throw std::runtime_error(std::string("missing --") + key);
  util::TimePoint tp = 0;
  if (!util::parse_date(*value, tp)) {
    throw std::runtime_error(std::string("--") + key +
                             " must be YYYY-MM-DD, got: " + *value);
  }
  return tp;
}

inline activeness::EvalMode eval_mode_flag(const util::Config& config) {
  const std::string name = config.get_string("eval-mode", "auto");
  activeness::EvalMode mode = activeness::EvalMode::kAuto;
  if (!activeness::parse_eval_mode(name, mode)) {
    throw std::runtime_error("unknown --eval-mode: " + name +
                             " (expected auto, full, or incremental)");
  }
  return mode;
}

inline std::size_t eval_shards_flag(const util::Config& config) {
  const auto shards = config.get_int("shards", 0);
  if (shards < 0) {
    throw std::runtime_error("--shards must be >= 0 (0 = auto)");
  }
  return static_cast<std::size_t>(shards);
}

inline activeness::BackpressurePolicy backpressure_flag(
    const util::Config& config) {
  const std::string name = config.get_string("backpressure", "block");
  if (name == "block") return activeness::BackpressurePolicy::kBlock;
  if (name == "shed") return activeness::BackpressurePolicy::kShed;
  if (name == "spill") return activeness::BackpressurePolicy::kSpill;
  throw std::runtime_error("unknown --backpressure: " + name +
                           " (expected block, shed, or spill)");
}

inline retention::ScanMode scan_mode_flag(const util::Config& config) {
  const std::string name = config.get_string("scan-mode", "auto");
  if (name == "walk") return retention::ScanMode::kWalk;
  if (name == "indexed") return retention::ScanMode::kIndexed;
  if (name != "auto") {
    throw std::runtime_error("unknown --scan-mode: " + name +
                             " (expected auto, walk, or indexed)");
  }
  return retention::ScanMode::kAuto;
}

}  // namespace adr::cli
