#pragma once
// The daemon-facing `activedr` subcommands (their own translation unit so
// the one-shot commands don't pull in the serve layer):
//
//   serve   run the resident retention daemon (serve::Daemon)
//   feed    append trace files to the daemon's event log (WAL producer)
//   ctl     drop a control command for a running daemon and await the reply
//
// Dispatched from run_cli in commands.cpp.

#include <iosfwd>

namespace adr::util {
class Config;
}

namespace adr::cli {

int cmd_serve(const util::Config& config, std::ostream& out);
int cmd_feed(const util::Config& config, std::ostream& out);
int cmd_ctl(const util::Config& config, std::ostream& out);

}  // namespace adr::cli
