#include "cli/commands.hpp"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <map>
#include <fstream>
#include <ostream>
#include <string>

#include "activeness/incremental.hpp"
#include "activeness/sharded.hpp"
#include "activeness/rank_store.hpp"
#include "cli/flags.hpp"
#include "cli/serve_commands.hpp"
#include "obs/metrics.hpp"
#include "retention/ledger.hpp"
#include "sim/experiment.hpp"
#include "sim/chaos.hpp"
#include "sim/loadgen.hpp"
#include "util/bundle.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"
#include "util/parse.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace adr::cli {

namespace {

namespace fsys = std::filesystem;

const char* kUsage = R"(activedr — activeness-based data retention (SC '21 reproduction)

usage: activedr <command> [--key value ...]

commands:
  synth     --out DIR [--users N] [--seed S]
            Generate a synthetic Titan-style trace bundle: users.csv,
            jobs.csv, pubs.csv, applog.csv, snapshot.csv, scenario.conf.

  evaluate  --users F --jobs F [--pubs F] --now YYYY-MM-DD
            [--period-days D] [--out ranks.csv]
            [--op-activities F1,F2,...] [--oc-activities F1,F2,...]
            [--eval-mode auto|full|incremental] [--shards N]
            Evaluate every user's activeness (Eqs. 1-6) and print the
            classification; optionally save the rank store. Extra activity
            CSVs (header: user,timestamp,impact) register one additional
            operation/outcome type each — any Table 2 activity a site
            tracks.

  classify  --ranks F
            Print the Fig. 4 activeness matrix for a saved rank store.

  purge     --snapshot F --users F --now YYYY-MM-DD [--policy activedr|flt]
            [--ranks F] [--jobs F] [--pubs F] [--lifetime D]
            [--target FRACTION] [--exempt FILE]
            [--out-snapshot F] [--ledger F] [--dry-run] [--victims F]
            [--scan-mode auto|walk|indexed]
            [--eval-mode auto|full|incremental] [--shards N]
            [--check-index]
            One retention pass over a snapshot. --target is the fraction of
            *current usage* to retain (0 disables the byte target). ActiveDR
            needs ranks: either --ranks (from `evaluate`) or --jobs/--pubs
            to evaluate inline at --now; FLT needs neither. --ledger appends
            the run to an audit CSV; --dry-run selects victims without
            deleting; --victims writes the purge list (one path per line).
            --scan-mode picks the victim scan: the maintained atime index
            or the legacy namespace walk (auto chooses per policy).
            --eval-mode picks how the inline evaluation runs (see
            activeness/incremental.hpp; both modes rank identically).
            --shards fans the evaluation out over N user-range shards
            (0 = one per available thread; identical ranks and victims).
            --check-index cross-verifies the purge index against a full
            namespace walk after the run (exit 3 on mismatch).

  compare   --dir DIR --as-of YYYY-MM-DD [--lifetime D] [--target FRACTION]
            [--eval-mode auto|full|incremental] [--shards N]
            The paper's §4.4 one-shot retention comparison (Figs. 9-11) on a
            `synth` bundle: both policies chase the same target from the
            state at --as-of.

  replay    --dir DIR [--lifetime D] [--interval D] [--target FRACTION]
            [--eval-mode auto|full|incremental] [--shards N]
            Year-long FLT-vs-ActiveDR replay over a `synth` bundle.
            --eval-mode selects delta-aware vs full re-evaluation at each
            purge trigger (identical results; incremental is the fast path).
            --shards N runs each evaluation sharded by user range across
            the thread pool (activeness/sharded.hpp; same results).

  loadgen   [--load-rate EV_PER_SEC] [--load-duration SECONDS]
            [--trigger-interval S] [--p99-budget-ms MS]
            [--ramp-levels N] [--ramp-factor X] [--users N]
            [--producers N] [--shards N] [--seed S] [--json FILE]
            Sustained-load latency harness (DESIGN.md §12): concurrent
            producers enqueue synthetic trace events into the activity
            store's per-shard ingest queues at --load-rate while periodic
            evaluate/purge triggers are timed; the rate ramps by
            --ramp-factor per level until trigger p99 breaches the budget.
            Prints per-level p50/p99/p999 and the max sustainable rate;
            every level is checked rank-for-rank against a serial replay
            (exit 3 on divergence). --json writes the BENCH_load-shaped
            report.

  chaos     --dir DIR [--seed S] [--epochs N] [--duration SECONDS]
            [--users N] [--events-per-epoch N]
            [--classes kill,enospc,torn,flood,stall]
            Chaos-soak harness (DESIGN.md §14.4): each epoch draws one fault
            class from a seeded stream, runs a daemon through it, and checks
            the §14 invariants — post-fault ranks/victims byte-identical to
            a cold replay, exact-loss accounting under floods, and health
            back to ok before the epoch closes. --duration keeps cycling
            epochs until the wall-clock budget is spent. Exit 3 on any
            violated invariant; the failure replays from --seed.

  serve     --wal DIR --state DIR --users F [--snapshot F] [--lifetime D]
            [--eval-mode auto|full|incremental] [--shards N]
            [--scan-mode auto|walk|indexed] [--checkpoint-every N]
            [--poll-ms MS] [--max-ticks N] [--metrics-interval TICKS]
            [--exempt FILE] [--no-seal-on-stop]
            [--ingest-queue-cap N] [--backpressure block|shed|spill]
            [--shed-budget N] [--spill-dir DIR] [--trigger-deadline-ms MS]
            Resident retention daemon (DESIGN.md §13): tails the --wal event
            log, keeps rank + purge-index state warm, answers control-file
            triggers from <state>/ctl with no rescan, and checkpoints every
            --checkpoint-every applied events. On restart it recovers from
            the newest valid checkpoint bundle plus the WAL tail — ranks and
            victims byte-identical to a cold one-shot run. SIGINT/SIGTERM
            stop it gracefully (seal WAL, final checkpoint, exit 0). With
            --metrics-out, the registry is re-exported atomically every
            --metrics-interval ticks while the daemon runs. --snapshot seeds
            the scratch state on a cold start (no checkpoint yet).
            Overload protection (DESIGN.md §14): --ingest-queue-cap bounds
            the per-shard ingest queues (--backpressure picks what a full
            queue does: block producers, shed up to --shed-budget counted
            events, or spill to a WAL-backed segment replayed when pressure
            clears); --trigger-deadline-ms arms the trigger watchdog — on
            breach the daemon degrades to incremental evaluation and, if
            breaches persist, defers triggers with jittered backoff instead
            of dying.

  feed      --wal DIR [--jobs F] [--pubs F] [--applog F] [--rotate N]
            [--seal]
            Append trace records to the daemon's event log as WAL events
            (jobs, then publications, then file ops — file order, the same
            order the one-shot loaders ingest). --seal closes the open
            segment with a CRC footer; --fsync makes appends durable.

  ctl       --state DIR --cmd trigger|evaluate|checkpoint|status|stop
            [--now YYYY-MM-DD | --now-unix SECONDS] [--retain FRACTION]
            [--policy activedr|flt] [--ranks-out F] [--victims-out F]
            [--timeout-ms MS]
            Send one control command to a running daemon and print its
            reply. `trigger` runs a purge at --now (--retain mirrors purge
            --target); `evaluate` refreshes ranks; --ranks-out /
            --victims-out ask the daemon to write those artifacts.

  info      --snapshot F
            Summarize a metadata snapshot.

  help      Show this text.

global options:
  --metrics-out FILE
            After the command finishes, dump the process metrics registry
            (counters, gauges, latency histograms, timer spans) as JSON.
  --parse-policy strict|permissive
            How trace/activity loaders treat bad input rows. strict (the
            default) aborts with a file:line:column error on the first bad
            row; permissive quarantines malformed, out-of-order, and
            duplicate rows to a `<input>.quarantine` sidecar CSV and keeps
            going, printing a summary at the end.
  --fsync   fsync artifacts (and their directory) inside every atomic
            write before the rename — full crash durability, not just
            crash atomicity.
  --fault-spec SPEC [--fault-seed N]
            Arm the deterministic fault injector for this run (testing the
            durability layer). SPEC is ';'-separated `point:action[@N][?P]`
            directives — see src/util/fault.hpp for the registered points.
            An injected crash exits with code 9, leaving the filesystem as
            the crash left it.
)";

// --parse-policy plus the shared LoadStats accumulator behind it. Every
// loader in a command threads the same options so the end-of-run summary
// covers the whole ingest.
struct IngestOptions {
  util::LoadStats stats;
  util::ParseOptions opts;

  explicit IngestOptions(const util::Config& config) {
    const std::string name = config.get_string("parse-policy", "strict");
    if (!util::parse_parse_policy(name, opts.policy)) {
      throw std::runtime_error("unknown --parse-policy: " + name +
                               " (expected strict or permissive)");
    }
    opts.stats = &stats;
  }

  void report(std::ostream& out) const {
    if (stats.quarantined() == 0) return;
    out << "Permissive ingest: quarantined " << stats.quarantined()
        << " rows (" << stats.malformed << " malformed, "
        << stats.out_of_order << " out-of-order, " << stats.duplicates
        << " duplicate); rows preserved in *.quarantine sidecars\n";
  }
};

// ---- synth ---------------------------------------------------------------

int cmd_synth(const util::Config& config, std::ostream& out) {
  const std::string dir = require_str(config, "out");
  fsys::create_directories(dir);

  synth::TitanParams params;
  params.users = static_cast<std::size_t>(config.get_int("users", 600));
  params.seed = static_cast<std::uint64_t>(config.get_int("seed", 42));

  out << "Synthesizing scenario (" << params.users << " users, seed "
      << params.seed << ")...\n";
  const synth::TitanScenario scenario = synth::build_titan_scenario(params);

  scenario.registry.save_csv(dir + "/users.csv");
  scenario.jobs.save_csv(dir + "/jobs.csv");
  scenario.pubs.save_csv(dir + "/pubs.csv");
  scenario.replay.save_csv(dir + "/applog.csv");
  scenario.snapshot.save_csv(dir + "/snapshot.csv");
  {
    util::io::AtomicWriter conf(dir + "/scenario.conf",
                                {.fsync = util::io::default_fsync()});
    conf.write_line("# generated by `activedr synth`");
    conf.write_line("users = " + std::to_string(params.users));
    conf.write_line("seed = " + std::to_string(params.seed));
    conf.write_line("sim_begin = " + std::to_string(scenario.sim_begin));
    conf.write_line("sim_end = " + std::to_string(scenario.sim_end));
    conf.write_line("capacity_bytes = " +
                    std::to_string(scenario.capacity_bytes));
    conf.commit();
  }
  // Seal the directory as a §10.5 bundle: the MANIFEST commits last, so a
  // crash anywhere above leaves a visibly unsealed bundle, never a silent
  // mix of old and new trace files.
  util::io::commit_bundle(dir, {"users.csv", "jobs.csv", "pubs.csv",
                                "applog.csv", "snapshot.csv",
                                "scenario.conf"});

  util::Table table("Bundle written to " + dir);
  table.set_headers({"Artifact", "Records"});
  table.add_row({"users.csv", util::fmt_int(static_cast<std::int64_t>(
                                  scenario.registry.size()))});
  table.add_row({"jobs.csv", util::fmt_int(static_cast<std::int64_t>(
                                 scenario.jobs.size()))});
  table.add_row({"pubs.csv", util::fmt_int(static_cast<std::int64_t>(
                                 scenario.pubs.size()))});
  table.add_row({"applog.csv", util::fmt_int(static_cast<std::int64_t>(
                                   scenario.replay.size()))});
  table.add_row({"snapshot.csv", util::fmt_int(static_cast<std::int64_t>(
                                     scenario.snapshot.size()))});
  table.print(out);
  return 0;
}

// ---- evaluate / classify ---------------------------------------------------

void print_matrix(const activeness::RankStore& ranks, std::ostream& out) {
  const auto counts = ranks.group_counts();
  const double total = static_cast<double>(ranks.size());
  util::Table table("User activeness matrix (Fig. 4)");
  table.set_headers({"Group", "Users", "Share"});
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    table.add_row(
        {activeness::group_name(static_cast<activeness::UserGroup>(g)),
         util::fmt_int(static_cast<std::int64_t>(counts[g])),
         total > 0 ? util::format_percent(
                         static_cast<double>(counts[g]) / total, 1)
                   : "n/a"});
  }
  table.print(out);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::string item = csv.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

int cmd_evaluate(const util::Config& config, std::ostream& out) {
  IngestOptions ingest(config);
  const auto registry =
      trace::UserRegistry::load_csv(require_str(config, "users"), ingest.opts);
  const auto jobs =
      trace::JobLog::load_csv(require_str(config, "jobs"), ingest.opts);
  const util::TimePoint now = require_date(config, "now");

  // Catalog: the paper's two types plus one extra type per activity CSV.
  activeness::ActivityCatalog catalog =
      activeness::ActivityCatalog::paper_default();
  const auto op_files = split_list(config.get_string("op-activities", ""));
  const auto oc_files = split_list(config.get_string("oc-activities", ""));
  std::vector<std::pair<activeness::ActivityTypeId, std::string>> extra;
  for (const auto& f : op_files) {
    extra.emplace_back(
        catalog.add({f, activeness::ActivityCategory::kOperation, 1.0}), f);
  }
  for (const auto& f : oc_files) {
    extra.emplace_back(
        catalog.add({f, activeness::ActivityCategory::kOutcome, 1.0}), f);
  }

  activeness::ActivityStore store(registry.size(), catalog.size());
  activeness::ingest_jobs(store, 0, 1.0, jobs);
  if (const auto pubs_path = config.get("pubs")) {
    const auto pubs = trace::PublicationLog::load_csv(*pubs_path, ingest.opts);
    activeness::ingest_publications(store, 1, 1.0, pubs);
  }
  for (const auto& [type, file] : extra) {
    const std::size_t n =
        activeness::ingest_activities_csv(store, type, 1.0, file, ingest.opts);
    out << "Ingested " << n << " activities from " << file << "\n";
  }
  store.sort_all();
  ingest.report(out);

  activeness::EvaluationParams params;
  params.period_length_days =
      static_cast<int>(config.get_int("period-days", 90));
  activeness::ShardedEvaluator pipeline(catalog, params,
                                        eval_mode_flag(config),
                                        eval_shards_flag(config));
  pipeline.advance(store, now);
  activeness::RankStore ranks(pipeline.users());

  out << "Evaluated " << ranks.size() << " users at "
      << util::format_date(now) << " (period "
      << params.period_length_days << " days)\n";
  print_matrix(ranks, out);

  if (const auto out_path = config.get("out")) {
    ranks.save_csv(*out_path);
    out << "Rank store written to " << *out_path << "\n";
  }
  return 0;
}

int cmd_classify(const util::Config& config, std::ostream& out) {
  const auto ranks =
      activeness::RankStore::load_csv(require_str(config, "ranks"));
  print_matrix(ranks, out);
  return 0;
}

// ---- purge -----------------------------------------------------------------

int cmd_purge(const util::Config& config, std::ostream& out) {
  IngestOptions ingest(config);
  const auto snapshot =
      trace::Snapshot::load_csv(require_str(config, "snapshot"), ingest.opts);
  const auto registry =
      trace::UserRegistry::load_csv(require_str(config, "users"), ingest.opts);
  const util::TimePoint now = require_date(config, "now");
  const int lifetime = static_cast<int>(config.get_int("lifetime", 90));
  const double retain_fraction = config.get_double("target", 0.5);
  const std::string policy_name =
      config.get_string("policy", "activedr");

  fs::Vfs vfs;
  vfs.import_snapshot(snapshot);
  const std::uint64_t target =
      retain_fraction > 0.0
          ? static_cast<std::uint64_t>(
                static_cast<double>(vfs.total_bytes()) * (1.0 - retain_fraction))
          : 0;

  const bool dry_run = config.get_bool("dry-run", false);
  const bool want_victims = config.contains("victims");
  const retention::ScanMode scan_mode = scan_mode_flag(config);
  // Validated up front (even for FLT, which never evaluates) so a typo
  // fails fast instead of being silently ignored.
  const activeness::EvalMode eval_mode = eval_mode_flag(config);
  const std::size_t eval_shards = eval_shards_flag(config);

  retention::PurgeReport report;
  if (policy_name == "flt") {
    retention::FltConfig flt_config;
    flt_config.lifetime_days = lifetime;
    flt_config.dry_run = dry_run;
    flt_config.record_victims = want_victims;
    flt_config.scan_mode = scan_mode;
    const retention::FltPolicy policy(flt_config);
    report = policy.run(vfs, now, target);
  } else if (policy_name == "activedr") {
    activeness::RankStore ranks;
    bool have_ranks = false;
    if (const auto ranks_path = config.get("ranks")) {
      // A damaged store must never order a purge: try_load_csv quarantines
      // corrupt/unparseable files, and when the trace inputs are also on the
      // command line the run degrades to a full inline re-evaluation — the
      // §10 recovery path — instead of failing the retention window.
      auto loaded = activeness::RankStore::try_load_csv(*ranks_path);
      if (loaded.ok) {
        ranks = std::move(loaded.store);
        have_ranks = true;
      } else if (config.contains("jobs")) {
        out << "WARNING: rank store " << *ranks_path << " unusable ("
            << loaded.error << ")";
        if (!loaded.quarantined_to.empty()) {
          out << "; quarantined to " << loaded.quarantined_to;
        }
        out << "; falling back to inline re-evaluation from traces\n";
      } else {
        throw std::runtime_error("rank store " + *ranks_path + " unusable (" +
                                 loaded.error +
                                 ") and no --jobs to re-evaluate from");
      }
    }
    if (!have_ranks && config.contains("jobs")) {
      // Inline evaluation at --now through the incremental pipeline — the
      // single-binary path for sites that don't persist rank stores, and the
      // fallback when a persisted store failed verification.
      const auto jobs =
          trace::JobLog::load_csv(require_str(config, "jobs"), ingest.opts);
      const activeness::ActivityCatalog catalog =
          activeness::ActivityCatalog::paper_default();
      activeness::ActivityStore store(registry.size(), catalog.size());
      activeness::ingest_jobs(store, 0, 1.0, jobs);
      if (const auto pubs_path = config.get("pubs")) {
        const auto pubs =
            trace::PublicationLog::load_csv(*pubs_path, ingest.opts);
        activeness::ingest_publications(store, 1, 1.0, pubs);
      }
      activeness::ShardedEvaluator pipeline(
          catalog, activeness::EvaluationParams{lifetime}, eval_mode,
          eval_shards);
      pipeline.advance(store, now);
      ranks = activeness::RankStore(pipeline.users());
      have_ranks = true;
    }
    if (!have_ranks) {
      throw std::runtime_error(
          "activedr policy needs --ranks or --jobs (for inline evaluation)");
    }
    retention::ActiveDrConfig adr_config;
    adr_config.initial_lifetime_days = lifetime;
    adr_config.dry_run = dry_run;
    adr_config.record_victims = want_victims;
    adr_config.scan_mode = scan_mode;
    retention::ActiveDrPolicy policy(adr_config, registry);
    if (const auto exempt = config.get("exempt")) {
      policy.set_exemptions(retention::ExemptionList::load(*exempt));
    }
    const auto plan = activeness::build_scan_plan(ranks.all());
    report = policy.run(vfs, now, target, plan);
  } else {
    throw std::runtime_error("unknown --policy: " + policy_name +
                             " (expected activedr or flt)");
  }

  ingest.report(out);
  report.print(out);
  if (report.dry_run) {
    out << "DRY RUN: nothing was deleted; " << report.victim_paths.size()
        << " victims selected\n";
  }
  out << "State after purge: " << vfs.file_count() << " files, "
      << util::format_bytes(static_cast<double>(vfs.total_bytes())) << "\n";
  if (const auto victims_path = config.get("victims")) {
    std::ofstream victims_out(*victims_path);
    if (!victims_out) {
      throw std::runtime_error("cannot write " + *victims_path);
    }
    for (const auto& path : report.victim_paths) victims_out << path << "\n";
    out << report.victim_paths.size() << " victim paths written to "
        << *victims_path << "\n";
  }

  if (const auto out_path = config.get("out-snapshot")) {
    vfs.export_snapshot().save_csv(*out_path);
    out << "Surviving snapshot written to " << *out_path << "\n";
  }
  if (const auto ledger_path = config.get("ledger")) {
    retention::PurgeLedger ledger(*ledger_path);
    ledger.append(report);
    out << "Run appended to ledger " << *ledger_path << " ("
        << ledger.load().size() << " entries)\n";
  }
  if (config.get_bool("check-index", false)) {
    std::string error;
    if (!vfs.verify_purge_index(&error)) {
      out << "PURGE INDEX INCONSISTENT: " << error << "\n";
      return 3;
    }
    out << "Purge index verified: " << vfs.purge_index().entry_count()
        << " entries consistent with the namespace\n";
  }
  return report.target_reached ? 0 : 2;
}

// ---- replay ----------------------------------------------------------------

synth::TitanScenario load_bundle(const std::string& dir,
                                 const util::ParseOptions& opts);

int cmd_replay(const util::Config& config, std::ostream& out) {
  IngestOptions ingest(config);
  const synth::TitanScenario scenario =
      load_bundle(require_str(config, "dir"), ingest.opts);
  ingest.report(out);

  sim::ExperimentConfig experiment;
  experiment.lifetime_days = static_cast<int>(config.get_int("lifetime", 90));
  experiment.purge_interval_days =
      static_cast<int>(config.get_int("interval", 7));
  experiment.purge_target_utilization = config.get_double("target", 0.5);
  experiment.eval_mode = eval_mode_flag(config);
  experiment.eval_shards = eval_shards_flag(config);

  out << "Replaying " << util::format_date(scenario.sim_begin) << " .. "
      << util::format_date(scenario.sim_end) << " (" << scenario.replay.size()
      << " entries) under FLT and ActiveDR...\n";
  const sim::ComparisonResult result =
      sim::run_comparison(scenario, experiment);

  util::Table table("Replay summary");
  table.set_headers({"Metric", "FLT", "ActiveDR"});
  table.add_row(
      {"File misses",
       util::fmt_int(static_cast<std::int64_t>(result.flt.total_misses)),
       util::fmt_int(static_cast<std::int64_t>(result.activedr.total_misses))});
  table.add_row(
      {"Days with >5% misses",
       util::fmt_int(static_cast<std::int64_t>(
           sim::days_above(result.flt.daily, 0.05))),
       util::fmt_int(static_cast<std::int64_t>(
           sim::days_above(result.activedr.daily, 0.05)))});
  table.add_row(
      {"Final bytes",
       util::format_bytes(static_cast<double>(result.flt.final_bytes)),
       util::format_bytes(static_cast<double>(result.activedr.final_bytes))});
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    table.add_row(
        {std::string("Affected users: ") +
             activeness::group_name(static_cast<activeness::UserGroup>(g)),
         util::fmt_int(static_cast<std::int64_t>(
             result.flt.groups[g].unique_affected_users)),
         util::fmt_int(static_cast<std::int64_t>(
             result.activedr.groups[g].unique_affected_users))});
  }
  table.print(out);
  return 0;
}

// ---- compare ----------------------------------------------------------------

synth::TitanScenario load_bundle(const std::string& dir,
                                 const util::ParseOptions& opts) {
  // A sealed bundle must verify as a *set* before any member is parsed; an
  // unsealed directory (hand-assembled, pre-manifest era) falls back to the
  // per-file footer checks inside each loader.
  const util::io::BundleCheck bundle_check = util::io::verify_bundle(dir);
  if (bundle_check.state == util::io::BundleState::kInvalid) {
    throw std::runtime_error("bundle " + dir +
                             " failed verification: " + bundle_check.error);
  }
  const util::Config bundle = util::Config::from_file(dir + "/scenario.conf");
  synth::TitanScenario scenario;
  scenario.registry = trace::UserRegistry::load_csv(dir + "/users.csv", opts);
  scenario.jobs = trace::JobLog::load_csv(dir + "/jobs.csv", opts);
  scenario.pubs = trace::PublicationLog::load_csv(dir + "/pubs.csv", opts);
  scenario.replay = trace::AppLog::load_csv(dir + "/applog.csv", opts);
  scenario.snapshot = trace::Snapshot::load_csv(dir + "/snapshot.csv", opts);
  scenario.sim_begin = bundle.get_int("sim_begin", 0);
  scenario.sim_end = bundle.get_int("sim_end", 0);
  scenario.capacity_bytes =
      static_cast<std::uint64_t>(bundle.get_int("capacity_bytes", 0));
  if (scenario.sim_begin >= scenario.sim_end) {
    throw std::runtime_error("scenario.conf: bad sim window");
  }
  return scenario;
}

int cmd_compare(const util::Config& config, std::ostream& out) {
  IngestOptions ingest(config);
  const synth::TitanScenario scenario =
      load_bundle(require_str(config, "dir"), ingest.opts);
  ingest.report(out);
  const util::TimePoint as_of = require_date(config, "as-of");
  if (as_of <= scenario.sim_begin || as_of >= scenario.sim_end) {
    throw std::runtime_error("--as-of must fall inside the bundle's replay "
                             "window " +
                             util::format_date(scenario.sim_begin) + " .. " +
                             util::format_date(scenario.sim_end));
  }

  sim::ExperimentConfig experiment;
  experiment.lifetime_days = static_cast<int>(config.get_int("lifetime", 90));
  experiment.purge_target_utilization = config.get_double("target", 0.5);
  experiment.eval_mode = eval_mode_flag(config);
  experiment.eval_shards = eval_shards_flag(config);

  out << "One-shot retention comparison at " << util::format_date(as_of)
      << " (lifetime " << experiment.lifetime_days << "d, retain "
      << util::format_percent(experiment.purge_target_utilization, 0)
      << " of usage)\n";
  const sim::SnapshotRetentionResult result =
      sim::run_snapshot_retention(scenario, experiment, as_of);

  util::Table table("Per-group outcome");
  table.set_headers({"Group", "Users", "FLT purged", "ActiveDR purged",
                     "FLT affected", "ActiveDR affected"});
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    const auto group = static_cast<activeness::UserGroup>(g);
    table.add_row(
        {activeness::group_name(group),
         util::fmt_int(static_cast<std::int64_t>(result.group_counts[g])),
         util::format_bytes(
             static_cast<double>(result.flt.group(group).purged_bytes)),
         util::format_bytes(
             static_cast<double>(result.activedr.group(group).purged_bytes)),
         util::fmt_int(static_cast<std::int64_t>(
             result.flt.group(group).users_affected)),
         util::fmt_int(static_cast<std::int64_t>(
             result.activedr.group(group).users_affected))});
  }
  table.print(out);
  out << "Shared target: "
      << util::format_bytes(
             static_cast<double>(result.flt.target_purge_bytes))
      << "; FLT " << (result.flt.target_reached ? "reached" : "MISSED")
      << ", ActiveDR "
      << (result.activedr.target_reached ? "reached" : "MISSED") << "\n";
  return 0;
}

// ---- info ------------------------------------------------------------------

int cmd_info(const util::Config& config, std::ostream& out) {
  IngestOptions ingest(config);
  const auto snapshot =
      trace::Snapshot::load_csv(require_str(config, "snapshot"), ingest.opts);
  ingest.report(out);

  std::map<trace::UserId, std::uint64_t> bytes_by_user;
  util::OnlineStats sizes;
  util::TimePoint newest = 0;
  util::TimePoint oldest = std::numeric_limits<util::TimePoint>::max();
  for (const auto& e : snapshot.entries()) {
    bytes_by_user[e.owner] += e.size_bytes;
    sizes.add(static_cast<double>(e.size_bytes));
    newest = std::max(newest, e.atime);
    oldest = std::min(oldest, e.atime);
  }

  util::Table table("Snapshot summary");
  table.set_headers({"Metric", "Value"});
  table.add_row({"Files", util::fmt_int(static_cast<std::int64_t>(
                              snapshot.size()))});
  table.add_row({"Total size", util::format_bytes(static_cast<double>(
                                   snapshot.total_bytes()))});
  table.add_row({"Owners", util::fmt_int(static_cast<std::int64_t>(
                               bytes_by_user.size()))});
  table.add_row({"Mean file size", util::format_bytes(sizes.mean())});
  table.add_row({"Largest file", util::format_bytes(sizes.max())});
  if (!snapshot.empty()) {
    table.add_row({"Oldest atime", util::format_date(oldest)});
    table.add_row({"Newest atime", util::format_date(newest)});
  }
  table.print(out);

  // Top-5 owners by bytes.
  std::vector<std::pair<std::uint64_t, trace::UserId>> top;
  for (const auto& [user, bytes] : bytes_by_user) top.emplace_back(bytes, user);
  std::sort(top.rbegin(), top.rend());
  util::Table owners("Largest owners");
  owners.set_headers({"User id", "Bytes"});
  for (std::size_t i = 0; i < top.size() && i < 5; ++i) {
    owners.add_row({util::fmt_int(top[i].second),
                    util::format_bytes(static_cast<double>(top[i].first))});
  }
  owners.print(out);
  return 0;
}

// ---- loadgen ---------------------------------------------------------------

int cmd_loadgen(const util::Config& config, std::ostream& out) {
  sim::LoadGenConfig c;
  c.users = static_cast<std::size_t>(
      config.get_int("users", static_cast<std::int64_t>(c.users)));
  c.files_per_user = static_cast<std::size_t>(config.get_int(
      "files-per-user", static_cast<std::int64_t>(c.files_per_user)));
  c.seed = static_cast<std::uint64_t>(
      config.get_int("seed", static_cast<std::int64_t>(c.seed)));
  c.producers = static_cast<std::size_t>(
      config.get_int("producers", static_cast<std::int64_t>(c.producers)));
  c.shards = static_cast<std::size_t>(config.get_int("shards", 0));
  c.events_per_sec = config.get_double("load-rate", c.events_per_sec);
  c.duration_seconds = config.get_double("load-duration", c.duration_seconds);
  c.trigger_interval_seconds =
      config.get_double("trigger-interval", c.trigger_interval_seconds);
  c.p99_budget_ms = config.get_double("p99-budget-ms", c.p99_budget_ms);
  c.ramp_levels = static_cast<std::size_t>(
      config.get_int("ramp-levels", static_cast<std::int64_t>(c.ramp_levels)));
  c.ramp_factor = config.get_double("ramp-factor", c.ramp_factor);

  const sim::LoadResult result = sim::run_load(c);

  util::Table table("Sustained load ramp (" + std::to_string(result.shards) +
                    " shards)");
  table.set_headers({"Target ev/s", "Achieved", "Triggers", "p50 ms", "p99 ms",
                     "p999 ms", "Identical", "Sustainable"});
  char buf[64];
  const auto f3 = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return std::string(buf);
  };
  for (const sim::LoadLevelResult& level : result.levels) {
    table.add_row({f3(level.target_rate), f3(level.achieved_rate),
                   util::fmt_int(static_cast<std::int64_t>(level.triggers)),
                   f3(level.p50_ms), f3(level.p99_ms), f3(level.p999_ms),
                   level.ranks_identical ? "yes" : "NO (BUG)",
                   level.sustainable ? "yes" : "no"});
  }
  table.print(out);
  out << "max sustainable rate: " << result.max_sustainable_rate
      << " events/sec\n"
      << "ranks identical to serial replay: "
      << (result.ranks_identical ? "yes" : "NO (BUG)") << "\n";

  if (const auto json_path = config.get("json")) {
    std::ofstream json(*json_path);
    json << "{\n  \"bench\": \"load_harness\",\n  \"shards\": "
         << result.shards << ",\n  \"levels\": [\n";
    for (std::size_t i = 0; i < result.levels.size(); ++i) {
      const sim::LoadLevelResult& level = result.levels[i];
      json << "    {\"target_rate\": " << level.target_rate
           << ", \"achieved_rate\": " << level.achieved_rate
           << ", \"p50_ms\": " << level.p50_ms
           << ", \"p99_ms\": " << level.p99_ms
           << ", \"p999_ms\": " << level.p999_ms
           << ", \"ranks_identical\": "
           << (level.ranks_identical ? "true" : "false")
           << ", \"sustainable\": " << (level.sustainable ? "true" : "false")
           << "}" << (i + 1 < result.levels.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"max_sustainable_rate\": " << result.max_sustainable_rate
         << ",\n  \"ranks_identical\": "
         << (result.ranks_identical ? "true" : "false") << "\n}\n";
    out << "wrote " << *json_path << "\n";
  }
  return result.ranks_identical ? 0 : 3;
}

// ---- chaos -----------------------------------------------------------------

int cmd_chaos(const util::Config& config, std::ostream& out) {
  sim::ChaosConfig c;
  c.dir = require_str(config, "dir");
  c.seed = static_cast<std::uint64_t>(
      config.get_int("seed", static_cast<std::int64_t>(c.seed)));
  c.epochs =
      static_cast<int>(config.get_int("epochs", c.epochs));
  c.duration_s = config.get_double("duration", c.duration_s);
  c.users = static_cast<std::size_t>(
      config.get_int("users", static_cast<std::int64_t>(c.users)));
  c.events_per_epoch = static_cast<std::size_t>(config.get_int(
      "events-per-epoch", static_cast<std::int64_t>(c.events_per_epoch)));
  if (const auto classes = config.get("classes")) {
    for (const auto& cls : util::csv_split(*classes)) {
      if (!cls.empty()) c.classes.push_back(cls);
    }
  }

  const sim::ChaosReport report = sim::run_chaos(c, out);
  out << "epochs: " << report.epochs_run << ", identity checks: "
      << report.identity_checks << ", recoveries: " << report.recoveries
      << "\n";
  for (const auto& [cls, n] : report.faults_injected) {
    out << "  " << cls << ": " << n << "\n";
  }
  if (!report.ok) {
    out << "chaos soak FAILED: " << report.error << "\n";
    return 3;
  }
  return 0;
}

}  // namespace

namespace {

// --metrics-out: dump the registry after any command, even a failing one —
// the metrics of a run that errored out are often the interesting ones.
void maybe_dump_metrics(const util::Config& config, std::ostream& err) {
  const auto path = config.get("metrics-out");
  if (!path) return;
  std::ofstream metrics_out(*path);
  if (!metrics_out) {
    err << "activedr: cannot write --metrics-out file " << *path << "\n";
    return;
  }
  metrics_out << obs::MetricsRegistry::global().to_json() << "\n";
}

}  // namespace

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  if (argc < 2) {
    err << kUsage;
    return 64;  // EX_USAGE
  }
  const std::string command = argv[1];
  const util::Config config = util::Config::from_args(argc - 1, argv + 1);

  // Global durability/testing knobs, applied before any command IO. Both are
  // process-wide state, restored on exit so in-process callers (tests) don't
  // leak configuration into each other.
  bool fault_armed = false;
  if (const auto spec = config.get("fault-spec")) {
    try {
      util::FaultInjector::global().configure(
          *spec, static_cast<std::uint64_t>(config.get_int("fault-seed", 0)));
      fault_armed = true;
    } catch (const std::invalid_argument& e) {
      err << "activedr: bad --fault-spec: " << e.what() << "\n";
      return 64;
    }
  }
  const bool prior_fsync = util::io::default_fsync();
  if (config.get_bool("fsync", false)) util::io::set_default_fsync(true);

  int rc = 64;
  try {
    if (command == "synth") rc = cmd_synth(config, out);
    else if (command == "evaluate") rc = cmd_evaluate(config, out);
    else if (command == "classify") rc = cmd_classify(config, out);
    else if (command == "purge") rc = cmd_purge(config, out);
    else if (command == "replay") rc = cmd_replay(config, out);
    else if (command == "compare") rc = cmd_compare(config, out);
    else if (command == "info") rc = cmd_info(config, out);
    else if (command == "loadgen") rc = cmd_loadgen(config, out);
    else if (command == "chaos") rc = cmd_chaos(config, out);
    else if (command == "serve") rc = cmd_serve(config, out);
    else if (command == "feed") rc = cmd_feed(config, out);
    else if (command == "ctl") rc = cmd_ctl(config, out);
    else if (command == "help" || command == "--help" || command == "-h") {
      out << kUsage;
      rc = 0;
    } else {
      err << "unknown command: " << command << "\n\n" << kUsage;
      rc = 64;
    }
  } catch (const util::CrashInjected& e) {
    // Simulated hard crash: report and stop *without* cleanup, leaving the
    // filesystem exactly as the crash left it for recovery testing.
    err << "activedr " << command << ": " << e.what() << "\n";
    rc = 9;
  } catch (const std::exception& e) {
    err << "activedr " << command << ": " << e.what() << "\n";
    rc = 1;
  }
  maybe_dump_metrics(config, err);
  if (fault_armed) util::FaultInjector::global().clear();
  util::io::set_default_fsync(prior_fsync);
  return rc;
}

}  // namespace adr::cli
