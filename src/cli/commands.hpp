#pragma once
// The `activedr` command-line tool, as a library so tests can drive it.
//
// Subcommands (run `activedr help` for the full usage text):
//   synth     generate a synthetic Titan-style trace bundle into a directory
//   evaluate  compute user activeness ranks from job/publication logs
//   classify  print the Fig. 4 activeness matrix from a rank file
//   purge     run one retention pass (ActiveDR or FLT) over a snapshot
//   replay    replay an application log for a year, FLT vs ActiveDR
//   info      summarize a metadata snapshot
//
// Every command reads/writes the CSV trace formats of src/trace (the same
// files `synth` emits), so the tool chains with site-local exports.

#include <iosfwd>

namespace adr::cli {

/// Entry point: argv[1] selects the subcommand. Returns a process exit
/// code; all human output goes to `out`, errors to `err`.
int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err);

}  // namespace adr::cli
