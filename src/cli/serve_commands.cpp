#include "cli/serve_commands.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "cli/flags.hpp"
#include "retention/exemption.hpp"
#include "serve/daemon.hpp"
#include "trace/app_log.hpp"
#include "trace/event_log.hpp"
#include "trace/job_log.hpp"
#include "trace/publication_log.hpp"
#include "trace/user_registry.hpp"
#include "util/io.hpp"

namespace adr::cli {

namespace {

namespace fsys = std::filesystem;

// SIGINT/SIGTERM request a graceful stop: the daemon finishes the tick,
// seals the WAL, writes a final checkpoint, and exits 0 (the satellite
// contract; a kill -9 is the crash-recovery path instead).
std::atomic<bool> g_stop_requested{false};

void request_stop(int) { g_stop_requested.store(true); }

}  // namespace

int cmd_serve(const util::Config& config, std::ostream& out) {
  auto registry = trace::UserRegistry::load_csv(require_str(config, "users"));

  serve::DaemonOptions opts;
  opts.wal_dir = require_str(config, "wal");
  opts.state_dir = require_str(config, "state");
  opts.service.lifetime_days =
      static_cast<int>(config.get_int("lifetime", 90));
  opts.service.eval_mode = eval_mode_flag(config);
  opts.service.eval_shards = eval_shards_flag(config);
  opts.service.scan_mode = scan_mode_flag(config);
  opts.checkpoint_every_events = static_cast<std::uint64_t>(config.get_int(
      "checkpoint-every",
      static_cast<std::int64_t>(opts.checkpoint_every_events)));
  opts.poll_interval_ms = static_cast<int>(
      config.get_int("poll-ms", opts.poll_interval_ms));
  opts.max_ticks =
      static_cast<std::uint64_t>(config.get_int("max-ticks", 0));
  opts.snapshot_path = config.get_string("snapshot", "");
  // --metrics-out interval mode: while the daemon runs, the registry is
  // re-exported (atomic rewrite) every --metrics-interval ticks instead of
  // only once at process exit.
  opts.metrics_out = config.get_string("metrics-out", "");
  opts.metrics_every_ticks = static_cast<std::uint64_t>(config.get_int(
      "metrics-interval",
      static_cast<std::int64_t>(opts.metrics_every_ticks)));
  opts.seal_wal_on_stop = !config.get_bool("no-seal-on-stop", false);

  // Overload-protection knobs (DESIGN.md §14): bounded ingest admission
  // and the trigger watchdog. All default off, preserving the historical
  // unbounded/undeadlined behaviour.
  const auto queue_cap = config.get_int("ingest-queue-cap", 0);
  if (queue_cap < 0) {
    throw std::runtime_error("--ingest-queue-cap must be >= 0 (0 = unbounded)");
  }
  opts.ingest_queue_cap = static_cast<std::size_t>(queue_cap);
  opts.backpressure = backpressure_flag(config);
  const auto shed_budget = config.get_int("shed-budget", 0);
  if (shed_budget < 0) throw std::runtime_error("--shed-budget must be >= 0");
  opts.shed_budget = static_cast<std::size_t>(shed_budget);
  opts.spill_dir = config.get_string("spill-dir", "");
  const auto deadline_ms = config.get_int("trigger-deadline-ms", 0);
  if (deadline_ms < 0) {
    throw std::runtime_error("--trigger-deadline-ms must be >= 0 (0 = off)");
  }
  opts.watchdog.trigger_deadline_ms = static_cast<std::uint64_t>(deadline_ms);

  g_stop_requested.store(false);
  opts.stop_flag = &g_stop_requested;

  serve::Daemon daemon(std::move(registry), opts);
  if (const auto exempt = config.get("exempt")) {
    daemon.service().set_exemptions(retention::ExemptionList::load(*exempt));
  }

  const auto prior_int = std::signal(SIGINT, request_stop);
  const auto prior_term = std::signal(SIGTERM, request_stop);

  out << "serve: wal " << opts.wal_dir << ", state " << opts.state_dir
      << ", ctl " << daemon.ctl_dir() << "\n"
      << std::flush;
  int rc;
  try {
    rc = daemon.run();
  } catch (...) {
    std::signal(SIGINT, prior_int);
    std::signal(SIGTERM, prior_term);
    throw;
  }
  std::signal(SIGINT, prior_int);
  std::signal(SIGTERM, prior_term);

  out << "serve: stopped gracefully; applied " << daemon.events_applied()
      << " events, last seq " << daemon.service().last_applied_seq() << "\n";
  return rc;
}

int cmd_feed(const util::Config& config, std::ostream& out) {
  const std::string wal_dir = require_str(config, "wal");
  trace::EventLogOptions log_opts;
  log_opts.rotate_events = static_cast<std::uint64_t>(config.get_int(
      "rotate", static_cast<std::int64_t>(log_opts.rotate_events)));
  log_opts.fsync = util::io::default_fsync();
  trace::EventLogWriter writer(wal_dir, log_opts);

  // Jobs, then publications, then app-log file operations — each in file
  // order, which is exactly the order the bulk ingest paths see, so a WAL
  // replay and a one-shot run over the same files agree byte-for-byte.
  std::size_t jobs_n = 0, pubs_n = 0, app_n = 0;
  if (const auto jobs_path = config.get("jobs")) {
    const auto jobs = trace::JobLog::load_csv(*jobs_path);
    for (const auto& job : jobs.records()) {
      writer.append(trace::make_job_event(job));
      ++jobs_n;
    }
  }
  if (const auto pubs_path = config.get("pubs")) {
    const auto pubs = trace::PublicationLog::load_csv(*pubs_path);
    for (const auto& pub : pubs.records()) {
      for (const auto& event : trace::make_publication_events(pub)) {
        writer.append(event);
        ++pubs_n;
      }
    }
  }
  if (const auto app_path = config.get("applog")) {
    const auto applog = trace::AppLog::load_csv(*app_path);
    for (const auto& entry : applog.entries()) {
      writer.append(trace::make_app_event(entry));
      ++app_n;
    }
  }
  if (config.get_bool("seal", false)) {
    writer.seal();
  } else {
    writer.flush();
  }

  out << "feed: appended " << jobs_n << " job, " << pubs_n
      << " publication, " << app_n << " file events to " << wal_dir
      << " (next seq " << writer.next_seq() << ")\n";
  return 0;
}

int cmd_ctl(const util::Config& config, std::ostream& out) {
  const std::string ctl_dir = require_str(config, "state") + "/ctl";
  const std::string verb = require_str(config, "cmd");
  fsys::create_directories(ctl_dir);

  std::vector<std::string> lines;
  lines.push_back("cmd = " + verb);
  if (verb == "trigger" || verb == "evaluate") {
    if (config.contains("now-unix")) {
      lines.push_back("now = " + std::to_string(config.get_int("now-unix", 0)));
    } else {
      lines.push_back("now = " + std::to_string(require_date(config, "now")));
    }
  }
  for (const char* key : {"ranks-out", "victims-out", "retain", "policy"}) {
    if (const auto value = config.get(key)) {
      std::string name = key;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      lines.push_back(name + " = " + *value);
    }
  }

  // Unique-enough name per invocation; bump the suffix on collision.
  std::string stem =
      "ctl-" + std::to_string(static_cast<std::uint64_t>(
                   std::chrono::steady_clock::now().time_since_epoch().count()));
  while (fsys::exists(ctl_dir + "/" + stem + ".cmd") ||
         fsys::exists(ctl_dir + "/" + stem + ".out")) {
    stem += "x";
  }
  const std::string out_path = ctl_dir + "/" + stem + ".out";
  {
    // Committed via rename, so the daemon can never pick up a torn command.
    util::io::AtomicWriter writer(ctl_dir + "/" + stem + ".cmd",
                                  {.fsync = false, .footer = false});
    for (const auto& line : lines) writer.write_line(line);
    writer.commit();
  }

  const auto timeout =
      std::chrono::milliseconds(config.get_int("timeout-ms", 30000));
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!fsys::exists(out_path)) {
    if (std::chrono::steady_clock::now() >= deadline) {
      out << "ctl: timed out waiting for reply " << out_path << "\n";
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const util::io::Artifact reply = util::io::read_artifact(out_path);
  out << reply.content;
  const util::Config parsed = util::Config::from_file(out_path);
  std::error_code ec;
  fsys::remove(out_path, ec);
  return parsed.get_bool("ok", false) ? 0 : 1;
}

}  // namespace adr::cli
