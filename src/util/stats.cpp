#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace adr::util {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const { return count_ ? min_ : 0.0; }
double OnlineStats::max() const { return count_ ? max_ : 0.0; }

double quantile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sample.size()) return sample.back();
  return sample[lo] + frac * (sample[lo + 1] - sample[lo]);
}

FiveNumberSummary five_number_summary(const std::vector<double>& sample) {
  FiveNumberSummary s;
  s.count = sample.size();
  if (sample.empty()) return s;
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
  };
  s.min = sorted.front();
  s.q1 = at(0.25);
  s.median = at(0.5);
  s.q3 = at(0.75);
  s.max = sorted.back();
  OnlineStats os;
  for (double x : sorted) os.add(x);
  s.mean = os.mean();
  return s;
}

void RangeHistogram::add_bin(std::string label, double lo, double hi) {
  bins_.push_back(Bin{std::move(label), lo, hi, 0});
}

void RangeHistogram::add(double value) {
  ++total_;
  if (!bins_.empty() && value <= bins_.front().lo) {
    ++underflow_;
    return;
  }
  for (auto& bin : bins_) {
    if (value > bin.lo && value <= bin.hi) {
      ++bin.count;
      return;
    }
  }
  ++overflow_;
}

RangeHistogram RangeHistogram::paper_miss_ratio_bins() {
  RangeHistogram h;
  h.add_bin("1%-5%", 0.01, 0.05);
  h.add_bin("5%-10%", 0.05, 0.10);
  h.add_bin("10%-20%", 0.10, 0.20);
  h.add_bin("20%-30%", 0.20, 0.30);
  h.add_bin("30%-40%", 0.30, 0.40);
  h.add_bin("40%-50%", 0.40, 0.50);
  h.add_bin("50%-60%", 0.50, 0.60);
  h.add_bin("60%-70%", 0.60, 0.70);
  h.add_bin("70%-80%", 0.70, 0.80);
  h.add_bin("80%-90%", 0.80, 0.90);
  h.add_bin("90%-100%", 0.90, 1.00);
  return h;
}

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int u = 0;
  double v = bytes;
  while (std::fabs(v) >= 1024.0 && u < 5) {
    v /= 1024.0;
    ++u;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace adr::util
