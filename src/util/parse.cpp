#include "util/parse.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace adr::util {

std::string RowContext::describe(const char* column) const {
  std::string where = file ? *file : std::string("<input>");
  if (line > 0) {
    where.push_back(':');
    where.append(std::to_string(line));
  }
  where.append(": column '");
  where.append(column);
  where.push_back('\'');
  return where;
}

namespace {

[[noreturn]] void fail(const std::string& value, const RowContext& ctx,
                       const char* column, const char* what) {
  throw ParseError(ctx.describe(column) + ": " + what + ": '" + value + "'");
}

template <typename T>
T parse_int(const std::string& s, const RowContext& ctx, const char* column,
            const char* kind) {
  T value{};
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    fail(s, ctx, column, "value out of range");
  }
  if (ec != std::errc() || ptr != end || s.empty()) {
    fail(s, ctx, column, kind);
  }
  return value;
}

}  // namespace

std::uint64_t parse_u64(const std::string& s, const RowContext& ctx,
                        const char* column) {
  return parse_int<std::uint64_t>(s, ctx, column, "invalid unsigned integer");
}

std::int64_t parse_i64(const std::string& s, const RowContext& ctx,
                       const char* column) {
  return parse_int<std::int64_t>(s, ctx, column, "invalid integer");
}

std::uint32_t parse_u32(const std::string& s, const RowContext& ctx,
                        const char* column) {
  return parse_int<std::uint32_t>(s, ctx, column, "invalid unsigned integer");
}

int parse_i32(const std::string& s, const RowContext& ctx,
              const char* column) {
  return parse_int<int>(s, ctx, column, "invalid integer");
}

double parse_f64(const std::string& s, const RowContext& ctx,
                 const char* column) {
  // strtod instead of from_chars<double>: full-string check is explicit and
  // older libstdc++ floating-point from_chars coverage is spotty.
  if (s.empty()) fail(s, ctx, column, "invalid number");
  char* tail = nullptr;
  errno = 0;
  const double value = std::strtod(s.c_str(), &tail);
  if (tail != s.c_str() + s.size()) fail(s, ctx, column, "invalid number");
  if (errno == ERANGE) fail(s, ctx, column, "value out of range");
  return value;
}

const char* to_string(ParsePolicy policy) {
  switch (policy) {
    case ParsePolicy::kStrict: return "strict";
    case ParsePolicy::kPermissive: return "permissive";
  }
  return "?";
}

bool parse_parse_policy(const std::string& text, ParsePolicy& out) {
  if (text == "strict") {
    out = ParsePolicy::kStrict;
  } else if (text == "permissive") {
    out = ParsePolicy::kPermissive;
  } else {
    return false;
  }
  return true;
}

LoadStats& LoadStats::operator+=(const LoadStats& other) {
  rows_ok += other.rows_ok;
  malformed += other.malformed;
  out_of_order += other.out_of_order;
  duplicates += other.duplicates;
  if (quarantine_path.empty()) quarantine_path = other.quarantine_path;
  return *this;
}

namespace {

obs::Counter& reason_counter(const char* reason) {
  // Three fixed reasons -> three cached references (hot-path convention from
  // obs/metrics.hpp: resolve once, update forever).
  auto& registry = obs::MetricsRegistry::global();
  if (std::string_view(reason) == RowQuarantine::kOutOfOrder) {
    static obs::Counter& c =
        registry.counter("ingest.quarantined.out_of_order");
    return c;
  }
  if (std::string_view(reason) == RowQuarantine::kDuplicate) {
    static obs::Counter& c = registry.counter("ingest.quarantined.duplicate");
    return c;
  }
  static obs::Counter& c = registry.counter("ingest.quarantined.malformed");
  return c;
}

obs::Counter& quarantine_files_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("ingest.quarantine_files");
  return c;
}

}  // namespace

RowQuarantine::RowQuarantine(std::string input_path, std::string sidecar_path)
    : input_path_(std::move(input_path)),
      sidecar_path_(std::move(sidecar_path)) {
  if (sidecar_path_.empty()) sidecar_path_ = input_path_ + ".quarantine";
}

RowQuarantine::~RowQuarantine() = default;

void RowQuarantine::add(std::size_t line, const char* reason,
                        const std::string& detail,
                        const std::string& raw_row) {
  if (!out_) {
    out_ = std::make_unique<std::ofstream>(sidecar_path_, std::ios::trunc);
    if (!*out_) {
      throw std::runtime_error("RowQuarantine: cannot write " +
                               sidecar_path_);
    }
    writer_ = std::make_unique<CsvWriter>(*out_);
    writer_->write_row({"line", "reason", "detail", "row"});
    quarantine_files_counter().add();
  }
  writer_->write_row({std::to_string(line), reason, detail, raw_row});
  ++count_;
  reason_counter(reason).add();
  if (std::string_view(reason) == kOutOfOrder) {
    ++out_of_order_;
  } else if (std::string_view(reason) == kDuplicate) {
    ++duplicates_;
  } else {
    ++malformed_;
  }
  ADR_DEBUG << "ingest: quarantined " << input_path_ << ":" << line << " ("
            << reason << "): " << detail;
}

void RowQuarantine::finish(LoadStats* stats) const {
  if (count_ > 0) {
    ADR_WARN << "ingest: " << count_ << " rows of " << input_path_
             << " quarantined to " << sidecar_path_;
  }
  if (!stats) return;
  LoadStats mine;
  mine.malformed = malformed_;
  mine.out_of_order = out_of_order_;
  mine.duplicates = duplicates_;
  if (count_ > 0) mine.quarantine_path = sidecar_path_;
  *stats += mine;
}

}  // namespace adr::util
