#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace adr::util {

namespace {

obs::Counter& tasks_submitted() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("threadpool.tasks.submitted");
  return c;
}

obs::Counter& pf_calls() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("threadpool.parallel_for.calls");
  return c;
}

obs::Counter& pf_items() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("threadpool.parallel_for.items");
  return c;
}

obs::Counter& pf_chunks() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("threadpool.parallel_for.chunks");
  return c;
}

obs::Histogram& queue_wait() {
  static obs::Histogram& h =
      obs::MetricsRegistry::global().histogram("threadpool.queue_wait");
  return h;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t n) {
  // Pre-register every pool metric so exports always carry them — a
  // zero-worker pool (single-core host) never enqueues a task, which would
  // otherwise leave e.g. the queue-wait histogram unregistered.
  tasks_submitted();
  pf_calls();
  pf_items();
  pf_chunks();
  queue_wait();
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in parallel_for, so spawn n-1 workers.
  workers_.reserve(n > 0 ? n - 1 : 0);
  for (std::size_t i = 1; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::note_task_submitted() { tasks_submitted().add(); }

void ThreadPool::note_task_started(
    std::chrono::steady_clock::time_point enqueued) {
  queue_wait().observe(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - enqueued)
                           .count());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  obs::TimerSpan span("threadpool.parallel_for");
  const std::size_t n = end - begin;
  const std::size_t parties = workers_.size() + 1;
  // Tiny auto-grained ranges: waking the workers (queue locks, condvar
  // signals, the help-drain wait loop) costs hundreds of microseconds —
  // far more than running a few dozen iterations inline. This keeps
  // delta-sized work (e.g. an incremental re-evaluation of a handful of
  // users) from paying full-fan-out dispatch latency. An explicit grain is
  // a deliberate chunking request (parallel_shards needs one chunk per
  // party), so only the grain = auto path short-circuits.
  constexpr std::size_t kInlineCutoff = 64;
  if (workers_.empty() || (grain == 0 && n <= kInlineCutoff)) {
    pf_calls().add();
    pf_chunks().add();
    for (std::size_t i = begin; i < end; ++i) fn(i);
    pf_items().add(n);
    return;
  }
  if (grain == 0) {
    grain = std::max<std::size_t>(1, n / (parties * 8));
  }
  pf_calls().add();

  auto cursor = std::make_shared<std::atomic<std::size_t>>(begin);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  auto drain = [=] {
    for (;;) {
      const std::size_t lo = cursor->fetch_add(grain);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + grain);
      pf_chunks().add();
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
        pf_items().add(hi - lo);
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!first_error->exchange(true)) *error = std::current_exception();
        cursor->store(end);  // abort remaining chunks
        return;
      }
    }
  };

  std::vector<std::future<void>> futs;
  futs.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) futs.push_back(submit(drain));
  drain();  // caller participates
  for (auto& f : futs) {
    // Help-drain while waiting: if this parallel_for runs inside a pool
    // task, its sibling drains (and any nested parallel_for's drains) may
    // sit behind us in the queue — blocking in get() with every worker
    // doing the same would deadlock the pool.
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!try_run_one()) {
        f.wait_for(std::chrono::microseconds(50));
      }
    }
    f.get();
  }

  if (first_error->load()) std::rethrow_exception(*error);
}

void ThreadPool::parallel_shards(
    const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t shards = workers_.size() + 1;
  parallel_for(0, shards, [&](std::size_t i) { fn(i, shards); },
               /*grain=*/1);
}

ThreadPool& global_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("ACTIVEDR_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace adr::util
