#pragma once
// Key/value configuration with typed getters.
//
// ActiveDR is meant to be administrator-configured (the paper stresses a
// one-time setup). A Config can be populated from a `key = value` file,
// from CLI arguments (--key value / --key=value / bare flags), or
// programmatically; later sources override earlier ones.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adr::util {

class Config {
 public:
  /// Parse "--key value", "--key=value" and bare "--flag" (=> "true").
  /// Non-option tokens are collected as positional arguments.
  static Config from_args(int argc, const char* const* argv);

  /// Parse a `key = value` file ('#' comments). Throws std::runtime_error
  /// if the file cannot be opened or a line is malformed.
  static Config from_file(const std::string& path);

  void set(const std::string& key, std::string value);
  bool contains(const std::string& key) const;

  /// Merge: entries of `other` override ours.
  void merge(const Config& other);

  std::optional<std::string> get(const std::string& key) const;
  std::string get_string(const std::string& key, const std::string& dflt) const;
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  double get_double(const std::string& key, double dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
  std::vector<std::string> positional_;
};

}  // namespace adr::util
