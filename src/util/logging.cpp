#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/time.hpp"

namespace adr::util {

namespace {

std::atomic<LogLevel> g_level{[] {
  const char* env = std::getenv("ACTIVEDR_LOG");
  return env ? parse_log_level(env) : LogLevel::kWarn;
}()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::mutex g_sink_mutex;

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& s) {
  std::string lower;
  lower.reserve(s.size());
  for (char c : s) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace adr::util
