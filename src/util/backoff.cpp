#include "util/backoff.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace adr::util {

double Backoff::delay_ms(int attempt) {
  double delay = policy_.initial_delay_ms;
  for (int i = 0; i < attempt; ++i) {
    delay *= policy_.multiplier;
    if (delay >= policy_.max_delay_ms) break;
  }
  delay = std::min(delay, policy_.max_delay_ms);
  if (policy_.jitter > 0.0) {
    const double u = static_cast<double>(splitmix64(rng_) >> 11) *
                     (1.0 / 9007199254740992.0);
    delay *= 1.0 - policy_.jitter * u;
  }
  return delay;
}

bool is_retryable_io_error(const std::string& what) {
  // Lower-case scan so errno strings ("No space left on device") and the
  // injector's messages ("no space left on device", "short write") both hit.
  std::string lower(what.size(), '\0');
  std::transform(what.begin(), what.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(
                     c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c); });
  // "injected open failure" is the FaultInjector's fail/flaky-point message:
  // the only way tests can simulate a transient burst that clears.
  for (const char* needle :
       {"no space left", "enospc", "short write", "interrupted system call",
        "eintr", "resource temporarily unavailable", "eagain",
        "injected open failure"}) {
    if (lower.find(needle) != std::string::npos) return true;
  }
  return false;
}

RetryStats retry_io(const char* what, const BackoffPolicy& policy,
                    const std::function<void()>& op) {
  auto& metrics = obs::MetricsRegistry::global();
  Backoff backoff(policy);
  RetryStats stats;
  for (;;) {
    try {
      ++stats.attempts;
      op();
      stats.succeeded = true;
      if (stats.attempts > 1) metrics.counter("io.retry_successes").add();
      return stats;
    } catch (const CrashInjected&) {
      throw;  // a simulated kill -9 must not be retried
    } catch (const std::exception& e) {
      if (!is_retryable_io_error(e.what())) throw;  // fatal: crash-recovery path
      if (!backoff.should_retry(stats.attempts)) {
        metrics.counter("io.retry_exhausted").add();
        throw;
      }
      metrics.counter("io.retries").add();
      const double delay = backoff.delay_ms(stats.attempts - 1);
      ADR_WARN << what << ": transient IO failure (attempt " << stats.attempts
               << "/" << policy.max_attempts << ", retrying in " << delay
               << " ms): " << e.what();
      if (delay > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
      }
    }
  }
}

}  // namespace adr::util
