#pragma once
// Deterministic random number generation for trace synthesis.
//
// Everything in the synthetic-workload pipeline must be reproducible from a
// single seed, so we ship our own engine (xoshiro256**) instead of relying on
// std::default_random_engine, whose sequence is implementation-defined, and
// implement the distributions the Titan model needs (Zipf for core counts and
// file popularity, lognormal for durations and file sizes, Pareto for
// citation counts, Poisson/exponential for arrivals).

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace adr::util {

/// SplitMix64 — used to expand a user seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, seedable.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDF00DCAFEBABEULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream (used to give each synthetic user
  /// its own generator so per-user output is stable under reordering).
  Rng fork(std::uint64_t salt) {
    std::uint64_t s = (*this)() ^ (salt * 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(s));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform integer in [0, n) with Lemire's bounded rejection method.
  std::uint64_t bounded(std::uint64_t n) {
    if (n == 0) return (*this)();
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = -n % n;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Lognormal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Pareto (type I): support [xm, inf), shape alpha.
  double pareto(double xm, double alpha) {
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Poisson; inversion for small means, normal approximation for large.
  std::int64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
      const double l = std::exp(-mean);
      std::int64_t k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform();
      } while (p > l);
      return k - 1;
    }
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Zipf-distributed integers in [1, n] with exponent s, sampled in O(1) after
/// O(n) table construction (inverse-CDF with binary search). Suitable for the
/// popularity skews the Titan model uses (n up to a few million).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  /// Sample a rank in [1, n]; rank 1 is the most popular.
  std::size_t operator()(Rng& rng) const;

  std::size_t n() const { return n_; }
  double s() const { return s_; }

 private:
  std::size_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i+1)
};

}  // namespace adr::util
