#pragma once
// Crash-consistent artifact IO (DESIGN.md §10).
//
// Every durable artifact in the system (rank stores, snapshots, trace
// bundles) is written through AtomicWriter: payload goes to `<path>.tmp`,
// a versioned CRC32 footer is appended, the temp is optionally fsynced, and
// only then is it renamed over the target. A crash at any instant therefore
// leaves the target either fully old or fully new — never torn — and bit rot
// is caught by the footer checksum on the next load.
//
// Loads go through read_artifact()/load_verified(): the footer (when
// present) is stripped and verified; a mismatch quarantines the file
// (`.corrupt` rename + obs counter) so the caller can degrade gracefully
// instead of acting on silently wrong bytes. Files without a footer are
// accepted as legacy input (hand-written fixtures, pre-§10 artifacts) —
// callers that refuse unverified input set ReadOptions::require_footer.
//
// Footer format, always the last line of the artifact (compressed artifacts
// carry it inside the gzip stream):
//
//   #ADRCRC v1 crc32=<8 hex digits> bytes=<payload length>
//
// The checksum covers every payload byte above the footer line.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

namespace adr::util::io {

/// Incremental CRC-32 (zlib polynomial).
class Crc32 {
 public:
  void update(const char* data, std::size_t n);
  void update(const std::string& s) { update(s.data(), s.size()); }
  std::uint32_t value() const { return crc_; }
  void reset() { crc_ = 0; }

 private:
  std::uint32_t crc_ = 0;
};

inline constexpr char kFooterPrefix[] = "#ADRCRC";
inline constexpr int kFooterVersion = 1;

std::string make_footer(std::uint32_t crc, std::uint64_t payload_bytes);
/// Parses a footer line; false if `line` is not a well-formed footer.
bool parse_footer(const std::string& line, std::uint32_t& crc,
                  std::uint64_t& payload_bytes);

/// Thrown by load_verified() after the offending file has been quarantined.
class ArtifactCorrupt : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct Options {
  bool fsync = false;   // fsync temp (and its directory) before/after rename
  bool footer = true;   // append the CRC footer on commit
};

/// Process-wide default for Options::fsync (the CLI's --fsync flag).
void set_default_fsync(bool on);
bool default_fsync();

/// All-or-nothing file writer. Stream payload through stream() (or
/// write()/write_line()), then commit(); the target file is replaced only
/// inside commit(), via rename. If the writer is destroyed uncommitted the
/// temp file is removed — unless a fault-injected crash is in flight, in
/// which case it is left behind exactly as a real crash would leave it.
///
/// Fault points: io.atomic.open, io.atomic.write, io.atomic.pre_commit,
/// io.atomic.pre_rename, io.atomic.post_rename.
class AtomicWriter {
 public:
  explicit AtomicWriter(std::string path, Options opts = {});
  ~AtomicWriter();
  AtomicWriter(const AtomicWriter&) = delete;
  AtomicWriter& operator=(const AtomicWriter&) = delete;

  /// CRC-tracked payload stream (fault-injection aware).
  std::ostream& stream();
  void write(const std::string& text);
  void write_line(const std::string& line);  // appends '\n'

  /// Append the footer, flush (+fsync), and rename over the target. Throws
  /// std::runtime_error on any IO failure (the target is left untouched).
  void commit();
  /// Drop the temp file without touching the target.
  void abort();

  const std::string& path() const { return path_; }
  const std::string& tmp_path() const { return tmp_path_; }
  std::uint64_t payload_bytes() const;
  std::uint32_t payload_crc() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string path_;
  std::string tmp_path_;
};

/// Durably move `tmp` over `path` (shared by AtomicWriter and the gzip
/// snapshot writer): optional fsync of tmp, crash points around rename,
/// optional fsync of the parent directory.
void commit_tmp(const std::string& tmp, const std::string& path, bool fsync);

enum class ArtifactState {
  kVerified,  // footer present, checksum matches
  kLegacy,    // no footer (accepted for migration / hand-written input)
  kCorrupt,   // footer present but torn or checksum mismatch
};

struct Artifact {
  ArtifactState state = ArtifactState::kLegacy;
  std::string content;  // payload with the footer line stripped
  std::string error;    // set when state == kCorrupt
};

struct ReadOptions {
  bool require_footer = false;  // treat kLegacy as kCorrupt
};

/// Read a whole artifact (gzip-transparent by ".gz" suffix) and verify its
/// footer if present. Throws std::runtime_error only when the file cannot
/// be opened; corruption is reported in the return value.
Artifact read_artifact(const std::string& path, ReadOptions opts = {});

/// Rename `path` to the first free `<path>.corrupt[.N]`, log a warning, and
/// bump the io.quarantined counter. Returns the quarantine path ("" if the
/// rename itself failed).
std::string quarantine(const std::string& path, const std::string& reason);

/// read_artifact + quarantine-on-corrupt: returns the verified payload or
/// throws ArtifactCorrupt (after quarantining) / std::runtime_error (missing
/// file).
std::string load_verified(const std::string& path, ReadOptions opts = {});

}  // namespace adr::util::io
