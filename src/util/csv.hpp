#pragma once
// RFC-4180-style CSV reading/writing.
//
// All trace artifacts (job logs, publication lists, app logs, user registry)
// persist as CSV so a reproduction run can be driven either from synthesized
// traces or from site-local logs exported in the same shape.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace adr::util {

/// Split one CSV line into fields, honouring double-quote quoting and
/// "" escapes. Embedded newlines are not supported (trace files are
/// line-oriented).
std::vector<std::string> csv_split(const std::string& line, char sep = ',');

/// Join fields into one CSV line, quoting any field that needs it.
std::string csv_join(const std::vector<std::string>& fields, char sep = ',');

/// Streaming reader over an istream. Skips blank lines and `#`-prefixed
/// metadata lines (the io::AtomicWriter CRC footer); `header()` is the first
/// row when read_header() was requested.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in, char sep = ',');

  /// Read the first row as a header; returns false on empty input.
  bool read_header();

  /// Next data row; std::nullopt at EOF.
  std::optional<std::vector<std::string>> next();

  const std::vector<std::string>& header() const { return header_; }

  /// Column index for a header name, or npos.
  std::size_t column(const std::string& name) const;

  /// 1-based physical line number of the most recently returned row, and
  /// its raw text — context for ParseError messages and quarantine sidecars.
  std::size_t line() const { return line_; }
  const std::string& raw() const { return raw_; }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::istream& in_;
  char sep_;
  std::vector<std::string> header_;
  std::size_t line_ = 0;
  std::string raw_;
};

/// Streaming writer. Fault point: csv.row (crash before the Nth row).
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char sep = ',');
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char sep_;
};

}  // namespace adr::util
