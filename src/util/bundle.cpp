#include "util/bundle.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"
#include "util/parse.hpp"

namespace adr::util::io {

namespace {

namespace fsys = std::filesystem;

std::string hex8(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

}  // namespace

void commit_bundle(const std::string& dir,
                   const std::vector<std::string>& member_names) {
  const std::string manifest_path =
      dir + "/" + kBundleManifestName;
  // Drop any stale manifest *before* touching members: from here until the
  // final commit the bundle is visibly unsealed, so a crash can never leave
  // an old manifest vouching for new members.
  std::error_code ec;
  fsys::remove(manifest_path, ec);

  std::vector<BundleMember> members;
  members.reserve(member_names.size());
  for (const auto& name : member_names) {
    FaultInjector::global().crash_point("bundle.member");
    const Artifact artifact = read_artifact(dir + "/" + name);
    if (artifact.state == ArtifactState::kCorrupt) {
      throw std::runtime_error("commit_bundle: member " + name +
                               " failed verification: " + artifact.error);
    }
    Crc32 crc;
    crc.update(artifact.content);
    members.push_back({name, crc.value(),
                       static_cast<std::uint64_t>(artifact.content.size())});
  }

  FaultInjector::global().crash_point("bundle.pre_manifest");
  AtomicWriter writer(manifest_path, {.fsync = default_fsync()});
  CsvWriter w(writer.stream());
  w.write_row({"member", "crc32", "bytes"});
  for (const auto& m : members) {
    w.write_row({m.name, hex8(m.crc32), std::to_string(m.bytes)});
  }
  writer.commit();
  obs::MetricsRegistry::global().counter("bundle.commits").add();
}

BundleCheck verify_bundle(const std::string& dir) {
  BundleCheck check;
  const std::string manifest_path =
      dir + "/" + kBundleManifestName;
  if (!fsys::exists(manifest_path)) {
    check.state = BundleState::kUnsealed;
    return check;
  }

  const auto invalid = [&check](std::string error) {
    check.state = BundleState::kInvalid;
    check.error = std::move(error);
    obs::MetricsRegistry::global().counter("bundle.invalid").add();
    return check;
  };

  Artifact manifest;
  try {
    manifest = read_artifact(manifest_path, {.require_footer = true});
  } catch (const std::exception& e) {
    return invalid(std::string("manifest unreadable: ") + e.what());
  }
  if (manifest.state != ArtifactState::kVerified) {
    return invalid("manifest failed verification: " + manifest.error);
  }

  std::istringstream in(manifest.content);
  CsvReader reader(in);
  if (!reader.read_header() || reader.column("member") == CsvReader::npos ||
      reader.column("crc32") == CsvReader::npos ||
      reader.column("bytes") == CsvReader::npos) {
    return invalid("manifest has no member/crc32/bytes header");
  }
  while (auto row = reader.next()) {
    if (row->size() != 3) {
      return invalid("manifest row " + std::to_string(reader.line()) +
                     " malformed");
    }
    BundleMember m;
    m.name = (*row)[0];
    try {
      m.crc32 = static_cast<std::uint32_t>(
          std::stoul((*row)[1], nullptr, 16));
      m.bytes = std::stoull((*row)[2]);
    } catch (const std::exception&) {
      return invalid("manifest row " + std::to_string(reader.line()) +
                     " malformed");
    }
    check.members.push_back(std::move(m));
  }

  for (const auto& m : check.members) {
    const std::string path = dir + "/" + m.name;
    if (!fsys::exists(path)) {
      return invalid("member " + m.name + " missing");
    }
    Artifact artifact;
    try {
      artifact = read_artifact(path);
    } catch (const std::exception& e) {
      return invalid("member " + m.name + " unreadable: " + e.what());
    }
    if (artifact.state == ArtifactState::kCorrupt) {
      return invalid("member " + m.name +
                     " failed verification: " + artifact.error);
    }
    if (artifact.content.size() != m.bytes) {
      return invalid("member " + m.name + " is " +
                     std::to_string(artifact.content.size()) +
                     " payload bytes, manifest says " +
                     std::to_string(m.bytes));
    }
    Crc32 crc;
    crc.update(artifact.content);
    if (crc.value() != m.crc32) {
      return invalid("member " + m.name + " payload crc " + hex8(crc.value()) +
                     " != manifest " + hex8(m.crc32));
    }
  }
  check.state = BundleState::kValid;
  return check;
}

}  // namespace adr::util::io
