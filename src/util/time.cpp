#include "util/time.hpp"

#include <cstdio>

namespace adr::util {

std::int64_t days_from_civil(int y, int m, int d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);              // [0, 399]
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;             // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);            // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);            // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                 // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                         // [1, 31]
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;                            // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

TimePoint from_civil(int year, int month, int day) {
  return days_from_civil(year, month, day) * kSecondsPerDay;
}

CivilDate to_civil(TimePoint tp) {
  return civil_from_days(floor_to_day(tp) / kSecondsPerDay);
}

bool is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_year(int year) { return is_leap_year(year) ? 366 : 365; }

int day_of_year(TimePoint tp) {
  const CivilDate c = to_civil(tp);
  return static_cast<int>(floor_to_day(tp) / kSecondsPerDay -
                          days_from_civil(c.year, 1, 1)) +
         1;
}

std::string format_date(TimePoint tp) {
  const CivilDate c = to_civil(tp);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string format_datetime(TimePoint tp) {
  const CivilDate c = to_civil(tp);
  const TimePoint sod = tp - floor_to_day(tp);
  char buf[72];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02ld:%02ld:%02ld", c.year,
                c.month, c.day, static_cast<long>(sod / kSecondsPerHour),
                static_cast<long>((sod / kSecondsPerMinute) % 60),
                static_cast<long>(sod % 60));
  return buf;
}

std::string format_month(TimePoint tp) {
  const CivilDate c = to_civil(tp);
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", c.year, c.month);
  return buf;
}

bool parse_date(const std::string& s, TimePoint& out) {
  int y = 0, m = 0, d = 0;
  char trailing = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d%c", &y, &m, &d, &trailing) != 3) return false;
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  // Round-trip check rejects out-of-range days such as Feb 30.
  const TimePoint tp = from_civil(y, m, d);
  const CivilDate back = to_civil(tp);
  if (back.year != y || back.month != m || back.day != d) return false;
  out = tp;
  return true;
}

std::string format_duration_seconds(double seconds) {
  char buf[64];
  if (seconds < 0) seconds = 0;
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1000.0);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%dm %02ds", static_cast<int>(seconds) / 60,
                  static_cast<int>(seconds) % 60);
  } else {
    const int s = static_cast<int>(seconds);
    std::snprintf(buf, sizeof(buf), "%dh %02dm %02ds", s / 3600, (s / 60) % 60,
                  s % 60);
  }
  return buf;
}

}  // namespace adr::util
