#pragma once
// Fixed-size worker pool with a blocking parallel_for.
//
// ActiveDR's scan phase is data-parallel over disjoint user directories (the
// paper partitions by MPI rank; we partition the same way over threads).
// Workers pull contiguous index chunks from a shared atomic cursor, so uneven
// per-user costs (Fig. 12d) self-balance.
//
// Observability (registry names, see DESIGN.md "Observability"):
//   threadpool.tasks.submitted      counter, one per submit()
//   threadpool.parallel_for.calls   counter, one per parallel_for
//   threadpool.parallel_for.items   counter, indices executed
//   threadpool.parallel_for.chunks  counter, chunks dispatched
//                                   (= ceil(n / grain) per call)
//   threadpool.queue_wait           histogram, submit -> execution delay
//   threadpool.parallel_for         span, whole parallel_for duration
//
// While a parallel_for waits for its workers it drains the shared task
// queue itself, so a task may issue a nested parallel_for without
// deadlocking the pool.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace adr::util {

class ThreadPool {
 public:
  /// n = 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    const auto enqueued = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([this, task, enqueued] {
        note_task_started(enqueued);
        (*task)();
      });
    }
    note_task_submitted();
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for every i in [begin, end), blocking until done.
  /// `grain` controls the chunk size workers claim at a time (0 = auto).
  /// The calling thread participates, so the pool also works with size() == 1
  /// on single-core machines. Exceptions from fn are rethrown (first one);
  /// once one chunk throws, undispatched chunks are abandoned. Safe to call
  /// from inside a pool task (nested parallel_for): waiters drain the queue
  /// instead of blocking on it.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Run fn(shard_index, shard_count) on every worker plus the caller —
  /// the MPI-rank-style decomposition used by the snapshot scanner.
  void parallel_shards(const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();
  /// Pop and run one queued task if any; false when the queue is empty.
  bool try_run_one();
  void note_task_submitted();
  void note_task_started(std::chrono::steady_clock::time_point enqueued);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool sized from ACTIVEDR_THREADS (default: hardware).
ThreadPool& global_pool();

}  // namespace adr::util
