#pragma once
// Whole-bundle atomic commit (DESIGN.md §10.5).
//
// The §10 AtomicWriter protocol makes every *single* artifact old-or-new,
// but multi-file bundles (a `synth` trace directory, a daemon checkpoint)
// can still be torn *as a set*: a crash between member writes leaves some
// members new and some old, each individually verifying. The bundle
// manifest closes that hole: after every member is durably in place, a
// MANIFEST file recording each member's payload CRC32 and byte count is
// committed last (itself through AtomicWriter). A bundle is *valid* only
// when the manifest verifies and every member's payload matches its
// manifest row — so a crash at any instant leaves either a bundle with no
// (or a mismatching) manifest, which consumers refuse or treat as legacy,
// or a fully consistent one. Never a silently half-written set.
//
// Manifest format (CSV, CRC-footered like any §10 artifact):
//
//   member,crc32,bytes
//   users.csv,1a2b3c4d,10423
//   ...
//
// CRCs cover each member's *payload* (its own §10 footer stripped; gzip
// members are hashed decompressed), so the manifest survives a member
// being rewritten byte-identically and catches any content change.
//
// Fault points: bundle.member (crash before verifying the Nth member),
// bundle.pre_manifest (members verified, manifest not yet written); the
// manifest write itself passes through every io.atomic.* point.

#include <cstdint>
#include <string>
#include <vector>

namespace adr::util::io {

inline constexpr char kBundleManifestName[] = "MANIFEST";

/// One manifest row.
struct BundleMember {
  std::string name;        // file name relative to the bundle directory
  std::uint32_t crc32 = 0; // CRC of the member's payload (footer-stripped)
  std::uint64_t bytes = 0; // payload byte count
};

/// Seal `dir` as a bundle over exactly `member_names`: any stale manifest
/// is removed first (a crash can then never pair an old manifest with new
/// members), each member is read back and its payload CRC recorded, and
/// the manifest is committed last. Throws std::runtime_error if a member
/// is missing or fails its own footer verification.
void commit_bundle(const std::string& dir,
                   const std::vector<std::string>& member_names);

enum class BundleState {
  kValid,      ///< manifest verifies and every member matches it
  kUnsealed,   ///< no manifest (legacy / hand-assembled bundle)
  kInvalid,    ///< manifest present but torn, or a member missing/mismatched
};

struct BundleCheck {
  BundleState state = BundleState::kUnsealed;
  std::vector<BundleMember> members;  // manifest rows (empty when unsealed)
  std::string error;                  // first mismatch (kInvalid only)

  bool valid() const { return state == BundleState::kValid; }
};

/// Check `dir` against its manifest. Never throws on damage — an invalid
/// bundle is a *result* the caller degrades on (recover from the previous
/// checkpoint, refuse the trace directory), not an exception.
BundleCheck verify_bundle(const std::string& dir);

}  // namespace adr::util::io
