#include "util/csv.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "util/fault.hpp"

namespace adr::util {

std::vector<std::string> csv_split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"' && cur.empty()) {
      quoted = true;
    } else if (c == sep) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // tolerate CRLF input
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string csv_join(const std::vector<std::string>& fields, char sep) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out.push_back(sep);
    const std::string& f = fields[i];
    const bool needs_quote =
        f.find(sep) != std::string::npos || f.find('"') != std::string::npos ||
        f.find('\n') != std::string::npos;
    if (!needs_quote) {
      out += f;
    } else {
      out.push_back('"');
      for (char c : f) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
      }
      out.push_back('"');
    }
  }
  return out;
}

CsvReader::CsvReader(std::istream& in, char sep) : in_(in), sep_(sep) {}

bool CsvReader::read_header() {
  auto row = next();
  if (!row) return false;
  header_ = std::move(*row);
  return true;
}

std::optional<std::vector<std::string>> CsvReader::next() {
  std::string line;
  while (std::getline(in_, line)) {
    ++line_;
    if (line.empty() || line == "\r") continue;
    if (line[0] == '#') continue;  // metadata (e.g. the #ADRCRC footer)
    raw_ = line;
    if (!raw_.empty() && raw_.back() == '\r') raw_.pop_back();
    return csv_split(line, sep_);
  }
  return std::nullopt;
}

std::size_t CsvReader::column(const std::string& name) const {
  const auto it = std::find(header_.begin(), header_.end(), name);
  return it == header_.end() ? npos
                             : static_cast<std::size_t>(it - header_.begin());
}

CsvWriter::CsvWriter(std::ostream& out, char sep) : out_(out), sep_(sep) {}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  auto& inj = FaultInjector::global();
  if (inj.armed()) inj.crash_point("csv.row");
  out_ << csv_join(fields, sep_) << '\n';
}

}  // namespace adr::util
