#pragma once
// Minimal leveled logger.
//
// The retention pipeline reports progress (scan phases, retrospective passes,
// purge-target status) through this logger; benches and tests keep it at
// `warn` so their stdout stays machine-comparable. Level comes from
// set_level() or the ACTIVEDR_LOG environment variable
// (trace|debug|info|warn|error|off).

#include <sstream>
#include <string>

namespace adr::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug", "INFO", ... ; returns kInfo for unknown strings.
LogLevel parse_log_level(const std::string& s);

/// Sink a formatted message (thread-safe, writes to stderr).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace adr::util

#define ADR_LOG_AT(lvl)                       \
  if (::adr::util::log_level() > (lvl)) {     \
  } else                                      \
    ::adr::util::detail::LogLine(lvl)

#define ADR_TRACE ADR_LOG_AT(::adr::util::LogLevel::kTrace)
#define ADR_DEBUG ADR_LOG_AT(::adr::util::LogLevel::kDebug)
#define ADR_INFO ADR_LOG_AT(::adr::util::LogLevel::kInfo)
#define ADR_WARN ADR_LOG_AT(::adr::util::LogLevel::kWarn)
#define ADR_ERROR ADR_LOG_AT(::adr::util::LogLevel::kError)
