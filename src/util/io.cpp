#include "util/io.hpp"

#include <fcntl.h>
#include <unistd.h>
#include <zlib.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <streambuf>

#include "obs/metrics.hpp"
#include "util/fault.hpp"
#include "util/gzfile.hpp"
#include "util/logging.hpp"

namespace adr::util::io {

namespace fsys = std::filesystem;

void Crc32::update(const char* data, std::size_t n) {
  crc_ = static_cast<std::uint32_t>(
      ::crc32(crc_, reinterpret_cast<const Bytef*>(data),
              static_cast<uInt>(n)));
}

std::string make_footer(std::uint32_t crc, std::uint64_t payload_bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s v%d crc32=%08x bytes=%llu",
                kFooterPrefix, kFooterVersion, crc,
                static_cast<unsigned long long>(payload_bytes));
  return buf;
}

bool parse_footer(const std::string& line, std::uint32_t& crc,
                  std::uint64_t& payload_bytes) {
  int version = 0;
  unsigned int parsed_crc = 0;
  unsigned long long bytes = 0;
  char tail = '\0';
  const int n = std::sscanf(line.c_str(), "#ADRCRC v%d crc32=%8x bytes=%llu%c",
                            &version, &parsed_crc, &bytes, &tail);
  if (n != 3 || version != kFooterVersion) return false;
  crc = parsed_crc;
  payload_bytes = bytes;
  return true;
}

namespace {

obs::Counter& quarantined_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("io.quarantined");
  return c;
}

bool g_default_fsync = false;

void fsync_path(const std::string& path, bool directory) {
  const int flags = directory ? O_RDONLY | O_DIRECTORY : O_RDONLY;
  const int fd = ::open(path.c_str(), flags | O_CLOEXEC);
  if (fd < 0) {
    throw std::runtime_error("io: cannot open for fsync: " + path + ": " +
                             std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw std::runtime_error("io: fsync failed: " + path + ": " +
                             std::strerror(errno));
  }
}

/// Streambuf that forwards payload bytes to a destination buffer while
/// tracking CRC/length and honouring short-write/ENOSPC fault directives.
class FaultCrcBuf final : public std::streambuf {
 public:
  FaultCrcBuf(std::streambuf* dest, const char* point)
      : dest_(dest), point_(point) {}

  std::uint64_t bytes() const { return bytes_; }
  std::uint32_t crc() const { return crc_.value(); }
  bool failed() const { return failed_; }
  bool enospc() const { return enospc_; }

 protected:
  int overflow(int ch) override {
    if (traits_type::eq_int_type(ch, traits_type::eof())) return 0;
    const char c = traits_type::to_char_type(ch);
    return put(&c, 1) == 1 ? ch : traits_type::eof();
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    return put(s, n);
  }

  int sync() override { return dest_->pubsync(); }

 private:
  std::streamsize put(const char* s, std::streamsize n) {
    if (failed_) return 0;
    std::size_t allow = static_cast<std::size_t>(n);
    auto& inj = FaultInjector::global();
    if (inj.armed()) {
      const auto decision =
          inj.on_write(point_, bytes_, static_cast<std::size_t>(n));
      if (decision.fail) {
        failed_ = true;
        enospc_ = decision.enospc;
        allow = decision.allow;
      }
    }
    const std::streamsize written =
        allow > 0 ? dest_->sputn(s, static_cast<std::streamsize>(allow)) : 0;
    if (written > 0) {
      crc_.update(s, static_cast<std::size_t>(written));
      bytes_ += static_cast<std::uint64_t>(written);
    }
    if (written < static_cast<std::streamsize>(allow)) failed_ = true;
    // Report the partial count so the ostream sets badbit at the fault.
    return failed_ ? written : n;
  }

  std::streambuf* dest_;
  const char* point_;
  Crc32 crc_;
  std::uint64_t bytes_ = 0;
  bool failed_ = false;
  bool enospc_ = false;
};

}  // namespace

void set_default_fsync(bool on) { g_default_fsync = on; }
bool default_fsync() { return g_default_fsync; }

void commit_tmp(const std::string& tmp, const std::string& path, bool fsync) {
  auto& inj = FaultInjector::global();
  if (fsync) fsync_path(tmp, false);
  inj.crash_point("io.atomic.pre_rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("io: rename " + tmp + " -> " + path +
                             " failed: " + std::strerror(errno));
  }
  inj.crash_point("io.atomic.post_rename");
  if (fsync) {
    const auto dir = fsys::path(path).parent_path();
    fsync_path(dir.empty() ? "." : dir.string(), true);
  }
}

struct AtomicWriter::Impl {
  explicit Impl(const std::string& tmp)
      : file(tmp, std::ios::binary | std::ios::trunc),
        buf(file.rdbuf(), "io.atomic.write"),
        payload(&buf) {}

  std::ofstream file;
  FaultCrcBuf buf;
  std::ostream payload;
  Options opts;
  bool committed = false;
};

AtomicWriter::AtomicWriter(std::string path, Options opts)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  if (FaultInjector::global().should_fail("io.atomic.open")) {
    throw std::runtime_error("io: cannot open " + tmp_path_ +
                             " (injected open failure)");
  }
  impl_ = std::make_unique<Impl>(tmp_path_);
  impl_->opts = opts;
  if (!impl_->file) {
    throw std::runtime_error("io: cannot open " + tmp_path_ + ": " +
                             std::strerror(errno));
  }
}

AtomicWriter::~AtomicWriter() {
  if (!impl_ || impl_->committed) return;
  // A fault-injected crash must leave the temp file on disk, torn, exactly
  // as a real crash would; every other unwind cleans up.
  if (!FaultInjector::global().crashed()) abort();
}

std::ostream& AtomicWriter::stream() { return impl_->payload; }

void AtomicWriter::write(const std::string& text) { impl_->payload << text; }

void AtomicWriter::write_line(const std::string& line) {
  impl_->payload << line << '\n';
}

std::uint64_t AtomicWriter::payload_bytes() const { return impl_->buf.bytes(); }
std::uint32_t AtomicWriter::payload_crc() const { return impl_->buf.crc(); }

void AtomicWriter::abort() {
  if (!impl_) return;
  impl_->file.close();
  std::remove(tmp_path_.c_str());
  impl_->committed = true;  // nothing further to do on destruction
}

void AtomicWriter::commit() {
  auto& inj = FaultInjector::global();
  impl_->payload.flush();
  if (impl_->buf.failed() || !impl_->file) {
    throw std::runtime_error(
        "io: write failed: " + tmp_path_ +
        (impl_->buf.enospc() ? ": no space left on device" : ""));
  }
  inj.crash_point("io.atomic.pre_commit");
  if (impl_->opts.footer) {
    // The footer goes straight to the file buffer: it describes the payload
    // checksum, so it must not feed back into it.
    impl_->file << make_footer(impl_->buf.crc(), impl_->buf.bytes()) << '\n';
  }
  impl_->file.flush();
  if (!impl_->file) {
    throw std::runtime_error("io: footer write failed: " + tmp_path_);
  }
  impl_->file.close();
  commit_tmp(tmp_path_, path_, impl_->opts.fsync);
  impl_->committed = true;
}

Artifact read_artifact(const std::string& path, ReadOptions opts) {
  Artifact artifact;
  std::string content;
  if (has_gz_suffix(path)) {
    GzReader in(path);  // throws if unopenable
    while (auto line = in.next_line()) {
      content += *line;
      content.push_back('\n');
    }
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("io: cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    content = buf.str();
  }

  // The footer, if any, is the last non-empty line.
  std::size_t end = content.size();
  while (end > 0 && content[end - 1] == '\n') --end;
  const std::size_t line_start = content.rfind('\n', end ? end - 1 : 0);
  const std::size_t begin = line_start == std::string::npos ? 0 : line_start + 1;
  const std::string last = content.substr(begin, end - begin);

  if (last.compare(0, sizeof(kFooterPrefix) - 1, kFooterPrefix) != 0) {
    artifact.state = ArtifactState::kLegacy;
    artifact.content = std::move(content);
    if (opts.require_footer) {
      artifact.state = ArtifactState::kCorrupt;
      artifact.error = "missing required #ADRCRC footer";
      artifact.content.clear();
    }
    return artifact;
  }

  std::uint32_t expect_crc = 0;
  std::uint64_t expect_bytes = 0;
  if (!parse_footer(last, expect_crc, expect_bytes)) {
    artifact.state = ArtifactState::kCorrupt;
    artifact.error = "unparseable #ADRCRC footer: " + last;
    return artifact;
  }
  const std::string payload = content.substr(0, begin);
  if (payload.size() != expect_bytes) {
    artifact.state = ArtifactState::kCorrupt;
    artifact.error = "payload length " + std::to_string(payload.size()) +
                     " != footer bytes " + std::to_string(expect_bytes);
    return artifact;
  }
  Crc32 crc;
  crc.update(payload);
  if (crc.value() != expect_crc) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "crc32 %08x != footer %08x", crc.value(),
                  expect_crc);
    artifact.state = ArtifactState::kCorrupt;
    artifact.error = buf;
    return artifact;
  }
  artifact.state = ArtifactState::kVerified;
  artifact.content = std::move(payload);
  return artifact;
}

std::string quarantine(const std::string& path, const std::string& reason) {
  std::string target = path + ".corrupt";
  for (int i = 1; fsys::exists(target); ++i) {
    target = path + ".corrupt." + std::to_string(i);
  }
  quarantined_counter().add();
  if (std::rename(path.c_str(), target.c_str()) != 0) {
    ADR_WARN << "io: quarantine rename failed for " << path << " ("
             << std::strerror(errno) << "); reason: " << reason;
    return "";
  }
  ADR_WARN << "io: quarantined " << path << " -> " << target << ": " << reason;
  return target;
}

std::string load_verified(const std::string& path, ReadOptions opts) {
  Artifact artifact = read_artifact(path, opts);
  if (artifact.state == ArtifactState::kCorrupt) {
    const std::string where = quarantine(path, artifact.error);
    throw ArtifactCorrupt("io: corrupt artifact " + path + " (" +
                          artifact.error + ")" +
                          (where.empty() ? "" : "; quarantined to " + where));
  }
  return std::move(artifact.content);
}

}  // namespace adr::util::io
