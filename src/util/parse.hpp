#pragma once
// Checked numeric parsing and the trace-ingestion hardening policy
// (DESIGN.md §10.3).
//
// Every trace loader used to reach for std::stoull and friends, which throw
// an opaque std::invalid_argument ("stoull") that tells an operator nothing
// about *which* of a hundred million rows was bad. The parse_* helpers here
// are strict full-string from_chars parses that raise ParseError with
// file:line and column context; ParsePolicy then decides what a loader does
// with a bad row:
//
//   kStrict      (default) throw — one bad row aborts the ingest, with a
//                message naming the file, line, and column.
//   kPermissive  quarantine the row to a sidecar CSV (`<input>.quarantine`,
//                columns line,reason,detail,row) and keep going. Out-of-order
//                and duplicate rows are quarantined too, each under its own
//                reason with a per-reason obs counter
//                (ingest.quarantined.<reason>).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>

namespace adr::util {

class CsvWriter;

/// Strict-parse failure, carrying human-usable location context.
class ParseError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Where a value came from; feeds ParseError messages.
struct RowContext {
  const std::string* file = nullptr;  // source path (may be null)
  std::size_t line = 0;               // 1-based physical line, 0 = unknown

  std::string describe(const char* column) const;
};

/// Full-string checked parses: leading/trailing junk, empty fields, and
/// out-of-range values all raise ParseError naming `column` at `ctx`.
std::uint64_t parse_u64(const std::string& s, const RowContext& ctx,
                        const char* column);
std::int64_t parse_i64(const std::string& s, const RowContext& ctx,
                       const char* column);
std::uint32_t parse_u32(const std::string& s, const RowContext& ctx,
                        const char* column);
int parse_i32(const std::string& s, const RowContext& ctx, const char* column);
double parse_f64(const std::string& s, const RowContext& ctx,
                 const char* column);

enum class ParsePolicy {
  kStrict,      ///< malformed row -> ParseError (ingest aborts)
  kPermissive,  ///< malformed/out-of-order/duplicate row -> sidecar
};

const char* to_string(ParsePolicy policy);
/// Parses "strict" / "permissive"; returns false on anything else.
bool parse_parse_policy(const std::string& text, ParsePolicy& out);

/// What one load did; additive so bundle loaders can aggregate.
struct LoadStats {
  std::size_t rows_ok = 0;
  std::size_t malformed = 0;
  std::size_t out_of_order = 0;
  std::size_t duplicates = 0;
  std::string quarantine_path;  // set once a sidecar was actually written

  std::size_t quarantined() const {
    return malformed + out_of_order + duplicates;
  }
  LoadStats& operator+=(const LoadStats& other);
};

struct ParseOptions {
  ParsePolicy policy = ParsePolicy::kStrict;
  /// Sidecar target for permissive mode; defaults to `<input>.quarantine`.
  std::string quarantine_path;
  /// Optional accumulator (aggregated with +=, not overwritten).
  LoadStats* stats = nullptr;
};

/// Sidecar writer for permissive mode. Lazily creates the file on the first
/// quarantined row and bumps ingest.quarantined.<reason> per row.
class RowQuarantine {
 public:
  RowQuarantine(std::string input_path, std::string sidecar_path);
  ~RowQuarantine();

  static constexpr const char* kMalformed = "malformed";
  static constexpr const char* kOutOfOrder = "out_of_order";
  static constexpr const char* kDuplicate = "duplicate";

  void add(std::size_t line, const char* reason, const std::string& detail,
           const std::string& raw_row);

  std::size_t count() const { return count_; }
  /// "" until the first row forced the sidecar into existence.
  const std::string& sidecar_path() const {
    return count_ ? sidecar_path_ : empty_;
  }

  /// Fold this sidecar's tallies into `stats`.
  void finish(LoadStats* stats) const;

 private:
  std::string input_path_;
  std::string sidecar_path_;
  std::string empty_;
  std::unique_ptr<std::ofstream> out_;
  std::unique_ptr<CsvWriter> writer_;
  std::size_t count_ = 0;
  std::size_t malformed_ = 0;
  std::size_t out_of_order_ = 0;
  std::size_t duplicates_ = 0;
};

}  // namespace adr::util
