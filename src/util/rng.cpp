#include "util/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace adr::util {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be >= 1");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  const double norm = 1.0 / acc;
  for (double& c : cdf_) c *= norm;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

}  // namespace adr::util
