#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>

namespace adr::util {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      cfg.positional_.push_back(std::move(tok));
      continue;
    }
    tok = tok.substr(2);
    const std::size_t eq = tok.find('=');
    if (eq != std::string::npos) {
      cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      cfg.set(tok, argv[++i]);
    } else {
      cfg.set(tok, "true");
    }
  }
  return cfg;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  Config cfg;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: malformed line " +
                               std::to_string(lineno) + " in " + path);
    }
    cfg.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
  return cfg;
}

void Config::set(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
}

bool Config::contains(const std::string& key) const {
  return entries_.count(key) != 0;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.entries_) entries_[k] = v;
  positional_.insert(positional_.end(), other.positional_.begin(),
                     other.positional_.end());
}

std::optional<std::string> Config::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& dflt) const {
  const auto v = get(key);
  return v ? *v : dflt;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  try {
    return std::stoll(*v);
  } catch (...) {
    throw std::runtime_error("Config: key '" + key + "' is not an integer: " + *v);
  }
}

double Config::get_double(const std::string& key, double dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  try {
    return std::stod(*v);
  } catch (...) {
    throw std::runtime_error("Config: key '" + key + "' is not a number: " + *v);
  }
}

bool Config::get_bool(const std::string& key, bool dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on")
    return true;
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off")
    return false;
  throw std::runtime_error("Config: key '" + key + "' is not a boolean: " + *v);
}

}  // namespace adr::util
