#pragma once
// Retry-with-backoff for transient IO faults (DESIGN.md §14).
//
// A resident daemon cannot treat every IO hiccup as fatal: EINTR, a brief
// ENOSPC while a purge is freeing space, or a short write against a
// saturated device are *transient* — the correct response is to retry with
// jittered exponential backoff, not to crash-and-recover (that path costs a
// full checkpoint restore plus a WAL tail replay). Corruption, injected
// crashes, and logic errors stay fatal: retrying those would turn a clean
// old-or-new crash state into a hybrid.
//
// Two pieces:
//  * Backoff — the delay schedule: delay(i) = initial · mult^i, capped, with
//    a deterministic jitter fraction drawn from a seeded stream so a failing
//    run replays byte-for-byte (the same discipline as util::FaultInjector).
//  * retry_io — run an operation, classify any failure via
//    classify_io_error, re-run retryable ones within the attempt budget.
//    util::CrashInjected is always rethrown immediately: a simulated
//    kill -9 must never be retried into oblivion.
//
// Observability: counters io.retries (re-runs performed), io.retry_successes
// (ops that eventually succeeded after ≥ 1 retry), io.retry_exhausted
// (ops that failed every attempt and surfaced the final error).

#include <cstdint>
#include <functional>
#include <string>

namespace adr::util {

struct BackoffPolicy {
  /// Total attempts (first try + retries). 1 = no retry.
  int max_attempts = 4;
  double initial_delay_ms = 1.0;
  double multiplier = 2.0;
  double max_delay_ms = 200.0;
  /// Fraction of each delay randomized away: delay · (1 − jitter·u),
  /// u ∈ [0, 1) from the seeded stream. 0 = fully deterministic delays.
  double jitter = 0.5;
  std::uint64_t seed = 0x5EEDBACC0FFULL;
};

/// The delay schedule. Stateful only for the jitter stream.
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy) : policy_(policy), rng_(policy.seed) {}

  /// Jittered delay before retry `attempt` (0-based: the delay after the
  /// first failure is delay_ms(0)).
  double delay_ms(int attempt);

  bool should_retry(int attempts_done) const {
    return attempts_done < policy_.max_attempts;
  }
  const BackoffPolicy& policy() const { return policy_; }

 private:
  BackoffPolicy policy_;
  std::uint64_t rng_;
};

/// Is this failure worth retrying? Classifies by message because the IO
/// layer surfaces faults as std::runtime_error text (both real errno
/// strings and the FaultInjector's short-write/ENOSPC messages).
bool is_retryable_io_error(const std::string& what);

struct RetryStats {
  int attempts = 0;     ///< times `op` ran
  bool succeeded = false;
};

/// Run `op`, retrying transient failures per `policy`. Sleeps the jittered
/// delay between attempts. Returns stats on success; rethrows on a fatal
/// error or once the attempt budget is exhausted. CrashInjected is never
/// caught — a simulated crash propagates on the first attempt.
RetryStats retry_io(const char* what, const BackoffPolicy& policy,
                    const std::function<void()>& op);

}  // namespace adr::util
