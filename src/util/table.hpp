#pragma once
// Console table rendering for the bench harnesses. Every bench prints the
// same rows the paper's tables/figures report; this keeps the formatting in
// one place so `bench_output.txt` is diffable across runs.

#include <iosfwd>
#include <string>
#include <vector>

namespace adr::util {

class Table {
 public:
  explicit Table(std::string title = "");

  Table& set_headers(std::vector<std::string> headers);
  Table& add_row(std::vector<std::string> cells);

  /// Aligned, boxed, written to `out`. Numeric-looking cells right-align.
  void print(std::ostream& out) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helpers used throughout the benches.
std::string fmt_double(double v, int decimals = 3);
std::string fmt_int(std::int64_t v);  ///< thousands separators: 1,234,567

}  // namespace adr::util
