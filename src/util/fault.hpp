#pragma once
// Deterministic fault injection for the durability layer (DESIGN.md §10).
//
// A retention engine's persistence code is only trustworthy if it can be
// crashed on purpose: every artifact writer (util::io::AtomicWriter,
// GzWriter, CsvWriter, the ledger's append stream) consults the process-wide
// FaultInjector at named *points*, and a test (or an operator, via the CLI's
// --fault-spec) arms directives against those points. All triggering is
// deterministic: hit counters and byte offsets are exact, and probabilistic
// directives draw from a seeded xoshiro stream so a failing run replays
// byte-for-byte from its spec + seed.
//
// Spec grammar (';'-separated directives):
//
//   directive := point ':' action ['@' N] ['?' P]
//   action    := fail | crash | short | enospc | stall | flaky
//
//   point:fail        fail every matching call from the Nth on (open
//                     refused, close error); N defaults to 1.
//   point:flaky@N     fail the first N matching calls, then succeed — the
//                     *transient* fault (a burst that clears), paired with
//                     util::retry_io in tests; N defaults to 1.
//   point:crash       throw CrashInjected at the Nth matching call. Writers
//                     treat a fired crash as a real crash: temp files and
//                     partial appends are left on disk exactly as they were.
//   point:short@N     writes through the point stop after byte N (the write
//                     that crosses N is truncated, then the stream fails).
//   point:enospc@N    like short@N but surfaced as an out-of-space error.
//   point:stall@N     sleep N milliseconds at every matching crash point —
//                     the chaos harness's "stalled trigger" lever (a slow
//                     metadata scan, a wedged backend) for exercising the
//                     serve watchdog without real load.
//   ...?P             arm the directive with probability P per hit, drawn
//                     from the seeded stream (deterministic given the seed).
//
// Registered points (kept in sync with DESIGN.md §10):
//   io.atomic.open         AtomicWriter: temp-file open               (fail)
//   io.atomic.write        AtomicWriter: payload bytes        (short/enospc)
//   io.atomic.pre_commit   AtomicWriter: before the CRC footer       (crash)
//   io.atomic.pre_rename   AtomicWriter: temp durable, before rename (crash)
//   io.atomic.post_rename  AtomicWriter: after rename                (crash)
//   io.append.open         PurgeLedger: append-stream open            (fail)
//   io.append.write        PurgeLedger: appended bytes        (short/enospc)
//   csv.row                CsvWriter: before writing the Nth row     (crash)
//   gz.open                GzWriter: open                             (fail)
//   gz.write               GzWriter: payload bytes            (short/enospc)
//   gz.close               GzWriter: close/flush                      (fail)
//   wal.append.open        EventLogWriter: open-segment open          (fail)
//   wal.append.write       EventLogWriter: record bytes       (short/enospc)
//   wal.seal.pre_remove    EventLogWriter: .seg committed, .open
//                          not yet removed                           (crash)
//   bundle.member          commit_bundle: before hashing the Nth
//                          member                                    (crash)
//   bundle.pre_manifest    commit_bundle: members verified, MANIFEST
//                          not yet written                           (crash)
//   serve.post_apply       Daemon: WAL batch applied in memory,
//                          nothing persisted                         (crash)
//   serve.checkpoint.prune Daemon: new checkpoint committed, old one
//                          not yet removed                           (crash)
//   service.evaluate       Service: before the evaluator advance (crash/stall)
//   service.purge          Service: ranks ready, before the purge
//                          policy runs                         (crash/stall)
//   service.checkpoint     Service: before any checkpoint file is
//                          written                             (crash/stall)
//   spill.append.write     SpillLog: appended bytes             (short/enospc)

#include <cstdint>
#include <mutex>
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace adr::util {

/// Thrown when a `crash` directive fires. Simulates a hard crash in-process:
/// callers must NOT clean up temp state when one of these is in flight (the
/// writers check FaultInjector::crashed() in their destructors), so the
/// filesystem is left exactly as a real crash would leave it.
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(const std::string& point)
      : std::runtime_error("injected crash at " + point), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class FaultInjector {
 public:
  enum class Action { kFail, kCrash, kShortWrite, kEnospc, kStall, kFlaky };

  struct Directive {
    std::string point;
    Action action = Action::kFail;
    std::uint64_t arg = 1;    // hit index (fail/crash), byte offset (writes),
                              // or sleep milliseconds (stall)
    double probability = 1.0; // per-hit arming chance, seeded stream
    std::uint64_t hits = 0;   // calls seen (fail/crash points)
    int rolled = 0;           // write points: 0 = pending, 1 = armed, -1 = no
    bool fired = false;
  };

  /// What a write point may do with an n-byte write starting at `offset`.
  struct WriteDecision {
    std::size_t allow;  // bytes to pass through (== n when unconstrained)
    bool fail = false;
    bool enospc = false;
  };

  /// The process-wide injector every IO path consults. Unarmed checks are a
  /// single relaxed atomic load, so leaving the hooks compiled in is free.
  static FaultInjector& global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Replace all directives with `spec` (see grammar above). Throws
  /// std::invalid_argument on a malformed spec. An empty spec disarms.
  void configure(const std::string& spec, std::uint64_t seed = 0);
  void clear();

  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }
  /// True once any crash directive fired; writers leave temp state in place.
  bool crashed() const noexcept {
    return crashed_.load(std::memory_order_relaxed);
  }

  /// Crash point: throws CrashInjected when an armed crash directive for
  /// `point` reaches its hit count. Armed stall directives for the same
  /// point sleep here instead (every hit) — crash points double as the
  /// slow-phase injection sites.
  void crash_point(const char* point);

  /// Fail point: true when an armed fail directive for `point` reaches its
  /// hit count (open refused, close reports an error, ...).
  bool should_fail(const char* point);

  /// Write point: how much of an n-byte write at `offset` goes through.
  WriteDecision on_write(const char* point, std::uint64_t offset,
                         std::size_t n);

  /// Directives whose trigger fired at least once (for test assertions that
  /// an armed fault was actually exercised).
  std::size_t fired_count() const;

 private:
  bool roll(Directive& d);  // probability gate (locked by caller)

  mutable std::mutex mutex_;
  std::vector<Directive> directives_;
  std::uint64_t rng_state_ = 0;  // splitmix64 stream for `?P` directives
  std::atomic<bool> armed_{false};
  std::atomic<bool> crashed_{false};
};

}  // namespace adr::util
