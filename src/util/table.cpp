#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <ostream>

namespace adr::util {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::set_headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) digit = true;
    else if (c != '.' && c != '-' && c != '+' && c != '%' && c != ',' &&
             c != 'e' && c != 'E')
      return false;
  }
  return digit;
}

}  // namespace

void Table::print(std::ostream& out) const {
  std::size_t cols = headers_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return;

  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = std::max(width[c], headers_[c].size());
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < cols; ++c)
      out << std::string(width[c] + 2, '-') << '+';
    out << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells, bool align_numeric) {
    out << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = width[c] - cell.size();
      const bool right = align_numeric && looks_numeric(cell);
      out << ' ';
      if (right) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << "== " << title_ << " ==\n";
  rule();
  if (!headers_.empty()) {
    emit(headers_, false);
    rule();
  }
  for (const auto& r : rows_) emit(r, true);
  rule();
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_int(std::int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

}  // namespace adr::util
