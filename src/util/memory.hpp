#pragma once
// Process memory probes for the Fig. 12a reproduction (trace-loading memory
// footprint). Linux-specific: reads /proc/self/status. Returns 0 where the
// proc filesystem is unavailable so callers degrade gracefully.

#include <cstdint>

namespace adr::util {

/// Current resident set size in bytes (VmRSS).
std::uint64_t current_rss_bytes();

/// Peak resident set size in bytes (VmHWM).
std::uint64_t peak_rss_bytes();

/// RAII delta probe: bytes of RSS growth across a scope.
class RssDelta {
 public:
  RssDelta() : start_(current_rss_bytes()) {}
  /// May be "negative" growth; clamped at 0.
  std::uint64_t bytes() const {
    const std::uint64_t now = current_rss_bytes();
    return now > start_ ? now - start_ : 0;
  }

 private:
  std::uint64_t start_;
};

}  // namespace adr::util
