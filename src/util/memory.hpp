#pragma once
// Process memory probes for the Fig. 12a reproduction (trace-loading memory
// footprint) and the §15 scale tier. Linux-specific: reads
// /proc/self/status. Returns 0 where the proc filesystem is unavailable so
// callers degrade gracefully.
//
// Header-only on purpose: obs/span.cpp samples these into the proc.rss_*
// gauges, and adr_obs sits *below* adr_util in the link order (util reports
// through obs) — an out-of-line definition in adr_util would be unresolvable
// from obs.

#include <cstdint>
#include <cstdio>
#include <cstring>

namespace adr::util {

namespace detail {

inline std::uint64_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  unsigned long kb = 0;  // NOLINT(google-runtime-int) — matches %lu
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, key_len) == 0) {
      std::sscanf(line + key_len, ": %lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return static_cast<std::uint64_t>(kb) * 1024;
}

}  // namespace detail

/// Current resident set size in bytes (VmRSS).
inline std::uint64_t current_rss_bytes() {
  return detail::read_status_kb("VmRSS");
}

/// Peak resident set size in bytes (VmHWM).
inline std::uint64_t peak_rss_bytes() { return detail::read_status_kb("VmHWM"); }

/// Scale-tier alias for peak_rss_bytes() — the name used by bench_scale and
/// the obs proc.rss_peak_bytes gauge (DESIGN.md §15).
inline std::uint64_t rss_peak() { return peak_rss_bytes(); }

/// RAII delta probe: bytes of RSS growth across a scope.
class RssDelta {
 public:
  RssDelta() : start_(current_rss_bytes()) {}
  /// May be "negative" growth; clamped at 0.
  std::uint64_t bytes() const {
    const std::uint64_t now = current_rss_bytes();
    return now > start_ ? now - start_ : 0;
  }

 private:
  std::uint64_t start_;
};

}  // namespace adr::util
