#include "util/gzfile.hpp"

#include <zlib.h>

#include <stdexcept>

namespace adr::util {

bool has_gz_suffix(const std::string& path) {
  return path.size() >= 3 && path.compare(path.size() - 3, 3, ".gz") == 0;
}

GzWriter::GzWriter(const std::string& path) : path_(path) {
  file_ = gzopen(path.c_str(), "wb");
  if (!file_) throw std::runtime_error("GzWriter: cannot open " + path);
}

GzWriter::~GzWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; the explicit close() reports errors.
  }
}

void GzWriter::write_line(const std::string& line) {
  if (!file_) throw std::runtime_error("GzWriter: closed: " + path_);
  gzFile gz = static_cast<gzFile>(file_);
  if (gzwrite(gz, line.data(), static_cast<unsigned>(line.size())) !=
          static_cast<int>(line.size()) ||
      gzputc(gz, '\n') != '\n') {
    throw std::runtime_error("GzWriter: write failed: " + path_);
  }
}

void GzWriter::close() {
  if (!file_) return;
  gzFile gz = static_cast<gzFile>(file_);
  file_ = nullptr;
  if (gzclose(gz) != Z_OK) {
    throw std::runtime_error("GzWriter: close failed: " + path_);
  }
}

GzReader::GzReader(const std::string& path) : path_(path) {
  file_ = gzopen(path.c_str(), "rb");
  if (!file_) throw std::runtime_error("GzReader: cannot open " + path);
}

GzReader::~GzReader() {
  if (file_) gzclose(static_cast<gzFile>(file_));
}

std::optional<std::string> GzReader::next_line() {
  gzFile gz = static_cast<gzFile>(file_);
  std::string line;
  char buf[4096];
  for (;;) {
    if (gzgets(gz, buf, sizeof(buf)) == nullptr) {
      if (line.empty()) return std::nullopt;
      return line;  // final line without newline
    }
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    // Buffer filled mid-line; keep reading.
  }
}

}  // namespace adr::util
