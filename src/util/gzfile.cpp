#include "util/gzfile.hpp"

#include <zlib.h>

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace adr::util {

namespace {

obs::Counter& gz_close_failures_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("io.gz_close_failures");
  return c;
}

}  // namespace

bool has_gz_suffix(const std::string& path) {
  return path.size() >= 3 && path.compare(path.size() - 3, 3, ".gz") == 0;
}

GzWriter::GzWriter(const std::string& path) : path_(path) {
  if (FaultInjector::global().should_fail("gz.open")) {
    throw std::runtime_error("GzWriter: cannot open " + path +
                             " (injected open failure)");
  }
  file_ = gzopen(path.c_str(), "wb");
  if (!file_) throw std::runtime_error("GzWriter: cannot open " + path);
}

GzWriter::~GzWriter() {
  try {
    close();
  } catch (const std::exception& e) {
    // Destructor must not throw, but a swallowed close is a swallowed flush:
    // the file may be missing its tail. Make the loss observable.
    gz_close_failures_counter().add();
    ADR_WARN << "GzWriter: close failed in destructor for " << path_ << ": "
             << e.what();
  }
}

void GzWriter::write_line(const std::string& line) {
  if (!file_) throw std::runtime_error("GzWriter: closed: " + path_);
  gzFile gz = static_cast<gzFile>(file_);
  auto& inj = FaultInjector::global();
  std::size_t allow = line.size() + 1;  // payload + '\n'
  bool injected = false;
  if (inj.armed()) {
    const auto decision = inj.on_write("gz.write", bytes_, line.size() + 1);
    if (decision.fail) {
      injected = true;
      allow = decision.allow;
    }
  }
  const std::size_t body = std::min(allow, line.size());
  if (body > 0 &&
      gzwrite(gz, line.data(), static_cast<unsigned>(body)) !=
          static_cast<int>(body)) {
    throw std::runtime_error("GzWriter: write failed: " + path_);
  }
  bytes_ += body;
  if (!injected) {
    if (gzputc(gz, '\n') != '\n') {
      throw std::runtime_error("GzWriter: write failed: " + path_);
    }
    ++bytes_;
    return;
  }
  if (allow > line.size() && gzputc(gz, '\n') == '\n') ++bytes_;
  throw std::runtime_error("GzWriter: write failed: " + path_ +
                           " (injected short write)");
}

void GzWriter::close() {
  if (!file_) return;
  gzFile gz = static_cast<gzFile>(file_);
  file_ = nullptr;
  const bool injected = FaultInjector::global().should_fail("gz.close");
  const int rc = gzclose(gz);  // always actually close; never leak the fd
  if (rc != Z_OK || injected) {
    throw std::runtime_error("GzWriter: close failed: " + path_ +
                             (injected ? " (injected)" : ""));
  }
}

GzReader::GzReader(const std::string& path) : path_(path) {
  file_ = gzopen(path.c_str(), "rb");
  if (!file_) throw std::runtime_error("GzReader: cannot open " + path);
}

GzReader::~GzReader() {
  if (file_) gzclose(static_cast<gzFile>(file_));
}

std::optional<std::string> GzReader::next_line() {
  gzFile gz = static_cast<gzFile>(file_);
  std::string line;
  char buf[4096];
  for (;;) {
    if (gzgets(gz, buf, sizeof(buf)) == nullptr) {
      if (line.empty()) return std::nullopt;
      return line;  // final line without newline
    }
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    // Buffer filled mid-line; keep reading.
  }
}

}  // namespace adr::util
