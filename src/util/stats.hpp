#pragma once
// Descriptive statistics used by the experiment harnesses: online moments,
// quantiles / five-number summaries (Fig. 8's box plots), and labelled
// histograms (the paper's miss-ratio-range bars in Figs. 1 and 6).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adr::util {

/// Welford online accumulator: count / mean / variance / min / max / sum.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated quantile of an unsorted sample (q in [0,1]).
/// Returns 0 for an empty sample.
double quantile(std::vector<double> sample, double q);

/// The box-plot statistics reported per user group in Fig. 8.
struct FiveNumberSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;  ///< the paper's "green triangle"
  std::size_t count = 0;
};

FiveNumberSummary five_number_summary(const std::vector<double>& sample);

/// Histogram over explicit right-closed bins (lo, hi]; values outside all
/// bins are counted separately. Bin labels are caller-provided so the bench
/// output can match the paper's axis labels exactly ("1%-5%", "5%-10%", ...).
class RangeHistogram {
 public:
  struct Bin {
    std::string label;
    double lo;  ///< exclusive
    double hi;  ///< inclusive
    std::size_t count = 0;
  };

  void add_bin(std::string label, double lo, double hi);
  void add(double value);

  const std::vector<Bin>& bins() const { return bins_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// The paper's Fig. 1/6 bucketing of daily miss ratios:
  /// 1%-5%, 5%-10%, 10%-20%, ..., 90%-100%.
  static RangeHistogram paper_miss_ratio_bins();

 private:
  std::vector<Bin> bins_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Pretty-print byte counts the way the paper's figures do (PB for Fig. 9/10,
/// MiB for Fig. 12a).
std::string format_bytes(double bytes);

/// Fraction -> "12.34%".
std::string format_percent(double fraction, int decimals = 2);

}  // namespace adr::util
