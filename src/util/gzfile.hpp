#pragma once
// Line-oriented gzip file IO (zlib).
//
// Spider II metadata snapshots are "a series of gzipped text files" (§4.5);
// the snapshot reader/writer uses these wrappers whenever a path ends in
// ".gz" so trace bundles can be stored the way the paper's dataset was.

#include <cstdint>
#include <optional>
#include <string>

namespace adr::util {

/// True if the path names a gzip file by extension.
bool has_gz_suffix(const std::string& path);

/// Writes lines to a gzip-compressed file. Throws std::runtime_error on
/// open/write failure. Flushes and closes on destruction; a close failure
/// on that path is logged and counted (io.gz_close_failures), never thrown.
/// Fault points: gz.open, gz.write, gz.close (util/fault.hpp).
class GzWriter {
 public:
  explicit GzWriter(const std::string& path);
  ~GzWriter();
  GzWriter(const GzWriter&) = delete;
  GzWriter& operator=(const GzWriter&) = delete;

  /// Write one line (a '\n' is appended).
  void write_line(const std::string& line);

  void close();

  /// Uncompressed payload bytes written so far (line bytes + newlines).
  std::uint64_t bytes_written() const { return bytes_; }

 private:
  void* file_ = nullptr;  // gzFile, kept opaque to avoid leaking <zlib.h>
  std::string path_;
  std::uint64_t bytes_ = 0;
};

/// Reads lines from a gzip-compressed file. Also accepts uncompressed input
/// (zlib transparently passes it through).
class GzReader {
 public:
  explicit GzReader(const std::string& path);
  ~GzReader();
  GzReader(const GzReader&) = delete;
  GzReader& operator=(const GzReader&) = delete;

  /// Next line without its trailing newline; nullopt at EOF.
  std::optional<std::string> next_line();

 private:
  void* file_ = nullptr;
  std::string path_;
};

}  // namespace adr::util
