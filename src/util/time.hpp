#pragma once
// Calendar and timestamp utilities.
//
// All trace timestamps in ActiveDR are plain UTC epoch seconds (int64).
// The retention algorithms only ever need differences and day-granularity
// bucketing, so we avoid <chrono> time zones entirely and provide the small
// set of civil-date conversions the simulator and report printers need.

#include <cstdint>
#include <string>

namespace adr::util {

/// Seconds since the UNIX epoch, UTC.
using TimePoint = std::int64_t;
/// Difference of two TimePoints, in seconds.
using Duration = std::int64_t;

inline constexpr Duration kSecondsPerMinute = 60;
inline constexpr Duration kSecondsPerHour = 3600;
inline constexpr Duration kSecondsPerDay = 86400;
inline constexpr Duration kSecondsPerWeek = 7 * kSecondsPerDay;

/// Whole days -> seconds.
constexpr Duration days(std::int64_t d) { return d * kSecondsPerDay; }
/// Whole hours -> seconds.
constexpr Duration hours(std::int64_t h) { return h * kSecondsPerHour; }

/// A Gregorian calendar date.
struct CivilDate {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

/// Days since the epoch for a civil date (Howard Hinnant's algorithm).
std::int64_t days_from_civil(int year, int month, int day);

/// Inverse of days_from_civil.
CivilDate civil_from_days(std::int64_t days_since_epoch);

/// Midnight UTC of the given civil date.
TimePoint from_civil(int year, int month, int day);

/// Civil date containing the given time point.
CivilDate to_civil(TimePoint tp);

/// True for Gregorian leap years.
bool is_leap_year(int year);

/// Number of days in the given civil year (365 or 366).
int days_in_year(int year);

/// 1-based ordinal day within its year (Jan 1 -> 1).
int day_of_year(TimePoint tp);

/// "YYYY-MM-DD".
std::string format_date(TimePoint tp);

/// "YYYY-MM-DD hh:mm:ss" (UTC).
std::string format_datetime(TimePoint tp);

/// "YYYY-MM" — the month-bucket label used by the paper's Fig. 7 x-axis.
std::string format_month(TimePoint tp);

/// Parse "YYYY-MM-DD" (strict); returns false on malformed input.
bool parse_date(const std::string& s, TimePoint& out);

/// Floor tp to midnight UTC.
constexpr TimePoint floor_to_day(TimePoint tp) {
  // Handles negative tp correctly (floor, not trunc).
  const TimePoint q = tp / kSecondsPerDay;
  const TimePoint r = tp % kSecondsPerDay;
  return (r < 0 ? q - 1 : q) * kSecondsPerDay;
}

/// Number of whole-or-partial days between two time points, ceil((b-a)/day).
/// Used by the activeness evaluator's period math (Eq. 1/4).
constexpr std::int64_t ceil_days_between(TimePoint a, TimePoint b) {
  const Duration diff = b - a;
  if (diff <= 0) return 0;
  return (diff + kSecondsPerDay - 1) / kSecondsPerDay;
}

/// Human-readable duration, e.g. "1h 02m 03s", "45s", "730ms".
std::string format_duration_seconds(double seconds);

}  // namespace adr::util
