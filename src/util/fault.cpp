#include "util/fault.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/rng.hpp"

namespace adr::util {

namespace {

FaultInjector::Action parse_action(const std::string& text,
                                   const std::string& directive) {
  if (text == "fail") return FaultInjector::Action::kFail;
  if (text == "crash") return FaultInjector::Action::kCrash;
  if (text == "short") return FaultInjector::Action::kShortWrite;
  if (text == "enospc") return FaultInjector::Action::kEnospc;
  if (text == "stall") return FaultInjector::Action::kStall;
  if (text == "flaky") return FaultInjector::Action::kFlaky;
  throw std::invalid_argument("fault spec: unknown action '" + text +
                              "' in '" + directive +
                              "' (expected fail, crash, short, enospc, "
                              "stall, or flaky)");
}

std::uint64_t parse_uint(const std::string& text,
                         const std::string& directive) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("fault spec: bad number '" + text + "' in '" +
                                directive + "'");
  }
  return std::strtoull(text.c_str(), nullptr, 10);
}

}  // namespace

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::configure(const std::string& spec, std::uint64_t seed) {
  std::vector<Directive> parsed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t end = std::min(spec.find(';', begin), spec.size());
    std::string item = spec.substr(begin, end - begin);
    begin = end + 1;
    // Trim surrounding whitespace so multi-line specs read naturally.
    const std::size_t first = item.find_first_not_of(" \t\n");
    if (first == std::string::npos) continue;
    item = item.substr(first, item.find_last_not_of(" \t\n") - first + 1);

    Directive d;
    const std::size_t qmark = item.find('?');
    if (qmark != std::string::npos) {
      const std::string prob = item.substr(qmark + 1);
      char* tail = nullptr;
      d.probability = std::strtod(prob.c_str(), &tail);
      if (prob.empty() || *tail != '\0' || d.probability < 0.0 ||
          d.probability > 1.0) {
        throw std::invalid_argument("fault spec: bad probability '" + prob +
                                    "' in '" + item + "'");
      }
      item = item.substr(0, qmark);
    }
    const std::size_t at = item.find('@');
    std::string body = item;
    if (at != std::string::npos) {
      d.arg = parse_uint(item.substr(at + 1), item);
      body = item.substr(0, at);
    }
    const std::size_t colon = body.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("fault spec: expected point:action, got '" +
                                  item + "'");
    }
    d.point = body.substr(0, colon);
    d.action = parse_action(body.substr(colon + 1), item);
    if ((d.action == Action::kFail || d.action == Action::kCrash ||
         d.action == Action::kFlaky) &&
        d.arg == 0) {
      throw std::invalid_argument("fault spec: hit count must be >= 1 in '" +
                                  item + "'");
    }
    parsed.push_back(std::move(d));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  directives_ = std::move(parsed);
  rng_state_ = seed;
  crashed_.store(false, std::memory_order_relaxed);
  armed_.store(!directives_.empty(), std::memory_order_relaxed);
}

void FaultInjector::clear() { configure(""); }

bool FaultInjector::roll(Directive& d) {
  if (d.probability >= 1.0) return true;
  // splitmix64 gives a deterministic per-hit stream from the configure seed.
  const double u = static_cast<double>(splitmix64(rng_state_) >> 11) *
                   (1.0 / 9007199254740992.0);
  return u < d.probability;
}

void FaultInjector::crash_point(const char* point) {
  if (!armed()) return;
  std::uint64_t stall_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& d : directives_) {
      if (d.point != point) continue;
      if (d.action == Action::kStall) {
        // Stalls fire on every hit; the sleep happens outside the lock so a
        // stalled phase never wedges other threads' injector checks.
        if (!roll(d)) continue;
        d.fired = true;
        stall_ms += d.arg;
        continue;
      }
      if (d.action != Action::kCrash) continue;
      if (++d.hits < d.arg || !roll(d)) continue;
      d.fired = true;
      crashed_.store(true, std::memory_order_relaxed);
      throw CrashInjected(d.point);
    }
  }
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
}

bool FaultInjector::should_fail(const char* point) {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& d : directives_) {
    if (d.point != point) continue;
    if (d.action == Action::kFlaky) {
      // Transient: fail the first `arg` hits, then succeed forever.
      if (++d.hits > d.arg || !roll(d)) continue;
      d.fired = true;
      return true;
    }
    if (d.action != Action::kFail) continue;
    if (++d.hits < d.arg || !roll(d)) continue;
    d.fired = true;
    return true;
  }
  return false;
}

FaultInjector::WriteDecision FaultInjector::on_write(const char* point,
                                                     std::uint64_t offset,
                                                     std::size_t n) {
  WriteDecision decision{n, false, false};
  if (!armed()) return decision;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& d : directives_) {
    if ((d.action != Action::kShortWrite && d.action != Action::kEnospc) ||
        d.point != point) {
      continue;
    }
    if (offset + n <= d.arg) continue;  // still under the byte budget
    // The probability gate is rolled once, when the budget is first
    // crossed, then latched — a short write that fired keeps failing.
    if (d.rolled == 0) d.rolled = roll(d) ? 1 : -1;
    if (d.rolled < 0) continue;
    d.fired = true;
    const std::uint64_t room = d.arg > offset ? d.arg - offset : 0;
    decision.allow = std::min<std::size_t>(decision.allow,
                                           static_cast<std::size_t>(room));
    decision.fail = true;
    decision.enospc = decision.enospc || d.action == Action::kEnospc;
  }
  return decision;
}

std::size_t FaultInjector::fired_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& d : directives_) n += d.fired ? 1 : 0;
  return n;
}

}  // namespace adr::util
