#include "util/memory.hpp"

#include <cstdio>
#include <cstring>

namespace adr::util {

namespace {

std::uint64_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, key_len) == 0) {
      std::sscanf(line + key_len, ": %lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

std::uint64_t current_rss_bytes() { return read_status_kb("VmRSS"); }
std::uint64_t peak_rss_bytes() { return read_status_kb("VmHWM"); }

}  // namespace adr::util
