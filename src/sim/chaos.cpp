#include "sim/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "activeness/activity.hpp"
#include "core/service.hpp"
#include "serve/daemon.hpp"
#include "trace/event_log.hpp"
#include "trace/user_registry.hpp"
#include "util/config.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace adr::sim {

namespace {

namespace fsys = std::filesystem;

constexpr util::TimePoint kBase = 1'600'000'000;
constexpr double kRetain = 0.5;

const std::vector<std::string> kAllClasses = {"kill", "enospc", "torn",
                                              "flood", "stall"};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// One admitted-or-produced flood event: user + activity, with a globally
/// unique timestamp so stream order (and with it rank identity) is
/// independent of producer interleaving.
struct FloodEvent {
  trace::UserId user;
  activeness::Activity activity;
};

/// Everything an epoch needs to rebuild the daemon and the cold reference.
struct ChaosWorld {
  const ChaosConfig& config;
  std::string wal_dir;
  std::string state_dir;
  util::Rng rng;
  /// Global event counter: WAL events take even timestamp slots, flood
  /// events odd ones — every timestamp in the soak is distinct, so equal-
  /// timestamp arrival order can never make identity flaky.
  std::uint64_t clock = 0;
  /// Flood events that were admitted (not shed) — part of the reference
  /// state from their epoch on (they ride the §10.5 checkpoints).
  std::vector<FloodEvent> admitted_flood;

  explicit ChaosWorld(const ChaosConfig& c)
      : config(c),
        wal_dir(c.dir + "/wal"),
        state_dir(c.dir + "/state"),
        rng(c.seed) {}

  util::TimePoint wal_stamp() {
    return kBase + static_cast<util::TimePoint>(clock++) * 2;
  }
  util::TimePoint flood_stamp() {
    return kBase + static_cast<util::TimePoint>(clock++) * 2 + 1;
  }

  core::ServiceConfig service_config() const {
    core::ServiceConfig sc;
    sc.lifetime_days = 30;
    sc.eval_shards = 1;
    sc.dry_run = true;  // triggers select victims but never mutate -> the
                        // cold reference stays valid across every epoch
    sc.record_victims = true;
    return sc;
  }

  serve::DaemonOptions daemon_options() const {
    serve::DaemonOptions options;
    options.wal_dir = wal_dir;
    options.state_dir = state_dir;
    options.service = service_config();
    options.checkpoint_every_events = 64;
    options.metrics_every_ticks = 0;
    options.seal_wal_on_stop = false;  // the feeder owns the open segment
    options.io_retry = {.max_attempts = 3,
                        .initial_delay_ms = 0.0,
                        .max_delay_ms = 0.0};
    return options;
  }

  serve::Daemon make_daemon(serve::DaemonOptions options) {
    return serve::Daemon(
        trace::UserRegistry::with_synthetic_users(config.users),
        std::move(options));
  }

  /// Append one deterministic WAL batch (files in epoch 0, then job bursts).
  std::size_t feed_wal(int epoch) {
    trace::EventLogWriter writer(wal_dir);
    std::size_t appended = 0;
    if (epoch == 0) {
      for (std::size_t u = 0; u < config.users; ++u) {
        for (int f = 0; f < 2; ++f) {
          trace::Event e;
          e.kind = trace::EventKind::kCreate;
          e.user = static_cast<trace::UserId>(u);
          e.timestamp = wal_stamp();
          e.path = "/scratch/user_" + std::to_string(u) + "/f" +
                   std::to_string(f) + ".dat";
          e.size_bytes = 4096 + u * 512 + static_cast<std::uint64_t>(f);
          e.stripe_count = 4;
          writer.append(e);
          ++appended;
        }
      }
    }
    for (std::size_t i = 0; i < config.events_per_epoch; ++i) {
      trace::Event e;
      e.kind = trace::EventKind::kJob;
      e.user = static_cast<trace::UserId>(rng.bounded(config.users));
      e.timestamp = wal_stamp();
      e.impact = 40.0 + rng.uniform(0.0, 200.0);
      writer.append(e);
      ++appended;
    }
    return appended;
  }

  /// Drop a control command and tick until the reply lands (bounded; the
  /// overloaded daemon may defer it a few windows). Empty optional = the
  /// daemon never answered.
  void drop_cmd(
      serve::Daemon& daemon, const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& entries) {
    const std::string cmd_path = daemon.ctl_dir() + "/" + name + ".cmd";
    util::io::AtomicWriter writer(cmd_path, {.fsync = false, .footer = false});
    for (const auto& [key, value] : entries) {
      writer.write_line(key + " = " + value);
    }
    writer.commit();
  }

  std::optional<util::Config> await_reply(serve::Daemon& daemon,
                                          const std::string& name,
                                          int max_ticks) {
    const std::string out_path = daemon.ctl_dir() + "/" + name + ".out";
    for (int i = 0; i < max_ticks; ++i) {
      daemon.tick();
      if (fsys::exists(out_path)) {
        util::Config reply = util::Config::from_file(out_path);
        fsys::remove(out_path);
        return reply;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return std::nullopt;
  }

  std::optional<util::Config> ctl(
      serve::Daemon& daemon, const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& entries,
      int max_ticks = 200) {
    drop_cmd(daemon, name, entries);
    return await_reply(daemon, name, max_ticks);
  }

  /// The identity invariant: a warm trigger through the daemon must be
  /// byte-identical (ranks and victims) to a cold service replaying the
  /// full WAL plus every admitted flood event. Returns "" on success.
  std::string check_identity(serve::Daemon& daemon, util::TimePoint now,
                             int epoch) {
    const std::string tag = std::to_string(epoch);
    const std::string warm_ranks = config.dir + "/warm_ranks_" + tag + ".csv";
    const std::string warm_victims =
        config.dir + "/warm_victims_" + tag + ".txt";
    const auto reply = ctl(daemon, "identity_" + tag,
                           {{"cmd", "trigger"},
                            {"now", std::to_string(now)},
                            {"retain", std::to_string(kRetain)},
                            {"ranks_out", warm_ranks},
                            {"victims_out", warm_victims}});
    if (!reply) return "identity trigger never answered (epoch " + tag + ")";
    if (reply->get_string("ok", "") != "true") {
      return "identity trigger failed: " + reply->get_string("error", "?");
    }

    core::Service cold(trace::UserRegistry::with_synthetic_users(config.users),
                       service_config());
    cold.register_paper_types();
    trace::EventLogReader reader(wal_dir);
    for (const auto& event : reader.read_after(0)) cold.apply(event);
    for (const auto& flood : admitted_flood) {
      cold.store().append(flood.user, core::kJobActivityType, flood.activity);
    }
    const auto target = static_cast<std::uint64_t>(
        static_cast<double>(cold.vfs().total_bytes()) * (1.0 - kRetain));
    const auto report = cold.purge(now, target);
    const std::string cold_ranks = config.dir + "/cold_ranks.csv";
    cold.ranks().save_csv(cold_ranks);
    std::string cold_victims;
    for (const auto& path : report.victim_paths) cold_victims += path + "\n";

    if (slurp(warm_ranks) != slurp(cold_ranks)) {
      return "rank divergence after epoch " + tag;
    }
    if (slurp(warm_victims) != cold_victims) {
      return "victim divergence after epoch " + tag;
    }
    return "";
  }
};

}  // namespace

ChaosReport run_chaos(const ChaosConfig& config, std::ostream& out) {
  ChaosReport report;
  if (config.dir.empty()) {
    throw std::invalid_argument("run_chaos: dir is required");
  }
  std::vector<std::string> classes =
      config.classes.empty() ? kAllClasses : config.classes;
  for (const auto& cls : classes) {
    if (std::find(kAllClasses.begin(), kAllClasses.end(), cls) ==
        kAllClasses.end()) {
      throw std::invalid_argument("run_chaos: unknown fault class \"" + cls +
                                  "\"");
    }
  }

  fsys::remove_all(config.dir);
  fsys::create_directories(config.dir);
  util::FaultInjector::global().clear();
  ChaosWorld world(config);

  const auto soak_start = std::chrono::steady_clock::now();
  const auto elapsed_s = [&soak_start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         soak_start)
        .count();
  };
  const auto fail = [&report, &out](const std::string& why) {
    report.error = why;
    report.ok = false;
    out << "chaos: FAIL — " << why << "\n";
    util::FaultInjector::global().clear();
    return report;
  };

  for (int epoch = 0;; ++epoch) {
    const bool budget_open =
        config.duration_s > 0.0 && elapsed_s() < config.duration_s;
    if (epoch >= config.epochs && !budget_open) break;

    const std::string cls =
        classes[world.rng.bounded(classes.size())];
    const util::TimePoint now = kBase + util::days(70) + util::days(epoch);
    report.wal_events += world.feed_wal(epoch);
    ++report.faults_injected[cls];
    out << "chaos: epoch " << epoch << " class " << cls << "\n";

    serve::DaemonOptions options = world.daemon_options();
    if (cls == "flood") {
      options.ingest_queue_cap = 8;
      options.backpressure = activeness::BackpressurePolicy::kShed;
      options.shed_budget = config.events_per_epoch * 4;  // never block
    } else if (cls == "stall") {
      // Deadline 30 ms vs a 100 ms injected stall: breaches are always
      // deliberate, never scheduling noise on a loaded runner.
      options.watchdog.trigger_deadline_ms = 30;
      options.watchdog.degrade_after = 1;
      options.watchdog.overload_after = 1;
      options.watchdog.recover_after = 1;
      options.watchdog.defer_backoff = {.max_attempts = 1 << 20,
                                        .initial_delay_ms = 20.0,
                                        .multiplier = 1.0,
                                        .max_delay_ms = 20.0,
                                        .jitter = 0.0};
    }

    serve::Daemon daemon = world.make_daemon(options);

    if (cls == "kill") {
      // kill -9 mid-apply: the batch is in memory, nothing persisted.
      util::FaultInjector::global().configure("serve.post_apply:crash@1");
      bool crashed = false;
      try {
        daemon.start();
        daemon.tick();
      } catch (const util::CrashInjected&) {
        crashed = true;
      }
      util::FaultInjector::global().clear();
      if (!crashed) return fail("injected kill never fired");
      // Recovery: a fresh daemon restores checkpoint + WAL tail.
      serve::Daemon recovered = world.make_daemon(world.daemon_options());
      recovered.start();
      ++report.recoveries;
      if (const auto why = world.check_identity(recovered, now, epoch);
          !why.empty()) {
        return fail(why + " (post-kill recovery)");
      }
      ++report.identity_checks;
      recovered.shutdown();
    } else if (cls == "enospc") {
      daemon.start();
      daemon.tick();
      // The "disk" fills: every artifact write fails. Retries exhaust, the
      // command errors (or its reply is dropped) — but the loop survives.
      // Drop the command first: the injector is process-global and would
      // otherwise tear the harness's own command-file write.
      world.drop_cmd(daemon, "full_" + std::to_string(epoch),
                     {{"cmd", "checkpoint"}});
      util::FaultInjector::global().configure("io.atomic.write:enospc@1");
      const auto burst =
          world.await_reply(daemon, "full_" + std::to_string(epoch), 5);
      if (burst && burst->get_string("ok", "") == "true") {
        return fail("checkpoint reported ok during ENOSPC burst");
      }
      util::FaultInjector::global().clear();
      // Pressure cleared: the next checkpoint must succeed.
      const auto after = world.ctl(daemon, "clear_" + std::to_string(epoch),
                                   {{"cmd", "checkpoint"}});
      if (!after || after->get_string("ok", "") != "true") {
        return fail("checkpoint failed after ENOSPC cleared");
      }
      if (const auto why = world.check_identity(daemon, now, epoch);
          !why.empty()) {
        return fail(why + " (post-enospc)");
      }
      ++report.identity_checks;
      daemon.shutdown();
    } else if (cls == "torn") {
      daemon.start();
      // A half-written command drop must answer ok = false, never wedge.
      const std::string torn_path =
          daemon.ctl_dir() + "/torn_" + std::to_string(epoch) + ".cmd";
      {
        std::ofstream torn(torn_path, std::ios::binary);
        torn << "cmd = trig";  // torn mid-value: malformed verb
      }
      if (!daemon.tick()) return fail("torn command stopped the daemon");
      if (fsys::exists(torn_path)) return fail("torn command not consumed");
      if (const auto why = world.check_identity(daemon, now, epoch);
          !why.empty()) {
        return fail(why + " (post-torn-command)");
      }
      ++report.identity_checks;
      daemon.shutdown();
    } else if (cls == "flood") {
      daemon.start();
      daemon.tick();
      // Producers flood far past the 8-deep shard queues; the shed budget
      // absorbs the overflow with exact accounting.
      const std::size_t flood_n = config.events_per_epoch * 2;
      std::vector<FloodEvent> produced;
      produced.reserve(flood_n);
      for (std::size_t i = 0; i < flood_n; ++i) {
        produced.push_back(
            {static_cast<trace::UserId>(world.rng.bounded(config.users)),
             activeness::Activity{world.flood_stamp(),
                                  20.0 + world.rng.uniform(0.0, 50.0)}});
      }
      auto& store = daemon.service().store();
      const std::size_t producers = 2;
      std::vector<std::thread> threads;
      for (std::size_t p = 0; p < producers; ++p) {
        threads.emplace_back([&store, &produced, p, producers] {
          for (std::size_t i = p; i < produced.size(); i += producers) {
            store.enqueue(produced[i].user, core::kJobActivityType,
                          produced[i].activity);
          }
        });
      }
      for (auto& t : threads) t.join();

      const auto shed = store.shed_events();
      if (store.shed_count() != shed.size()) {
        return fail("shed counter disagrees with shed log");
      }
      std::set<util::TimePoint> shed_stamps;
      for (const auto& entry : shed) {
        shed_stamps.insert(std::get<2>(entry).timestamp);
      }
      if (shed_stamps.size() != shed.size()) {
        return fail("duplicate events in shed log");
      }
      std::size_t admitted_now = 0;
      for (const auto& flood : produced) {
        if (shed_stamps.count(flood.activity.timestamp)) continue;
        world.admitted_flood.push_back(flood);
        ++admitted_now;
      }
      if (admitted_now + shed.size() != flood_n) {
        return fail("flood accounting: produced != admitted + shed");
      }
      report.flood_produced += flood_n;
      report.flood_shed += shed.size();
      // Drain, then the identity check proves the admitted set — and only
      // it — landed: one lost or duplicated event breaks byte identity.
      const auto drained =
          world.ctl(daemon, "drain_" + std::to_string(epoch),
                    {{"cmd", "evaluate"}, {"now", std::to_string(now - 1)}});
      if (!drained || drained->get_string("ok", "") != "true") {
        return fail("post-flood evaluate failed");
      }
      if (store.pending_ingest() != 0) {
        return fail("ingest queues not drained by evaluate");
      }
      if (const auto why = world.check_identity(daemon, now, epoch);
          !why.empty()) {
        return fail(why + " (post-flood)");
      }
      ++report.identity_checks;
      daemon.shutdown();
    } else {  // stall
      daemon.start();
      daemon.tick();
      // Two stalled evaluate phases: degraded, then overloaded.
      util::FaultInjector::global().configure("service.evaluate:stall@100");
      world.ctl(daemon, "stall_a_" + std::to_string(epoch),
                {{"cmd", "evaluate"}, {"now", std::to_string(now - 3)}});
      world.ctl(daemon, "stall_b_" + std::to_string(epoch),
                {{"cmd", "evaluate"}, {"now", std::to_string(now - 2)}});
      if (daemon.health().state() != serve::HealthState::kOverloaded) {
        return fail("stalled phases did not overload the daemon");
      }
      util::FaultInjector::global().clear();
      // The stall cleared: deferred work runs, quiet phases step the
      // ladder down, and health must return to ok before the epoch ends.
      const auto recovered =
          world.ctl(daemon, "recover_" + std::to_string(epoch),
                    {{"cmd", "evaluate"}, {"now", std::to_string(now - 1)}});
      if (!recovered || recovered->get_string("ok", "") != "true") {
        return fail("deferred evaluate never ran after stall cleared");
      }
      if (const auto why = world.check_identity(daemon, now, epoch);
          !why.empty()) {
        return fail(why + " (post-stall)");
      }
      ++report.identity_checks;
      if (daemon.health().state() != serve::HealthState::kOk) {
        return fail("health did not return to ok after stall epoch");
      }
      daemon.shutdown();
    }

    ++report.epochs_run;
  }

  // Final liveness probe: one more daemon, no faults, health ok, identity
  // still exact.
  serve::Daemon final_daemon = world.make_daemon(world.daemon_options());
  final_daemon.start();
  final_daemon.tick();
  const util::TimePoint final_now =
      kBase + util::days(70) + util::days(report.epochs_run + 1);
  if (const auto why =
          world.check_identity(final_daemon, final_now, report.epochs_run);
      !why.empty()) {
    return fail(why + " (final probe)");
  }
  ++report.identity_checks;
  report.final_health_ok =
      final_daemon.health().state() == serve::HealthState::kOk;
  if (!report.final_health_ok) return fail("final health not ok");
  final_daemon.shutdown();

  report.ok = true;
  out << "chaos: PASS seed=" << config.seed << " epochs=" << report.epochs_run
      << " wal_events=" << report.wal_events
      << " flood=" << report.flood_produced << "/" << report.flood_shed
      << " shed, identity_checks=" << report.identity_checks
      << " recoveries=" << report.recoveries << "\n";
  return report;
}

}  // namespace adr::sim
