#pragma once
// sim::run_chaos — deterministic chaos-soak harness for the resident daemon
// (DESIGN.md §14.4).
//
// The crash-matrix tests prove single faults recover; a soak proves the
// daemon survives *sequences* of them without accumulating damage. Each
// epoch draws one fault class from a seeded stream, feeds a fresh WAL batch,
// runs a daemon through the fault, and then asserts the §14 invariants:
//
//   * identity    a control-file trigger answered after the fault produces
//                 byte-identical ranks and victim lists to a cold one-shot
//                 service replaying the full WAL (plus every flood event
//                 that was *admitted* — triggers run dry, so state
//                 accumulates but never mutates).
//   * accounting  under a producer flood with a shed budget, every produced
//                 event is either admitted or recorded in the shed log:
//                 produced == admitted + shed, exactly. The identity check
//                 above folds in only admitted events, so a single lost or
//                 duplicated event breaks byte identity.
//   * liveness    the daemon never dies outside an injected kill: torn
//                 command files answer ok = false, ENOSPC bursts are
//                 retried/deferred, stalled triggers degrade instead of
//                 wedging — and health returns to `ok` before the epoch
//                 closes.
//
// Fault classes (ChaosConfig::classes, each exercised via the §10 fault
// injector, so a failing run replays byte-for-byte from seed + spec):
//
//   kill     serve.post_apply:crash — a simulated kill -9 mid-apply; the
//            next epoch's daemon recovers from checkpoint + WAL tail.
//   enospc   io.atomic.write:enospc — checkpoint writes fail until the
//            "disk" clears; the daemon survives and checkpoints after.
//   torn     a half-written .cmd drop; the serve loop answers the next
//            valid command.
//   flood    producer threads enqueue far past the ingest cap under a shed
//            budget; exact-loss accounting is asserted.
//   stall    service.evaluate:stall + a tight watchdog deadline; the
//            daemon degrades, defers, then recovers to `ok`.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace adr::sim {

struct ChaosConfig {
  /// Scratch root (removed and recreated by the run).
  std::string dir;
  std::uint64_t seed = 1;
  /// Fault epochs to run. With duration_s > 0, epochs keep cycling until
  /// the wall-clock budget is spent (at least `epochs` either way).
  int epochs = 10;
  double duration_s = 0.0;
  std::size_t users = 12;
  std::size_t events_per_epoch = 120;
  /// Enabled fault classes; empty = all of kill/enospc/torn/flood/stall.
  std::vector<std::string> classes;
};

struct ChaosReport {
  int epochs_run = 0;
  std::map<std::string, int> faults_injected;  // class -> epochs run
  std::uint64_t wal_events = 0;
  std::uint64_t flood_produced = 0;
  std::uint64_t flood_shed = 0;
  int identity_checks = 0;
  int recoveries = 0;  // daemons restarted after an injected kill
  bool final_health_ok = false;
  bool ok = false;
  std::string error;  // first violated invariant ("" when ok)
};

/// Run the soak; narrates per-epoch progress to `out`. Never throws for an
/// invariant violation — that lands in report.error (the CLI exits 3 on
/// it); setup failures (unwritable dir, ...) still throw.
ChaosReport run_chaos(const ChaosConfig& config, std::ostream& out);

}  // namespace adr::sim
