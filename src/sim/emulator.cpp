#include "sim/emulator.hpp"

#include <unordered_map>
#include <unordered_set>

#include "obs/span.hpp"
#include "retention/policy.hpp"
#include "util/logging.hpp"

namespace adr::sim {

ActivenessTimeline::ActivenessTimeline(
    const activeness::ActivityCatalog& catalog,
    activeness::ActivityStore store, activeness::EvaluationParams base_params,
    activeness::EvalMode mode, std::size_t shards)
    : catalog_(&catalog),
      store_(std::move(store)),
      pipeline_(catalog, base_params, mode, shards) {
  store_.sort_all();
}

ActivenessTimeline ActivenessTimeline::for_scenario(
    const synth::TitanScenario& scenario, activeness::EvaluationParams params,
    activeness::EvalMode mode, std::size_t shards) {
  static const activeness::ActivityCatalog catalog =
      activeness::ActivityCatalog::paper_default();
  activeness::ActivityStore store(scenario.registry.size(), catalog.size());
  activeness::ingest_jobs(store, 0, 1.0, scenario.jobs);
  activeness::ingest_publications(store, 1, 1.0, scenario.pubs);
  return ActivenessTimeline(catalog, std::move(store), params, mode, shards);
}

const activeness::ScanPlan& ActivenessTimeline::plan_at(util::TimePoint t) {
  if (pipeline_.evaluated() && t == pipeline_.last_now()) {
    return pipeline_.plan();
  }
  last_advance_ = pipeline_.advance(store_, t);
  // Record the group table for attribution at later instants — unless the
  // latest table at or before t already says the same thing.
  const auto it = group_history_.upper_bound(t);
  const bool unchanged = it != group_history_.begin() &&
                         std::prev(it)->second == pipeline_.groups();
  if (!unchanged) group_history_[t] = pipeline_.groups();
  return pipeline_.plan();
}

const std::vector<activeness::UserGroup>* ActivenessTimeline::group_lookup_at(
    util::TimePoint t) const {
  auto it = group_history_.upper_bound(t);
  if (it == group_history_.begin()) return nullptr;
  --it;
  return &it->second;
}

activeness::UserGroup ActivenessTimeline::group_at(trace::UserId user,
                                                   util::TimePoint t) const {
  const auto* lookup = group_lookup_at(t);
  if (lookup == nullptr) return activeness::UserGroup::kBothInactive;
  return user < lookup->size() ? (*lookup)[user]
                               : activeness::UserGroup::kBothInactive;
}

FltDriver::FltDriver(retention::FltConfig config, ActivenessTimeline& timeline)
    : policy_(config), timeline_(&timeline) {}

std::string FltDriver::name() const { return policy_.name(); }

retention::PurgeReport FltDriver::trigger(fs::Vfs& vfs, util::TimePoint now,
                                          std::uint64_t target_bytes) {
  timeline_->plan_at(now);  // keep classifications in lockstep with ActiveDR
  policy_.set_group_of([this, now](trace::UserId user) {
    return timeline_->group_at(user, now);
  });
  return policy_.run(vfs, now, target_bytes);
}

ActiveDrDriver::ActiveDrDriver(retention::ActiveDrConfig config,
                               const trace::UserRegistry& registry,
                               ActivenessTimeline& timeline)
    : policy_(config, registry), timeline_(&timeline) {}

void ActiveDrDriver::set_exemptions(retention::ExemptionList exemptions) {
  policy_.set_exemptions(std::move(exemptions));
}

std::string ActiveDrDriver::name() const { return policy_.name(); }

retention::PurgeReport ActiveDrDriver::trigger(fs::Vfs& vfs,
                                               util::TimePoint now,
                                               std::uint64_t target_bytes) {
  const activeness::ScanPlan& plan = timeline_->plan_at(now);
  return policy_.run(vfs, now, target_bytes, plan);
}

ValueDriver::ValueDriver(retention::ValueConfig config,
                         ActivenessTimeline& timeline)
    : policy_(std::move(config)), timeline_(&timeline) {}

std::string ValueDriver::name() const { return policy_.name(); }

retention::PurgeReport ValueDriver::trigger(fs::Vfs& vfs, util::TimePoint now,
                                            std::uint64_t target_bytes) {
  timeline_->plan_at(now);
  policy_.set_group_of([this, now](trace::UserId user) {
    return timeline_->group_at(user, now);
  });
  return policy_.run(vfs, now, target_bytes);
}

ScratchCacheDriver::ScratchCacheDriver(retention::ScratchCacheConfig config,
                                       ActivenessTimeline& timeline)
    : policy_(config), timeline_(&timeline) {}

std::string ScratchCacheDriver::name() const { return policy_.name(); }

retention::PurgeReport ScratchCacheDriver::trigger(
    fs::Vfs& vfs, util::TimePoint now, std::uint64_t target_bytes) {
  timeline_->plan_at(now);
  policy_.set_group_of([this, now](trace::UserId user) {
    return timeline_->group_at(user, now);
  });
  return policy_.run(vfs, now, target_bytes);
}

Emulator::Emulator(const synth::TitanScenario& scenario, EmulatorConfig config,
                   ActivenessTimeline& timeline)
    : scenario_(&scenario), config_(config), timeline_(&timeline) {}

EmulationResult Emulator::run(RetentionDriver& driver,
                              double target_utilization_override) {
  const double target_utilization = target_utilization_override >= 0.0
                                        ? target_utilization_override
                                        : config_.purge_target_utilization;
  EmulationResult result;
  result.policy = driver.name();

  fs::Vfs vfs;
  vfs.import_snapshot(scenario_->snapshot);
  vfs.set_capacity_bytes(scenario_->capacity_bytes);

  // Every purge displaces the file into the archive tier; misses restore
  // from it (with cost accounting) when restore_on_miss is set.
  fs::ArchiveTier archive(config_.archive);
  vfs.set_removal_sink([&archive](const std::string& path,
                                  const fs::FileMeta& meta) {
    archive.archive(path, meta);
  });

  MetricsCollector metrics(scenario_->sim_begin, scenario_->sim_end);

  // Seed classifications so pre-first-trigger misses attribute correctly.
  timeline_->plan_at(scenario_->sim_begin);

  const util::Duration interval = util::days(config_.purge_interval_days);
  util::TimePoint next_trigger = scenario_->sim_begin + interval;

  // Wall-time attribution comes from the metrics registry: each trigger and
  // the whole replay loop run under timer spans, and the result fields are
  // the span-sum deltas across this run.
  obs::Histogram& trigger_span =
      obs::MetricsRegistry::global().span_histogram("emulator.purge_trigger");
  obs::Histogram& replay_span_hist =
      obs::MetricsRegistry::global().span_histogram("emulator.replay");
  const double trigger_baseline = trigger_span.sum_seconds();
  const double replay_baseline = replay_span_hist.sum_seconds();

  obs::Counter& audit_failures =
      obs::MetricsRegistry::global().counter("purge_index.audit_failures");
  auto fire_trigger = [&](util::TimePoint when) {
    obs::TimerSpan span("emulator.purge_trigger");
    std::uint64_t target = 0;
    if (target_utilization > 0.0) {
      target = retention::purge_target_bytes(vfs, target_utilization);
      if (target == 0) return;  // already at/below target utilization
    }
    retention::PurgeReport report = driver.trigger(vfs, when, target);
    result.purges.push_back(std::move(report));
    if (config_.audit_purge_index) {
      std::string error;
      if (!vfs.verify_purge_index(&error)) {
        audit_failures.add();
        ADR_ERROR << "purge-index audit failed after trigger at " << when
                  << ": " << error;
      }
    }
  };

  {
    obs::TimerSpan replay_span("emulator.replay");
    for (const auto& entry : scenario_->replay.entries()) {
      while (entry.timestamp >= next_trigger &&
             next_trigger < scenario_->sim_end) {
        fire_trigger(next_trigger);
        next_trigger += interval;
      }
      if (entry.op == trace::FileOp::kCreate) {
        fs::FileMeta meta;
        meta.owner = entry.user;
        meta.stripe_count = entry.stripe_count;
        meta.size_bytes = entry.size_bytes;
        meta.atime = entry.timestamp;
        meta.ctime = entry.timestamp;
        vfs.create(entry.path, meta);
      } else {
        const bool hit = vfs.access(entry.path, entry.timestamp, entry.user);
        metrics.record_access(entry.timestamp,
                              timeline_->group_at(entry.user, entry.timestamp),
                              !hit);
        if (!hit && config_.restore_on_miss) {
          if (const fs::FileMeta* archived = archive.restore(entry.path)) {
            fs::FileMeta meta = *archived;
            meta.atime = entry.timestamp;
            vfs.create(entry.path, meta);
          }
        }
      }
    }
    while (next_trigger < scenario_->sim_end) {
      fire_trigger(next_trigger);
      next_trigger += interval;
    }
  }
  result.purge_seconds = trigger_span.sum_seconds() - trigger_baseline;
  result.replay_seconds =
      replay_span_hist.sum_seconds() - replay_baseline - result.purge_seconds;

  result.archive = archive.stats();
  result.daily = metrics.daily();
  result.total_accesses = metrics.total_accesses();
  result.total_misses = metrics.total_misses();
  result.final_bytes = vfs.total_bytes();
  result.final_files = vfs.file_count();

  // Per-group aggregates. Purged totals accumulate over triggers; retained
  // state and group populations come from the end of the year.
  const util::TimePoint end = scenario_->sim_end;
  for (const auto& report : result.purges) {
    for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
      result.groups[g].purged_bytes += report.by_group[g].purged_bytes;
      result.groups[g].purged_files += report.by_group[g].purged_files;
    }
  }
  // One timeline lookup covers all three attribution loops below — the
  // final evaluation is fixed at `end`, so per-user group_at calls (a map
  // search each) would redo the same search tens of thousands of times.
  const std::vector<activeness::UserGroup>* final_groups =
      timeline_->group_lookup_at(end);
  const auto group_index_of = [final_groups](trace::UserId user) {
    return static_cast<std::size_t>(
        final_groups != nullptr && user < final_groups->size()
            ? (*final_groups)[user]
            : activeness::UserGroup::kBothInactive);
  };
  std::unordered_set<trace::UserId> affected;
  for (const auto& report : result.purges) {
    for (const trace::UserId u : report.affected_users) affected.insert(u);
  }
  for (const trace::UserId u : affected) {
    ++result.groups[group_index_of(u)].unique_affected_users;
  }
  for (const auto& [user, usage] : vfs.usage_by_user()) {
    if (usage.files == 0) continue;
    auto& g = result.groups[group_index_of(user)];
    g.retained_bytes += usage.bytes;
    g.retained_files += usage.files;
  }
  for (trace::UserId u = 0; u < scenario_->registry.size(); ++u) {
    ++result.groups[group_index_of(u)].users_in_group;
  }

  ADR_INFO << result.policy << ": " << result.total_misses << "/"
           << result.total_accesses << " misses, final "
           << result.final_files << " files";
  return result;
}

}  // namespace adr::sim
