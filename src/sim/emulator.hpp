#pragma once
// The trace-replay emulator (§4.1.3).
//
// A run seeds a Vfs from the scenario's initial snapshot, replays the replay
// year's application log day by day (accesses bump atimes; absent paths are
// *file misses*; creates add files), and fires the retention driver at every
// purge-trigger interval. Both policies are driven through the same loop so
// their miss series are directly comparable.
//
// ActivenessTimeline centralizes user evaluation during replay: each purge
// trigger advances an incremental evaluation pipeline to that instant (see
// activeness/incremental.hpp — only users whose rank can have changed are
// re-ranked). ActiveDR consumes the scan plan; both policies' metrics
// attribute users to the same classification, so the per-group figures line
// up the way the paper's do.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "activeness/classifier.hpp"
#include "activeness/sharded.hpp"
#include "obs/metrics.hpp"
#include "fs/archive.hpp"
#include "retention/activedr_policy.hpp"
#include "retention/cache_policy.hpp"
#include "retention/flt.hpp"
#include "retention/value_policy.hpp"
#include "sim/metrics.hpp"
#include "synth/titan_model.hpp"

namespace adr::sim {

/// Re-evaluation of user activeness at successive replay instants, advanced
/// in place by an IncrementalEvaluator. Only the *latest* scan plan is held
/// (repeated plan_at with the same t returns the same object); group
/// attribution history is a compact per-trigger group table, deduplicated
/// across triggers whose classification did not change — the timeline's
/// memory is bounded by the number of *distinct* classifications, not by
/// trigger count, and never retains old plans.
class ActivenessTimeline {
 public:
  /// `shards`: user-range shards the per-trigger evaluation fans out over
  /// (activeness/sharded.hpp; 0 = one per available thread, 1 = the
  /// single-pipeline path). Plans/ranks are identical for every value.
  ActivenessTimeline(const activeness::ActivityCatalog& catalog,
                     activeness::ActivityStore store,
                     activeness::EvaluationParams base_params,
                     activeness::EvalMode mode = activeness::EvalMode::kAuto,
                     std::size_t shards = 0);

  /// Scan plan evaluated at `t`. The returned reference stays valid until
  /// the next plan_at call with a different `t` (which advances the
  /// pipeline in place).
  const activeness::ScanPlan& plan_at(util::TimePoint t);

  /// Group of `user` per the latest evaluation at or before `t`
  /// (Both-Inactive before any evaluation exists).
  activeness::UserGroup group_at(trace::UserId user, util::TimePoint t) const;

  /// Dense user -> group table of the latest evaluation at or before `t`,
  /// or nullptr before any evaluation. Callers attributing *many* users at
  /// one instant (end-of-year aggregation) fetch this once instead of
  /// paying the timeline map lookup per user.
  const std::vector<activeness::UserGroup>* group_lookup_at(
      util::TimePoint t) const;

  std::size_t user_count() const { return store_.user_count(); }
  /// Wall time this timeline spent evaluating (Fig. 12b probe). Per
  /// instance: two concurrent timelines each report only their own work.
  double eval_seconds() const { return pipeline_.seconds(); }

  activeness::EvalMode eval_mode() const { return pipeline_.mode(); }
  std::size_t eval_shards() const { return pipeline_.shard_count(); }
  /// Distinct group tables retained for historical attribution — the
  /// timeline's memory bound (evaluations whose classification matched the
  /// previous one are deduplicated away, and plans are never retained).
  std::size_t group_history_size() const { return group_history_.size(); }
  /// What the most recent plan_at advance did (delta sizes, skip counts).
  const activeness::AdvanceStats& last_advance() const {
    return last_advance_;
  }

  /// Build a timeline for a Titan scenario with the paper's two activity
  /// types (job submissions as operations, publications as outcomes).
  static ActivenessTimeline for_scenario(
      const synth::TitanScenario& scenario,
      activeness::EvaluationParams params,
      activeness::EvalMode mode = activeness::EvalMode::kAuto,
      std::size_t shards = 0);

 private:
  const activeness::ActivityCatalog* catalog_;
  activeness::ActivityStore store_;
  activeness::ShardedEvaluator pipeline_;
  /// Group tables by evaluation instant; consecutive identical tables
  /// collapse into the earliest entry (lookups still resolve correctly —
  /// the collapsed entry has the same contents).
  std::map<util::TimePoint, std::vector<activeness::UserGroup>> group_history_;
  activeness::AdvanceStats last_advance_;
};

/// Policy adapter the replay loop drives.
class RetentionDriver {
 public:
  virtual ~RetentionDriver() = default;
  virtual std::string name() const = 0;
  virtual retention::PurgeReport trigger(fs::Vfs& vfs, util::TimePoint now,
                                         std::uint64_t target_bytes) = 0;
};

class FltDriver final : public RetentionDriver {
 public:
  FltDriver(retention::FltConfig config, ActivenessTimeline& timeline);
  std::string name() const override;
  retention::PurgeReport trigger(fs::Vfs& vfs, util::TimePoint now,
                                 std::uint64_t target_bytes) override;

 private:
  retention::FltPolicy policy_;
  ActivenessTimeline* timeline_;
};

class ActiveDrDriver final : public RetentionDriver {
 public:
  ActiveDrDriver(retention::ActiveDrConfig config,
                 const trace::UserRegistry& registry,
                 ActivenessTimeline& timeline);
  void set_exemptions(retention::ExemptionList exemptions);
  std::string name() const override;
  retention::PurgeReport trigger(fs::Vfs& vfs, util::TimePoint now,
                                 std::uint64_t target_bytes) override;

 private:
  retention::ActiveDrPolicy policy_;
  ActivenessTimeline* timeline_;
};

/// Value-based retention (§2's second family) through the replay loop.
class ValueDriver final : public RetentionDriver {
 public:
  ValueDriver(retention::ValueConfig config, ActivenessTimeline& timeline);
  std::string name() const override;
  retention::PurgeReport trigger(fs::Vfs& vfs, util::TimePoint now,
                                 std::uint64_t target_bytes) override;

 private:
  retention::ValuePolicy policy_;
  ActivenessTimeline* timeline_;
};

/// Scratch-as-a-cache (§2, Monti et al.) through the replay loop.
class ScratchCacheDriver final : public RetentionDriver {
 public:
  ScratchCacheDriver(retention::ScratchCacheConfig config,
                     ActivenessTimeline& timeline);
  std::string name() const override;
  retention::PurgeReport trigger(fs::Vfs& vfs, util::TimePoint now,
                                 std::uint64_t target_bytes) override;

 private:
  retention::ScratchCachePolicy policy_;
  ActivenessTimeline* timeline_;
};

struct EmulatorConfig {
  int purge_interval_days = 7;
  /// Purge target: utilization to reach, as a fraction of capacity
  /// (the paper uses 0.5). <= 0 disables the target — every trigger purges
  /// all expired files (strict FLT mode, Fig. 1).
  double purge_target_utilization = 0.5;
  /// Model the paper's "expensive re-transmission": after a miss the user
  /// restores the file from the archive tier, so later accesses hit again
  /// (each purge therefore costs one counted miss per revisited file, not
  /// an unbounded stream of repeats). On by default: the paper replays a
  /// *real* application log, which already embeds users' reactions to
  /// purges — a synthetic trace needs the feedback loop closed explicitly
  /// or every lost file is re-missed forever and the miss ratio diverges.
  /// Every purge flows into the archive either way; restores account their
  /// bytes and modeled wait time (EmulationResult::archive).
  bool restore_on_miss = true;
  /// Restore bandwidth/latency model for the archive tier.
  fs::ArchiveConfig archive;
  /// Consistency-check mode: after every purge trigger, cross-verify the
  /// Vfs's purge index against a full trie walk (Vfs::verify_purge_index).
  /// O(files) per trigger — for tests and debugging, not production runs.
  bool audit_purge_index = false;
  /// User-range shards for the trigger evaluations (activeness/sharded.hpp):
  /// 0 = one per available thread (max 16), 1 = single pipeline. Forwarded
  /// into the ActivenessTimeline by the experiment runners; identical
  /// plans and victims for every value.
  std::size_t eval_shards = 0;
};

/// Per-group aggregates over a whole emulation (the Fig. 9–11 numbers).
struct GroupAggregate {
  std::uint64_t purged_bytes = 0;
  std::size_t purged_files = 0;
  std::uint64_t retained_bytes = 0;  ///< final state
  std::size_t retained_files = 0;    ///< final state
  std::size_t unique_affected_users = 0;
  std::size_t users_in_group = 0;    ///< population at final evaluation
};

struct EmulationResult {
  std::string policy;
  std::vector<DailyMissStats> daily;
  std::vector<retention::PurgeReport> purges;
  std::array<GroupAggregate, activeness::kGroupCount> groups{};

  std::size_t total_accesses = 0;
  std::size_t total_misses = 0;
  std::uint64_t final_bytes = 0;
  std::size_t final_files = 0;

  /// Wall-time attribution, derived from metrics-registry span snapshots
  /// taken around the run ("emulator.replay" / "emulator.purge_trigger").
  double replay_seconds = 0.0;  ///< access replay wall time
  double purge_seconds = 0.0;   ///< retention (trigger) wall time

  /// Archive-tier accounting: what the year's purges displaced and what
  /// the misses cost to restore (bytes moved, modeled hours waited) — the
  /// §1/§2 re-transmission cost, quantified.
  fs::ArchiveStats archive;
};

class Emulator {
 public:
  Emulator(const synth::TitanScenario& scenario, EmulatorConfig config,
           ActivenessTimeline& timeline);

  /// Replay the scenario's year under the given policy driver.
  /// `target_utilization_override`, when >= 0, replaces the config's purge
  /// target for this run — the paper's comparison pits the facility's
  /// *strict* FLT (no target: every expired file goes) against ActiveDR
  /// purging to the 50% target and stopping there.
  EmulationResult run(RetentionDriver& driver,
                      double target_utilization_override = -1.0);

 private:
  const synth::TitanScenario* scenario_;
  EmulatorConfig config_;
  ActivenessTimeline* timeline_;
};

}  // namespace adr::sim
