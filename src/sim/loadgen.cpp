#include "sim/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "activeness/activity.hpp"
#include "activeness/evaluator.hpp"
#include "activeness/sharded.hpp"
#include "core/service.hpp"
#include "fs/vfs.hpp"
#include "obs/metrics.hpp"
#include "retention/policy.hpp"
#include "trace/user_registry.hpp"
#include "util/rng.hpp"

namespace adr::sim {
namespace {

using Clock = std::chrono::steady_clock;

struct LoadEvent {
  trace::UserId user = 0;
  activeness::ActivityTypeId type = 0;
  activeness::Activity activity;
};

// The level's full event stream, pre-generated so producers only pace and
// enqueue. Deterministic in (seed, rate, duration); timestamps are spread
// uniformly (in generation order) across the simulated span so triggers at
// intermediate sim instants always see a mix of past and future events.
std::vector<LoadEvent> make_events(const LoadGenConfig& config, double rate) {
  const double raw = rate * config.duration_seconds;
  const std::size_t n = raw < 1.0 ? 1 : static_cast<std::size_t>(raw);
  util::Rng rng(config.seed ^
                (static_cast<std::uint64_t>(rate) * 0x9E3779B97F4A7C15ULL));
  const auto span = static_cast<double>(util::days(config.sim_span_days));
  std::vector<LoadEvent> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    LoadEvent& e = events[i];
    e.user = static_cast<trace::UserId>(rng.bounded(config.users));
    e.type = rng.bernoulli(0.5) ? 0 : 1;
    e.activity.timestamp =
        config.sim_begin +
        static_cast<util::Duration>(span * static_cast<double>(i) /
                                    static_cast<double>(n));
    e.activity.impact = rng.uniform(0.5, 50.0);
  }
  return events;
}

// Synthetic purge population: files_per_user files per home directory with
// atimes spread over the 400 days before the simulated clock starts, so the
// dry-run purge inside each trigger has real candidate work to index.
fs::Vfs make_vfs(const LoadGenConfig& config,
                 const trace::UserRegistry& registry) {
  fs::Vfs vfs;
  util::Rng rng(config.seed * 0x9E3779B97F4A7C15ULL + 0xD1CEB00CULL);
  for (trace::UserId u = 0; u < registry.size(); ++u) {
    const std::string home = registry.home_dir(u);
    for (std::size_t f = 0; f < config.files_per_user; ++f) {
      fs::FileMeta meta;
      meta.owner = u;
      meta.size_bytes = static_cast<std::uint64_t>(
          rng.uniform_int(std::int64_t{1} << 10, std::int64_t{1} << 24));
      meta.atime = config.sim_begin - static_cast<util::Duration>(
                                          rng.uniform(0.0, 400.0) *
                                          static_cast<double>(util::kSecondsPerDay));
      meta.ctime = meta.atime - util::days(1);
      vfs.create(home + "/f" + std::to_string(f), meta);
    }
  }
  return vfs;
}

bool same_activeness(const activeness::UserActiveness& a,
                     const activeness::UserActiveness& b) {
  return a.user == b.user && a.op.sort_key() == b.op.sort_key() &&
         a.oc.sort_key() == b.oc.sort_key() &&
         a.last_activity == b.last_activity;
}

// Ranks and plan order must match exactly. Equal-timestamp events may reach
// the store in a different order concurrently than serially, but every rank
// input (per-period impact sums, gaps, last activity) is order-invariant
// within a timestamp, so byte-identity is the contract, not an approximation.
bool same_outputs(const activeness::ShardedEvaluator& a,
                  const activeness::ShardedEvaluator& b) {
  const auto& ua = a.users();
  const auto& ub = b.users();
  if (ua.size() != ub.size()) return false;
  for (std::size_t i = 0; i < ua.size(); ++i) {
    if (!same_activeness(ua[i], ub[i])) return false;
  }
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    const auto& ga = a.plan().groups[g];
    const auto& gb = b.plan().groups[g];
    if (ga.size() != gb.size()) return false;
    for (std::size_t i = 0; i < ga.size(); ++i) {
      if (!same_activeness(ga[i], gb[i])) return false;
    }
  }
  return true;
}

}  // namespace

LoadLevelResult run_load_level(const LoadGenConfig& config, double rate) {
  LoadLevelResult result;
  result.target_rate = rate;

  // The harness drives the same core::Service the daemon keeps resident:
  // producers enqueue into its store, triggers are evaluate()+purge() — the
  // exact warm-trigger path `activedr serve` answers from.
  core::ServiceConfig service_config;
  service_config.lifetime_days = config.period_length_days;
  service_config.eval_mode = config.eval_mode;
  service_config.eval_shards = config.shards;
  service_config.scan_mode = retention::ScanMode::kIndexed;
  service_config.dry_run = true;
  core::Service service(trace::UserRegistry::with_synthetic_users(config.users),
                        service_config);
  service.register_paper_types();
  service.vfs() = make_vfs(config, service.registry());
  const std::uint64_t purge_target =
      retention::purge_target_bytes(service.vfs(), 0.75);

  const std::vector<LoadEvent> events = make_events(config, rate);

  // Warm start before any producer exists: sizes the ingest/dirty sharding
  // and lets ensure_shards() run set_dirty_shards() while single-threaded —
  // shard re-bucketing must never race an enqueue.
  service.prepare_ingest();
  service.evaluate(config.sim_begin);
  activeness::ActivityStore& store = service.store();

  obs::Histogram& trigger_hist =
      obs::MetricsRegistry::global().histogram("loadgen.trigger_seconds");
  trigger_hist.reset();

  const std::size_t producers = std::max<std::size_t>(1, config.producers);
  std::atomic<std::size_t> enqueued{0};
  const Clock::time_point start = Clock::now();

  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Producer p owns events p, p+P, p+2P, ... all paced against the one
      // global schedule (event i due at start + i/rate), so the aggregate
      // arrival rate is `rate` regardless of P. Sleeping every 64th event
      // keeps pacing overhead negligible; falling behind just runs flat
      // out, which shows up as achieved_rate < target_rate.
      std::size_t handled = 0;
      for (std::size_t i = p; i < events.size(); i += producers) {
        if ((handled++ & 63U) == 0) {
          std::this_thread::sleep_until(
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(i) / rate)));
        }
        const LoadEvent& e = events[i];
        store.enqueue(e.user, e.type, e.activity);
        enqueued.fetch_add(1, std::memory_order_release);
      }
    });
  }

  // Trigger loop on the calling thread. The simulated clock advances a
  // fixed step per trigger sized so the whole span is swept in roughly
  // duration / interval triggers.
  const double expected_triggers = std::max(
      1.0, config.duration_seconds / std::max(config.trigger_interval_seconds,
                                              1e-3));
  const util::Duration sim_step = std::max<util::Duration>(
      util::hours(1),
      static_cast<util::Duration>(
          static_cast<double>(util::days(config.sim_span_days)) /
          expected_triggers));

  util::TimePoint sim_now = config.sim_begin;
  std::size_t tick = 0;
  while (enqueued.load(std::memory_order_acquire) < events.size()) {
    ++tick;
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(tick) *
                        config.trigger_interval_seconds)));
    sim_now += sim_step;
    const Clock::time_point t0 = Clock::now();
    if (config.with_purge) {
      service.purge(sim_now, purge_target);
    } else {
      service.evaluate(sim_now);
    }
    trigger_hist.observe(
        std::chrono::duration<double>(Clock::now() - t0).count());
    ++result.triggers;
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Closing trigger past the span's end: drains every queue, reveals every
  // event, and fixes the instant the identity check replays to.
  const util::TimePoint sim_final =
      std::max(sim_now, config.sim_begin + util::days(config.sim_span_days)) +
      util::days(1);
  {
    const Clock::time_point t0 = Clock::now();
    if (config.with_purge) {
      service.purge(sim_final, purge_target);
    } else {
      service.evaluate(sim_final);
    }
    trigger_hist.observe(
        std::chrono::duration<double>(Clock::now() - t0).count());
    ++result.triggers;
  }

  result.events = events.size();
  result.achieved_rate = result.wall_seconds > 0.0
                             ? static_cast<double>(events.size()) /
                                   result.wall_seconds
                             : 0.0;
  result.p50_ms = trigger_hist.quantile(0.50) * 1e3;
  result.p99_ms = trigger_hist.quantile(0.99) * 1e3;
  result.p999_ms = trigger_hist.quantile(0.999) * 1e3;
  result.max_ms = trigger_hist.max_seconds() * 1e3;

  if (config.check_identity) {
    // Serial replay: same events in generation order through plain
    // append(), one full single-shard evaluation at the same final
    // instant. Concurrent and serial runs must agree rank for rank.
    const activeness::ActivityCatalog catalog =
        activeness::ActivityCatalog::paper_default();
    activeness::EvaluationParams params;
    params.period_length_days = config.period_length_days;
    activeness::ActivityStore serial(config.users, catalog.size());
    for (const LoadEvent& e : events) {
      serial.append(e.user, e.type, e.activity);
    }
    activeness::ShardedEvaluator reference(catalog, params,
                                           activeness::EvalMode::kFull, 1);
    reference.advance(serial, sim_final);
    result.ranks_identical = same_outputs(service.pipeline(), reference);
  }

  // Sustainable = the latency budget held AND ingestion kept (close to)
  // pace. The 0.8 slack absorbs scheduler jitter on loaded runners without
  // masking a real ingest wall.
  result.sustainable = result.ranks_identical &&
                       result.p99_ms <= config.p99_budget_ms &&
                       result.achieved_rate >= 0.8 * rate;
  return result;
}

LoadResult run_load(const LoadGenConfig& config) {
  LoadGenConfig level_config = config;
  level_config.shards =
      config.shards == 0 ? activeness::ShardedEvaluator::default_shard_count()
                         : config.shards;

  LoadResult out;
  out.shards = level_config.shards;
  const std::size_t levels = std::max<std::size_t>(1, config.ramp_levels);
  double rate = std::max(1.0, config.events_per_sec);
  for (std::size_t level = 0; level < levels; ++level) {
    const LoadLevelResult r = run_load_level(level_config, rate);
    out.levels.push_back(r);
    out.ranks_identical = out.ranks_identical && r.ranks_identical;
    if (!r.sustainable) break;
    out.max_sustainable_rate = r.target_rate;
    rate *= std::max(1.1, config.ramp_factor);
  }
  return out;
}

}  // namespace adr::sim
