#pragma once
// Sustained-load latency harness (DESIGN.md §12).
//
// act-style characterization: storage-policy engines are described by the
// event rate they can *sustain* while periodic work stays inside a latency
// budget, not by one-shot wall time. A load run drives concurrent
// trace-event ingestion into an ActivityStore (producer threads ->
// per-shard ingest queues) at a configured events/sec while the calling
// thread fires evaluate/purge triggers (ShardedEvaluator advance + dry-run
// indexed ActiveDR purge) at a fixed cadence, recording each trigger's wall
// time into an obs::Histogram. A ramp raises the rate level by level until
// the trigger p99 breaches the budget (or ingestion itself falls behind);
// the last sustained level is the max sustainable rate.
//
// Determinism: the event stream (users, types, timestamps, impacts) is a
// pure function of (seed, rate, duration) — only the interleaving with
// triggers is wall-clock dependent. Correctness is checked per level by
// replaying the identical stream serially (single-threaded appends, one
// full evaluation at the same final instant) and comparing ranks and scan
// plans element for element.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "activeness/incremental.hpp"
#include "util/time.hpp"

namespace adr::sim {

struct LoadGenConfig {
  std::size_t users = 600;
  std::size_t files_per_user = 20;  ///< synthetic purge population per user
  std::uint64_t seed = 42;
  std::size_t producers = 2;  ///< concurrent ingest threads
  /// Evaluation shards (activeness/sharded.hpp): 0 = default_shard_count(),
  /// 1 = single pipeline.
  std::size_t shards = 0;
  activeness::EvalMode eval_mode = activeness::EvalMode::kAuto;
  int period_length_days = 30;

  double events_per_sec = 4000.0;  ///< first ramp level's target rate
  double duration_seconds = 1.0;   ///< wall time per level
  double trigger_interval_seconds = 0.1;
  /// A level is sustainable while trigger p99 stays at or under this.
  double p99_budget_ms = 50.0;
  std::size_t ramp_levels = 4;
  double ramp_factor = 2.0;

  /// Per-level serial-replay identity check (skippable for pure timing).
  bool check_identity = true;
  /// Fire a dry-run indexed ActiveDR purge inside every trigger.
  bool with_purge = true;

  /// Simulated-clock anchor: events span [sim_begin, sim_begin + span].
  util::TimePoint sim_begin = 1'600'000'000;
  int sim_span_days = 30;
};

struct LoadLevelResult {
  double target_rate = 0.0;
  double achieved_rate = 0.0;  ///< enqueue throughput actually reached
  std::size_t events = 0;
  std::size_t triggers = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  double wall_seconds = 0.0;
  bool ranks_identical = true;
  bool sustainable = true;
};

struct LoadResult {
  std::vector<LoadLevelResult> levels;
  /// Highest target rate whose level stayed inside the p99 budget with
  /// ingestion keeping pace (0 when even the first level broke it).
  double max_sustainable_rate = 0.0;
  /// AND over every level's serial-replay comparison.
  bool ranks_identical = true;
  std::size_t shards = 1;  ///< resolved shard count the run used
};

/// One fixed-rate level: producers + trigger loop + final evaluation +
/// (optionally) the serial-replay identity check.
LoadLevelResult run_load_level(const LoadGenConfig& config, double rate);

/// Full ramp: levels at events_per_sec x ramp_factor^i until one is
/// unsustainable (that level is included in `levels`) or ramp_levels ran.
LoadResult run_load(const LoadGenConfig& config);

}  // namespace adr::sim
