#include "sim/experiment.hpp"

namespace adr::sim {

activeness::EvaluationParams evaluation_params(const ExperimentConfig& config) {
  activeness::EvaluationParams params;
  params.period_length_days = config.lifetime_days;
  params.scheme = config.scheme;
  params.stale = config.stale;
  params.max_periods = config.max_periods;
  return params;
}

namespace {

retention::ActiveDrConfig activedr_config(const ExperimentConfig& config) {
  retention::ActiveDrConfig adr;
  adr.initial_lifetime_days = config.lifetime_days;
  adr.retrospective_passes = config.retrospective_passes;
  adr.retrospective_decay = config.retrospective_decay;
  adr.lifetime_mode = config.lifetime_mode;
  return adr;
}

EmulatorConfig emulator_config(const ExperimentConfig& config) {
  EmulatorConfig emu;
  emu.purge_interval_days = config.purge_interval_days;
  emu.purge_target_utilization = config.purge_target_utilization;
  emu.eval_shards = config.eval_shards;
  return emu;
}

retention::ExemptionList build_exemptions(const ExperimentConfig& config) {
  retention::ExemptionList list;
  for (const auto& p : config.exempt_paths) list.reserve(p);
  return list;
}

}  // namespace

ComparisonResult run_comparison(const synth::TitanScenario& scenario,
                                const ExperimentConfig& config) {
  ActivenessTimeline timeline =
      ActivenessTimeline::for_scenario(scenario, evaluation_params(config),
                                       config.eval_mode, config.eval_shards);
  Emulator emulator(scenario, emulator_config(config), timeline);

  ComparisonResult result;
  {
    FltDriver flt(retention::FltConfig{config.lifetime_days}, timeline);
    result.flt = emulator.run(
        flt, config.flt_strict ? 0.0 : config.purge_target_utilization);
  }
  {
    ActiveDrDriver adr(activedr_config(config), scenario.registry, timeline);
    adr.set_exemptions(build_exemptions(config));
    result.activedr = emulator.run(adr);
  }
  // Group populations at the final evaluation (identical for both runs).
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    result.final_group_counts[g] = result.activedr.groups[g].users_in_group;
  }
  return result;
}

EmulationResult run_flt_strict(const synth::TitanScenario& scenario,
                               const ExperimentConfig& config) {
  ActivenessTimeline timeline =
      ActivenessTimeline::for_scenario(scenario, evaluation_params(config),
                                       config.eval_mode, config.eval_shards);
  EmulatorConfig emu = emulator_config(config);
  emu.purge_target_utilization = 0.0;  // strict: purge every expired file
  Emulator emulator(scenario, emu, timeline);
  FltDriver flt(retention::FltConfig{config.lifetime_days}, timeline);
  return emulator.run(flt);
}

fs::Vfs build_state_at(const synth::TitanScenario& scenario,
                       util::TimePoint as_of, int facility_lifetime_days,
                       int purge_interval_days) {
  fs::Vfs vfs;
  vfs.import_snapshot(scenario.snapshot);
  vfs.set_capacity_bytes(scenario.capacity_bytes);

  const retention::FltPolicy facility_flt(
      retention::FltConfig{facility_lifetime_days});
  const util::Duration interval = util::days(purge_interval_days);
  util::TimePoint next_trigger = scenario.sim_begin + interval;

  for (const auto& entry : scenario.replay.entries()) {
    if (entry.timestamp > as_of) break;
    while (entry.timestamp >= next_trigger && next_trigger <= as_of) {
      facility_flt.run(vfs, next_trigger, 0);
      next_trigger += interval;
    }
    fs::FileMeta meta;
    meta.owner = entry.user;
    meta.stripe_count = entry.stripe_count;
    meta.size_bytes = entry.size_bytes;
    meta.atime = entry.timestamp;
    meta.ctime = entry.timestamp;
    if (entry.op == trace::FileOp::kCreate) {
      vfs.create(entry.path, meta);
    } else if (!vfs.access(entry.path, entry.timestamp)) {
      // The facility's users restore what the purge took (re-transmission);
      // the state at `as_of` reflects what they actually kept working with.
      vfs.create(entry.path, meta);
    }
  }
  while (next_trigger <= as_of) {
    facility_flt.run(vfs, next_trigger, 0);
    next_trigger += interval;
  }
  return vfs;
}

namespace {

fs::Vfs clone_state(const fs::Vfs& vfs) {
  fs::Vfs copy;
  copy.import_snapshot(vfs.export_snapshot());
  copy.set_capacity_bytes(vfs.capacity_bytes());
  return copy;
}

}  // namespace

SnapshotRetentionResult run_snapshot_retention(
    const synth::TitanScenario& scenario, const ExperimentConfig& config,
    util::TimePoint as_of) {
  const fs::Vfs state = build_state_at(scenario, as_of);

  ActivenessTimeline timeline =
      ActivenessTimeline::for_scenario(scenario, evaluation_params(config),
                                       config.eval_mode, config.eval_shards);
  const activeness::ScanPlan& plan = timeline.plan_at(as_of);

  SnapshotRetentionResult result;
  for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
    result.group_counts[g] =
        plan.group(static_cast<activeness::UserGroup>(g)).size();
  }
  const retention::GroupOf group_of = [&](trace::UserId user) {
    return timeline.group_at(user, as_of);
  };

  // Both policies chase the same byte target from identical states. The
  // paper defines this experiment's "total capacity" as the synthesized
  // size of all files in the snapshot itself (§4.1.3), so a 50% target
  // means: purge half of what is currently there.
  const std::uint64_t target = static_cast<std::uint64_t>(
      static_cast<double>(state.total_bytes()) *
      (1.0 - config.purge_target_utilization));
  {
    fs::Vfs vfs = clone_state(state);
    retention::FltPolicy flt(retention::FltConfig{config.lifetime_days});
    flt.set_group_of(group_of);
    result.flt = flt.run(vfs, as_of, target);
  }
  {
    fs::Vfs vfs = clone_state(state);
    retention::ActiveDrPolicy adr(activedr_config(config), scenario.registry);
    result.activedr = adr.run(vfs, as_of, target, plan);
  }
  return result;
}

EmulationResult run_activedr(const synth::TitanScenario& scenario,
                             const ExperimentConfig& config) {
  ActivenessTimeline timeline =
      ActivenessTimeline::for_scenario(scenario, evaluation_params(config),
                                       config.eval_mode, config.eval_shards);
  Emulator emulator(scenario, emulator_config(config), timeline);
  ActiveDrDriver adr(activedr_config(config), scenario.registry, timeline);
  adr.set_exemptions(build_exemptions(config));
  return emulator.run(adr);
}

}  // namespace adr::sim
