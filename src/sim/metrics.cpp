#include "sim/metrics.hpp"

#include <stdexcept>

namespace adr::sim {

MetricsCollector::MetricsCollector(util::TimePoint begin, util::TimePoint end)
    : begin_(util::floor_to_day(begin)) {
  const std::int64_t n =
      (util::floor_to_day(end - 1) - begin_) / util::kSecondsPerDay + 1;
  if (n <= 0) throw std::invalid_argument("MetricsCollector: empty window");
  days_.resize(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < days_.size(); ++i) {
    days_[i].day = begin_ + static_cast<util::TimePoint>(i) *
                                util::kSecondsPerDay;
  }
}

void MetricsCollector::record_access(util::TimePoint t,
                                     activeness::UserGroup group, bool miss) {
  const std::int64_t idx = (util::floor_to_day(t) - begin_) /
                           util::kSecondsPerDay;
  if (idx < 0 || idx >= static_cast<std::int64_t>(days_.size())) return;
  auto& d = days_[static_cast<std::size_t>(idx)];
  ++d.accesses;
  ++d.accesses_by_group[static_cast<std::size_t>(group)];
  if (miss) {
    ++d.misses;
    ++d.misses_by_group[static_cast<std::size_t>(group)];
  }
}

std::size_t MetricsCollector::total_accesses() const {
  std::size_t n = 0;
  for (const auto& d : days_) n += d.accesses;
  return n;
}

std::size_t MetricsCollector::total_misses() const {
  std::size_t n = 0;
  for (const auto& d : days_) n += d.misses;
  return n;
}

std::size_t MetricsCollector::misses_in_group(activeness::UserGroup g) const {
  std::size_t n = 0;
  for (const auto& d : days_) n += d.misses_by_group[static_cast<std::size_t>(g)];
  return n;
}

util::RangeHistogram miss_ratio_day_histogram(
    const std::vector<DailyMissStats>& daily) {
  util::RangeHistogram h = util::RangeHistogram::paper_miss_ratio_bins();
  for (const auto& d : daily) h.add(d.miss_ratio());
  return h;
}

std::size_t days_above(const std::vector<DailyMissStats>& daily,
                       double threshold) {
  std::size_t n = 0;
  for (const auto& d : daily) {
    if (d.miss_ratio() > threshold) ++n;
  }
  return n;
}

std::vector<MonthlyGroupMisses> monthly_group_misses(
    const std::vector<DailyMissStats>& daily) {
  std::vector<MonthlyGroupMisses> out;
  for (const auto& d : daily) {
    const std::string label = util::format_month(d.day);
    if (out.empty() || out.back().month != label) {
      out.push_back(MonthlyGroupMisses{label, {}});
    }
    for (std::size_t g = 0; g < activeness::kGroupCount; ++g) {
      out.back().misses[g] += d.misses_by_group[g];
    }
  }
  return out;
}

std::vector<double> daily_miss_reduction_ratios(
    const std::vector<DailyMissStats>& baseline,
    const std::vector<DailyMissStats>& treated, activeness::UserGroup group) {
  const std::size_t gi = static_cast<std::size_t>(group);
  std::vector<double> out;
  const std::size_t n = std::min(baseline.size(), treated.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double base = static_cast<double>(baseline[i].misses_by_group[gi]);
    if (base <= 0.0) continue;
    const double trt = static_cast<double>(treated[i].misses_by_group[gi]);
    out.push_back((base - trt) / base);
  }
  return out;
}

}  // namespace adr::sim
