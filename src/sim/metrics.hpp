#pragma once
// Replay metrics: the daily and per-group file-miss accounting every
// evaluation figure is derived from (Figs. 1, 6, 7, 8).

#include <array>
#include <string>
#include <vector>

#include "activeness/classifier.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace adr::sim {

/// One replay day's access/miss tallies.
struct DailyMissStats {
  util::TimePoint day = 0;  ///< midnight UTC
  std::size_t accesses = 0;
  std::size_t misses = 0;
  std::array<std::size_t, activeness::kGroupCount> misses_by_group{};
  std::array<std::size_t, activeness::kGroupCount> accesses_by_group{};

  /// Fraction of the day's accesses that missed (0 when idle).
  double miss_ratio() const {
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

/// Collects per-day miss statistics across a replay window.
class MetricsCollector {
 public:
  MetricsCollector(util::TimePoint begin, util::TimePoint end);

  void record_access(util::TimePoint t, activeness::UserGroup group,
                     bool miss);

  const std::vector<DailyMissStats>& daily() const { return days_; }

  std::size_t total_accesses() const;
  std::size_t total_misses() const;
  std::size_t misses_in_group(activeness::UserGroup g) const;

 private:
  util::TimePoint begin_;
  std::vector<DailyMissStats> days_;
};

/// The paper's Fig. 1/6 histogram: how many days fall into each daily
/// miss-ratio range.
util::RangeHistogram miss_ratio_day_histogram(
    const std::vector<DailyMissStats>& daily);

/// Number of days whose miss ratio strictly exceeds `threshold` (the
/// paper's ">5% misses on 138 days" statistic).
std::size_t days_above(const std::vector<DailyMissStats>& daily,
                       double threshold);

/// Monthly per-group miss sums (Fig. 7's series). Returns one row per
/// calendar month: {label, misses per group}.
struct MonthlyGroupMisses {
  std::string month;  ///< "YYYY-MM"
  std::array<std::size_t, activeness::kGroupCount> misses{};
};
std::vector<MonthlyGroupMisses> monthly_group_misses(
    const std::vector<DailyMissStats>& daily);

/// Fig. 8's samples: per-day file-miss reduction ratio of `treated` vs
/// `baseline` for one group, over days where the baseline missed anything:
/// (baseline − treated) / baseline.
std::vector<double> daily_miss_reduction_ratios(
    const std::vector<DailyMissStats>& baseline,
    const std::vector<DailyMissStats>& treated, activeness::UserGroup group);

}  // namespace adr::sim
