#include "sim/scale.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "activeness/sharded.hpp"
#include "core/service.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "retention/policy.hpp"
#include "trace/user_registry.hpp"
#include "util/memory.hpp"

namespace adr::sim {
namespace {

using Clock = std::chrono::steady_clock;

synth::StreamSynthConfig synth_config(const ScaleConfig& config) {
  synth::StreamSynthConfig s;
  s.users = config.users;
  s.seed = config.seed;
  s.sim_span_days = config.sim_span_days;
  s.initial_files_per_user = config.initial_files_per_user;
  s.backfill_days = config.backfill_days;
  s.events_per_user_day = config.events_per_user_day;
  return s;
}

/// One harness over either event source; `next` yields false when done.
template <typename NextFn>
ScaleResult drive(const ScaleConfig& config, NextFn&& next_event) {
  ScaleResult result;
  result.users = config.users;

  core::ServiceConfig service_config;
  service_config.lifetime_days = config.lifetime_days;
  service_config.eval_shards = config.shards;
  service_config.scan_mode = retention::ScanMode::kIndexed;
  service_config.dry_run = config.dry_run;
  service_config.record_victims = config.record_victims;
  core::Service service(
      trace::UserRegistry::with_synthetic_users(config.users), service_config);
  service.register_paper_types();
  service.vfs().set_memory_budget_bytes(config.memory_budget_bytes);

  service.prepare_ingest();
  const synth::StreamSynthConfig synth_cfg = synth_config(config);
  service.evaluate(synth_cfg.sim_begin);
  activeness::ActivityStore& store = service.store();
  result.shards = service.pipeline().shard_count();

  obs::Histogram& trigger_hist =
      obs::MetricsRegistry::global().histogram("scale.trigger_seconds");
  trigger_hist.reset();
  obs::Counter& faults =
      obs::MetricsRegistry::global().counter("vfs.faults");
  const std::uint64_t faults_before = faults.value();

  const auto trigger_step = static_cast<util::Duration>(
      std::max(1.0, config.trigger_every_days *
                        static_cast<double>(util::kSecondsPerDay)));
  util::TimePoint next_trigger = synth_cfg.sim_begin + trigger_step;
  const util::TimePoint sim_end =
      synth_cfg.sim_begin + util::days(config.sim_span_days);

  const auto fire = [&](util::TimePoint at) {
    const std::uint64_t target =
        retention::purge_target_bytes(service.vfs(), 0.75);
    const Clock::time_point t0 = Clock::now();
    const retention::PurgeReport report = service.purge(at, target);
    trigger_hist.observe(
        std::chrono::duration<double>(Clock::now() - t0).count());
    ++result.triggers;
    result.purged_bytes += report.purged_bytes;
    result.purged_files += report.purged_files;
    if (config.record_victims) {
      result.victims_per_trigger.push_back(report.victim_paths);
    }
  };

  const Clock::time_point start = Clock::now();
  {
    // One outer span per run: closing it samples proc.rss_* exactly once
    // on top of the per-trigger samples from purge()'s own spans.
    obs::TimerSpan run_span("scale.run");
    synth::StreamEvent e;
    while (next_event(e)) {
      while (e.timestamp >= next_trigger && next_trigger < sim_end) {
        fire(next_trigger);
        next_trigger += trigger_step;
      }
      switch (e.kind) {
        case synth::StreamEventKind::kJobSubmit:
          if (config.streamed) {
            store.enqueue(e.user, core::kJobActivityType,
                          {e.timestamp, e.impact});
          } else {
            store.append(e.user, core::kJobActivityType,
                         {e.timestamp, e.impact});
          }
          break;
        case synth::StreamEventKind::kPublication:
          if (config.streamed) {
            store.enqueue(e.user, core::kPublicationActivityType,
                          {e.timestamp, e.impact});
          } else {
            store.append(e.user, core::kPublicationActivityType,
                         {e.timestamp, e.impact});
          }
          break;
        case synth::StreamEventKind::kFileCreate: {
          fs::FileMeta meta;
          meta.owner = e.user;
          meta.size_bytes = e.size_bytes;
          meta.atime = e.timestamp;
          meta.ctime = e.timestamp;
          meta.stripe_count = 1;
          service.vfs().create(synth::StreamSynth::path_of(e.user, e.ordinal),
                               meta);
          ++result.files_created;
          break;
        }
        case synth::StreamEventKind::kFileAccess:
          // Owner hint: under a budget the target subtree may be evicted.
          // A miss is expected when a purge already removed the ordinal.
          service.vfs().access(synth::StreamSynth::path_of(e.user, e.ordinal),
                               e.timestamp, e.user);
          break;
      }
      ++result.events;
    }
    // Closing trigger past the span end: drains the ingest queues and
    // fixes the instant the identity fingerprint is taken at.
    fire(sim_end + util::days(1));
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.events_per_sec =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.events) / result.wall_seconds
          : 0.0;
  result.trigger_p50_ms = trigger_hist.quantile(0.50) * 1e3;
  result.trigger_p99_ms = trigger_hist.quantile(0.99) * 1e3;
  result.trigger_max_ms = trigger_hist.max_seconds() * 1e3;
  result.rss_peak_bytes = util::rss_peak();
  result.vfs_resident_bytes = service.vfs().resident_bytes_estimate();
  result.vfs_spilled_bytes = service.vfs().spilled_bytes();
  result.evicted_users = service.vfs().evicted_user_count();
  result.residency_faults = faults.value() - faults_before;

  // Rank fingerprint: one line per user, exact keys — memcmp-equality
  // across runs is the identity contract.
  const auto& users = service.pipeline().users();
  result.rank_fingerprint.reserve(users.size());
  for (const auto& ua : users) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%u:%.21Lg:%.21Lg:%lld", ua.user,
                  ua.op.sort_key(), ua.oc.sort_key(),
                  static_cast<long long>(ua.last_activity));
    result.rank_fingerprint.push_back(buf);
  }
  return result;
}

}  // namespace

ScaleResult run_scale(const ScaleConfig& config) {
  if (config.streamed) {
    synth::StreamSynth stream(synth_config(config));
    return drive(config,
                 [&](synth::StreamEvent& e) { return stream.next(e); });
  }
  const std::vector<synth::StreamEvent> events =
      synth::StreamSynth::materialize(synth_config(config));
  std::size_t i = 0;
  return drive(config, [&](synth::StreamEvent& e) {
    if (i >= events.size()) return false;
    e = events[i++];
    return true;
  });
}

ScaleIdentityResult check_scale_identity(const ScaleConfig& config,
                                         std::uint64_t budget_bytes) {
  ScaleIdentityResult out;

  // 1. The event stream itself: heap-merged next() order must equal the
  // sorted materialized order, field for field.
  {
    const synth::StreamSynthConfig synth_cfg = synth_config(config);
    const std::vector<synth::StreamEvent> mat =
        synth::StreamSynth::materialize(synth_cfg);
    synth::StreamSynth stream(synth_cfg);
    synth::StreamEvent e;
    std::size_t i = 0;
    out.events_identical = true;
    while (stream.next(e)) {
      if (i >= mat.size() || e.timestamp != mat[i].timestamp ||
          e.user != mat[i].user || e.kind != mat[i].kind ||
          e.ordinal != mat[i].ordinal || e.impact != mat[i].impact ||
          e.size_bytes != mat[i].size_bytes) {
        out.events_identical = false;
        break;
      }
      ++i;
    }
    out.events_identical = out.events_identical && i == mat.size();
  }

  // 2. End-to-end: streamed ingest under the budget vs materialized replay
  // with residency off — ranks and purge victims must match exactly.
  ScaleConfig streamed = config;
  streamed.streamed = true;
  streamed.memory_budget_bytes = budget_bytes;
  streamed.record_victims = true;
  ScaleConfig materialized = config;
  materialized.streamed = false;
  materialized.memory_budget_bytes = 0;
  materialized.record_victims = true;

  const ScaleResult a = run_scale(streamed);
  const ScaleResult b = run_scale(materialized);
  out.triggers = a.triggers;
  out.ranks_identical = a.rank_fingerprint == b.rank_fingerprint;
  out.victims_identical = a.victims_per_trigger == b.victims_per_trigger;
  return out;
}

}  // namespace adr::sim
