#pragma once
// Million-user scale harness (DESIGN.md §15).
//
// run_scale drives a core::Service from synth::StreamSynth's merged event
// stream: job/publication activities enqueue into the ActivityStore's
// per-shard ingest queues, file creates/accesses hit the Vfs (optionally
// under a residency byte budget), and ActiveDR purge triggers fire at a
// fixed simulated cadence. Nothing is materialized up front — peak RSS
// measures the retention structures, not the workload generator.
//
// Correctness anchor: check_scale_identity runs the same configuration
// twice — streamed ingest with the residency budget on, then the
// materialized event vector with residency off — and demands byte-identical
// event sequences, final ranks, and per-trigger purge victims. The scale
// path is only trusted because the small tier proves it exact.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "synth/stream_synth.hpp"
#include "util/time.hpp"

namespace adr::sim {

struct ScaleConfig {
  std::size_t users = 10'000;
  std::uint64_t seed = 42;
  std::size_t shards = 0;  ///< evaluator fan-out (0 = default_shard_count)

  std::size_t initial_files_per_user = 10;
  double events_per_user_day = 2.0;
  int sim_span_days = 30;
  int backfill_days = 400;
  int lifetime_days = 30;  ///< Eq. 7 base lifetime (backfill is expired)

  /// Vfs residency budget in bytes; 0 disables eviction.
  std::uint64_t memory_budget_bytes = 0;
  /// Simulated days between purge triggers.
  double trigger_every_days = 5.0;

  bool streamed = true;      ///< false: apply the materialized vector
  bool dry_run = false;      ///< purges mutate by default (scale realism)
  bool record_victims = false;
};

struct ScaleResult {
  std::size_t users = 0;
  std::size_t shards = 1;
  std::size_t events = 0;
  std::size_t files_created = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  std::size_t triggers = 0;
  double trigger_p50_ms = 0.0;
  double trigger_p99_ms = 0.0;
  double trigger_max_ms = 0.0;
  std::uint64_t rss_peak_bytes = 0;
  std::uint64_t vfs_resident_bytes = 0;
  std::uint64_t vfs_spilled_bytes = 0;
  std::size_t evicted_users = 0;
  std::uint64_t residency_faults = 0;
  std::uint64_t purged_bytes = 0;
  std::size_t purged_files = 0;
  /// Per-trigger victim paths (record_victims only) — the identity probe.
  std::vector<std::vector<std::string>> victims_per_trigger;
  /// Final (user, op key, oc key, last_activity) tuples for rank identity.
  std::vector<std::string> rank_fingerprint;
};

ScaleResult run_scale(const ScaleConfig& config);

struct ScaleIdentityResult {
  bool events_identical = false;   ///< next()-drain vs materialize()
  bool ranks_identical = false;    ///< streamed+budget vs materialized
  bool victims_identical = false;  ///< per-trigger victim path lists
  std::size_t triggers = 0;
  bool ok() const {
    return events_identical && ranks_identical && victims_identical;
  }
};

/// The small-tier correctness anchor (forces record_victims and real
/// purges): streamed mode runs under `budget_bytes` (pick one small enough
/// to force evictions), materialized mode runs with residency off.
ScaleIdentityResult check_scale_identity(const ScaleConfig& config,
                                         std::uint64_t budget_bytes);

}  // namespace adr::sim
