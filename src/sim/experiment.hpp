#pragma once
// Paper-experiment runner: wires a Titan scenario, an activeness timeline,
// and the two policies into the §4 evaluation procedure, so every bench
// binary is a thin printer over one of these runs.

#include "sim/emulator.hpp"

namespace adr::sim {

struct ExperimentConfig {
  /// File lifetime == activeness period length d (the paper sweeps one knob
  /// for both: 7 / 30 / 60 / 90).
  int lifetime_days = 90;
  int purge_interval_days = 7;
  /// Utilization ActiveDR's purge must reach (fraction of capacity); <= 0
  /// disables the target.
  double purge_target_utilization = 0.5;

  /// The FLT side of run_comparison: true (default, the paper's setup) runs
  /// the facility's strict FLT — every expired file is purged at every
  /// trigger, no byte target. False gives FLT the same stop-at-target
  /// mercy as ActiveDR (a what-if the ablation benches can probe).
  bool flt_strict = true;

  // ActiveDR knobs (§3.4 defaults).
  int retrospective_passes = 5;
  double retrospective_decay = 0.20;
  activeness::LifetimeMode lifetime_mode =
      activeness::LifetimeMode::kActiveCategoriesOnly;
  activeness::ExponentScheme scheme =
      activeness::ExponentScheme::kPaperExponent;
  activeness::StaleHandling stale = activeness::StaleHandling::kClampOldest;
  int max_periods = 0;
  /// How the timeline re-evaluates at each trigger (delta-aware by default;
  /// kFull pins the re-rank-everyone baseline). Full and incremental are
  /// result-identical — this is a performance knob.
  activeness::EvalMode eval_mode = activeness::EvalMode::kAuto;
  /// User-range shards for the trigger evaluations (0 = one per available
  /// thread, 1 = single pipeline; identical results either way).
  std::size_t eval_shards = 0;

  /// Optional reserved paths (purge exemption) applied to ActiveDR runs.
  std::vector<std::string> exempt_paths;
};

activeness::EvaluationParams evaluation_params(const ExperimentConfig& config);

/// A full FLT-vs-ActiveDR comparison on one scenario (both replays share one
/// activeness timeline, so classifications — and thus per-group metrics —
/// are identical across the two runs).
struct ComparisonResult {
  EmulationResult flt;
  EmulationResult activedr;
  /// Users per group at the final evaluation (G1..G4 order).
  std::array<std::size_t, activeness::kGroupCount> final_group_counts{};
};

ComparisonResult run_comparison(const synth::TitanScenario& scenario,
                                const ExperimentConfig& config);

/// FLT alone in strict mode (no purge target) — the Fig. 1 setup.
EmulationResult run_flt_strict(const synth::TitanScenario& scenario,
                               const ExperimentConfig& config);

/// The §4.4 experiment behind Figs. 9-11 and Tables 4-6: take the scratch
/// state as of `as_of` (the paper uses the last weekly snapshot it has,
/// 2016-08-23), run ONE retention pass per policy — both driven to the same
/// purge target — and compare what each retains/purges per group. FLT
/// purges expired files in system scan order until the target; ActiveDR
/// runs its full prioritized procedure.
struct SnapshotRetentionResult {
  retention::PurgeReport flt;
  retention::PurgeReport activedr;
  std::array<std::size_t, activeness::kGroupCount> group_counts{};
};

SnapshotRetentionResult run_snapshot_retention(
    const synth::TitanScenario& scenario, const ExperimentConfig& config,
    util::TimePoint as_of);

/// Scratch state at `as_of`: the initial snapshot plus the replay up to that
/// instant under the facility's own strict FLT process (the same process
/// that produced the initial snapshot).
fs::Vfs build_state_at(const synth::TitanScenario& scenario,
                       util::TimePoint as_of, int facility_lifetime_days = 90,
                       int purge_interval_days = 7);

/// ActiveDR alone (e.g. for ablation sweeps).
EmulationResult run_activedr(const synth::TitanScenario& scenario,
                             const ExperimentConfig& config);

}  // namespace adr::sim
