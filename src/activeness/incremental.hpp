#pragma once
// The delta-aware evaluation pipeline (DESIGN.md §9).
//
// A full evaluation re-ranks every user at every purge trigger, but between
// two triggers almost nothing changes: most users had no new activity, and
// the bulk of the population already sits at Φ = 0 exactly (some period is
// empty) where growing the window cannot resurrect them. IncrementalEvaluator
// exploits both facts. It keeps the latest evaluation (dense per-user
// activeness, group table, sorted ScanPlan) and, on each advance to a new
// t_c, re-evaluates only users that can have changed:
//
//  * users the store marked dirty (streaming appends since the last drain);
//  * users with activity inside (t_prev, t_c] revealed by the advancing trim
//    (replay stores hold the whole trace up front, so "new" events surface
//    by time moving, not by appends) — answered by the store's chronological
//    index;
//  * any cached user that fails the *skip rule*.
//
// Skip rule (proved in DESIGN.md §9.2): a user with no new activity keeps an
// identical evaluation at t_c iff every data-bearing category rank already
// sits at Φ = 0 *and* that zero provably persists at the new t_c. Four
// independent certificates establish persistence, each checkable in O(1)
// against the store's aggregates (no stream walk):
//   * pigeonhole — more periods than activities (m only grows, the stream
//     is frozen);
//   * zero total impact (frozen totals);
//   * stale newest period — the last activity strictly predates t_c − d;
//   * static gap — some inter-activity gap wider than 2d swallows a full
//     period wherever the t_c-anchored boundaries land. Durable uncapped;
//     under a max_periods cap P ≥ 4 it stays durable when the gap's right
//     end is recent enough (ts_right ≥ ts_newest − (P−4)·d) that the capped
//     window provably keeps an aligned period inside the gap until the
//     stale-newest argument takes over (DESIGN.md §9.2).
// Fresh users (no data at all) trivially qualify. Everyone else — anyone
// with a live positive rank — is re-evaluated, because Eq. 1's m grows with
// t_c and dilutes Avg even without new events.
//
// Re-evaluated users are spliced into the cached ScanPlan with scan_less
// (a strict total order), so the patched plan is element-for-element
// identical to a from-scratch build_scan_plan. Both eval modes therefore
// produce identical ranks, classifications, scan orderings, and downstream
// PurgeReports — the property suite in tests/activeness/test_incremental.cpp
// holds them to it.

#include <cstdint>
#include <string>
#include <vector>

#include "activeness/classifier.hpp"
#include "activeness/evaluator.hpp"

namespace adr::activeness {

/// How a pipeline owner evaluates at each trigger. Mirrors
/// retention::ScanMode: auto resolves to the fast path, the explicit modes
/// pin it for tests/benches.
enum class EvalMode {
  kAuto,         ///< incremental, falling back to full where required
  kFull,         ///< re-evaluate every user at every advance
  kIncremental,  ///< delta-aware: dirty users + skip-rule failures only
};

const char* to_string(EvalMode mode);
/// Parses "auto" / "full" / "incremental"; returns false on anything else.
bool parse_eval_mode(const std::string& text, EvalMode& out);

/// What one advance() did — surfaced for tests and the obs counters.
struct AdvanceStats {
  bool full_rebuild = false;      ///< first advance / backwards time / kFull
  bool auto_full = false;         ///< kAuto currently resolved to full
  std::size_t users_dirty = 0;    ///< delta candidates (appends + window)
  std::size_t users_reevaluated = 0;
  std::size_t users_skipped = 0;  ///< cached evaluation provably unchanged
};

/// Stateful evaluation pipeline: owns the latest evaluation and advances it
/// in place. Wraps the stateless Evaluator math — every rank it produces
/// comes out of Evaluator::evaluate_user, never a second code path.
class IncrementalEvaluator {
 public:
  IncrementalEvaluator(const ActivityCatalog& catalog,
                       EvaluationParams base_params,
                       EvalMode mode = EvalMode::kAuto);
  /// The pipeline keeps a pointer to the caller's catalog for its whole
  /// lifetime; binding a temporary would dangle by the first advance().
  IncrementalEvaluator(ActivityCatalog&&, EvaluationParams,
                       EvalMode = EvalMode::kAuto) = delete;

  /// Shard-segment pipeline (used by ShardedEvaluator): evaluates only the
  /// users in [range_begin, range_end) and drains dirty shard `dirty_shard`
  /// from the store, whose routing the owner must have configured with a
  /// matching ShardMap (ActivityStore::set_dirty_shards). users()/groups()/
  /// frozen state are then indexed range-locally; plan() holds only the
  /// range's users. The default-constructed full pipeline is the
  /// dirty-shard-free whole-store special case.
  IncrementalEvaluator(const ActivityCatalog& catalog,
                       EvaluationParams base_params, EvalMode mode,
                       trace::UserId range_begin, trace::UserId range_end,
                       std::size_t dirty_shard);
  IncrementalEvaluator(ActivityCatalog&&, EvaluationParams, EvalMode,
                       trace::UserId, trace::UserId, std::size_t) = delete;

  /// Advance the evaluation to t_c = `now`. Finalizes the store if bulk
  /// rows are pending, drains its dirty set, re-evaluates what can have
  /// changed, and patches the cached plan. Full-rebuilds on the first call,
  /// when `now` moves backwards, or in kFull mode.
  AdvanceStats advance(ActivityStore& store, util::TimePoint now);

  /// Latest evaluation (valid after the first advance()). In a shard
  /// segment, users()/groups() are dense over the *range* (element i is
  /// user range_begin() + i) and plan() covers only those users.
  const ScanPlan& plan() const { return plan_; }
  const std::vector<UserActiveness>& users() const { return users_; }
  const std::vector<UserGroup>& groups() const { return groups_; }
  UserGroup group_of(trace::UserId user) const {
    return groups_[user - range_begin_];
  }

  bool evaluated() const { return evaluated_; }
  util::TimePoint last_now() const { return last_now_; }
  EvalMode mode() const { return mode_; }
  /// Re-pin the evaluation mode between advances. The degradation ladder
  /// (DESIGN.md §14.2) uses this to force kIncremental under load — delta
  /// work is bounded by the dirty set, so no advance can decide to pay a
  /// full-rebuild latency spike — and to restore the configured mode once
  /// pressure clears. Output is unaffected: every mode computes identical
  /// ranks, only the work schedule differs.
  void set_mode(EvalMode mode) { mode_ = mode; }
  trace::UserId range_begin() const { return range_begin_; }

  /// Users re-evaluated by the last advance() (global ids, ascending).
  /// Meaningful only when that advance took the delta path — a full rebuild
  /// re-evaluates everyone without tracking the list.
  const std::vector<trace::UserId>& last_reevaluated() const {
    return reeval_;
  }

  /// Users currently memoized as durably skippable (frozen_ bits set).
  std::size_t frozen_users() const { return frozen_count_; }
  /// Every cached user is frozen: with no new activity this pipeline's next
  /// advance is provably a no-op, so a sharded owner can leave the whole
  /// segment asleep (the wake conditions in sharded.cpp lean on this).
  bool quiescent() const {
    return evaluated_ && frozen_count_ == users_.size();
  }

  /// kAuto hysteresis (ROADMAP: auto-mode fallback). When the delta fraction
  /// stays at or above the rebuild threshold (re-evals ≥ half the users, the
  /// same cutoff the splice already uses) for kFallbackAfter consecutive
  /// triggers, the per-user delta bookkeeping is pure overhead: auto resolves
  /// to full rebuilds until the workload calms down — the candidate fraction
  /// (still measured cheaply while running full) dropping below a quarter of
  /// the users for kRecoverAfter consecutive triggers flips it back. The two
  /// thresholds are deliberately far apart so a workload hovering near the
  /// boundary cannot make the mode oscillate.
  static constexpr int kFallbackAfter = 3;
  static constexpr int kRecoverAfter = 3;
  bool auto_full() const { return auto_full_; }

  /// Wall time spent evaluating inside this pipeline instance (advance()
  /// only) — per-instance, unlike the process-global registry spans, so two
  /// concurrent pipelines never bleed into each other's Fig. 12b numbers.
  double seconds() const { return seconds_; }

 private:
  void rebuild(ActivityStore& store, util::TimePoint now);
  /// True when the cached evaluation provably equals a re-evaluation at
  /// `now`. Sets `durable` when every certificate used is monotone in t_c
  /// (the skip then holds at every later trigger until the user turns
  /// dirty, so advance() memoizes it in frozen_ and never rechecks).
  bool skippable(const ActivityStore& store, const UserActiveness& ua,
                 util::TimePoint now, bool& durable) const;

  /// Size of the evaluated user range: the whole store in full mode, the
  /// fixed [range_begin_, range_end_) in a shard segment.
  std::size_t range_size(const ActivityStore& store) const;
  std::vector<trace::UserId> drain_dirty(ActivityStore& store) const;

  static constexpr std::size_t kGlobalDirty = static_cast<std::size_t>(-1);

  const ActivityCatalog* catalog_;
  EvaluationParams base_params_;
  EvalMode mode_;
  std::vector<ActivityTypeId> op_types_;
  std::vector<ActivityTypeId> oc_types_;
  trace::UserId range_begin_ = 0;
  trace::UserId range_end_ = 0;  // meaningful only when ranged_
  bool ranged_ = false;
  std::size_t dirty_shard_ = kGlobalDirty;

  bool evaluated_ = false;
  util::TimePoint last_now_ = 0;
  bool auto_full_ = false;  // kAuto currently resolved to full rebuilds
  int hot_streak_ = 0;      // consecutive triggers at/above rebuild threshold
  int calm_streak_ = 0;     // consecutive calm triggers while auto_full_
  std::vector<UserActiveness> users_;  // dense by user id − range_begin_
  std::vector<UserGroup> groups_;      // dense by user id − range_begin_
  /// Users whose skip was established by durable (t_c-monotone)
  /// certificates: skipped without any recheck until they turn dirty.
  std::vector<std::uint8_t> frozen_;   // dense by user id − range_begin_
  std::size_t frozen_count_ = 0;       // set bits in frozen_

  // Per-advance scratch, kept across triggers so the delta path allocates
  // nothing in steady state.
  std::vector<std::uint8_t> candidate_flags_;
  std::vector<trace::UserId> reeval_;
  std::vector<UserActiveness> updated_;
  std::vector<UserActiveness> merge_scratch_;
  ScanPlan plan_;
  double seconds_ = 0.0;
};

}  // namespace adr::activeness
