#pragma once
// The user-activeness evaluation algorithm of §3.2 (Eqs. 1–6).
//
// For one activity type λ with sorted activities {a_0..a_(k-1)} and period
// length d days evaluated at time t_c:
//
//   m      = ceil((t_c − a_0.ts) / to_ts(d))                    (Eq. 1)
//   Avg    = (Σ_i D_(a_i)) / m                                  (Eq. 2)
//   b_p    = D_p / Avg        per period p                      (Eq. 3)
//   e(a_x) = m − ceil((t_c − a_x.ts) / to_ts(d)) + 1            (Eq. 4)
//   Φλ     = Π_(e=1..m) (b_(p_e))^e                             (Eq. 5)
//   Φop    = Π Φλop ,  Φoc = Π Φλoc                             (Eq. 6)
//
// Numerics: the product of powers spans hundreds of orders of magnitude, so
// ranks are carried as log Φ (long double) with an explicit zero flag (any
// period with no activity ⇒ b = 0 ⇒ Φ = 0, exactly per the equations).
// Activeness thresholds and ordering are exact in log space; the linear
// value used by Eq. 7's lifetime adjustment is clamped on conversion.
//
// Degenerate inputs, which the paper leaves implicit, are pinned down here:
//  * a type with no activities at all ⇒ no-data rank: *neutral* (acts as 1.0
//    in products, counts as inactive for classification) — §3.4's "initial
//    rank 1.0" without letting empty types zero out Eq. 6;
//  * first activity at/after t_c ⇒ m = 1 (Eq. 1 would give 0);
//  * activities older than the m-period window (e < 1) are dropped;
//  * activities at/after t_c (e > m) count toward the newest period m;
//  * zero total impact ⇒ Φ = 0.

#include <limits>
#include <span>
#include <vector>

#include "activeness/activity.hpp"
#include "util/time.hpp"

namespace adr::activeness {

/// What happens to activities older than the m-period window (Eq. 4 yields
/// e < 1 for them; the paper leaves this case undefined).
enum class StaleHandling {
  /// Attribute them to the oldest period (e = 1). Default: when
  /// `max_periods` caps the window, history older than the window still
  /// counts toward the oldest period instead of silently vanishing. (With
  /// t_c-anchored periods this matters only under a cap: uncapped, e >= 1
  /// for every activity at or before t_c.)
  kClampOldest,
  /// Drop them: only the trailing m-period window counts. Strictest recency
  /// reading under a `max_periods` cap.
  kDrop,
};

/// How period ratios are exponentiated when forming Φλ. kPaperExponent is
/// Eq. 5; the alternatives exist for the ablation bench.
enum class ExponentScheme {
  kPaperExponent,  ///< (b_e)^e — recency-weighted, the paper's design
  kUniform,        ///< (b_e)^1 — no recency weighting
  kCappedLinear,   ///< (b_e)^min(e, cap) — recency weighting saturates
};

struct EvaluationParams {
  /// Period length d in days (the paper sweeps 7 / 30 / 60 / 90).
  int period_length_days = 90;
  /// t_c — the instant the evaluation runs.
  util::TimePoint now = 0;
  /// Cap on the number of periods m (0 = unbounded, Eq. 1 verbatim).
  int max_periods = 0;
  StaleHandling stale = StaleHandling::kClampOldest;
  ExponentScheme scheme = ExponentScheme::kPaperExponent;
  /// Exponent cap for kCappedLinear.
  int exponent_cap = 8;
};

/// Rank of one activity type, or of one category after Eq. 6 combination.
/// Φ lives in {0} ∪ (0,1) ∪ [1,+inf); Φ ≥ 1 means active.
struct Rank {
  bool has_data = false;      ///< false = no activities (neutral element)
  bool zero = false;          ///< Φ == 0 exactly (some period was empty)
  /// The zero is *structural* — pigeonhole (more periods than activities)
  /// or non-positive total impact — so it provably persists at every later
  /// evaluation instant until new activity arrives (m never shrinks and the
  /// totals are frozen). The incremental pipeline's skip rule leans on this:
  /// a sticky zero can be carried forward without recency checks, where a
  /// plain empty-period zero can clear once the window shifts.
  bool sticky_zero = false;
  long double log_phi = 0.0;  ///< ln Φ; meaningful only if has_data && !zero

  /// Active per the paper's threshold: Φ ≥ 1, which requires actual data.
  bool active() const { return has_data && !zero && log_phi >= 0.0L; }

  /// Linear Φ for Eq. 7, clamped into [min_value, max_value].
  /// No-data ranks convert to 1.0 (§3.4's initial rank); zero ranks to
  /// min_value.
  double value(double min_value = 0.0, double max_value = 1e12) const;

  /// Sort key for the ascending-activeness scan: zero < any positive Φ;
  /// no-data sorts as Φ = 1 (its §3.4 initial value).
  long double sort_key() const;
  bool operator<(const Rank& other) const {
    return sort_key() < other.sort_key();
  }

  /// Multiply (the Π of Eqs. 5/6). No-data is neutral; zero absorbs.
  Rank& operator*=(const Rank& other);

  static Rank no_data() { return Rank{}; }
  static Rank from_value(double v);
};

/// Eq. 1–5 for one type: evaluate a time-sorted activity stream.
Rank evaluate_stream(std::span<const Activity> stream,
                     const EvaluationParams& params);

/// Eq. 1–5 through a prefix-impact aggregate: per-period impacts resolve as
/// prefix differences at binary-searched period boundaries — O(m log k) per
/// stream, and O(log k) for the dominant zero-rank case (any user whose
/// newest period is empty, plus the m > k pigeonhole) — instead of the
/// O(k) walk of evaluate_stream. `stream` must already be trimmed to
/// params.now and `prefix` must be its aggregate (size k+1, prefix[0] = 0,
/// see ActivityStore::prefix). Equal to evaluate_stream up to
/// floating-point summation order.
Rank evaluate_stream_indexed(std::span<const Activity> stream,
                             std::span<const double> prefix,
                             const EvaluationParams& params);

/// A user's evaluated activeness: Φop, Φoc (Eq. 6).
struct UserActiveness {
  trace::UserId user = trace::kInvalidUser;
  Rank op;  ///< operation category rank
  Rank oc;  ///< outcome category rank
  /// Timestamp of the user's most recent activity (any type) at or before
  /// t_c; INT64_MIN when none. Used as the tie-break in the ascending scan:
  /// most of the population shares rank Φ = 0 exactly (any empty period
  /// zeroes the product), and among those the *longest-dormant* users must
  /// be purged first for the scan order to mean anything.
  util::TimePoint last_activity = std::numeric_limits<std::int64_t>::min();

  /// No activity of any type — a fresh account per §3.4.
  bool fresh() const { return !op.has_data && !oc.has_data; }
};

/// Evaluates all users of an ActivityStore against a catalog.
class Evaluator {
 public:
  Evaluator(const ActivityCatalog& catalog, EvaluationParams params);
  /// The evaluator keeps a pointer to the caller's catalog; a temporary
  /// would dangle (silently empty type lists, every rank fresh).
  Evaluator(ActivityCatalog&&, EvaluationParams) = delete;

  UserActiveness evaluate_user(const ActivityStore& store,
                               trace::UserId user) const;

  /// Evaluate every user (parallel over users via the global thread pool).
  std::vector<UserActiveness> evaluate_all(const ActivityStore& store) const;

  const EvaluationParams& params() const { return params_; }

 private:
  const ActivityCatalog* catalog_;
  EvaluationParams params_;
  std::vector<ActivityTypeId> op_types_;
  std::vector<ActivityTypeId> oc_types_;
};

}  // namespace adr::activeness
