#include "activeness/spill.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"

namespace adr::activeness {

namespace {

namespace fsys = std::filesystem;

std::string format_record(trace::UserId user, ActivityTypeId type,
                          const Activity& activity) {
  char impact[40];
  std::snprintf(impact, sizeof(impact), "%.17g", activity.impact);
  const std::string body = util::csv_join(
      {std::to_string(user), std::to_string(type),
       std::to_string(activity.timestamp), impact});
  util::io::Crc32 crc;
  crc.update(body);
  char hex[16];
  std::snprintf(hex, sizeof(hex), "%08x", crc.value());
  return body + "," + hex;
}

bool parse_record(const std::string& line, trace::UserId& user,
                  ActivityTypeId& type, Activity& activity) {
  const std::size_t comma = line.rfind(',');
  if (comma == std::string::npos || line.size() - comma - 1 != 8) return false;
  const std::string body = line.substr(0, comma);
  util::io::Crc32 crc;
  crc.update(body);
  std::uint32_t want = 0;
  try {
    want = static_cast<std::uint32_t>(
        std::stoul(line.substr(comma + 1), nullptr, 16));
  } catch (const std::exception&) {
    return false;
  }
  if (crc.value() != want) return false;
  const auto fields = util::csv_split(body);
  if (fields.size() != 4) return false;
  try {
    user = static_cast<trace::UserId>(std::stoul(fields[0]));
    type = static_cast<ActivityTypeId>(std::stoull(fields[1]));
    activity.timestamp = std::stoll(fields[2]);
    activity.impact = std::stod(fields[3]);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// Intact records and the byte length of the valid prefix.
std::size_t scan(const std::string& content, std::size_t& records,
                 std::size_t& torn_lines) {
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      ++torn_lines;
      break;
    }
    trace::UserId user;
    ActivityTypeId type;
    Activity activity;
    if (!parse_record(content.substr(pos, nl - pos), user, type, activity)) {
      // Strict-suffix salvage: everything after the first bad line is
      // suspect.
      for (std::size_t p = pos; p < content.size();) {
        ++torn_lines;
        const std::size_t q = content.find('\n', p);
        if (q == std::string::npos) break;
        p = q + 1;
      }
      break;
    }
    ++records;
    pos = nl + 1;
  }
  return pos;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace

SpillLog::SpillLog(std::string dir) {
  fsys::create_directories(dir);
  path_ = dir + "/spill.log";

  // Salvage: truncate any torn suffix left by a crashed append, count the
  // intact pending records.
  if (fsys::exists(path_)) {
    const std::string content = slurp(path_);
    std::size_t records = 0, torn = 0;
    const std::size_t keep = scan(content, records, torn);
    if (keep < content.size()) {
      fsys::resize_file(path_, keep);
      obs::MetricsRegistry::global().counter("spill.torn_lines").add(torn);
    }
    pending_ = records;
    write_offset_ = keep;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  reopen_locked();
}

void SpillLog::reopen_locked() {
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("SpillLog: cannot open " + path_);
  }
}

void SpillLog::append(trace::UserId user, ActivityTypeId type,
                      Activity activity) {
  const std::string line = format_record(user, type, activity) + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  const auto decision = util::FaultInjector::global().on_write(
      "spill.append.write", write_offset_, line.size());
  out_.write(line.data(), static_cast<std::streamsize>(decision.allow));
  out_.flush();
  write_offset_ += decision.allow;
  if (decision.fail || decision.allow < line.size() || !out_) {
    // The torn partial line stays; the next replay (or restart) drops it.
    throw std::runtime_error(decision.enospc
                                 ? "SpillLog: no space left on device"
                                 : "SpillLog: short write");
  }
  ++pending_;
  obs::MetricsRegistry::global().counter("spill.appended").add();
}

std::size_t SpillLog::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

std::size_t SpillLog::replay(
    const std::function<void(trace::UserId, ActivityTypeId, Activity)>& fn) {
  // Snapshot-and-truncate under the lock, replay outside it so producers
  // can keep spilling while the drain applies the batch.
  std::string content;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_ == 0) return 0;
    out_.close();
    content = slurp(path_);
    fsys::resize_file(path_, 0);
    write_offset_ = 0;
    pending_ = 0;
    reopen_locked();
  }

  std::size_t replayed = 0, torn = 0;
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      ++torn;
      break;
    }
    trace::UserId user;
    ActivityTypeId type;
    Activity activity;
    if (!parse_record(content.substr(pos, nl - pos), user, type, activity)) {
      ++torn;
      pos = nl + 1;
      continue;  // count but keep scanning: later records may be intact
    }
    fn(user, type, activity);
    ++replayed;
    pos = nl + 1;
  }
  if (torn > 0) {
    obs::MetricsRegistry::global().counter("spill.torn_lines").add(torn);
  }
  obs::MetricsRegistry::global().counter("spill.replayed").add(replayed);
  return replayed;
}

}  // namespace adr::activeness
