#pragma once
// The activity model of §3.1–3.2: every user activity reduces to a
// (timestamp, impact) pair; activity *types* are administrator-configured and
// belong to one of two categories — operations (things done on the system)
// or outcomes (things produced by using it). The catalog plus per-user,
// per-type activity streams are the only inputs the evaluator needs.

#include <cstdint>
#include <span>
#include <utility>
#include <string>
#include <vector>

#include "trace/job_log.hpp"
#include "trace/publication_log.hpp"
#include "trace/types.hpp"
#include "util/time.hpp"

namespace adr::activeness {

enum class ActivityCategory { kOperation, kOutcome };

/// One activity occurrence (Table 3: a_x with a timestamp and an impact D).
struct Activity {
  util::TimePoint timestamp = 0;
  double impact = 0.0;
};

using ActivityTypeId = std::size_t;

/// Administrator-declared activity type (Table 2 rows). `weight` scales each
/// occurrence's impact — the knob the paper describes as "configured ...
/// with weights to quantitatively measure the impact".
struct ActivityTypeSpec {
  std::string name;
  ActivityCategory category = ActivityCategory::kOperation;
  double weight = 1.0;
};

/// Registry of the activity types in play. A one-time setup object.
class ActivityCatalog {
 public:
  ActivityTypeId add(ActivityTypeSpec spec);

  const ActivityTypeSpec& spec(ActivityTypeId id) const;
  std::size_t size() const { return specs_.size(); }

  /// Ids of all types in a category, in registration order.
  std::vector<ActivityTypeId> types_in(ActivityCategory category) const;

  /// The paper's evaluation setup: "job_submission" (operation, impact =
  /// core-hours) and "publication" (outcome, impact = Eq. 8).
  static ActivityCatalog paper_default();

 private:
  std::vector<ActivityTypeSpec> specs_;
};

/// Per-user, per-type activity streams. Dense over users for cache-friendly
/// parallel evaluation.
class ActivityStore {
 public:
  ActivityStore(std::size_t user_count, std::size_t type_count);

  void add(trace::UserId user, ActivityTypeId type, Activity activity);

  /// Sort every stream by timestamp (the evaluator requires sorted input).
  void sort_all();

  std::span<const Activity> stream(trace::UserId user,
                                   ActivityTypeId type) const;

  std::size_t user_count() const { return users_; }
  std::size_t type_count() const { return types_; }

  /// Total number of stored activities.
  std::size_t total_activities() const;

 private:
  std::size_t users_;
  std::size_t types_;
  std::vector<std::vector<Activity>> streams_;  // [user * types_ + type]
};

/// Ingest a job log: each job submission becomes one operation activity with
/// impact = weight x core-hours (the paper's §4.1.3 choice).
void ingest_jobs(ActivityStore& store, ActivityTypeId type, double weight,
                 const trace::JobLog& jobs);

/// Ingest a publication list: each publication contributes one outcome
/// activity per author with impact = weight x (c+1)(n-i+1) (Eq. 8).
void ingest_publications(ActivityStore& store, ActivityTypeId type,
                         double weight, const trace::PublicationLog& pubs);

/// Ingest a generic activity CSV (header: user,timestamp,impact) — the §3.1
/// promise that *any* trackable activity with a timestamp and a quantifiable
/// impact can drive the evaluation (data transfers, shell logins, workflow
/// completions, ... exported by site tooling). Rows whose user is outside
/// the store are skipped. Returns the number of activities ingested.
std::size_t ingest_activities_csv(ActivityStore& store, ActivityTypeId type,
                                  double weight, const std::string& path);

/// Write activities back out in the same format (round-trip for tests and
/// for sites that post-process activity streams).
void save_activities_csv(const std::string& path,
                         const std::vector<std::pair<trace::UserId, Activity>>&
                             activities);

}  // namespace adr::activeness
