#pragma once
// The activity model of §3.1–3.2: every user activity reduces to a
// (timestamp, impact) pair; activity *types* are administrator-configured and
// belong to one of two categories — operations (things done on the system)
// or outcomes (things produced by using it). The catalog plus per-user,
// per-type activity streams are the only inputs the evaluator needs.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <utility>
#include <string>
#include <vector>

#include "trace/job_log.hpp"
#include "trace/publication_log.hpp"
#include "trace/types.hpp"
#include "util/parse.hpp"
#include "util/time.hpp"

namespace adr::activeness {

enum class ActivityCategory { kOperation, kOutcome };

/// One activity occurrence (Table 3: a_x with a timestamp and an impact D).
struct Activity {
  util::TimePoint timestamp = 0;
  double impact = 0.0;
};

using ActivityTypeId = std::size_t;

/// Administrator-declared activity type (Table 2 rows). `weight` scales each
/// occurrence's impact — the knob the paper describes as "configured ...
/// with weights to quantitatively measure the impact".
struct ActivityTypeSpec {
  std::string name;
  ActivityCategory category = ActivityCategory::kOperation;
  double weight = 1.0;
};

/// Registry of the activity types in play. A one-time setup object.
class ActivityCatalog {
 public:
  ActivityTypeId add(ActivityTypeSpec spec);

  const ActivityTypeSpec& spec(ActivityTypeId id) const;
  std::size_t size() const { return specs_.size(); }

  /// Ids of all types in a category, in registration order.
  std::vector<ActivityTypeId> types_in(ActivityCategory category) const;

  /// The paper's evaluation setup: "job_submission" (operation, impact =
  /// core-hours) and "publication" (outcome, impact = Eq. 8).
  static ActivityCatalog paper_default();

 private:
  std::vector<ActivityTypeSpec> specs_;
};

/// Contiguous partition of the dense user-id space [0, users) into `shards`
/// near-equal ranges: shard s owns [s·U/S, (s+1)·U/S). The mapping is a pure
/// function of (users, shards) — every component that agrees on those two
/// numbers agrees on the partition, which is what lets the store's dirty
/// routing, the per-shard evaluators, and the plan merge all line up without
/// exchanging any state. Ranges may be empty when S > U.
class ShardMap {
 public:
  ShardMap() = default;
  ShardMap(std::size_t users, std::size_t shards)
      : users_(users), shards_(shards == 0 ? 1 : shards) {}

  std::size_t shards() const { return shards_; }
  std::size_t users() const { return users_; }

  /// First user of shard s (== end of shard s-1; ranges are contiguous).
  trace::UserId begin(std::size_t shard) const {
    return static_cast<trace::UserId>(shard * users_ / shards_);
  }
  trace::UserId end(std::size_t shard) const { return begin(shard + 1); }

  /// Inverse of begin/end: the unique s with begin(s) <= user < end(s).
  /// An empty map (users == 0) owns no users, but enqueue-before-resize
  /// races and zero-user stores still ask — route everything to shard 0
  /// instead of dividing by zero.
  std::size_t shard_of(trace::UserId user) const {
    if (users_ == 0) return 0;
    return (static_cast<std::size_t>(user + 1) * shards_ - 1) / users_;
  }

  bool operator==(const ShardMap&) const = default;

 private:
  std::size_t users_ = 0;
  std::size_t shards_ = 1;
};

class SpillLog;

/// What a bounded ingest queue does with an event it cannot admit
/// (DESIGN.md §14.1). Every policy preserves the no-silent-loss invariant:
/// produced == admitted + shed, with shed exactly counted and bounded.
enum class BackpressurePolicy {
  kBlock,  // producer waits until a drain makes room (bounds memory)
  kShed,   // drop, record, and count — up to shed_budget, then block
  kSpill,  // divert to a WAL-backed SpillLog, replayed when pressure clears
};

/// Bounded-admission knobs for ActivityStore::enqueue(). The default
/// (queue_cap == 0) is the legacy unbounded queue.
struct AdmissionConfig {
  std::size_t queue_cap = 0;  // per-shard max queued events; 0 = unbounded
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  std::size_t shed_budget = 0;  // max events kShed may drop before blocking
  SpillLog* spill = nullptr;    // required for kSpill (not owned)
};

/// What enqueue() did with the event.
enum class EnqueueResult { kQueued, kShed, kSpilled };

/// Per-user, per-type activity streams. Dense over users for cache-friendly
/// parallel evaluation.
///
/// Two ingestion styles:
///  * bulk: add() rows in any order, then sort_all() once — the load path
///    for whole trace files;
///  * streaming: append() events as they happen — each append keeps the
///    stream sorted, maintains the per-stream prefix-impact aggregate and
///    the chronological index, and marks the user dirty so an incremental
///    evaluator knows exactly whose rank can have changed;
///  * concurrent: enqueue() routes the event into its owner shard's ingest
///    queue (the only locked structure in the store); drain_ingest(shard)
///    applies a shard's queue via append() at the start of that shard's
///    advance. Producers on any thread can enqueue while per-shard drains
///    and evaluations run.
///
/// The prefix aggregates let an evaluation at any t_c resolve per-period
/// impacts by binary-searching period boundaries (O(m log k)) instead of
/// walking the whole stream; the chronological index answers "which users
/// have activity inside a replay window" without touching every stream.
/// The chronological index is sharded by the same ShardMap as the dirty
/// queues, so an append during shard s's drain touches only shard-s state —
/// streams, prefixes, dirty bytes, and chrono slice are all owner-shard
/// local, which is what makes concurrent per-shard drains race-free.
class ActivityStore {
 public:
  ActivityStore(std::size_t user_count, std::size_t type_count);

  void add(trace::UserId user, ActivityTypeId type, Activity activity);

  /// Sort every stream by timestamp (the evaluator requires sorted input),
  /// rebuild the prefix aggregates and the chronological index, and mark
  /// every user dirty (bulk loads invalidate any cached evaluation).
  void sort_all();

  /// Streaming insert: keeps the stream time-sorted (equal timestamps keep
  /// arrival order, matching add()+sort_all()'s stable sort), updates the
  /// aggregates in place, and marks `user` dirty. Finalizes the store first
  /// if bulk rows are pending.
  void append(trace::UserId user, ActivityTypeId type, Activity activity);

  /// Grow the type dimension (administrators may register activity types
  /// after tracing has started). Existing streams keep their data.
  void add_types(std::size_t extra);

  std::span<const Activity> stream(trace::UserId user,
                                   ActivityTypeId type) const;

  /// Prefix-impact aggregate of a stream: element i is the sum of the first
  /// i impacts (size = stream size + 1, element 0 = 0). Only valid while
  /// finalized().
  std::span<const double> prefix(trace::UserId user, ActivityTypeId type) const;

  /// Prefix-max of internal inter-activity gaps: element i is the widest
  /// gap between consecutive timestamps among the first i activities (0
  /// for i < 2; size = stream size + 1). Only valid while finalized().
  /// The incremental evaluator's frozen-zero rule reads this: a static gap
  /// wider than two period lengths swallows a full period wherever the
  /// t_c-anchored boundaries land, so a zero rank provably survives any
  /// window shift until new activity arrives.
  std::span<const util::Duration> max_gap_prefix(trace::UserId user,
                                                 ActivityTypeId type) const;

  /// True once sort_all() (or any append) has built the aggregates and no
  /// un-sorted bulk add() is pending.
  bool finalized() const { return finalized_; }

  // -- dirty tracking (single consumer: the incremental evaluator) --------
  //
  // Dirty users are routed into per-shard queues at mark time (ShardMap over
  // this store's user count; one shard by default, so the global API below
  // behaves exactly as before sharding existed). A ShardedEvaluator
  // configures S > 1 so an advance can ask "does shard s have work?" without
  // scanning other shards' queues.
  //
  // Thread-safety: take_dirty(shard) / has_dirty(shard) / drain_ingest(shard)
  // for *distinct* shards touch disjoint state (each shard's own queues,
  // chrono slice, and streams/dirty-flag bytes of users only that shard
  // owns), so per-shard drains may run concurrently — the one concurrency
  // the sharded advance needs. enqueue() is additionally safe against
  // anything except set_dirty_shards. Everything else (appends, sort_all,
  // set_dirty_shards, the global take_dirty) remains single-threaded.

  /// Re-bucket dirty routing, the chronological index, and the ingest
  /// queues into `shards` partitions (pending entries are preserved).
  /// No-op when the count is unchanged. Must not race producers: configure
  /// the shard count before ingest threads start.
  void set_dirty_shards(std::size_t shards);
  const ShardMap& dirty_shard_map() const { return shard_map_; }

  bool has_dirty() const;
  bool has_dirty(std::size_t shard) const {
    return !dirty_lists_[shard].empty();
  }
  /// Users touched by append()/add()/sort_all() since the last take_dirty(),
  /// sorted ascending; clears the dirty set (all shards).
  std::vector<trace::UserId> take_dirty();
  /// Drain one shard's dirty queue, sorted ascending.
  std::vector<trace::UserId> take_dirty(std::size_t shard);

  // -- concurrent ingest (producers: any thread; consumer: shard drains) --

  /// Bounded-admission policy for enqueue(). Must not race producers:
  /// configure before ingest threads start (same contract as
  /// set_dirty_shards). The SpillLog, if any, is borrowed, not owned.
  void set_admission(AdmissionConfig config) { admit_->config = config; }
  const AdmissionConfig& admission() const { return admit_->config; }

  /// Thread-safe streaming insert: routes the event into its owner shard's
  /// ingest queue (one mutex per shard — producers for different shards
  /// never contend). The store itself is mutated only when drain_ingest
  /// applies the queue, so producers may enqueue while per-shard drains or
  /// evaluations run. Events enqueued after a shard's drain began are
  /// picked up by the next drain.
  ///
  /// When an AdmissionConfig caps the queue and the owner shard is full,
  /// the configured BackpressurePolicy decides: kBlock waits for a drain;
  /// kShed records the event in the shed log and drops it (until the
  /// budget is spent, then blocks); kSpill appends it to the SpillLog
  /// (falling back to blocking if the spill write itself fails). Blocking
  /// requires a live consumer calling drain_ingest — there is no timeout.
  EnqueueResult enqueue(trace::UserId user, ActivityTypeId type,
                        Activity activity);

  /// Whether a shard has queued-but-undrained events (lock-free; exact
  /// under quiescence, momentarily stale against a racing producer — fine
  /// for wake checks, which err toward waking).
  bool has_pending_ingest(std::size_t shard) const {
    return ingest_[shard]->pending.load(std::memory_order_acquire) > 0;
  }
  bool has_pending_ingest() const;

  /// Queued-but-undrained depth of one shard (lock-free snapshot; same
  /// staleness caveat as has_pending_ingest).
  std::size_t pending_ingest(std::size_t shard) const {
    return ingest_[shard]->pending.load(std::memory_order_acquire);
  }
  /// Sum of all shards' pending depths.
  std::size_t pending_ingest() const;

  /// Events dropped by the kShed policy so far (exact: every shed event is
  /// also recorded, so loss accounting can be audited event-by-event).
  std::size_t shed_count() const {
    return admit_->shed_total.load(std::memory_order_acquire);
  }
  /// The recorded shed events, in drop order (bounded by shed_budget).
  std::vector<std::tuple<trace::UserId, ActivityTypeId, Activity>>
  shed_events() const;

  /// Events diverted to the SpillLog by the kSpill policy.
  std::size_t spilled_count() const {
    return admit_->spilled_total.load(std::memory_order_acquire);
  }

  /// Deepest any shard's ingest queue has ever been (the obs
  /// "activity_store.ingest_depth_high_water" gauge).
  std::size_t ingest_depth_high_water() const {
    return admit_->depth_high_water.load(std::memory_order_acquire);
  }

  /// Apply one shard's queued events via append(), in arrival order, and
  /// return how many were applied. Touches only shard-owned state, so
  /// distinct shards may drain concurrently — but the store must already be
  /// finalized (the evaluators sort_all() before any parallel phase).
  std::size_t drain_ingest(std::size_t shard);
  /// Drain every shard, single-threaded; finalizes first if events are
  /// pending over un-sorted bulk rows.
  std::size_t drain_ingest();

  /// Users with at least one activity in (begin, end], sorted ascending —
  /// resolved against the chronological index, O(S log n + hits).
  std::vector<trace::UserId> users_active_between(util::TimePoint begin,
                                                  util::TimePoint end) const;

  /// One shard's chronological-index slice covering (begin, end] — the
  /// allocation-free form of users_active_between for hot callers that
  /// dedupe into their own flag table. Entries are time-sorted within the
  /// shard and may repeat a user; a full-store sweep iterates shards
  /// 0..chrono_shard_count().
  std::span<const std::pair<util::TimePoint, trace::UserId>> chrono_window(
      std::size_t shard, util::TimePoint begin, util::TimePoint end) const;
  /// Number of chrono/ingest shards (== dirty_shard_map().shards()).
  std::size_t chrono_shard_count() const { return chrono_.size(); }

  std::size_t user_count() const { return users_; }
  std::size_t type_count() const { return types_; }

  /// Total number of stored activities.
  std::size_t total_activities() const;

  /// Entries held by the prefix aggregates + chronological index (the obs
  /// "activity_store.aggregate_entries" gauge).
  std::size_t aggregate_entries() const;

 private:
  /// One shard's producer-facing queue. pending mirrors queue.size() and is
  /// maintained under the mutex so lock-free wake checks read a consistent
  /// value.
  struct IngestShard {
    std::mutex mutex;
    std::condition_variable drained;  // signaled when drain_ingest makes room
    std::vector<std::tuple<trace::UserId, ActivityTypeId, Activity>> queue;
    std::atomic<std::size_t> pending{0};
  };

  void mark_dirty(trace::UserId user);
  void rebuild_aggregates();
  static std::vector<std::unique_ptr<IngestShard>> make_ingest(
      std::size_t shards);

  std::size_t users_;
  std::size_t types_;
  std::vector<std::vector<Activity>> streams_;  // [user * types_ + type]
  std::vector<std::vector<double>> prefix_;     // parallel to streams_
  std::vector<std::vector<util::Duration>> gap_prefix_;  // parallel to streams_
  /// Chronological index for windowed dirty-user queries, sharded by
  /// shard_map_ so an append during one shard's drain stays shard-local.
  /// Entries within a shard are time-sorted.
  std::vector<std::vector<std::pair<util::TimePoint, trace::UserId>>> chrono_;
  bool finalized_ = false;

  std::vector<std::uint8_t> dirty_flags_;  // dense by user
  ShardMap shard_map_;                     // dirty routing (1 shard default)
  std::vector<std::vector<trace::UserId>> dirty_lists_;  // one per shard
  std::vector<std::unique_ptr<IngestShard>> ingest_;     // one per shard

  /// Admission/backpressure state, heap-held (like the ingest shards) so
  /// the store stays movable despite the mutex and atomics.
  struct AdmissionState {
    AdmissionConfig config;  // read by producers; set only at quiescence
    mutable std::mutex shed_mutex;
    std::vector<std::tuple<trace::UserId, ActivityTypeId, Activity>>
        shed_events;
    std::atomic<std::size_t> shed_total{0};
    std::atomic<std::size_t> spilled_total{0};
    std::atomic<std::size_t> depth_high_water{0};
  };
  std::unique_ptr<AdmissionState> admit_;
};

/// Ingest a job log: each job submission becomes one operation activity with
/// impact = weight x core-hours (the paper's §4.1.3 choice).
void ingest_jobs(ActivityStore& store, ActivityTypeId type, double weight,
                 const trace::JobLog& jobs);

/// Ingest a publication list: each publication contributes one outcome
/// activity per author with impact = weight x (c+1)(n-i+1) (Eq. 8).
void ingest_publications(ActivityStore& store, ActivityTypeId type,
                         double weight, const trace::PublicationLog& pubs);

/// Ingest a generic activity CSV (header: user,timestamp,impact) — the §3.1
/// promise that *any* trackable activity with a timestamp and a quantifiable
/// impact can drive the evaluation (data transfers, shell logins, workflow
/// completions, ... exported by site tooling). Rows whose user is outside
/// the store are skipped. Returns the number of activities ingested. The
/// file's CRC footer is verified when present and the ParsePolicy governs
/// malformed-row handling, same as the trace loaders.
std::size_t ingest_activities_csv(ActivityStore& store, ActivityTypeId type,
                                  double weight, const std::string& path,
                                  const util::ParseOptions& opts = {});

/// Write activities back out in the same format (round-trip for tests and
/// for sites that post-process activity streams).
void save_activities_csv(const std::string& path,
                         const std::vector<std::pair<trace::UserId, Activity>>&
                             activities);

}  // namespace adr::activeness
