#pragma once
// User classification (§3.3) and the purge scan ordering (§3.4).
//
// The four-quadrant matrix of Fig. 4: operation activeness x outcome
// activeness. The data-retention scan visits groups in ascending overall
// activeness — Both Inactive, Outcome Active Only, Operation Active Only,
// Both Active — and, within a group, users in ascending rank (operation rank
// first for the inactive-operation groups; outcome rank first for the
// active-operation groups, per the paper's "ascending order of the outcome
// activeness" for the latter two).

#include <array>
#include <string>
#include <vector>

#include "activeness/evaluator.hpp"

namespace adr::activeness {

/// Indices follow the paper's G(1)..G(4) labels in Fig. 5.
enum class UserGroup {
  kBothActive = 0,          // G(1)
  kOperationActiveOnly = 1, // G(2)
  kOutcomeActiveOnly = 2,   // G(3)
  kBothInactive = 3,        // G(4)
};

inline constexpr std::size_t kGroupCount = 4;

const char* group_name(UserGroup g);

UserGroup classify(const UserActiveness& ua);

/// Group visit order for the purge scan (ascending activeness).
inline constexpr std::array<UserGroup, kGroupCount> kScanOrder = {
    UserGroup::kBothInactive,
    UserGroup::kOutcomeActiveOnly,
    UserGroup::kOperationActiveOnly,
    UserGroup::kBothActive,
};

/// All users bucketed by group, each bucket sorted in scan (ascending
/// activeness) order.
struct ScanPlan {
  std::array<std::vector<UserActiveness>, kGroupCount> groups;  // by UserGroup

  const std::vector<UserActiveness>& group(UserGroup g) const {
    return groups[static_cast<std::size_t>(g)];
  }
  std::size_t total_users() const;
};

ScanPlan build_scan_plan(const std::vector<UserActiveness>& users);

/// The strict total order a group's users are scanned in (rank keys, then
/// the recency tie-break, then user id) — exposed so incremental plan
/// maintenance can splice one re-evaluated user into a sorted group and
/// land exactly where a full build_scan_plan rebuild would put them.
bool scan_less(UserGroup group, const UserActiveness& a,
               const UserActiveness& b);

/// How an inactive user's file lifetime is derived — the paper is ambiguous
/// between two readings (see DESIGN.md):
enum class LifetimeMode {
  /// §3.4 reading (default): only *active* categories multiply into Eq. 7;
  /// inactive or data-free categories contribute a neutral 1.0, so inactive
  /// users start from the initial lifetime and only the retrospective decay
  /// shortens it.
  kActiveCategoriesOnly,
  /// Eq. 7 verbatim: ε = d x Φop x Φoc with Φ < 1 shrinking the lifetime
  /// (floored at `min_multiplier`).
  kLiteralEq7,
};

/// Eq. 7's multiplier for a user's file lifetime: ε_f = d x multiplier.
double lifetime_multiplier(const UserActiveness& ua, LifetimeMode mode,
                           double min_multiplier = 1e-3,
                           double max_multiplier = 1e6);

}  // namespace adr::activeness
