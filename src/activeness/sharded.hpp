#pragma once
// Sharded evaluation (DESIGN.md §11).
//
// Eqs. 2–6 are embarrassingly parallel across users — each Φop/Φoc depends
// only on that user's own streams — so the pipeline partitions the dense
// user-id space into S contiguous ranges (ShardMap) and gives every range
// its own IncrementalEvaluator segment plus its own dirty queue inside the
// shared ActivityStore. One advance() then:
//
//  1. decides which shards need to run at all — a shard sleeps through the
//     trigger when it has no queued dirty users, no trace events inside
//     (its last t_c, now], every cached user is frozen under a durable
//     skip certificate, and time did not move backwards;
//  2. runs the woken segment advances concurrently on util::global_pool()
//     (distinct shards touch disjoint users, disjoint dirty queues, and
//     disjoint frozen bitmaps — no shared mutable state);
//  3. S-way-merges the per-shard plan fragments into the global ScanPlan.
//     scan_less is a strict total order, so the merged plan is
//     element-for-element identical to a single-pipeline build — sharding
//     can never change ranks, classifications, scan order, or purge
//     victims, only wall time.
//
// S = 1 constructs one full-range IncrementalEvaluator and forwards to it
// verbatim: no wake filter, no copy, no merge — the exact legacy code path.
//
// Observability: counters `shard.advances` (segment advances actually run)
// and `shard.users_reevaluated`, gauge `shard.imbalance_max_over_mean`
// (max/mean re-evaluations across woken shards, percent — 100 = perfectly
// balanced), span `shard.merge` (plan-merge wall time histogram).

#include <cstddef>
#include <vector>

#include "activeness/incremental.hpp"

namespace adr::activeness {

/// Drop-in replacement for a single IncrementalEvaluator that fans the
/// advance out over user-range shards. Not itself thread-safe: one advance
/// at a time, like the single pipeline.
class ShardedEvaluator {
 public:
  /// `shards` = 0 picks default_shard_count(); 1 pins the legacy
  /// single-pipeline path; anything else is used as-is (empty ranges are
  /// fine when S exceeds the user count).
  ShardedEvaluator(const ActivityCatalog& catalog,
                   EvaluationParams base_params,
                   EvalMode mode = EvalMode::kAuto, std::size_t shards = 0);
  /// The evaluator keeps a pointer to the caller's catalog for its whole
  /// lifetime; binding a temporary would dangle by the first advance().
  ShardedEvaluator(ActivityCatalog&&, EvaluationParams,
                   EvalMode = EvalMode::kAuto, std::size_t = 0) = delete;

  /// min(thread-pool parallelism, 16): one shard per thread the advance can
  /// actually run on, capped where merge overhead outgrows the win.
  static std::size_t default_shard_count();

  /// Advance every shard that can have changed to t_c = `now` (concurrently
  /// for S > 1) and refresh the merged plan. Aggregated stats: sums over
  /// shards; full_rebuild reports whether *every* shard rebuilt (first
  /// advance, backwards time, kFull — the same triggers as the single
  /// pipeline); auto_full whether *any* shard's hysteresis resolved to full.
  AdvanceStats advance(ActivityStore& store, util::TimePoint now);

  /// Latest merged evaluation (valid after the first advance). users() and
  /// groups() are dense by global user id; plan() spans all shards. For
  /// S = 1 these forward to the inner pipeline.
  const ScanPlan& plan() const;
  const std::vector<UserActiveness>& users() const;
  const std::vector<UserGroup>& groups() const;
  UserGroup group_of(trace::UserId user) const { return groups()[user]; }

  bool evaluated() const { return evaluated_; }
  util::TimePoint last_now() const { return last_now_; }
  EvalMode mode() const { return mode_; }
  /// Re-pin the evaluation mode on every shard segment (see
  /// IncrementalEvaluator::set_mode — the degradation ladder's lever).
  void set_mode(EvalMode mode) {
    mode_ = mode;
    for (auto& eval : evals_) eval.set_mode(mode);
  }
  /// Wall time spent in advance() on this instance (includes wake
  /// filtering, the parallel segment advances, and the plan merge).
  double seconds() const { return seconds_; }

  std::size_t shard_count() const { return shards_; }
  /// The user-range partition (valid after the first advance).
  const ShardMap& shard_map() const { return map_; }
  /// How many shards the most recent advance actually ran.
  std::size_t shards_advanced() const { return shards_advanced_; }
  /// Per-shard stats from the most recent advance. A shard that slept
  /// through it reports zeros except users_skipped = its range size.
  /// Hysteresis is per shard: one hot shard resolving kAuto to full
  /// rebuilds (auto_full) leaves the others on the delta path.
  const AdvanceStats& shard_stats(std::size_t shard) const {
    return shard_stats_[shard];
  }
  bool shard_auto_full(std::size_t shard) const {
    return evals_[shard].auto_full();
  }

 private:
  void ensure_shards(ActivityStore& store);
  void merge_plans();

  const ActivityCatalog* catalog_;
  EvaluationParams base_params_;
  EvalMode mode_;
  std::size_t shards_;
  ShardMap map_;
  std::vector<IncrementalEvaluator> evals_;
  std::vector<AdvanceStats> shard_stats_;

  bool evaluated_ = false;
  util::TimePoint last_now_ = 0;
  std::size_t shards_advanced_ = 0;
  double seconds_ = 0.0;

  // Global views maintained only for S > 1 (S = 1 forwards instead).
  std::vector<UserActiveness> users_;  // dense by user id
  std::vector<UserGroup> groups_;      // dense by user id
  ScanPlan plan_;

  // Per-advance scratch.
  std::vector<std::uint8_t> wake_;
  std::vector<std::size_t> woken_;
  std::vector<std::size_t> cursors_;
};

}  // namespace adr::activeness
