#include "activeness/classifier.hpp"

#include <algorithm>

namespace adr::activeness {

const char* group_name(UserGroup g) {
  switch (g) {
    case UserGroup::kBothActive: return "Both Active";
    case UserGroup::kOperationActiveOnly: return "Operation Active Only";
    case UserGroup::kOutcomeActiveOnly: return "Outcome Active Only";
    case UserGroup::kBothInactive: return "Both Inactive";
  }
  return "?";
}

UserGroup classify(const UserActiveness& ua) {
  const bool op = ua.op.active();
  const bool oc = ua.oc.active();
  if (op && oc) return UserGroup::kBothActive;
  if (op) return UserGroup::kOperationActiveOnly;
  if (oc) return UserGroup::kOutcomeActiveOnly;
  return UserGroup::kBothInactive;
}

std::size_t ScanPlan::total_users() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.size();
  return n;
}

namespace {

// Rank ties (the bulk of the population sits at Φ = 0 exactly) break on
// recency, *most recently active first*: a still-writing-but-inactive
// user keeps producing fresh data and rarely re-reads old files, so their
// stale files are the harmless purge fodder; a user who has gone quiet is
// exactly the paused-project case of §1 who may come back for what they
// left — scan them last. User id breaks exact ties for determinism.
bool tie_break(const UserActiveness& a, const UserActiveness& b) {
  if (a.last_activity != b.last_activity)
    return a.last_activity > b.last_activity;
  return a.user < b.user;
}

// Operation-inactive groups (Both Inactive, Outcome Active Only): sort by
// operation rank, then outcome rank (§3.3: operation rank has priority).
bool by_op(const UserActiveness& a, const UserActiveness& b) {
  const auto ka = a.op.sort_key(), kb = b.op.sort_key();
  if (ka != kb) return ka < kb;
  if (a.oc.sort_key() != b.oc.sort_key())
    return a.oc.sort_key() < b.oc.sort_key();
  return tie_break(a, b);
}

// Operation-active groups: "in an ascending order of the outcome
// activeness" (§3.4).
bool by_oc(const UserActiveness& a, const UserActiveness& b) {
  const auto ka = a.oc.sort_key(), kb = b.oc.sort_key();
  if (ka != kb) return ka < kb;
  if (a.op.sort_key() != b.op.sort_key())
    return a.op.sort_key() < b.op.sort_key();
  return tie_break(a, b);
}

}  // namespace

bool scan_less(UserGroup group, const UserActiveness& a,
               const UserActiveness& b) {
  switch (group) {
    case UserGroup::kBothInactive:
    case UserGroup::kOutcomeActiveOnly:
      return by_op(a, b);
    case UserGroup::kOperationActiveOnly:
    case UserGroup::kBothActive:
      return by_oc(a, b);
  }
  return by_op(a, b);
}

ScanPlan build_scan_plan(const std::vector<UserActiveness>& users) {
  ScanPlan plan;
  for (const auto& ua : users) {
    plan.groups[static_cast<std::size_t>(classify(ua))].push_back(ua);
  }
  for (std::size_t g = 0; g < kGroupCount; ++g) {
    const auto group = static_cast<UserGroup>(g);
    std::sort(plan.groups[g].begin(), plan.groups[g].end(),
              [group](const UserActiveness& a, const UserActiveness& b) {
                return scan_less(group, a, b);
              });
  }
  return plan;
}

double lifetime_multiplier(const UserActiveness& ua, LifetimeMode mode,
                           double min_multiplier, double max_multiplier) {
  double m = 1.0;
  switch (mode) {
    case LifetimeMode::kActiveCategoriesOnly:
      if (ua.op.active()) m *= ua.op.value(1.0, max_multiplier);
      if (ua.oc.active()) m *= ua.oc.value(1.0, max_multiplier);
      break;
    case LifetimeMode::kLiteralEq7:
      m = ua.op.value(min_multiplier, max_multiplier) *
          ua.oc.value(min_multiplier, max_multiplier);
      break;
  }
  return std::clamp(m, min_multiplier, max_multiplier);
}

}  // namespace adr::activeness
