#pragma once
// WAL-backed ingest overflow segment (DESIGN.md §14.1).
//
// The `spill` backpressure policy needs somewhere durable to put events the
// bounded ingest queues cannot admit right now. SpillLog is that place: an
// append-only file of self-checksummed records (the event-log idiom scaled
// down to one segment), written by any producer thread under a mutex and
// replayed single-threaded once pressure clears. Replay consumes the file:
// records are handed back in arrival order and the segment is truncated, so
// a second replay is a no-op.
//
// Record format (one line, CRC32 of the body as the last field — exactly
// the trace::Event framing, minus the fields an in-store activity event
// does not have):
//
//   user,type,timestamp,impact,crc
//
// Torn tails: a crashed or fault-injected append leaves a partial final
// line; replay salvages every intact record and drops the torn suffix
// (counted in obs `spill.torn_lines`), the same strict-suffix contract as
// the WAL reader. A crash *between* spill and replay loses nothing: the
// next process replays the segment from disk before its first evaluation.
//
// Fault points: spill.append.write (short/enospc via FaultInjector).

#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>

#include "activeness/activity.hpp"
#include "trace/types.hpp"

namespace adr::activeness {

class SpillLog {
 public:
  /// Opens (and salvages) `dir`/spill.log; creates the directory if needed.
  /// Pending records from a previous process survive and count toward
  /// pending().
  explicit SpillLog(std::string dir);
  SpillLog(const SpillLog&) = delete;
  SpillLog& operator=(const SpillLog&) = delete;

  /// Append one overflow event (thread-safe, flushed). Throws on IO failure
  /// — the caller falls back to blocking admission so the event is not lost.
  void append(trace::UserId user, ActivityTypeId type, Activity activity);

  /// Records spilled but not yet replayed (includes salvaged pre-crash
  /// records).
  std::size_t pending() const;

  /// Hand every intact pending record to `fn` in arrival order, then
  /// truncate the segment. Single consumer; safe against concurrent
  /// append() (records appended during replay stay for the next one).
  /// Returns how many records were replayed.
  std::size_t replay(
      const std::function<void(trace::UserId, ActivityTypeId, Activity)>& fn);

  const std::string& path() const { return path_; }

 private:
  void reopen_locked();

  mutable std::mutex mutex_;
  std::string path_;
  std::ofstream out_;
  std::uint64_t write_offset_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace adr::activeness
