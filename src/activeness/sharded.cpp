#include "activeness/sharded.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/thread_pool.hpp"

namespace adr::activeness {

namespace {

obs::Counter& shard_advances_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("shard.advances");
  return c;
}

obs::Counter& shard_users_reevaluated_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("shard.users_reevaluated");
  return c;
}

obs::Gauge& shard_imbalance_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "shard.imbalance_max_over_mean");
  return g;
}

}  // namespace

ShardedEvaluator::ShardedEvaluator(const ActivityCatalog& catalog,
                                   EvaluationParams base_params, EvalMode mode,
                                   std::size_t shards)
    : catalog_(&catalog),
      base_params_(base_params),
      mode_(mode),
      shards_(shards == 0 ? default_shard_count() : shards) {}

std::size_t ShardedEvaluator::default_shard_count() {
  // size() counts spawned workers; the calling thread participates too.
  const std::size_t parallelism = util::global_pool().size() + 1;
  return std::min<std::size_t>(parallelism, 16);
}

const ScanPlan& ShardedEvaluator::plan() const {
  return shards_ == 1 && !evals_.empty() ? evals_[0].plan() : plan_;
}

const std::vector<UserActiveness>& ShardedEvaluator::users() const {
  return shards_ == 1 && !evals_.empty() ? evals_[0].users() : users_;
}

const std::vector<UserGroup>& ShardedEvaluator::groups() const {
  return shards_ == 1 && !evals_.empty() ? evals_[0].groups() : groups_;
}

void ShardedEvaluator::ensure_shards(ActivityStore& store) {
  if (!evals_.empty() && map_.users() == store.user_count()) return;
  map_ = ShardMap(store.user_count(), shards_);
  store.set_dirty_shards(shards_);
  evals_.clear();
  evals_.reserve(shards_);
  if (shards_ == 1) {
    // The legacy pipeline, verbatim: full range, global dirty drain.
    evals_.emplace_back(*catalog_, base_params_, mode_);
  } else {
    for (std::size_t s = 0; s < shards_; ++s) {
      evals_.emplace_back(*catalog_, base_params_, mode_, map_.begin(s),
                          map_.end(s), s);
    }
    users_.resize(store.user_count());
    groups_.assign(store.user_count(), UserGroup::kBothInactive);
  }
  shard_stats_.assign(shards_, {});
  evaluated_ = false;
}

void ShardedEvaluator::merge_plans() {
  obs::TimerSpan span("shard.merge");
  for (std::size_t g = 0; g < kGroupCount; ++g) {
    const UserGroup group = static_cast<UserGroup>(g);
    auto& out = plan_.groups[g];
    out.clear();
    std::size_t total = 0;
    for (const auto& ev : evals_) total += ev.plan().groups[g].size();
    out.reserve(total);
    // S-way merge by repeated min — S is at most 16 and scan_less is a
    // strict total order, so the output equals a global sort of the union
    // element for element.
    cursors_.assign(shards_, 0);
    while (out.size() < total) {
      std::size_t best = shards_;
      const UserActiveness* best_ua = nullptr;
      for (std::size_t s = 0; s < shards_; ++s) {
        const auto& frag = evals_[s].plan().groups[g];
        if (cursors_[s] >= frag.size()) continue;
        const UserActiveness& ua = frag[cursors_[s]];
        if (best == shards_ || scan_less(group, ua, *best_ua)) {
          best = s;
          best_ua = &ua;
        }
      }
      out.push_back(*best_ua);
      ++cursors_[best];
    }
  }
}

AdvanceStats ShardedEvaluator::advance(ActivityStore& store,
                                       util::TimePoint now) {
  const auto wall0 = std::chrono::steady_clock::now();
  if (!store.finalized()) store.sort_all();
  ensure_shards(store);

  AdvanceStats stats;
  if (shards_ == 1) {
    stats = evals_[0].advance(store, now);
    shard_stats_[0] = stats;
    shards_advanced_ = 1;
    shard_advances_counter().add();
    shard_users_reevaluated_counter().add(stats.users_reevaluated);
  } else {
    // Wake filter: a shard must run unless its cached evaluation provably
    // still holds at `now` — which needs every cached user frozen under a
    // durable certificate, no queued dirty users, no queued concurrent
    // ingest, no trace events revealed in (its last t_c, now], and time
    // moving forward.
    wake_.assign(shards_, 0);
    for (std::size_t s = 0; s < shards_; ++s) {
      const auto& ev = evals_[s];
      if (!ev.evaluated() || now < ev.last_now() || store.has_dirty(s) ||
          store.has_pending_ingest(s) || !ev.quiescent()) {
        wake_[s] = 1;
      } else if (!store.chrono_window(s, ev.last_now(), now).empty()) {
        // The shard's own chronological slice has events the advancing trim
        // is about to reveal.
        wake_[s] = 1;
      }
    }

    woken_.clear();
    for (std::size_t s = 0; s < shards_; ++s) {
      if (wake_[s]) {
        woken_.push_back(s);
      } else {
        shard_stats_[s] = {};
        shard_stats_[s].auto_full = evals_[s].auto_full();
        shard_stats_[s].users_skipped =
            static_cast<std::size_t>(map_.end(s) - map_.begin(s));
      }
    }
    shards_advanced_ = woken_.size();

    // Segment advances share nothing mutable: disjoint user ranges,
    // per-shard dirty queues, per-shard frozen bitmaps. grain = 1 gives the
    // scheduler one chunk per shard so uneven shards self-balance.
    if (woken_.size() == 1) {
      const std::size_t s = woken_[0];
      shard_stats_[s] = evals_[s].advance(store, now);
    } else if (!woken_.empty()) {
      util::global_pool().parallel_for(
          0, woken_.size(),
          [&](std::size_t i) {
            const std::size_t s = woken_[i];
            shard_stats_[s] = evals_[s].advance(store, now);
          },
          /*grain=*/1);
    }

    stats.full_rebuild = !woken_.empty();
    for (std::size_t s = 0; s < shards_; ++s) {
      const AdvanceStats& ss = shard_stats_[s];
      stats.users_dirty += ss.users_dirty;
      stats.users_reevaluated += ss.users_reevaluated;
      stats.users_skipped += ss.users_skipped;
      stats.auto_full = stats.auto_full || ss.auto_full;
      if (!wake_[s] || !ss.full_rebuild) stats.full_rebuild = false;
    }

    // Fold the changed users back into the global dense views. Shards that
    // took the delta path report exactly who changed; rebuilt shards copy
    // their whole range.
    bool plan_dirty = false;
    for (const std::size_t s : woken_) {
      const auto& ev = evals_[s];
      const trace::UserId b = map_.begin(s);
      const AdvanceStats& ss = shard_stats_[s];
      if (ss.full_rebuild) {
        std::copy(ev.users().begin(), ev.users().end(), users_.begin() + b);
        std::copy(ev.groups().begin(), ev.groups().end(),
                  groups_.begin() + b);
        plan_dirty = true;
      } else {
        for (const trace::UserId u : ev.last_reevaluated()) {
          users_[u] = ev.users()[u - b];
          groups_[u] = ev.groups()[u - b];
        }
        plan_dirty = plan_dirty || ss.users_reevaluated > 0;
      }
    }
    if (plan_dirty) merge_plans();

    shard_advances_counter().add(woken_.size());
    shard_users_reevaluated_counter().add(stats.users_reevaluated);
    if (!woken_.empty()) {
      std::size_t max_reeval = 0;
      std::size_t total_reeval = 0;
      for (const std::size_t s : woken_) {
        max_reeval = std::max(max_reeval, shard_stats_[s].users_reevaluated);
        total_reeval += shard_stats_[s].users_reevaluated;
      }
      const double mean =
          static_cast<double>(total_reeval) / static_cast<double>(woken_.size());
      shard_imbalance_gauge().set(
          mean > 0.0 ? static_cast<std::int64_t>(
                           100.0 * static_cast<double>(max_reeval) / mean)
                     : 100);
    }
  }

  evaluated_ = true;
  last_now_ = now;
  seconds_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            wall0)
                  .count();
  return stats;
}

}  // namespace adr::activeness
