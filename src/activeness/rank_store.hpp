#pragma once
// Persistent store of evaluated user activeness. A site runs the evaluator
// once per purge trigger and keeps the result; storing it lets operators
// audit why a purge ordered users the way it did, and lets the emulator
// re-load rather than re-evaluate when replaying long traces.

#include <string>
#include <vector>

#include "activeness/classifier.hpp"

namespace adr::activeness {

struct RankStoreLoadResult;

class RankStore {
 public:
  RankStore() = default;
  explicit RankStore(std::vector<UserActiveness> users);

  void set(const UserActiveness& ua);

  /// Stored activeness for a user; a fresh default (no-data ranks, §3.4
  /// semantics) if the user is unknown.
  UserActiveness get(trace::UserId user) const;
  bool contains(trace::UserId user) const;

  const std::vector<UserActiveness>& all() const { return users_; }
  std::size_t size() const { return users_.size(); }

  /// Per-group population counts in G(1)..G(4) order (Fig. 5's percentages).
  std::array<std::size_t, kGroupCount> group_counts() const;

  /// CSV persistence
  /// (header: user,op_has_data,op_zero,op_log_phi,oc_has_data,oc_zero,oc_log_phi).
  /// save_csv is atomic (tmp + rename + CRC footer); load_csv verifies the
  /// footer and throws on corruption *after* quarantining the file.
  void save_csv(const std::string& path) const;
  static RankStore load_csv(const std::string& path);

  /// Non-throwing load for callers that can degrade (re-evaluate from traces
  /// instead of trusting a damaged store). A corrupt or unparseable store is
  /// quarantined to `<path>.corrupt[.N]` and reported in the result, never
  /// acted on.
  static RankStoreLoadResult try_load_csv(const std::string& path);

 private:
  void reindex();

  std::vector<UserActiveness> users_;            // packed
  std::vector<std::size_t> index_;               // user id -> packed slot + 1
};

/// Outcome of RankStore::try_load_csv.
struct RankStoreLoadResult {
  bool ok = false;
  RankStore store;
  std::string error;           // why the load failed ("" when ok)
  std::string quarantined_to;  // where the bad file went ("" if none)
};

}  // namespace adr::activeness
