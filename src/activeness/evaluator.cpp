#include "activeness/evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/thread_pool.hpp"

namespace adr::activeness {

double Rank::value(double min_value, double max_value) const {
  if (!has_data) return std::clamp(1.0, min_value, max_value);
  if (zero) return min_value;
  const long double lo = std::log(static_cast<long double>(
      min_value > 0.0 ? min_value : 1e-300));
  const long double hi = std::log(static_cast<long double>(max_value));
  const long double clamped = std::clamp(log_phi, lo, hi);
  const double v = static_cast<double>(std::exp(clamped));
  return std::clamp(v, min_value, max_value);
}

long double Rank::sort_key() const {
  if (!has_data) return 0.0L;  // ln 1
  if (zero) return -std::numeric_limits<long double>::infinity();
  return log_phi;
}

Rank& Rank::operator*=(const Rank& other) {
  if (!other.has_data) return *this;
  if (!has_data) {
    *this = other;
    return *this;
  }
  zero = zero || other.zero;
  // One sticky-zero factor pins the whole product at zero for good.
  sticky_zero = sticky_zero || other.sticky_zero;
  log_phi = zero ? 0.0L : log_phi + other.log_phi;
  return *this;
}

Rank Rank::from_value(double v) {
  Rank r;
  r.has_data = true;
  if (v <= 0.0) {
    r.zero = true;
  } else {
    r.log_phi = std::log(static_cast<long double>(v));
  }
  return r;
}

Rank evaluate_stream(std::span<const Activity> stream,
                     const EvaluationParams& params) {
  if (stream.empty()) return Rank::no_data();

  const util::Duration plen = util::days(params.period_length_days);

  // Eq. 1: number of periods, anchored at t_c (>= 1). Counting from the
  // first activity to *now* — not to the last activity — is what makes an
  // idle tail decay the rank: a user silent for months accrues recent empty
  // periods, while a span-based m would never see them.
  const util::Duration span_ts = params.now - stream.front().timestamp;
  std::int64_t m = span_ts <= 0 ? 1 : (span_ts + plen - 1) / plen;
  if (m < 1) m = 1;
  if (params.max_periods > 0 && m > params.max_periods) m = params.max_periods;

  // Eq. 2: average activeness per period over all k activities.
  double total = 0.0;
  for (const auto& a : stream) total += a.impact;
  Rank r;
  r.has_data = true;
  if (total <= 0.0) {
    r.zero = true;
    r.sticky_zero = true;
    return r;
  }
  // Pigeonhole: fewer activities than periods guarantees an empty period.
  // Structural — m only grows with t_c while the activity count is frozen,
  // so the zero outlives any window shift.
  if (m > static_cast<std::int64_t>(stream.size())) {
    r.zero = true;
    r.sticky_zero = true;
    return r;
  }
  const double avg = total / static_cast<double>(m);

  // Eq. 4: bucket activities into periods indexed 1..m (m = most recent).
  std::vector<double> period_impact(static_cast<std::size_t>(m) + 1, 0.0);
  for (const auto& a : stream) {
    const util::Duration age = params.now - a.timestamp;
    const std::int64_t c = age <= 0 ? 0 : (age + plen - 1) / plen;
    std::int64_t e = m - c + 1;
    if (e < 1) {  // older than the evaluation window
      if (params.stale == StaleHandling::kDrop) continue;
      e = 1;
    }
    if (e > m) e = m;  // at/after t_c: newest period
    period_impact[static_cast<std::size_t>(e)] += a.impact;
  }

  // Eq. 3 + Eq. 5 in log space.
  long double log_phi = 0.0L;
  for (std::int64_t e = 1; e <= m; ++e) {
    const double d_pe = period_impact[static_cast<std::size_t>(e)];
    if (d_pe <= 0.0) {
      r.zero = true;
      return r;
    }
    // Per-period log in double (the long double accumulator keeps the sum
    // stable): the transcendental is the hot instruction for active users,
    // and a double log is several times cheaper than the x87 one for far
    // more precision than the ranks need.
    const double b = d_pe / avg;
    double exponent = 1.0;
    switch (params.scheme) {
      case ExponentScheme::kPaperExponent:
        exponent = static_cast<double>(e);
        break;
      case ExponentScheme::kUniform:
        exponent = 1.0;
        break;
      case ExponentScheme::kCappedLinear:
        exponent = static_cast<double>(
            std::min<std::int64_t>(e, params.exponent_cap));
        break;
    }
    log_phi += static_cast<long double>(exponent * std::log(b));
  }
  r.log_phi = log_phi;
  return r;
}

Rank evaluate_stream_indexed(std::span<const Activity> stream,
                             std::span<const double> prefix,
                             const EvaluationParams& params) {
  if (stream.empty()) return Rank::no_data();

  const util::Duration plen = util::days(params.period_length_days);
  const util::Duration span_ts = params.now - stream.front().timestamp;
  std::int64_t m = span_ts <= 0 ? 1 : (span_ts + plen - 1) / plen;
  if (m < 1) m = 1;
  if (params.max_periods > 0 && m > params.max_periods) m = params.max_periods;

  const std::size_t n = stream.size();
  const double total = prefix[n];
  Rank r;
  r.has_data = true;
  if (total <= 0.0) {
    r.zero = true;
    r.sticky_zero = true;
    return r;
  }
  // Pigeonhole: a non-zero product needs every one of the m periods
  // populated, impossible with fewer than m activities. (Holds under both
  // stale modes — clamping folds stale activities into period 1, it never
  // duplicates them.) Structural, hence sticky: m only grows with t_c while
  // the stream is frozen, so this zero persists until new activity arrives.
  if (m > static_cast<std::int64_t>(n)) {
    r.zero = true;
    r.sticky_zero = true;
    return r;
  }

  // idx(j, cap) = first activity with timestamp >= t_c - j*plen. Period
  // e < m covers [idx(m-e+1), idx(m-e)); period m covers [idx(1), n)
  // (activities at t_c were clamped into the newest period by the caller's
  // trim); period 1 reaches down to index 0 under kClampOldest, which folds
  // the stale tail into the oldest period, or to idx(m) under kDrop.
  // Boundaries descend as the walk ages, so each search is bounded by the
  // previous period's low index — the ranges telescope instead of re-probing
  // the whole stream m times.
  const auto idx = [&](std::int64_t j, std::size_t cap) -> std::size_t {
    const util::TimePoint boundary = params.now - j * plen;
    const auto it = std::lower_bound(
        stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(cap),
        boundary,
        [](const Activity& a, util::TimePoint t) { return a.timestamp < t; });
    return static_cast<std::size_t>(it - stream.begin());
  };

  const double avg = total / static_cast<double>(m);
  long double log_phi = 0.0L;
  std::size_t hi = n;
  // Newest period first: a stream that has gone quiet exits after a single
  // binary search instead of grinding through its whole history.
  for (std::int64_t e = m; e >= 1; --e) {
    const std::size_t lo =
        e > 1 ? idx(m - e + 1, hi)
              : (params.stale == StaleHandling::kDrop ? idx(m, hi) : 0);
    const double d_pe = prefix[hi] - prefix[lo];
    if (d_pe <= 0.0) {
      r.zero = true;
      r.log_phi = 0.0L;
      return r;
    }
    // Same double-log / long-double-accumulate split as evaluate_stream —
    // the two paths must agree to the last bit of their shared math.
    const double b = d_pe / avg;
    double exponent = 1.0;
    switch (params.scheme) {
      case ExponentScheme::kPaperExponent:
        exponent = static_cast<double>(e);
        break;
      case ExponentScheme::kUniform:
        exponent = 1.0;
        break;
      case ExponentScheme::kCappedLinear:
        exponent = static_cast<double>(
            std::min<std::int64_t>(e, params.exponent_cap));
        break;
    }
    log_phi += static_cast<long double>(exponent * std::log(b));
    hi = lo;
  }
  r.log_phi = log_phi;
  return r;
}

Evaluator::Evaluator(const ActivityCatalog& catalog, EvaluationParams params)
    : catalog_(&catalog),
      params_(params),
      op_types_(catalog.types_in(ActivityCategory::kOperation)),
      oc_types_(catalog.types_in(ActivityCategory::kOutcome)) {}

namespace {

/// Drop activities after t_c — during trace replay the store holds the whole
/// trace, but an evaluation at t_c must only see the past.
std::span<const Activity> trim_to_now(std::span<const Activity> stream,
                                      util::TimePoint now) {
  const auto it = std::upper_bound(
      stream.begin(), stream.end(), now,
      [](util::TimePoint t, const Activity& a) { return t < a.timestamp; });
  return stream.first(static_cast<std::size_t>(it - stream.begin()));
}

obs::Counter& users_evaluated() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("evaluator.users_evaluated");
  return c;
}

obs::Counter& streams_trimmed() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("evaluator.streams_trimmed");
  return c;
}

obs::Counter& zero_ranks() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("evaluator.zero_ranks");
  return c;
}

}  // namespace

UserActiveness Evaluator::evaluate_user(const ActivityStore& store,
                                        trace::UserId user) const {
  UserActiveness ua;
  ua.user = user;
  std::uint64_t trimmed = 0;
  // A finalized store carries prefix-impact aggregates; the indexed
  // evaluation resolves period impacts via boundary binary searches instead
  // of walking every activity.
  const bool indexed = store.finalized();
  const auto eval_category = [&](std::span<const ActivityTypeId> types,
                                 Rank& rank) {
    for (const ActivityTypeId t : types) {
      const auto full = store.stream(user, t);
      const auto stream = trim_to_now(full, params_.now);
      if (stream.size() < full.size()) ++trimmed;
      if (!stream.empty()) {
        ua.last_activity = std::max(ua.last_activity, stream.back().timestamp);
      }
      if (indexed) {
        rank *= evaluate_stream_indexed(
            stream, store.prefix(user, t).first(stream.size() + 1), params_);
      } else {
        rank *= evaluate_stream(stream, params_);
      }
    }
  };
  eval_category(op_types_, ua.op);
  eval_category(oc_types_, ua.oc);
  users_evaluated().add();
  if (trimmed > 0) streams_trimmed().add(trimmed);
  if (ua.op.zero) zero_ranks().add();
  if (ua.oc.zero) zero_ranks().add();
  return ua;
}

std::vector<UserActiveness> Evaluator::evaluate_all(
    const ActivityStore& store) const {
  obs::TimerSpan span("evaluator.evaluate_all");
  std::vector<UserActiveness> out(store.user_count());
  util::global_pool().parallel_for(0, store.user_count(), [&](std::size_t u) {
    out[u] = evaluate_user(store, static_cast<trace::UserId>(u));
  });
  return out;
}

}  // namespace adr::activeness
