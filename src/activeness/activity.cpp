#include "activeness/activity.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "activeness/spill.hpp"
#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/io.hpp"

namespace adr::activeness {

ActivityTypeId ActivityCatalog::add(ActivityTypeSpec spec) {
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

const ActivityTypeSpec& ActivityCatalog::spec(ActivityTypeId id) const {
  if (id >= specs_.size())
    throw std::out_of_range("ActivityCatalog: bad type id");
  return specs_[id];
}

std::vector<ActivityTypeId> ActivityCatalog::types_in(
    ActivityCategory category) const {
  std::vector<ActivityTypeId> out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].category == category) out.push_back(i);
  }
  return out;
}

ActivityCatalog ActivityCatalog::paper_default() {
  ActivityCatalog catalog;
  catalog.add({"job_submission", ActivityCategory::kOperation, 1.0});
  catalog.add({"publication", ActivityCategory::kOutcome, 1.0});
  return catalog;
}

ActivityStore::ActivityStore(std::size_t user_count, std::size_t type_count)
    : users_(user_count),
      types_(type_count),
      streams_(user_count * type_count),
      prefix_(user_count * type_count),
      gap_prefix_(user_count * type_count),
      chrono_(1),
      dirty_flags_(user_count, 0),
      shard_map_(user_count, 1),
      dirty_lists_(1),
      ingest_(make_ingest(1)),
      admit_(std::make_unique<AdmissionState>()) {}

std::vector<std::unique_ptr<ActivityStore::IngestShard>>
ActivityStore::make_ingest(std::size_t shards) {
  std::vector<std::unique_ptr<IngestShard>> out;
  out.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    out.push_back(std::make_unique<IngestShard>());
  }
  return out;
}

void ActivityStore::mark_dirty(trace::UserId user) {
  if (dirty_flags_[user]) return;
  dirty_flags_[user] = 1;
  dirty_lists_[shard_map_.shard_of(user)].push_back(user);
}

void ActivityStore::set_dirty_shards(std::size_t shards) {
  if (shards == 0) shards = 1;
  if (shards == shard_map_.shards()) return;
  shard_map_ = ShardMap(users_, shards);
  std::vector<std::vector<trace::UserId>> lists(shards);
  for (auto& old : dirty_lists_) {
    for (const trace::UserId u : old) {
      lists[shard_map_.shard_of(u)].push_back(u);
    }
  }
  dirty_lists_ = std::move(lists);
  // Re-bucket the chronological index onto the new partition. Entries from
  // different old shards interleave in time, so each new shard re-sorts.
  std::vector<std::vector<std::pair<util::TimePoint, trace::UserId>>> chrono(
      shards);
  for (auto& old : chrono_) {
    for (const auto& entry : old) {
      chrono[shard_map_.shard_of(entry.second)].push_back(entry);
    }
  }
  for (auto& c : chrono) std::sort(c.begin(), c.end());
  chrono_ = std::move(chrono);
  // Re-route queued ingest events (callers guarantee no racing producers).
  auto ingest = make_ingest(shards);
  for (auto& old : ingest_) {
    std::lock_guard<std::mutex> lock(old->mutex);
    for (auto& event : old->queue) {
      IngestShard& dst = *ingest[shard_map_.shard_of(std::get<0>(event))];
      dst.queue.push_back(std::move(event));
      dst.pending.store(dst.queue.size(), std::memory_order_relaxed);
    }
  }
  ingest_ = std::move(ingest);
}

bool ActivityStore::has_dirty() const {
  for (const auto& list : dirty_lists_) {
    if (!list.empty()) return true;
  }
  return false;
}

void ActivityStore::add(trace::UserId user, ActivityTypeId type,
                        Activity activity) {
  if (user >= users_ || type >= types_)
    throw std::out_of_range("ActivityStore: bad user/type");
  streams_[user * types_ + type].push_back(activity);
  finalized_ = false;
  mark_dirty(user);
}

void ActivityStore::rebuild_aggregates() {
  chrono_.assign(shard_map_.shards(), {});
  for (std::size_t s = 0; s < streams_.size(); ++s) {
    const auto& stream = streams_[s];
    auto& prefix = prefix_[s];
    auto& gaps = gap_prefix_[s];
    prefix.resize(stream.size() + 1);
    gaps.resize(stream.size() + 1);
    prefix[0] = 0.0;
    gaps[0] = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      prefix[i + 1] = prefix[i] + stream[i].impact;
      gaps[i + 1] =
          i == 0 ? 0
                 : std::max(gaps[i],
                            stream[i].timestamp - stream[i - 1].timestamp);
    }
    const auto user = static_cast<trace::UserId>(s / types_);
    auto& chrono = chrono_[shard_map_.shard_of(user)];
    for (const auto& a : stream) chrono.emplace_back(a.timestamp, user);
  }
  for (auto& c : chrono_) std::sort(c.begin(), c.end());
  obs::MetricsRegistry::global()
      .gauge("activity_store.aggregate_entries")
      .set(static_cast<std::int64_t>(aggregate_entries()));
}

void ActivityStore::sort_all() {
  for (auto& s : streams_) {
    std::stable_sort(s.begin(), s.end(),
                     [](const Activity& a, const Activity& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  rebuild_aggregates();
  // A bulk load can have touched anyone: every user is dirty until the next
  // evaluation drains them.
  for (trace::UserId u = 0; u < users_; ++u) mark_dirty(u);
  finalized_ = true;
}

void ActivityStore::append(trace::UserId user, ActivityTypeId type,
                           Activity activity) {
  if (user >= users_ || type >= types_)
    throw std::out_of_range("ActivityStore: bad user/type");
  if (!finalized_) {
    sort_all();  // flush pending bulk rows so the aggregates are consistent
  }
  auto& stream = streams_[user * types_ + type];
  auto& prefix = prefix_[user * types_ + type];
  // upper_bound keeps arrival order among equal timestamps — identical to
  // the stable sort a bulk load would have produced.
  const auto it = std::upper_bound(
      stream.begin(), stream.end(), activity.timestamp,
      [](util::TimePoint t, const Activity& a) { return t < a.timestamp; });
  const std::size_t pos = static_cast<std::size_t>(it - stream.begin());
  stream.insert(it, activity);
  prefix.resize(stream.size() + 1);
  for (std::size_t i = pos; i < stream.size(); ++i) {
    prefix[i + 1] = prefix[i] + stream[i].impact;
  }
  // Gaps change only at/after the insertion point: O(1) for the common
  // append-at-end, O(k - pos) for an out-of-order insert.
  auto& gaps = gap_prefix_[user * types_ + type];
  gaps.resize(stream.size() + 1);
  gaps[0] = 0;
  for (std::size_t i = pos == 0 ? 0 : pos - 1; i < stream.size(); ++i) {
    gaps[i + 1] =
        i == 0
            ? 0
            : std::max(gaps[i], stream[i].timestamp - stream[i - 1].timestamp);
  }
  auto& chrono = chrono_[shard_map_.shard_of(user)];
  const auto cit = std::upper_bound(
      chrono.begin(), chrono.end(),
      std::make_pair(activity.timestamp,
                     std::numeric_limits<trace::UserId>::max()));
  chrono.emplace(cit, activity.timestamp, user);
  mark_dirty(user);
  static obs::Counter& appends =
      obs::MetricsRegistry::global().counter("activity_store.appends");
  appends.add();
  obs::MetricsRegistry::global()
      .gauge("activity_store.aggregate_entries")
      .add(3);  // one prefix entry + one gap entry + one chrono entry
}

void ActivityStore::add_types(std::size_t extra) {
  if (extra == 0) return;
  const std::size_t new_types = types_ + extra;
  std::vector<std::vector<Activity>> streams(users_ * new_types);
  std::vector<std::vector<double>> prefix(users_ * new_types);
  std::vector<std::vector<util::Duration>> gaps(users_ * new_types);
  for (trace::UserId u = 0; u < users_; ++u) {
    for (std::size_t t = 0; t < types_; ++t) {
      streams[u * new_types + t] = std::move(streams_[u * types_ + t]);
      prefix[u * new_types + t] = std::move(prefix_[u * types_ + t]);
      gaps[u * new_types + t] = std::move(gap_prefix_[u * types_ + t]);
    }
  }
  streams_ = std::move(streams);
  prefix_ = std::move(prefix);
  gap_prefix_ = std::move(gaps);
  types_ = new_types;
  if (finalized_) {
    // New streams are empty; prefixes for them are built lazily on append,
    // but give them their canonical empty shape now.
    for (auto& p : prefix_) {
      if (p.empty()) p.assign(1, 0.0);
    }
    for (auto& g : gap_prefix_) {
      if (g.empty()) g.assign(1, 0);
    }
  }
}

std::span<const Activity> ActivityStore::stream(trace::UserId user,
                                                ActivityTypeId type) const {
  if (user >= users_ || type >= types_)
    throw std::out_of_range("ActivityStore: bad user/type");
  return streams_[user * types_ + type];
}

std::span<const double> ActivityStore::prefix(trace::UserId user,
                                              ActivityTypeId type) const {
  if (user >= users_ || type >= types_)
    throw std::out_of_range("ActivityStore: bad user/type");
  return prefix_[user * types_ + type];
}

std::span<const util::Duration> ActivityStore::max_gap_prefix(
    trace::UserId user, ActivityTypeId type) const {
  if (user >= users_ || type >= types_)
    throw std::out_of_range("ActivityStore: bad user/type");
  return gap_prefix_[user * types_ + type];
}

std::vector<trace::UserId> ActivityStore::take_dirty() {
  std::vector<trace::UserId> out = std::move(dirty_lists_[0]);
  dirty_lists_[0].clear();
  for (std::size_t s = 1; s < dirty_lists_.size(); ++s) {
    out.insert(out.end(), dirty_lists_[s].begin(), dirty_lists_[s].end());
    dirty_lists_[s].clear();
  }
  for (const trace::UserId u : out) dirty_flags_[u] = 0;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<trace::UserId> ActivityStore::take_dirty(std::size_t shard) {
  std::vector<trace::UserId> out = std::move(dirty_lists_[shard]);
  dirty_lists_[shard].clear();
  for (const trace::UserId u : out) dirty_flags_[u] = 0;
  std::sort(out.begin(), out.end());
  return out;
}

std::span<const std::pair<util::TimePoint, trace::UserId>>
ActivityStore::chrono_window(std::size_t shard, util::TimePoint begin,
                             util::TimePoint end) const {
  if (end <= begin) return {};
  const auto& chrono = chrono_[shard];
  const auto lo = std::upper_bound(
      chrono.begin(), chrono.end(),
      std::make_pair(begin, std::numeric_limits<trace::UserId>::max()));
  const auto hi = std::upper_bound(
      chrono.begin(), chrono.end(),
      std::make_pair(end, std::numeric_limits<trace::UserId>::max()));
  return {chrono.data() + (lo - chrono.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::vector<trace::UserId> ActivityStore::users_active_between(
    util::TimePoint begin, util::TimePoint end) const {
  std::vector<trace::UserId> out;
  for (std::size_t s = 0; s < chrono_.size(); ++s) {
    for (const auto& [ts, user] : chrono_window(s, begin, end)) {
      out.push_back(user);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

EnqueueResult ActivityStore::enqueue(trace::UserId user, ActivityTypeId type,
                                     Activity activity) {
  if (user >= users_ || type >= types_)
    throw std::out_of_range("ActivityStore: bad user/type");
  IngestShard& shard = *ingest_[shard_map_.shard_of(user)];
  AdmissionState& admit = *admit_;
  const std::size_t cap = admit.config.queue_cap;
  std::unique_lock<std::mutex> lock(shard.mutex);
  if (cap > 0 && shard.queue.size() >= cap) {
    // Over the cap: apply the backpressure policy. Every branch either
    // accounts for the event (shed log, spill segment) or ends up blocking,
    // so nothing is ever lost silently.
    switch (admit.config.policy) {
      case BackpressurePolicy::kShed: {
        std::lock_guard<std::mutex> shed_lock(admit.shed_mutex);
        if (admit.shed_events.size() < admit.config.shed_budget) {
          admit.shed_events.emplace_back(user, type, activity);
          admit.shed_total.fetch_add(1, std::memory_order_acq_rel);
          obs::MetricsRegistry::global()
              .counter("activity_store.ingest_shed")
              .add();
          return EnqueueResult::kShed;
        }
        break;  // budget spent: degrade to blocking, never silent loss
      }
      case BackpressurePolicy::kSpill: {
        if (admit.config.spill != nullptr) {
          lock.unlock();  // file IO must not hold the shard lock
          try {
            admit.config.spill->append(user, type, activity);
            admit.spilled_total.fetch_add(1, std::memory_order_acq_rel);
            obs::MetricsRegistry::global()
                .counter("activity_store.ingest_spilled")
                .add();
            return EnqueueResult::kSpilled;
          } catch (const std::exception&) {
            // Spill segment unwritable (disk full, torn write): fall back
            // to blocking admission so the event still is not dropped.
            lock.lock();
          }
        }
        break;
      }
      case BackpressurePolicy::kBlock:
        break;
    }
    if (shard.queue.size() >= cap) {
      obs::MetricsRegistry::global()
          .counter("activity_store.ingest_blocked")
          .add();
      shard.drained.wait(lock, [&] { return shard.queue.size() < cap; });
    }
  }
  shard.queue.emplace_back(user, type, activity);
  const std::size_t depth = shard.queue.size();
  shard.pending.store(depth, std::memory_order_release);
  lock.unlock();

  std::size_t seen = admit.depth_high_water.load(std::memory_order_relaxed);
  while (depth > seen && !admit.depth_high_water.compare_exchange_weak(
                             seen, depth, std::memory_order_acq_rel)) {
  }
  static obs::Counter& enqueued =
      obs::MetricsRegistry::global().counter("activity_store.ingest_enqueued");
  enqueued.add();
  return EnqueueResult::kQueued;
}

std::size_t ActivityStore::pending_ingest() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < ingest_.size(); ++s) total += pending_ingest(s);
  return total;
}

std::vector<std::tuple<trace::UserId, ActivityTypeId, Activity>>
ActivityStore::shed_events() const {
  std::lock_guard<std::mutex> lock(admit_->shed_mutex);
  return admit_->shed_events;
}

bool ActivityStore::has_pending_ingest() const {
  for (std::size_t s = 0; s < ingest_.size(); ++s) {
    if (has_pending_ingest(s)) return true;
  }
  return false;
}

std::size_t ActivityStore::drain_ingest(std::size_t shard) {
  IngestShard& iq = *ingest_[shard];
  std::vector<std::tuple<trace::UserId, ActivityTypeId, Activity>> batch;
  {
    std::lock_guard<std::mutex> lock(iq.mutex);
    if (iq.queue.empty()) return 0;
    if (!finalized_) {
      // append() would sort_all(), which touches every shard — not legal
      // from a parallel per-shard drain. The evaluators finalize before
      // fanning out; anything else should use the global drain_ingest().
      // Checked before the swap so the queued events survive the throw.
      throw std::logic_error(
          "ActivityStore::drain_ingest(shard): store not finalized");
    }
    batch.swap(iq.queue);
    iq.pending.store(0, std::memory_order_release);
  }
  iq.drained.notify_all();  // wake producers blocked on a full queue
  for (const auto& [user, type, activity] : batch) {
    append(user, type, activity);
  }
  static obs::Counter& drained =
      obs::MetricsRegistry::global().counter("activity_store.ingest_drained");
  drained.add(batch.size());
  return batch.size();
}

std::size_t ActivityStore::drain_ingest() {
  if (!finalized_ && has_pending_ingest()) {
    sort_all();  // flush pending bulk rows before applying queued events
  }
  std::size_t applied = 0;
  for (std::size_t s = 0; s < ingest_.size(); ++s) {
    applied += drain_ingest(s);
  }
  return applied;
}

std::size_t ActivityStore::total_activities() const {
  std::size_t n = 0;
  for (const auto& s : streams_) n += s.size();
  return n;
}

std::size_t ActivityStore::aggregate_entries() const {
  std::size_t n = 0;
  for (const auto& c : chrono_) n += c.size();
  for (const auto& p : prefix_) n += p.size();
  for (const auto& g : gap_prefix_) n += g.size();
  return n;
}

void ingest_jobs(ActivityStore& store, ActivityTypeId type, double weight,
                 const trace::JobLog& jobs) {
  for (const auto& job : jobs.records()) {
    if (job.user == trace::kInvalidUser || job.user >= store.user_count())
      continue;
    store.add(job.user, type,
              Activity{job.submit_time, weight * job.core_hours()});
  }
}

void ingest_publications(ActivityStore& store, ActivityTypeId type,
                         double weight, const trace::PublicationLog& pubs) {
  for (const auto& pub : pubs.records()) {
    for (std::size_t i = 0; i < pub.authors.size(); ++i) {
      const trace::UserId author = pub.authors[i];
      if (author == trace::kInvalidUser || author >= store.user_count())
        continue;
      store.add(author, type,
                Activity{pub.published, weight * pub.impact_for_author(i + 1)});
    }
  }
}

std::size_t ingest_activities_csv(ActivityStore& store, ActivityTypeId type,
                                  double weight, const std::string& path,
                                  const util::ParseOptions& opts) {
  std::istringstream in(util::io::load_verified(path));
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("ingest_activities_csv: empty file " + path);
  const bool permissive = opts.policy == util::ParsePolicy::kPermissive;
  util::RowQuarantine quarantine(path, opts.quarantine_path);
  std::size_t ingested = 0;
  while (auto row = reader.next()) {
    const util::RowContext ctx{&path, reader.line()};
    try {
      if (row->size() != 3) {
        throw util::ParseError("ingest_activities_csv: " + path + ":" +
                               std::to_string(reader.line()) +
                               ": expected 3 columns, got " +
                               std::to_string(row->size()));
      }
      const auto user =
          static_cast<trace::UserId>(util::parse_u32((*row)[0], ctx, "user"));
      const auto timestamp = util::parse_i64((*row)[1], ctx, "timestamp");
      const double impact = util::parse_f64((*row)[2], ctx, "impact");
      if (user >= store.user_count()) continue;
      store.add(user, type, Activity{timestamp, weight * impact});
      ++ingested;
      if (opts.stats) ++opts.stats->rows_ok;
    } catch (const util::ParseError& e) {
      if (!permissive) throw;
      quarantine.add(reader.line(), util::RowQuarantine::kMalformed, e.what(),
                     reader.raw());
    }
  }
  quarantine.finish(opts.stats);
  return ingested;
}

void save_activities_csv(const std::string& path,
                         const std::vector<std::pair<trace::UserId, Activity>>&
                             activities) {
  util::io::AtomicWriter writer(path,
                                {.fsync = util::io::default_fsync()});
  util::CsvWriter w(writer.stream());
  w.write_row({"user", "timestamp", "impact"});
  for (const auto& [user, activity] : activities) {
    w.write_row({std::to_string(user), std::to_string(activity.timestamp),
                 std::to_string(activity.impact)});
  }
  writer.commit();
}

}  // namespace adr::activeness
