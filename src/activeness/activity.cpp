#include "activeness/activity.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace adr::activeness {

ActivityTypeId ActivityCatalog::add(ActivityTypeSpec spec) {
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

const ActivityTypeSpec& ActivityCatalog::spec(ActivityTypeId id) const {
  if (id >= specs_.size())
    throw std::out_of_range("ActivityCatalog: bad type id");
  return specs_[id];
}

std::vector<ActivityTypeId> ActivityCatalog::types_in(
    ActivityCategory category) const {
  std::vector<ActivityTypeId> out;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].category == category) out.push_back(i);
  }
  return out;
}

ActivityCatalog ActivityCatalog::paper_default() {
  ActivityCatalog catalog;
  catalog.add({"job_submission", ActivityCategory::kOperation, 1.0});
  catalog.add({"publication", ActivityCategory::kOutcome, 1.0});
  return catalog;
}

ActivityStore::ActivityStore(std::size_t user_count, std::size_t type_count)
    : users_(user_count), types_(type_count), streams_(user_count * type_count) {}

void ActivityStore::add(trace::UserId user, ActivityTypeId type,
                        Activity activity) {
  if (user >= users_ || type >= types_)
    throw std::out_of_range("ActivityStore: bad user/type");
  streams_[user * types_ + type].push_back(activity);
}

void ActivityStore::sort_all() {
  for (auto& s : streams_) {
    std::stable_sort(s.begin(), s.end(),
                     [](const Activity& a, const Activity& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
}

std::span<const Activity> ActivityStore::stream(trace::UserId user,
                                                ActivityTypeId type) const {
  if (user >= users_ || type >= types_)
    throw std::out_of_range("ActivityStore: bad user/type");
  return streams_[user * types_ + type];
}

std::size_t ActivityStore::total_activities() const {
  std::size_t n = 0;
  for (const auto& s : streams_) n += s.size();
  return n;
}

void ingest_jobs(ActivityStore& store, ActivityTypeId type, double weight,
                 const trace::JobLog& jobs) {
  for (const auto& job : jobs.records()) {
    if (job.user == trace::kInvalidUser || job.user >= store.user_count())
      continue;
    store.add(job.user, type,
              Activity{job.submit_time, weight * job.core_hours()});
  }
}

void ingest_publications(ActivityStore& store, ActivityTypeId type,
                         double weight, const trace::PublicationLog& pubs) {
  for (const auto& pub : pubs.records()) {
    for (std::size_t i = 0; i < pub.authors.size(); ++i) {
      const trace::UserId author = pub.authors[i];
      if (author == trace::kInvalidUser || author >= store.user_count())
        continue;
      store.add(author, type,
                Activity{pub.published, weight * pub.impact_for_author(i + 1)});
    }
  }
}

std::size_t ingest_activities_csv(ActivityStore& store, ActivityTypeId type,
                                  double weight, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ingest_activities_csv: cannot open " + path);
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("ingest_activities_csv: empty file " + path);
  std::size_t ingested = 0;
  while (auto row = reader.next()) {
    if (row->size() != 3)
      throw std::runtime_error("ingest_activities_csv: malformed row in " +
                               path);
    const auto user = static_cast<trace::UserId>(std::stoul((*row)[0]));
    if (user >= store.user_count()) continue;
    store.add(user, type,
              Activity{std::stoll((*row)[1]), weight * std::stod((*row)[2])});
    ++ingested;
  }
  return ingested;
}

void save_activities_csv(const std::string& path,
                         const std::vector<std::pair<trace::UserId, Activity>>&
                             activities) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_activities_csv: cannot write " + path);
  util::CsvWriter w(out);
  w.write_row({"user", "timestamp", "impact"});
  for (const auto& [user, activity] : activities) {
    w.write_row({std::to_string(user), std::to_string(activity.timestamp),
                 std::to_string(activity.impact)});
  }
}

}  // namespace adr::activeness
