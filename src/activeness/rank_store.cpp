#include "activeness/rank_store.hpp"

#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/io.hpp"
#include "util/parse.hpp"

namespace adr::activeness {

RankStore::RankStore(std::vector<UserActiveness> users)
    : users_(std::move(users)) {
  reindex();
}

void RankStore::reindex() {
  index_.clear();
  for (std::size_t i = 0; i < users_.size(); ++i) {
    const trace::UserId u = users_[i].user;
    if (u == trace::kInvalidUser) continue;
    if (u >= index_.size()) index_.resize(u + 1, 0);
    index_[u] = i + 1;
  }
}

void RankStore::set(const UserActiveness& ua) {
  if (ua.user == trace::kInvalidUser)
    throw std::invalid_argument("RankStore: invalid user");
  if (ua.user < index_.size() && index_[ua.user] != 0) {
    users_[index_[ua.user] - 1] = ua;
    return;
  }
  users_.push_back(ua);
  if (ua.user >= index_.size()) index_.resize(ua.user + 1, 0);
  index_[ua.user] = users_.size();
}

UserActiveness RankStore::get(trace::UserId user) const {
  if (user < index_.size() && index_[user] != 0) return users_[index_[user] - 1];
  UserActiveness fresh;
  fresh.user = user;
  return fresh;
}

bool RankStore::contains(trace::UserId user) const {
  return user < index_.size() && index_[user] != 0;
}

std::array<std::size_t, kGroupCount> RankStore::group_counts() const {
  std::array<std::size_t, kGroupCount> counts{};
  for (const auto& ua : users_) {
    ++counts[static_cast<std::size_t>(classify(ua))];
  }
  return counts;
}

void RankStore::save_csv(const std::string& path) const {
  util::io::AtomicWriter writer(path,
                                {.fsync = util::io::default_fsync()});
  util::CsvWriter w(writer.stream());
  w.write_row({"user", "op_has_data", "op_zero", "op_log_phi", "oc_has_data",
               "oc_zero", "oc_log_phi", "last_activity"});
  for (const auto& ua : users_) {
    w.write_row({std::to_string(ua.user), ua.op.has_data ? "1" : "0",
                 ua.op.zero ? "1" : "0",
                 std::to_string(static_cast<double>(ua.op.log_phi)),
                 ua.oc.has_data ? "1" : "0", ua.oc.zero ? "1" : "0",
                 std::to_string(static_cast<double>(ua.oc.log_phi)),
                 std::to_string(ua.last_activity)});
  }
  writer.commit();
}

namespace {

RankStore parse_store(const std::string& content, const std::string& path) {
  std::istringstream in(content);
  util::CsvReader reader(in);
  if (!reader.read_header())
    throw std::runtime_error("RankStore: empty file " + path);
  std::vector<UserActiveness> users;
  while (auto row = reader.next()) {
    const util::RowContext ctx{&path, reader.line()};
    if (row->size() != 8) {
      throw util::ParseError("RankStore: " + path + ":" +
                             std::to_string(reader.line()) +
                             ": expected 8 columns, got " +
                             std::to_string(row->size()));
    }
    UserActiveness ua;
    ua.user = static_cast<trace::UserId>(util::parse_u32((*row)[0], ctx, "user"));
    ua.op.has_data = (*row)[1] == "1";
    ua.op.zero = (*row)[2] == "1";
    ua.op.log_phi = util::parse_f64((*row)[3], ctx, "op_log_phi");
    ua.oc.has_data = (*row)[4] == "1";
    ua.oc.zero = (*row)[5] == "1";
    ua.oc.log_phi = util::parse_f64((*row)[6], ctx, "oc_log_phi");
    ua.last_activity = util::parse_i64((*row)[7], ctx, "last_activity");
    users.push_back(ua);
  }
  return RankStore(std::move(users));
}

}  // namespace

RankStore RankStore::load_csv(const std::string& path) {
  return parse_store(util::io::load_verified(path), path);
}

RankStoreLoadResult RankStore::try_load_csv(const std::string& path) {
  RankStoreLoadResult result;
  util::io::Artifact artifact;
  try {
    artifact = util::io::read_artifact(path);
  } catch (const std::exception& e) {
    result.error = e.what();  // missing / unreadable: nothing to quarantine
    return result;
  }
  if (artifact.state == util::io::ArtifactState::kCorrupt) {
    result.error = artifact.error;
    result.quarantined_to = util::io::quarantine(path, artifact.error);
    return result;
  }
  try {
    result.store = parse_store(artifact.content, path);
    result.ok = true;
  } catch (const std::exception& e) {
    // CRC-clean but semantically unparseable (legacy damage, hand edits):
    // still refuse to act on it, and move it out of the way.
    result.error = e.what();
    result.quarantined_to = util::io::quarantine(path, e.what());
    static obs::Counter& failures =
        obs::MetricsRegistry::global().counter("rank_store.load_failures");
    failures.add();
  }
  return result;
}

}  // namespace adr::activeness
